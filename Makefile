GO ?= go
JOBS ?= 0

.PHONY: check build vet test race bench bench-experiments benchdiff fuzz golden chaos

# The full tier-1 gate: build, vet, and the test suite under the race
# detector. Test failures print the reproducing seed — rerun the named
# test with that seed to replay the exact fault sequence.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

bench: bench-experiments
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Wall-clock timings for the parallel experiment engine: runs the perf
# group at quick scale and writes per-cell and per-experiment timings to
# BENCH_experiments.json. Override the pool size with JOBS=N (0 =
# GOMAXPROCS); re-run at JOBS=1 vs JOBS=8 to measure the speedup —
# the tables themselves are byte-identical either way.
bench-experiments:
	$(GO) run ./cmd/mixtlb -exp perf -quick -jobs $(JOBS) \
		-bench-out BENCH_experiments.json > /dev/null

# Compare the committed timing baseline against a fresh `make bench` run
# and fail on any >15% per-cell wall-time regression. Override the inputs
# with OLD=/path/a.json NEW=/path/b.json.
OLD ?= BENCH_experiments.json
NEW ?= BENCH_experiments.json
benchdiff:
	./scripts/benchdiff.sh $(OLD) $(NEW)

# Short mutation pass over each fuzz target (seed corpora also run as
# plain test cases in `make test`).
fuzz:
	$(GO) test ./internal/trace/ -fuzz 'FuzzRoundTrip' -fuzztime 10s -run ^$$
	$(GO) test ./internal/trace/ -fuzz 'FuzzReader' -fuzztime 10s -run ^$$
	$(GO) test ./internal/addr/ -fuzz 'FuzzAddrArithmetic' -fuzztime 10s -run ^$$
	$(GO) test ./internal/journal/ -fuzz 'FuzzJournalDecode' -fuzztime 10s -run ^$$

# Regenerate the golden experiment tables after an intentional change in
# simulator behavior (records at -jobs=1; the test verifies at -jobs=8).
golden:
	$(GO) test ./internal/experiments/ -run TestGoldenTables -update-golden

# Quick fault-injection sweep: every design under TLB/PTE corruption,
# lost IPIs, and transient OOM. The unrecovered column must be zero.
chaos:
	$(GO) run ./cmd/mixtlb -chaos -quick
