GO ?= go

.PHONY: check build vet test race bench chaos

# The full tier-1 gate: build, vet, and the test suite under the race
# detector. Test failures print the reproducing seed — rerun the named
# test with that seed to replay the exact fault sequence.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Quick fault-injection sweep: every design under TLB/PTE corruption,
# lost IPIs, and transient OOM. The unrecovered column must be zero.
chaos:
	$(GO) run ./cmd/mixtlb -chaos -quick
