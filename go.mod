module mixtlb

go 1.22
