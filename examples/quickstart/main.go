// Quickstart: build a simulated machine, let the OS demand-page a workload
// with transparent hugepages, and compare a commercial split-TLB MMU with
// a MIX TLB MMU on the same reference stream.
package main

import (
	"fmt"
	"log"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

func main() {
	// A machine with 2GB of physical memory.
	phys := physmem.NewBuddy(2 << 30)

	// An OS address space with transparent hugepage support: faults get
	// 2MB pages while defragmented memory lasts.
	as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS})
	if err != nil {
		log.Fatal(err)
	}
	const footprint = 1 << 30
	base, err := as.Mmap(footprint)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := as.Populate(base, footprint); err != nil {
		log.Fatal(err)
	}
	rep := osmm.ScanContiguity(as.PageTable())
	fmt.Printf("OS mapped %.0f%% of the footprint with superpages; average 2MB contiguity %.1f\n\n",
		100*rep.SuperpageFraction(), rep.AverageContiguity(addr.Page2M))

	// The same pointer-chasing workload drives both designs.
	run := func(design mmu.Design) mmu.Stats {
		m, err := mmu.Build(design, as.PageTable(), as.PageTable(),
			cachesim.DefaultHierarchy(), as.HandleFault)
		if err != nil {
			log.Fatal(err)
		}
		stream := workload.NewPointerChase(base, footprint, simrand.New(1), 0xc0de)
		for i := 0; i < 200_000; i++ {
			ref := stream.Next()
			if r := m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC}); r.Faulted {
				log.Fatalf("unexpected fault at %v", ref.VA)
			}
		}
		m.ResetStats()
		for i := 0; i < 400_000; i++ {
			ref := stream.Next()
			m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC})
		}
		return m.Stats()
	}

	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix} {
		st := run(d)
		fmt.Printf("%-6s  %s\n", d, st.String())
	}
	fmt.Println("\nMIX uses every TLB entry for whatever page sizes the OS produced,")
	fmt.Println("while split TLBs strand capacity in per-size arrays.")
}
