// Fragmentation study: reproduce the paper's central characterization at
// example scale — as background load fragments physical memory, the OS
// page-size distribution moves through three regimes (superpages dominate,
// mixed, mostly small pages), superpage contiguity degrades, and the MIX
// TLB's advantage over split TLBs shifts but persists.
package main

import (
	"fmt"
	"log"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

func main() {
	fmt.Println("memhog%  superpage%  contig2MB  split cyc/acc  mix cyc/acc")
	for _, hogPct := range []int{0, 20, 40, 60, 80} {
		phys := physmem.NewBuddy(1 << 30)
		hog := physmem.NewMemhog(phys, simrand.New(uint64(7+hogPct)))
		if hogPct >= 50 { // heavy load pollutes movable pageblocks
			hog.UnmovableFrac = 0.25 + (float64(hogPct)/100-0.4)*1.75
			hog.UnmovableScatterFrac = 1
		}
		hog.Run(float64(hogPct) / 100)

		as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS, Compactor: hog})
		if err != nil {
			log.Fatal(err)
		}
		// Take whatever memory the hog left.
		fp := addr.AlignedDown(phys.FreeFrames()*addr.Size4K*9/10, addr.Size2M)
		base, err := as.Mmap(fp)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := as.Populate(base, fp); err != nil {
			log.Fatal(err)
		}
		rep := osmm.ScanContiguity(as.PageTable())

		measure := func(d mmu.Design) float64 {
			m, err := mmu.Build(d, as.PageTable(), as.PageTable(),
				cachesim.DefaultHierarchy(), as.HandleFault)
			if err != nil {
				log.Fatal(err)
			}
			stream := workload.NewZipf(base, fp, simrand.New(3), 0.9, 0.1, 0xfeed)
			for i := 0; i < 100_000; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
			}
			m.ResetStats()
			for i := 0; i < 200_000; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
			}
			return m.Stats().CyclesPerAccess()
		}

		fmt.Printf("%6d   %9.0f%%  %9.1f  %13.2f  %11.2f\n",
			hogPct, 100*rep.SuperpageFraction(), rep.AverageContiguity(addr.Page2M),
			measure(mmu.DesignSplit), measure(mmu.DesignMix))
	}
}
