// Virtualized translation: demonstrate two-dimensional page walks, page
// splintering under host pressure, and why MIX TLBs help most where TLB
// misses are most expensive (24 memory references per nested walk).
package main

import (
	"fmt"
	"log"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/virt"
	"mixtlb/internal/workload"
)

func main() {
	// A 4GB host consolidating two 1.5GB guests, each running THS.
	host := virt.NewMachine(4<<30, simrand.New(1))
	var vms []*virt.VM
	var bases []addr.V
	const guestFP = 768 << 20
	for i := 0; i < 2; i++ {
		vm, err := host.AddVM(3<<29, osmm.Config{Policy: osmm.THS}, simrand.New(uint64(2+i)))
		if err != nil {
			log.Fatal(err)
		}
		base, err := vm.GuestAS().Mmap(guestFP)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := vm.Populate(base, guestFP); err != nil {
			log.Fatal(err)
		}
		vms = append(vms, vm)
		bases = append(bases, base)
	}

	// Anatomy of one nested walk.
	res := vms[0].Walker().Walk(bases[0])
	fmt.Printf("nested walk of %v: %d memory references, effective page size %v\n",
		bases[0], len(res.Accesses), res.Translation.Size)
	two, four := vms[0].BackingCounts()
	fmt.Printf("host backings for VM 0: %d x 2MB, %d x 4KB (splintered)\n\n", two, four)

	// Run a graph workload inside VM 0 under both TLB designs.
	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix} {
		m, err := mmu.Build(d, vms[0].Walker(), nil, cachesim.DefaultHierarchy(), vms[0].HandleFault)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := workload.ByName("graph500")
		if err != nil {
			log.Fatal(err)
		}
		stream := spec.Build(bases[0], guestFP, simrand.New(7))
		for i := 0; i < 150_000; i++ {
			ref := stream.Next()
			m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
		}
		m.ResetStats()
		for i := 0; i < 300_000; i++ {
			ref := stream.Next()
			m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
		}
		st := m.Stats()
		fmt.Printf("%-6s  %s  walk-cycles=%d\n", d, st.String(), st.WalkCycles)
	}
	fmt.Println("\nEvery avoided miss saves a two-dimensional walk, so coalesced")
	fmt.Println("superpage reach pays off far more than it does natively.")
}
