// GPU shared virtual memory: a CPU process's address space is used
// directly by GPU shader cores ("a pointer is a pointer everywhere");
// per-core TLBs service many concurrent threads. Compare TLB designs on
// an irregular graph kernel.
package main

import (
	"fmt"
	"log"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/gpu"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/workload"
)

func main() {
	phys := physmem.NewBuddy(2 << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS})
	if err != nil {
		log.Fatal(err)
	}
	const footprint = 1 << 30
	base, err := as.Mmap(footprint)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := as.Populate(base, footprint); err != nil {
		log.Fatal(err)
	}

	kernel, err := gpu.KernelByName("bfs")
	if err != nil {
		log.Fatal(err)
	}
	const cores = 8
	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix, mmu.DesignRehash, mmu.DesignSkew} {
		sys, err := gpu.New(gpu.Config{Cores: cores, Design: d}, as, cachesim.DefaultHierarchy())
		if err != nil {
			log.Fatal(err)
		}
		sys.AttachStreams(func(id int) workload.Stream {
			return kernel.Build(id, cores, base, footprint, simrand.New(uint64(id)))
		})
		if err := sys.Run(200_000); err != nil {
			log.Fatal(err)
		}
		sys.ResetStats()
		if err := sys.Run(400_000); err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		fmt.Printf("%-12s %s\n", d, st.String())
	}
	fmt.Println("\nGPU TLBs absorb hundreds of threads' traffic; designs that use")
	fmt.Println("all their entries for the OS's actual page-size mix miss least.")
}
