#!/bin/sh
# Compare two BENCH_experiments.json timing files (written by
# `mixtlb -bench-out` / `make bench`) cell by cell and fail on any >15%
# per-cell wall-time regression. Usage:
#   scripts/benchdiff.sh OLD.json NEW.json [-max-regression PCT]
# Typical flow:
#   git show HEAD:BENCH_experiments.json > /tmp/old.json
#   make bench
#   scripts/benchdiff.sh /tmp/old.json BENCH_experiments.json
set -eu
cd "$(dirname "$0")/.."
if [ "$#" -lt 2 ]; then
    echo "usage: scripts/benchdiff.sh OLD.json NEW.json [-max-regression PCT]" >&2
    exit 2
fi
old=$1
new=$2
shift 2
exec go run ./cmd/benchdiff "$@" "$old" "$new"
