#!/bin/sh
# Tier-1 gate: build, vet, race-enabled tests. Mirrors `make check` for
# environments without make. Any failing chaos/differential test prints
# the reproducing seed in its failure message — replay with
#   go test -run <TestName> ./internal/...
# after plugging that seed into the test, or
#   go run ./cmd/mixtlb -exp chaos -seed <seed>
# for experiment-level failures.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "== OK"
