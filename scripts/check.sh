#!/bin/sh
# Tier-1 gate: build, vet, race-enabled tests, fuzz-corpus smoke, and a
# parallel-determinism check. Mirrors `make check` for environments
# without make. Any failing chaos/differential test prints the
# reproducing seed in its failure message — replay with
#   go test -run <TestName> ./internal/...
# after plugging that seed into the test, or
#   go run ./cmd/mixtlb -exp chaos -seed <seed>
# for experiment-level failures. A failing experiment cell prints a
# `reproduce: mixtlb -exp <name> -cell "<cell>" ...` line — run exactly
# that to replay the one simulation that failed.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...

# Fuzz smoke: run each fuzz target briefly beyond its seed corpus. The
# corpora under testdata/fuzz/ already ran as regular test cases above;
# this adds a short mutation pass to catch fresh encode/decode breakage.
echo "== go test -fuzz (10s per target)"
go test ./internal/trace/ -fuzz 'FuzzRoundTrip' -fuzztime 10s -run '^$'
go test ./internal/trace/ -fuzz 'FuzzReader' -fuzztime 10s -run '^$'
go test ./internal/addr/ -fuzz 'FuzzAddrArithmetic' -fuzztime 10s -run '^$'

# Parallel determinism: the same experiment at -jobs 1 and -jobs 4 must
# produce byte-identical tables (cell seeds derive from cell identity,
# never from scheduling).
echo "== mixtlb -jobs determinism"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/mixtlb" ./cmd/mixtlb
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 1 > "$tmpdir/jobs1.csv"
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 4 > "$tmpdir/jobs4.csv"
if ! cmp -s "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv"; then
    echo "FAIL: -jobs 4 output differs from -jobs 1" >&2
    diff "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv" >&2 || true
    exit 1
fi

# Design registry: every registered design (builtin and the shipped
# example file) must validate and construct, and the hierarchy comparison
# over file-loaded designs must be jobs-invariant like every experiment.
echo "== design registry"
go test ./internal/mmu/ -run 'TestRegistryBuiltinsConstruct|TestDesignSpecValidationErrors|TestParseSpecs' -count=1 > /dev/null
"$tmpdir/mixtlb" -design-file examples/designs.json -list > /dev/null
"$tmpdir/mixtlb" -exp hierarchy -quick -csv -jobs 1 \
    -design-file examples/designs.json -designs split+pwc,mix-as-l2,mix+pwc > "$tmpdir/hier1.csv"
"$tmpdir/mixtlb" -exp hierarchy -quick -csv -jobs 8 \
    -design-file examples/designs.json -designs split+pwc,mix-as-l2,mix+pwc > "$tmpdir/hier8.csv"
if ! cmp -s "$tmpdir/hier1.csv" "$tmpdir/hier8.csv"; then
    echo "FAIL: hierarchy -jobs 8 output differs from -jobs 1" >&2
    diff "$tmpdir/hier1.csv" "$tmpdir/hier8.csv" >&2 || true
    exit 1
fi

# benchdiff smoke: a timing file diffed against itself must join every
# cell, report 1.00x, and exit 0.
echo "== benchdiff identity"
"$tmpdir/mixtlb" -exp fig15r -quick -jobs 1 -bench-out "$tmpdir/bench.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/bench.json" "$tmpdir/bench.json" > /dev/null

# Telemetry smoke: a quick instrumented run must emit a parseable
# Prometheus dump with the core metric families, a well-formed Chrome
# trace, and a well-formed JSONL stream — and its result table must be
# byte-identical to an uninstrumented run (telemetry never feeds back
# into the simulation).
echo "== telemetry exporters"
go build -o "$tmpdir/telemetrycheck" ./cmd/telemetrycheck
"$tmpdir/mixtlb" -exp fig15r -quick -csv -jobs 4 \
    -metrics-out "$tmpdir/metrics.prom" \
    -trace-events "$tmpdir/trace.json" \
    -events-out "$tmpdir/events.jsonl" > "$tmpdir/tel-on.csv"
"$tmpdir/telemetrycheck" \
    -metrics "$tmpdir/metrics.prom" \
    -require mmu_accesses_total,mmu_walks_total,mmu_walk_depth,tlb_coalesce_members,tlb_set_occupancy \
    -trace "$tmpdir/trace.json" \
    -events "$tmpdir/events.jsonl" > /dev/null
"$tmpdir/mixtlb" -exp fig15r -quick -csv -jobs 4 > "$tmpdir/tel-off.csv"
if ! cmp -s "$tmpdir/tel-on.csv" "$tmpdir/tel-off.csv"; then
    echo "FAIL: result table differs with telemetry on vs off" >&2
    diff "$tmpdir/tel-on.csv" "$tmpdir/tel-off.csv" >&2 || true
    exit 1
fi

# Zero-alloc guard: the disabled-telemetry translate loop must not
# allocate (nil-sink fast path). Run without -race, which inflates counts.
echo "== telemetry zero-alloc guard"
go test ./internal/mmu/ -run 'TestTranslateZeroAllocTelemetry' -count=1 > /dev/null
echo "== OK"
