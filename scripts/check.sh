#!/bin/sh
# Tier-1 gate: build, vet, race-enabled tests, fuzz-corpus smoke, and a
# parallel-determinism check. Mirrors `make check` for environments
# without make. Any failing chaos/differential test prints the
# reproducing seed in its failure message — replay with
#   go test -run <TestName> ./internal/...
# after plugging that seed into the test, or
#   go run ./cmd/mixtlb -exp chaos -seed <seed>
# for experiment-level failures. A failing experiment cell prints a
# `reproduce: mixtlb -exp <name> -cell "<cell>" ...` line — run exactly
# that to replay the one simulation that failed.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race -timeout 20m ./...

# Fuzz smoke: run each fuzz target briefly beyond its seed corpus. The
# corpora under testdata/fuzz/ already ran as regular test cases above;
# this adds a short mutation pass to catch fresh encode/decode breakage.
echo "== go test -fuzz (10s per target)"
go test ./internal/trace/ -fuzz 'FuzzRoundTrip' -fuzztime 10s -run '^$'
go test ./internal/trace/ -fuzz 'FuzzReader' -fuzztime 10s -run '^$'
go test ./internal/addr/ -fuzz 'FuzzAddrArithmetic' -fuzztime 10s -run '^$'
go test ./internal/addr/ -fuzz 'FuzzSpaceArithmetic' -fuzztime 10s -run '^$'
go test ./internal/pagetable/ -fuzz 'FuzzPTE' -fuzztime 10s -run '^$'
go test ./internal/journal/ -fuzz 'FuzzJournalDecode' -fuzztime 10s -run '^$'
go test ./internal/tlb/ -fuzz 'FuzzVictimBundle' -fuzztime 10s -run '^$'

# Parallel determinism: the same experiment at -jobs 1 and -jobs 4 must
# produce byte-identical tables (cell seeds derive from cell identity,
# never from scheduling).
echo "== mixtlb -jobs determinism"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/mixtlb" ./cmd/mixtlb
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 1 > "$tmpdir/jobs1.csv"
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 4 > "$tmpdir/jobs4.csv"
if ! cmp -s "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv"; then
    echo "FAIL: -jobs 4 output differs from -jobs 1" >&2
    diff "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv" >&2 || true
    exit 1
fi

# Crash-safe resume: run with a checkpoint journal, kill the process
# after 2 of fig12's 3 cells (the engine journals each cell before
# reporting progress, so exactly 2 records are durable), then resume at
# -jobs 1 and again at -jobs 8. Both resumed tables must be
# byte-identical to the uninterrupted jobs1.csv above; the second
# resume replays every cell without simulating anything.
echo "== crash-safe journal resume"
rc=0
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 4 -journal "$tmpdir/crash.journal" \
    -kill-after-cells 2 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
    echo "FAIL: -kill-after-cells 2 exited $rc, want 137" >&2
    exit 1
fi
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 1 \
    -journal "$tmpdir/crash.journal" -resume > "$tmpdir/resume1.csv"
if ! cmp -s "$tmpdir/jobs1.csv" "$tmpdir/resume1.csv"; then
    echo "FAIL: resumed run (-jobs 1) differs from uninterrupted run" >&2
    diff "$tmpdir/jobs1.csv" "$tmpdir/resume1.csv" >&2 || true
    exit 1
fi
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 8 \
    -journal "$tmpdir/crash.journal" -resume > "$tmpdir/resume8.csv"
if ! cmp -s "$tmpdir/jobs1.csv" "$tmpdir/resume8.csv"; then
    echo "FAIL: resumed run (-jobs 8) differs from uninterrupted run" >&2
    diff "$tmpdir/jobs1.csv" "$tmpdir/resume8.csv" >&2 || true
    exit 1
fi

# Fail-soft: a persistently failing cell must exhaust its retries,
# surface as a FAILED(...) marker row instead of aborting the grid, set
# exit code 3, and show up in the retry/fail-soft telemetry counters.
echo "== fail-soft FAILED markers"
rc=0
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 2 -fail-soft \
    -max-retries 1 -retry-backoff 10ms -inject-cell-failure hog2 \
    -metrics-out "$tmpdir/failsoft.prom" > "$tmpdir/failsoft.csv" 2> /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: fail-soft run exited $rc, want 3" >&2
    exit 1
fi
if ! grep -q 'FAILED(cell=hog2' "$tmpdir/failsoft.csv"; then
    echo "FAIL: fail-soft table missing FAILED(cell=hog2 marker" >&2
    cat "$tmpdir/failsoft.csv" >&2
    exit 1
fi
for metric in engine_cell_retries_total engine_cells_failed_soft_total; do
    if ! grep -q "$metric" "$tmpdir/failsoft.prom"; then
        echo "FAIL: metrics dump missing $metric" >&2
        exit 1
    fi
done

# Design registry: every registered design (builtin and the shipped
# example file, including the victim-level specs) must validate and
# construct, and the hierarchy comparison over file-loaded designs must
# be jobs-invariant like every experiment.
echo "== design registry"
go test ./internal/mmu/ -run 'TestRegistryBuiltinsConstruct|TestDesignSpecValidationErrors|TestParseSpecs' -count=1 > /dev/null
"$tmpdir/mixtlb" -design-file examples/designs.json -list > /dev/null
"$tmpdir/mixtlb" -exp hierarchy -quick -csv -jobs 1 \
    -design-file examples/designs.json -designs split+pwc,mix-as-l2,mix+pwc > "$tmpdir/hier1.csv"
"$tmpdir/mixtlb" -exp hierarchy -quick -csv -jobs 8 \
    -design-file examples/designs.json -designs split+pwc,mix-as-l2,mix+pwc > "$tmpdir/hier8.csv"
if ! cmp -s "$tmpdir/hier1.csv" "$tmpdir/hier8.csv"; then
    echo "FAIL: hierarchy -jobs 8 output differs from -jobs 1" >&2
    diff "$tmpdir/hier1.csv" "$tmpdir/hier8.csv" >&2 || true
    exit 1
fi

# benchdiff smoke: a timing file diffed against itself must join every
# cell, report 1.00x, and exit 0.
echo "== benchdiff identity"
"$tmpdir/mixtlb" -exp fig15r -quick -jobs 1 -bench-out "$tmpdir/bench.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/bench.json" "$tmpdir/bench.json" > /dev/null

# Journaling overhead: checkpointing must be cheap relative to the
# simulation itself. Quick cells run ~60ms each, where scheduler noise
# alone exceeds 15%, so this gate runs longer cells (-refs 300000, after
# a warmup pass) and checks the geomean: journaling-on must stay within
# 15% of journaling-off overall, with a loose 40% per-cell backstop
# against pathological regressions.
echo "== journaling overhead"
"$tmpdir/mixtlb" -exp fig15r -quick -refs 300000 -jobs 1 > /dev/null # warmup
"$tmpdir/mixtlb" -exp fig15r -quick -refs 300000 -jobs 1 \
    -bench-out "$tmpdir/nojournal.json" > /dev/null
"$tmpdir/mixtlb" -exp fig15r -quick -refs 300000 -jobs 1 \
    -journal "$tmpdir/overhead.journal" -bench-out "$tmpdir/journal.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/nojournal.json" "$tmpdir/journal.json" \
    -max-regression 40 > "$tmpdir/overhead.txt"
geomean=$(awk '/geomean/ { g=$NF; sub(/x$/, "", g); print g }' "$tmpdir/overhead.txt")
if [ -z "$geomean" ] || ! awk -v g="$geomean" 'BEGIN { exit !(g >= 0.85) }'; then
    echo "FAIL: journaling overhead geomean ${geomean:-?}x is below the 0.85x floor" >&2
    cat "$tmpdir/overhead.txt" >&2
    exit 1
fi

# Victim level: the cache-backed victim designs must satisfy the
# metamorphic/differential layer (deeper hierarchies never change the
# translation function; demotion conserves entries), and the reach study
# must be jobs-invariant like every experiment — including the
# file-loaded mix+victima-xl design.
echo "== victim level"
go test ./internal/mmu/ -run 'TestDeeperHierarchyPreservesTranslation|TestVictimInvariants|TestVictimShootdownConsistency' -count=1 > /dev/null
go test ./internal/tlb/ -run 'TestVictimDemotionConservation|TestEvictionSinkConservation' -count=1 > /dev/null
"$tmpdir/mixtlb" -exp reach -quick -csv -jobs 1 \
    -design-file examples/designs.json \
    -designs split,victima,mix+victima-xl > "$tmpdir/reach1.csv"
"$tmpdir/mixtlb" -exp reach -quick -csv -jobs 8 \
    -design-file examples/designs.json \
    -designs split,victima,mix+victima-xl > "$tmpdir/reach8.csv"
if ! cmp -s "$tmpdir/reach1.csv" "$tmpdir/reach8.csv"; then
    echo "FAIL: reach -jobs 8 output differs from -jobs 1" >&2
    diff "$tmpdir/reach1.csv" "$tmpdir/reach8.csv" >&2 || true
    exit 1
fi

# Zero-cost-when-absent: designs without a victim level must not pay for
# the subsystem. The AllocsPerRun pin keeps the victimless translate
# loop at zero heap allocations, and re-timing fig15r (whose designs are
# all victimless) against the journaling-off baseline above bounds any
# slow-path regression at the same 0.85x geomean floor.
echo "== victim zero-cost-when-absent"
go test ./internal/mmu/ -run 'TestTranslateZeroAlloc$' -count=1 > /dev/null
"$tmpdir/mixtlb" -exp fig15r -quick -refs 300000 -jobs 1 \
    -bench-out "$tmpdir/absent.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/nojournal.json" "$tmpdir/absent.json" \
    -max-regression 40 > "$tmpdir/absent.txt"
geomean=$(awk '/geomean/ { g=$NF; sub(/x$/, "", g); print g }' "$tmpdir/absent.txt")
if [ -z "$geomean" ] || ! awk -v g="$geomean" 'BEGIN { exit !(g >= 0.85) }'; then
    echo "FAIL: victimless fig15r geomean ${geomean:-?}x is below the 0.85x floor" >&2
    cat "$tmpdir/absent.txt" >&2
    exit 1
fi

# Telemetry smoke: a quick instrumented run must emit a parseable
# Prometheus dump with the core metric families, a well-formed Chrome
# trace, and a well-formed JSONL stream — and its result table must be
# byte-identical to an uninstrumented run (telemetry never feeds back
# into the simulation).
echo "== telemetry exporters"
go build -o "$tmpdir/telemetrycheck" ./cmd/telemetrycheck
"$tmpdir/mixtlb" -exp fig15r -quick -csv -jobs 4 \
    -metrics-out "$tmpdir/metrics.prom" \
    -trace-events "$tmpdir/trace.json" \
    -events-out "$tmpdir/events.jsonl" > "$tmpdir/tel-on.csv"
"$tmpdir/telemetrycheck" \
    -metrics "$tmpdir/metrics.prom" \
    -require mmu_accesses_total,mmu_walks_total,mmu_walk_depth,tlb_coalesce_members,tlb_set_occupancy \
    -trace "$tmpdir/trace.json" \
    -events "$tmpdir/events.jsonl" > /dev/null
"$tmpdir/mixtlb" -exp fig15r -quick -csv -jobs 4 > "$tmpdir/tel-off.csv"
if ! cmp -s "$tmpdir/tel-on.csv" "$tmpdir/tel-off.csv"; then
    echo "FAIL: result table differs with telemetry on vs off" >&2
    diff "$tmpdir/tel-on.csv" "$tmpdir/tel-off.csv" >&2 || true
    exit 1
fi

# Zero-alloc guard: the disabled-telemetry translate loop must not
# allocate (nil-sink fast path). Run without -race, which inflates counts.
echo "== telemetry zero-alloc guard"
go test ./internal/mmu/ -run 'TestTranslateZeroAllocTelemetry' -count=1 > /dev/null

# Cycle-provenance ledger: conservation must hold per cell across every
# registry design (chaos and shootdowns included), attribution must be an
# observer (armed vs disarmed tables byte-identical), and the translate
# loop must stay zero-alloc with the ledger attached and detached.
echo "== ledger conservation audit"
go test ./internal/ledger/ -count=1 > /dev/null
go test ./internal/mmu/ -run 'TestLedgerConservation|TestLedgerObserverOnly|TestTranslateZeroAllocLedger' -count=1 > /dev/null
go test ./internal/smp/ -run 'TestLedgerConservationUnderShootdowns' -count=1 > /dev/null
go test ./internal/perfmodel/ -count=1 > /dev/null

# The breakdown experiment (the ledger's table readout, audited in-cell)
# must be jobs-invariant like every experiment, and match its checked-in
# golden byte for byte.
echo "== breakdown attribution table"
"$tmpdir/mixtlb" -exp breakdown -quick -csv -jobs 1 > "$tmpdir/breakdown1.csv"
"$tmpdir/mixtlb" -exp breakdown -quick -csv -jobs 8 > "$tmpdir/breakdown8.csv"
if ! cmp -s "$tmpdir/breakdown1.csv" "$tmpdir/breakdown8.csv"; then
    echo "FAIL: breakdown -jobs 8 output differs from -jobs 1" >&2
    diff "$tmpdir/breakdown1.csv" "$tmpdir/breakdown8.csv" >&2 || true
    exit 1
fi
# (-csv prints one extra trailing newline after the table; the golden
# stores the bare table, so normalize before comparing.)
cat internal/experiments/testdata/golden/breakdown.csv > "$tmpdir/breakdown.golden"
printf '\n' >> "$tmpdir/breakdown.golden"
if ! cmp -s "$tmpdir/breakdown.golden" "$tmpdir/breakdown1.csv"; then
    echo "FAIL: breakdown output differs from its golden" >&2
    diff "$tmpdir/breakdown.golden" "$tmpdir/breakdown1.csv" >&2 || true
    exit 1
fi

# Ledger overhead: arming attribution on fig15r must keep the geomean
# within the same 0.85x floor as the journaling/victim gates, against the
# journaling-off baseline timed above.
echo "== ledger overhead"
"$tmpdir/mixtlb" -exp fig15r -quick -refs 300000 -jobs 1 -ledger-audit -tail 8 \
    -bench-out "$tmpdir/ledger.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/nojournal.json" "$tmpdir/ledger.json" \
    -max-regression 40 > "$tmpdir/ledger-overhead.txt"
geomean=$(awk '/geomean/ { g=$NF; sub(/x$/, "", g); print g }' "$tmpdir/ledger-overhead.txt")
if [ -z "$geomean" ] || ! awk -v g="$geomean" 'BEGIN { exit !(g >= 0.85) }'; then
    echo "FAIL: ledger-armed fig15r geomean ${geomean:-?}x is below the 0.85x floor" >&2
    cat "$tmpdir/ledger-overhead.txt" >&2
    exit 1
fi

# Cross-ISA translation front end: descriptor packages and conformance
# (LA57 vs 4-level, Sv39 vs Sv48 differential; typed ISA validation on
# specs and JobSpecs), then the xisa experiment — jobs-invariant like
# every experiment and byte-identical to its checked-in golden.
echo "== cross-ISA descriptors"
go test ./internal/isa/ -count=1 > /dev/null
go test ./internal/mmu/ -run 'TestISAConformance|TestSpecISAValidation' -count=1 > /dev/null
"$tmpdir/mixtlb" -exp xisa -quick -csv -jobs 1 > "$tmpdir/xisa1.csv"
"$tmpdir/mixtlb" -exp xisa -quick -csv -jobs 8 > "$tmpdir/xisa8.csv"
if ! cmp -s "$tmpdir/xisa1.csv" "$tmpdir/xisa8.csv"; then
    echo "FAIL: xisa -jobs 8 output differs from -jobs 1" >&2
    diff "$tmpdir/xisa1.csv" "$tmpdir/xisa8.csv" >&2 || true
    exit 1
fi
cat internal/experiments/testdata/golden/xisa.csv > "$tmpdir/xisa.golden"
printf '\n' >> "$tmpdir/xisa.golden"
if ! cmp -s "$tmpdir/xisa.golden" "$tmpdir/xisa1.csv"; then
    echo "FAIL: xisa output differs from its golden" >&2
    diff "$tmpdir/xisa.golden" "$tmpdir/xisa1.csv" >&2 || true
    exit 1
fi

# Descriptor indirection must stay free on the hot path: the
# descriptor-parameterized translate loop (deep radixes, NAPOT/contig
# block detection, 16-entry extended walk lines) allocates nothing in
# steady state, and the default-descriptor perf group stays within the
# same 0.85x geomean floor of the committed pre-descriptor seed snapshot
# (BENCH_experiments.json). The per-cell backstop is loose (75%) because
# the snapshot predates this session's scheduler noise; the geomean is
# the real gate.
echo "== descriptor indirection overhead"
go test ./internal/mmu/ -run 'TestTranslateZeroAllocISA' -count=1 > /dev/null
"$tmpdir/mixtlb" -exp perf -quick -jobs 1 -bench-out "$tmpdir/isa-perf.json" > /dev/null
./scripts/benchdiff.sh BENCH_experiments.json "$tmpdir/isa-perf.json" \
    -max-regression 75 > "$tmpdir/isa-overhead.txt"
geomean=$(awk '/geomean/ { g=$NF; sub(/x$/, "", g); print g }' "$tmpdir/isa-overhead.txt")
if [ -z "$geomean" ] || ! awk -v g="$geomean" 'BEGIN { exit !(g >= 0.85) }'; then
    echo "FAIL: descriptor-indirection geomean ${geomean:-?}x is below the 0.85x floor vs the seed snapshot" >&2
    cat "$tmpdir/isa-overhead.txt" >&2
    exit 1
fi

# Bench history: benchtrend must join this run's snapshots and exit
# clean; with CHECK_ARCHIVE_BENCH=1 the newest snapshot is archived
# under bench_history/ for long-term trend tracking.
echo "== benchtrend"
go build -o "$tmpdir/benchtrend" ./cmd/benchtrend
mkdir -p "$tmpdir/hist"
cp "$tmpdir/nojournal.json" "$tmpdir/hist/0001.json"
cp "$tmpdir/absent.json" "$tmpdir/hist/0002.json"
"$tmpdir/benchtrend" -max-regression 40 "$tmpdir/hist" > /dev/null
if [ "${CHECK_ARCHIVE_BENCH:-0}" = "1" ]; then
    mkdir -p bench_history
    cp "$tmpdir/absent.json" "bench_history/$(date -u +%Y%m%dT%H%M%SZ).json"
    "$tmpdir/benchtrend" bench_history/ || true # informational on real history
fi
echo "== OK"
