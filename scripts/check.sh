#!/bin/sh
# Tier-1 gate: build, vet, race-enabled tests, fuzz-corpus smoke, and a
# parallel-determinism check. Mirrors `make check` for environments
# without make. Any failing chaos/differential test prints the
# reproducing seed in its failure message — replay with
#   go test -run <TestName> ./internal/...
# after plugging that seed into the test, or
#   go run ./cmd/mixtlb -exp chaos -seed <seed>
# for experiment-level failures. A failing experiment cell prints a
# `reproduce: mixtlb -exp <name> -cell "<cell>" ...` line — run exactly
# that to replay the one simulation that failed.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...

# Fuzz smoke: run each fuzz target briefly beyond its seed corpus. The
# corpora under testdata/fuzz/ already ran as regular test cases above;
# this adds a short mutation pass to catch fresh encode/decode breakage.
echo "== go test -fuzz (10s per target)"
go test ./internal/trace/ -fuzz 'FuzzRoundTrip' -fuzztime 10s -run '^$'
go test ./internal/trace/ -fuzz 'FuzzReader' -fuzztime 10s -run '^$'
go test ./internal/addr/ -fuzz 'FuzzAddrArithmetic' -fuzztime 10s -run '^$'

# Parallel determinism: the same experiment at -jobs 1 and -jobs 4 must
# produce byte-identical tables (cell seeds derive from cell identity,
# never from scheduling).
echo "== mixtlb -jobs determinism"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/mixtlb" ./cmd/mixtlb
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 1 > "$tmpdir/jobs1.csv"
"$tmpdir/mixtlb" -exp fig12 -quick -csv -jobs 4 > "$tmpdir/jobs4.csv"
if ! cmp -s "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv"; then
    echo "FAIL: -jobs 4 output differs from -jobs 1" >&2
    diff "$tmpdir/jobs1.csv" "$tmpdir/jobs4.csv" >&2 || true
    exit 1
fi

# benchdiff smoke: a timing file diffed against itself must join every
# cell, report 1.00x, and exit 0.
echo "== benchdiff identity"
"$tmpdir/mixtlb" -exp fig15r -quick -jobs 1 -bench-out "$tmpdir/bench.json" > /dev/null
./scripts/benchdiff.sh "$tmpdir/bench.json" "$tmpdir/bench.json" > /dev/null
echo "== OK"
