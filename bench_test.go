// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (one Benchmark per figure, plus the
// ablation benches DESIGN.md calls out) and micro-benchmarks of the MIX
// TLB's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches execute the corresponding experiment at the quick scale
// and report headline metrics via b.ReportMetric (improvement percentages,
// miss ratios), so shape regressions show up in benchmark diffs. The full
// tables come from `go run ./cmd/mixtlb -exp <name>`.
package bench

import (
	"context"
	"strconv"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/experiments"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

// runExperiment executes a registered experiment b.N times, returning the
// last table for metric extraction.
func runExperiment(b *testing.B, name string) *stats.Table {
	b.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run(context.Background(), experiments.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// avgColumn averages a numeric column over rows passing the filter.
func avgColumn(b *testing.B, tbl *stats.Table, col int, filter func([]string) bool) float64 {
	b.Helper()
	sum, n := 0.0, 0
	for _, row := range tbl.Rows {
		if filter != nil && !filter(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			b.Fatalf("parsing %q: %v", row[col], err)
		}
		sum += v
		n++
	}
	if n == 0 {
		b.Fatal("no rows matched")
	}
	return sum / float64(n)
}

func BenchmarkFigure1(b *testing.B) {
	tbl := runExperiment(b, "fig1")
	b.ReportMetric(avgColumn(b, tbl, 2, nil), "split-%runtime")
	b.ReportMetric(avgColumn(b, tbl, 3, nil), "ideal-%runtime")
}

func BenchmarkFigure9(b *testing.B) {
	tbl := runExperiment(b, "fig9")
	b.ReportMetric(avgColumn(b, tbl, 1, func(r []string) bool { return r[0] == "0" }), "superfrac-memhog0")
	b.ReportMetric(avgColumn(b, tbl, 1, func(r []string) bool { return r[0] == "80" }), "superfrac-memhog80")
}

func BenchmarkFigure10(b *testing.B) {
	tbl := runExperiment(b, "fig10")
	b.ReportMetric(avgColumn(b, tbl, 2, nil), "avg-superpage-fraction")
}

func BenchmarkFigure11(b *testing.B) {
	tbl := runExperiment(b, "fig11")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[1] == "20" }), "contig2MB-memhog20")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[1] == "60" }), "contig2MB-memhog60")
}

func BenchmarkFigure12(b *testing.B) {
	tbl := runExperiment(b, "fig12")
	b.ReportMetric(float64(len(tbl.Rows)), "cdf-points")
}

func BenchmarkFigure13(b *testing.B) {
	tbl := runExperiment(b, "fig13")
	b.ReportMetric(float64(len(tbl.Rows)), "cdf-points")
}

func BenchmarkFigure14(b *testing.B) {
	tbl := runExperiment(b, "fig14")
	b.ReportMetric(avgColumn(b, tbl, 3, nil), "avg-improvement-%")
	b.ReportMetric(avgColumn(b, tbl, 3, func(r []string) bool { return r[0] == "virtual" }), "virt-improvement-%")
}

func BenchmarkFigure15Left(b *testing.B) {
	tbl := runExperiment(b, "fig15l")
	b.ReportMetric(avgColumn(b, tbl, 3, func(r []string) bool { return r[0] == "cpu" }), "cpu-improvement-%")
}

func BenchmarkFigure15Right(b *testing.B) {
	tbl := runExperiment(b, "fig15r")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "split" }), "split-overhead-%")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "mix" }), "mix-overhead-%")
}

func BenchmarkFigure16(b *testing.B) {
	tbl := runExperiment(b, "fig16")
	b.ReportMetric(avgColumn(b, tbl, 3, func(r []string) bool { return r[0] == "mix" }), "mix-perf-%")
	b.ReportMetric(avgColumn(b, tbl, 4, func(r []string) bool { return r[0] == "mix" }), "mix-energy-%")
}

func BenchmarkFigure17(b *testing.B) {
	tbl := runExperiment(b, "fig17")
	b.ReportMetric(avgColumn(b, tbl, 6, func(r []string) bool { return r[0] == "mix" }), "mix-energy-vs-split")
}

func BenchmarkFigure18(b *testing.B) {
	tbl := runExperiment(b, "fig18")
	b.ReportMetric(avgColumn(b, tbl, 4, nil), "mix-improvement-%")
	b.ReportMetric(avgColumn(b, tbl, 5, nil), "mixcolt-improvement-%")
}

func BenchmarkAblationIndexBits(b *testing.B) {
	tbl := runExperiment(b, "ablation-index")
	b.ReportMetric(avgColumn(b, tbl, 3, nil), "miss-inflation-x")
}

func BenchmarkScaling(b *testing.B) {
	tbl := runExperiment(b, "scaling")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[1] == "512" }), "512set-overhead-%")
}

// BenchmarkDedupPolicy compares blind mirroring (the paper's Fig 8
// behaviour) with the default write-time merge.
func BenchmarkDedupPolicy(b *testing.B) {
	tbl := runExperiment(b, "duplicates")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "blind-mirrors" }), "blind-missratio")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "merge-on-fill" }), "merge-missratio")
}

// BenchmarkCoalesceCap sweeps the bundle capacity K.
func BenchmarkCoalesceCap(b *testing.B) {
	var tbl *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.CoalesceCapStudy(context.Background(), experiments.QuickScale(), []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[1] == "1" }), "K1-missratio")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[1] == "16" }), "K16-missratio")
}

// BenchmarkBundleEncoding compares the bitmap and range encodings under
// ordered and popularity-ordered miss arrival.
func BenchmarkBundleEncoding(b *testing.B) {
	var tbl *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.EncodingStudy(context.Background(), experiments.QuickScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "popularity" && r[1] == "bitmap" }), "pop-bitmap-missratio")
	b.ReportMetric(avgColumn(b, tbl, 2, func(r []string) bool { return r[0] == "popularity" && r[1] == "range" }), "pop-range-missratio")
}

// superpageEnv builds a THS-mapped footprint for the microbenchmarks.
type superpageEnv struct {
	as   *osmm.AddressSpace
	base addr.V
	fp   uint64
}

func newSuperpageEnv(b *testing.B) *superpageEnv {
	b.Helper()
	phys := physmem.NewBuddy(1 << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS})
	if err != nil {
		b.Fatal(err)
	}
	const fp = 512 << 20
	base, err := as.Mmap(fp)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := as.Populate(base, fp); err != nil {
		b.Fatal(err)
	}
	return &superpageEnv{as: as, base: base, fp: fp}
}

// benchDesignConfig runs a zipf stream through one MMU design, reporting
// per-translation simulator throughput and the design's miss ratio.
func benchDesign(b *testing.B, d mmu.Design) {
	env := newSuperpageEnv(b)
	m := tlb.Must(mmu.Build(d, env.as.PageTable(), env.as.PageTable(),
		cachesim.DefaultHierarchy(), env.as.HandleFault))
	stream := workload.NewZipf(env.base, env.fp, simrand.New(1), 0.9, 0.2, 0xbe)
	for i := 0; i < 50_000; i++ { // warm
		ref := stream.Next()
		m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
	}
	m.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := stream.Next()
		m.Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
	}
	b.StopTimer()
	b.ReportMetric(m.Stats().MissRatio(), "missratio")
	b.ReportMetric(m.Stats().CyclesPerAccess(), "cyc/translation")
}

func BenchmarkTranslateSplit(b *testing.B) { benchDesign(b, mmu.DesignSplit) }
func BenchmarkTranslateMix(b *testing.B)   { benchDesign(b, mmu.DesignMix) }

// BenchmarkAlignmentRestriction compares coalescing with and without the
// K-aligned window restriction (Sec 4.1's simplification).
func BenchmarkAlignmentRestriction(b *testing.B) {
	for _, restricted := range []bool{true, false} {
		name := "aligned"
		if !restricted {
			name = "unaligned"
		}
		b.Run(name, func(b *testing.B) {
			env := newSuperpageEnv(b)
			cfg := core.L1Config()
			cfg.NoAlignmentRestriction = !restricted
			m := tlb.Must(mmu.New(mmu.Config{Name: cfg.Name, Levels: mmu.L(tlb.Must(core.New(cfg)))},
				env.as.PageTable(), cachesim.DefaultHierarchy(), env.as.HandleFault))
			stream := workload.NewZipf(env.base, env.fp, simrand.New(1), 0.9, 0, 0xaa)
			for i := 0; i < 50_000; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC})
			}
			m.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC})
			}
			b.StopTimer()
			b.ReportMetric(m.Stats().MissRatio(), "missratio")
		})
	}
}

// BenchmarkFillStrategy compares the paper's mirror-all-sets prefetch
// strategy against filling only the probed set (Sec 4.2).
func BenchmarkFillStrategy(b *testing.B) {
	for _, probedOnly := range []bool{false, true} {
		name := "mirror-all-sets"
		if probedOnly {
			name = "probed-set-only"
		}
		b.Run(name, func(b *testing.B) {
			env := newSuperpageEnv(b)
			cfg := core.L1Config()
			cfg.MirrorProbedSetOnly = probedOnly
			m := tlb.Must(mmu.New(mmu.Config{Name: cfg.Name, Levels: mmu.L(tlb.Must(core.New(cfg)))},
				env.as.PageTable(), cachesim.DefaultHierarchy(), env.as.HandleFault))
			stream := workload.NewZipf(env.base, env.fp, simrand.New(1), 0.9, 0, 0xab)
			for i := 0; i < 50_000; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC})
			}
			m.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref := stream.Next()
				m.Translate(tlb.Request{VA: ref.VA, PC: ref.PC})
			}
			b.StopTimer()
			b.ReportMetric(m.Stats().MissRatio(), "missratio")
		})
	}
}

// BenchmarkMixLookupHit measures the simulator's raw lookup cost on a
// resident superpage bundle.
func BenchmarkMixLookupHit(b *testing.B) {
	m := tlb.Must(core.New(core.L1Config()))
	trs := make([]pagetable.Translation, 8)
	for i := range trs {
		trs[i] = pagetable.Translation{
			VA: addr.V(16+i) << addr.Shift2M, PA: addr.P(100+i) << addr.Shift2M,
			Size: addr.Page2M, Perm: addr.PermRW, Accessed: true,
		}
	}
	m.Fill(tlb.Request{VA: trs[0].VA}, pagetable.WalkResult{Found: true, Translation: trs[0], Line: trs})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := trs[i%8].VA + addr.V((i*addr.Size4K)&(addr.Size2M-1))
		if r := m.Lookup(tlb.Request{VA: va}); !r.Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkMixFill measures the cost of a coalescing mirrored fill.
func BenchmarkMixFill(b *testing.B) {
	m := tlb.Must(core.New(core.L1Config()))
	trs := make([]pagetable.Translation, 8)
	for i := range trs {
		trs[i] = pagetable.Translation{
			VA: addr.V(16+i) << addr.Shift2M, PA: addr.P(100+i) << addr.Shift2M,
			Size: addr.Page2M, Perm: addr.PermRW, Accessed: true,
		}
	}
	walk := pagetable.WalkResult{Found: true, Translation: trs[0], Line: trs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fill(tlb.Request{VA: trs[0].VA}, walk)
	}
}

// BenchmarkPageWalk measures the simulated 4-level walk.
func BenchmarkPageWalk(b *testing.B) {
	env := newSuperpageEnv(b)
	pt := env.as.PageTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := env.base + addr.V((uint64(i)*addr.Size4K)%env.fp)
		if res := pt.Walk(va); !res.Found {
			b.Fatal("walk missed")
		}
	}
}

// BenchmarkNestedWalk measures the two-dimensional walk. (It builds its
// own small VM.)
func BenchmarkBuddyAlloc(b *testing.B) {
	buddy := physmem.NewBuddy(4 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, ok := buddy.AllocOrder(0)
		if !ok {
			b.StopTimer()
			buddy = physmem.NewBuddy(4 << 30)
			b.StartTimer()
			continue
		}
		_ = f
	}
}

// BenchmarkInvalidation reports the Sec 4.4 shootdown refill traffic for
// each design (bitmap vs range vs split).
func BenchmarkInvalidation(b *testing.B) {
	tbl := runExperiment(b, "invalidation")
	b.ReportMetric(avgColumn(b, tbl, 1, func(r []string) bool { return r[0] == "mix-bitmap" }), "bitmap-walks/1k")
	b.ReportMetric(avgColumn(b, tbl, 1, func(r []string) bool { return r[0] == "mix-range" }), "range-walks/1k")
}
