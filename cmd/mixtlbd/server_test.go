package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mixtlb/internal/telemetry"
)

func testServer(t *testing.T, cfg Config, runJob func(ctx context.Context, j *job)) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	reg := telemetry.NewRegistry()
	s := newServer(cfg, reg, telemetry.NewTracer(0), runJob)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]string{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == stateFailed && want != stateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return jobStatus{}
}

func instantStub(ctx context.Context, j *job) {
	j.mu.Lock()
	j.title = "stub"
	j.csv = "cell,value\nok,1\n"
	j.mu.Unlock()
}

func TestSubmitStatusResult(t *testing.T) {
	_, ts := testServer(t, Config{}, instantStub)
	resp, out := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	if resp.StatusCode != http.StatusAccepted || out["id"] == "" {
		t.Fatalf("submit: %d %v", resp.StatusCode, out)
	}
	waitState(t, ts, out["id"], stateDone)
	res, err := http.Get(ts.URL + "/jobs/" + out["id"] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := res.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if res.StatusCode != http.StatusOK || !strings.Contains(body.String(), "ok,1") {
		t.Fatalf("result: %d %q", res.StatusCode, body.String())
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("content type = %q", ct)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{MaxRefs: 1000}, instantStub)
	cases := []string{
		`{"experiment":"nope"}`,
		`{"experiment":"fig12","quick":true,"workloads":["zzz"]}`,
		`{"experiment":"fig12","quick":true,"cell_deadline":"soon"}`,
		`{"experiment":"fig12","quick":true,"isa":"pdp-11"}`,
		`{"experiment":"fig12","quick":true,"refs":999999}`, // over budget
		`{"experiment":"fig12","unknown_field":1}`,
		`not json`,
	}
	for _, body := range cases {
		resp, out := submit(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %v, want 400", body, resp.StatusCode, out)
		}
	}
}

func TestQueueFullAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	blocked := func(ctx context.Context, j *job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	s, ts := testServer(t, Config{QueueDepth: 2, RetryAfter: 7 * time.Second}, blocked)
	defer close(release)

	// One job running (drained from the queue), two parked in it.
	resp, first := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal("first submit refused")
	}
	waitState(t, ts, first["id"], stateRunning)
	for i := 0; i < 2; i++ {
		if resp, _ := submit(t, ts, `{"experiment":"fig12","quick":true}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue submit %d refused", i)
		}
	}
	resp, out := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %v, want 429", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	prom := s.reg.PrometheusString()
	if !strings.Contains(prom, `mixtlbd_rejected_total{reason="queue_full"} 1`) {
		t.Errorf("metrics missing rejection counter:\n%s", prom)
	}
	if !strings.Contains(prom, "mixtlbd_queue_depth") {
		t.Errorf("metrics missing queue depth gauge")
	}
}

func TestCancelRunningJob(t *testing.T) {
	blocked := func(ctx context.Context, j *job) { <-ctx.Done() }
	_, ts := testServer(t, Config{}, blocked)
	_, out := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	waitState(t, ts, out["id"], stateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+out["id"], nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, ts, out["id"], stateCanceled)
	if st.Error == "" {
		t.Error("canceled job has no error text")
	}
}

func TestDrainRefusesAndCancels(t *testing.T) {
	blocked := func(ctx context.Context, j *job) { <-ctx.Done() }
	s, ts := testServer(t, Config{DrainTimeout: 5 * time.Second}, blocked)
	_, running := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	waitState(t, ts, running["id"], stateRunning)
	s.Drain()
	if st := getStatus(t, ts, running["id"]); st.State != stateCanceled {
		t.Errorf("running job state after drain = %s, want canceled", st.State)
	}
	resp, _ := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hz.StatusCode)
	}
}

// TestRealJobResumesFromJournal runs the actual simulator twice on the
// same spec: the second job must replay every cell from the first job's
// journal and produce the identical table.
func TestRealJobResumesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, ts := testServer(t, Config{CellJobs: 4}, nil)
	spec := `{"experiment":"fig12","quick":true}`

	fetch := func(id string) string {
		waitState(t, ts, id, stateDone)
		res, err := http.Get(ts.URL + "/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var b strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, rerr := res.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("result: %d %s", res.StatusCode, b.String())
		}
		return b.String()
	}

	_, j1 := submit(t, ts, spec)
	csv1 := fetch(j1["id"])
	if st := getStatus(t, ts, j1["id"]); st.ReplayedCells != 0 {
		t.Errorf("first run replayed %d cells", st.ReplayedCells)
	}

	_, j2 := submit(t, ts, spec)
	csv2 := fetch(j2["id"])
	if csv1 != csv2 {
		t.Errorf("resumed result differs:\n%s\nvs\n%s", csv1, csv2)
	}
	st := getStatus(t, ts, j2["id"])
	if st.ReplayedCells == 0 {
		t.Error("second run replayed nothing — journal resume broken")
	}
	prom := s.reg.PrometheusString()
	for _, want := range []string{"mixtlbd_resume_replayed_total", "engine_journal_replayed_total",
		`mixtlbd_jobs_total{state="done"} 2`} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// A different seed must not share the journal.
	_, j3 := submit(t, ts, `{"experiment":"fig12","quick":true,"seed":7}`)
	fetch(j3["id"])
	if st := getStatus(t, ts, j3["id"]); st.ReplayedCells != 0 {
		t.Errorf("different-seed job replayed %d cells from a foreign journal", st.ReplayedCells)
	}
}

// TestRealJobFailSoft runs the real simulator with an injected
// persistently-failing cell: the job must finish "done" (fail-soft is the
// daemon default), surface the FAILED marker in both status and result,
// and expose the retry counters on /metrics.
func TestRealJobFailSoft(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var s *Server
	runner := func(ctx context.Context, j *job) {
		s.runExperimentWithFault(ctx, j, "hog2")
	}
	var ts *httptest.Server
	s, ts = testServer(t, Config{CellJobs: 4}, runner)
	_, out := submit(t, ts, `{"experiment":"fig12","quick":true,"max_retries":1}`)
	st := waitState(t, ts, out["id"], stateDone)
	if len(st.FailedCells) != 1 || !strings.Contains(st.FailedCells[0], "FAILED(cell=hog2") {
		t.Fatalf("failed cells = %v, want one hog2 marker", st.FailedCells)
	}
	res, err := http.Get(ts.URL + "/jobs/" + out["id"] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var b strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := res.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(b.String(), "FAILED(cell=hog2") {
		t.Errorf("result table missing FAILED marker:\n%s", b.String())
	}
	prom := s.reg.PrometheusString()
	if !strings.Contains(prom, "engine_cell_retries_total") ||
		!strings.Contains(prom, "engine_cells_failed_soft_total") {
		t.Errorf("metrics missing retry/fail-soft counters:\n%s", prom)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := testServer(t, Config{}, instantStub)
	for _, path := range []string{"/jobs/job-999999", "/jobs/job-999999/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}
