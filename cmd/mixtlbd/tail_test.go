package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mixtlb/internal/logx"
	"mixtlb/internal/telemetry"
)

// syncBuffer collects log output from the runner goroutine race-free.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestLifecycleEventsLogged pins the daemon's structured lifecycle
// stream: accepted, started, done, and draining records with the job id
// attached, parseable as JSON.
func TestLifecycleEventsLogged(t *testing.T) {
	var buf syncBuffer
	lg, err := logx.New(&buf, logx.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{DataDir: t.TempDir(), Log: lg}, instantStub)
	_, out := submit(t, ts, `{"experiment":"fig12","quick":true}`)
	waitState(t, ts, out["id"], stateDone)
	s.Drain()

	want := map[string]bool{"job accepted": false, "job started": false, "job done": false, "draining": false}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q (%v)", line, err)
		}
		msg, _ := rec["msg"].(string)
		if _, tracked := want[msg]; tracked {
			want[msg] = true
			if msg != "draining" && rec["job"] != out["id"] {
				t.Errorf("%q record names job %v, want %v", msg, rec["job"], out["id"])
			}
		}
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("lifecycle record %q never logged:\n%s", msg, buf.String())
		}
	}
}

// TestDebugTailEndpoint seeds the daemon's tracer with tail events and
// reads them back through GET /debug/tail.
func TestDebugTailEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	s := newServer(Config{DataDir: t.TempDir()}, reg, tracer,
		func(ctx context.Context, j *job) {})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	tracer.Instant(telemetry.TailCategory, "slow_translation", 0, 120,
		"design", "mix", "va", "0xdead000")
	tracer.Instant(telemetry.TailCategory, "slow_translation", 0, 80,
		"design", "split", "va", "0xbeef000")

	resp, err := http.Get(ts.URL + "/debug/tail?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Count int                     `json:"count"`
		Tail  []telemetry.TailRecord `json:"tail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 2 || len(doc.Tail) != 1 {
		t.Fatalf("count=%d len=%d, want 2 and 1", doc.Count, len(doc.Tail))
	}
	if doc.Tail[0].Cycles != 120 || doc.Tail[0].Args["design"] != "mix" {
		t.Errorf("slowest-first violated: %+v", doc.Tail[0])
	}
}
