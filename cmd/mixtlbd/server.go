package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mixtlb/internal/experiments"
	"mixtlb/internal/journal"
	"mixtlb/internal/logx"
	"mixtlb/internal/telemetry"
)

// JobSpec is the submission body of POST /jobs. Refs is the per-cell
// measured-reference count — the unit the per-job work budget is
// denominated in; zero takes the scale default.
type JobSpec struct {
	Experiment string   `json:"experiment"`
	Quick      bool     `json:"quick,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	// ISA names the translation descriptor every native environment's
	// page table implements (empty = default x86-64). Validated up
	// front: an unknown name rejects the submission as bad_spec.
	ISA          string `json:"isa,omitempty"`
	Refs         uint64 `json:"refs,omitempty"`
	Jobs         int    `json:"jobs,omitempty"` // worker pool for the job's cells
	MaxRetries   int    `json:"max_retries,omitempty"`
	CellDeadline string `json:"cell_deadline,omitempty"` // Go duration, e.g. "2m"
	FailSoft     *bool  `json:"fail_soft,omitempty"`     // default true under the daemon
	// LedgerAudit arms the cycle-attribution ledger on every cell;
	// TailK records the K slowest translations per cell, surfaced at
	// GET /debug/tail. Both are observers: result tables are
	// byte-identical with them on or off.
	LedgerAudit bool `json:"ledger_audit,omitempty"`
	TailK       int  `json:"tail_k,omitempty"`
}

// job states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// job is one queued or completed experiment run.
type job struct {
	ID   string
	Spec JobSpec

	mu       sync.Mutex
	state    string
	err      string
	title    string
	csv      string
	enqueued time.Time
	started  time.Time
	finished time.Time
	replayed int
	failures []string // FAILED cell markers
	cancel   context.CancelFunc
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// jobStatus is the wire shape of GET /jobs/{id}.
type jobStatus struct {
	ID            string   `json:"id"`
	State         string   `json:"state"`
	Experiment    string   `json:"experiment"`
	Error         string   `json:"error,omitempty"`
	EnqueuedAt    string   `json:"enqueued_at"`
	StartedAt     string   `json:"started_at,omitempty"`
	FinishedAt    string   `json:"finished_at,omitempty"`
	ReplayedCells int      `json:"replayed_cells"`
	FailedCells   []string `json:"failed_cells,omitempty"`
}

// Config sizes the daemon.
type Config struct {
	DataDir      string        // journal directory (one file per spec fingerprint)
	QueueDepth   int           // bounded job queue; submissions beyond it get 429
	MaxRefs      uint64        // per-job budget: max measured refs per cell
	JobTimeout   time.Duration // wall-clock budget per job (0 disables)
	CellJobs     int           // worker pool per job (0 = GOMAXPROCS)
	DrainTimeout time.Duration // how long Drain waits for the running job
	RetryAfter   time.Duration // hint returned with 429/503
	Log          *slog.Logger  // lifecycle event log (nil = discard)
}

// Server owns the job queue, the runner loop, and the HTTP API.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	col    *telemetry.Collector
	tracer *telemetry.Tracer
	lg     *slog.Logger

	mu    sync.Mutex
	jobs  map[string]*job
	order []string

	queue    chan *job
	draining atomic.Bool
	idSeq    atomic.Int64
	wg       sync.WaitGroup

	// runJob executes one job; tests inject a stub to exercise the HTTP
	// and queue machinery without simulating.
	runJob func(ctx context.Context, j *job)
}

// NewServer builds a daemon and starts its runner loop.
func NewServer(cfg Config, reg *telemetry.Registry, tracer *telemetry.Tracer) *Server {
	return newServer(cfg, reg, tracer, nil)
}

// newServer is NewServer with an injectable job runner (tests exercise
// the queue and HTTP machinery against a stub instead of the simulator).
// The runner must be fixed before the loop goroutine starts.
func newServer(cfg Config, reg *telemetry.Registry, tracer *telemetry.Tracer,
	runJob func(ctx context.Context, j *job)) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 15 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log, _ = logx.New(io.Discard, logx.FormatText)
	}
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		col:    telemetry.NewCollector(reg, tracer),
		tracer: tracer,
		lg:     cfg.Log,
		jobs:   map[string]*job{},
		queue:  make(chan *job, cfg.QueueDepth),
	}
	s.runJob = s.runExperiment
	if runJob != nil {
		s.runJob = runJob
	}
	s.wg.Add(1)
	go s.runLoop()
	return s
}

// counters/gauges. Families:
//
//	mixtlbd_queue_depth              gauge: jobs waiting in the queue
//	mixtlbd_jobs_total{state=...}    counter: jobs by terminal state
//	mixtlbd_rejected_total{reason}   counter: refused submissions
//	mixtlbd_resume_replayed_total    counter: cells served from journals
//	mixtlbd_resume_simulated_total   counter: cells actually simulated
//
// (engine_* counters — retries, watchdog fires, journal replays — land in
// the same registry via the jobs' scoped collectors.)
func (s *Server) queueGauge() *telemetry.Gauge { return s.col.Gauge("mixtlbd_queue_depth") }

func (s *Server) countJob(state string) {
	s.col.Counter("mixtlbd_jobs_total", "state", state).Inc()
}

func (s *Server) countRejected(reason string) {
	s.col.Counter("mixtlbd_rejected_total", "reason", reason).Inc()
}

// runLoop drains the queue one job at a time; each job parallelizes its
// own cell grid, so serializing jobs keeps the machine's core budget
// predictable under a full queue.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueGauge().Add(-1)
		j.mu.Lock()
		canceled := j.state == stateCanceled
		var ctx context.Context
		if !canceled {
			ctx, j.cancel = context.WithCancel(context.Background())
			j.state = stateRunning
			j.started = time.Now()
		}
		j.mu.Unlock()
		if canceled {
			continue
		}
		s.lg.Info("job started", "job", j.ID, "experiment", j.Spec.Experiment)
		s.runJob(ctx, j)
		j.mu.Lock()
		j.finished = time.Now()
		j.cancel = nil
		switch {
		case j.state == stateCanceled:
		case j.err != "":
			j.state = stateFailed
		default:
			j.state = stateDone
		}
		s.countJob(j.state)
		state, errMsg, elapsed := j.state, j.err, j.finished.Sub(j.started).Round(time.Millisecond)
		j.mu.Unlock()
		switch state {
		case stateFailed:
			s.lg.Error("job failed", "job", j.ID, "experiment", j.Spec.Experiment,
				"err", errMsg, "elapsed", elapsed.String())
		case stateCanceled:
			s.lg.Warn("job canceled", "job", j.ID, "experiment", j.Spec.Experiment, "reason", errMsg)
		default:
			s.lg.Info("job done", "job", j.ID, "experiment", j.Spec.Experiment,
				"elapsed", elapsed.String())
		}
	}
}

// journalPath keys a spec's checkpoint file by its configuration
// fingerprint, so resubmitting the same spec — after a crash, a drain, or
// just again — replays every cell the previous attempt completed.
func (s *Server) journalPath(experiment, fingerprint string) string {
	h := fnv.New64a()
	h.Write([]byte(experiment))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return filepath.Join(s.cfg.DataDir, fmt.Sprintf("%s-%016x.journal", experiment, h.Sum64()))
}

// scaleFor turns a validated spec into the run's Scale.
func (s *Server) scaleFor(spec JobSpec) experiments.Scale {
	scale := experiments.DefaultScale()
	if spec.Quick {
		scale = experiments.QuickScale()
	}
	if spec.Seed > 0 {
		scale.Seed = spec.Seed
	}
	if len(spec.Workloads) > 0 {
		scale.Workloads = spec.Workloads
	}
	scale.ISA = spec.ISA
	if spec.Refs > 0 {
		scale.MeasureRefs = spec.Refs
		scale.WarmupRefs = spec.Refs / 2
	}
	scale.Jobs = spec.Jobs
	if scale.Jobs == 0 {
		scale.Jobs = s.cfg.CellJobs
	}
	scale.MaxRetries = spec.MaxRetries
	if d, err := time.ParseDuration(spec.CellDeadline); err == nil && spec.CellDeadline != "" {
		scale.CellDeadline = d
	}
	scale.FailSoft = spec.FailSoft == nil || *spec.FailSoft
	scale.Failures = &experiments.FailureLog{}
	scale.Telemetry = s.col
	scale.LedgerAudit = spec.LedgerAudit
	scale.TailK = spec.TailK
	return scale
}

// runExperiment is the real job runner: open (or resume) the spec's
// journal, run under RunSafe, and store the rendered table.
func (s *Server) runExperiment(ctx context.Context, j *job) {
	s.runExperimentWithFault(ctx, j, "")
}

// runExperimentWithFault is runExperiment plus an injected per-cell fault
// (cells whose name contains faultCell fail every attempt) — the test
// hook for exercising the fail-soft path over the real simulator.
func (s *Server) runExperimentWithFault(ctx context.Context, j *job, faultCell string) {
	e, err := experiments.ByName(j.Spec.Experiment)
	if err != nil {
		j.mu.Lock()
		j.err = err.Error()
		j.mu.Unlock()
		return
	}
	scale := s.scaleFor(j.Spec)
	if faultCell != "" {
		scale.RetryBackoff = time.Millisecond
		scale.CellFault = func(exp, cell string) error {
			if strings.Contains(cell, faultCell) {
				return fmt.Errorf("injected fault on %q", cell)
			}
			return nil
		}
	}
	jnl, err := journal.Open(s.journalPath(e.Name, scale.Fingerprint()), scale.Fingerprint())
	if err != nil {
		j.mu.Lock()
		j.err = fmt.Sprintf("journal: %v", err)
		j.mu.Unlock()
		return
	}
	scale.Journal = jnl
	replayable := jnl.Stats().Replayed
	if replayable > 0 {
		s.lg.Info("job resumed", "job", j.ID, "experiment", e.Name, "replayed_cells", replayable)
	}

	tbl, runErr := experiments.RunSafe(ctx, e, scale, s.cfg.JobTimeout)
	st := jnl.Stats()
	if cerr := jnl.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	s.col.Counter("mixtlbd_resume_replayed_total").Add(uint64(replayable))
	s.col.Counter("mixtlbd_resume_simulated_total").Add(uint64(st.Appended))

	j.mu.Lock()
	defer j.mu.Unlock()
	j.replayed = replayable
	for _, fc := range scale.Failures.ForExperiment(e.Name) {
		j.failures = append(j.failures, fc.String())
	}
	if tbl != nil {
		j.title = tbl.Title
		j.csv = tbl.CSV()
	}
	if runErr != nil {
		j.err = runErr.Error()
	}
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/tail", func(w http.ResponseWriter, r *http.Request) {
		limit := 100
		if v := r.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		s.tracer.WriteTailJSON(w, limit)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleSubmit implements admission control: a draining daemon and a full
// queue both refuse with Retry-After rather than queueing unboundedly.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	retryAfter := strconv.Itoa(int(s.cfg.RetryAfter / time.Second))
	if s.draining.Load() {
		s.countRejected("draining")
		w.Header().Set("Retry-After", retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, apiError{"draining: not accepting jobs"})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.countRejected("bad_spec")
		writeJSON(w, http.StatusBadRequest, apiError{"bad spec: " + err.Error()})
		return
	}
	if err := s.validate(spec); err != nil {
		s.countRejected(err.reason)
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	j := &job{
		ID:       fmt.Sprintf("job-%06d", s.idSeq.Add(1)),
		Spec:     spec,
		state:    stateQueued,
		enqueued: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.countRejected("queue_full")
		w.Header().Set("Retry-After", retryAfter)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs)", cap(s.queue))})
		return
	}
	s.queueGauge().Add(1)
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.lg.Info("job accepted", "job", j.ID, "experiment", spec.Experiment, "quick", spec.Quick)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID})
}

// specError is a rejected submission with its metrics reason.
type specError struct {
	reason string
	msg    string
}

func (e *specError) Error() string { return e.msg }

// validate enforces the spec's shape and the per-job work budget before
// anything is queued.
func (s *Server) validate(spec JobSpec) *specError {
	if _, err := experiments.ByName(spec.Experiment); err != nil {
		return &specError{"bad_spec", err.Error()}
	}
	if spec.CellDeadline != "" {
		if _, err := time.ParseDuration(spec.CellDeadline); err != nil {
			return &specError{"bad_spec", "cell_deadline: " + err.Error()}
		}
	}
	scale := s.scaleFor(spec)
	if err := scale.ValidateWorkloads(); err != nil {
		return &specError{"bad_spec", err.Error()}
	}
	if err := scale.ValidateISA(); err != nil {
		return &specError{"bad_spec", err.Error()}
	}
	if s.cfg.MaxRefs > 0 && scale.WarmupRefs+scale.MeasureRefs > s.cfg.MaxRefs {
		return &specError{"over_budget",
			fmt.Sprintf("job wants %d refs per cell, budget is %d",
				scale.WarmupRefs+scale.MeasureRefs, s.cfg.MaxRefs)}
	}
	return nil
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) status(j *job) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID: j.ID, State: j.state, Experiment: j.Spec.Experiment,
		Error: j.err, EnqueuedAt: j.enqueued.UTC().Format(time.RFC3339),
		ReplayedCells: j.replayed, FailedCells: append([]string(nil), j.failures...),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	return st
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]jobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			out = append(out, s.status(j))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	j.mu.Lock()
	state, title, csv, errMsg := j.state, j.title, j.csv, j.err
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprintf(w, "# %s\n%s", title, csv)
	case stateFailed, stateCanceled:
		writeJSON(w, http.StatusConflict, apiError{fmt.Sprintf("job %s: %s", state, errMsg)})
	default:
		writeJSON(w, http.StatusAccepted, s.status(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	j.mu.Lock()
	switch j.state {
	case stateQueued, stateRunning:
		j.state = stateCanceled
		j.err = "canceled by request"
		if j.cancel != nil {
			j.cancel() // completed cells stay checkpointed in the journal
		}
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, s.status(j))
}

// Drain stops admissions, cancels the running job (its completed cells
// are already checkpointed — a resubmission replays them), and waits for
// the runner loop to park. Safe to call once.
func (s *Server) Drain() {
	if s.draining.Swap(true) {
		return
	}
	s.lg.Info("draining", "queued_jobs", len(s.queue))
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == stateRunning && j.cancel != nil {
			j.cancel()
			j.state = stateCanceled
			j.err = "canceled by daemon drain (completed cells are checkpointed)"
		}
		if j.state == stateQueued {
			j.state = stateCanceled
			j.err = "daemon drained before the job started"
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	close(s.queue)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
	}
}
