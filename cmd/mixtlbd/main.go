// Command mixtlbd is the resilient experiment daemon: it serves the
// simulator's experiment grid as an HTTP job API backed by the crash-safe
// checkpoint engine. Jobs queue in a bounded buffer (admission control
// answers 429 + Retry-After when it is full), run one at a time (each job
// parallelizes its own cell grid), checkpoint every completed cell to a
// per-spec journal under -data-dir, and default to fail-soft: cells that
// exhaust their retries become FAILED(...) markers in the result instead
// of killing the job.
//
//	POST   /jobs             submit a JobSpec, returns {"id": "job-000001"}
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        status (state, timings, replayed/failed cells)
//	GET    /jobs/{id}/result finished table as CSV (202 while running)
//	DELETE /jobs/{id}        cancel (completed cells stay checkpointed)
//	GET    /metrics          Prometheus text (queue depth, retries,
//	                         watchdog fires, resume hit counts, ...)
//	GET    /healthz          503 once draining
//
// On SIGTERM/SIGINT the daemon drains: new submissions get 503, the
// running job is canceled at its next cell checkpoint, journals are
// flushed and closed, and the process exits. Because journals are keyed
// by spec fingerprint, resubmitting the same spec after a restart
// replays every cell the interrupted run completed.
//
// Example:
//
//	mixtlbd -addr localhost:8080 -data-dir /var/tmp/mixtlbd &
//	curl -s -X POST localhost:8080/jobs -d '{"experiment":"fig12","quick":true}'
//	curl -s localhost:8080/jobs/job-000001/result
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mixtlb/internal/logx"
	"mixtlb/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "HTTP listen address")
		dataDir      = flag.String("data-dir", ".", "directory for per-spec checkpoint journals")
		queueDepth   = flag.Int("queue-depth", 8, "bounded job queue size (excess submissions get 429)")
		maxRefs      = flag.Uint64("max-refs", 50_000_000, "per-job budget: max warmup+measured refs per cell (0 disables)")
		jobTimeout   = flag.Duration("job-timeout", 30*time.Minute, "wall-clock budget per job (0 disables)")
		cellJobs     = flag.Int("jobs", 0, "worker pool per job's cell grid (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for the running job on shutdown")
		logFormat    = flag.String("log-format", "text", "stderr log format: text or json")
	)
	flag.Parse()

	lg, err := logx.New(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		lg.Error("creating data dir", "dir", *dataDir, "err", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	srv := NewServer(Config{
		DataDir:      *dataDir,
		QueueDepth:   *queueDepth,
		MaxRefs:      *maxRefs,
		JobTimeout:   *jobTimeout,
		CellJobs:     *cellJobs,
		DrainTimeout: *drainTimeout,
		Log:          lg,
	}, reg, tracer)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Error("listening", "addr", *addr, "err", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	lg.Info("serving", "addr", ln.Addr().String(),
		"endpoints", "/jobs /metrics /debug/tail /healthz", "journals", *dataDir)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	sig := <-stop
	lg.Info("signal received — draining (in-flight cells stay checkpointed)", "signal", sig.String())
	srv.Drain()
	httpSrv.Close()
}
