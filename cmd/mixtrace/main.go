// Command mixtrace records, inspects, and replays memory-reference traces
// — the workflow of the paper's Pin-based methodology (Sec 6.2), with the
// synthetic workload generators standing in for instrumented binaries.
//
//	mixtrace record -workload mcf -footprint-mb 512 -refs 1000000 -o mcf.trace
//	mixtrace info mcf.trace
//	mixtrace run -design mix -trace mcf.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/trace"
	"mixtlb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mixtrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mixtrace record|info|run [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "mcf", "workload name (see internal/workload)")
	footMB := fs.Uint64("footprint-mb", 512, "footprint in MiB")
	refs := fs.Uint64("refs", 1_000_000, "references to record")
	seed := fs.Uint64("seed", 42, "workload seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o is required")
	}
	spec, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	stream := spec.Build(0x10000000000, *footMB<<20, simrand.New(*seed))
	if err := trace.Record(f, stream, *refs); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d refs of %s (%d MiB footprint) to %s (%.2f bytes/ref)\n",
		*refs, *name, *footMB, *out, float64(st.Size())/float64(*refs))
}

func info(args []string) {
	if len(args) != 1 {
		log.Fatal("info: expected one trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var n, writes uint64
	var lo, hi addr.V
	pages := make(map[uint64]struct{})
	pcs := make(map[uint64]struct{})
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatalf("at ref %d: %v", n, err)
		}
		if n == 0 || ref.VA < lo {
			lo = ref.VA
		}
		if ref.VA > hi {
			hi = ref.VA
		}
		if ref.Write {
			writes++
		}
		pages[ref.VA.VPN4K()] = struct{}{}
		pcs[ref.PC] = struct{}{}
		n++
	}
	fmt.Printf("refs:            %d\n", n)
	fmt.Printf("writes:          %d (%.1f%%)\n", writes, 100*float64(writes)/float64(max64(n, 1)))
	fmt.Printf("VA range:        %v .. %v\n", lo, hi)
	fmt.Printf("distinct 4K pgs: %d (%.1f MiB touched)\n", len(pages), float64(len(pages))*4/1024)
	fmt.Printf("distinct PCs:    %d\n", len(pcs))
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	designName := fs.String("design", "mix", "TLB design from the registry (split|mix|mix+colt|split+pwc|mix-as-l2|...; see mixtlb -list)")
	tracePath := fs.String("trace", "", "trace file (required)")
	memGB := fs.Uint64("mem-gb", 4, "simulated physical memory (GiB)")
	policy := fs.String("policy", "THS", "page-size policy (4KB|2MB|1GB|THS)")
	refs := fs.Uint64("refs", 0, "references to simulate (0 = one pass over the trace)")
	fs.Parse(args)
	if *tracePath == "" {
		log.Fatal("run: -trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	// Decode the whole trace up front: the simulator needs the VA span to
	// reproduce the traced process's memory layout before replay starts
	// (a real process allocated its heap before Pin traced it; faulting
	// it in trace order would randomize the OS's physical placement).
	refsBuf, err := trace.ReadAll(r)
	if err != nil {
		log.Fatalf("decoding trace: %v", err) // *DecodeError names the record
	}
	if len(refsBuf) == 0 {
		log.Fatal("empty trace")
	}
	var lo, hi addr.V
	for i, ref := range refsBuf {
		if i == 0 || ref.VA < lo {
			lo = ref.VA
		}
		if ref.VA > hi {
			hi = ref.VA
		}
	}

	phys := physmem.NewBuddy(*memGB << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: parsePolicy(*policy)})
	if err != nil {
		log.Fatal(err)
	}
	// Reproduce the traced layout: one VMA over the span, faulted in
	// ascending order (first-touch initialization).
	span := addr.AlignedUp(uint64(hi)-addr.AlignedDown(uint64(lo), addr.Size1G)+addr.Size4K, addr.Size2M)
	vmaBase, err := as.Mmap(span)
	if err != nil {
		log.Fatal(err)
	}
	shift := addr.V(addr.AlignedDown(uint64(lo), addr.Size1G)) - vmaBase
	if _, err := as.Populate(vmaBase, span); err != nil {
		log.Fatal(err)
	}
	m, err := mmu.Build(mmu.Design(*designName), as.PageTable(), as.PageTable(),
		cachesim.DefaultHierarchy(), as.HandleFault)
	if err != nil {
		log.Fatal(err)
	}

	pos := 0
	simulate := func(n uint64) {
		for i := uint64(0); i < n; i++ {
			ref := refsBuf[pos]
			pos = (pos + 1) % len(refsBuf)
			va := ref.VA - shift // relocate trace VAs into the VMA
			if res := m.Translate(tlb.Request{VA: va, Write: ref.Write, PC: ref.PC}); res.Faulted {
				log.Fatalf("fault at %v", va)
			}
		}
	}
	n := *refs
	if n == 0 {
		n = uint64(len(refsBuf))
	}
	simulate(n) // warm
	m.ResetStats()
	simulate(n)
	fmt.Printf("%s over %s: %s\n", *designName, *tracePath, m.Stats().String())
}

func parsePolicy(s string) osmm.Policy {
	switch s {
	case "4KB":
		return osmm.BasePages
	case "2MB":
		return osmm.Hugetlbfs2M
	case "1GB":
		return osmm.Hugetlbfs1G
	case "THS":
		return osmm.THS
	}
	log.Fatalf("unknown policy %q", s)
	return 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
