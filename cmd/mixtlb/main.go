// Command mixtlb regenerates the paper's tables and figures from the
// simulator. List experiments with -list, run one with -exp fig14, a
// group with -exp perf, or everything with -exp all. The -quick flag
// trades fidelity for speed (useful for smoke runs); -csv emits
// machine-readable output.
//
// Experiments decompose into independent grid cells (one design x
// workload x environment simulation each) that run on a bounded worker
// pool: -jobs sets the pool size (default GOMAXPROCS), and results are
// byte-identical at any setting because each cell's randomness derives
// from its identity, not its schedule. -cell restricts a run to matching
// cells — the knob failure lines name for single-cell reproduction.
// -bench-out writes per-cell and per-experiment wall-clock timings as
// JSON (BENCH_experiments.json) so -jobs speedups are measurable.
//
// Every experiment runs under a crash-safe harness: panics are recovered
// into a diagnostic carrying the reproducing seed, each experiment gets a
// wall-clock timeout (-timeout, 0 disables), and partial tables — rows
// finished before a failure — are still printed. The chaos experiment
// (-exp chaos, or the -chaos shorthand) sweeps every TLB design under
// fault injection; -fault-scale multiplies the default fault rates.
//
// Long sweeps survive process death: -journal FILE checkpoints each
// completed cell to a checksummed JSONL log, and -resume replays those
// cells on restart, simulating only the remainder — the final table is
// byte-identical to an uninterrupted run. -max-retries re-runs cells
// that fail transiently (capped, seeded exponential backoff),
// -cell-deadline arms a per-cell watchdog that cancels and requeues
// stuck cells, and -fail-soft turns cells that exhaust their retries
// into explicit FAILED(...) table markers instead of aborting the run.
//
// Exit codes: 0 all cells succeeded; 1 hard failure (error, panic, I/O);
// 2 usage or configuration error (including a journal whose fingerprint
// does not match the run); 3 the run completed but a table contains
// FAILED cells; 4 an experiment was truncated by -timeout. When several
// apply, the most severe wins (1 > 4 > 3).
//
// Telemetry is off by default and costs nothing when off. Any of
// -metrics-out (Prometheus text dump), -trace-events (Chrome trace_event
// JSON for chrome://tracing or Perfetto), -events-out (JSONL event
// stream), or -pprof-addr (HTTP listener with /metrics, /trace,
// /debug/vars, /debug/pprof/) switches it on; -progress prints live
// done/total/ETA lines to stderr as cells finish. Telemetry never feeds
// back into the simulation: result tables are byte-identical with it on
// or off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mixtlb/internal/chaos"
	"mixtlb/internal/experiments"
	"mixtlb/internal/isa"
	"mixtlb/internal/journal"
	"mixtlb/internal/logx"
	"mixtlb/internal/mmu"
	"mixtlb/internal/stats"
	"mixtlb/internal/telemetry"
)

// groups are named experiment bundles matching the paper's sections.
var groups = map[string][]string{
	"perf":      {"fig1", "fig14", "fig15l", "fig15r"},
	"charact":   {"fig9", "fig10", "fig11", "fig12", "fig13"},
	"energy":    {"fig16", "fig17", "fig18"},
	"ablations": {"ablation-index", "scaling", "duplicates"},
}

// groupOrder keeps -list output stable.
var groupOrder = []string{"perf", "charact", "energy", "ablations"}

func main() {
	var expName string
	flag.StringVar(&expName, "exp", "", "experiment or group to run (see -list), or 'all'")
	flag.StringVar(&expName, "experiment", "", "alias for -exp")
	var (
		list       = flag.Bool("list", false, "list available experiments and groups")
		quick      = flag.Bool("quick", false, "use the small quick scale instead of the default")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		memGB      = flag.Uint64("mem-gb", 0, "override system memory (GiB)")
		footGB     = flag.Uint64("footprint-gb", 0, "override workload footprint (GiB)")
		refs       = flag.Uint64("refs", 0, "override measured references per simulation")
		seed       = flag.Uint64("seed", 0, "override random seed")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		chaosRun   = flag.Bool("chaos", false, "shorthand for -exp chaos")
		faultScale = flag.Float64("fault-scale", 1, "multiply the default chaos fault rates")
		timeout    = flag.Duration("timeout", 10*time.Minute, "per-experiment wall-clock timeout (0 disables)")
		jobs       = flag.Int("jobs", 0, "worker-pool size for experiment cells (0 = GOMAXPROCS)")
		cell       = flag.String("cell", "", "run only grid cells whose name contains this substring")
		benchOut   = flag.String("bench-out", "", "write per-cell wall-clock timings to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file at exit")
		memProfile = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
		metricsOut = flag.String("metrics-out", "", "write a Prometheus text metrics dump to this file at exit")
		traceOut   = flag.String("trace-events", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
		eventsOut  = flag.String("events-out", "", "write the raw telemetry event stream as JSONL to this file")
		pprofAddr  = flag.String("pprof-addr", "", "serve /metrics, /trace, /debug/vars and /debug/pprof/ on this address (e.g. localhost:6060)")
		progress   = flag.Bool("progress", false, "print live per-cell progress (done/total, ETA) to stderr")
		designs    = flag.String("designs", "", "comma-separated design subset for the hierarchy experiment (default: its built-in set)")
		isaName    = flag.String("isa", "", "translation ISA descriptor for every native environment (see -list; default x86-64)")
		designFile = flag.String("design-file", "", "JSON file of extra TLB design specs to register (see examples/designs.json)")

		journalPath  = flag.String("journal", "", "checkpoint each completed cell to this JSONL file (crash-safe)")
		resume       = flag.Bool("resume", false, "replay completed cells from the -journal file instead of truncating it")
		maxRetries   = flag.Int("max-retries", 0, "re-run a transiently failing cell up to this many times (seeded backoff)")
		retryBackoff = flag.Duration("retry-backoff", 0, "base backoff before the first cell retry (0 = built-in default)")
		cellDeadline = flag.Duration("cell-deadline", 0, "per-cell watchdog: cancel and requeue cells exceeding this wall time (0 disables)")
		failSoft     = flag.Bool("fail-soft", false, "record cells that exhaust retries as FAILED table markers instead of aborting")
		injectFail   = flag.String("inject-cell-failure", "", "fail every cell whose name contains this substring (fault-injection testing)")
		killAfter    = flag.Int("kill-after-cells", 0, "exit(137) after this many cells complete (crash-testing the journal)")

		logFormat   = flag.String("log-format", "text", "stderr log format: text or json")
		ledgerAudit = flag.Bool("ledger-audit", false, "attach the cycle-attribution ledger to every cell and fail cells whose books do not balance")
		tailK       = flag.Int("tail", 0, "record the K slowest translations per cell in the tail flight recorder (0 disables)")
		explain     = flag.Bool("explain", false, "replay one translation with full cost narration: mixtlb -explain vaddr=0x... design=...")
	)
	flag.Parse()

	lg, err := logx.New(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Profiles must be finalized before the explicit os.Exit below, which
	// skips deferred calls; stopProfiles is invoked on every exit path.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		lg.Error("starting profiles", "err", err)
		os.Exit(2)
	}

	// Design registry: the builtins, extended by any -design-file specs.
	// A malformed file, invalid spec, or duplicate name is rejected up
	// front — a typo'd design must not silently run the builtin set.
	registry := mmu.DefaultRegistry()
	if *designFile != "" {
		f, err := os.Open(*designFile)
		if err != nil {
			lg.Error("opening design file", "err", err)
			stopProfiles()
			os.Exit(2)
		}
		specs, err := mmu.ParseSpecs(f)
		f.Close()
		if err == nil {
			for _, s := range specs {
				if err = registry.Register(s); err != nil {
					break
				}
			}
		}
		if err != nil {
			lg.Error("loading design file", "file", *designFile, "err", err)
			stopProfiles()
			os.Exit(2)
		}
	}

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-15s %s\n", e.Name, e.Desc)
		}
		fmt.Println("groups:")
		for _, g := range groupOrder {
			fmt.Printf("  %-15s %s\n", g, strings.Join(groups[g], " "))
		}
		fmt.Println("designs:")
		for _, s := range registry.Specs() {
			designISA := s.ISA
			if designISA == "" {
				designISA = "any" // ISA-agnostic: runs on whatever -isa selects
			}
			fmt.Printf("  %-15s [%s] %s\n", s.Name, designISA, s.Desc)
		}
		fmt.Println("isas:")
		for _, n := range isa.Names() {
			d, _ := isa.Lookup(n)
			contig := ""
			if d.ContigPages > 1 {
				contig = fmt.Sprintf(", %s x%d", d.Contig, d.ContigPages)
			}
			fmt.Printf("  %-15s %d-level radix, %d-bit VAs%s\n", n, d.Depth(), d.VABits, contig)
		}
		stopProfiles()
		return
	}
	if *chaosRun && expName == "" {
		expName = "chaos"
	}
	if expName == "" && !*explain {
		fmt.Fprintln(os.Stderr, "usage: mixtlb -exp <name>|<group>|all [-jobs N] [-quick] [-csv] [-chaos]; see -list")
		fmt.Fprintln(os.Stderr, "       mixtlb -explain vaddr=0x... design=<name>")
		stopProfiles()
		os.Exit(2)
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *memGB > 0 {
		scale.MemoryBytes = *memGB << 30
	}
	if *footGB > 0 {
		scale.FootprintBytes = *footGB << 30
	}
	if *refs > 0 {
		scale.MeasureRefs = *refs
		scale.WarmupRefs = *refs / 2
	}
	if *seed > 0 {
		scale.Seed = *seed
	}
	if *workloads != "" {
		scale.Workloads = strings.Split(*workloads, ",")
	}
	if *faultScale != 1 {
		scale.Chaos = chaos.DefaultRates().Scaled(*faultScale)
	}
	scale.Jobs = *jobs
	scale.Cell = *cell
	scale.Registry = registry
	scale.LedgerAudit = *ledgerAudit
	scale.TailK = *tailK
	if *designs != "" {
		scale.Designs = strings.Split(*designs, ",")
	}
	scale.ISA = *isaName
	scale.MaxRetries = *maxRetries
	scale.RetryBackoff = *retryBackoff
	scale.CellDeadline = *cellDeadline
	scale.FailSoft = *failSoft
	scale.Failures = &experiments.FailureLog{}
	if *injectFail != "" {
		pat := *injectFail
		scale.CellFault = func(exp, cell string) error {
			if strings.Contains(cell, pat) {
				return fmt.Errorf("injected failure (-inject-cell-failure %q)", pat)
			}
			return nil
		}
	}

	// Reject workload typos up front; without this check a bad -workloads
	// value runs every experiment over an empty set and prints empty tables.
	if err := scale.ValidateWorkloads(); err != nil {
		lg.Error("invalid -workloads", "err", err)
		stopProfiles()
		os.Exit(2)
	}
	// Same for -designs: every name must resolve in the registry.
	if err := scale.ValidateDesigns(); err != nil {
		lg.Error("invalid -designs", "err", err)
		stopProfiles()
		os.Exit(2)
	}
	// And -isa: the typed error lists every valid descriptor name.
	if err := scale.ValidateISA(); err != nil {
		lg.Error("invalid -isa", "err", err)
		stopProfiles()
		os.Exit(2)
	}

	// Single-translation replay: narrate one address's cost and exit.
	if *explain {
		design, va, err := parseExplainArgs(flag.Args())
		if err != nil {
			lg.Error("bad -explain arguments", "err", err)
			stopProfiles()
			os.Exit(2)
		}
		if err := experiments.Explain(os.Stdout, scale, design, va); err != nil {
			lg.Error("explain failed", "err", err)
			stopProfiles()
			os.Exit(1)
		}
		stopProfiles()
		return
	}

	// Checkpoint journal. Without -resume the file starts fresh; with it,
	// completed cells recorded under the *same configuration fingerprint*
	// replay instead of re-simulating. A journal written under different
	// scale parameters (memory, seed, workloads, ...) is refused — its
	// rows would not correspond to this run's cells.
	if *resume && *journalPath == "" {
		lg.Error("-resume requires -journal FILE")
		stopProfiles()
		os.Exit(2)
	}
	var jnl *journal.Journal
	if *journalPath != "" {
		fp := scale.Fingerprint()
		var jerr error
		if *resume {
			jnl, jerr = journal.Open(*journalPath, fp)
		} else {
			jnl, jerr = journal.Create(*journalPath, fp)
		}
		if jerr != nil {
			lg.Error("opening journal", "journal", *journalPath, "err", jerr)
			var ce *journal.CorruptError
			if errors.As(jerr, &ce) && ce.Reason == journal.ReasonFingerprint {
				lg.Error("refusing to resume: the journal was written under a different configuration (rerun with matching flags, or without -resume to start over)")
			}
			stopProfiles()
			os.Exit(2)
		}
		if st := jnl.Stats(); *resume {
			lg.Info("journal resumed", "journal", *journalPath,
				"replayed_cells", st.Replayed, "dropped_torn_tail", st.DroppedTail)
		}
		scale.Journal = jnl
	}

	// Telemetry root. All exporter flags share one registry/tracer so a
	// single run can emit every format; when no flag asks for it,
	// scale.Telemetry stays nil and the simulator takes its zero-cost path.
	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
	)
	stopServe := func() {}
	if *metricsOut != "" || *traceOut != "" || *eventsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(0)
		scale.Telemetry = telemetry.NewCollector(reg, tracer)
	}
	if *pprofAddr != "" {
		bound, shutdown, err := telemetry.Serve(*pprofAddr, reg, tracer)
		if err != nil {
			lg.Error("starting telemetry server", "err", err)
			stopProfiles()
			os.Exit(2)
		}
		lg.Info("telemetry serving", "addr", bound,
			"endpoints", "/metrics /trace /debug/tail /debug/vars /debug/pprof/")
		stopServe = shutdown
	}
	if *progress {
		scale.ProgressFn = func(ev experiments.ProgressEvent) {
			status := "ok"
			if ev.Failed {
				status = "FAIL"
			}
			lg.Info("cell done", "experiment", ev.Experiment,
				"done", ev.Done, "total", ev.Total, "cell", ev.Cell, "status", status,
				"elapsed", ev.Elapsed.Round(time.Millisecond).String(),
				"eta", ev.ETA.Round(time.Millisecond).String())
		}
	}
	if *killAfter > 0 {
		// Crash simulation for the journal's check.sh gate: die the instant
		// the Nth cell reports completion. The engine checkpoints a cell
		// before reporting it, so every cell this counter saw is durable —
		// exiting here is exactly a SIGKILL between two cells.
		limit, prev := *killAfter, scale.ProgressFn
		var count int64
		scale.ProgressFn = func(ev experiments.ProgressEvent) {
			if prev != nil {
				prev(ev)
			}
			if atomic.AddInt64(&count, 1) == int64(limit) {
				lg.Warn("simulated crash", "after_cells", limit)
				os.Exit(137)
			}
		}
	}

	var toRun []experiments.Experiment
	switch {
	case expName == "all":
		toRun = experiments.All()
	case groups[expName] != nil:
		for _, name := range groups[expName] {
			e, err := experiments.ByName(name)
			if err != nil {
				lg.Error("unknown experiment", "err", err)
				stopProfiles()
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	default:
		e, err := experiments.ByName(expName)
		if err != nil {
			lg.Error("unknown experiment", "err", err,
				"groups", strings.Join(groupOrder, ", ")+", all")
			stopProfiles()
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	bench := experiments.NewBenchLog(*jobs)
	scale.Bench = bench
	ctx := context.Background()

	// Exit-code severity lattice: 1 (hard failure) > 4 (timeout
	// truncation) > 3 (FAILED cells in a completed table) > 0.
	exitCode := 0
	setExit := func(code int) {
		rank := map[int]int{0: 0, 3: 1, 4: 2, 1: 3}
		if rank[code] > rank[exitCode] {
			exitCode = code
		}
	}
	for _, e := range toRun {
		start := time.Now()
		tbl, err := experiments.RunSafe(ctx, e, scale, *timeout)
		bench.RecordExperiment(e.Name, time.Since(start).Seconds(), err)
		if err != nil {
			// Print whatever completed, then the failure with its
			// reproducing seed.
			if tbl != nil && len(tbl.Rows) > 0 {
				lg.Warn("partial results", "experiment", e.Name, "rows", len(tbl.Rows))
				printTable(tbl, *csv)
			}
			lg.Error("experiment failed", "experiment", e.Name, "err", err)
			var ce *experiments.CellError
			if errors.As(err, &ce) {
				lg.Info("reproduce", "cmd", fmt.Sprintf("mixtlb -exp %s -cell %q -seed %d -jobs 1",
					e.Name, ce.Cell, scale.Seed))
			}
			var pe *experiments.PanicError
			if errors.As(err, &pe) {
				fmt.Fprint(os.Stderr, pe.Stack)
			}
			var te *experiments.TimeoutError
			if errors.As(err, &te) {
				lg.Info("reproduce", "cmd", fmt.Sprintf("mixtlb -exp %s -seed %d -timeout 0", e.Name, te.Seed))
				setExit(4) // truncated, not broken: partial rows are valid
			} else {
				setExit(1)
			}
			continue
		}
		printTable(tbl, *csv)
		lg.Info("experiment completed", "experiment", e.Name,
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}
	if n := scale.Failures.Count(); n > 0 {
		lg.Warn("cells failed after exhausting retries — see FAILED(...) markers above", "cells", n)
		setExit(3)
	}
	if err := jnl.Close(); err != nil {
		lg.Error("closing journal", "err", err)
		setExit(1)
	}
	stopServe()
	if err := writeTelemetry(reg, tracer, *metricsOut, *traceOut, *eventsOut); err != nil {
		lg.Error("writing telemetry", "err", err)
		setExit(1)
	}
	if tracer != nil {
		total, dropped := tracer.Counts()
		bench.SetTelemetry(experiments.TelemetrySummary{EventsTotal: total, EventsDropped: dropped})
	}
	if *benchOut != "" {
		data, err := bench.JSON()
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			lg.Error("writing bench log", "file", *benchOut, "err", err)
			setExit(1)
		}
	}
	if err := stopProfiles(); err != nil {
		lg.Error("stopping profiles", "err", err)
		setExit(1)
	}
	os.Exit(exitCode)
}

// parseExplainArgs reads -explain's k=v operands: vaddr (required hex or
// decimal address) and design (default mix).
func parseExplainArgs(args []string) (design string, va uint64, err error) {
	design = string(mmu.DesignMix)
	haveVA := false
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return "", 0, fmt.Errorf("expected key=value, got %q", a)
		}
		switch k {
		case "vaddr", "va":
			va, err = strconv.ParseUint(v, 0, 64)
			if err != nil {
				return "", 0, fmt.Errorf("bad vaddr %q (want hex 0x... or decimal): %v", v, err)
			}
			haveVA = true
		case "design":
			design = v
		default:
			return "", 0, fmt.Errorf("unknown key %q (want vaddr=, design=)", k)
		}
	}
	if !haveVA {
		return "", 0, fmt.Errorf("missing vaddr=0x...")
	}
	return design, va, nil
}

// writeTelemetry dumps whichever exporter files were requested. A nil
// registry/tracer (telemetry disabled) writes nothing.
func writeTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer, metricsPath, tracePath, eventsPath string) error {
	write := func(path string, emit func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %v", path, err)
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %v", path, err)
		}
		return nil
	}
	if err := write(metricsPath, func(f *os.File) error { return reg.WritePrometheus(f) }); err != nil {
		return err
	}
	if err := write(tracePath, func(f *os.File) error { return tracer.WriteChromeTrace(f) }); err != nil {
		return err
	}
	return write(eventsPath, func(f *os.File) error { return tracer.WriteJSONL(f) })
}

// startProfiles begins CPU profiling and arranges heap profiling according
// to the -cpuprofile/-memprofile flags. The returned stop function is
// idempotent-enough for this command's linear exit paths: it stops the CPU
// profile and writes the heap profile, and must run before os.Exit.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating %s: %v", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %v", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("writing %s: %v", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("creating %s: %v", memPath, err)
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the heap profile reflects live data
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				return fmt.Errorf("writing %s: %v", memPath, err)
			}
		}
		return nil
	}, nil
}

func printTable(tbl *stats.Table, csv bool) {
	if tbl == nil {
		return
	}
	if csv {
		fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
	} else {
		fmt.Println(tbl.String())
	}
}
