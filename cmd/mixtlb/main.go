// Command mixtlb regenerates the paper's tables and figures from the
// simulator. List experiments with -list, run one with -exp fig14, or run
// everything with -exp all. The -quick flag trades fidelity for speed
// (useful for smoke runs); -csv emits machine-readable output.
//
// Every experiment runs under a crash-safe harness: panics are recovered
// into a diagnostic carrying the reproducing seed, each experiment gets a
// wall-clock timeout (-timeout, 0 disables), and partial tables — rows
// finished before a failure — are still printed. The chaos experiment
// (-exp chaos, or the -chaos shorthand) sweeps every TLB design under
// fault injection; -fault-scale multiplies the default fault rates.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mixtlb/internal/chaos"
	"mixtlb/internal/experiments"
	"mixtlb/internal/stats"
)

func main() {
	var (
		expName    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		quick      = flag.Bool("quick", false, "use the small quick scale instead of the default")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		memGB      = flag.Uint64("mem-gb", 0, "override system memory (GiB)")
		footGB     = flag.Uint64("footprint-gb", 0, "override workload footprint (GiB)")
		refs       = flag.Uint64("refs", 0, "override measured references per simulation")
		seed       = flag.Uint64("seed", 0, "override random seed")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		chaosRun   = flag.Bool("chaos", false, "shorthand for -exp chaos")
		faultScale = flag.Float64("fault-scale", 1, "multiply the default chaos fault rates")
		timeout    = flag.Duration("timeout", 10*time.Minute, "per-experiment wall-clock timeout (0 disables)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-15s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *chaosRun && *expName == "" {
		*expName = "chaos"
	}
	if *expName == "" {
		fmt.Fprintln(os.Stderr, "usage: mixtlb -exp <name>|all [-quick] [-csv] [-chaos]; see -list")
		os.Exit(2)
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *memGB > 0 {
		scale.MemoryBytes = *memGB << 30
	}
	if *footGB > 0 {
		scale.FootprintBytes = *footGB << 30
	}
	if *refs > 0 {
		scale.MeasureRefs = *refs
		scale.WarmupRefs = *refs / 2
	}
	if *seed > 0 {
		scale.Seed = *seed
	}
	if *workloads != "" {
		scale.Workloads = strings.Split(*workloads, ",")
	}
	if *faultScale != 1 {
		scale.Chaos = chaos.DefaultRates().Scaled(*faultScale)
	}

	var toRun []experiments.Experiment
	if *expName == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByName(*expName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	exitCode := 0
	for _, e := range toRun {
		start := time.Now()
		tbl, err := experiments.RunSafe(e, scale, *timeout)
		if err != nil {
			// Print whatever completed, then the failure with its
			// reproducing seed.
			if tbl != nil && len(tbl.Rows) > 0 {
				fmt.Fprintf(os.Stderr, "[%s: partial results — %d rows completed before failure]\n", e.Name, len(tbl.Rows))
				printTable(tbl, *csv)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			var pe *experiments.PanicError
			if errors.As(err, &pe) {
				fmt.Fprintf(os.Stderr, "reproduce: mixtlb -exp %s -seed %d\n%s\n", e.Name, pe.Seed, pe.Stack)
			}
			var te *experiments.TimeoutError
			if errors.As(err, &te) {
				fmt.Fprintf(os.Stderr, "reproduce: mixtlb -exp %s -seed %d -timeout 0\n", e.Name, te.Seed)
			}
			exitCode = 1
			continue
		}
		printTable(tbl, *csv)
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}

func printTable(tbl *stats.Table, csv bool) {
	if tbl == nil {
		return
	}
	if csv {
		fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
	} else {
		fmt.Println(tbl.String())
	}
}
