// Command mixtlb regenerates the paper's tables and figures from the
// simulator. List experiments with -list, run one with -exp fig14, or run
// everything with -exp all. The -quick flag trades fidelity for speed
// (useful for smoke runs); -csv emits machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mixtlb/internal/experiments"
)

func main() {
	var (
		expName   = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		quick     = flag.Bool("quick", false, "use the small quick scale instead of the default")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		memGB     = flag.Uint64("mem-gb", 0, "override system memory (GiB)")
		footGB    = flag.Uint64("footprint-gb", 0, "override workload footprint (GiB)")
		refs      = flag.Uint64("refs", 0, "override measured references per simulation")
		seed      = flag.Uint64("seed", 0, "override random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-15s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *expName == "" {
		fmt.Fprintln(os.Stderr, "usage: mixtlb -exp <name>|all [-quick] [-csv]; see -list")
		os.Exit(2)
	}

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *memGB > 0 {
		scale.MemoryBytes = *memGB << 30
	}
	if *footGB > 0 {
		scale.FootprintBytes = *footGB << 30
	}
	if *refs > 0 {
		scale.MeasureRefs = *refs
		scale.WarmupRefs = *refs / 2
	}
	if *seed > 0 {
		scale.Seed = *seed
	}
	if *workloads != "" {
		scale.Workloads = strings.Split(*workloads, ",")
	}

	var toRun []experiments.Experiment
	if *expName == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByName(*expName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
