// Command telemetrycheck validates telemetry exporter output written by
// mixtlb, so check.sh can assert the dumps are machine-readable rather
// than merely nonempty:
//
//	telemetrycheck -metrics METRICS.prom [-require family1,family2]
//	telemetrycheck -trace TRACE.json
//	telemetrycheck -events EVENTS.jsonl
//
// Any combination of flags may be given; each named file must parse in
// its format (Prometheus text exposition, Chrome trace_event JSON, JSONL
// event stream). -require lists metric families that must appear in the
// Prometheus dump, catching instrumentation that silently stopped
// exporting.
//
// Exit codes: 0 everything validates, 1 a file failed to read/parse or a
// required family is missing, 2 usage error (no files named, bad flag).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mixtlb/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("telemetrycheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		metricsPath = fs.String("metrics", "", "Prometheus text dump to validate")
		tracePath   = fs.String("trace", "", "Chrome trace_event JSON file to validate")
		eventsPath  = fs.String("events", "", "JSONL event stream to validate")
		require     = fs.String("require", "", "comma-separated metric families that must appear in -metrics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metricsPath == "" && *tracePath == "" && *eventsPath == "" {
		fmt.Fprintln(stderr, "usage: telemetrycheck [-metrics FILE [-require fam,...]] [-trace FILE] [-events FILE]")
		return 2
	}

	ok := true
	if *metricsPath != "" {
		ok = checkMetrics(stdout, stderr, *metricsPath, *require) && ok
	}
	if *tracePath != "" {
		ok = checkTrace(stdout, stderr, *tracePath) && ok
	}
	if *eventsPath != "" {
		ok = checkEvents(stdout, stderr, *eventsPath) && ok
	}
	if !ok {
		return 1
	}
	return 0
}

func checkMetrics(stdout, stderr io.Writer, path, require string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %v\n", err)
		return false
	}
	samples, err := telemetry.ParsePrometheus(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %s: %v\n", path, err)
		return false
	}
	if samples == 0 {
		fmt.Fprintf(stderr, "telemetrycheck: %s: no samples\n", path)
		return false
	}
	ok := true
	for _, fam := range strings.Split(require, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		// A family appears either as a bare name or with a label block;
		// match at line start so substrings of other families don't count.
		if !hasFamily(data, fam) {
			fmt.Fprintf(stderr, "telemetrycheck: %s: missing required metric family %q\n", path, fam)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(stdout, "telemetrycheck: %s: %d samples ok\n", path, samples)
	}
	return ok
}

// hasFamily reports whether any sample line starts with the family name
// followed by '{', ' ', or a histogram suffix.
func hasFamily(data []byte, fam string) bool {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name == fam || name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count" {
			return true
		}
	}
	return false
}

func checkTrace(stdout, stderr io.Writer, path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %v\n", err)
		return false
	}
	events, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %s: %v\n", path, err)
		return false
	}
	fmt.Fprintf(stdout, "telemetrycheck: %s: %d trace events ok\n", path, events)
	return true
}

func checkEvents(stdout, stderr io.Writer, path string) bool {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %v\n", err)
		return false
	}
	defer f.Close()
	lines, err := telemetry.ValidateJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "telemetrycheck: %s: %v\n", path, err)
		return false
	}
	fmt.Fprintf(stdout, "telemetrycheck: %s: %d JSONL lines ok\n", path, lines)
	return true
}
