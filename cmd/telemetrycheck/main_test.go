package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixtlb/internal/telemetry"
)

// writeFixtures renders one valid file per exporter format from a live
// registry/tracer, so the checks run against exactly what mixtlb writes.
func writeFixtures(t *testing.T) (metrics, trace, events string) {
	t.Helper()
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	col := telemetry.NewCollector(reg, tracer)
	col.Counter("mmu_accesses_total", "design", "mix").Add(42)
	col.Instant("engine", "cell_done", 7, "cell", "gups")

	emit := func(name string, write func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	metrics = emit("metrics.prom", func(f *os.File) error { return reg.WritePrometheus(f) })
	trace = emit("trace.json", func(f *os.File) error { return tracer.WriteChromeTrace(f) })
	events = emit("events.jsonl", func(f *os.File) error { return tracer.WriteJSONL(f) })
	return metrics, trace, events
}

// TestExitCodes pins the whole exit-code contract table-driven: 0 on
// valid input, 1 on unreadable/unparseable files or missing families,
// 2 on usage errors.
func TestExitCodes(t *testing.T) {
	metrics, trace, events := writeFixtures(t)
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.prom")
	if err := os.WriteFile(garbage, []byte("%% not prometheus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"all valid", []string{"-metrics", metrics, "-trace", trace, "-events", events}, 0},
		{"metrics with required family", []string{"-metrics", metrics, "-require", "mmu_accesses_total"}, 0},
		{"missing family", []string{"-metrics", metrics, "-require", "mmu_accesses_total,no_such_family"}, 1},
		{"family substring does not count", []string{"-metrics", metrics, "-require", "mmu_accesses"}, 1},
		{"unreadable file", []string{"-metrics", filepath.Join(dir, "absent.prom")}, 1},
		{"unparseable metrics", []string{"-metrics", garbage}, 1},
		{"unparseable trace", []string{"-trace", badJSON}, 1},
		{"one bad file fails the batch", []string{"-metrics", metrics, "-trace", badJSON}, 1},
		{"no files", nil, 2},
		{"unknown flag", []string{"-bogus"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestSuccessReportsCounts pins the human-readable success lines.
func TestSuccessReportsCounts(t *testing.T) {
	metrics, trace, events := writeFixtures(t)
	var stdout, stderr strings.Builder
	if got := run([]string{"-metrics", metrics, "-trace", trace, "-events", events}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"samples ok", "trace events ok", "JSONL lines ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}
