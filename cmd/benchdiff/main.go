// Command benchdiff compares two BENCH_experiments.json timing files (as
// written by mixtlb -bench-out), joining cells by (experiment, cell) and
// reporting the per-cell speedup of NEW relative to OLD plus the geometric
// mean across all joined cells. It exits nonzero when any joined cell
// regressed by more than -max-regression percent, so CI can gate on
// simulator performance the same way golden tables gate on statistics.
//
// Usage: benchdiff [-max-regression PCT] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type cellTime struct {
	Experiment string  `json:"experiment"`
	Cell       string  `json:"cell"`
	Seed       uint64  `json:"seed"`
	Seconds    float64 `json:"seconds"`
}

type expTime struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	Cells      int     `json:"cells"`
	Err        string  `json:"error,omitempty"`
}

type telemetrySummary struct {
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`
}

type report struct {
	Jobs        int               `json:"jobs"`
	Total       float64           `json:"total_wall_seconds"`
	Experiments []expTime         `json:"experiments"`
	Cells       []cellTime        `json:"cells"`
	Telemetry   *telemetrySummary `json:"telemetry,omitempty"`
}

type cellKey struct {
	experiment, cell string
}

func main() { os.Exit(run()) }

func run() int {
	maxRegression := flag.Float64("max-regression", 15,
		"fail when any joined cell's wall time grows by more than this percentage")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regression PCT] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return 2
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	oldCells := index(oldRep.Cells)
	newCells := index(newRep.Cells)

	keys := make([]cellKey, 0, len(oldCells))
	for k := range oldCells {
		if _, ok := newCells[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].experiment != keys[j].experiment {
			return keys[i].experiment < keys[j].experiment
		}
		return keys[i].cell < keys[j].cell
	})
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no cells in common between the two files")
		return 2
	}

	fmt.Printf("%-12s %-40s %10s %10s %9s\n", "experiment", "cell", "old(s)", "new(s)", "speedup")
	logSum, counted, regressions := 0.0, 0, 0
	limit := 1 + *maxRegression/100
	for _, k := range keys {
		o, n := oldCells[k], newCells[k]
		mark := ""
		if o > 0 && n > 0 {
			speedup := o / n
			logSum += math.Log(speedup)
			counted++
			if n > o*limit {
				regressions++
				mark = "  REGRESSION"
			}
			fmt.Printf("%-12s %-40s %10.3f %10.3f %8.2fx%s\n", k.experiment, k.cell, o, n, speedup, mark)
		} else {
			fmt.Printf("%-12s %-40s %10.3f %10.3f %9s\n", k.experiment, k.cell, o, n, "n/a")
		}
	}
	if only := len(oldCells) - len(keys); only > 0 {
		fmt.Printf("(%d cells only in %s)\n", only, flag.Arg(0))
	}
	if only := len(newCells) - len(keys); only > 0 {
		fmt.Printf("(%d cells only in %s)\n", only, flag.Arg(1))
	}

	fmt.Printf("total wall: %.2fs (jobs %d) -> %.2fs (jobs %d)\n",
		oldRep.Total, oldRep.Jobs, newRep.Total, newRep.Jobs)
	printTelemetry(flag.Arg(0), oldRep)
	printTelemetry(flag.Arg(1), newRep)
	if counted > 0 {
		fmt.Printf("geomean speedup over %d cells: %.2fx\n", counted, math.Exp(logSum/float64(counted)))
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d cell(s) regressed by more than %.0f%%\n",
			regressions, *maxRegression)
		return 1
	}
	return 0
}

// printTelemetry reports a file's telemetry event totals when the run was
// instrumented; files from uninstrumented runs stay silent.
func printTelemetry(path string, r *report) {
	if r.Telemetry == nil {
		return
	}
	fmt.Printf("telemetry %s: %d events, %d dropped\n",
		path, r.Telemetry.EventsTotal, r.Telemetry.EventsDropped)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %v", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing %s: %v", path, err)
	}
	return &r, nil
}

// index sums cell seconds per (experiment, cell) — a cell name appearing
// twice (reruns within one file) accumulates rather than overwrites.
func index(cells []cellTime) map[cellKey]float64 {
	m := make(map[cellKey]float64, len(cells))
	for _, c := range cells {
		m[cellKey{c.Experiment, c.Cell}] += c.Seconds
	}
	return m
}
