package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name string, secs map[string]float64) string {
	t.Helper()
	var exps []string
	for exp, s := range secs {
		exps = append(exps, fmt.Sprintf(`{"experiment":%q,"seconds":%g,"cells":3}`, exp, s))
	}
	body := fmt.Sprintf(`{"jobs":4,"experiments":[%s],"cells":[]}`, strings.Join(exps, ","))
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTrend(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestStableHistoryPasses(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "a-0001.json", map[string]float64{"fig12": 1.00})
	writeSnap(t, dir, "b-0002.json", map[string]float64{"fig12": 1.04})
	writeSnap(t, dir, "c-0003.json", map[string]float64{"fig12": 0.98})
	code, out, _ := runTrend(t, dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "fig12") || !strings.Contains(out, "ok") {
		t.Errorf("trend table malformed:\n%s", out)
	}
	if !strings.Contains(out, "geomean ratio vs history") {
		t.Errorf("missing geomean summary:\n%s", out)
	}
}

func TestRegressionFlagged(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "a.json", map[string]float64{"fig12": 1.0, "reach": 2.0})
	writeSnap(t, dir, "b.json", map[string]float64{"fig12": 1.0, "reach": 2.0})
	writeSnap(t, dir, "c.json", map[string]float64{"fig12": 2.0, "reach": 2.0})
	code, out, _ := runTrend(t, "-max-regression", "25", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("no REGRESSION flag:\n%s", out)
	}
	// The well-behaved experiment must still read ok.
	if !strings.Contains(out, "reach") {
		t.Errorf("reach row missing:\n%s", out)
	}
}

func TestNewExperimentIsNotARegression(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "a.json", map[string]float64{"fig12": 1.0})
	writeSnap(t, dir, "b.json", map[string]float64{"fig12": 1.0, "breakdown": 9.9})
	code, out, _ := runTrend(t, dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "new") {
		t.Errorf("breakdown should be marked new:\n%s", out)
	}
}

func TestSingleSnapshotIsNoop(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "only.json", map[string]float64{"fig12": 1.0})
	code, out, _ := runTrend(t, dir)
	if code != 0 || !strings.Contains(out, "need at least 2") {
		t.Fatalf("exit %d out %q", code, out)
	}
}

func TestUsageAndBadInputExit2(t *testing.T) {
	if code, _, _ := runTrend(t); code != 2 {
		t.Errorf("no operands: exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	ok := writeSnap(t, dir, "ok.json", map[string]float64{"fig12": 1})
	if code, _, _ := runTrend(t, ok, bad); code != 2 {
		t.Errorf("malformed snapshot: exit %d, want 2", code)
	}
	if code, _, _ := runTrend(t, filepath.Join(dir, "missing.json")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

func TestFileArgumentOrderWins(t *testing.T) {
	dir := t.TempDir()
	slow := writeSnap(t, dir, "z-old-slow.json", map[string]float64{"fig12": 2.0})
	fast := writeSnap(t, dir, "a-new-fast.json", map[string]float64{"fig12": 1.0})
	// Explicit file order: slow history, fast latest — an improvement.
	code, out, _ := runTrend(t, slow, slow, fast)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "0.50x") {
		t.Errorf("expected 0.50x improvement ratio:\n%s", out)
	}
}
