// Command benchtrend reads a history of BENCH_experiments.json snapshots
// (as written by mixtlb -bench-out and archived under bench_history/) and
// reports each experiment's wall-clock trend: the geomean of its past
// snapshots as the baseline, the newest snapshot against it, and a
// REGRESSION flag when the newest exceeds the baseline by more than
// -max-regression percent.
//
//	benchtrend [-max-regression 25] bench_history/
//	benchtrend old.json newer.json newest.json
//
// A directory operand expands to its *.json files sorted by name, so
// lexically ordered snapshot names (bench-0001.json, 2026-08-09.json)
// read oldest-to-newest. Snapshots recorded at different -jobs settings
// are still compared — the jobs column shows when a shift in timing is a
// pool-size change rather than a code change.
//
// Exit codes: 0 no regression, 1 regression flagged, 2 usage or a
// malformed snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// snapshot is the subset of BENCH_experiments.json benchtrend reads.
type snapshot struct {
	Name        string
	Jobs        int `json:"jobs"`
	Experiments []struct {
		Experiment string  `json:"experiment"`
		Seconds    float64 `json:"seconds"`
		Err        string  `json:"error,omitempty"`
	} `json:"experiments"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegression := fs.Float64("max-regression", 25,
		"flag experiments whose newest snapshot is this percent slower than the geomean of prior ones")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths, err := expand(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "benchtrend:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: benchtrend [-max-regression PCT] <snapshot.json ... | history-dir>")
		return 2
	}

	snaps := make([]snapshot, 0, len(paths))
	for _, p := range paths {
		s, err := load(p)
		if err != nil {
			fmt.Fprintln(stderr, "benchtrend:", err)
			return 2
		}
		snaps = append(snaps, s)
	}
	if len(snaps) < 2 {
		fmt.Fprintf(stdout, "benchtrend: %d snapshot(s) — need at least 2 for a trend; nothing to compare\n", len(snaps))
		return 0
	}

	latest := snaps[len(snaps)-1]
	history := snaps[:len(snaps)-1]

	// baseline[exp] = geomean seconds over historical snapshots that ran it.
	baseline := map[string]float64{}
	runs := map[string]int{}
	for _, s := range history {
		for _, e := range s.Experiments {
			if e.Err != "" || e.Seconds <= 0 {
				continue
			}
			baseline[e.Experiment] += math.Log(e.Seconds)
			runs[e.Experiment]++
		}
	}
	for name, sum := range baseline {
		baseline[name] = math.Exp(sum / float64(runs[name]))
	}

	fmt.Fprintf(stdout, "history: %d snapshots, newest %s (jobs %d)\n",
		len(snaps), latest.Name, latest.Jobs)
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\truns\tbaseline-s\tlatest-s\tratio\tstatus")
	regressed := false
	var logSum float64
	var logN int
	names := make([]string, 0, len(latest.Experiments))
	for _, e := range latest.Experiments {
		names = append(names, e.Experiment)
	}
	sort.Strings(names)
	for _, name := range names {
		var latestSec float64
		for _, e := range latest.Experiments {
			if e.Experiment == name && e.Err == "" {
				latestSec = e.Seconds
			}
		}
		base, ok := baseline[name]
		if !ok || latestSec <= 0 {
			fmt.Fprintf(tw, "%s\t%d\t-\t%.3f\t-\tnew\n", name, runs[name], latestSec)
			continue
		}
		ratio := latestSec / base
		logSum += math.Log(ratio)
		logN++
		status := "ok"
		if ratio > 1+*maxRegression/100 {
			status = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.2fx\t%s\n",
			name, runs[name], base, latestSec, ratio, status)
	}
	tw.Flush()
	if logN > 0 {
		fmt.Fprintf(stdout, "geomean ratio vs history: %.2fx\n", math.Exp(logSum/float64(logN)))
	}
	if regressed {
		fmt.Fprintf(stdout, "REGRESSION: newest snapshot exceeds the historical geomean by more than %.0f%%\n", *maxRegression)
		return 1
	}
	return 0
}

// expand turns operands into an ordered snapshot path list: files stay in
// argument order; a directory contributes its *.json entries sorted by
// name.
func expand(operands []string) ([]string, error) {
	var out []string
	for _, op := range operands {
		info, err := os.Stat(op)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, op)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(op, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	return out, nil
}

func load(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(s.Experiments) == 0 {
		return snapshot{}, fmt.Errorf("%s: no experiment timings (is this a -bench-out file?)", path)
	}
	s.Name = filepath.Base(path)
	return s, nil
}
