package pagetable

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

// ISA-parameterized packed PTE codecs. EncodePTE/DecodePTE (pte.go) cover
// the default x86-64 layout; these dispatch on the descriptor's PTEFormat
// and additionally carry the leaf contiguity encodings: the SVNAPOT N bit
// and the ARM64 contiguous hint. As with the x86 codec, the simulator
// stores entries decoded — the packed forms exist so the "one PTE encodes
// a whole block" claims rest on concrete bit layouts, round-tripped under
// test and fuzz (FuzzPTE).

// RISC-V Sv39/Sv48 PTE layout (RISC-V privileged spec):
//
//	bit 0   V    valid
//	bit 1   R    readable
//	bit 2   W    writable
//	bit 3   X    executable
//	bit 4   U    user accessible
//	bit 6   A    accessed
//	bit 7   D    dirty
//	bits 10..53  PPN
//	bit 63  N    SVNAPOT: ppn[3:0] = 0b1000 encodes a 64KB (16-page) range
//
// A PTE with R=W=X=0 is a pointer to the next level; any R/X leaf at a
// non-final level is a superpage whose low PPN bits must be zero.
const (
	svV = 1 << 0
	svR = 1 << 1
	svW = 1 << 2
	svX = 1 << 3
	svU = 1 << 4
	svA = 1 << 6
	svD = 1 << 7
	svN = 1 << 63

	svPPNShift = 10
	svPPNMask  = ((uint64(1) << 44) - 1) << svPPNShift

	// napotGranulePPN is the ppn[3:0] pattern naming the 64KB NAPOT size.
	napotGranulePPN = 0x8
	napotPages      = 16
)

// Simplified ARM64 stage-1 descriptor (4KB granule):
//
//	bit 0   valid
//	bit 1   type: table pointer at non-final levels, page at the final one
//	        (so a leaf at levels 2/3 — a block — has it clear)
//	bit 6   AP[1]  EL0 (user) accessible
//	bit 7   AP[2]  read-only
//	bit 10  AF     access flag
//	bit 51  DBM    models the dirty state
//	bit 52  contiguous hint (16 adjacent entries, one TLB entry)
//	bit 54  UXN    execute never
//	bits 12..47   output address
const (
	armValid  = 1 << 0
	armType   = 1 << 1
	armAPUser = 1 << 6
	armAPRO   = 1 << 7
	armAF     = 1 << 10
	armDirty  = 1 << 51
	armContig = 1 << 52
	armUXN    = 1 << 54

	armOAMask = ((uint64(1) << addr.PABits) - 1) &^ (addr.Size4K - 1)
)

// EncodePTEISA packs a translation into the descriptor's 8-byte leaf
// format. level is the radix level the entry lives at (1..3 for leaves).
// contig sets the contiguity encoding — the SVNAPOT N bit or the ARM64
// contiguous hint — and is only legal for 4KB leaves on descriptors whose
// ContigKind supports it (it is silently dropped elsewhere, as on real
// hardware where the bit position is reserved).
func EncodePTEISA(d *isa.Descriptor, t Translation, level int, contig bool) uint64 {
	switch d.Format {
	case isa.PTESv:
		return encodeSvPTE(d, t, level, contig)
	case isa.PTEARM64:
		return encodeArmPTE(d, t, level, contig)
	default:
		return EncodePTE(t, level)
	}
}

// DecodePTEISA unpacks a leaf PTE for the page at va and radix level.
// contig reports whether the entry carried the descriptor's contiguity
// encoding. ok is false when the entry is absent or malformed for the
// level (pointer where a leaf is required, misaligned superpage PPN,
// NAPOT at a superpage level).
func DecodePTEISA(d *isa.Descriptor, raw uint64, va addr.V, level int) (t Translation, contig, ok bool) {
	switch d.Format {
	case isa.PTESv:
		return decodeSvPTE(d, raw, va, level)
	case isa.PTEARM64:
		return decodeArmPTE(d, raw, va, level)
	default:
		t, ok = DecodePTE(raw, va, level)
		return t, false, ok
	}
}

func encodeSvPTE(d *isa.Descriptor, t Translation, level int, contig bool) uint64 {
	v := uint64(svV | svR) // every mapping in this simulator is readable
	if t.Perm&addr.PermWrite != 0 {
		v |= svW
	}
	if t.Perm&addr.PermExec != 0 {
		v |= svX
	}
	if t.Perm&addr.PermUser != 0 {
		v |= svU
	}
	if t.Accessed {
		v |= svA
	}
	if t.Dirty {
		v |= svD
	}
	ppn := uint64(t.PA) >> addr.Shift4K
	if contig && level == 1 && d.Contig == isa.ContigNAPOT && d.ContigPages == napotPages {
		v |= svN
		ppn = ppn&^uint64(napotPages-1) | napotGranulePPN
	}
	v |= (ppn << svPPNShift) & svPPNMask
	return v
}

func decodeSvPTE(d *isa.Descriptor, raw uint64, va addr.V, level int) (Translation, bool, bool) {
	if raw&svV == 0 || raw&(svR|svW|svX) == 0 {
		return Translation{}, false, false // absent, or a pointer (not a leaf)
	}
	size := sizeAtLevel(level)
	ppn := (raw & svPPNMask) >> svPPNShift
	napot := raw&svN != 0
	if napot {
		if level != 1 || d.Contig != isa.ContigNAPOT || ppn&uint64(napotPages-1) != napotGranulePPN {
			return Translation{}, false, false
		}
		// The one encoded PTE covers the whole granule; the VA's low VPN
		// bits select the member frame.
		ppn = ppn&^uint64(napotPages-1) | (uint64(va)>>addr.Shift4K)&uint64(napotPages-1)
	} else if ppn&(size.Frames()-1) != 0 {
		return Translation{}, false, false // misaligned superpage PPN
	}
	perm := addr.PermRead
	if raw&svW != 0 {
		perm |= addr.PermWrite
	}
	if raw&svX != 0 {
		perm |= addr.PermExec
	}
	if raw&svU != 0 {
		perm |= addr.PermUser
	}
	return Translation{
		VA:       va.PageBase(size),
		PA:       addr.P(ppn << addr.Shift4K).PageBase(size),
		Size:     size,
		Perm:     perm,
		Accessed: raw&svA != 0,
		Dirty:    raw&svD != 0,
	}, napot, true
}

func encodeArmPTE(d *isa.Descriptor, t Translation, level int, contig bool) uint64 {
	v := uint64(armValid)
	if level == 1 {
		v |= armType // page descriptor at the final level
	}
	if t.Perm&addr.PermWrite == 0 {
		v |= armAPRO
	}
	if t.Perm&addr.PermUser != 0 {
		v |= armAPUser
	}
	if t.Perm&addr.PermExec == 0 {
		v |= armUXN
	}
	if t.Accessed {
		v |= armAF
	}
	if t.Dirty {
		v |= armDirty
	}
	if contig && level == 1 && d.Contig == isa.ContigHint {
		v |= armContig
	}
	v |= uint64(t.PA) & armOAMask
	return v
}

func decodeArmPTE(d *isa.Descriptor, raw uint64, va addr.V, level int) (Translation, bool, bool) {
	if raw&armValid == 0 {
		return Translation{}, false, false
	}
	if level == 1 && raw&armType == 0 {
		return Translation{}, false, false // reserved at the final level
	}
	if level > 1 && raw&armType != 0 {
		return Translation{}, false, false // table pointer, not a block
	}
	size := sizeAtLevel(level)
	contig := raw&armContig != 0
	if contig && (level != 1 || d.Contig != isa.ContigHint) {
		return Translation{}, false, false
	}
	perm := addr.PermRead
	if raw&armAPRO == 0 {
		perm |= addr.PermWrite
	}
	if raw&armAPUser != 0 {
		perm |= addr.PermUser
	}
	if raw&armUXN == 0 {
		perm |= addr.PermExec
	}
	return Translation{
		VA:       va.PageBase(size),
		PA:       addr.P(raw & armOAMask).PageBase(size),
		Size:     size,
		Perm:     perm,
		Accessed: raw&armAF != 0,
		Dirty:    raw&armDirty != 0,
	}, contig, true
}
