package pagetable

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/telemetry"
)

// ptTel holds the page table's pre-resolved telemetry handles (nil when
// disabled, the default). Walks are deliberately not counted here — the
// MMU owns walk accounting (depth, cycles, fused vs. scalar) and WalkInto
// is too hot to touch twice.
type ptTel struct {
	maps       [addr.NumPageSizes]*telemetry.Counter
	unmaps     *telemetry.Counter
	dirtyLines *telemetry.Counter
}

// AttachTelemetry implements telemetry.Instrumentable.
func (pt *PageTable) AttachTelemetry(c *telemetry.Collector) {
	if c == nil {
		pt.tel = nil
		return
	}
	t := &ptTel{
		unmaps:     c.Counter("pagetable_unmaps_total"),
		dirtyLines: c.Counter("pagetable_dirty_line_ops_total"),
	}
	for _, s := range addr.Sizes() {
		t.maps[s] = c.Counter("pagetable_maps_total", "size", s.String())
	}
	pt.tel = t
}
