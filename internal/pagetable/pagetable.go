// Package pagetable implements a radix page table and the hardware
// page-table walker semantics the simulator's MMUs use. The radix depth
// and virtual-address width come from an isa.Descriptor: the default is
// x86-64 4-level paging, with 5-level LA57, RISC-V Sv39/Sv48 (including
// SVNAPOT contiguity), and ARM64 contiguous-hint geometries available via
// NewISA.
//
// Three leaf levels are supported on every descriptor, matching the shared
// ladder: 4KB pages at level 1, 2MB pages at level 2 (PS bit in the page
// directory), and 1GB pages at level 3 (PS bit in the PDPT). Page-table
// pages themselves are backed by physical frames from a FrameAllocator, so
// walker memory references carry realistic physical cache-line addresses.
//
// The walker exposes the detail the MIX TLB design hinges on (Sec 3): page
// tables are read in 64-byte cache-line units, so every miss hands the fill
// logic the 8 translations adjacent to the requested one for free. On
// descriptors with a hardware contiguity encoding (SVNAPOT, the ARM64
// contiguous hint), a walk that lands in a fully populated, aligned,
// physically contiguous block additionally reports the whole block — the
// information a single NAPOT/contiguous-bit PTE carries architecturally.
package pagetable

import (
	"errors"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

// Number of entries per table and radix geometry.
const (
	entriesPerTable = 512
	indexBits       = 9
	// Levels is the number of radix levels of the default x86-64
	// descriptor (PML4, PDPT, PD, PT). Descriptor-aware code should use
	// PageTable.Depth instead.
	Levels = 4
)

// Errors returned by mapping operations.
var (
	// ErrMisaligned indicates a VA or PA not aligned to the page size.
	ErrMisaligned = errors.New("pagetable: address not aligned to page size")
	// ErrOverlap indicates the range is already mapped (possibly at a
	// different page size).
	ErrOverlap = errors.New("pagetable: range already mapped")
	// ErrNoMemory indicates the frame allocator could not back a new
	// page-table page.
	ErrNoMemory = errors.New("pagetable: out of memory for page-table pages")
	// ErrNotMapped indicates an unmap or update of an absent translation.
	ErrNotMapped = errors.New("pagetable: virtual address not mapped")
)

// FrameAllocator supplies physical frames for page-table pages.
// physmem.Buddy satisfies it.
type FrameAllocator interface {
	AllocPage(s addr.PageSize) (addr.P, bool)
	FreePage(pa addr.P, s addr.PageSize)
}

// Translation is one leaf page-table entry in decoded form. It is the
// currency every TLB design in this repository caches.
type Translation struct {
	VA       addr.V // page-aligned virtual base
	PA       addr.P // page-aligned physical base
	Size     addr.PageSize
	Perm     addr.Perm
	Accessed bool
	Dirty    bool
}

// Valid reports whether t describes a real mapping.
func (t Translation) Valid() bool { return t.Size.Valid() && (t.Perm&addr.PermRead) != 0 }

// Translate applies the mapping to a virtual address inside the page.
func (t Translation) Translate(va addr.V) addr.P {
	return t.PA + addr.P(va.Offset(t.Size))
}

// String formats a translation for diagnostics.
func (t Translation) String() string {
	return fmt.Sprintf("%v->%v %v %v a=%v d=%v", t.VA, t.PA, t.Size, t.Perm, t.Accessed, t.Dirty)
}

// table is one 4KB page-table page.
type table struct {
	base     addr.P // physical address of this table page
	entries  [entriesPerTable]entry
	children [entriesPerTable]*table
	live     int // populated entries (for reclamation)
}

// entry is a decoded PTE. A hardware implementation packs this into 8
// bytes; the simulator keeps it unpacked for clarity and stores the packed
// form only conceptually (EncodePTE/DecodePTE cover the packed format and
// are exercised by tests).
type entry struct {
	present bool
	leaf    bool // PS bit (or level-1 entry)
	pfn     uint64
	perm    addr.Perm
	acc     bool
	dirty   bool
}

// PageTable is a radix page table with descriptor-driven depth.
type PageTable struct {
	alloc FrameAllocator
	root  *table
	count [addr.NumPageSizes]uint64 // live translations per size

	// desc is the translation architecture; depth and contigPages are
	// copies of its hot fields so walk loops touch plain ints.
	desc        *isa.Descriptor
	depth       int
	contigPages int

	// tel is the telemetry hook block, nil unless AttachTelemetry enabled
	// it; every use is a single nil-check branch.
	tel *ptTel
}

// levelShift returns the VA shift of the index for a level (4..1).
func levelShift(level int) uint { return addr.Shift4K + uint(indexBits*(level-1)) }

// leafLevel returns the radix level at which pages of size s terminate.
func leafLevel(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return 1
	case addr.Page2M:
		return 2
	case addr.Page1G:
		return 3
	}
	panic("pagetable: invalid page size")
}

// New creates an empty page table for the default x86-64 descriptor.
func New(alloc FrameAllocator) (*PageTable, error) {
	return NewISA(alloc, isa.Default())
}

// NewISA creates an empty page table for the given translation
// architecture. The simulator's table pages are fixed 4KB/512-entry
// frames, so every radix level of the descriptor must be 9 bits wide and
// base pages must be 4KB (true of all shipped descriptors).
func NewISA(alloc FrameAllocator, d *isa.Descriptor) (*PageTable, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("pagetable: %w", err)
	}
	if d.PageShift != addr.Shift4K {
		return nil, fmt.Errorf("pagetable: descriptor %s: base page shift %d unsupported (want %d)", d.Name, d.PageShift, addr.Shift4K)
	}
	for lvl := 1; lvl <= d.Depth(); lvl++ {
		if d.IndexBits(lvl) != indexBits {
			return nil, fmt.Errorf("pagetable: descriptor %s: level %d index width %d unsupported (want %d)", d.Name, lvl, d.IndexBits(lvl), indexBits)
		}
	}
	pt := &PageTable{alloc: alloc, desc: d, depth: d.Depth(), contigPages: d.ContigPages}
	root, err := pt.newTable()
	if err != nil {
		return nil, err
	}
	pt.root = root
	return pt, nil
}

// Descriptor returns the translation architecture the table implements.
func (pt *PageTable) Descriptor() *isa.Descriptor { return pt.desc }

// Depth returns the radix depth (4 for x86-64, 5 for LA57, 3 for Sv39).
func (pt *PageTable) Depth() int { return pt.depth }

func (pt *PageTable) newTable() (*table, error) {
	base, ok := pt.alloc.AllocPage(addr.Page4K)
	if !ok {
		return nil, ErrNoMemory
	}
	return &table{base: base}, nil
}

// index extracts the radix index of va at a level.
func index(va addr.V, level int) int {
	return int((uint64(va) >> levelShift(level)) & (entriesPerTable - 1))
}

// Map installs a translation. VA and PA must be aligned to size. The
// covered range must be entirely unmapped.
func (pt *PageTable) Map(va addr.V, pa addr.P, size addr.PageSize, perm addr.Perm) error {
	if va.Offset(size) != 0 || pa.Offset(size) != 0 {
		return ErrMisaligned
	}
	target := leafLevel(size)
	t := pt.root
	for level := pt.depth; level > target; level-- {
		i := index(va, level)
		e := &t.entries[i]
		if e.present && e.leaf {
			return ErrOverlap // a larger page already covers this VA
		}
		if t.children[i] == nil {
			child, err := pt.newTable()
			if err != nil {
				return err
			}
			t.children[i] = child
			e.present = true
			e.pfn = child.base.PFN4K()
			t.live++
		}
		t = t.children[i]
	}
	i := index(va, target)
	e := &t.entries[i]
	if t.children[i] != nil {
		if t.children[i].live > 0 {
			return ErrOverlap // smaller pages still mapped below
		}
		// The child table emptied out (e.g. khugepaged unmapped all 512
		// base pages before collapsing to a superpage): reclaim it and
		// install the leaf in its place.
		pt.alloc.FreePage(t.children[i].base, addr.Page4K)
		t.children[i] = nil
		*e = entry{}
		t.live--
	}
	if e.present {
		return ErrOverlap
	}
	*e = entry{
		present: true,
		leaf:    true,
		pfn:     pa.PageNum(addr.Page4K),
		perm:    perm,
	}
	t.live++
	pt.count[size]++
	if pt.tel != nil {
		pt.tel.maps[size].Inc()
	}
	return nil
}

// Unmap removes the translation covering va and returns it.
func (pt *PageTable) Unmap(va addr.V) (Translation, error) {
	t := pt.root
	for level := pt.depth; level >= 1; level-- {
		i := index(va, level)
		e := &t.entries[i]
		if !e.present {
			return Translation{}, ErrNotMapped
		}
		if e.leaf || level == 1 {
			size := sizeAtLevel(level)
			tr := decode(e, va, level)
			*e = entry{}
			t.live--
			pt.count[size]--
			// Intermediate tables are retained (as real OSes usually do
			// between mappings); freeing them lazily keeps Unmap O(levels).
			if pt.tel != nil {
				pt.tel.unmaps.Inc()
			}
			return tr, nil
		}
		t = t.children[i]
	}
	return Translation{}, ErrNotMapped
}

func sizeAtLevel(level int) addr.PageSize {
	switch level {
	case 1:
		return addr.Page4K
	case 2:
		return addr.Page2M
	case 3:
		return addr.Page1G
	}
	panic("pagetable: no page size at level")
}

func decode(e *entry, va addr.V, level int) Translation {
	size := sizeAtLevel(level)
	return Translation{
		VA:       va.PageBase(size),
		PA:       addr.P(e.pfn << addr.Shift4K),
		Size:     size,
		Perm:     e.perm,
		Accessed: e.acc,
		Dirty:    e.dirty,
	}
}

// Lookup performs a software lookup with no side effects or cost model.
func (pt *PageTable) Lookup(va addr.V) (Translation, bool) {
	t := pt.root
	for level := pt.depth; level >= 1; level-- {
		e := &t.entries[index(va, level)]
		if !e.present {
			return Translation{}, false
		}
		if e.leaf || level == 1 {
			return decode(e, va, level), true
		}
		t = t.children[index(va, level)]
	}
	return Translation{}, false
}

// Count returns the number of live translations of the given size.
func (pt *PageTable) Count(size addr.PageSize) uint64 { return pt.count[size] }

// RootBase returns the physical address of the root table (CR3).
func (pt *PageTable) RootBase() addr.P { return pt.root.base }

// SetAccessed marks the leaf covering va accessed (hardware walker
// behaviour on TLB fill). It reports whether a mapping was found.
func (pt *PageTable) SetAccessed(va addr.V) bool {
	e := pt.leafEntry(va)
	if e == nil {
		return false
	}
	e.acc = true
	return true
}

// SetDirty marks the leaf covering va dirty (hardware behaviour on the
// first store through a translation). It reports whether a mapping exists.
func (pt *PageTable) SetDirty(va addr.V) bool {
	e := pt.leafEntry(va)
	if e == nil {
		return false
	}
	e.acc = true
	e.dirty = true
	return true
}

// ClearAccessedDirty clears the A/D bits of the leaf covering va, the
// operation an OS page-reclaim scan performs.
func (pt *PageTable) ClearAccessedDirty(va addr.V) bool {
	e := pt.leafEntry(va)
	if e == nil {
		return false
	}
	e.acc, e.dirty = false, false
	return true
}

func (pt *PageTable) leafEntry(va addr.V) *entry {
	t := pt.root
	for level := pt.depth; level >= 1; level-- {
		e := &t.entries[index(va, level)]
		if !e.present {
			return nil
		}
		if e.leaf || level == 1 {
			return e
		}
		t = t.children[index(va, level)]
	}
	return nil
}

// LeafRef is an opaque handle to the leaf PTE a Walk resolved. It lets the
// MMU update the entry's A/D bits after a walk without re-traversing the
// radix from the root (the fused store path). A zero LeafRef is invalid;
// sources that synthesize WalkResults (nested walkers) leave it zero.
type LeafRef struct{ e *entry }

// Valid reports whether the handle refers to a leaf PTE.
func (l LeafRef) Valid() bool { return l.e != nil }

// SetDirty sets the accessed and dirty bits of the referenced leaf,
// equivalent to PageTable.SetDirty on the walked VA.
func (l LeafRef) SetDirty() { l.e.acc, l.e.dirty = true, true }

// WalkResult is the outcome of a hardware page-table walk.
type WalkResult struct {
	// Found is false when the VA is unmapped (page fault).
	Found bool
	// Translation is the decoded leaf, valid when Found.
	Translation Translation
	// Accesses lists the physical addresses of each PTE the walker read,
	// in order (root first). Native walks touch Levels entries at most;
	// these flow through the cache hierarchy for cost accounting.
	Accesses []addr.P
	// Line holds the decoded, present translations sharing the final
	// PTE's 64-byte cache line (up to 8, including the result itself) in
	// ascending VA order. This is the window coalescing logic scans
	// "for free" on a miss (Sec 3, step 2). Empty when !Found.
	Line []Translation
	// Leaf is a handle to the resolved leaf PTE, set only by native
	// PageTable walks, valid when Found. It lets the dirty-bit assist
	// update the entry without a second root-to-leaf traversal.
	Leaf LeafRef
	// ContigPages is nonzero when the descriptor has a hardware
	// contiguity encoding (SVNAPOT, ARM64 contiguous hint) and the
	// resolved 4KB leaf sits in a fully populated, naturally aligned,
	// physically contiguous block of that many base pages — the condition
	// under which an OS would have set the N/contiguous bit. When set,
	// Line covers the whole block (its members are what the single
	// encoded PTE describes), not just the leaf's cache line. Always zero
	// on descriptors without an encoding, including the default x86-64.
	ContigPages int
}

// Walk performs a hardware page-table walk for va: traverses the radix
// levels, records each PTE access's physical address, sets the accessed
// bit on the leaf (x86 semantics: a translation is only filled into a TLB
// with its accessed bit set, Sec 4.4), and decodes the final cache line.
func (pt *PageTable) Walk(va addr.V) WalkResult {
	var res WalkResult
	pt.WalkInto(va, &res)
	return res
}

// WalkInto is Walk writing into a caller-owned result, reusing the
// capacity of res.Accesses and res.Line across calls. The MMU's inner
// loop uses it to keep steady-state walks allocation-free.
func (pt *PageTable) WalkInto(va addr.V, res *WalkResult) {
	res.Found = false
	res.Translation = Translation{}
	res.Accesses = res.Accesses[:0]
	res.Line = res.Line[:0]
	res.Leaf = LeafRef{}
	res.ContigPages = 0
	t := pt.root
	for level := pt.depth; level >= 1; level-- {
		i := index(va, level)
		res.Accesses = append(res.Accesses, t.base+addr.P(i*8))
		e := &t.entries[i]
		if !e.present {
			return
		}
		if e.leaf || level == 1 {
			e.acc = true
			res.Found = true
			res.Translation = decode(e, va, level)
			res.Line = appendLineTranslations(res.Line, t, i, va, level)
			res.Leaf = LeafRef{e}
			if pt.contigPages > 1 && level == 1 && pt.contigBlock(t, i) {
				res.ContigPages = pt.contigPages
				if pt.contigPages > addr.PTEsPerCacheLine {
					res.Line = appendBlockTranslations(res.Line[:0], t, i&^(pt.contigPages-1), pt.contigPages, va)
				}
			}
			return
		}
		t = t.children[i]
	}
}

// contigBlock reports whether the aligned contigPages-entry block of leaf
// table t containing index i satisfies the architectural conditions for
// the descriptor's contiguity encoding: every entry present with the same
// permissions, the block physically contiguous, and the physical base
// naturally aligned (NAPOT's alignment rule; ARM64 requires the same of
// contiguous-hint output ranges). When it does, the walker also sets the
// accessed bit on every member — architecturally the block shares one
// encoded PTE, so its A bit covers the whole range.
func (pt *PageTable) contigBlock(t *table, i int) bool {
	start := i &^ (pt.contigPages - 1)
	base := &t.entries[start]
	if !base.present || base.pfn&uint64(pt.contigPages-1) != 0 {
		return false
	}
	for j := 0; j < pt.contigPages; j++ {
		e := &t.entries[start+j]
		if !e.present || !e.leaf || e.perm != base.perm || e.pfn != base.pfn+uint64(j) {
			return false
		}
	}
	for j := 0; j < pt.contigPages; j++ {
		t.entries[start+j].acc = true
	}
	return true
}

// appendBlockTranslations decodes the 4KB leaves of an aligned block
// starting at index start of leaf table t, appending into a caller-owned
// slice. All entries are known present (contigBlock verified them).
func appendBlockTranslations(out []Translation, t *table, start, n int, va addr.V) []Translation {
	const shift = addr.Shift4K
	for j := start; j < start+n; j++ {
		nva := addr.V(uint64(va)&^(uint64(entriesPerTable-1)<<shift) | uint64(j)<<shift)
		out = append(out, decode(&t.entries[j], nva.PageBase(addr.Page4K), 1))
	}
	return out
}

// SetDirtyLine sets the A/D bits of the leaf covering va and returns the
// decoded translations sharing its cache line — the fused equivalent of
// SetDirty followed by Walk(va).Line, in a single traversal and with no
// walker-access recording. The line is appended into buf[:0] so a caller
// looping over dirty transitions can reuse one buffer. It returns nil
// when va is unmapped.
func (pt *PageTable) SetDirtyLine(va addr.V, buf []Translation) []Translation {
	t := pt.root
	for level := pt.depth; level >= 1; level-- {
		i := index(va, level)
		e := &t.entries[i]
		if !e.present {
			return nil
		}
		if e.leaf || level == 1 {
			e.acc = true
			e.dirty = true
			if pt.tel != nil {
				pt.tel.dirtyLines.Inc()
			}
			return appendLineTranslations(buf[:0], t, i, va, level)
		}
		t = t.children[i]
	}
	return nil
}

// appendLineTranslations decodes the present, same-level leaves in the
// 8-entry cache line containing index i of table t, appending into a
// caller-owned slice.
func appendLineTranslations(out []Translation, t *table, i int, va addr.V, level int) []Translation {
	size := sizeAtLevel(level)
	lineStart := i &^ (addr.PTEsPerCacheLine - 1)
	for j := lineStart; j < lineStart+addr.PTEsPerCacheLine; j++ {
		e := &t.entries[j]
		if !e.present || (!e.leaf && level != 1) {
			continue
		}
		// Reconstruct the neighbour's VA by replacing the index bits.
		shift := levelShift(level)
		nva := addr.V(uint64(va)&^(uint64(entriesPerTable-1)<<shift) | uint64(j)<<shift)
		out = append(out, decode(e, nva.PageBase(size), level))
	}
	return out
}

// ForEach visits every live translation in ascending VA order. The visit
// function returns false to stop early. This in-order scan is what the
// contiguity characterization (Sec 7.1, Figures 11-13) runs over.
func (pt *PageTable) ForEach(visit func(Translation) bool) {
	pt.forEach(pt.root, pt.depth, 0, visit)
}

func (pt *PageTable) forEach(t *table, level int, vaBase uint64, visit func(Translation) bool) bool {
	for i := 0; i < entriesPerTable; i++ {
		e := &t.entries[i]
		va := vaBase | uint64(i)<<levelShift(level)
		if e.present && (e.leaf || level == 1) {
			if !visit(decode(e, addr.V(va), level)) {
				return false
			}
		} else if t.children[i] != nil {
			if !pt.forEach(t.children[i], level-1, va, visit) {
				return false
			}
		}
	}
	return true
}
