package pagetable

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

func mustISA(t *testing.T, name string) *isa.Descriptor {
	t.Helper()
	d, err := isa.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestWalkDepthPerISA: the walker touches exactly Depth PTEs for a 4KB
// walk, and Depth-(level-1) for superpage leaves, on every descriptor.
func TestWalkDepthPerISA(t *testing.T) {
	for _, name := range []string{"x86-64", "x86-64-la57", "sv39", "sv48"} {
		d := mustISA(t, name)
		pt, err := NewISA(&stubAlloc{}, d)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Depth() != d.Depth() {
			t.Fatalf("%s: depth %d, want %d", name, pt.Depth(), d.Depth())
		}
		va := addr.V(uint64(1) << (d.VABits - 2)) // inside the VA space, above 4 levels' reach
		if err := pt.Map(va, 0x40000000, addr.Page4K, addr.PermRW); err != nil {
			t.Fatalf("%s: Map: %v", name, err)
		}
		w := pt.Walk(va)
		if !w.Found || len(w.Accesses) != d.Depth() {
			t.Fatalf("%s: walk found=%v accesses=%d, want %d", name, w.Found, len(w.Accesses), d.Depth())
		}
		if w.ContigPages != 0 {
			t.Fatalf("%s: contig pages %d on a non-contig descriptor", name, w.ContigPages)
		}
		// 2MB leaf: one fewer access.
		va2 := va + addr.V(addr.Size1G)
		if err := pt.Map(va2, 0x80000000, addr.Page2M, addr.PermRW); err != nil {
			t.Fatalf("%s: Map 2M: %v", name, err)
		}
		if w2 := pt.Walk(va2); !w2.Found || len(w2.Accesses) != d.Depth()-1 {
			t.Fatalf("%s: 2MB walk accesses=%d, want %d", name, len(w2.Accesses), d.Depth()-1)
		}
	}
}

// TestContigBlockDetection: on a NAPOT descriptor the walker reports a
// fully populated, aligned, physically contiguous 16-page block — and the
// Line grows to cover all 16 members, the information the single encoded
// PTE carries. Holes, permission mismatches, misalignment, or physical
// discontiguity all disqualify the block.
func TestContigBlockDetection(t *testing.T) {
	d := mustISA(t, "sv48-napot")
	pt, err := NewISA(&stubAlloc{}, d)
	if err != nil {
		t.Fatal(err)
	}
	const block = 16 * addr.Size4K
	base := addr.V(0x10000000000)
	paBase := addr.P(0x200000000)
	for i := 0; i < 16; i++ {
		off := addr.V(i * addr.Size4K)
		if err := pt.Map(base+off, paBase+addr.P(i*addr.Size4K), addr.Page4K, addr.PermRW|addr.PermUser); err != nil {
			t.Fatal(err)
		}
	}
	w := pt.Walk(base + 5*addr.Size4K)
	if !w.Found || w.ContigPages != 16 {
		t.Fatalf("contig walk: found=%v contig=%d, want 16", w.Found, w.ContigPages)
	}
	if len(w.Line) != 16 {
		t.Fatalf("contig line has %d members, want 16", len(w.Line))
	}
	for i, tr := range w.Line {
		if tr.VA != base+addr.V(i*addr.Size4K) || tr.PA != paBase+addr.P(i*addr.Size4K) {
			t.Fatalf("line[%d] = %v", i, tr)
		}
		if !tr.Accessed {
			t.Fatalf("line[%d] not accessed: the block shares one A bit", i)
		}
	}

	// A block with one member unmapped is not contiguity-encodable.
	hole := base + block
	for i := 0; i < 16; i++ {
		if i == 7 {
			continue
		}
		if err := pt.Map(hole+addr.V(i*addr.Size4K), paBase+addr.P(block)+addr.P(i*addr.Size4K), addr.Page4K, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if w := pt.Walk(hole); w.ContigPages != 0 {
		t.Fatalf("holed block reported contig=%d", w.ContigPages)
	}

	// Physically discontiguous members disqualify the block.
	scatter := hole + block
	for i := 0; i < 16; i++ {
		pa := paBase + 2*block + addr.P(i*addr.Size4K)
		if i == 3 {
			pa += addr.Size2M // break contiguity
		}
		if err := pt.Map(scatter+addr.V(i*addr.Size4K), pa, addr.Page4K, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if w := pt.Walk(scatter); w.ContigPages != 0 {
		t.Fatalf("scattered block reported contig=%d", w.ContigPages)
	}

	// A physically misaligned (non-NAPOT) base disqualifies the block.
	skew := scatter + block
	for i := 0; i < 16; i++ {
		if err := pt.Map(skew+addr.V(i*addr.Size4K), paBase+4*block+addr.Size4K+addr.P(i*addr.Size4K), addr.Page4K, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if w := pt.Walk(skew); w.ContigPages != 0 {
		t.Fatalf("misaligned block reported contig=%d", w.ContigPages)
	}
}

// TestNewISARejectsUnsupportedGeometry: the simulator's 4KB/512-entry
// table pages pin every level to 9 index bits.
func TestNewISARejectsUnsupportedGeometry(t *testing.T) {
	bad := &isa.Descriptor{Name: "wide", VABits: 12 + 11 + 9 + 9, PABits: 48, PageShift: 12, LevelBits: []uint{11, 9, 9}}
	if _, err := NewISA(&stubAlloc{}, bad); err == nil {
		t.Fatal("NewISA accepted an 11-bit level")
	}
}

// stubAlloc hands out consecutive high frames for page-table pages.
type stubAlloc struct{ next addr.P }

func (a *stubAlloc) AllocPage(s addr.PageSize) (addr.P, bool) {
	base := addr.P(0x7000000000) + a.next
	a.next += addr.P(s.Bytes())
	return base, true
}

func (a *stubAlloc) FreePage(addr.P, addr.PageSize) {}
