package pagetable

import (
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
)

func newPT(t *testing.T) *PageTable {
	t.Helper()
	pt, err := New(physmem.NewBuddy(256 << 20)) // 256MB for table pages
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestMapLookupAllSizes(t *testing.T) {
	pt := newPT(t)
	cases := []struct {
		va   addr.V
		pa   addr.P
		size addr.PageSize
	}{
		{0x7f0000001000, 0x1000, addr.Page4K},
		{0x7f0000200000, 0x400000, addr.Page2M},
		{0x40000000, 0x80000000, addr.Page1G},
	}
	for _, c := range cases {
		if err := pt.Map(c.va, c.pa, c.size, addr.PermRW); err != nil {
			t.Fatalf("Map(%v): %v", c.va, err)
		}
	}
	for _, c := range cases {
		// Probe an offset inside the page, not just the base.
		probe := c.va + addr.V(c.size.Bytes()/2)
		tr, ok := pt.Lookup(probe)
		if !ok {
			t.Fatalf("Lookup(%v) missed", probe)
		}
		if tr.VA != c.va || tr.PA != c.pa || tr.Size != c.size {
			t.Errorf("Lookup(%v) = %v", probe, tr)
		}
		if got, want := tr.Translate(probe), c.pa+addr.P(c.size.Bytes()/2); got != want {
			t.Errorf("Translate = %v, want %v", got, want)
		}
	}
	if pt.Count(addr.Page4K) != 1 || pt.Count(addr.Page2M) != 1 || pt.Count(addr.Page1G) != 1 {
		t.Error("Count wrong")
	}
}

func TestMapMisaligned(t *testing.T) {
	pt := newPT(t)
	if err := pt.Map(0x1000, 0x2000, addr.Page2M, addr.PermRW); err != ErrMisaligned {
		t.Errorf("misaligned VA: %v", err)
	}
	if err := pt.Map(0x200000, 0x1000, addr.Page2M, addr.PermRW); err != ErrMisaligned {
		t.Errorf("misaligned PA: %v", err)
	}
}

func TestMapOverlap(t *testing.T) {
	pt := newPT(t)
	if err := pt.Map(0x200000, 0x200000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	// Same 2MB page again.
	if err := pt.Map(0x200000, 0x600000, addr.Page2M, addr.PermRW); err != ErrOverlap {
		t.Errorf("duplicate 2MB map: %v", err)
	}
	// A 4KB page inside the existing 2MB page.
	if err := pt.Map(0x201000, 0x1000, addr.Page4K, addr.PermRW); err != ErrOverlap {
		t.Errorf("4KB inside 2MB: %v", err)
	}
	// A 2MB page over existing 4KB pages.
	if err := pt.Map(0x400000, 0x1000, addr.Page4K, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x400000, 0x800000, addr.Page2M, addr.PermRW); err != ErrOverlap {
		t.Errorf("2MB over 4KB: %v", err)
	}
	// A 1GB page over the whole lot.
	if err := pt.Map(0, 0x40000000, addr.Page1G, addr.PermRW); err != ErrOverlap {
		t.Errorf("1GB over smaller pages: %v", err)
	}
}

func TestUnmap(t *testing.T) {
	pt := newPT(t)
	if err := pt.Map(0x200000, 0xa00000, addr.Page2M, addr.PermRead); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Unmap(0x234567) // any address inside the page
	if err != nil {
		t.Fatal(err)
	}
	if tr.PA != 0xa00000 || tr.Size != addr.Page2M {
		t.Errorf("Unmap returned %v", tr)
	}
	if _, ok := pt.Lookup(0x200000); ok {
		t.Error("translation survives Unmap")
	}
	if pt.Count(addr.Page2M) != 0 {
		t.Error("count not decremented")
	}
	if _, err := pt.Unmap(0x200000); err != ErrNotMapped {
		t.Errorf("double unmap: %v", err)
	}
	// The slot is reusable.
	if err := pt.Map(0x200000, 0xc00000, addr.Page2M, addr.PermRW); err != nil {
		t.Errorf("remap after unmap: %v", err)
	}
}

func TestAccessedDirtyBits(t *testing.T) {
	pt := newPT(t)
	va := addr.V(0x5000)
	if err := pt.Map(va, 0x9000, addr.Page4K, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	tr, _ := pt.Lookup(va)
	if tr.Accessed || tr.Dirty {
		t.Error("fresh mapping has A/D set")
	}
	if !pt.SetAccessed(va) {
		t.Fatal("SetAccessed failed")
	}
	tr, _ = pt.Lookup(va)
	if !tr.Accessed || tr.Dirty {
		t.Errorf("after SetAccessed: %v", tr)
	}
	if !pt.SetDirty(va) {
		t.Fatal("SetDirty failed")
	}
	tr, _ = pt.Lookup(va)
	if !tr.Accessed || !tr.Dirty {
		t.Errorf("after SetDirty: %v", tr)
	}
	if !pt.ClearAccessedDirty(va) {
		t.Fatal("ClearAccessedDirty failed")
	}
	tr, _ = pt.Lookup(va)
	if tr.Accessed || tr.Dirty {
		t.Errorf("after clear: %v", tr)
	}
	if pt.SetAccessed(0xdead000000) || pt.SetDirty(0xdead000000) || pt.ClearAccessedDirty(0xdead000000) {
		t.Error("A/D ops succeeded on unmapped VA")
	}
}

func TestWalkNative(t *testing.T) {
	pt := newPT(t)
	va := addr.V(0x7f0000201000)
	if err := pt.Map(va, 0x3000, addr.Page4K, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	res := pt.Walk(va + 0x123)
	if !res.Found {
		t.Fatal("walk missed")
	}
	if len(res.Accesses) != Levels {
		t.Errorf("walk made %d accesses, want %d", len(res.Accesses), Levels)
	}
	if res.Accesses[0].PageBase(addr.Page4K) != pt.RootBase() {
		t.Errorf("first access %v not in root table %v", res.Accesses[0], pt.RootBase())
	}
	if res.Translation.PA != 0x3000 {
		t.Errorf("walk translation %v", res.Translation)
	}
	if !res.Translation.Accessed {
		t.Error("walk did not set the accessed bit")
	}
	// A 2MB walk stops at level 2: three accesses.
	if err := pt.Map(0x40000000, 0x200000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	if res := pt.Walk(0x40000000); len(res.Accesses) != 3 {
		t.Errorf("2MB walk made %d accesses", len(res.Accesses))
	}
	// A 1GB walk stops at level 3: two accesses.
	if err := pt.Map(0x80000000, 0x40000000, addr.Page1G, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	if res := pt.Walk(0x80000000); len(res.Accesses) != 2 {
		t.Errorf("1GB walk made %d accesses", len(res.Accesses))
	}
}

func TestWalkUnmapped(t *testing.T) {
	pt := newPT(t)
	res := pt.Walk(0x123456789)
	if res.Found {
		t.Fatal("walk of empty table found something")
	}
	if len(res.Accesses) != 1 {
		t.Errorf("empty walk made %d accesses, want 1 (root miss)", len(res.Accesses))
	}
	if len(res.Line) != 0 {
		t.Error("miss returned line translations")
	}
}

func TestWalkLineNeighbors(t *testing.T) {
	pt := newPT(t)
	// Map 2MB pages B..B+7 contiguously (like Figure 2's B and C), plus
	// one with different placement further along the same line window.
	base := addr.V(16 << 21) // 2MB page number 16: line covers PTEs 16..23
	for i := 0; i < 6; i++ {
		va := base + addr.V(i)<<21
		pa := addr.P(0x40000000 + i<<21)
		if err := pt.Map(va, pa, addr.Page2M, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	res := pt.Walk(base + 0x1234)
	if !res.Found {
		t.Fatal("walk missed")
	}
	if len(res.Line) != 6 {
		t.Fatalf("line has %d translations, want 6", len(res.Line))
	}
	for i, tr := range res.Line {
		if tr.VA != base+addr.V(i)<<21 {
			t.Errorf("line[%d].VA = %v", i, tr.VA)
		}
		if tr.Size != addr.Page2M {
			t.Errorf("line[%d].Size = %v", i, tr.Size)
		}
	}
	// A walk to page 23 shares the same line; a walk to 24 does not.
	if err := pt.Map(base+addr.V(7)<<21, 0x80000000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	res = pt.Walk(base + addr.V(7)<<21)
	if len(res.Line) != 7 {
		t.Errorf("line has %d translations, want 7", len(res.Line))
	}
}

func TestWalkLineCrossBoundary(t *testing.T) {
	pt := newPT(t)
	// Pages 7 and 8 are contiguous but sit in different cache lines
	// (lines cover 0-7 and 8-15): the walker must not see across.
	for i := 7; i <= 8; i++ {
		if err := pt.Map(addr.V(i)<<21, addr.P(i)<<21, addr.Page2M, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	res := pt.Walk(addr.V(7) << 21)
	if len(res.Line) != 1 || res.Line[0].VA != addr.V(7)<<21 {
		t.Errorf("line for page 7 = %v", res.Line)
	}
}

func TestForEachOrder(t *testing.T) {
	pt := newPT(t)
	vas := []addr.V{0x40000000, 0x1000, 0x200000, 0x7f0000000000, 0x3000}
	sizes := []addr.PageSize{addr.Page1G, addr.Page4K, addr.Page2M, addr.Page4K, addr.Page4K}
	for i, va := range vas {
		pa := addr.P(uint64(i+1) << 30)
		if err := pt.Map(va, pa, sizes[i], addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	var got []addr.V
	pt.ForEach(func(tr Translation) bool {
		got = append(got, tr.VA)
		return true
	})
	want := []addr.V{0x1000, 0x3000, 0x200000, 0x40000000, 0x7f0000000000}
	if len(got) != len(want) {
		t.Fatalf("visited %d translations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	pt.ForEach(func(Translation) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMapLookupProperty(t *testing.T) {
	pt := newPT(t)
	mapped := make(map[addr.V]Translation)
	f := func(raw uint64, sizeSel, permSel uint8) bool {
		size := addr.Sizes()[int(sizeSel)%addr.NumPageSizes]
		va := addr.V(raw & (1<<addr.VABits - 1)).PageBase(size)
		pa := addr.P(raw >> 7 & (1<<addr.PABits - 1)).PageBase(size)
		perm := addr.Perm(permSel&7) | addr.PermRead
		err := pt.Map(va, pa, size, perm)
		if err != nil {
			return err == ErrOverlap // collisions with earlier picks are fine
		}
		mapped[va] = Translation{VA: va, PA: pa, Size: size, Perm: perm}
		for wantVA, want := range mapped {
			got, ok := pt.Lookup(wantVA)
			if !ok || got.PA != want.PA || got.Size != want.Size || got.Perm != want.Perm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPTERoundTrip(t *testing.T) {
	f := func(raw uint64, sizeSel, permSel uint8, acc, dirty bool) bool {
		size := addr.Sizes()[int(sizeSel)%addr.NumPageSizes]
		level := map[addr.PageSize]int{addr.Page4K: 1, addr.Page2M: 2, addr.Page1G: 3}[size]
		want := Translation{
			VA:       addr.V(raw & (1<<addr.VABits - 1)).PageBase(size),
			PA:       addr.P(raw >> 3 & (1<<addr.PABits - 1)).PageBase(size),
			Size:     size,
			Perm:     addr.Perm(permSel%16) | addr.PermRead,
			Accessed: acc,
			Dirty:    dirty,
		}
		got, ok := DecodePTE(EncodePTE(want, level), want.VA, level)
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePTERejects(t *testing.T) {
	if _, ok := DecodePTE(0, 0, 1); ok {
		t.Error("decoded a non-present PTE")
	}
	// PS at level 1 is malformed.
	tr := Translation{Size: addr.Page2M, Perm: addr.PermRW}
	if _, ok := DecodePTE(EncodePTE(tr, 2), 0, 1); ok {
		t.Error("decoded PS bit at level 1")
	}
	// Table pointer (no PS) decoded as leaf at level 2 is rejected.
	tr4k := Translation{Size: addr.Page4K, Perm: addr.PermRW}
	if _, ok := DecodePTE(EncodePTE(tr4k, 1), 0, 2); ok {
		t.Error("decoded a table pointer as a 2MB leaf")
	}
}

func TestTranslationValidity(t *testing.T) {
	var zero Translation
	if zero.Valid() {
		// Zero-value has Size=Page4K but no read permission.
		t.Error("zero translation reported valid")
	}
	ok := Translation{Size: addr.Page2M, Perm: addr.PermRead}
	if !ok.Valid() {
		t.Error("real translation reported invalid")
	}
}

func TestNoMemory(t *testing.T) {
	// 2 frames: root consumes one; deep mapping needs 3 more.
	tiny := physmem.NewBuddy(2 * addr.Size4K)
	pt, err := New(tiny)
	if err != nil {
		t.Fatal(err)
	}
	err = pt.Map(0x1000, 0x1000, addr.Page4K, addr.PermRW)
	if err != ErrNoMemory {
		t.Errorf("Map on exhausted allocator: %v", err)
	}
}

func TestTablePagesHaveDistinctFrames(t *testing.T) {
	buddy := physmem.NewBuddy(64 << 20)
	pt, err := New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	seen := map[addr.P]bool{pt.RootBase(): true}
	for i := 0; i < 50; i++ {
		va := addr.V(rng.Uint64n(1 << addr.VABits)).PageBase(addr.Page4K)
		if err := pt.Map(va, 0x1000, addr.Page4K, addr.PermRW); err != nil {
			continue
		}
		res := pt.Walk(va)
		for _, a := range res.Accesses {
			seen[a.PageBase(addr.Page4K)] = true
		}
	}
	// Sparse random VAs force many distinct table pages; all must have
	// unique physical frames (the allocator guarantees it, the walker
	// must expose it).
	if len(seen) < 20 {
		t.Errorf("only %d distinct table frames observed", len(seen))
	}
}

func TestCollapseEmptyChildTable(t *testing.T) {
	// khugepaged's collapse: unmap all 512 base pages of a region, then
	// install one 2MB leaf where the (empty) page table used to hang.
	buddy := physmem.NewBuddy(256 << 20)
	pt, err := New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	base := addr.V(0x40000000)
	for i := 0; i < 512; i++ {
		if err := pt.Map(base+addr.V(i*addr.Size4K), addr.P(i*addr.Size4K), addr.Page4K, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	// With live base pages, the 2MB map must refuse.
	if err := pt.Map(base, 0x12400000, addr.Page2M, addr.PermRW); err != ErrOverlap {
		t.Fatalf("map over live 4KB pages: %v", err)
	}
	free := buddy.FreeFrames()
	for i := 0; i < 512; i++ {
		if _, err := pt.Unmap(base + addr.V(i*addr.Size4K)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Map(base, 0x12400000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatalf("collapse failed: %v", err)
	}
	tr, ok := pt.Lookup(base + 0x1234)
	if !ok || tr.Size != addr.Page2M || tr.PA != 0x12400000 {
		t.Errorf("post-collapse lookup: %v %v", tr, ok)
	}
	// The empty table page was reclaimed.
	if buddy.FreeFrames() != free+1 {
		t.Errorf("table page not reclaimed: %d -> %d", free, buddy.FreeFrames())
	}
}
