package pagetable

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

// FuzzPTE exercises the packed PTE codecs of every registered ISA —
// including the SVNAPOT N-bit and ARM64 contiguous-hint leaf encodings —
// with two properties:
//
//  1. Decode never panics on arbitrary raw bits, and anything it accepts
//     survives an encode/decode round trip unchanged (same translation,
//     same contiguity flag).
//  2. A well-formed translation synthesized from the input round-trips
//     through encode then decode.
func FuzzPTE(f *testing.F) {
	f.Add(uint64(0x8000000000055c0f), uint64(0x7ffdeadbe000), uint8(0), uint8(2)) // NAPOT-shaped bits, sv
	f.Add(uint64(0x0010000000200cc3), uint64(0x10000200000), uint8(1), uint8(5))  // arm contig bit region
	f.Add(uint64(0x00000000001000e7), uint64(0x40000000), uint8(2), uint8(0))     // x86 1GB-ish
	f.Add(uint64(0), uint64(0), uint8(0), uint8(0))
	names := isa.Names()
	f.Fuzz(func(t *testing.T, raw, vaRaw uint64, levelSel, isaSel uint8) {
		d, err := isa.Lookup(names[int(isaSel)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		level := 1 + int(levelSel)%3
		size := sizeAtLevel(level)
		va := addr.V(vaRaw & d.VAMask())

		// Property 1: decode -> encode -> decode is a fixed point.
		if tr, contig, ok := DecodePTEISA(d, raw, va, level); ok {
			re := EncodePTEISA(d, tr, level, contig)
			tr2, contig2, ok2 := DecodePTEISA(d, re, va, level)
			if !ok2 || tr2 != tr || contig2 != contig {
				t.Fatalf("%s level %d: decode(%#x) = %v contig=%v, re-decode(%#x) = %v contig=%v ok=%v",
					d.Name, level, raw, tr, contig, re, tr2, contig2, ok2)
			}
		}

		// Property 2: a well-formed translation survives encode/decode.
		contig := raw&1 != 0 && level == 1 && d.Contig != isa.ContigNone
		pa := addr.P(raw & ((uint64(1) << addr.PABits) - 1)).PageBase(size)
		if contig {
			// NAPOT requires the block naturally aligned and VA/PA
			// congruent within it; pin both to the block base.
			blockMask := uint64(d.ContigPages)*addr.Size4K - 1
			pa &^= addr.P(blockMask)
			va &^= addr.V(blockMask)
		}
		want := Translation{
			VA:       va.PageBase(size),
			PA:       pa,
			Size:     size,
			Perm:     addr.PermRead | addr.Perm(raw>>1)&(addr.PermWrite|addr.PermExec|addr.PermUser),
			Accessed: raw&(1<<4) != 0,
			Dirty:    raw&(1<<5) != 0,
		}
		enc := EncodePTEISA(d, want, level, contig)
		got, gotContig, ok := DecodePTEISA(d, enc, va, level)
		if !ok {
			t.Fatalf("%s level %d: decode rejected encode(%v) = %#x", d.Name, level, want, enc)
		}
		if contig && d.Contig != isa.ContigNone && !gotContig {
			t.Fatalf("%s level %d: contiguity encoding lost through %#x", d.Name, level, enc)
		}
		if got != want {
			t.Fatalf("%s level %d: round trip %v -> %#x -> %v", d.Name, level, want, enc, got)
		}
	})
}
