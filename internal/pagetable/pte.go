package pagetable

import "mixtlb/internal/addr"

// Packed 8-byte PTE format, following the x86-64 layout (Intel SDM Vol 3):
//
//	bit 0   P    present
//	bit 1   R/W  writable
//	bit 2   U/S  user accessible
//	bit 5   A    accessed
//	bit 6   D    dirty
//	bit 7   PS   page size (leaf at levels 2/3)
//	bits 12..47  physical frame number
//	bit 63  XD   execute disable
//
// The simulator keeps entries decoded for clarity; the packed form exists
// so entry layout claims (e.g. "translations are 8 bytes, 8 per cache
// line") rest on a concrete encoding, and round-trips are tested.
const (
	pteP  = 1 << 0
	pteRW = 1 << 1
	pteUS = 1 << 2
	pteA  = 1 << 5
	pteD  = 1 << 6
	ptePS = 1 << 7
	pteXD = 1 << 63

	ptePFNMask = ((uint64(1) << addr.PABits) - 1) &^ (addr.Size4K - 1)
)

// EncodePTE packs a translation into the 8-byte hardware format. level is
// the radix level the entry lives at (1, 2 or 3 for leaves).
func EncodePTE(t Translation, level int) uint64 {
	var v uint64 = pteP
	if t.Perm&addr.PermWrite != 0 {
		v |= pteRW
	}
	if t.Perm&addr.PermUser != 0 {
		v |= pteUS
	}
	if t.Perm&addr.PermExec == 0 {
		v |= pteXD
	}
	if t.Accessed {
		v |= pteA
	}
	if t.Dirty {
		v |= pteD
	}
	if level > 1 {
		v |= ptePS
	}
	v |= uint64(t.PA) & ptePFNMask
	return v
}

// DecodePTE unpacks an 8-byte PTE for the page at va and radix level.
// ok is false when the entry is not present or is malformed for the level
// (e.g. PS set at level 1).
func DecodePTE(raw uint64, va addr.V, level int) (Translation, bool) {
	if raw&pteP == 0 {
		return Translation{}, false
	}
	if level == 1 && raw&ptePS != 0 {
		return Translation{}, false
	}
	if level > 1 && raw&ptePS == 0 {
		return Translation{}, false // points to a table, not a leaf
	}
	size := sizeAtLevel(level)
	perm := addr.PermRead
	if raw&pteRW != 0 {
		perm |= addr.PermWrite
	}
	if raw&pteUS != 0 {
		perm |= addr.PermUser
	}
	if raw&pteXD == 0 {
		perm |= addr.PermExec
	}
	return Translation{
		VA:       va.PageBase(size),
		PA:       addr.P(raw & ptePFNMask).PageBase(size),
		Size:     size,
		Perm:     perm,
		Accessed: raw&pteA != 0,
		Dirty:    raw&pteD != 0,
	}, true
}
