// Package journal is the experiment engine's crash-safe checkpoint log.
// Each completed grid cell is appended as one self-describing JSONL
// record — experiment name, cell name, derived seed, and the cell's raw
// result rows with their exact Go types — wrapped in a CRC32 envelope so
// torn writes and bit rot are detected, never silently replayed. A
// header record pins the journal to a configuration fingerprint (scale
// parameters, seed, format version): resuming under a different
// configuration is refused rather than mixing incompatible results.
//
// The crash model is a killed process (SIGKILL, OOM, panic, deadline),
// not a failed disk: every Append is a single O_APPEND write of one
// complete line, so the only damage a kill can cause is a truncated
// final line. Open treats exactly that — an undecodable *tail* — as an
// expected crash artifact: it truncates the file back to the last valid
// record and reports it via Stats. Corruption anywhere before the tail
// is a hard, typed error; the journal never guesses.
//
// Row values round-trip with their concrete types (int vs uint64 vs
// float64 and so on), because experiments post-process raw cell rows
// positionally — a float64 that came back as a string would panic a
// sort, and a float rendered early would break the byte-identical-table
// guarantee the engine makes for resumed runs.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
)

// Version is the journal format version. Decoding refuses records from a
// different version: replaying rows across format changes is how silent
// corruption happens.
const Version = 1

// Record is one checkpointed cell result.
type Record struct {
	Experiment string
	Cell       string
	Seed       uint64 // the cell's derived seed (engine CellSeed)
	Rows       [][]interface{}
}

// Decode failure reasons carried by *CorruptError.
const (
	ReasonSyntax      = "syntax"      // line is not a well-formed envelope/payload
	ReasonChecksum    = "checksum"    // CRC32 mismatch between envelope and payload
	ReasonKind        = "kind"        // unknown record kind
	ReasonVersion     = "version"     // header from a different format version
	ReasonValue       = "value"       // a field or row value fails to parse
	ReasonHeader      = "header"      // first record is not a header
	ReasonFingerprint = "fingerprint" // header fingerprint does not match the run
	ReasonCorrupt     = "mid-file"    // undecodable record before the tail
)

// CorruptError is the typed decode failure: every malformed journal
// byte sequence maps onto one of these, never a panic and never a
// silently skipped record.
type CorruptError struct {
	Line   int    // 1-based line number in the journal ("0" when unknown)
	Reason string // one of the Reason* constants
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: line %d: %s record (%s)", e.Line, e.Reason, e.Detail)
}

// envelope is the wire shape of one line: the payload's raw JSON bytes
// plus the CRC32 (IEEE, hex) of exactly those bytes.
type envelope struct {
	CRC string          `json:"crc"`
	P   json.RawMessage `json:"p"`
}

// payload is the inner record. Kind selects which fields are meaningful.
// Seed travels as a decimal string because full 64-bit seeds do not
// survive JSON's float64 number representation.
type payload struct {
	Kind        string          `json:"kind"` // "header" | "cell"
	Version     int             `json:"version,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Experiment  string          `json:"experiment,omitempty"`
	Cell        string          `json:"cell,omitempty"`
	Seed        string          `json:"seed,omitempty"`
	Rows        [][]taggedValue `json:"rows,omitempty"`
}

// taggedValue carries one row value with its concrete Go type, so decode
// reconstructs exactly what the cell returned.
type taggedValue struct {
	T string `json:"t"`
	V string `json:"v"`
}

// encodeValue maps a row value onto its tagged wire form. Types outside
// the closed set fall back to the opaque tag "x" — their fmt.Sprintf("%v")
// rendering — which preserves table output byte-for-byte (tables render
// non-float values with %v) but not the dynamic type; floats, which
// tables format specially and experiments sort on, are always typed.
func encodeValue(v interface{}) taggedValue {
	switch x := v.(type) {
	case string:
		return taggedValue{T: "s", V: x}
	case bool:
		return taggedValue{T: "b", V: strconv.FormatBool(x)}
	case int:
		return taggedValue{T: "i", V: strconv.FormatInt(int64(x), 10)}
	case int8:
		return taggedValue{T: "i8", V: strconv.FormatInt(int64(x), 10)}
	case int16:
		return taggedValue{T: "i16", V: strconv.FormatInt(int64(x), 10)}
	case int32:
		return taggedValue{T: "i32", V: strconv.FormatInt(int64(x), 10)}
	case int64:
		return taggedValue{T: "i64", V: strconv.FormatInt(x, 10)}
	case uint:
		return taggedValue{T: "u", V: strconv.FormatUint(uint64(x), 10)}
	case uint8:
		return taggedValue{T: "u8", V: strconv.FormatUint(uint64(x), 10)}
	case uint16:
		return taggedValue{T: "u16", V: strconv.FormatUint(uint64(x), 10)}
	case uint32:
		return taggedValue{T: "u32", V: strconv.FormatUint(uint64(x), 10)}
	case uint64:
		return taggedValue{T: "u64", V: strconv.FormatUint(x, 10)}
	case float32:
		// Shortest round-trip decimal: ParseFloat returns the exact bits.
		return taggedValue{T: "f32", V: strconv.FormatFloat(float64(x), 'g', -1, 32)}
	case float64:
		return taggedValue{T: "f64", V: strconv.FormatFloat(x, 'g', -1, 64)}
	default:
		return taggedValue{T: "x", V: fmt.Sprintf("%v", v)}
	}
}

// decodeValue reconstructs a row value from its tagged form.
func decodeValue(tv taggedValue) (interface{}, error) {
	switch tv.T {
	case "s", "x":
		return tv.V, nil
	case "b":
		return strconv.ParseBool(tv.V)
	case "i", "i8", "i16", "i32", "i64":
		bits := map[string]int{"i": 0, "i8": 8, "i16": 16, "i32": 32, "i64": 64}[tv.T]
		n, err := strconv.ParseInt(tv.V, 10, 64)
		if err != nil {
			return nil, err
		}
		switch bits {
		case 8:
			return int8(n), checkIntRange(n, 8)
		case 16:
			return int16(n), checkIntRange(n, 16)
		case 32:
			return int32(n), checkIntRange(n, 32)
		case 64:
			return n, nil
		default:
			return int(n), nil
		}
	case "u", "u8", "u16", "u32", "u64":
		n, err := strconv.ParseUint(tv.V, 10, 64)
		if err != nil {
			return nil, err
		}
		switch tv.T {
		case "u8":
			return uint8(n), checkUintRange(n, 8)
		case "u16":
			return uint16(n), checkUintRange(n, 16)
		case "u32":
			return uint32(n), checkUintRange(n, 32)
		case "u64":
			return n, nil
		default:
			return uint(n), nil
		}
	case "f32":
		f, err := strconv.ParseFloat(tv.V, 32)
		return float32(f), err
	case "f64":
		return strconv.ParseFloat(tv.V, 64)
	default:
		return nil, fmt.Errorf("unknown value tag %q", tv.T)
	}
}

func checkIntRange(n int64, bits int) error {
	if n>>(bits-1) != 0 && n>>(bits-1) != -1 {
		return fmt.Errorf("value %d overflows int%d", n, bits)
	}
	return nil
}

func checkUintRange(n uint64, bits int) error {
	if n>>bits != 0 {
		return fmt.Errorf("value %d overflows uint%d", n, bits)
	}
	return nil
}

// Entry is one decoded journal line: either the header (Fingerprint set)
// or a cell record.
type Entry struct {
	Header      bool
	Fingerprint string
	Record      Record
}

// encodeLine renders one payload as a complete journal line (with
// trailing newline). The CRC covers the payload bytes exactly as they
// appear on the wire.
func encodeLine(p payload) ([]byte, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	sum := crc32.ChecksumIEEE(raw)
	var b bytes.Buffer
	b.Grow(len(raw) + 32)
	fmt.Fprintf(&b, `{"crc":"%08x","p":%s}`, sum, raw)
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// EncodeHeader renders the journal's header line for a fingerprint.
func EncodeHeader(fingerprint string) ([]byte, error) {
	return encodeLine(payload{Kind: "header", Version: Version, Fingerprint: fingerprint})
}

// EncodeRecord renders one cell record as a journal line.
func EncodeRecord(rec Record) ([]byte, error) {
	p := payload{
		Kind:       "cell",
		Experiment: rec.Experiment,
		Cell:       rec.Cell,
		Seed:       strconv.FormatUint(rec.Seed, 10),
		Rows:       make([][]taggedValue, len(rec.Rows)),
	}
	for i, row := range rec.Rows {
		tr := make([]taggedValue, len(row))
		for j, v := range row {
			tr[j] = encodeValue(v)
		}
		p.Rows[i] = tr
	}
	return encodeLine(p)
}

// Decode parses one journal line (without its trailing newline). Every
// failure is a *CorruptError; Decode never panics on any input.
func Decode(line []byte) (Entry, error) {
	corrupt := func(reason, detail string) (Entry, error) {
		return Entry{}, &CorruptError{Line: 1, Reason: reason, Detail: detail}
	}
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return corrupt(ReasonSyntax, err.Error())
	}
	if dec.More() {
		return corrupt(ReasonSyntax, "trailing data after envelope")
	}
	if len(env.P) == 0 || env.CRC == "" {
		return corrupt(ReasonSyntax, "missing crc or payload")
	}
	sum, err := strconv.ParseUint(env.CRC, 16, 32)
	if err != nil {
		return corrupt(ReasonSyntax, "bad crc field: "+err.Error())
	}
	if uint32(sum) != crc32.ChecksumIEEE(env.P) {
		return corrupt(ReasonChecksum,
			fmt.Sprintf("recorded %s, computed %08x", env.CRC, crc32.ChecksumIEEE(env.P)))
	}
	var p payload
	pdec := json.NewDecoder(bytes.NewReader(env.P))
	pdec.DisallowUnknownFields()
	if err := pdec.Decode(&p); err != nil {
		return corrupt(ReasonSyntax, "payload: "+err.Error())
	}
	switch p.Kind {
	case "header":
		if p.Version != Version {
			return corrupt(ReasonVersion,
				fmt.Sprintf("journal version %d, this build reads %d", p.Version, Version))
		}
		if p.Fingerprint == "" {
			return corrupt(ReasonValue, "header without fingerprint")
		}
		return Entry{Header: true, Fingerprint: p.Fingerprint}, nil
	case "cell":
		if p.Experiment == "" || p.Cell == "" {
			return corrupt(ReasonValue, "cell record without identity")
		}
		seed, err := strconv.ParseUint(p.Seed, 10, 64)
		if err != nil {
			return corrupt(ReasonValue, "bad seed: "+err.Error())
		}
		rec := Record{Experiment: p.Experiment, Cell: p.Cell, Seed: seed,
			Rows: make([][]interface{}, len(p.Rows))}
		for i, row := range p.Rows {
			vals := make([]interface{}, len(row))
			for j, tv := range row {
				v, err := decodeValue(tv)
				if err != nil {
					return corrupt(ReasonValue,
						fmt.Sprintf("row %d col %d: %v", i, j, err))
				}
				vals[j] = v
			}
			rec.Rows[i] = vals
		}
		return Entry{Record: rec}, nil
	default:
		return corrupt(ReasonKind, fmt.Sprintf("unknown kind %q", p.Kind))
	}
}

// Parsed is the result of decoding a whole journal image.
type Parsed struct {
	Fingerprint string
	Records     []Record
	// ValidBytes is the offset just past the last fully-valid record; a
	// resuming writer truncates the file here before appending.
	ValidBytes int64
	// DroppedTail reports that trailing bytes after ValidBytes were
	// undecodable and discarded — the expected artifact of a mid-write
	// kill. (Undecodable bytes *before* the tail are an error instead.)
	DroppedTail bool
}

// Parse decodes a complete journal image. The first line must be a
// header whose fingerprint matches; fingerprint may be empty to accept
// any header (inspection tools). Only the final line may be corrupt —
// that is the crash artifact Parse exists to absorb; anything else
// returns a typed *CorruptError.
func Parse(data []byte, fingerprint string) (*Parsed, error) {
	out := &Parsed{}
	lineNo := 0
	off := 0
	for off < len(data) {
		lineNo++
		end := bytes.IndexByte(data[off:], '\n')
		if end < 0 {
			// Final line with no terminating newline: a torn write, even if
			// the bytes happen to decode — appending after an unterminated
			// line would corrupt it, so only complete lines count as valid.
			line := data[off:]
			if lineNo > 1 || bytes.HasPrefix(line, []byte(`{"crc":"`)) {
				out.DroppedTail = true
				out.ValidBytes = int64(off)
				return out, nil
			}
			// The sole line does not even look like a journal envelope:
			// refuse rather than letting Open truncate whatever file the
			// caller mistakenly pointed us at.
			if _, err := Decode(line); err != nil {
				if ce, ok := err.(*CorruptError); ok {
					ce.Line = 1
				}
				return nil, err
			}
			return nil, &CorruptError{Line: 1, Reason: ReasonSyntax,
				Detail: "unterminated first line"}
		}
		line, next := data[off:off+end], off+end+1
		last := next == len(data)
		entry, err := Decode(line)
		if err != nil {
			if ce, ok := err.(*CorruptError); ok {
				ce.Line = lineNo
				// Fingerprint/version disagreements on an intact header are
				// configuration errors, not crash artifacts: refuse even at
				// the tail rather than deleting someone else's journal.
				if last && lineNo > 1 && ce.Reason != ReasonVersion {
					out.DroppedTail = true
					out.ValidBytes = int64(off)
					return out, nil
				}
				if lineNo == 1 && last && bytes.HasPrefix(line, []byte(`{"crc":"`)) &&
					(ce.Reason == ReasonSyntax || ce.Reason == ReasonChecksum) {
					// Torn header write (the line starts like an envelope but
					// never finished): nothing valid was ever recorded. A
					// first line that does not even look like a journal is a
					// hard error instead — truncating it would destroy
					// whatever file the caller mistakenly pointed us at.
					out.DroppedTail = true
					out.ValidBytes = 0
					return out, nil
				}
				if !last {
					ce.Reason = ReasonCorrupt + "/" + ce.Reason
				}
			}
			return nil, err
		}
		if lineNo == 1 {
			if !entry.Header {
				return nil, &CorruptError{Line: 1, Reason: ReasonHeader,
					Detail: "first record is not a header"}
			}
			if fingerprint != "" && entry.Fingerprint != fingerprint {
				return nil, &CorruptError{Line: 1, Reason: ReasonFingerprint,
					Detail: fmt.Sprintf("journal written by %q, this run is %q",
						entry.Fingerprint, fingerprint)}
			}
			out.Fingerprint = entry.Fingerprint
		} else {
			if entry.Header {
				return nil, &CorruptError{Line: lineNo, Reason: ReasonKind,
					Detail: "header record after line 1"}
			}
			out.Records = append(out.Records, entry.Record)
		}
		out.ValidBytes = int64(next)
		off = next
	}
	if lineNo == 0 {
		return nil, &CorruptError{Line: 0, Reason: ReasonHeader, Detail: "empty journal"}
	}
	return out, nil
}

// Stats summarizes what Open recovered from an existing journal.
type Stats struct {
	Replayed    int  // records loaded for replay
	DroppedTail bool // a torn final record was discarded
	Appended    int  // records appended by this process
}

// Journal is a live checkpoint log: a replay index of the records
// recovered at Open plus an append-mode file handle. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Journal
// checkpoints nothing and replays nothing — the disabled state).
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	replay   map[string]Record
	dropped  bool
	appended int
}

func cellKey(experiment, cell string) string { return experiment + "\x00" + cell }

// Create starts a fresh journal at path (truncating any existing file)
// pinned to the given fingerprint.
func Create(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	hdr, err := EncodeHeader(fingerprint)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	return &Journal{f: f, path: path, replay: map[string]Record{}}, nil
}

// Open resumes an existing journal at path: it decodes every record,
// truncates a torn tail if the last line was cut by a crash, and reopens
// the file for appending. A missing or empty file starts fresh (Create
// semantics). A fingerprint mismatch or mid-file corruption is a typed
// error — the journal belongs to a different configuration or has been
// damaged, and replaying it would silently produce wrong tables.
func Open(path, fingerprint string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Create(path, fingerprint)
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(data) == 0 {
		return Create(path, fingerprint)
	}
	parsed, err := Parse(data, fingerprint)
	if err != nil {
		return nil, err
	}
	if parsed.ValidBytes == 0 {
		// Torn header: nothing recoverable, start over.
		j, err := Create(path, fingerprint)
		if err != nil {
			return nil, err
		}
		j.dropped = true
		return j, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if parsed.DroppedTail {
		if err := f.Truncate(parsed.ValidBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(parsed.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, replay: make(map[string]Record, len(parsed.Records)),
		dropped: parsed.DroppedTail}
	for _, rec := range parsed.Records {
		j.replay[cellKey(rec.Experiment, rec.Cell)] = rec
	}
	return j, nil
}

// Lookup returns the replayable record for a cell, if one was recovered.
func (j *Journal) Lookup(experiment, cell string) (Record, bool) {
	if j == nil {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.replay[cellKey(experiment, cell)]
	return rec, ok
}

// Append checkpoints one completed cell: a single write of one complete
// line, flushed to the OS before return, so a kill immediately after
// leaves the record durable against process death.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	line, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: append after Close")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.replay[cellKey(rec.Experiment, rec.Cell)] = rec
	j.appended++
	return nil
}

// Stats reports what this journal recovered and recorded so far.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Replayed: len(j.replay) - j.appended, DroppedTail: j.dropped, Appended: j.appended}
}

// Path returns the journal's file path ("" on nil).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
