package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecord(cell string) Record {
	return Record{
		Experiment: "fig12",
		Cell:       cell,
		Seed:       0xdeadbeefcafef00d, // deliberately > 2^53: must survive JSON
		Rows: [][]interface{}{
			{"mcf", 42, uint64(math.MaxUint64), 3.14159265358979, true},
			{int64(-7), uint32(9), float32(0.25), "x,y\nz"},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	t.Parallel()
	rec := testRecord("hog0/cpu-spec")
	line, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := Decode(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if entry.Header {
		t.Fatal("cell record decoded as header")
	}
	if !reflect.DeepEqual(entry.Record, rec) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", entry.Record, rec)
	}
}

// TestValueTypesSurvive pins the property the byte-identical-resume
// guarantee rests on: every supported dynamic type comes back exactly,
// including edge values.
func TestValueTypesSurvive(t *testing.T) {
	t.Parallel()
	vals := []interface{}{
		"", "plain", "with \"quotes\" and \\ and \n newline",
		true, false,
		0, -1, math.MaxInt64, math.MinInt64,
		int8(-128), int16(32767), int32(-2147483648), int64(math.MinInt64),
		uint(0), uint8(255), uint16(65535), uint32(4294967295), uint64(math.MaxUint64),
		float32(1.5), float32(math.Pi),
		0.1, 2.0 / 3.0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	rec := Record{Experiment: "e", Cell: "c", Seed: 1, Rows: [][]interface{}{vals}}
	line, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := Decode(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	got := entry.Record.Rows[0]
	for i, want := range vals {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("value %d: got %#v (%T), want %#v (%T)", i, got[i], got[i], want, want)
		}
	}
	// NaN needs its own check (NaN != NaN).
	nrec := Record{Experiment: "e", Cell: "c", Seed: 1, Rows: [][]interface{}{{math.NaN()}}}
	nline, _ := EncodeRecord(nrec)
	nentry, err := Decode(bytes.TrimSuffix(nline, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := nentry.Record.Rows[0][0].(float64); !ok || !math.IsNaN(f) {
		t.Errorf("NaN did not survive: %#v", nentry.Record.Rows[0][0])
	}
	// Unsupported types degrade to their %v string (opaque tag), loudly
	// typed as string rather than silently wrong.
	orec := Record{Experiment: "e", Cell: "c", Seed: 1,
		Rows: [][]interface{}{{struct{ A int }{7}}}}
	oline, err := EncodeRecord(orec)
	if err != nil {
		t.Fatal(err)
	}
	oentry, err := Decode(bytes.TrimSuffix(oline, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got := oentry.Record.Rows[0][0]; got != fmt.Sprintf("%v", struct{ A int }{7}) {
		t.Errorf("opaque fallback = %#v", got)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	t.Parallel()
	good, _ := EncodeRecord(testRecord("c"))
	good = bytes.TrimSuffix(good, []byte("\n"))
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-10] ^= 0x40 // corrupt a payload byte: CRC must catch it

	cases := []struct {
		name   string
		line   []byte
		reason string
	}{
		{"empty", []byte(""), ReasonSyntax},
		{"not-json", []byte("== mixtlb table =="), ReasonSyntax},
		{"truncated", good[:len(good)/2], ReasonSyntax},
		{"bit-flip", flipped, ReasonChecksum},
		{"bad-crc-field", []byte(`{"crc":"zzzz","p":{"kind":"cell"}}`), ReasonSyntax},
		{"bad-kind", mustLine(t, payload{Kind: "wat"}), ReasonKind},
		{"bad-seed", mustLine(t, payload{Kind: "cell", Experiment: "e", Cell: "c", Seed: "12x"}), ReasonValue},
		{"no-identity", mustLine(t, payload{Kind: "cell", Seed: "1"}), ReasonValue},
		{"bad-version", mustLine(t, payload{Kind: "header", Version: Version + 1, Fingerprint: "f"}), ReasonVersion},
		{"bad-value-tag", mustLine(t, payload{Kind: "cell", Experiment: "e", Cell: "c", Seed: "1",
			Rows: [][]taggedValue{{{T: "q", V: "1"}}}}), ReasonValue},
		{"bad-value-num", mustLine(t, payload{Kind: "cell", Experiment: "e", Cell: "c", Seed: "1",
			Rows: [][]taggedValue{{{T: "u64", V: "-3"}}}}), ReasonValue},
	}
	for _, tc := range cases {
		_, err := Decode(tc.line)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want *CorruptError", tc.name, err)
			continue
		}
		if ce.Reason != tc.reason {
			t.Errorf("%s: reason = %q, want %q (%v)", tc.name, ce.Reason, tc.reason, ce)
		}
	}
}

func mustLine(t *testing.T, p payload) []byte {
	t.Helper()
	line, err := encodeLine(p)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(line, []byte("\n"))
}

func journalImage(t *testing.T, fingerprint string, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr, err := EncodeHeader(fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(hdr)
	for _, rec := range recs {
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestParseTornTail(t *testing.T) {
	t.Parallel()
	full := journalImage(t, "fp", testRecord("a"), testRecord("b"))
	// Chop mid-way through the final record: parse must keep record "a"
	// and report a dropped tail with the right truncation offset.
	lines := bytes.SplitAfter(full, []byte("\n"))
	validEnd := len(lines[0]) + len(lines[1])
	for cut := validEnd + 1; cut < len(full); cut += 13 {
		p, err := Parse(full[:cut], "fp")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !p.DroppedTail || len(p.Records) != 1 || p.Records[0].Cell != "a" {
			t.Fatalf("cut %d: parsed %+v", cut, p)
		}
		if p.ValidBytes != int64(validEnd) {
			t.Fatalf("cut %d: ValidBytes = %d, want %d", cut, p.ValidBytes, validEnd)
		}
	}
	// The intact image parses clean.
	p, err := Parse(full, "fp")
	if err != nil || p.DroppedTail || len(p.Records) != 2 {
		t.Fatalf("intact parse: %+v, %v", p, err)
	}
}

func TestParseMidFileCorruptionIsFatal(t *testing.T) {
	t.Parallel()
	full := journalImage(t, "fp", testRecord("a"), testRecord("b"))
	lines := bytes.SplitAfter(full, []byte("\n"))
	// Corrupt record "a" (line 2) while an intact "b" follows: that is
	// not a crash artifact, and silently skipping it would drop a cell.
	bad := append([]byte(nil), lines[0]...)
	corrupted := append([]byte(nil), lines[1]...)
	corrupted[10] ^= 0xff
	bad = append(bad, corrupted...)
	bad = append(bad, lines[2]...)
	_, err := Parse(bad, "fp")
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Line != 2 {
		t.Fatalf("err = %v, want mid-file *CorruptError at line 2", err)
	}
}

func TestParseFingerprintMismatch(t *testing.T) {
	t.Parallel()
	img := journalImage(t, "config-A", testRecord("a"))
	_, err := Parse(img, "config-B")
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != ReasonFingerprint {
		t.Fatalf("err = %v, want fingerprint *CorruptError", err)
	}
	// Empty expected fingerprint accepts anything (inspection mode).
	if p, err := Parse(img, ""); err != nil || p.Fingerprint != "config-A" {
		t.Fatalf("inspection parse: %+v, %v", p, err)
	}
	// Headerless data is refused, not truncated.
	recLine, _ := EncodeRecord(testRecord("a"))
	if _, err := Parse(recLine, "fp"); err == nil {
		t.Fatal("headerless journal accepted")
	}
	// A non-journal file must never be mistaken for a torn header.
	if _, err := Parse([]byte("just some text file"), "fp"); err == nil {
		t.Fatal("arbitrary text accepted as torn journal")
	}
}

func TestJournalCreateAppendOpen(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("b")); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Appended != 2 || st.Replayed != 0 {
		t.Errorf("writer stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: both records replayable, file still appendable.
	j2, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := j2.Lookup("fig12", "a"); !ok || !reflect.DeepEqual(rec, testRecord("a")) {
		t.Errorf("lookup a = %+v, %v", rec, ok)
	}
	if _, ok := j2.Lookup("fig12", "nope"); ok {
		t.Error("phantom record")
	}
	if st := j2.Stats(); st.Replayed != 2 || st.DroppedTail {
		t.Errorf("resume stats = %+v", st)
	}
	if err := j2.Append(testRecord("c")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if st := j3.Stats(); st.Replayed != 3 {
		t.Errorf("after second resume: %+v", st)
	}
	j3.Close()

	// Wrong fingerprint refuses to resume.
	if _, err := Open(path, "other"); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
}

func TestJournalOpenTruncatesTornTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	img := journalImage(t, "fp", testRecord("a"), testRecord("b"))
	// Simulate a crash 7 bytes into the final record's write.
	lines := bytes.SplitAfter(img, []byte("\n"))
	torn := img[:len(lines[0])+len(lines[1])+7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Replayed != 1 || !st.DroppedTail {
		t.Fatalf("stats = %+v", st)
	}
	// Appending after truncation must produce a fully-valid journal.
	if err := j.Append(testRecord("b")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data, "fp")
	if err != nil || p.DroppedTail || len(p.Records) != 2 {
		t.Fatalf("post-recovery journal invalid: %+v, %v", p, err)
	}
}

func TestNilJournalIsDisabled(t *testing.T) {
	t.Parallel()
	var j *Journal
	if err := j.Append(testRecord("a")); err != nil {
		t.Error(err)
	}
	if _, ok := j.Lookup("e", "c"); ok {
		t.Error("nil journal found a record")
	}
	if st := j.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if j.Path() != "" {
		t.Error("nil path")
	}
}
