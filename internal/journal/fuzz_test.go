package journal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes to the single-line decoder and
// the whole-image parser. The contract under fuzz: corrupt, truncated,
// or checksum-mismatched input yields a typed *CorruptError — never a
// panic and never a silently skipped record. When Parse does accept an
// image, its recovery invariants must hold: ValidBytes marks a prefix
// that re-parses cleanly with the same records, so Open's truncate-and-
// append repair can never lose or invent cells.
func FuzzJournalDecode(f *testing.F) {
	hdr, _ := EncodeHeader("fuzz-fingerprint")
	rec, _ := EncodeRecord(Record{
		Experiment: "fig12",
		Cell:       "hog0/cpu-spec",
		Seed:       0xdeadbeefcafef00d,
		Rows:       [][]interface{}{{"mcf", 42, uint64(1) << 63, 3.14, true}},
	})
	full := append(append([]byte{}, hdr...), rec...)

	f.Add([]byte{})
	f.Add(hdr)
	f.Add(rec)
	f.Add(full)
	f.Add(full[:len(full)-9]) // torn tail
	f.Add([]byte(`{"crc":"00000000","p":{"kind":"cell"}}`))
	f.Add([]byte(`{"crc":"`))
	f.Add([]byte("not a journal at all\n"))
	f.Add([]byte(`{"crc":"deadbeef","p":{"kind":"header","version":99,"fingerprint":"x"}}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-line decode: typed error or success, nothing else.
		line := data
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		if _, err := Decode(line); err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode returned untyped error %T: %v", err, err)
			}
		}

		// Whole-image parse with the recovery invariants.
		p, err := Parse(data, "")
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Parse returned untyped error %T: %v", err, err)
			}
			return
		}
		if p.ValidBytes < 0 || p.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d out of range [0,%d]", p.ValidBytes, len(data))
		}
		if !p.DroppedTail && p.ValidBytes != int64(len(data)) {
			t.Fatalf("clean parse but ValidBytes %d != len %d", p.ValidBytes, len(data))
		}
		if p.ValidBytes == 0 {
			return // torn header: nothing to re-parse
		}
		again, err := Parse(data[:p.ValidBytes], "")
		if err != nil {
			t.Fatalf("valid prefix failed to re-parse: %v", err)
		}
		if again.DroppedTail {
			t.Fatal("valid prefix re-parsed with a dropped tail")
		}
		if again.Fingerprint != p.Fingerprint || len(again.Records) != len(p.Records) {
			t.Fatalf("re-parse drifted: %d records (%q) vs %d (%q)",
				len(again.Records), again.Fingerprint, len(p.Records), p.Fingerprint)
		}
	})
}
