package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeGeometry(t *testing.T) {
	cases := []struct {
		s      PageSize
		shift  uint
		bytes  uint64
		frames uint64
		name   string
	}{
		{Page4K, 12, 4 << 10, 1, "4KB"},
		{Page2M, 21, 2 << 20, 512, "2MB"},
		{Page1G, 30, 1 << 30, 262144, "1GB"},
	}
	for _, c := range cases {
		if got := c.s.Shift(); got != c.shift {
			t.Errorf("%v.Shift() = %d, want %d", c.s, got, c.shift)
		}
		if got := c.s.Bytes(); got != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.bytes)
		}
		if got := c.s.Frames(); got != c.frames {
			t.Errorf("%v.Frames() = %d, want %d", c.s, got, c.frames)
		}
		if got := c.s.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.name)
		}
		if !c.s.Valid() {
			t.Errorf("%v.Valid() = false", c.s)
		}
	}
	if PageSize(3).Valid() {
		t.Error("PageSize(3).Valid() = true, want false")
	}
}

func TestInvalidPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shift on invalid page size did not panic")
		}
	}()
	_ = PageSize(7).Shift()
}

func TestPageNumAndOffsetRoundTrip(t *testing.T) {
	f := func(raw uint64, sizeSel uint8) bool {
		va := V(raw & (1<<VABits - 1))
		s := Sizes()[int(sizeSel)%NumPageSizes]
		rebuilt := V(va.PageNum(s)<<s.Shift() | va.Offset(s))
		return rebuilt == va && va.PageBase(s)+V(va.Offset(s)) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhysRoundTrip(t *testing.T) {
	f := func(raw uint64, sizeSel uint8) bool {
		pa := P(raw & (1<<PABits - 1))
		s := Sizes()[int(sizeSel)%NumPageSizes]
		return P(pa.PageNum(s)<<s.Shift()|pa.Offset(s)) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVPNExamplesFromPaper(t *testing.T) {
	// Figure 2: superpage B at VA 0x00400000 = 4KB frame 0x00400.
	b := V(0x00400000)
	if got := b.VPN4K(); got != 0x400 {
		t.Errorf("B VPN4K = %#x, want 0x400", got)
	}
	if got := b.PageNum(Page2M); got != 2 {
		t.Errorf("B 2MB page number = %d, want 2", got)
	}
}

func TestSetIndexSmallPage(t *testing.T) {
	// Sec 1: for split 16-set TLBs the index bits are 15-12 (4KB),
	// 24-21 (2MB) and 33-30 (1GB).
	va := V(0b1010_1111_0110_1100_1010_0101_1100_0000_0000)
	if got, want := SetIndex(va, Page4K, 16), int((uint64(va)>>12)&0xf); got != want {
		t.Errorf("4KB index = %d, want %d", got, want)
	}
	if got, want := SetIndex(va, Page2M, 16), int((uint64(va)>>21)&0xf); got != want {
		t.Errorf("2MB index = %d, want %d", got, want)
	}
	if got, want := SetIndex(va, Page1G, 16), int((uint64(va)>>30)&0xf); got != want {
		t.Errorf("1GB index = %d, want %d", got, want)
	}
}

func TestSetIndexWithinSuperpageOffset(t *testing.T) {
	// The MIX property: with small-page indexing, consecutive 4KB regions
	// of one superpage walk through all sets (mirroring, Fig 3).
	const sets = 16
	base := V(0x40000000) // 1GB-aligned, also 2MB-aligned
	seen := make(map[int]bool)
	for i := 0; i < FramesPer2M; i++ {
		seen[SetIndex(base+V(i*Size4K), Page4K, sets)] = true
	}
	if len(seen) != sets {
		t.Errorf("2MB page touched %d sets, want %d", len(seen), sets)
	}
}

func TestMirrorID(t *testing.T) {
	// Fig 7: for a 2-set TLB and 2MB pages, the mirror ID is bits 20-13.
	va := V(0x00400000 | 0x1ABCD) // inside superpage B
	want := (uint64(va) >> 13) & 0xff
	if got := MirrorID(va, Page2M, 2); got != want {
		t.Errorf("MirrorID = %#x, want %#x", got, want)
	}
	// All 4KB regions of a superpage have distinct (set, mirrorID) pairs.
	type key struct {
		set int
		mid uint64
	}
	seen := make(map[key]bool)
	for i := 0; i < FramesPer2M; i++ {
		v := V(0x00400000 + i*Size4K)
		k := key{SetIndex(v, Page4K, 2), MirrorID(v, Page2M, 2)}
		if seen[k] {
			t.Fatalf("duplicate (set, mirror) pair %v", k)
		}
		seen[k] = true
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 63; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
	if got := Log2(640); got != 9 {
		t.Errorf("Log2(640) = %d, want 9", got)
	}
}

func TestLog2ZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestIsPow2(t *testing.T) {
	if IsPow2(0) || IsPow2(3) || IsPow2(640) {
		t.Error("IsPow2 accepted a non-power-of-two")
	}
	if !IsPow2(1) || !IsPow2(2) || !IsPow2(1<<40) {
		t.Error("IsPow2 rejected a power of two")
	}
}

func TestAlignment(t *testing.T) {
	if got := AlignedDown(0x1234567, Size2M); got != 0x1200000 {
		t.Errorf("AlignedDown = %#x", got)
	}
	if got := AlignedUp(0x1234567, Size2M); got != 0x1400000 {
		t.Errorf("AlignedUp = %#x", got)
	}
	if got := AlignedUp(0x1200000, Size2M); got != 0x1200000 {
		t.Errorf("AlignedUp of aligned value = %#x", got)
	}
}

func TestAlignmentProperties(t *testing.T) {
	f := func(v uint64, shiftSel uint8) bool {
		align := uint64(1) << (shiftSel % 31)
		d, u := AlignedDown(v, align), AlignedUp(v, align)
		if d%align != 0 || d > v {
			return false
		}
		if v <= ^uint64(0)-align { // avoid overflow in the up case
			return u%align == 0 && u >= v && u-d < 2*align
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermWrite).String(); got != "rw--" {
		t.Errorf("PermRW = %q", got)
	}
	if got := Perm(0).String(); got != "----" {
		t.Errorf("empty perm = %q", got)
	}
	if got := (PermRead | PermExec | PermUser).String(); got != "r-xu" {
		t.Errorf("rxu = %q", got)
	}
}

func TestAddressStrings(t *testing.T) {
	if got := V(0x400000).String(); got != "v:0x400000" {
		t.Errorf("V.String() = %q", got)
	}
	if got := P(0x1000).String(); got != "p:0x1000" {
		t.Errorf("P.String() = %q", got)
	}
}
