// Package addr provides x86-64 address arithmetic shared by every layer of
// the simulator: page sizes, virtual/physical page numbers, set-index
// extraction, and alignment helpers.
//
// The model follows the paper's conventions: 48-bit virtual and physical
// addresses, 4KB / 2MB / 1GB pages, and set-associative structures indexed
// by the low-order bits of the page number.
package addr

import "fmt"

// PageSize identifies one of the three x86-64 page sizes.
type PageSize uint8

const (
	// Page4K is a 4KB base page.
	Page4K PageSize = iota
	// Page2M is a 2MB superpage.
	Page2M
	// Page1G is a 1GB superpage.
	Page1G
	numPageSizes
)

// NumPageSizes is the number of supported page sizes.
const NumPageSizes = int(numPageSizes)

// Address-space geometry.
const (
	// VABits is the number of implemented virtual address bits.
	VABits = 48
	// PABits is the number of implemented physical address bits (the paper
	// assumes 48-bit physical addresses for exposition; so do we).
	PABits = 48

	// Shift4K, Shift2M and Shift1G are the page-offset widths.
	Shift4K = 12
	Shift2M = 21
	Shift1G = 30

	// Size4K, Size2M and Size1G are the page sizes in bytes.
	Size4K = 1 << Shift4K
	Size2M = 1 << Shift2M
	Size1G = 1 << Shift1G

	// FramesPer2M and FramesPer1G are the number of constituent 4KB frames
	// in each superpage size (the paper's N: 512 and 262144).
	FramesPer2M = Size2M / Size4K
	FramesPer1G = Size1G / Size4K

	// PTEsPerCacheLine is the number of 8-byte page-table entries in one
	// 64-byte cache line: the window the MIX coalescing logic scans.
	PTEsPerCacheLine = 8

	// CacheLineSize is the cache line size in bytes.
	CacheLineSize = 64
)

// String returns the conventional name of the page size.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// Shift returns the page-offset width of s.
func (s PageSize) Shift() uint {
	switch s {
	case Page4K:
		return Shift4K
	case Page2M:
		return Shift2M
	case Page1G:
		return Shift1G
	}
	panic("addr: invalid page size")
}

// Bytes returns the size of s in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// Frames returns the number of constituent 4KB frames of s.
func (s PageSize) Frames() uint64 { return s.Bytes() / Size4K }

// Valid reports whether s is one of the three architectural page sizes.
func (s PageSize) Valid() bool { return s < numPageSizes }

// Sizes lists the page sizes from smallest to largest.
func Sizes() [NumPageSizes]PageSize { return [...]PageSize{Page4K, Page2M, Page1G} }

// V is a virtual address.
type V uint64

// P is a physical address.
type P uint64

// PageNum returns the page number of va for the given page size.
func (va V) PageNum(s PageSize) uint64 { return uint64(va) >> s.Shift() }

// PageBase returns the address of the start of va's enclosing page of size s.
func (va V) PageBase(s PageSize) V { return va &^ V(s.Bytes()-1) }

// Offset returns the offset of va within its enclosing page of size s.
func (va V) Offset(s PageSize) uint64 { return uint64(va) & (s.Bytes() - 1) }

// VPN4K returns the 4KB virtual page number.
func (va V) VPN4K() uint64 { return uint64(va) >> Shift4K }

// String formats the address as the 4KB frame-number hex used in the paper.
func (va V) String() string { return fmt.Sprintf("v:%#x", uint64(va)) }

// PageNum returns the frame number of pa for the given page size.
func (pa P) PageNum(s PageSize) uint64 { return uint64(pa) >> s.Shift() }

// PageBase returns the start of pa's enclosing frame of size s.
func (pa P) PageBase(s PageSize) P { return pa &^ P(s.Bytes()-1) }

// Offset returns the offset of pa within its enclosing frame of size s.
func (pa P) Offset(s PageSize) uint64 { return uint64(pa) & (s.Bytes() - 1) }

// PFN4K returns the 4KB physical frame number.
func (pa P) PFN4K() uint64 { return uint64(pa) >> Shift4K }

// String formats the physical address.
func (pa P) String() string { return fmt.Sprintf("p:%#x", uint64(pa)) }

// Log2 returns floor(log2(n)). It panics if n is zero.
func Log2(n uint64) uint {
	if n == 0 {
		panic("addr: Log2(0)")
	}
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// IsPow2 reports whether n is a power of two (and nonzero).
func IsPow2(n uint64) bool { return n != 0 && n&(n-1) == 0 }

// SetIndex extracts a set index for a structure with `sets` sets, indexing
// by the page number of `indexSize` pages — the operation at the heart of
// the chicken-and-egg problem in Sec 1: you need the page size to know
// which bits select the set. MIX TLBs always pass Page4K here.
// sets must be a power of two.
func SetIndex(va V, indexSize PageSize, sets int) int {
	return int(va.PageNum(indexSize) & uint64(sets-1))
}

// MirrorID returns the identity of the 4KB region within a superpage of
// size s that va falls in, excluding the set-index bits of a TLB with
// `sets` sets (Fig 7: bits 20-13 for a 2-set TLB and 2MB pages).
func MirrorID(va V, s PageSize, sets int) uint64 {
	return (uint64(va) >> (Shift4K + Log2(uint64(sets)))) & ((s.Bytes()/Size4K)/uint64(sets) - 1)
}

// AlignedDown rounds v down to a multiple of align (a power of two).
func AlignedDown(v, align uint64) uint64 { return v &^ (align - 1) }

// AlignedUp rounds v up to a multiple of align (a power of two).
func AlignedUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// Perm is a page-protection permission set. MIX TLBs only coalesce
// superpages whose permissions match exactly (Sec 4.4).
type Perm uint8

const (
	// PermRead allows loads.
	PermRead Perm = 1 << iota
	// PermWrite allows stores.
	PermWrite
	// PermExec allows instruction fetch.
	PermExec
	// PermUser allows user-mode access.
	PermUser
)

// PermRW is the common read-write data permission.
const PermRW = PermRead | PermWrite

// String renders the permission set as "rwxu" flags.
func (p Perm) String() string {
	b := []byte("----")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	if p&PermUser != 0 {
		b[3] = 'u'
	}
	return string(b)
}
