package addr

import (
	"testing"

	"mixtlb/internal/isa"
)

// TestDefaultSpaceMatchesPackage pins the golden-safety contract: every
// Space method bound to the default descriptor computes exactly what the
// package-level x86-64 functions compute.
func TestDefaultSpaceMatchesPackage(t *testing.T) {
	sp := DefaultSpace()
	vas := []V{0, 0x1000, 0x1fffff, 0x200000, 0x7fffdeadb000, (1 << 48) - 1}
	setCounts := []int{1, 2, 16, 64, 256}
	for _, s := range Sizes() {
		if sp.Shift(s) != s.Shift() || sp.Bytes(s) != s.Bytes() || sp.Frames(s) != s.Frames() {
			t.Fatalf("%v: bound geometry diverges from package constants", s)
		}
		for _, va := range vas {
			if sp.PageNum(va, s) != va.PageNum(s) {
				t.Errorf("PageNum(%v, %v) diverges", va, s)
			}
			if sp.PageBase(va, s) != va.PageBase(s) {
				t.Errorf("PageBase(%v, %v) diverges", va, s)
			}
			if sp.Offset(va, s) != va.Offset(s) {
				t.Errorf("Offset(%v, %v) diverges", va, s)
			}
			for _, sets := range setCounts {
				if sp.SetIndex(va, s, sets) != SetIndex(va, s, sets) {
					t.Errorf("SetIndex(%v, %v, %d) diverges", va, s, sets)
				}
				if uint64(sets) <= s.Frames() {
					if sp.MirrorID(va, s, sets) != MirrorID(va, s, sets) {
						t.Errorf("MirrorID(%v, %v, %d) diverges", va, s, sets)
					}
				}
			}
		}
	}
	if sp.VABits() != VABits {
		t.Fatalf("VABits = %d, want %d", sp.VABits(), VABits)
	}
}

// TestSpaceAcrossISAs: the ladder is the same 4KB/2MB/1GB on every
// shipped descriptor, while the VA width varies.
func TestSpaceAcrossISAs(t *testing.T) {
	for _, name := range isa.Names() {
		d, err := isa.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sp := Bind(d)
		if sp.Bytes(Page4K) != Size4K || sp.Bytes(Page2M) != Size2M || sp.Bytes(Page1G) != Size1G {
			t.Errorf("%s: ladder diverges from 4K/2M/1G", name)
		}
		if sp.VABits() != d.VABits {
			t.Errorf("%s: VABits %d != descriptor %d", name, sp.VABits(), d.VABits)
		}
	}
}

func TestSpaceCanonical(t *testing.T) {
	sv39, _ := isa.Lookup("sv39")
	sp := Bind(sv39)
	if !sp.Canonical(V(1<<39 - 1)) {
		t.Error("top of Sv39 VA space reported non-canonical")
	}
	if sp.Canonical(V(1 << 39)) {
		t.Error("VA above Sv39 width reported canonical")
	}
}

func TestBindRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bind accepted an invalid descriptor")
		}
	}()
	Bind(&isa.Descriptor{Name: "bogus", VABits: 10, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9, 9}})
}
