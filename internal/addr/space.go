package addr

import "mixtlb/internal/isa"

// Space binds the package's page-size arithmetic to an isa.Descriptor:
// page-size shifts come from the descriptor's radix-derived ladder instead
// of the x86-64 Shift4K/Shift2M/Shift1G constants. Binding to the default
// descriptor reproduces the package-level functions exactly (tested), so
// descriptor-indirect callers stay bit-identical on x86-64.
//
// A Space is a small value (copied freely, no pointers chased on the hot
// path); construct it once at configuration time with Bind.
type Space struct {
	shifts [NumPageSizes]uint
	vaBits uint
	d      *isa.Descriptor
}

// Bind derives a Space from a descriptor. The descriptor must be valid
// (Bind panics otherwise — configuration-time misuse, like PageSize.Shift
// on an invalid size).
func Bind(d *isa.Descriptor) Space {
	if err := d.Validate(); err != nil {
		panic("addr: Bind: " + err.Error())
	}
	var sp Space
	for c := 0; c < NumPageSizes; c++ {
		sp.shifts[c] = d.LadderShift(c)
	}
	sp.vaBits = d.VABits
	sp.d = d
	return sp
}

// DefaultSpace returns the binding for the default x86-64 descriptor.
func DefaultSpace() Space { return Bind(isa.Default()) }

// Descriptor returns the bound descriptor.
func (sp Space) Descriptor() *isa.Descriptor { return sp.d }

// VABits returns the canonical virtual-address width.
func (sp Space) VABits() uint { return sp.vaBits }

// Shift returns the page-offset width of s under the bound ladder.
func (sp Space) Shift(s PageSize) uint {
	if !s.Valid() {
		panic("addr: invalid page size")
	}
	return sp.shifts[s]
}

// Bytes returns the size of s in bytes under the bound ladder.
func (sp Space) Bytes(s PageSize) uint64 { return 1 << sp.Shift(s) }

// Frames returns the number of constituent base-page frames of s.
func (sp Space) Frames(s PageSize) uint64 { return 1 << (sp.Shift(s) - sp.shifts[Page4K]) }

// PageNum returns va's page number for size s under the bound ladder.
func (sp Space) PageNum(va V, s PageSize) uint64 { return uint64(va) >> sp.Shift(s) }

// PageBase returns the start of va's enclosing page of size s.
func (sp Space) PageBase(va V, s PageSize) V { return va &^ V(sp.Bytes(s)-1) }

// Offset returns va's offset within its enclosing page of size s.
func (sp Space) Offset(va V, s PageSize) uint64 { return uint64(va) & (sp.Bytes(s) - 1) }

// SetIndex is SetIndex under the bound ladder: the set index of va for a
// `sets`-set structure indexed by indexSize page numbers.
func (sp Space) SetIndex(va V, indexSize PageSize, sets int) int {
	return int(sp.PageNum(va, indexSize) & uint64(sets-1))
}

// MirrorID is MirrorID under the bound ladder: the identity of the base
// page within a size-s superpage, excluding the set-index bits of a
// `sets`-set TLB. sets must not exceed Frames(s).
func (sp Space) MirrorID(va V, s PageSize, sets int) uint64 {
	return (uint64(va) >> (sp.shifts[Page4K] + Log2(uint64(sets)))) & (sp.Frames(s)/uint64(sets) - 1)
}

// Canonical reports whether va fits the descriptor's VA width.
func (sp Space) Canonical(va V) bool { return uint64(va)>>sp.vaBits == 0 }
