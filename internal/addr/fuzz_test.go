package addr

import "testing"

// FuzzAddrArithmetic checks the identities every layer of the simulator
// leans on: page base/offset decomposition is lossless, set indices and
// mirror IDs stay in bounds, and alignment rounding brackets its input.
func FuzzAddrArithmetic(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(0x1000), uint8(1), uint8(4), uint8(12))
	f.Add(uint64(0x7fffffffffff), uint8(2), uint8(7), uint8(30)) // top of the 48-bit VA space
	f.Add(^uint64(0), uint8(2), uint8(9), uint8(21))
	f.Fuzz(func(t *testing.T, raw uint64, sizeSel, setsLog, alignLog uint8) {
		va := V(raw)
		pa := P(raw)
		s := PageSize(sizeSel % uint8(NumPageSizes))
		if !s.Valid() {
			t.Fatalf("constructed invalid size from %d", sizeSel)
		}

		// Base/offset decomposition is exact and idempotent.
		if got := uint64(va.PageBase(s)) + va.Offset(s); got != raw {
			t.Errorf("V PageBase+Offset = %#x, want %#x (size %v)", got, raw, s)
		}
		if va.PageBase(s).Offset(s) != 0 {
			t.Errorf("PageBase(%v) not %v-aligned", va, s)
		}
		if va.Offset(s) >= s.Bytes() {
			t.Errorf("Offset(%v) = %#x out of page", s, va.Offset(s))
		}
		if got := uint64(pa.PageBase(s)) + pa.Offset(s); got != raw {
			t.Errorf("P PageBase+Offset = %#x, want %#x (size %v)", got, raw, s)
		}
		if va.VPN4K() != va.PageNum(Page4K) {
			t.Errorf("VPN4K = %#x, PageNum(4K) = %#x", va.VPN4K(), va.PageNum(Page4K))
		}
		if pa.PFN4K() != pa.PageNum(Page4K) {
			t.Errorf("PFN4K = %#x, PageNum(4K) = %#x", pa.PFN4K(), pa.PageNum(Page4K))
		}

		// Set indexing: always within [0, sets) for any power-of-two count.
		sets := 1 << (setsLog % 11) // 1..1024 sets
		if idx := SetIndex(va, s, sets); idx < 0 || idx >= sets {
			t.Errorf("SetIndex(%v, %v, %d) = %d out of range", va, s, sets, idx)
		}
		if sets >= 2 && SetIndex(va, Page4K, sets) != int(va.VPN4K())%sets {
			t.Errorf("SetIndex(4K) disagrees with VPN4K mod sets")
		}

		// Mirror IDs: for superpages with at most Frames() sets, the ID of
		// any constituent 4KB region is within the per-set region count.
		if s != Page4K && uint64(sets) <= s.Frames() {
			if id, lim := MirrorID(va, s, sets), s.Frames()/uint64(sets); id >= lim {
				t.Errorf("MirrorID(%v, %v, %d) = %d, want < %d", va, s, sets, id, lim)
			}
		}

		// Alignment rounding: down ≤ v, up ≥ v (absent overflow), both
		// multiples of align, and each within one align of v.
		align := uint64(1) << (alignLog % 31)
		d := AlignedDown(raw, align)
		if d > raw || d%align != 0 || raw-d >= align {
			t.Errorf("AlignedDown(%#x, %#x) = %#x", raw, align, d)
		}
		if raw <= ^uint64(0)-align {
			u := AlignedUp(raw, align)
			if u < raw || u%align != 0 || u-raw >= align {
				t.Errorf("AlignedUp(%#x, %#x) = %#x", raw, align, u)
			}
			if (d == raw) != (u == raw) {
				t.Errorf("aligned fixed-point disagree: down %#x up %#x for %#x", d, u, raw)
			}
		}
		if !IsPow2(align) || Log2(align) != uint(alignLog%31) {
			t.Errorf("Log2/IsPow2 broken for %#x", align)
		}
	})
}
