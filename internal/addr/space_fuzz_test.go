package addr

import (
	"testing"

	"mixtlb/internal/isa"
)

// FuzzSpaceArithmetic is the descriptor-parameterized counterpart of
// FuzzAddrArithmetic: it synthesizes an arbitrary radix geometry from the
// fuzz input, binds a Space to it, and checks that the bound arithmetic
// never panics and preserves the same identities the x86-64 constants
// guarantee — round-trips, index bounds, and cross-size consistency.
func FuzzSpaceArithmetic(f *testing.F) {
	f.Add(uint64(0x7fffdeadb123), uint8(1), uint8(0), uint8(0), uint8(4))    // x86-64-like, 2MB, 16 sets
	f.Add(uint64(0x1234567890ab), uint8(2), uint8(0x12), uint8(1), uint8(6)) // 5-level, uneven bits
	f.Add(uint64(0xffffffffffff), uint8(0), uint8(0x3f), uint8(2), uint8(0)) // 3-level, wide levels
	f.Add(uint64(0x10000000000), uint8(3), uint8(0x24), uint8(0), uint8(8))  // deep radix
	f.Add(uint64(1)<<62, uint8(1), uint8(0x07), uint8(2), uint8(2))          // VA above any canonical width
	f.Fuzz(func(t *testing.T, raw uint64, depthSel, bitsSel, sizeSel, setsLog uint8) {
		depth := 3 + int(depthSel%4) // 3..6 levels
		pageShift := uint(12)
		levels := make([]uint, depth)
		sum := pageShift
		for i := range levels {
			// Per-level widths 4..11, varied by position so levels differ.
			levels[i] = 4 + uint((bitsSel>>(uint(i)%6))&7)
			sum += levels[i]
		}
		d := &isa.Descriptor{Name: "fuzz", VABits: sum, PABits: 48, PageShift: pageShift, LevelBits: levels}
		if d.Validate() != nil {
			t.Skip("synthesized descriptor out of range")
		}
		sp := Bind(d)

		size := PageSize(sizeSel % uint8(NumPageSizes))
		sets := 1 << (setsLog % 9) // 1..256
		va := V(raw)

		// Round trip: base + offset reconstructs the address.
		base, off := sp.PageBase(va, size), sp.Offset(va, size)
		if V(uint64(base)|off) != va || uint64(base)&(sp.Bytes(size)-1) != 0 {
			t.Fatalf("base/offset round trip: va=%v base=%v off=%#x", va, base, off)
		}
		// Page number and base agree.
		if sp.PageNum(va, size)<<sp.Shift(size) != uint64(base) {
			t.Fatalf("PageNum/PageBase disagree for %v %v", va, size)
		}
		// Set index is bounded and equals the masked page number.
		idx := sp.SetIndex(va, size, sets)
		if idx < 0 || idx >= sets {
			t.Fatalf("SetIndex out of range: %d (sets=%d)", idx, sets)
		}
		if uint64(idx) != sp.PageNum(va, size)&uint64(sets-1) {
			t.Fatalf("SetIndex inconsistent with PageNum")
		}
		// Mirror identity is bounded by frames-per-superpage over sets.
		if uint64(sets) <= sp.Frames(size) {
			mid := sp.MirrorID(va, size, sets)
			if limit := sp.Frames(size) / uint64(sets); mid >= limit {
				t.Fatalf("MirrorID %d >= %d for %v %v sets=%d", mid, limit, va, size, sets)
			}
		}
		// The ladder is monotone: each class is at least as large as the last.
		for c := 1; c < NumPageSizes; c++ {
			if sp.Shift(PageSize(c)) <= sp.Shift(PageSize(c-1)) {
				t.Fatalf("ladder not monotone: %v", sp)
			}
		}
		// Canonical masking is idempotent.
		masked := V(uint64(va) & d.VAMask())
		if !sp.Canonical(masked) {
			t.Fatalf("masked VA %v not canonical (width %d)", masked, d.VABits)
		}
	})
}
