package osmm

import (
	"sort"
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
)

// TestPopulateInvariants is the OS layer's safety net: for any policy and
// fragmentation level, a populated VMA must (a) cover every byte exactly
// once in virtual space, and (b) never map two virtual pages onto
// overlapping physical ranges.
func TestPopulateInvariants(t *testing.T) {
	prop := func(seed uint64, policySel, hogPct uint8) bool {
		policy := []Policy{BasePages, THS, Hugetlbfs2M}[int(policySel)%3]
		frac := float64(hogPct%60) / 100
		phys := physmem.NewBuddy(512 << 20)
		hog := physmem.NewMemhog(phys, simrand.New(seed))
		hog.ScatterFrac = 0.3
		hog.Run(frac)
		cfg := Config{Policy: policy, Compactor: hog, PoolBytes: 64 << 20}
		as, err := New(phys, cfg)
		if err != nil {
			return false
		}
		const fp = 64 << 20
		base, err := as.Mmap(fp)
		if err != nil {
			return false
		}
		if _, err := as.Populate(base, fp); err != nil {
			return false
		}

		type span struct{ lo, hi uint64 }
		var vspans, pspans []span
		as.PageTable().ForEach(func(tr pagetable.Translation) bool {
			vspans = append(vspans, span{uint64(tr.VA), uint64(tr.VA) + tr.Size.Bytes()})
			pspans = append(pspans, span{uint64(tr.PA), uint64(tr.PA) + tr.Size.Bytes()})
			return true
		})
		// Virtual coverage: sorted spans tile [base, base+fp) exactly.
		sort.Slice(vspans, func(i, j int) bool { return vspans[i].lo < vspans[j].lo })
		cursor := uint64(base)
		for _, s := range vspans {
			if s.lo != cursor {
				t.Logf("virtual gap/overlap at %#x (expected %#x)", s.lo, cursor)
				return false
			}
			cursor = s.hi
		}
		if cursor != uint64(base)+fp {
			t.Logf("virtual coverage ends at %#x", cursor)
			return false
		}
		// Physical non-overlap.
		sort.Slice(pspans, func(i, j int) bool { return pspans[i].lo < pspans[j].lo })
		for i := 1; i < len(pspans); i++ {
			if pspans[i].lo < pspans[i-1].hi {
				t.Logf("physical overlap: [%#x,%#x) and [%#x,%#x)",
					pspans[i-1].lo, pspans[i-1].hi, pspans[i].lo, pspans[i].hi)
				return false
			}
		}
		// No mapped frame is simultaneously free in the allocator.
		for _, s := range pspans {
			if phys.FrameFree(s.lo / addr.Size4K) {
				t.Logf("mapped frame %#x is free", s.lo)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMunmapReuseInvariant: freed physical memory is reusable and never
// doubly mapped after remapping.
func TestMunmapReuseInvariant(t *testing.T) {
	phys := physmem.NewBuddy(256 << 20)
	as, err := New(phys, Config{Policy: THS})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := as.Mmap(64 << 20)
	as.Populate(base, 64<<20)
	rng := simrand.New(3)
	for round := 0; round < 20; round++ {
		off := addr.AlignedDown(rng.Uint64n(60<<20), addr.Size2M)
		as.Munmap(base+addr.V(off), 4<<20, nil)
		if _, err := as.Populate(base+addr.V(off), 4<<20); err != nil {
			t.Fatal(err)
		}
		// Physical non-overlap still holds.
		seen := map[uint64]addr.V{}
		ok := true
		as.PageTable().ForEach(func(tr pagetable.Translation) bool {
			for f := tr.PA.PFN4K(); f < tr.PA.PFN4K()+tr.Size.Frames(); f++ {
				if prev, dup := seen[f]; dup {
					t.Errorf("frame %d mapped by both %v and %v", f, prev, tr.VA)
					ok = false
					return false
				}
				seen[f] = tr.VA
			}
			return true
		})
		if !ok {
			return
		}
	}
}
