package osmm

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Khugepaged models Linux's background promotion daemon: it scans VMAs
// for 2MB-aligned regions currently mapped entirely with 4KB pages,
// allocates a fresh 2MB block (compacting if configured), copies the
// region's contents (modeled as remapping), frees the old 4KB frames, and
// installs a single 2MB translation. Promotions change mappings, so every
// replaced translation triggers the shootdown callback — the TLB
// invalidation traffic promotion causes on real systems.
//
// It returns the number of regions promoted, scanning at most maxScan
// candidate regions (the daemon is budgeted, like the real one).
func (as *AddressSpace) Khugepaged(maxScan int, shootdown func(pagetable.Translation)) int {
	promoted := 0
	scanned := 0
	// Promotion thresholds key off the descriptor-bound ladder: the
	// region size is the next class up from base pages (2MB on every
	// shipped descriptor), not a hardcoded x86 constant.
	region := addr.V(as.space.Bytes(addr.Page2M))
	for _, vma := range as.vmas {
		start := addr.V(addr.AlignedUp(uint64(vma.Start), uint64(region)))
		end := uint64(vma.Start) + vma.Length
		for va := start; uint64(va)+uint64(region) <= end; va += region {
			if scanned >= maxScan {
				return promoted
			}
			scanned++
			if !as.regionFullyBase(va) {
				continue
			}
			if as.promoteRegion(va, shootdown) {
				promoted++
			}
		}
	}
	return promoted
}

// regionFullyBase reports whether the 2MB region at va is mapped entirely
// with 4KB pages (the promotion precondition).
func (as *AddressSpace) regionFullyBase(va addr.V) bool {
	for off := uint64(0); off < as.space.Bytes(addr.Page2M); off += as.space.Bytes(addr.Page4K) {
		tr, ok := as.pt.Lookup(va + addr.V(off))
		if !ok || tr.Size != addr.Page4K {
			return false
		}
	}
	return true
}

// promoteRegion replaces the region's 512 4KB mappings with one 2MB page.
func (as *AddressSpace) promoteRegion(va addr.V, shootdown func(pagetable.Translation)) bool {
	pa, ok := as.allocSuper(addr.Page2M)
	if !ok {
		return false
	}
	// Collect and remove the old mappings (copy + remap on real systems).
	var old []pagetable.Translation
	for off := uint64(0); off < as.space.Bytes(addr.Page2M); off += as.space.Bytes(addr.Page4K) {
		tr, err := as.pt.Unmap(va + addr.V(off))
		if err != nil {
			// Should be impossible after regionFullyBase; restore what we
			// removed and abort.
			for _, o := range old {
				_ = as.pt.Map(o.VA, o.PA, o.Size, o.Perm)
			}
			as.phys.FreePageIn(as.space, pa, addr.Page2M)
			return false
		}
		old = append(old, tr)
	}
	if err := as.pt.Map(va, pa, addr.Page2M, addr.PermRW|addr.PermUser); err != nil {
		for _, o := range old {
			_ = as.pt.Map(o.VA, o.PA, o.Size, o.Perm)
		}
		as.phys.FreePageIn(as.space, pa, addr.Page2M)
		return false
	}
	as.pt.SetAccessed(va)
	for _, o := range old {
		as.phys.FreePageIn(as.space, o.PA, addr.Page4K)
		as.stats.Bytes[addr.Page4K] -= as.space.Bytes(addr.Page4K)
		if shootdown != nil {
			shootdown(o)
		}
	}
	as.stats.Bytes[addr.Page2M] += as.space.Bytes(addr.Page2M)
	as.stats.Promotions++
	return true
}
