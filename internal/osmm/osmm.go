// Package osmm models the OS memory-management behaviour that the paper
// characterizes in Sec 7.1: virtual memory areas, lazy (demand) physical
// allocation, and the page-size policies of Linux — transparent hugepage
// support (THS) and libhugetlbfs pools — all on top of the physmem buddy
// allocator. Superpage frequency and superpage *contiguity* (Figures 9-13)
// are emergent properties of this layer plus fragmentation.
package osmm

import (
	"errors"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/stats"
	"mixtlb/internal/telemetry"
)

// Policy selects the OS page-size strategy (Sec 7.1).
type Policy int

const (
	// BasePages maps everything with 4KB pages.
	BasePages Policy = iota
	// THS is transparent hugepage support: faults on eligible 2MB
	// regions try a 2MB physical block first, falling back to 4KB when
	// fragmentation defeats the allocation.
	THS
	// Hugetlbfs2M reserves a pool of 2MB pages at startup (libhugetlbfs
	// with a 2MB preference); when the pool runs dry, 4KB pages are used.
	Hugetlbfs2M
	// Hugetlbfs1G reserves a pool of 1GB pages (libhugetlbfs with a 1GB
	// preference), falling back to 4KB.
	Hugetlbfs1G
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case BasePages:
		return "4KB"
	case THS:
		return "THS"
	case Hugetlbfs2M:
		return "2MB"
	case Hugetlbfs1G:
		return "1GB"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Errors.
var (
	// ErrNoVirtualSpace indicates VA exhaustion (not expected at
	// simulated scales).
	ErrNoVirtualSpace = errors.New("osmm: out of virtual address space")
	// ErrOutOfMemory indicates physical memory exhaustion during an
	// explicit operation. Returned wrapped in an *OOMError carrying the
	// operation's progress; match with errors.Is.
	ErrOutOfMemory = errors.New("osmm: out of physical memory")
	// ErrNoMemory is the historical name of ErrOutOfMemory.
	ErrNoMemory = ErrOutOfMemory
	// ErrZeroLength rejects zero-length mappings.
	ErrZeroLength = errors.New("osmm: zero-length mmap")
)

// OOMError reports physical memory exhaustion with the failing
// operation's progress. It unwraps to ErrOutOfMemory.
type OOMError struct {
	Op         string // "populate", "mmap", ...
	VA         addr.V // address at which the operation stopped
	Requested  uint64 // bytes the operation wanted in total
	Mapped     uint64 // bytes successfully mapped before failing
	FreeFrames uint64 // allocator free 4KB frames at failure time
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("osmm: %s out of memory at %v: mapped %d of %d bytes (%d frames free)",
		e.Op, e.VA, e.Mapped, e.Requested, e.FreeFrames)
}

// Unwrap makes errors.Is(err, ErrOutOfMemory) true.
func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Compactor assembles a free block of 2^order frames by migrating movable
// pages, returning the allocated block's first frame. physmem.Memhog
// implements it (its holdings are the movable pages, as in a real system
// where user memory is migratable).
type Compactor interface {
	CompactFor(order uint) (frame uint64, ok bool)
}

// Config tunes an address space.
type Config struct {
	Policy Policy
	// PoolBytes is the libhugetlbfs reservation (used by the Hugetlbfs
	// policies). Zero reserves nothing, degenerating to BasePages.
	PoolBytes uint64
	// Compactor, when non-nil, models Linux memory compaction: superpage
	// allocations that fail in the buddy allocator retry after
	// compaction (Sec 7.1: "THS tries to defragment memory sufficiently
	// to maintain swathes of contiguous free physical pages").
	Compactor Compactor
	// ISA names the translation architecture the address space's page
	// table implements (an isa.Lookup name). Empty selects the default
	// x86-64 descriptor, preserving pre-ISA behaviour exactly.
	ISA string
}

// VMA is one virtual memory area created by Mmap.
type VMA struct {
	Start  addr.V
	Length uint64
}

// Contains reports whether va falls inside the area.
func (v VMA) Contains(va addr.V) bool {
	return va >= v.Start && uint64(va) < uint64(v.Start)+v.Length
}

// Stats counts OS-level allocation events.
type Stats struct {
	Bytes         [addr.NumPageSizes]uint64 // mapped bytes per page size
	Faults        uint64
	SuperFallback uint64 // superpage attempts degraded to 4KB
	PoolReserved  uint64 // pages successfully reserved in the pool
	PoolMisses    uint64 // pool exhaustion events
	Promotions    uint64 // khugepaged 4KB->2MB region promotions
}

// SuperpageFraction returns the fraction of the mapped footprint backed by
// 2MB or 1GB pages — the Figure 9/10 metric.
func (s Stats) SuperpageFraction() float64 {
	total := s.Bytes[addr.Page4K] + s.Bytes[addr.Page2M] + s.Bytes[addr.Page1G]
	if total == 0 {
		return 0
	}
	return float64(s.Bytes[addr.Page2M]+s.Bytes[addr.Page1G]) / float64(total)
}

// AddressSpace is one process's virtual address space under OS management.
type AddressSpace struct {
	phys   *physmem.Buddy
	pt     *pagetable.PageTable
	space  addr.Space // the descriptor-bound ladder all thresholds key off
	cfg    Config
	vmas   []VMA
	nextVA addr.V
	pool   []addr.P // reserved superpages, ascending allocation order
	stats  Stats

	// Deferred-compaction state (Linux's compaction_deferred mechanism):
	// after a compaction failure, the next 2^shift superpage attempts
	// skip compaction entirely and fall straight back to 4KB pages. This
	// makes fallbacks cluster in (fault, hence VA) order rather than
	// interleave — which is why, on real systems, whatever superpages do
	// exist sit in long contiguous runs (the Sec 1 observation that
	// frequency and contiguity go together).
	superAttempts uint64
	deferUntil    uint64
	deferShift    uint

	// tel is the telemetry collector, nil unless AttachTelemetry enabled
	// it; read only by FlushTelemetry.
	tel *telemetry.Collector
}

// vaBase is where Mmap places the first area on descriptors wide enough
// to hold it; 1GB-aligned so any page size is eligible anywhere in a VMA.
// Narrow-VA descriptors (Sv39) scale the base down to a quarter of their
// canonical space, keeping the same "well above the first gigabytes,
// plenty of room to grow" layout proportionally.
const vaBase = addr.V(0x10000000000)

// baseFor places the first VMA for a descriptor: vaBase when the VA space
// holds it with room to spare, else 2^(VABits-2). Identical to the old
// constant on every 48-bit-or-wider descriptor, including default x86-64.
func baseFor(d *isa.Descriptor) addr.V {
	if quarter := addr.V(1) << (d.VABits - 2); quarter < vaBase {
		return quarter
	}
	return vaBase
}

// New creates an address space over the given physical memory. The page
// table's own pages come from the same allocator and implement the
// descriptor cfg.ISA names. Hugetlbfs policies reserve their pool
// immediately (link-time reservation, Sec 7.1).
func New(phys *physmem.Buddy, cfg Config) (*AddressSpace, error) {
	d, err := isa.Lookup(cfg.ISA)
	if err != nil {
		return nil, err
	}
	pt, err := pagetable.NewISA(phys, d)
	if err != nil {
		return nil, err
	}
	as := &AddressSpace{phys: phys, pt: pt, space: addr.Bind(d), cfg: cfg, nextVA: baseFor(d)}
	switch cfg.Policy {
	case Hugetlbfs2M:
		as.reservePool(addr.Page2M)
	case Hugetlbfs1G:
		as.reservePool(addr.Page1G)
	}
	return as, nil
}

// reservePool grabs as much of PoolBytes as fragmentation (after
// compaction) allows.
func (as *AddressSpace) reservePool(size addr.PageSize) {
	want := as.cfg.PoolBytes / size.Bytes()
	for i := uint64(0); i < want; i++ {
		pa, ok := as.allocSuper(size)
		if !ok {
			break
		}
		as.pool = append(as.pool, pa)
		as.stats.PoolReserved++
	}
}

// allocSuper allocates a superpage block, invoking compaction on failure
// unless compaction is currently deferred.
func (as *AddressSpace) allocSuper(size addr.PageSize) (addr.P, bool) {
	if pa, ok := as.phys.AllocPageIn(as.space, size); ok {
		return pa, true
	}
	if as.cfg.Compactor == nil {
		return 0, false
	}
	as.superAttempts++
	if as.superAttempts < as.deferUntil {
		return 0, false // compaction deferred after recent failures
	}
	if frame, ok := as.cfg.Compactor.CompactFor(physmem.OrderOf(as.space, size)); ok {
		as.deferShift = 0
		return addr.P(frame << addr.Shift4K), true
	}
	if as.deferShift < 6 {
		as.deferShift++
	}
	as.deferUntil = as.superAttempts + 1<<(as.deferShift+2)
	return 0, false
}

// PageTable exposes the hardware-visible page table.
func (as *AddressSpace) PageTable() *pagetable.PageTable { return as.pt }

// Stats returns a snapshot of OS counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// VMAs lists the mapped areas.
func (as *AddressSpace) VMAs() []VMA { return as.vmas }

// Mmap reserves a new area of the given length (rounded up to 4KB) and
// returns its start. Physical memory is allocated lazily on fault, as in
// real OSes. Areas are 1GB-aligned so superpage policies are always
// geometrically possible.
func (as *AddressSpace) Mmap(length uint64) (addr.V, error) {
	if length == 0 {
		return 0, ErrZeroLength
	}
	length = addr.AlignedUp(length, addr.Size4K)
	start := addr.V(addr.AlignedUp(uint64(as.nextVA), addr.Size1G))
	if uint64(start)+length >= uint64(1)<<as.pt.Descriptor().VABits {
		return 0, ErrNoVirtualSpace
	}
	as.vmas = append(as.vmas, VMA{Start: start, Length: length})
	as.nextVA = start + addr.V(length) + addr.Size1G // guard gap
	return start, nil
}

// vmaOf finds the area containing va.
func (as *AddressSpace) vmaOf(va addr.V) (VMA, bool) {
	for _, v := range as.vmas {
		if v.Contains(va) {
			return v, true
		}
	}
	return VMA{}, false
}

// HandleFault demand-maps the page containing va according to the policy,
// returning false for addresses outside every VMA (a segfault). It has
// the mmu.FaultHandler signature.
func (as *AddressSpace) HandleFault(va addr.V, write bool) bool {
	vma, ok := as.vmaOf(va)
	if !ok {
		return false
	}
	if _, mapped := as.pt.Lookup(va); mapped {
		return true // raced with a neighbouring superpage fault
	}
	as.stats.Faults++
	switch as.cfg.Policy {
	case THS:
		if as.tryMapSuper(vma, va, addr.Page2M, as.allocTHS) {
			return true
		}
		as.stats.SuperFallback++
	case Hugetlbfs2M:
		if as.tryMapSuper(vma, va, addr.Page2M, as.allocPool) {
			return true
		}
		as.stats.SuperFallback++
	case Hugetlbfs1G:
		if as.tryMapSuper(vma, va, addr.Page1G, as.allocPool) {
			return true
		}
		as.stats.SuperFallback++
	}
	return as.mapOne(va, addr.Page4K)
}

// allocTHS allocates a superpage from the buddy allocator, retrying after
// compaction when configured.
func (as *AddressSpace) allocTHS(size addr.PageSize) (addr.P, bool) {
	return as.allocSuper(size)
}

// allocPool pops the next reserved superpage.
func (as *AddressSpace) allocPool(size addr.PageSize) (addr.P, bool) {
	if len(as.pool) == 0 {
		as.stats.PoolMisses++
		return 0, false
	}
	pa := as.pool[0]
	as.pool = as.pool[1:]
	return pa, true
}

// tryMapSuper maps the aligned superpage region containing va if the VMA
// fully covers it and physical allocation succeeds.
func (as *AddressSpace) tryMapSuper(vma VMA, va addr.V, size addr.PageSize, alloc func(addr.PageSize) (addr.P, bool)) bool {
	base := va.PageBase(size)
	if base < vma.Start || uint64(base)+size.Bytes() > uint64(vma.Start)+vma.Length {
		return false // region pokes out of the VMA
	}
	pa, ok := alloc(size)
	if !ok {
		return false
	}
	if err := as.pt.Map(base, pa, size, addr.PermRW|addr.PermUser); err != nil {
		// Part of the region was already mapped with 4KB pages by an
		// earlier fallback; give the block back and use a small page.
		as.phys.FreePageIn(as.space, pa, size)
		return false
	}
	// Linux creates fault-installed PTEs young (accessed): the faulting
	// access is about to touch the page. The accessed bit gates TLB
	// coalescing (Sec 4.4), so this matters for first-touch behaviour.
	as.pt.SetAccessed(base)
	as.stats.Bytes[size] += size.Bytes()
	return true
}

// mapOne maps a single page of the given size at va's page base.
func (as *AddressSpace) mapOne(va addr.V, size addr.PageSize) bool {
	pa, ok := as.phys.AllocPageIn(as.space, size)
	if !ok {
		return false
	}
	if err := as.pt.Map(va.PageBase(size), pa, size, addr.PermRW|addr.PermUser); err != nil {
		as.phys.FreePageIn(as.space, pa, size)
		return false
	}
	as.pt.SetAccessed(va)
	as.stats.Bytes[size] += size.Bytes()
	return true
}

// Populate faults in an entire VMA in ascending order, the first-touch
// pattern of an application initializing its heap (Sec 7.1: "if the
// program page faults through the virtual pages in ascending order, they
// are handed contiguous physical pages"). Returns the bytes mapped.
func (as *AddressSpace) Populate(start addr.V, length uint64) (uint64, error) {
	var mapped uint64
	end := uint64(start) + length
	oom := func(va addr.V) error {
		return &OOMError{
			Op: "populate", VA: va, Requested: length, Mapped: mapped,
			FreeFrames: as.phys.FreeFrames(),
		}
	}
	for va := start; uint64(va) < end; {
		if !as.HandleFault(va, false) {
			return mapped, oom(va)
		}
		tr, ok := as.pt.Lookup(va)
		if !ok {
			return mapped, oom(va)
		}
		step := tr.Size.Bytes() - va.Offset(tr.Size)
		mapped += step
		va += addr.V(step)
	}
	return mapped, nil
}

// Munmap removes every translation overlapping [start, start+length) and
// frees the physical pages, invoking shootdown (if non-nil) per removed
// translation — the TLB invalidation side effect.
func (as *AddressSpace) Munmap(start addr.V, length uint64, shootdown func(pagetable.Translation)) {
	end := uint64(start) + length
	for va := start; uint64(va) < end; {
		tr, ok := as.pt.Lookup(va)
		if !ok {
			va = addr.V(uint64(va) + addr.Size4K)
			continue
		}
		if _, err := as.pt.Unmap(va); err == nil {
			as.phys.FreePageIn(as.space, tr.PA, tr.Size)
			as.stats.Bytes[tr.Size] -= tr.Size.Bytes()
			if shootdown != nil {
				shootdown(tr)
			}
		}
		va = tr.VA + addr.V(tr.Size.Bytes())
	}
}

// ContiguityReport captures the Sec 7.1 characterization: per page size,
// the distribution of maximal runs of translations contiguous in both
// virtual and physical address space.
type ContiguityReport struct {
	Runs      map[addr.PageSize]*stats.Histogram
	Footprint map[addr.PageSize]uint64 // mapped bytes per size
}

// AverageContiguity returns the paper's average-contiguity metric for a
// page size (Fig 11).
func (r *ContiguityReport) AverageContiguity(s addr.PageSize) float64 {
	return r.Runs[s].AverageContiguity()
}

// SuperpageFraction returns the footprint fraction in superpages (Fig 9).
func (r *ContiguityReport) SuperpageFraction() float64 {
	total := r.Footprint[addr.Page4K] + r.Footprint[addr.Page2M] + r.Footprint[addr.Page1G]
	if total == 0 {
		return 0
	}
	return float64(r.Footprint[addr.Page2M]+r.Footprint[addr.Page1G]) / float64(total)
}

// CDF returns the translation-weighted contiguity CDF for a page size
// (Figures 12-13).
func (r *ContiguityReport) CDF(s addr.PageSize) []stats.CDFPoint {
	return r.Runs[s].TranslationWeightedCDF()
}

// ScanContiguity walks the page table in VA order and identifies runs:
// consecutive translations of equal size whose virtual and physical
// addresses are both adjacent. This is exactly the paper's methodology
// ("we scan the entire page table and identify runs of contiguous
// superpages").
func ScanContiguity(pt *pagetable.PageTable) *ContiguityReport {
	rep := &ContiguityReport{
		Runs:      make(map[addr.PageSize]*stats.Histogram, addr.NumPageSizes),
		Footprint: make(map[addr.PageSize]uint64, addr.NumPageSizes),
	}
	for _, s := range addr.Sizes() {
		rep.Runs[s] = stats.NewHistogram()
	}
	var have bool
	var prev pagetable.Translation
	var runLen uint64
	flush := func() {
		if have && runLen > 0 {
			rep.Runs[prev.Size].Observe(runLen)
		}
	}
	pt.ForEach(func(tr pagetable.Translation) bool {
		rep.Footprint[tr.Size] += tr.Size.Bytes()
		if have && tr.Size == prev.Size &&
			tr.VA == prev.VA+addr.V(prev.Size.Bytes()) &&
			tr.PA == prev.PA+addr.P(prev.Size.Bytes()) {
			runLen++
		} else {
			flush()
			runLen = 1
		}
		prev, have = tr, true
		return true
	})
	flush()
	return rep
}
