package osmm

import (
	"strconv"

	"mixtlb/internal/addr"
	"mixtlb/internal/physmem"
	"mixtlb/internal/telemetry"
)

// tel is the address space's telemetry collector (nil when disabled, the
// default). The OS layer has no per-reference hot path, so it exports
// everything snapshot-style at flush time instead of instrumenting
// individual fault sites.

// AttachTelemetry implements telemetry.Instrumentable.
func (as *AddressSpace) AttachTelemetry(c *telemetry.Collector) {
	as.tel = c
}

// contiguityBounds buckets translation-run lengths (in pages of the run's
// size) up to a 1GB region of 4KB pages.
var contiguityBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 4096, 262144}

// FlushTelemetry exports OS allocation counters, buddy-allocator
// fragmentation gauges, and the page-table contiguity histograms that
// back Figures 9-13. Call once after measurement; it only reads state.
func (as *AddressSpace) FlushTelemetry() {
	if as.tel == nil {
		return
	}
	c := as.tel
	s := as.stats
	c.Counter("osmm_faults_total").Add(s.Faults)
	c.Counter("osmm_super_fallbacks_total").Add(s.SuperFallback)
	c.Counter("osmm_pool_reserved_total").Add(s.PoolReserved)
	c.Counter("osmm_pool_misses_total").Add(s.PoolMisses)
	c.Counter("osmm_promotions_total").Add(s.Promotions)
	for _, size := range addr.Sizes() {
		c.Gauge("osmm_mapped_bytes", "size", size.String()).Set(int64(s.Bytes[size]))
	}

	c.Gauge("buddy_free_frames").Set(int64(as.phys.FreeFrames()))
	c.Gauge("buddy_total_frames").Set(int64(as.phys.TotalFrames()))
	if order, ok := as.phys.LargestFreeOrder(); ok {
		c.Gauge("buddy_largest_free_order").Set(int64(order))
	} else {
		c.Gauge("buddy_largest_free_order").Set(-1)
	}
	for order := uint(0); order <= physmem.MaxOrder; order++ {
		n := as.phys.FreeBlocksOfOrder(order)
		if n > 0 {
			c.Gauge("buddy_free_blocks", "order", strconv.Itoa(int(order))).Set(int64(n))
		}
	}

	rep := ScanContiguity(as.pt)
	for _, size := range addr.Sizes() {
		h, ok := rep.Runs[size]
		if !ok || h.Count() == 0 {
			continue
		}
		th := c.Histogram("osmm_contiguity_run_pages", contiguityBounds, "size", size.String())
		h.Each(func(v, n uint64) { th.ObserveN(v, n) })
	}
}
