package osmm

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
)

func newAS(t *testing.T, memBytes uint64, cfg Config) (*AddressSpace, *physmem.Buddy) {
	t.Helper()
	phys := physmem.NewBuddy(memBytes)
	as, err := New(phys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return as, phys
}

func TestMmapLayout(t *testing.T) {
	as, _ := newAS(t, 1<<30, Config{Policy: BasePages})
	a, err := as.Mmap(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.Mmap(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)%addr.Size1G != 0 || uint64(b)%addr.Size1G != 0 {
		t.Error("VMAs not 1GB aligned")
	}
	if b <= a+addr.V(10<<20) {
		t.Error("VMAs overlap")
	}
	if len(as.VMAs()) != 2 {
		t.Errorf("VMAs = %d", len(as.VMAs()))
	}
	if _, err := as.Mmap(0); err == nil {
		t.Error("zero-length mmap succeeded")
	}
}

func TestBasePagesPolicy(t *testing.T) {
	as, _ := newAS(t, 1<<30, Config{Policy: BasePages})
	start, _ := as.Mmap(8 << 20)
	if _, err := as.Populate(start, 8<<20); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes[addr.Page4K] != 8<<20 {
		t.Errorf("4KB bytes = %d", st.Bytes[addr.Page4K])
	}
	if st.Bytes[addr.Page2M] != 0 || st.Bytes[addr.Page1G] != 0 {
		t.Error("superpages allocated under BasePages")
	}
	if st.SuperpageFraction() != 0 {
		t.Errorf("superpage fraction = %v", st.SuperpageFraction())
	}
}

func TestTHSOnPristineMemory(t *testing.T) {
	as, _ := newAS(t, 1<<30, Config{Policy: THS})
	start, _ := as.Mmap(64 << 20)
	if _, err := as.Populate(start, 64<<20); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != 64<<20 {
		t.Errorf("2MB bytes = %d (fallbacks=%d)", st.Bytes[addr.Page2M], st.SuperFallback)
	}
	if got := st.SuperpageFraction(); got != 1 {
		t.Errorf("superpage fraction = %v", got)
	}
	// Ascending faults on defragmented memory produce one long run.
	rep := ScanContiguity(as.PageTable())
	if got := rep.AverageContiguity(addr.Page2M); got != 32 {
		t.Errorf("average 2MB contiguity = %v, want 32 (one run of 32)", got)
	}
}

func TestTHSUnderFragmentation(t *testing.T) {
	as, phys := newAS(t, 1<<30, Config{Policy: THS})
	hog := physmem.NewMemhog(phys, simrand.New(7))
	hog.ScatterFrac = 1        // worst case: every chunk lands at random
	hog.ScatterClusterBias = 0 // uniformly random, no clustering
	hog.MaxChunkOrder = 0
	hog.Run(0.5) // 50% of frames randomly pinned: no 2MB block survives
	start, _ := as.Mmap(32 << 20)
	if _, err := as.Populate(start, 32<<20); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != 0 {
		t.Errorf("2MB pages materialized from fragmented memory: %d bytes", st.Bytes[addr.Page2M])
	}
	if st.Bytes[addr.Page4K] != 32<<20 {
		t.Errorf("4KB bytes = %d", st.Bytes[addr.Page4K])
	}
	if st.SuperFallback == 0 {
		t.Error("no fallbacks counted")
	}
}

func TestTHSPartialFragmentation(t *testing.T) {
	// Light fragmentation: some 2MB allocations succeed, some fall back —
	// the mixed regime of Figure 9.
	as, phys := newAS(t, 256<<20, Config{Policy: THS})
	hog := physmem.NewMemhog(phys, simrand.New(3))
	hog.ScatterFrac = 1        // all chunks scattered
	hog.ScatterClusterBias = 0 // uniformly: some regions die, some survive
	hog.Run(0.25)
	start, _ := as.Mmap(128 << 20)
	if _, err := as.Populate(start, 128<<20); err != nil {
		t.Fatal(err)
	}
	frac := as.Stats().SuperpageFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("superpage fraction = %v, want mixed regime", frac)
	}
}

func TestHugetlbfs2MPool(t *testing.T) {
	as, _ := newAS(t, 256<<20, Config{Policy: Hugetlbfs2M, PoolBytes: 16 << 20})
	if as.Stats().PoolReserved != 8 {
		t.Fatalf("reserved %d pool pages", as.Stats().PoolReserved)
	}
	start, _ := as.Mmap(32 << 20)
	if _, err := as.Populate(start, 32<<20); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != 16<<20 {
		t.Errorf("2MB bytes = %d, want pool-limited 16MB", st.Bytes[addr.Page2M])
	}
	if st.Bytes[addr.Page4K] != 16<<20 {
		t.Errorf("4KB bytes = %d", st.Bytes[addr.Page4K])
	}
	if st.PoolMisses == 0 {
		t.Error("pool exhaustion not recorded")
	}
}

func TestHugetlbfs1G(t *testing.T) {
	as, _ := newAS(t, 4<<30, Config{Policy: Hugetlbfs1G, PoolBytes: 2 << 30})
	start, _ := as.Mmap(2 << 30)
	if _, err := as.Populate(start, 2<<30); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Bytes[addr.Page1G] != 2<<30 {
		t.Errorf("1GB bytes = %d", st.Bytes[addr.Page1G])
	}
	rep := ScanContiguity(as.PageTable())
	if got := rep.AverageContiguity(addr.Page1G); got != 2 {
		t.Errorf("1GB contiguity = %v, want 2", got)
	}
}

func TestFaultOutsideVMA(t *testing.T) {
	as, _ := newAS(t, 1<<30, Config{Policy: BasePages})
	if as.HandleFault(0xdeadbeef000, false) {
		t.Error("fault outside every VMA succeeded")
	}
}

func TestRefaultIsIdempotent(t *testing.T) {
	as, _ := newAS(t, 1<<30, Config{Policy: THS})
	start, _ := as.Mmap(4 << 20)
	if !as.HandleFault(start, false) || !as.HandleFault(start+0x1000, true) {
		t.Fatal("faults failed")
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != addr.Size2M {
		t.Errorf("double-mapped: %d bytes", st.Bytes[addr.Page2M])
	}
}

func TestTHSRegionPartiallyMappedFallsBack(t *testing.T) {
	// Map one 4KB page via a tiny VMA trick: fragment so first fault
	// falls back, then free fragmentation and fault a neighbour — the
	// 2MB attempt must detect the overlap and use 4KB.
	phys := physmem.NewBuddy(64 << 20)
	as, err := New(phys, Config{Policy: THS})
	if err != nil {
		t.Fatal(err)
	}
	hog := physmem.NewMemhog(phys, simrand.New(1))
	hog.ScatterFrac = 1
	hog.ScatterClusterBias = 0
	hog.MaxChunkOrder = 0
	hog.Run(0.5)
	start, _ := as.Mmap(2 << 20)
	if !as.HandleFault(start, false) {
		t.Fatal("fault failed")
	}
	if as.Stats().Bytes[addr.Page4K] != addr.Size4K {
		t.Fatalf("expected 4KB fallback under fragmentation")
	}
	hog.Release() // memory defragments
	if !as.HandleFault(start+addr.Size4K, false) {
		t.Fatal("second fault failed")
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != 0 {
		t.Error("2MB page mapped over existing 4KB mapping")
	}
	if st.Bytes[addr.Page4K] != 2*addr.Size4K {
		t.Errorf("4KB bytes = %d", st.Bytes[addr.Page4K])
	}
	// And no physical memory leaked by the failed 2MB attempt: we can
	// still allocate everything that is free.
	free := phys.FreeFrames()
	pa, ok := phys.AllocPage(addr.Page4K)
	if !ok {
		t.Fatal("allocation failed")
	}
	phys.FreePage(pa, addr.Page4K)
	if phys.FreeFrames() != free {
		t.Error("free accounting drifted")
	}
}

func TestMunmapFreesAndShootsDown(t *testing.T) {
	as, phys := newAS(t, 1<<30, Config{Policy: THS})
	start, _ := as.Mmap(8 << 20)
	as.Populate(start, 8<<20)
	before := phys.FreeFrames()
	var shot []pagetable.Translation
	as.Munmap(start, 8<<20, func(tr pagetable.Translation) { shot = append(shot, tr) })
	if len(shot) != 4 {
		t.Errorf("shootdowns = %d, want 4 (2MB pages)", len(shot))
	}
	if phys.FreeFrames() != before+4*512 {
		t.Errorf("frames not freed: %d -> %d", before, phys.FreeFrames())
	}
	if _, ok := as.PageTable().Lookup(start); ok {
		t.Error("mapping survived munmap")
	}
	if as.Stats().Bytes[addr.Page2M] != 0 {
		t.Error("byte accounting wrong after munmap")
	}
}

func TestScanContiguityMixedRuns(t *testing.T) {
	// Hand-build a page table with known runs: 2MB pages at page numbers
	// 10,11,12 (contiguous), 20 (singleton), and a 4KB run of 2.
	phys := physmem.NewBuddy(256 << 20)
	pt, err := pagetable.New(phys)
	if err != nil {
		t.Fatal(err)
	}
	mapPage := func(vpn, ppn uint64, s addr.PageSize) {
		t.Helper()
		if err := pt.Map(addr.V(vpn<<s.Shift()), addr.P(ppn<<s.Shift()), s, addr.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	mapPage(10, 50, addr.Page2M)
	mapPage(11, 51, addr.Page2M)
	mapPage(12, 52, addr.Page2M)
	mapPage(20, 60, addr.Page2M)
	mapPage(0x40000, 7, addr.Page4K)
	mapPage(0x40001, 8, addr.Page4K)
	rep := ScanContiguity(pt)
	// 2MB: runs of 3 and 1 -> (3*3 + 1*1)/4 = 2.5.
	if got := rep.AverageContiguity(addr.Page2M); got != 2.5 {
		t.Errorf("2MB contiguity = %v, want 2.5", got)
	}
	if got := rep.AverageContiguity(addr.Page4K); got != 2 {
		t.Errorf("4KB contiguity = %v, want 2", got)
	}
	if rep.Footprint[addr.Page2M] != 4*addr.Size2M {
		t.Errorf("2MB footprint = %d", rep.Footprint[addr.Page2M])
	}
	cdf := rep.CDF(addr.Page2M)
	if len(cdf) != 2 || cdf[0].Value != 1 || cdf[0].Frac != 0.25 {
		t.Errorf("2MB CDF = %v", cdf)
	}
}

func TestScanContiguityPhysicalBreaks(t *testing.T) {
	// VA-adjacent but PA-discontiguous pages are separate runs.
	phys := physmem.NewBuddy(256 << 20)
	pt, _ := pagetable.New(phys)
	pt.Map(addr.V(10)<<21, addr.P(50)<<21, addr.Page2M, addr.PermRW)
	pt.Map(addr.V(11)<<21, addr.P(99)<<21, addr.Page2M, addr.PermRW)
	rep := ScanContiguity(pt)
	if got := rep.AverageContiguity(addr.Page2M); got != 1 {
		t.Errorf("contiguity = %v, want 1 (physically broken)", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		BasePages: "4KB", THS: "THS", Hugetlbfs2M: "2MB", Hugetlbfs1G: "1GB",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

// TestContiguityDegradesWithFragmentation is the qualitative Figure 11
// property: more memhog, less superpage contiguity.
func TestContiguityDegradesWithFragmentation(t *testing.T) {
	measure := func(frac float64) float64 {
		phys := physmem.NewBuddy(512 << 20)
		as, err := New(phys, Config{Policy: THS})
		if err != nil {
			t.Fatal(err)
		}
		hog := physmem.NewMemhog(phys, simrand.New(11))
		hog.Run(frac)
		// Interleave allocation with churn: map in chunks while the hog
		// churns, so physical allocation order interleaves.
		start, _ := as.Mmap(128 << 20)
		for off := uint64(0); off < 128<<20; off += 16 << 20 {
			as.Populate(start+addr.V(off), 16<<20)
			hog.Run(frac + 0.01)
			hog.Run(frac)
		}
		return ScanContiguity(as.PageTable()).AverageContiguity(addr.Page2M)
	}
	pristine := measure(0)
	fragmented := measure(0.02)
	if pristine <= fragmented {
		t.Errorf("contiguity did not degrade: pristine=%v fragmented=%v", pristine, fragmented)
	}
}

func TestKhugepagedPromotes(t *testing.T) {
	// Map with 4KB pages under fragmentation, then defragment and let
	// khugepaged promote the regions to 2MB.
	phys := physmem.NewBuddy(256 << 20)
	hog := physmem.NewMemhog(phys, simrand.New(1))
	hog.ScatterFrac = 1
	hog.ScatterClusterBias = 0
	hog.MaxChunkOrder = 0
	hog.Run(0.5)
	as, err := New(phys, Config{Policy: THS})
	if err != nil {
		t.Fatal(err)
	}
	start, _ := as.Mmap(16 << 20)
	if _, err := as.Populate(start, 16<<20); err != nil {
		t.Fatal(err)
	}
	if as.Stats().Bytes[addr.Page2M] != 0 {
		t.Fatal("setup: superpages materialized under fragmentation")
	}
	// Nothing promotable while memory stays fragmented.
	if n := as.Khugepaged(1000, nil); n != 0 {
		t.Fatalf("promoted %d regions without free 2MB blocks", n)
	}
	hog.Release() // defragmentation
	var shot []pagetable.Translation
	n := as.Khugepaged(1000, func(tr pagetable.Translation) { shot = append(shot, tr) })
	if n != 8 {
		t.Fatalf("promoted %d regions, want 8", n)
	}
	st := as.Stats()
	if st.Bytes[addr.Page2M] != 16<<20 || st.Bytes[addr.Page4K] != 0 {
		t.Errorf("byte accounting after promotion: %+v", st.Bytes)
	}
	if st.Promotions != 8 {
		t.Errorf("Promotions = %d", st.Promotions)
	}
	if len(shot) != 8*512 {
		t.Errorf("shootdowns = %d, want %d", len(shot), 8*512)
	}
	// Translations are correct and contiguous afterwards.
	rep := ScanContiguity(as.PageTable())
	if rep.SuperpageFraction() != 1 {
		t.Errorf("superpage fraction = %v", rep.SuperpageFraction())
	}
	for off := uint64(0); off < 16<<20; off += addr.Size4K {
		if _, ok := as.PageTable().Lookup(start + addr.V(off)); !ok {
			t.Fatalf("hole at +%#x after promotion", off)
		}
	}
	// No physical memory leaked: the freed 4KB frames are allocatable.
	free := phys.FreeFrames()
	if free < (256<<20-16<<20)/addr.Size4K-1024 {
		t.Errorf("free frames = %d, promotion leaked memory", free)
	}
}

func TestKhugepagedScanBudget(t *testing.T) {
	phys := physmem.NewBuddy(256 << 20)
	as, _ := New(phys, Config{Policy: BasePages})
	start, _ := as.Mmap(32 << 20)
	as.Populate(start, 32<<20)
	// Budget of 3 regions: at most 3 promotions per call.
	if n := as.Khugepaged(3, nil); n > 3 {
		t.Errorf("promoted %d with budget 3", n)
	}
}
