package chaos

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
)

func sampleTranslation() pagetable.Translation {
	return pagetable.Translation{
		VA: 0x200000, PA: 0x40000000, Size: addr.Page2M,
		Perm: addr.PermRW, Accessed: true,
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	tr := sampleTranslation()
	if out := in.CorruptTLBHit(&tr); out != FaultNone {
		t.Errorf("nil injector corrupted a hit: %v", out)
	}
	w := pagetable.WalkResult{Found: true, Translation: tr}
	if in.CorruptWalk(&w) {
		t.Error("nil injector corrupted a walk")
	}
	if in.DropIPI() || in.DelayIPI() || in.FailAlloc(9) {
		t.Error("nil injector fired an IPI/alloc fault")
	}
	if in.Enabled() {
		t.Error("nil injector claims enabled")
	}
	if in.Stats() != (Stats{}) || in.Seed() != 0 || in.Rates() != (Rates{}) {
		t.Error("nil injector accessors not zero")
	}
}

func TestZeroRatesNeverFire(t *testing.T) {
	in := NewInjector(7, Rates{})
	if in.Enabled() {
		t.Error("zero-rate injector claims enabled")
	}
	for i := 0; i < 10_000; i++ {
		tr := sampleTranslation()
		if in.CorruptTLBHit(&tr) != FaultNone || tr != sampleTranslation() {
			t.Fatal("zero-rate injector corrupted a hit")
		}
		if in.DropIPI() || in.DelayIPI() || in.FailAlloc(9) {
			t.Fatal("zero-rate injector fired")
		}
	}
	if in.Stats() != (Stats{}) {
		t.Errorf("zero-rate stats = %+v", in.Stats())
	}
}

// TestDeterministic replays the same call sequence on two injectors with
// the same seed: every decision and every corrupted value must match.
func TestDeterministic(t *testing.T) {
	run := func() ([]Outcome, []addr.P, Stats) {
		in := NewInjector(99, DefaultRates())
		var outs []Outcome
		var pas []addr.P
		for i := 0; i < 50_000; i++ {
			tr := sampleTranslation()
			outs = append(outs, in.CorruptTLBHit(&tr))
			pas = append(pas, tr.PA)
			in.DropIPI()
			in.FailAlloc(9)
		}
		return outs, pas, in.Stats()
	}
	o1, p1, s1 := run()
	o2, p2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] || p1[i] != p2[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if s1.TLBCorruptions == 0 || s1.TLBSilent == 0 || s1.TLBDetected == 0 {
		t.Errorf("default rates never fired: %+v", s1)
	}
}

// TestCorruptionFlipsFrameBitsOnly checks silent corruption yields a
// different PA while preserving the page offset (flips land at or above
// the page-size shift).
func TestCorruptionFlipsFrameBitsOnly(t *testing.T) {
	in := NewInjector(3, Rates{TLBCorrupt: 1, SilentFrac: 1})
	for i := 0; i < 1000; i++ {
		tr := sampleTranslation()
		if out := in.CorruptTLBHit(&tr); out != FaultSilent {
			t.Fatalf("outcome = %v, want silent", out)
		}
		if tr.PA == sampleTranslation().PA {
			t.Fatal("silent corruption left PA unchanged")
		}
		if diff := tr.PA ^ sampleTranslation().PA; uint64(diff)&(addr.Size2M-1) != 0 {
			t.Fatalf("corruption touched the page offset: diff=%x", diff)
		}
	}
}

func TestDetectedLeavesValueIntact(t *testing.T) {
	in := NewInjector(5, Rates{TLBCorrupt: 1, SilentFrac: 0})
	tr := sampleTranslation()
	if out := in.CorruptTLBHit(&tr); out != FaultDetected {
		t.Fatalf("outcome = %v, want detected", out)
	}
	if tr != sampleTranslation() {
		t.Error("detected corruption modified the translation")
	}
}

func TestFailAllocSparesOrderZero(t *testing.T) {
	in := NewInjector(11, Rates{AllocFail: 1})
	for i := 0; i < 100; i++ {
		if in.FailAlloc(0) {
			t.Fatal("order-0 allocation failed under injection")
		}
		if !in.FailAlloc(9) {
			t.Fatal("order-9 allocation survived rate-1 injection")
		}
	}
}

func TestCorruptWalkSkipsNotFound(t *testing.T) {
	in := NewInjector(13, Rates{PTECorrupt: 1})
	w := pagetable.WalkResult{Found: false}
	if in.CorruptWalk(&w) {
		t.Error("corrupted a failed walk")
	}
	w = pagetable.WalkResult{Found: true, Translation: sampleTranslation()}
	if !in.CorruptWalk(&w) {
		t.Error("rate-1 walk corruption did not fire")
	}
	if w.Translation.PA == sampleTranslation().PA {
		t.Error("walk corruption left PA unchanged")
	}
}

func TestScaledClamps(t *testing.T) {
	r := Rates{TLBCorrupt: 0.5, PTECorrupt: 0.1, IPILoss: 0.9}.Scaled(10)
	if r.TLBCorrupt != 1 || r.IPILoss != 1 {
		t.Errorf("scaled rates not clamped: %+v", r)
	}
	if r.PTECorrupt != 1 {
		t.Errorf("PTECorrupt = %v, want 1", r.PTECorrupt)
	}
	if !(Rates{}).Zero() || DefaultRates().Zero() {
		t.Error("Zero() misclassifies")
	}
}

func newTestPT(t *testing.T) *pagetable.PageTable {
	t.Helper()
	pt, err := pagetable.New(physmem.NewBuddy(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestOracleCatchesMismatch(t *testing.T) {
	pt := newTestPT(t)
	if err := pt.Map(0x200000, 0x600000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	o := NewOracle(pt)
	// Correct translation: no mismatch.
	if mm := o.Check("mix", "L1", 0x200123, addr.Page2M, 0x600123); mm != nil {
		t.Fatalf("false positive: %v", mm)
	}
	// Wrong PA: caught, with full provenance.
	mm := o.Check("mix", "L1", 0x200123, addr.Page2M, 0x700123)
	if mm == nil {
		t.Fatal("wrong PA not caught")
	}
	if mm.Design != "mix" || mm.Provenance != "L1" || mm.Want != 0x600123 || mm.Got != 0x700123 {
		t.Errorf("mismatch diagnostic = %+v", mm)
	}
	if mm.Error() == "" {
		t.Error("empty mismatch error text")
	}
	// Wrong size with right PA: also a mismatch (the entry lies about
	// its reach).
	if o.Check("mix", "L1", 0x200123, addr.Page4K, 0x600123) == nil {
		t.Error("wrong size not caught")
	}
	if o.Checks() != 3 || o.MismatchCount() != 2 {
		t.Errorf("checks=%d mismatches=%d", o.Checks(), o.MismatchCount())
	}
	if n := len(o.Mismatches()); n != 2 {
		t.Errorf("kept %d mismatches", n)
	}
}

func TestOracleUnmappedVA(t *testing.T) {
	o := NewOracle(newTestPT(t))
	mm := o.Check("mix", "walk", 0x1000, addr.Page4K, 0x2000)
	if mm == nil || !mm.Unmapped {
		t.Fatalf("translation for unmapped VA not flagged: %+v", mm)
	}
	if _, ok := o.GroundTruth(0x1000); ok {
		t.Error("ground truth exists for unmapped VA")
	}
}

func TestNilOracleSafe(t *testing.T) {
	var o *Oracle
	if o.Check("d", "L1", 0x1000, addr.Page4K, 0x2000) != nil {
		t.Error("nil oracle reported a mismatch")
	}
	if _, ok := o.GroundTruth(0x1000); ok {
		t.Error("nil oracle has ground truth")
	}
	if o.Checks() != 0 || o.MismatchCount() != 0 || o.Mismatches() != nil {
		t.Error("nil oracle counters not zero")
	}
}

func TestOracleKeepsBoundedMismatches(t *testing.T) {
	o := NewOracle(newTestPT(t))
	for i := 0; i < 100; i++ {
		o.Check("d", "L1", addr.V(i)<<12, addr.Page4K, 0x1000)
	}
	if n := len(o.Mismatches()); n > 32 {
		t.Errorf("kept %d mismatches, want <= 32", n)
	}
	if o.MismatchCount() != 100 {
		t.Errorf("MismatchCount = %d", o.MismatchCount())
	}
}
