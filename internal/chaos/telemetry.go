package chaos

import "mixtlb/internal/telemetry"

// AttachTelemetry implements telemetry.Instrumentable. The injector has
// no hot path of its own (its callers are already on miss/fault paths),
// so it exports snapshot-style from its Stats at flush time.
func (in *Injector) AttachTelemetry(c *telemetry.Collector) {
	if in == nil {
		return
	}
	in.tel = c
}

// FlushTelemetry exports the injected-fault counters. Call once after
// measurement.
func (in *Injector) FlushTelemetry() {
	if in == nil || in.tel == nil {
		return
	}
	c := in.tel
	s := in.stats
	c.Counter("chaos_injected_total", "kind", "tlb_corruption").Add(s.TLBCorruptions)
	c.Counter("chaos_injected_total", "kind", "tlb_detected").Add(s.TLBDetected)
	c.Counter("chaos_injected_total", "kind", "tlb_silent").Add(s.TLBSilent)
	c.Counter("chaos_injected_total", "kind", "pte_corruption").Add(s.PTECorruptions)
	c.Counter("chaos_injected_total", "kind", "ipi_dropped").Add(s.IPIsDropped)
	c.Counter("chaos_injected_total", "kind", "ipi_delayed").Add(s.IPIsDelayed)
	c.Counter("chaos_injected_total", "kind", "alloc_failure").Add(s.AllocFailures)
}
