package chaos

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Mismatch is the typed diagnostic the oracle emits when a translation
// disagrees with page-table ground truth: which design produced it, for
// which VA, at which claimed page size, from which level of the hierarchy.
// It implements error so harnesses can return it directly.
type Mismatch struct {
	// Design names the MMU configuration that produced the translation.
	Design string
	// Provenance is where the wrong answer came from: "L1", "L2", or
	// "walk".
	Provenance string
	// VA is the translated virtual address.
	VA addr.V
	// Size is the page size the hit claimed.
	Size addr.PageSize
	// Got is the physical address the MMU returned; Want is ground truth.
	Got, Want addr.P
	// Unmapped is set when the TLB hit on a VA the page table no longer
	// maps at all (a stale entry surviving an invalidation).
	Unmapped bool
	// Seq is the oracle's check counter at detection time, locating the
	// failure within a deterministic replay.
	Seq uint64
}

// Error implements error.
func (m *Mismatch) Error() string {
	if m.Unmapped {
		return fmt.Sprintf("chaos: %s %s hit on unmapped VA %#x (size %v, got PA %#x, check #%d)",
			m.Design, m.Provenance, uint64(m.VA), m.Size, uint64(m.Got), m.Seq)
	}
	return fmt.Sprintf("chaos: %s %s translated VA %#x (size %v) to PA %#x, ground truth %#x (check #%d)",
		m.Design, m.Provenance, uint64(m.VA), m.Size, uint64(m.Got), uint64(m.Want), m.Seq)
}

// maxKeptMismatches bounds the retained diagnostics; the count is always
// exact.
const maxKeptMismatches = 32

// Oracle cross-checks translations against the authoritative page table.
// A nil Oracle performs no checks. The oracle holds the *native* page
// table: for virtualized MMUs (nested walks) there is no single-level
// ground truth and the oracle is not attached.
type Oracle struct {
	pt       *pagetable.PageTable
	checks   uint64
	mismatch uint64
	kept     []Mismatch
}

// NewOracle builds an oracle over the given page table.
func NewOracle(pt *pagetable.PageTable) *Oracle { return &Oracle{pt: pt} }

// Check verifies one translation result, returning a Mismatch when the
// result disagrees with the page table (nil otherwise, and always nil on a
// nil receiver).
func (o *Oracle) Check(design, provenance string, va addr.V, size addr.PageSize, got addr.P) *Mismatch {
	if o == nil {
		return nil
	}
	o.checks++
	tr, ok := o.pt.Lookup(va)
	// The PA must match ground truth and the claimed page size must match
	// the mapping: an entry with the right PA but an inflated size lies
	// about its reach and will go wrong on a neighbouring VA.
	if ok && tr.Translate(va) == got && tr.Size == size {
		return nil
	}
	o.mismatch++
	m := &Mismatch{
		Design: design, Provenance: provenance, VA: va, Size: size,
		Got: got, Unmapped: !ok, Seq: o.checks,
	}
	if ok {
		m.Want = tr.Translate(va)
	}
	if len(o.kept) < maxKeptMismatches {
		o.kept = append(o.kept, *m)
	}
	return m
}

// GroundTruth returns the page table's translation for va.
func (o *Oracle) GroundTruth(va addr.V) (pagetable.Translation, bool) {
	if o == nil {
		return pagetable.Translation{}, false
	}
	return o.pt.Lookup(va)
}

// Checks returns the number of translations verified.
func (o *Oracle) Checks() uint64 {
	if o == nil {
		return 0
	}
	return o.checks
}

// MismatchCount returns the number of mismatches detected (including any
// beyond the retained diagnostics).
func (o *Oracle) MismatchCount() uint64 {
	if o == nil {
		return 0
	}
	return o.mismatch
}

// Mismatches returns the first retained diagnostics (at most 32).
func (o *Oracle) Mismatches() []Mismatch {
	if o == nil {
		return nil
	}
	return o.kept
}
