// Package chaos is the deterministic fault-injection subsystem: a
// seed-driven Injector that attacks the invariants the MIX TLB design
// depends on (mirror coherence, duplicate elimination, shootdown
// completeness, superpage allocation), plus a translation Oracle that
// cross-checks every MMU result against page-table ground truth.
//
// Every fault decision is drawn from one simrand stream, so a run is
// reproducible from (seed, rates) alone — a failing chaos experiment
// prints its seed and can be replayed exactly. All Injector methods are
// nil-receiver safe: a nil *Injector injects nothing, so production paths
// carry no conditional plumbing.
//
// Fault kinds and the graceful-degradation path each one exercises:
//
//   - TLB entry corruption (CorruptTLBHit): a bit flip in a cached
//     translation's frame number. Most flips are parity-detectable and the
//     MMU invalidates the entry and re-walks (detect-invalidate-rewalk);
//     a configurable fraction is multi-bit/silent and must be caught by
//     the Oracle before a wrong physical address reaches the workload.
//   - PTE-fetch corruption (CorruptWalk): the walker's PTE read returns a
//     flipped frame number. Always silent — hardware walkers have no
//     end-to-end parity on the composed translation — so only the Oracle
//     stands between it and the workload.
//   - Lost/delayed shootdown IPIs (DropIPI/DelayIPI): exercised by the
//     smp package's bounded retry/ack protocol.
//   - Transient allocation failure (FailAlloc): the buddy allocator
//     spuriously fails superpage-order allocations, forcing the OS to
//     degrade to 4KB mappings instead of failing the fault.
package chaos

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/simrand"
	"mixtlb/internal/telemetry"
)

// Rates configures per-event fault probabilities, all in [0, 1].
type Rates struct {
	// TLBCorrupt is the per-hit probability that the cached translation
	// read out of a TLB is corrupted.
	TLBCorrupt float64
	// SilentFrac is the fraction of TLB corruptions that escape parity
	// (multi-bit flips). The rest are detected on read.
	SilentFrac float64
	// PTECorrupt is the per-walk probability that the walked translation's
	// frame number is corrupted in flight.
	PTECorrupt float64
	// IPILoss is the per-IPI probability that a shootdown interrupt is
	// dropped and must be retried.
	IPILoss float64
	// IPIDelay is the per-IPI probability of a delayed (but delivered)
	// interrupt.
	IPIDelay float64
	// AllocFail is the per-allocation probability that a superpage-order
	// buddy allocation transiently fails.
	AllocFail float64
}

// Zero reports whether every rate is zero (no faults will ever fire).
func (r Rates) Zero() bool {
	return r.TLBCorrupt == 0 && r.PTECorrupt == 0 &&
		r.IPILoss == 0 && r.IPIDelay == 0 && r.AllocFail == 0
}

// DefaultRates is an aggressive mix used by the chaos experiment: frequent
// enough that short runs exercise every fault path, survivable because
// every path recovers.
func DefaultRates() Rates {
	return Rates{
		TLBCorrupt: 2e-3,
		SilentFrac: 0.25,
		PTECorrupt: 1e-3,
		IPILoss:    0.2,
		IPIDelay:   0.1,
		AllocFail:  0.1,
	}
}

// Scaled returns the rates with every probability multiplied by f
// (clamped to 1), for sweeping fault intensity.
func (r Rates) Scaled(f float64) Rates {
	c := func(p float64) float64 {
		p *= f
		if p > 1 {
			return 1
		}
		return p
	}
	r.TLBCorrupt = c(r.TLBCorrupt)
	r.PTECorrupt = c(r.PTECorrupt)
	r.IPILoss = c(r.IPILoss)
	r.IPIDelay = c(r.IPIDelay)
	r.AllocFail = c(r.AllocFail)
	return r
}

// Stats counts injected faults by kind.
type Stats struct {
	TLBCorruptions uint64 // total TLB read corruptions injected
	TLBDetected    uint64 // subset flagged parity-detectable
	TLBSilent      uint64 // subset that escaped parity
	PTECorruptions uint64 // walker results corrupted
	IPIsDropped    uint64
	IPIsDelayed    uint64
	AllocFailures  uint64 // transient superpage allocation failures
}

// Outcome classifies one CorruptTLBHit decision.
type Outcome int

const (
	// FaultNone: the read was clean.
	FaultNone Outcome = iota
	// FaultDetected: the entry is corrupt and parity caught it before
	// use; the MMU must invalidate and re-walk.
	FaultDetected
	// FaultSilent: the translation was corrupted undetectably; the caller
	// proceeds with a wrong physical address unless an oracle intervenes.
	FaultSilent
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case FaultDetected:
		return "detected"
	case FaultSilent:
		return "silent"
	}
	return "none"
}

// Injector draws fault decisions from a private deterministic stream.
// A nil Injector is valid and injects nothing.
type Injector struct {
	seed  uint64
	rates Rates
	rng   *simrand.Source
	stats Stats

	// tel is the telemetry collector, nil unless AttachTelemetry enabled
	// it; read only by FlushTelemetry.
	tel *telemetry.Collector
}

// NewInjector builds an injector for the given seed and rates.
func NewInjector(seed uint64, rates Rates) *Injector {
	return &Injector{seed: seed, rates: rates, rng: simrand.New(seed)}
}

// Seed returns the reproducing seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Rates returns the configured fault rates.
func (in *Injector) Rates() Rates {
	if in == nil {
		return Rates{}
	}
	return in.rates
}

// Stats returns a snapshot of injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Enabled reports whether this injector can ever fire.
func (in *Injector) Enabled() bool { return in != nil && !in.rates.Zero() }

// flipPA flips one random frame-number bit of a translation, leaving the
// page offset intact — the smallest corruption that still yields a wrong
// physical address for every VA the entry covers.
func (in *Injector) flipPA(t *pagetable.Translation) {
	bit := uint(t.Size.Shift()) + uint(in.rng.Intn(20))
	t.PA ^= addr.P(1) << bit
}

// CorruptTLBHit possibly corrupts a translation just read out of a TLB,
// returning how the hardware experiences it. On FaultSilent the
// translation's PA has been flipped in place; on FaultDetected the caller
// must treat the entry as unusable (invalidate and re-walk) — the value is
// left unmodified since parity stops it before use.
func (in *Injector) CorruptTLBHit(t *pagetable.Translation) Outcome {
	if in == nil || in.rates.TLBCorrupt <= 0 || !in.rng.Bool(in.rates.TLBCorrupt) {
		return FaultNone
	}
	in.stats.TLBCorruptions++
	if in.rng.Bool(in.rates.SilentFrac) {
		in.stats.TLBSilent++
		in.flipPA(t)
		return FaultSilent
	}
	in.stats.TLBDetected++
	return FaultDetected
}

// CorruptWalk possibly corrupts a successful walk's demanded translation
// in place (the Line neighbours are left alone: only the demanded PTE's
// composed result transits the corrupted path). Reports whether a
// corruption was injected.
func (in *Injector) CorruptWalk(w *pagetable.WalkResult) bool {
	if in == nil || !w.Found || in.rates.PTECorrupt <= 0 || !in.rng.Bool(in.rates.PTECorrupt) {
		return false
	}
	in.stats.PTECorruptions++
	in.flipPA(&w.Translation)
	return true
}

// DropIPI reports whether a shootdown IPI should be dropped (lost on the
// interconnect, to be retried by the sender).
func (in *Injector) DropIPI() bool {
	if in == nil || in.rates.IPILoss <= 0 || !in.rng.Bool(in.rates.IPILoss) {
		return false
	}
	in.stats.IPIsDropped++
	return true
}

// DelayIPI reports whether a shootdown IPI is delayed before delivery.
func (in *Injector) DelayIPI() bool {
	if in == nil || in.rates.IPIDelay <= 0 || !in.rng.Bool(in.rates.IPIDelay) {
		return false
	}
	in.stats.IPIsDelayed++
	return true
}

// FailAlloc reports whether a buddy allocation of the given order should
// transiently fail. Order-0 (4KB) allocations never fail: the degradation
// contract is superpage→4KB fallback, and 4KB frames also back page-table
// pages, whose allocation failure would not be a *graceful* degradation.
func (in *Injector) FailAlloc(order uint) bool {
	if in == nil || order == 0 || in.rates.AllocFail <= 0 || !in.rng.Bool(in.rates.AllocFail) {
		return false
	}
	in.stats.AllocFailures++
	return true
}
