package isa

import (
	"errors"
	"testing"
)

// TestShippedDescriptorsValid: every registered descriptor validates, and
// the geometry invariants the rest of the repository assumes hold: 4KB
// base pages, 9-bit levels, and the 4KB/2MB/1GB ladder.
func TestShippedDescriptorsValid(t *testing.T) {
	for _, name := range Names() {
		d, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.PageShift != 12 {
			t.Errorf("%s: page shift %d, want 12", name, d.PageShift)
		}
		for c, want := range []uint{12, 21, 30} {
			if got := d.LadderShift(c); got != want {
				t.Errorf("%s: ladder shift[%d] = %d, want %d", name, c, got, want)
			}
		}
	}
}

func TestDefaultMatchesX86(t *testing.T) {
	d := Default()
	if d.Name != "x86-64" || d.Depth() != 4 || d.VABits != 48 {
		t.Fatalf("default descriptor = %+v", d)
	}
	// The walker convention: level 4 (root) indexes VA bits 39..47.
	want := []uint{12, 21, 30, 39}
	for lvl := 1; lvl <= 4; lvl++ {
		if got := d.LevelShift(lvl); got != want[lvl-1] {
			t.Errorf("LevelShift(%d) = %d, want %d", lvl, got, want[lvl-1])
		}
	}
	if d.Contig != ContigNone || d.ContigPages != 0 {
		t.Errorf("default descriptor has a contiguity encoding: %v/%d", d.Contig, d.ContigPages)
	}
}

func TestLA57Depth(t *testing.T) {
	d, err := Lookup("x86-64-la57")
	if err != nil {
		t.Fatal(err)
	}
	if d.Depth() != 5 || d.LevelShift(5) != 48 || d.VABits != 57 {
		t.Fatalf("la57 = %+v", d)
	}
}

func TestContigDescriptors(t *testing.T) {
	for _, name := range []string{"sv48-napot", "arm64-contig"} {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.ContigPages != 16 {
			t.Errorf("%s: contig pages %d, want 16", name, d.ContigPages)
		}
		if d.Contig == ContigNone {
			t.Errorf("%s: contig kind none", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("mips64")
	var u *UnknownISAError
	if !errors.As(err, &u) {
		t.Fatalf("Lookup(mips64) = %v, want *UnknownISAError", err)
	}
	if u.Name != "mips64" || len(u.Valid) == 0 {
		t.Fatalf("error = %+v", u)
	}
}

func TestLookupEmptyIsDefault(t *testing.T) {
	d, err := Lookup("")
	if err != nil || d.Name != DefaultName {
		t.Fatalf("Lookup(\"\") = %v, %v", d, err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Descriptor{
		{Name: "bad-va", VABits: 47, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9, 9, 9}},
		{Name: "too-shallow", VABits: 30, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9}},
		{Name: "contig-not-pow2", VABits: 48, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9, 9, 9}, Contig: ContigNAPOT, ContigPages: 12},
		{Name: "contig-too-big", VABits: 48, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9, 9, 9}, Contig: ContigHint, ContigPages: 1024},
		{Name: "stray-contig-pages", VABits: 48, PABits: 48, PageShift: 12, LevelBits: []uint{9, 9, 9, 9}, ContigPages: 16},
		{Name: "pa-too-narrow", VABits: 48, PABits: 8, PageShift: 12, LevelBits: []uint{9, 9, 9, 9}},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid descriptor", d.Name)
		}
	}
}

func TestVAMask(t *testing.T) {
	d, _ := Lookup("sv39")
	if d.VAMask() != (1<<39)-1 {
		t.Fatalf("sv39 VAMask = %#x", d.VAMask())
	}
}
