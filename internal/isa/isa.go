// Package isa describes translation architectures: the radix geometry a
// page-table walker traverses, the canonical virtual-address width, the
// page-size ladder the radix induces, and whether the ISA encodes physical
// contiguity in leaf PTEs (RISC-V SVNAPOT ranges, the ARM64 contiguous
// hint). The rest of the simulator is parameterized over a Descriptor, so
// the same TLB designs and OS memory manager run unchanged on x86-64
// 4-level paging, 5-level LA57, RISC-V Sv39/Sv48, and contiguity-encoding
// variants of the latter.
//
// The package deliberately imports nothing from the repository: internal/addr
// binds to a Descriptor, not the other way around, and the default
// descriptor reproduces today's x86-64 behaviour bit for bit.
package isa

import (
	"fmt"
	"sort"
)

// ContigKind classifies how an ISA's leaf PTEs encode physical contiguity
// beyond the page size itself.
type ContigKind uint8

const (
	// ContigNone: no contiguity encoding (x86-64). Hardware can still
	// coalesce speculatively (the paper's MIX/COLT machinery), but the
	// architecture promises nothing.
	ContigNone ContigKind = iota
	// ContigNAPOT: RISC-V SVNAPOT. A leaf PTE with the N bit set encodes a
	// naturally aligned power-of-two range; every PTE in the range carries
	// the same bit, so a walker learns the whole range from any member.
	ContigNAPOT
	// ContigHint: the ARM64 contiguous hint. A block of adjacent PTEs sets
	// the contiguous bit, telling the TLB it may cache the block as one
	// entry. Semantically close to NAPOT for this simulator's purposes;
	// the PTE layout differs.
	ContigHint
)

// String names the kind for diagnostics and -explain narration.
func (k ContigKind) String() string {
	switch k {
	case ContigNone:
		return "none"
	case ContigNAPOT:
		return "napot"
	case ContigHint:
		return "contig-hint"
	}
	return fmt.Sprintf("ContigKind(%d)", int(k))
}

// PTEFormat selects the packed 8-byte PTE layout an ISA uses. The
// simulator keeps entries decoded; the packed formats exist so entry
// layout claims rest on concrete encodings and round-trip under test.
type PTEFormat uint8

const (
	// PTEX86 is the x86-64 layout (P/RW/US/A/D/PS bits, XD at bit 63).
	PTEX86 PTEFormat = iota
	// PTESv is the RISC-V Sv39/Sv48 layout (V/R/W/X/U/A/D bits, PPN at
	// bits 10..53, the SVNAPOT N bit at 63).
	PTESv
	// PTEARM64 is a simplified ARM64 stage-1 descriptor (valid/type bits,
	// AP permissions, AF, the contiguous hint at bit 52, UXN at 54).
	PTEARM64
)

// String names the format for diagnostics.
func (f PTEFormat) String() string {
	switch f {
	case PTEX86:
		return "x86"
	case PTESv:
		return "riscv-sv"
	case PTEARM64:
		return "arm64"
	}
	return fmt.Sprintf("PTEFormat(%d)", int(f))
}

// LeafLevels is how many radix levels can terminate in a leaf page. Every
// descriptor in this repository keeps the x86 three-size ladder (4KB base
// pages plus two superpage sizes), which is what lets addr.NumPageSizes
// remain a compile-time constant across ISAs.
const LeafLevels = 3

// MaxDepth bounds the radix depth any descriptor may declare; fixed-size
// walk buffers (walker access paths, PWC level arrays) are sized by it.
const MaxDepth = 6

// Descriptor is one translation architecture. Fields are immutable after
// registration; hot paths copy what they need at construction time.
type Descriptor struct {
	// Name is the registry key ("x86-64", "sv48-napot", ...).
	Name string
	// VABits is the canonical virtual-address width. It must equal
	// PageShift plus the sum of LevelBits.
	VABits uint
	// PABits is the physical-address width used by packed PTE formats.
	PABits uint
	// PageShift is log2 of the base page size (12 for every shipped ISA).
	PageShift uint
	// LevelBits holds the per-level index widths, leaf-most level first:
	// LevelBits[0] indexes the final page-table page, LevelBits[len-1]
	// the root.
	LevelBits []uint
	// Contig is the leaf contiguity encoding, if any.
	Contig ContigKind
	// Format is the packed PTE layout (zero value: the x86-64 format).
	Format PTEFormat
	// ContigPages is the block size (in base pages) of the contiguity
	// encoding: 16 for SVNAPOT's 64KB granule and for the ARM64
	// contiguous hint at 4KB granule. Zero when Contig is ContigNone.
	ContigPages int
}

// Depth returns the number of radix levels.
func (d *Descriptor) Depth() int { return len(d.LevelBits) }

// LevelShift returns the VA bit position where level's index starts.
// Levels are numbered 1 (leaf) through Depth (root), matching the
// page-table walker's convention.
func (d *Descriptor) LevelShift(level int) uint {
	s := d.PageShift
	for i := 0; i < level-1; i++ {
		s += d.LevelBits[i]
	}
	return s
}

// IndexBits returns the index width of a level (1-based from the leaf).
func (d *Descriptor) IndexBits(level int) uint { return d.LevelBits[level-1] }

// EntriesAt returns the number of entries in a table at the given level.
func (d *Descriptor) EntriesAt(level int) int { return 1 << d.LevelBits[level-1] }

// LadderShift returns the VA shift of page-size class c (0 = base pages,
// 1 and 2 the superpage sizes): the shift at which leaves of radix level
// c+1 map pages. For every shipped descriptor this is 12/21/30.
func (d *Descriptor) LadderShift(c int) uint { return d.LevelShift(c + 1) }

// LadderBytes returns the byte size of page-size class c.
func (d *Descriptor) LadderBytes(c int) uint64 { return 1 << d.LadderShift(c) }

// VAMask returns the mask of architecturally meaningful VA bits.
func (d *Descriptor) VAMask() uint64 {
	if d.VABits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << d.VABits) - 1
}

// Validate checks internal consistency. Descriptors built by Lookup are
// always valid; fuzzers construct arbitrary ones and must call this first.
func (d *Descriptor) Validate() error {
	if d.PageShift < 9 || d.PageShift > 16 {
		return fmt.Errorf("isa %q: page shift %d out of range [9,16]", d.Name, d.PageShift)
	}
	if len(d.LevelBits) < LeafLevels || len(d.LevelBits) > MaxDepth {
		return fmt.Errorf("isa %q: depth %d out of range [%d,%d]", d.Name, len(d.LevelBits), LeafLevels, MaxDepth)
	}
	sum := d.PageShift
	for i, b := range d.LevelBits {
		if b < 1 || b > 16 {
			return fmt.Errorf("isa %q: level %d index width %d out of range [1,16]", d.Name, i+1, b)
		}
		sum += b
	}
	if d.VABits != sum {
		return fmt.Errorf("isa %q: VA width %d != page shift + level bits = %d", d.Name, d.VABits, sum)
	}
	if d.VABits > 64 {
		return fmt.Errorf("isa %q: VA width %d exceeds 64", d.Name, d.VABits)
	}
	if d.PABits < d.PageShift || d.PABits > 64 {
		return fmt.Errorf("isa %q: PA width %d out of range [%d,64]", d.Name, d.PABits, d.PageShift)
	}
	if d.Contig == ContigNone {
		if d.ContigPages != 0 {
			return fmt.Errorf("isa %q: contig pages %d with no contiguity encoding", d.Name, d.ContigPages)
		}
		return nil
	}
	if d.ContigPages < 2 || d.ContigPages&(d.ContigPages-1) != 0 {
		return fmt.Errorf("isa %q: contig block %d pages must be a power of two >= 2", d.Name, d.ContigPages)
	}
	if d.ContigPages > 1<<d.LevelBits[0] {
		return fmt.Errorf("isa %q: contig block %d pages exceeds leaf table size %d", d.Name, d.ContigPages, 1<<d.LevelBits[0])
	}
	return nil
}

// DefaultName is the descriptor the whole repository assumed before ISAs
// were parameterized. Leaving every ISA knob unset selects it, which is
// what keeps the pre-existing golden tables byte-identical.
const DefaultName = "x86-64"

// UnknownISAError is returned when a name does not match a registered
// descriptor. Valid lists the registered names, sorted.
type UnknownISAError struct {
	Name  string
	Valid []string
}

func (e *UnknownISAError) Error() string {
	return fmt.Sprintf("unknown ISA %q (valid: %v)", e.Name, e.Valid)
}

// registry holds the shipped descriptors. All use 4KB base pages, 9-bit
// radix levels, and the 4KB/2MB/1GB ladder; what varies is depth, VA
// width, and the contiguity encoding. PABits is pinned to 48 across the
// set (LA57 hardware allows 52; the simulator's physical memories are
// far smaller, and a shared width keeps packed-PTE frame masks uniform).
var registry = map[string]*Descriptor{
	"x86-64": {
		Name: "x86-64", VABits: 48, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9, 9},
	},
	"x86-64-la57": {
		Name: "x86-64-la57", VABits: 57, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9, 9, 9},
	},
	"sv39": {
		Name: "sv39", VABits: 39, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9}, Format: PTESv,
	},
	"sv48": {
		Name: "sv48", VABits: 48, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9, 9}, Format: PTESv,
	},
	"sv48-napot": {
		Name: "sv48-napot", VABits: 48, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9, 9}, Format: PTESv,
		Contig: ContigNAPOT, ContigPages: 16, // the 64KB NAPOT granule
	},
	"arm64-contig": {
		Name: "arm64-contig", VABits: 48, PABits: 48, PageShift: 12,
		LevelBits: []uint{9, 9, 9, 9}, Format: PTEARM64,
		Contig: ContigHint, ContigPages: 16, // 16 adjacent 4KB PTEs
	},
}

// Default returns the x86-64 descriptor.
func Default() *Descriptor { return registry[DefaultName] }

// Lookup resolves a descriptor by name. The empty string selects the
// default, so ISA fields left unset everywhere mean "x86-64 as before".
func Lookup(name string) (*Descriptor, error) {
	if name == "" {
		name = DefaultName
	}
	d, ok := registry[name]
	if !ok {
		return nil, &UnknownISAError{Name: name, Valid: Names()}
	}
	return d, nil
}

// Names returns the registered descriptor names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
