package cachesim

import (
	"testing"

	"mixtlb/internal/addr"
)

func tinyHierarchy() *Hierarchy {
	return NewHierarchy([]Level{
		{Name: "L1", Size: 1 << 10, Ways: 2, Latency: 4},  // 8 sets
		{Name: "L2", Size: 4 << 10, Ways: 4, Latency: 12}, // 16 sets
	}, 100)
}

func TestColdMissThenHit(t *testing.T) {
	h := tinyHierarchy()
	r := h.Access(0x1000)
	if r.HitLevel != 2 {
		t.Errorf("cold access hit level %d, want 2 (memory)", r.HitLevel)
	}
	if r.Cycles != 4+12+100 {
		t.Errorf("cold access took %d cycles", r.Cycles)
	}
	r = h.Access(0x1000)
	if r.HitLevel != 0 || r.Cycles != 4 {
		t.Errorf("second access: level %d, %d cycles", r.HitLevel, r.Cycles)
	}
	// Same line, different offset.
	r = h.Access(0x103f)
	if r.HitLevel != 0 {
		t.Errorf("same-line access hit level %d", r.HitLevel)
	}
	// Next line misses.
	if r := h.Access(0x1040); r.HitLevel != 2 {
		t.Errorf("next line hit level %d", r.HitLevel)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tinyHierarchy()
	// L1 has 8 sets, 2 ways. Three lines mapping to the same L1 set:
	// line addresses differing by sets*linesize = 8*64 = 512 bytes.
	a, b, c := addr.P(0), addr.P(512), addr.P(1024)
	h.Access(a)
	h.Access(b)
	h.Access(c) // evicts a from L1
	if r := h.Access(a); r.HitLevel != 1 {
		t.Errorf("evicted line hit level %d, want 1 (L2)", r.HitLevel)
	}
	// b was just refreshed less recently than c but more than a; after
	// re-filling a, b is the LRU victim.
	if r := h.Access(c); r.HitLevel != 0 {
		t.Errorf("c hit level %d", r.HitLevel)
	}
}

func TestStats(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0)
	h.Access(0)
	name, acc, miss := h.LevelStats(0)
	if name != "L1" || acc != 2 || miss != 1 {
		t.Errorf("L1 stats = %s/%d/%d", name, acc, miss)
	}
	if h.MemAccesses() != 1 {
		t.Errorf("MemAccesses = %d", h.MemAccesses())
	}
	if h.Levels() != 2 {
		t.Errorf("Levels = %d", h.Levels())
	}
	if h.MemLatency() != 100 {
		t.Errorf("MemLatency = %d", h.MemLatency())
	}
}

func TestFlush(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0x2000)
	h.Flush()
	if r := h.Access(0x2000); r.HitLevel != 2 {
		t.Errorf("post-flush access hit level %d", r.HitLevel)
	}
}

func TestDefaultHierarchyShape(t *testing.T) {
	h := DefaultHierarchy()
	if h.Levels() != 3 {
		t.Fatalf("default has %d levels", h.Levels())
	}
	r := h.Access(0x123456)
	if r.HitLevel != 3 || r.Cycles != 4+12+42+200 {
		t.Errorf("default cold access: level %d, %d cycles", r.HitLevel, r.Cycles)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHierarchy([]Level{{Name: "bad", Size: 384, Ways: 1, Latency: 1}}, 10) // 6 sets

}

func TestEmptyHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHierarchy(nil, 10)
}

func TestWorkingSetCapacity(t *testing.T) {
	h := tinyHierarchy()
	// 16 lines fit in L1 (1KB / 64B); stream 16 lines twice: second pass
	// should be all L1 hits.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 16; i++ {
			r := h.Access(addr.P(i * 64))
			if pass == 1 && r.HitLevel != 0 {
				t.Fatalf("pass 2 line %d hit level %d", i, r.HitLevel)
			}
		}
	}
}
