// Package cachesim provides a functional (hit/miss + latency) model of a
// physically-indexed set-associative cache hierarchy. Page-table walks are
// memory references: their PTE reads flow through this hierarchy, which is
// what makes TLB misses expensive and what the analytical performance
// model weighs (Sec 6.2).
package cachesim

import (
	"fmt"

	"mixtlb/internal/addr"
)

// Level configures one cache level.
type Level struct {
	Name    string
	Size    uint64 // bytes
	Ways    int
	Latency uint64 // access latency in cycles
}

// DefaultHierarchy mirrors the paper's evaluation platform: a Haswell-like
// three-level hierarchy with a 24MB LLC (Sec 6.1) in front of DRAM.
func DefaultHierarchy() *Hierarchy {
	return NewHierarchy([]Level{
		{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 4},
		{Name: "L2", Size: 256 << 10, Ways: 8, Latency: 12},
		{Name: "LLC", Size: 24 << 20, Ways: 24, Latency: 42},
	}, 200)
}

// cache is one level's state: per-set tag arrays with LRU stamps.
type cache struct {
	cfg   Level
	sets  int
	tags  [][]uint64
	valid [][]bool
	stamp [][]uint64
	clock uint64

	accesses uint64
	misses   uint64
}

func newCache(cfg Level) *cache {
	lines := cfg.Size / addr.CacheLineSize
	sets := int(lines) / cfg.Ways
	if sets <= 0 || !addr.IsPow2(uint64(sets)) {
		panic(fmt.Sprintf("cachesim: %s has %d sets; need a positive power of two", cfg.Name, sets))
	}
	c := &cache{cfg: cfg, sets: sets}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.stamp = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.stamp[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// access looks up the line containing pa, filling on miss. Returns hit.
func (c *cache) access(pa addr.P) bool {
	c.clock++
	c.accesses++
	line := uint64(pa) / addr.CacheLineSize
	set := int(line) & (c.sets - 1)
	tag := line >> addr.Log2(uint64(c.sets))
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.stamp[set][w] = c.clock
			return true
		}
		if !c.valid[set][w] {
			victim, oldest = w, 0
		} else if c.stamp[set][w] < oldest {
			victim, oldest = w, c.stamp[set][w]
		}
	}
	c.misses++
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.stamp[set][victim] = c.clock
	return false
}

// Hierarchy is an inclusive multi-level cache hierarchy over DRAM.
type Hierarchy struct {
	levels     []*cache
	memLatency uint64
	memAccess  uint64
}

// NewHierarchy builds a hierarchy from fastest to slowest level, with the
// given DRAM latency behind the last level.
func NewHierarchy(levels []Level, memLatency uint64) *Hierarchy {
	if len(levels) == 0 {
		panic("cachesim: empty hierarchy")
	}
	h := &Hierarchy{memLatency: memLatency}
	for _, cfg := range levels {
		h.levels = append(h.levels, newCache(cfg))
	}
	return h
}

// AccessResult describes one reference's journey through the hierarchy.
type AccessResult struct {
	// HitLevel is the index of the level that hit, or len(levels) for a
	// DRAM access.
	HitLevel int
	// Cycles is the total latency of the reference.
	Cycles uint64
	// LevelReads counts per-level lookups performed (for energy).
	LevelReads int
}

// Access simulates one read or write of the line containing pa.
func (h *Hierarchy) Access(pa addr.P) AccessResult {
	var res AccessResult
	for i, c := range h.levels {
		res.Cycles += c.cfg.Latency
		res.LevelReads++
		if c.access(pa) {
			res.HitLevel = i
			return res
		}
	}
	h.memAccess++
	res.Cycles += h.memLatency
	res.HitLevel = len(h.levels)
	return res
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// MemLatency returns the DRAM access latency in cycles.
func (h *Hierarchy) MemLatency() uint64 { return h.memLatency }

// LevelStats reports accesses and misses for level i.
func (h *Hierarchy) LevelStats(i int) (name string, accesses, misses uint64) {
	c := h.levels[i]
	return c.cfg.Name, c.accesses, c.misses
}

// MemAccesses reports the number of DRAM references.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccess }

// Flush invalidates every line in every level (counters are retained).
func (h *Hierarchy) Flush() {
	for _, c := range h.levels {
		for s := range c.valid {
			for w := range c.valid[s] {
				c.valid[s][w] = false
			}
		}
	}
}
