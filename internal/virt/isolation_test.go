package virt

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/osmm"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/simrand"
)

// TestCrossVMIsolation is the hypervisor's core safety property: no two
// VMs (and no two guest-physical pages within a VM) may be backed by
// overlapping system-physical memory.
func TestCrossVMIsolation(t *testing.T) {
	host := NewMachine(2<<30, simrand.New(21))
	host.HostHog().Run(0.2)
	type owner struct {
		vm  int
		gpa addr.V
	}
	frames := map[uint64]owner{}
	for i := 0; i < 3; i++ {
		vm, err := host.AddVM(512<<20, osmm.Config{Policy: osmm.THS}, simrand.New(uint64(30+i)))
		if err != nil {
			t.Fatal(err)
		}
		base, err := vm.GuestAS().Mmap(256 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Populate(base, 256<<20); err != nil {
			t.Fatal(err)
		}
		vm.NestedPT().ForEach(func(tr pagetable.Translation) bool {
			for f := tr.PA.PFN4K(); f < tr.PA.PFN4K()+tr.Size.Frames(); f++ {
				if prev, dup := frames[f]; dup {
					t.Fatalf("host frame %d backs VM %d gPA %v and VM %d gPA %v",
						f, prev.vm, prev.gpa, i, tr.VA)
				}
				frames[f] = owner{i, tr.VA}
			}
			return true
		})
	}
	if len(frames) == 0 {
		t.Fatal("no backings recorded")
	}
}

// TestEffectiveTranslationAgainstComposition cross-checks random nested
// walks against the manual guest∘host composition under fragmentation and
// splintering.
func TestEffectiveTranslationAgainstComposition(t *testing.T) {
	host := NewMachine(2<<30, simrand.New(5))
	host.HostHog().ScatterFrac = 0.5
	host.HostHog().ScatterClusterBias = 0
	host.HostHog().Run(0.3)
	vm, err := host.AddVM(512<<20, osmm.Config{Policy: osmm.THS}, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := vm.GuestAS().Mmap(128 << 20)
	if _, err := vm.Populate(base, 128<<20); err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(7)
	splintered := false
	for i := 0; i < 2000; i++ {
		va := base + addr.V(rng.Uint64n(128<<20)&^7)
		res := vm.Walker().Walk(va)
		if !res.Found {
			t.Fatalf("walk missed at %v", va)
		}
		gtr, ok := vm.GuestAS().PageTable().Lookup(va)
		if !ok {
			t.Fatalf("guest unmapped at %v", va)
		}
		gpa := gtr.Translate(va)
		htr, ok := vm.NestedPT().Lookup(addr.V(gpa))
		if !ok {
			t.Fatalf("host unmapped at gPA %v", gpa)
		}
		if got, want := res.Translation.Translate(va), htr.Translate(addr.V(gpa)); got != want {
			t.Fatalf("composition mismatch at %v: %v vs %v", va, got, want)
		}
		if res.Translation.Size < gtr.Size {
			splintered = true
		}
	}
	if !splintered {
		t.Log("note: no splintering observed under this fragmentation (acceptable)")
	}
}
