package virt

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

func newVM(t *testing.T, hostBytes, guestBytes uint64, guestCfg osmm.Config) (*Machine, *VM) {
	t.Helper()
	m := NewMachine(hostBytes, simrand.New(1))
	vm, err := m.AddVM(guestBytes, guestCfg, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	return m, vm
}

func TestNestedWalk24Accesses(t *testing.T) {
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.BasePages})
	start, _ := vm.GuestAS().Mmap(1 << 20)
	if _, err := vm.Populate(start, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Force 4KB host backing to hit the canonical worst case.
	m2 := NewMachine(2<<30, simrand.New(3))
	m2.Host2MBBacking = false
	vm2, err := m2.AddVM(512<<20, osmm.Config{Policy: osmm.BasePages}, simrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	start2, _ := vm2.GuestAS().Mmap(1 << 20)
	vm2.Populate(start2, 1<<20)
	res := vm2.Walker().Walk(start2)
	if !res.Found {
		t.Fatal("nested walk missed")
	}
	// 4 guest levels x (4 host + 1 guest PTE) + 4 host for the final
	// translation = 24 (Sec 2).
	if len(res.Accesses) != 24 {
		t.Errorf("nested walk made %d accesses, want 24", len(res.Accesses))
	}
	if res.Translation.Size != addr.Page4K {
		t.Errorf("effective size = %v", res.Translation.Size)
	}
}

func TestEffectiveTranslationCorrect(t *testing.T) {
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.BasePages})
	start, _ := vm.GuestAS().Mmap(1 << 20)
	vm.Populate(start, 1<<20)
	va := start + 0x3456
	res := vm.Walker().Walk(va)
	if !res.Found {
		t.Fatal("walk missed")
	}
	// Cross-check: manual composition of guest and host lookups.
	gtr, ok := vm.GuestAS().PageTable().Lookup(va)
	if !ok {
		t.Fatal("guest lookup missed")
	}
	gpa := gtr.Translate(va)
	htr, ok := vm.NestedPT().Lookup(addr.V(gpa))
	if !ok {
		t.Fatal("host lookup missed")
	}
	want := htr.Translate(addr.V(gpa))
	if got := res.Translation.Translate(va); got != want {
		t.Errorf("effective PA = %v, want %v", got, want)
	}
}

func TestPageSplintering(t *testing.T) {
	// Guest allocates 2MB pages; host backs with 4KB only: effective
	// translations splinter to 4KB.
	m := NewMachine(2<<30, simrand.New(5))
	m.Host2MBBacking = false
	vm, err := m.AddVM(512<<20, osmm.Config{Policy: osmm.THS}, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	start, _ := vm.GuestAS().Mmap(8 << 20)
	vm.Populate(start, 8<<20)
	if vm.GuestAS().Stats().Bytes[addr.Page2M] == 0 {
		t.Fatal("guest did not allocate superpages")
	}
	res := vm.Walker().Walk(start)
	if !res.Found || res.Translation.Size != addr.Page4K {
		t.Errorf("effective translation = %v, want splintered 4KB", res.Translation)
	}
	_, fourK := vm.BackingCounts()
	if fourK == 0 {
		t.Error("no 4KB backings recorded")
	}
}

func TestEffectiveSuperpagesWhenBothDimensionsAgree(t *testing.T) {
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.THS})
	start, _ := vm.GuestAS().Mmap(16 << 20)
	vm.Populate(start, 16<<20)
	res := vm.Walker().Walk(start)
	if !res.Found || res.Translation.Size != addr.Page2M {
		t.Fatalf("effective translation = %v, want 2MB", res.Translation)
	}
	// A 2MB guest page on 2MB backing: guest walk 3 levels x (host...)
	// — strictly fewer accesses than the 24 worst case.
	if len(res.Accesses) >= 24 {
		t.Errorf("superpage nested walk made %d accesses", len(res.Accesses))
	}
	// Contiguous effective superpages appear in the line for coalescing.
	if len(res.Line) < 2 {
		t.Errorf("effective line has %d entries", len(res.Line))
	}
	two, _ := vm.BackingCounts()
	if two == 0 {
		t.Error("no 2MB backings recorded")
	}
}

func TestNestedWithMixTLBEndToEnd(t *testing.T) {
	// The integration the paper's Fig 14 virtualized bars rely on: a MIX
	// MMU over a nested walker, translating correctly and coalescing
	// effective superpages.
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.THS})
	start, _ := vm.GuestAS().Mmap(32 << 20)
	caches := cachesim.DefaultHierarchy()
	m, err := mmu.Build(mmu.DesignMix, vm.Walker(), nil, caches, vm.HandleFault)
	if err != nil {
		t.Fatal(err)
	}
	// Touch every 4KB region; every translation must match the manual
	// composition.
	for off := uint64(0); off < 32<<20; off += addr.Size4K {
		va := start + addr.V(off)
		r := m.Translate(tlb.Request{VA: va, Write: off%3 == 0})
		if r.Faulted {
			t.Fatalf("fault at %v", va)
		}
		gtr, ok := vm.GuestAS().PageTable().Lookup(va)
		if !ok {
			t.Fatalf("guest unmapped at %v", va)
		}
		htr, ok := vm.NestedPT().Lookup(addr.V(gtr.Translate(va)))
		if !ok {
			t.Fatalf("host unmapped at %v", va)
		}
		if want := htr.Translate(addr.V(gtr.Translate(va))); r.PA != want {
			t.Fatalf("PA mismatch at %v: got %v want %v", va, r.PA, want)
		}
	}
	st := m.Stats()
	if st.L1Hits == 0 || st.Walks == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
	// With 2MB effective pages coalescing in a MIX TLB, the vast
	// majority of accesses hit.
	if ratio := st.MissRatio(); ratio > 0.01 {
		t.Errorf("miss ratio %v too high for coalesced superpages", ratio)
	}
}

func TestDirtyPropagatesToBothDimensions(t *testing.T) {
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.BasePages})
	start, _ := vm.GuestAS().Mmap(1 << 20)
	vm.Populate(start, 1<<20)
	vm.Walker().Walk(start) // ensure backing
	if !vm.Walker().SetDirty(start) {
		t.Fatal("SetDirty failed")
	}
	gtr, _ := vm.GuestAS().PageTable().Lookup(start)
	if !gtr.Dirty {
		t.Error("guest PTE not dirty")
	}
	htr, _ := vm.NestedPT().Lookup(addr.V(gtr.Translate(start)))
	if !htr.Dirty {
		t.Error("host PTE not dirty")
	}
}

func TestGuestFaultPropagates(t *testing.T) {
	_, vm := newVM(t, 1<<30, 256<<20, osmm.Config{Policy: osmm.BasePages})
	res := vm.Walker().Walk(0xdeadbeef000)
	if res.Found {
		t.Error("walk of unmapped guest VA found a translation")
	}
	if vm.HandleFault(0xdeadbeef000, false) {
		t.Error("guest fault outside VMA succeeded")
	}
}

func TestConsolidationSplintersBackings(t *testing.T) {
	// Fill the host with VMs: later guests find the host unable to back
	// with 2MB pages once free memory tightens and fragments.
	host := NewMachine(1<<30, simrand.New(9))
	host.HostHog().ScatterFrac = 1          // hostile fragmentation
	host.HostHog().UnmovableFrac = 1        // compaction cannot rescue...
	host.HostHog().UnmovableScatterFrac = 1 // ...anywhere (fallback pollution)
	host.HostHog().MaxChunkOrder = 4
	host.HostHog().Run(0.35)
	var splintered bool
	for i := 0; i < 3; i++ {
		vm, err := host.AddVM(192<<20, osmm.Config{Policy: osmm.THS}, simrand.New(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		start, _ := vm.GuestAS().Mmap(160 << 20)
		if _, err := vm.Populate(start, 160<<20); err != nil {
			break // host exhausted: acceptable under consolidation
		}
		// Touch to force backing.
		for off := uint64(0); off < 160<<20; off += addr.Size2M {
			vm.Walker().Walk(start + addr.V(off))
		}
		_, fourK := vm.BackingCounts()
		if fourK > 0 {
			splintered = true
		}
	}
	if !splintered {
		t.Error("no backing ever splintered despite host pressure")
	}
}

func TestEffectiveContiguityReport(t *testing.T) {
	_, vm := newVM(t, 2<<30, 512<<20, osmm.Config{Policy: osmm.THS})
	start, _ := vm.GuestAS().Mmap(32 << 20)
	vm.Populate(start, 32<<20)
	for off := uint64(0); off < 32<<20; off += addr.Size2M {
		vm.Walker().Walk(start + addr.V(off))
	}
	rep := vm.EffectiveContiguity()
	if rep.Footprint[addr.Page2M] == 0 {
		t.Fatal("no effective 2MB pages")
	}
	if got := rep.AverageContiguity(addr.Page2M); got < 2 {
		t.Errorf("effective 2MB contiguity = %v", got)
	}
}
