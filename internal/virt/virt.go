// Package virt models virtualized address translation (Sec 2, 7.1-7.2):
// guest virtual addresses translate to guest physical addresses through
// the guest OS's page table, and guest physical addresses translate to
// system physical addresses through the hypervisor's nested page table.
//
// The two behaviours that make virtualization interesting for TLB design
// are reproduced faithfully:
//
//   - Two-dimensional page walks: with 4-level tables in both dimensions,
//     a nested walk costs up to 24 memory references instead of 4 — each
//     guest PTE access itself requires a host walk (Bhargava et al.).
//   - Page splintering: a guest superpage is only effective if the host
//     also backs that guest-physical range with a superpage. Under memory
//     pressure and consolidation the host falls back to 4KB backing, so
//     the hardware-visible translation degrades to the smaller size.
//
// TLBs cache the *effective* gVA→sPA translations, so every TLB design
// plugs in unchanged via the mmu.TranslationSource interface.
package virt

import (
	"errors"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/osmm"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
)

// Machine is a virtualized host.
type Machine struct {
	hostPhys *physmem.Buddy
	hostHog  *physmem.Memhog // host-level fragmentation + compaction
	vms      []*VM
	// Host2MBBacking lets the host back guest-physical memory with 2MB
	// pages when possible (default true). Disabling it models page
	// sharing / NUMA-migration configurations that splinter all backings
	// (Sec 7.1).
	Host2MBBacking bool
	// SplinterThreshold, when positive, makes the host back new guest
	// memory with 4KB pages once its free-memory fraction falls below the
	// threshold — the proactive large-page breaking that hypervisors do
	// under pressure to enable page sharing (Guo et al., VEE'15, which
	// the paper cites for exactly this effect). Zero disables it.
	SplinterThreshold float64
}

// NewMachine creates a host with the given physical memory.
func NewMachine(hostBytes uint64, rng *simrand.Source) *Machine {
	phys := physmem.NewBuddy(hostBytes)
	return &Machine{
		hostPhys:       phys,
		hostHog:        physmem.NewMemhog(phys, rng),
		Host2MBBacking: true,
	}
}

// HostPhys exposes the host allocator (for fragmentation experiments).
func (m *Machine) HostPhys() *physmem.Buddy { return m.hostPhys }

// HostHog exposes the host-level fragmenter/compactor.
func (m *Machine) HostHog() *physmem.Memhog { return m.hostHog }

// VMs lists the consolidated guests.
func (m *Machine) VMs() []*VM { return m.vms }

// VM is one guest: a guest-physical address space backed on demand by the
// host, a nested page table (EPT/NPT), and a guest OS instance.
type VM struct {
	machine   *Machine
	guestPhys *physmem.Buddy
	guestHog  *physmem.Memhog      // memhog running inside the VM (Fig 10)
	hostPT    *pagetable.PageTable // gPA -> sPA
	guestAS   *osmm.AddressSpace   // gVA -> gPA

	backed2M uint64 // host backings by size (diagnostics)
	backed4K uint64
}

// AddVM consolidates a guest with the given guest-physical size onto the
// machine. guestCfg selects the *guest* OS page-size policy; the guest's
// compactor is wired to its own in-VM memhog automatically.
func (m *Machine) AddVM(guestBytes uint64, guestCfg osmm.Config, rng *simrand.Source) (*VM, error) {
	guestPhys := physmem.NewBuddy(guestBytes)
	guestHog := physmem.NewMemhog(guestPhys, rng)
	if guestCfg.Compactor == nil {
		guestCfg.Compactor = guestHog
	}
	// The nested page table's own pages live in *host* memory.
	hostPT, err := pagetable.New(m.hostPhys)
	if err != nil {
		return nil, fmt.Errorf("virt: creating nested page table: %w", err)
	}
	guestAS, err := osmm.New(guestPhys, guestCfg)
	if err != nil {
		return nil, fmt.Errorf("virt: creating guest address space: %w", err)
	}
	vm := &VM{
		machine:   m,
		guestPhys: guestPhys,
		guestHog:  guestHog,
		hostPT:    hostPT,
		guestAS:   guestAS,
	}
	m.vms = append(m.vms, vm)
	return vm, nil
}

// GuestAS exposes the guest OS address space (for workloads and faults).
func (vm *VM) GuestAS() *osmm.AddressSpace { return vm.guestAS }

// GuestHog exposes the in-VM fragmenter.
func (vm *VM) GuestHog() *physmem.Memhog { return vm.guestHog }

// NestedPT exposes the gPA→sPA table (for contiguity scans of backings).
func (vm *VM) NestedPT() *pagetable.PageTable { return vm.hostPT }

// BackingCounts reports host backings created, by size.
func (vm *VM) BackingCounts() (twoMB, fourKB uint64) { return vm.backed2M, vm.backed4K }

// ErrHostMemory indicates host physical exhaustion while backing a guest.
var ErrHostMemory = errors.New("virt: host out of physical memory")

// ensureBacked guarantees the host maps the guest-physical page containing
// gpa, preferring 2MB backings (host THS with compaction), splintering to
// 4KB under fragmentation or configuration.
func (vm *VM) ensureBacked(gpa addr.P) error {
	if _, ok := vm.hostPT.Lookup(addr.V(gpa)); ok {
		return nil
	}
	m := vm.machine
	use2M := m.Host2MBBacking
	if m.SplinterThreshold > 0 {
		freeFrac := float64(m.hostPhys.FreeFrames()) / float64(m.hostPhys.TotalFrames())
		if freeFrac < m.SplinterThreshold {
			use2M = false
		}
	}
	if use2M {
		base := gpa.PageBase(addr.Page2M)
		if uint64(base)+addr.Size2M <= vm.guestPhys.TotalBytes() {
			spa, ok := m.hostPhys.AllocPage(addr.Page2M)
			if !ok {
				if frame, cok := m.hostHog.CompactFor(addr.Shift2M - addr.Shift4K); cok {
					spa, ok = addr.P(frame<<addr.Shift4K), true
				}
			}
			if ok {
				if err := vm.hostPT.Map(addr.V(base), spa, addr.Page2M, addr.PermRW|addr.PermUser); err == nil {
					vm.backed2M++
					return nil
				}
				m.hostPhys.FreePage(spa, addr.Page2M)
			}
		}
	}
	spa, ok := m.hostPhys.AllocPage(addr.Page4K)
	if !ok {
		return ErrHostMemory
	}
	if err := vm.hostPT.Map(addr.V(gpa.PageBase(addr.Page4K)), spa, addr.Page4K, addr.PermRW|addr.PermUser); err != nil {
		m.hostPhys.FreePage(spa, addr.Page4K)
		return err
	}
	vm.backed4K++
	return nil
}

// EnsureBacked demand-backs the guest-physical page containing gpa in the
// host (exported for experiments that model guest activity — e.g. in-VM
// memhog — whose memory the hypervisor must back).
func (vm *VM) EnsureBacked(gpa addr.P) error { return vm.ensureBacked(gpa) }

// NestedWalker implements mmu.TranslationSource for a VM, performing
// two-dimensional page walks.
type NestedWalker struct {
	vm *VM
}

// Walker returns the VM's nested walker.
func (vm *VM) Walker() *NestedWalker { return &NestedWalker{vm: vm} }

// hostResolve translates a guest-physical address to system-physical,
// demand-backing it, and appends the host walk's accesses.
func (w *NestedWalker) hostResolve(gpa addr.P, accesses *[]addr.P) (pagetable.Translation, bool) {
	if err := w.vm.ensureBacked(gpa); err != nil {
		return pagetable.Translation{}, false
	}
	hres := w.vm.hostPT.Walk(addr.V(gpa))
	*accesses = append(*accesses, hres.Accesses...)
	return hres.Translation, hres.Found
}

// Walk implements mmu.TranslationSource: a 2D walk over guest and host
// tables. With 4-level tables and 4KB pages in both dimensions this
// produces the canonical 24 memory references.
func (w *NestedWalker) Walk(va addr.V) pagetable.WalkResult {
	var out pagetable.WalkResult
	gres := w.vm.guestAS.PageTable().Walk(va)
	// Each guest PTE reference is a guest-physical access that the
	// hardware must itself translate via the host dimension.
	for _, gpa := range gres.Accesses {
		htr, ok := w.hostResolve(gpa, &out.Accesses)
		if !ok {
			return out
		}
		out.Accesses = append(out.Accesses, htr.Translate(addr.V(gpa)))
	}
	if !gres.Found {
		return out // guest page fault
	}
	// Resolve the final guest physical address through the host.
	gpa := gres.Translation.Translate(va)
	htr, ok := w.hostResolve(gpa, &out.Accesses)
	if !ok {
		return out
	}
	eff, ok := effective(va, gres.Translation, htr)
	if !ok {
		return out
	}
	out.Found = true
	out.Translation = eff
	out.Line = w.effectiveLine(eff)
	return out
}

// effective computes the gVA→sPA translation the TLB may cache for va:
// its size is the smaller of the guest page and the host backing (page
// splintering), over which both mappings are linear.
func effective(va addr.V, guest, host pagetable.Translation) (pagetable.Translation, bool) {
	size := guest.Size
	if host.Size < size {
		size = host.Size
	}
	base := va.PageBase(size)
	gpa := guest.Translate(base)
	spa := host.Translate(addr.V(gpa))
	perm := guest.Perm & host.Perm
	return pagetable.Translation{
		VA: base, PA: spa, Size: size, Perm: perm,
		Accessed: true,
		Dirty:    guest.Dirty && host.Dirty,
	}, perm&addr.PermRead != 0
}

// effectiveLine reconstructs the 8-translation PTE cache-line window
// around tr in effective terms: the adjacent effective-size pages whose
// guest and host mappings both exist, resolve to the same effective size,
// and carry the same permissions. This is what the coalescing logic can
// observe during a nested walk. (Resolutions here are architectural
// lookups, not extra memory references: the 2D walker already fetched
// these lines.)
func (w *NestedWalker) effectiveLine(tr pagetable.Translation) []pagetable.Translation {
	pn := tr.VA.PageNum(tr.Size)
	lineStart := pn &^ (addr.PTEsPerCacheLine - 1)
	out := make([]pagetable.Translation, 0, addr.PTEsPerCacheLine)
	for i := uint64(0); i < addr.PTEsPerCacheLine; i++ {
		nva := addr.V((lineStart + i) << tr.Size.Shift())
		if nva == tr.VA {
			out = append(out, tr)
			continue
		}
		gtr, ok := w.vm.guestAS.PageTable().Lookup(nva)
		if !ok {
			continue
		}
		gpa := gtr.Translate(nva)
		htr, ok := w.vm.hostPT.Lookup(addr.V(gpa))
		if !ok {
			continue
		}
		eff, ok := effective(nva, gtr, htr)
		if !ok || eff.Size != tr.Size || eff.Perm != tr.Perm {
			continue
		}
		// Only translations with their accessed bit set may be
		// opportunistically coalesced; mirror the native walker's
		// behaviour by reporting the guest A bit.
		eff.Accessed = gtr.Accessed
		out = append(out, eff)
	}
	return out
}

// SetDirty implements mmu.TranslationSource: the dirty micro-op updates
// the guest PTE and the host backing's PTE.
func (w *NestedWalker) SetDirty(va addr.V) bool {
	gtr, ok := w.vm.guestAS.PageTable().Lookup(va)
	if !ok {
		return false
	}
	w.vm.guestAS.PageTable().SetDirty(va)
	return w.vm.hostPT.SetDirty(addr.V(gtr.Translate(va)))
}

// HandleFault adapts the guest OS fault handler to mmu.FaultHandler. The
// freshly mapped guest page is immediately backed in the host: a real
// guest's first-touch page zeroing raises the EPT violations right after
// the guest fault, so backing and guest mapping appear together.
func (vm *VM) HandleFault(va addr.V, write bool) bool {
	if !vm.guestAS.HandleFault(va, write) {
		return false
	}
	gtr, ok := vm.guestAS.PageTable().Lookup(va)
	if !ok {
		return false
	}
	step := uint64(addr.Size2M)
	if gtr.Size == addr.Page4K {
		step = addr.Size4K
	}
	for off := uint64(0); off < gtr.Size.Bytes(); off += step {
		if err := vm.ensureBacked(gtr.PA + addr.P(off)); err != nil {
			return false
		}
	}
	return true
}

// Populate faults in a guest range in ascending order (see osmm.Populate),
// backing each new guest page in the host as a real first-touch would.
func (vm *VM) Populate(start addr.V, length uint64) (uint64, error) {
	var mapped uint64
	end := uint64(start) + length
	for va := start; uint64(va) < end; {
		if !vm.HandleFault(va, false) {
			return mapped, osmm.ErrNoMemory
		}
		tr, ok := vm.guestAS.PageTable().Lookup(va)
		if !ok {
			return mapped, osmm.ErrNoMemory
		}
		step := tr.Size.Bytes() - va.Offset(tr.Size)
		mapped += step
		va += addr.V(step)
	}
	return mapped, nil
}

// EffectiveContiguity scans the guest page table and reports the
// contiguity of *effective* translations (post-splintering), which is
// what a virtualized TLB can actually exploit. It returns a report in the
// same form as osmm.ScanContiguity.
func (vm *VM) EffectiveContiguity() *osmm.ContiguityReport {
	// Build an ephemeral page table of effective translations, reusing
	// the scan machinery. Table pages come from a throwaway allocator.
	shadow, err := pagetable.New(physmem.NewBuddy(1 << 30))
	if err != nil {
		return osmm.ScanContiguity(vm.guestAS.PageTable())
	}
	vm.guestAS.PageTable().ForEach(func(gtr pagetable.Translation) bool {
		// Walk the guest page in effective-size steps.
		for off := uint64(0); off < gtr.Size.Bytes(); {
			va := gtr.VA + addr.V(off)
			gpa := gtr.Translate(va)
			htr, ok := vm.hostPT.Lookup(addr.V(gpa))
			if !ok {
				off += addr.Size4K
				continue
			}
			eff, ok := effective(va, gtr, htr)
			if !ok {
				off += addr.Size4K
				continue
			}
			_ = shadow.Map(eff.VA, eff.PA, eff.Size, eff.Perm)
			off += eff.Size.Bytes() - va.Offset(eff.Size)
		}
		return true
	})
	return osmm.ScanContiguity(shadow)
}
