package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"mixtlb/internal/journal"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
)

// This file is the engine's failure-handling vocabulary: the typed record
// of a cell that exhausted its retries (FailedCell / FailureLog), the
// watchdog's verdict on a cell that stopped making progress
// (StuckCellError), the opt-out wrapper for errors that must never be
// retried (PermanentError), and the deterministic retry schedule
// (RetryDelay). The engine's failure taxonomy is two-valued: every cell
// error is presumed transient (worth retrying — OOM pressure, injected
// chaos, a stuck simulation) unless wrapped in Permanent; whatever is
// still failing after MaxRetries attempts is recorded as a FailedCell and
// — under FailSoft — rendered as an explicit FAILED marker row instead of
// aborting the grid.

// FailedCell records one grid cell that exhausted its retry budget.
type FailedCell struct {
	Experiment string
	Cell       string
	Seed       uint64 // the cell's derived seed, for one-cell reproduction
	Attempts   int    // total attempts made (1 + retries)
	Err        error  // the final attempt's error
}

// String renders the table marker for a failed cell. It contains no commas
// or quotes, so it survives CSV output as a single well-formed field.
func (f FailedCell) String() string {
	return fmt.Sprintf("FAILED(cell=%s seed=%d attempts=%d)", f.Cell, f.Seed, f.Attempts)
}

// FailureLog accumulates FailedCell records across a run. All methods are
// nil-safe and safe for concurrent use (the disabled state is a nil log,
// mirroring BenchLog).
type FailureLog struct {
	mu    sync.Mutex
	cells []FailedCell
}

// Record appends one failed cell.
func (l *FailureLog) Record(fc FailedCell) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.cells = append(l.cells, fc)
	l.mu.Unlock()
}

// Count reports how many cells have failed so far.
func (l *FailureLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cells)
}

// All returns every failure sorted by (experiment, cell) — canonical
// order, independent of which worker recorded first.
func (l *FailureLog) All() []FailedCell {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]FailedCell(nil), l.cells...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// ForExperiment returns one experiment's failures sorted by cell name.
func (l *FailureLog) ForExperiment(experiment string) []FailedCell {
	var out []FailedCell
	for _, fc := range l.All() {
		if fc.Experiment == experiment {
			out = append(out, fc)
		}
	}
	return out
}

// StuckCellError is the watchdog's verdict: the cell exceeded its
// progress deadline and was canceled (and, if it ignored the
// cancellation, abandoned). It is transient — a stuck cell is requeued
// like any other retryable failure.
type StuckCellError struct {
	Experiment string
	Cell       string
	Seed       uint64
	Deadline   time.Duration
}

func (e *StuckCellError) Error() string {
	return fmt.Sprintf("cell %q made no progress within %v (watchdog canceled it; cell seed %d)",
		e.Cell, e.Deadline, e.Seed)
}

// PermanentError marks an error as not worth retrying: the same inputs
// will fail the same way (validation failures, impossible configurations).
// The engine fails such a cell on its first attempt.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so the engine will not retry it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// isPermanent walks the Unwrap chain looking for a *PermanentError.
func isPermanent(err error) bool {
	for err != nil {
		if _, ok := err.(*PermanentError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Default retry schedule bounds (overridable per run via Scale).
const (
	defaultRetryBackoff = 250 * time.Millisecond
	maxRetryBackoff     = 10 * time.Second
)

// RetryDelay computes the backoff before retry `attempt` (1-based) of a
// cell: capped exponential doubling of base, scaled by a jitter factor in
// [0.5, 1.0) drawn from a stream split off the cell's seed and the
// attempt number. The schedule is a pure function of (cellSeed, attempt,
// base) — deterministic under test, decorrelated across cells in a grid
// so requeued cells do not retry in lockstep.
func RetryDelay(cellSeed uint64, attempt int, base time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base
	for i := 1; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	rng := simrand.New(simrand.SplitSeed(cellSeed, "retry", strconv.Itoa(attempt)))
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// recordRows converts a cell's rows to the journal's wire shape.
func recordRows(rows []Row) [][]interface{} {
	out := make([][]interface{}, len(rows))
	for i, r := range rows {
		out[i] = []interface{}(r)
	}
	return out
}

// rowsFromRecord converts a replayed journal record back to cell rows.
func rowsFromRecord(rec journal.Record) []Row {
	rows := make([]Row, len(rec.Rows))
	for i, r := range rec.Rows {
		rows[i] = Row(r)
	}
	return rows
}

// withFailureRows appends one FAILED marker row per failed cell of the
// experiment to the table (sorted by cell name), so a fail-soft run's
// output names exactly which cells are missing and how to reproduce them.
func withFailureRows(t *stats.Table, log *FailureLog, experiment string) *stats.Table {
	if t == nil || log == nil {
		return t
	}
	for _, fc := range log.ForExperiment(experiment) {
		t.AddRow(fc.String())
	}
	return t
}
