package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// xisaISAs is the descriptor sweep of the cross-ISA study: the x86-64
// baseline, its 5-level LA57 extension, RISC-V Sv48 with the SVNAPOT
// 16-page range encoding, and an ARM64-style contiguous-hint descriptor.
// All four share the 4KB/2MB/1GB ladder, so differences isolate radix
// depth (walk length) and hardware contiguity encodings (coalescing
// feed), not page-size geometry.
var xisaISAs = []string{"x86-64", "x86-64-la57", "sv48-napot", "arm64-contig"}

// xisaDesigns are the headline designs the sweep compares: the split
// baseline with and without paging-structure caches, MIX with and without
// small-page COLT coalescing, the drop-in MIX-as-L2 upgrade, and the
// cache-backed victim hierarchy.
var xisaDesigns = []string{
	string(mmu.DesignSplit),
	string(mmu.DesignSplitPWC),
	string(mmu.DesignMix),
	string(mmu.DesignMixColt),
	string(mmu.DesignMixAsL2),
	string(mmu.DesignVictima),
}

// CrossISAStudy runs the headline designs across translation
// architectures: for each (ISA, workload) cell, the OS environment is
// rebuilt on a page table implementing that descriptor (deeper radixes
// walk more levels; NAPOT/contiguous-hint leaves extend the walker's
// line to the whole 16-page block) and every design measures the same
// reference stream. Reported per row: L1 hit rate, walk frequency,
// per-walk PTE references (where LA57's fifth level and the PWC's skips
// show up), the fraction of walks served from a contiguity-encoded leaf,
// and cycles per access. One cell per (ISA, workload).
func CrossISAStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Cross-ISA study: headline designs over descriptor radix depth and contiguity encodings",
		Columns: []string{"isa", "design", "workload", "l1-hit%",
			"walks-per-1k", "refs-per-walk", "contig-walk%", "cyc/acc"},
	}
	reg := s.registry()
	specs := make([]mmu.DesignSpec, len(xisaDesigns))
	for i, d := range xisaDesigns {
		spec, ok := reg.Lookup(d)
		if !ok {
			return nil, &mmu.UnknownDesignError{Name: d, Valid: reg.Names()}
		}
		specs[i] = spec
	}
	var cells []Cell
	for _, isaName := range xisaISAs {
		for _, wl := range s.workloads() {
			isaName, wl := isaName, wl.Name
			cells = append(cells, Cell{
				Name: isaName + "/" + wl,
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					cs.ISA = isaName // the whole cell lives on this descriptor
					env, err := newNative(cs, osmm.THS, hierarchyMemhogFrac, cs.Seed)
					if err != nil {
						return nil, err
					}
					var rows []Row
					for _, ds := range specs {
						caches := cachesim.DefaultHierarchy()
						m, err := ds.Build(env.as.PageTable(), env.as.PageTable(), caches, env.as.HandleFault)
						if err != nil {
							return nil, err
						}
						if cs.Telemetry != nil {
							m.AttachTelemetry(cs.Telemetry.With("workload", wl, "isa", isaName))
						}
						stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
						st, err := runStream(ctx, cs, m, stream)
						if err != nil {
							return nil, fmt.Errorf("%s/%s/%s (seed %d): %w", isaName, wl, ds.Name, cs.Seed, err)
						}
						if cs.Telemetry != nil {
							m.FlushTelemetry()
							env.flushTelemetry()
						}
						acc := float64(st.Accesses)
						if acc == 0 {
							acc = 1
						}
						refsPerWalk := 0.0
						if st.Walks > 0 {
							refsPerWalk = float64(st.WalkRefs) / float64(st.Walks)
						}
						contigWalk := 0.0
						if st.Walks > 0 {
							contigWalk = 100 * float64(st.ContigWalks) / float64(st.Walks)
						}
						rows = append(rows, Row{isaName, ds.Name, wl,
							100 * float64(st.L1Hits) / acc,
							1000 * float64(st.Walks) / acc,
							refsPerWalk,
							contigWalk,
							st.CyclesPerAccess()})
					}
					return rows, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "xisa", t, cells)
	AppendRows(t, results)
	return t, err
}
