// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 7) from the simulator: OS page-allocation
// characterization (Figures 9-13), performance comparisons against split
// and multi-indexing TLBs (Figures 1, 14, 15), energy studies (Figures
// 16, 17), COLT combinations (Figure 18), and the ablations the design
// discussion calls out (superpage index bits, set-count scaling,
// duplicate handling).
//
// Every experiment takes a Scale so the same code serves the full CLI
// runs and the fast `go test -bench` harness; absolute numbers shift with
// scale but the qualitative shapes (who wins, by roughly what factor) are
// stable.
package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/core"
	"mixtlb/internal/isa"
	"mixtlb/internal/journal"
	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/telemetry"
	"mixtlb/internal/tlb"
	"mixtlb/internal/virt"
	"mixtlb/internal/workload"
)

// Scale sizes an experiment run.
type Scale struct {
	// MemoryBytes is system physical memory (the paper's machine: 80GB).
	MemoryBytes uint64
	// FootprintBytes is the workload footprint (the paper: ~80GB).
	FootprintBytes uint64
	// WarmupRefs and MeasureRefs bound each simulation.
	WarmupRefs  uint64
	MeasureRefs uint64
	// GPUCores sizes the GPU model.
	GPUCores int
	// Workloads optionally restricts the CPU workload set (nil = all).
	Workloads []string
	// Designs optionally overrides the design set of experiments that
	// iterate the registry (currently "hierarchy"; nil = their defaults).
	Designs []string
	// Registry resolves design names for registry-driven experiments.
	// Nil falls back to mmu.DefaultRegistry() (the builtin designs); the
	// CLI installs a registry extended with -design-file specs.
	Registry *mmu.Registry
	// ISA names the translation architecture every native environment's
	// page table implements (an isa.Lookup name; empty = default x86-64,
	// reproducing pre-descriptor behaviour bit-for-bit). The xisa
	// experiment ignores it and sweeps its own descriptor set.
	ISA string
	// Seed drives all randomness.
	Seed uint64
	// Chaos configures fault injection for the chaos experiment (zero
	// rates disable injection entirely).
	Chaos chaos.Rates
	// Progress, when set (by RunSafe), receives partial tables as rows
	// complete, so timeouts and panics still report finished work.
	Progress *TablePublisher
	// Jobs bounds the worker pool each experiment's cell grid runs on
	// (0 = GOMAXPROCS). Results are byte-identical at any value.
	Jobs int
	// Cell, when non-empty, restricts the run to grid cells whose name
	// contains it — the reproduce-one-cell knob from failure lines.
	Cell string
	// Bench, when set, receives per-cell wall-clock timings.
	Bench *BenchLog
	// Telemetry, when set, is the run's observability sink: the engine
	// scopes it per cell (exp/cell labels, worker trace tid) and the
	// simulation layers export metrics and spans into it. Nil (the
	// default) disables all instrumentation at zero cost. Simulation
	// results never depend on it.
	Telemetry *telemetry.Collector
	// ProgressFn, when set, receives live engine progress (cells
	// done/total, ETA) as cells complete. Calls are serialized. Like
	// Telemetry, it observes the run without influencing it.
	ProgressFn func(ProgressEvent)
	// Journal, when set, is the run's crash-safe checkpoint log: the
	// engine replays cells already recorded there (skipping their
	// simulation) and appends each newly completed cell. Results are
	// byte-identical to an uninterrupted run because replayed rows carry
	// their exact values and seeds are pure functions of cell identity.
	// Nil disables checkpointing at zero cost.
	Journal *journal.Journal
	// MaxRetries is how many times the engine re-runs a cell that fails
	// with a transient error (0 = fail on first error). Each retry waits
	// a capped, seeded exponential backoff — see RetryDelay.
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry
	// (0 = defaultRetryBackoff). Tests set it to ~1ms.
	RetryBackoff time.Duration
	// CellDeadline, when positive, arms a per-cell watchdog: a cell
	// exceeding it is canceled (abandoned if it ignores cancellation),
	// reported as a *StuckCellError, and requeued under the retry policy.
	CellDeadline time.Duration
	// FailSoft, when true, turns cells that exhaust their retries into
	// FailedCell records (and FAILED table markers) instead of aborting
	// the grid. The failed cell's result slot stays nil, exactly like a
	// cell excluded by -cell filtering.
	FailSoft bool
	// Failures, when set, collects the run's FailedCell records (the
	// CLI's exit code and the table's FAILED markers read it). Nil-safe.
	Failures *FailureLog
	// CellFault, when set, is consulted before each cell attempt; a
	// non-nil return fails the attempt with that error. It exists for
	// fault injection (tests, -inject-cell-failure) and observes only the
	// cell's identity, never simulation state.
	CellFault func(experiment, cell string) error
	// LedgerAudit, when true, attaches a cycle-attribution ledger to
	// every MMU driven through runStream and fails the cell unless
	// attributed cycles sum exactly to the MMU's total (ledger.Audit) and
	// the walk/victim books agree with the Stats counters the performance
	// model consumes (perfmodel.CrossCheck). Like Telemetry it is an
	// observer: tables are byte-identical with it on or off, so it is
	// excluded from Fingerprint.
	LedgerAudit bool
	// TailK, when positive, arms a bounded top-K tail flight recorder on
	// every runStream MMU: the K slowest translations of each cell's
	// measurement interval (VA, page size, serving level, walk depth,
	// charge trail) export as "tail" trace events through Telemetry.
	// Clamped to ledger.MaxTailK; an observer like LedgerAudit.
	TailK int
}

// Fingerprint summarizes every Scale field that determines simulation
// results, plus the journal format version. A checkpoint journal is
// pinned to this string: resuming under a different memory size, seed,
// workload set, or chaos configuration is refused instead of silently
// mixing incompatible cells. Scheduling-only knobs (Jobs, Cell) and
// observers (Telemetry, Progress, Bench, ...) are deliberately excluded —
// they never change results.
func (s Scale) Fingerprint() string {
	isaName := s.ISA
	if isaName == "" {
		isaName = isa.DefaultName // "" and the explicit default are the same run
	}
	return fmt.Sprintf("mixtlb-journal-v%d mem=%d foot=%d warmup=%d measure=%d gpu=%d seed=%d workloads=[%s] designs=[%s] isa=%s chaos=%+v",
		journal.Version, s.MemoryBytes, s.FootprintBytes, s.WarmupRefs, s.MeasureRefs,
		s.GPUCores, s.Seed, strings.Join(s.Workloads, ","), strings.Join(s.Designs, ","), isaName, s.Chaos)
}

// DefaultScale is the CLI configuration: footprints far beyond TLB reach
// while keeping each figure's regeneration in minutes on a laptop.
func DefaultScale() Scale {
	return Scale{
		MemoryBytes:    8 << 30,
		FootprintBytes: 2 << 30,
		WarmupRefs:     300_000,
		MeasureRefs:    700_000,
		GPUCores:       8,
		Seed:           42,
		Chaos:          chaos.DefaultRates(),
	}
}

// QuickScale keeps everything small enough for unit tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		MemoryBytes:    1 << 30,
		FootprintBytes: 256 << 20,
		WarmupRefs:     30_000,
		MeasureRefs:    60_000,
		GPUCores:       4,
		Workloads:      []string{"mcf", "gups", "memcached"},
		Seed:           42,
		Chaos:          chaos.DefaultRates(),
	}
}

// registry resolves the scale's design registry.
func (s Scale) registry() *mmu.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return mmu.DefaultRegistry()
}

// workloads resolves the scale's workload set.
func (s Scale) workloads() []workload.Spec {
	all := workload.Catalog()
	if len(s.Workloads) == 0 {
		return all
	}
	var out []workload.Spec
	for _, name := range s.Workloads {
		for _, spec := range all {
			if spec.Name == name {
				out = append(out, spec)
			}
		}
	}
	return out
}

// nativeEnv is one native-CPU simulation environment: physical memory, an
// OS address space with a chosen page-size policy, an optional memhog.
type nativeEnv struct {
	phys *physmem.Buddy
	hog  *physmem.Memhog
	as   *osmm.AddressSpace
	base addr.V
	fp   uint64 // footprint actually mapped (capped under memory pressure)

	// telFlushed makes flushTelemetry idempotent: an environment is often
	// measured under several designs, but its OS/buddy/contiguity snapshot
	// must export exactly once.
	telFlushed bool
}

// flushTelemetry exports the environment's OS-layer snapshot (allocation
// counters, buddy fragmentation, contiguity histograms) at most once.
func (e *nativeEnv) flushTelemetry() {
	if e.telFlushed {
		return
	}
	e.telFlushed = true
	e.as.FlushTelemetry()
}

// newNative builds an environment: memhog fragments first (background
// load), then the address space is created (reserving hugetlbfs pools
// under that fragmentation) and the footprint is faulted in ascending
// order.
func newNative(s Scale, policy osmm.Policy, memhogFrac float64, seed uint64) (*nativeEnv, error) {
	phys := physmem.NewBuddy(s.MemoryBytes)
	hog := physmem.NewMemhog(phys, simrand.New(seed^0x9e37))
	// Heavy background load does not just consume memory: on long-loaded
	// systems, migratetype fallbacks let unmovable allocations pollute
	// movable pageblocks, which is what ultimately defeats compaction and
	// pushes the OS into the mixed / mostly-small-pages regimes of Fig 9.
	if memhogFrac >= 0.5 {
		hog.UnmovableFrac = 0.25 + (memhogFrac-0.4)*1.75
		if hog.UnmovableFrac > 0.95 {
			hog.UnmovableFrac = 0.95
		}
		hog.UnmovableScatterFrac = (memhogFrac - 0.4) * 4
		if hog.UnmovableScatterFrac > 1 {
			hog.UnmovableScatterFrac = 1
		}
	}
	if memhogFrac > 0 {
		hog.Run(memhogFrac)
	}
	// The workload takes whatever memory the hog left over (the paper's
	// machines run footprints the size of memory; this simulator cannot
	// swap, so populate stops gracefully at exhaustion and the stream
	// runs over what was mapped).
	fp := s.FootprintBytes
	if free := phys.FreeFrames() * addr.Size4K * 97 / 100; fp > free {
		fp = addr.AlignedDown(free, addr.Size2M)
	}
	cfg := osmm.Config{Policy: policy, Compactor: hog, ISA: s.ISA}
	switch policy {
	case osmm.Hugetlbfs2M, osmm.Hugetlbfs1G:
		cfg.PoolBytes = fp
	}
	as, err := osmm.New(phys, cfg)
	if err != nil {
		return nil, err
	}
	if s.Telemetry != nil {
		// Attach before Populate so demand-fault map counts are captured.
		as.AttachTelemetry(s.Telemetry)
		as.PageTable().AttachTelemetry(s.Telemetry)
	}
	base, err := as.Mmap(fp)
	if err != nil {
		return nil, err
	}
	mapped, err := as.Populate(base, fp)
	if err != nil {
		if mapped < 8*addr.Size2M {
			return nil, fmt.Errorf("populate: %w (only %d bytes fit)", err, mapped)
		}
		fp = addr.AlignedDown(mapped, addr.Size2M) // memory exhausted: run over what fit
	}
	return &nativeEnv{phys: phys, hog: hog, as: as, base: base, fp: fp}, nil
}

// buildMMU constructs a design's MMU over the environment with a fresh
// cache hierarchy.
func (e *nativeEnv) buildMMU(d mmu.Design) (*mmu.MMU, *cachesim.Hierarchy, error) {
	caches := cachesim.DefaultHierarchy()
	m, err := mmu.Build(d, e.as.PageTable(), e.as.PageTable(), caches, e.as.HandleFault)
	if err != nil {
		return nil, nil, err
	}
	return m, caches, nil
}

// mixMMU assembles a two-level MIX MMU with explicit level configs over
// the native environment.
func mixMMU(name string, l1cfg, l2cfg core.Config, env *nativeEnv, caches *cachesim.Hierarchy) (*mmu.MMU, error) {
	l1, err := core.New(l1cfg)
	if err != nil {
		return nil, err
	}
	l2, err := core.New(l2cfg)
	if err != nil {
		return nil, err
	}
	return mmu.New(mmu.Config{Name: name, Levels: mmu.L(l1, l2)},
		env.as.PageTable(), caches, env.as.HandleFault)
}

// ctxCheckStride is how many refs a stream loop simulates between
// cancellation checks: frequent enough that cancel latency stays in the
// low milliseconds, rare enough to be free.
const ctxCheckStride = 8192

// translateBatch is the chunk size of the batched simulation loop: large
// enough to amortize interface dispatch and the batch-call overhead, small
// enough that the three scratch arrays stay cache-resident. It divides
// ctxCheckStride so cancellation checks land on the same reference indices
// as the scalar loop did.
const translateBatch = 512

// runStream drives refs through an MMU: warmup, reset, measure. References
// are generated and translated in chunks (workload.FillBatch feeding
// mmu.TranslateBatch), which produces bit-identical statistics to the
// scalar loop while paying per-chunk instead of per-reference dispatch.
// The context is a cancellation checkpoint — a canceled grid stops
// mid-stream rather than finishing a multi-second simulation whose result
// will be discarded.
//
// When the scale requests attribution (LedgerAudit or TailK) and the
// caller has not already wired a ledger, one is attached before warmup;
// after measurement the conservation audit runs and the tail recorder
// flushes. Both observe without influencing: st is read before any of it.
func runStream(ctx context.Context, cs Scale, m *mmu.MMU, stream workload.Stream) (mmu.Stats, error) {
	warmup, measure := cs.WarmupRefs, cs.MeasureRefs
	led := m.Ledger()
	if led == nil && (cs.LedgerAudit || cs.TailK > 0) {
		led = ledger.New(cs.TailK)
		m.AttachLedger(led)
	}
	var (
		refs [translateBatch]workload.Ref
		reqs [translateBatch]tlb.Request
		out  [translateBatch]mmu.Result
	)
	run := func(total uint64, faultFmt string) error {
		for done := uint64(0); done < total; {
			if done%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			n := uint64(len(refs))
			if rem := total - done; rem < n {
				n = rem
			}
			workload.FillBatch(stream, refs[:n])
			for i := uint64(0); i < n; i++ {
				reqs[i] = tlb.Request{VA: refs[i].VA, Write: refs[i].Write, PC: refs[i].PC}
			}
			k := m.TranslateBatch(reqs[:n], out[:n])
			if k > 0 && out[k-1].Faulted {
				return fmt.Errorf(faultFmt, refs[k-1].VA)
			}
			done += n
		}
		return nil
	}
	if err := run(warmup, "fault at %v during warmup"); err != nil {
		return mmu.Stats{}, err
	}
	m.ResetStats()
	if err := run(measure, "fault at %v"); err != nil {
		return mmu.Stats{}, err
	}
	st := m.Stats()
	if led != nil {
		if err := led.Audit(st.Cycles); err != nil {
			return mmu.Stats{}, fmt.Errorf("%s: %w", m.Name(), err)
		}
		if err := perfmodel.CrossCheck(st, led); err != nil {
			return mmu.Stats{}, fmt.Errorf("%s: %w", m.Name(), err)
		}
		flushTail(cs, m, led)
	}
	return st, nil
}

// flushTail exports a cell's K slowest translations as "tail" instant
// trace events: rank order, simulated-cycle stamp, and the merged charge
// trail. The records surface in the telemetry JSONL export and the
// /debug/tail endpoints; they never touch tables or goldens.
func flushTail(cs Scale, m *mmu.MMU, led *ledger.Ledger) {
	if cs.Telemetry == nil {
		return
	}
	for i, r := range led.Top() {
		served := "walk"
		switch {
		case r.Faulted:
			served = "fault"
		case r.HitLevel >= 0:
			served = fmt.Sprintf("L%d", r.HitLevel+1)
		}
		cs.Telemetry.Instant("tail", "slow_translation", r.Cycles,
			"design", m.Name(),
			"rank", strconv.Itoa(i),
			"va", fmt.Sprintf("0x%x", r.VA),
			"size", r.Size.String(),
			"served", served,
			"walk_refs", strconv.Itoa(int(r.WalkRefs)),
			"retries", strconv.Itoa(int(r.Retries)),
			"seq", strconv.FormatUint(r.Seq, 10),
			"trail", ledger.TrailString(r.Trail()))
	}
}

// measureNative runs one workload on one design in an environment,
// returning functional stats and the runtime estimate.
func measureNative(ctx context.Context, s Scale, env *nativeEnv, spec workload.Spec, d mmu.Design) (mmu.Stats, perfmodel.Estimate, *cachesim.Hierarchy, error) {
	m, caches, err := env.buildMMU(d)
	if err != nil {
		return mmu.Stats{}, perfmodel.Estimate{}, nil, err
	}
	if s.Telemetry != nil {
		m.AttachTelemetry(s.Telemetry.With("workload", spec.Name))
	}
	stream := spec.Build(env.base, env.fp, simrand.New(s.Seed))
	st, err := runStream(ctx, s, m, stream)
	if err != nil {
		return mmu.Stats{}, perfmodel.Estimate{}, nil, fmt.Errorf("%s/%s (seed %d): %w", spec.Name, d, s.Seed, err)
	}
	if s.Telemetry != nil {
		m.FlushTelemetry()
		env.flushTelemetry()
	}
	est := perfmodel.Default(spec.BaseCPI, spec.RefsPerInstr).Runtime(st)
	return st, est, caches, nil
}

// vmEnv is a consolidated virtualized environment.
type vmEnv struct {
	machine *virt.Machine
	vms     []*virt.VM
	bases   []addr.V
	fp      uint64
}

// newVirt consolidates `vms` guests on one host, each running memhog at
// guestHogFrac inside the VM (the Fig 10 methodology), with THS guests.
func newVirt(s Scale, vms int, guestHogFrac float64, seed uint64) (*vmEnv, error) {
	m := virt.NewMachine(s.MemoryBytes, simrand.New(seed^0x51))
	env := &vmEnv{machine: m}
	// Guests split the host memory as in Sec 7.1 (8 x 10GB on 80GB).
	guestBytes := s.MemoryBytes / uint64(vms)
	env.fp = guestBytes / 2
	for i := 0; i < vms; i++ {
		vm, err := m.AddVM(guestBytes, osmm.Config{Policy: osmm.THS}, simrand.New(seed+uint64(i)))
		if err != nil {
			return nil, err
		}
		if guestHogFrac > 0 {
			vm.GuestHog().Run(guestHogFrac)
		}
		base, err := vm.GuestAS().Mmap(env.fp)
		if err != nil {
			return nil, err
		}
		if _, err := vm.Populate(base, env.fp); err != nil {
			return nil, fmt.Errorf("VM %d populate: %w", i, err)
		}
		env.vms = append(env.vms, vm)
		env.bases = append(env.bases, base)
	}
	return env, nil
}

// measureVirt runs a workload inside VM 0 of the environment on a design.
func measureVirt(ctx context.Context, s Scale, env *vmEnv, spec workload.Spec, d mmu.Design) (mmu.Stats, perfmodel.Estimate, error) {
	vm := env.vms[0]
	caches := cachesim.DefaultHierarchy()
	m, err := mmu.Build(d, vm.Walker(), nil, caches, vm.HandleFault)
	if err != nil {
		return mmu.Stats{}, perfmodel.Estimate{}, err
	}
	if s.Telemetry != nil {
		m.AttachTelemetry(s.Telemetry.With("workload", spec.Name, "env", "virt"))
	}
	stream := spec.Build(env.bases[0], env.fp, simrand.New(s.Seed))
	st, err := runStream(ctx, s, m, stream)
	if err != nil {
		return mmu.Stats{}, perfmodel.Estimate{}, fmt.Errorf("%s/%s virt (seed %d): %w", spec.Name, d, s.Seed, err)
	}
	if s.Telemetry != nil {
		m.FlushTelemetry()
	}
	est := perfmodel.Default(spec.BaseCPI, spec.RefsPerInstr).Runtime(st)
	return st, est, nil
}

// Registry maps experiment names to their functions for the CLI.
type Experiment struct {
	Name string
	Desc string
	Run  func(context.Context, Scale) (*stats.Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "% runtime in address translation: split vs ideal across page-size policies", Figure1},
		{"fig9", "fraction of footprint in superpages vs memhog fragmentation", Figure9},
		{"fig10", "superpage fraction vs VM consolidation x memhog", Figure10},
		{"fig11", "average superpage contiguity vs memhog (2MB and 1GB)", Figure11},
		{"fig12", "superpage contiguity CDF, native CPU", Figure12},
		{"fig13", "superpage contiguity CDF, virtualized and GPU", Figure13},
		{"fig14", "% performance improvement of MIX vs split", Figure14},
		{"fig15l", "MIX improvement vs split as memhog varies", Figure15Left},
		{"fig15r", "overhead vs ideal TLB: split and MIX curves", Figure15Right},
		{"fig16", "performance-energy tradeoffs: skew+pred, rehash+pred, MIX", Figure16},
		{"fig17", "dynamic energy breakdown by TLB activity (GPU)", Figure17},
		{"fig18", "COLT, COLT++, MIX and MIX+COLT vs split", Figure18},
		{"ablation-index", "Sec 3 ablation: superpage index bits vs small-page index bits", AblationIndexBits},
		{"scaling", "Sec 7.2 scaling study: set counts up to 512", ScalingStudy},
		{"duplicates", "Sec 4.3 duplicate creation and elimination study", DuplicateStudy},
		{"invalidation", "Sec 4.4 invalidation study: shootdown refill traffic by design", InvalidationStudy},
		{"hierarchy", "registry designs compared: per-level hits, walk traffic, PWC effect", HierarchyStudy},
		{"reach", "coalesced SRAM reach (MIX) vs spilled cache reach (Victima) under fragmentation", ReachStudy},
		{"chaos", "fault injection: TLB/PTE corruption, lost IPIs, transient OOM — detection and recovery rates", ChaosStudy},
		{"breakdown", "cycle attribution: where each design's translation cycles go, conservation-audited", Breakdown},
		{"xisa", "cross-ISA study: headline designs over radix depth (LA57, Sv48) and contiguity encodings (SVNAPOT, ARM64 contig)", CrossISAStudy},
	}
}

// Names lists every experiment name in paper order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// UnknownExperimentError reports a requested experiment that does not
// exist, carrying the valid names so callers (the CLI) can print them
// instead of silently running nothing.
type UnknownExperimentError struct {
	Name  string
	Valid []string
}

func (e *UnknownExperimentError) Error() string {
	return fmt.Sprintf("experiments: unknown experiment %q (valid: %s)",
		e.Name, strings.Join(e.Valid, ", "))
}

// UnknownWorkloadError reports a requested workload missing from the
// catalog. Before this check, a typo in -workloads made every experiment
// iterate over an empty workload set and print empty tables.
type UnknownWorkloadError struct {
	Name  string
	Valid []string
}

func (e *UnknownWorkloadError) Error() string {
	return fmt.Sprintf("experiments: unknown workload %q (valid: %s)",
		e.Name, strings.Join(e.Valid, ", "))
}

// ValidateWorkloads checks that every name in Scale.Workloads resolves in
// the workload catalog, returning an *UnknownWorkloadError for the first
// one that does not.
func (s Scale) ValidateWorkloads() error {
	all := workload.Catalog()
	for _, name := range s.Workloads {
		found := false
		for _, spec := range all {
			if spec.Name == name {
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, len(all))
			for i, spec := range all {
				valid[i] = spec.Name
			}
			return &UnknownWorkloadError{Name: name, Valid: valid}
		}
	}
	return nil
}

// ValidateISA checks that Scale.ISA names a known descriptor, returning
// the typed *isa.UnknownISAError (listing every valid name) for a typo'd
// -isa flag before any environment is built.
func (s Scale) ValidateISA() error {
	_, err := isa.Lookup(s.ISA)
	return err
}

// ValidateDesigns checks that every name in Scale.Designs resolves in the
// scale's design registry, returning an *mmu.UnknownDesignError for the
// first one that does not — so a typo'd -designs flag fails up front
// instead of erroring mid-grid.
func (s Scale) ValidateDesigns() error {
	if len(s.Designs) == 0 {
		return nil
	}
	reg := s.registry()
	for _, name := range s.Designs {
		if _, ok := reg.Lookup(name); !ok {
			return &mmu.UnknownDesignError{Name: name, Valid: reg.Names()}
		}
	}
	return nil
}

// ByName finds an experiment, returning *UnknownExperimentError with the
// valid names when it does not exist.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, &UnknownExperimentError{Name: name, Valid: Names()}
}
