package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"mixtlb/internal/telemetry"
)

// runFig15rTelemetry runs fig15r at quick scale with the given pool size
// and a fresh registry/tracer, returning the result table CSV and the
// Prometheus metric dump.
func runFig15rTelemetry(t *testing.T, jobs int) (csv, metrics string) {
	t.Helper()
	s := QuickScale()
	s.Jobs = jobs
	reg := telemetry.NewRegistry()
	s.Telemetry = telemetry.NewCollector(reg, telemetry.NewTracer(0))
	e, err := ByName("fig15r")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.CSV(), reg.PrometheusString()
}

// TestTelemetryJobsDeterminism is the registry's core contract: a metric
// dump is a pure function of (experiment, scale, seed), so jobs=1 and
// jobs=8 runs must produce byte-identical dumps. Wall-clock and schedule
// data (spans, worker ids, ETA) live only in the tracer, never here.
func TestTelemetryJobsDeterminism(t *testing.T) {
	t.Parallel()
	csv1, m1 := runFig15rTelemetry(t, 1)
	csv8, m8 := runFig15rTelemetry(t, 8)
	if csv1 != csv8 {
		t.Errorf("tables differ between jobs=1 and jobs=8:\n%s\n---\n%s", csv1, csv8)
	}
	if m1 != m8 {
		t.Errorf("metric dumps differ between jobs=1 and jobs=8:\n%s\n---\n%s", m1, m8)
	}
	if !strings.Contains(m1, "mmu_walk_depth") || !strings.Contains(m1, "tlb_set_occupancy") {
		t.Errorf("dump missing expected families:\n%s", m1)
	}
}

// TestTelemetryOnOffIdenticalTables is the non-interference contract:
// simulation statistics never read telemetry state, so an instrumented run
// and a bare run produce byte-identical result tables.
func TestTelemetryOnOffIdenticalTables(t *testing.T) {
	t.Parallel()
	exp, err := ByName("fig15r")
	if err != nil {
		t.Fatal(err)
	}
	s := QuickScale()
	s.Jobs = 4
	bare, err := exp.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	onCSV, _ := runFig15rTelemetry(t, 4)
	if bare.CSV() != onCSV {
		t.Errorf("tables differ with telemetry on vs off:\n%s\n---\n%s", bare.CSV(), onCSV)
	}
}

// TestProgressEventsCoverAllCells checks the live-progress callback fires
// once per cell with monotone done counts ending at done == total.
func TestProgressEventsCoverAllCells(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 4
	var mu sync.Mutex
	var events []ProgressEvent
	s.ProgressFn = func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	exp, err := ByName("fig15r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	total := events[0].Total
	if len(events) != total {
		t.Errorf("%d progress events for %d cells", len(events), total)
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Total != total || ev.Experiment != "fig15r" || ev.Cell == "" {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
		if ev.Failed {
			t.Errorf("event %d unexpectedly failed: %+v", i, ev)
		}
	}
	last := events[len(events)-1]
	if last.Done != last.Total || last.ETA != 0 {
		t.Errorf("final event should read done=total, eta=0: %+v", last)
	}
}

// TestUnknownNameErrors checks the typed validation errors carry the valid
// name lists the CLI prints.
func TestUnknownNameErrors(t *testing.T) {
	t.Parallel()
	_, err := ByName("not-an-experiment")
	var ue *UnknownExperimentError
	if !errors.As(err, &ue) {
		t.Fatalf("ByName error = %T, want *UnknownExperimentError", err)
	}
	if ue.Name != "not-an-experiment" || len(ue.Valid) != len(All()) {
		t.Errorf("error fields: %+v", ue)
	}
	if !strings.Contains(ue.Error(), "fig14") {
		t.Errorf("message should list valid names: %v", ue)
	}

	s := QuickScale()
	s.Workloads = []string{"gups", "not-a-workload"}
	werr := s.ValidateWorkloads()
	var uw *UnknownWorkloadError
	if !errors.As(werr, &uw) {
		t.Fatalf("ValidateWorkloads error = %T, want *UnknownWorkloadError", werr)
	}
	if uw.Name != "not-a-workload" || len(uw.Valid) == 0 {
		t.Errorf("error fields: %+v", uw)
	}
	s.Workloads = []string{"gups"}
	if err := s.ValidateWorkloads(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}
