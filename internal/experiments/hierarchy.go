package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// defaultHierarchyDesigns is the design set HierarchyStudy compares when
// Scale.Designs is empty: the commercial baseline, the same baseline with
// paging-structure caches on the walker, full MIX, and the drop-in
// MIX-as-L2 upgrade. Together they separate "better TLB" gains from
// "cheaper walk" gains.
var defaultHierarchyDesigns = []string{
	string(mmu.DesignSplit),
	string(mmu.DesignSplitPWC),
	string(mmu.DesignMix),
	string(mmu.DesignMixAsL2),
}

// hierarchyMemhogFrac is the background fragmentation the study runs
// under. A pristine THS environment maps the whole footprint with 2MB
// pages that fit in every L2, so no design ever walks and the walk/PWC
// columns degenerate to zero; heavy memhog load forces the mixed
// 2MB/4KB regime (Fig 9's middle band) where both TLB reach and walk
// cost are live.
const hierarchyMemhogFrac = 0.7

// HierarchyStudy compares translation-hierarchy designs drawn from the
// registry — including designs loaded from a -design-file — on the
// scale's workloads. Every design of a cell runs over the same fragmented
// environment and the same reference stream, so rows differ only by
// design. Reported per (design, workload): per-level hit rates, walk
// traffic (frequency and per-walk PTE references after any
// paging-structure-cache skips), the fraction of walk references the PWC
// removed, and translation cycles per access. One cell per workload.
func HierarchyStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Translation hierarchy comparison: registry designs, per-level hits and walk traffic",
		Columns: []string{"design", "workload", "l1-hit%", "l2-hit%",
			"walks-per-1k", "refs-per-walk", "pwc-skip%", "cyc/acc"},
	}
	designs := s.Designs
	if len(designs) == 0 {
		designs = defaultHierarchyDesigns
	}
	reg := s.registry()
	specs := make([]mmu.DesignSpec, len(designs))
	for i, d := range designs {
		spec, ok := reg.Lookup(d)
		if !ok {
			return nil, &mmu.UnknownDesignError{Name: d, Valid: reg.Names()}
		}
		specs[i] = spec
	}
	var cells []Cell
	for _, wl := range s.workloads() {
		wl := wl.Name
		cells = append(cells, Cell{
			Name: wl,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				spec, err := workload.ByName(wl)
				if err != nil {
					return nil, err
				}
				env, err := newNative(cs, osmm.THS, hierarchyMemhogFrac, cs.Seed)
				if err != nil {
					return nil, err
				}
				var rows []Row
				for _, ds := range specs {
					caches := cachesim.DefaultHierarchy()
					m, err := ds.Build(env.as.PageTable(), env.as.PageTable(), caches, env.as.HandleFault)
					if err != nil {
						return nil, err
					}
					if cs.Telemetry != nil {
						m.AttachTelemetry(cs.Telemetry.With("workload", wl))
					}
					stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
					st, err := runStream(ctx, cs, m, stream)
					if err != nil {
						return nil, fmt.Errorf("%s/%s (seed %d): %w", wl, ds.Name, cs.Seed, err)
					}
					if cs.Telemetry != nil {
						m.FlushTelemetry()
						env.flushTelemetry()
					}
					acc := float64(st.Accesses)
					if acc == 0 {
						acc = 1
					}
					refsPerWalk := 0.0
					if st.Walks > 0 {
						refsPerWalk = float64(st.WalkRefs) / float64(st.Walks)
					}
					pwcSkip := 0.0
					if tot := st.WalkRefs + st.PWCSkippedRefs; tot > 0 {
						pwcSkip = 100 * float64(st.PWCSkippedRefs) / float64(tot)
					}
					rows = append(rows, Row{ds.Name, wl,
						100 * float64(st.L1Hits) / acc,
						100 * float64(st.L2Hits) / acc,
						1000 * float64(st.Walks) / acc,
						refsPerWalk,
						pwcSkip,
						st.CyclesPerAccess()})
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "hierarchy", t, cells)
	AppendRows(t, results)
	return t, err
}
