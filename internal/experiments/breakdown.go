package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// defaultBreakdownDesigns spans the cost structures the attribution can
// distinguish: the split baseline (pure SRAM probes + full walks), the
// same walks shortened by paging-structure caches, MIX (coalesced
// reach trades walk cycles for probe cycles), and the victim-level
// designs whose deep hits spend data-cache time instead of walk time.
var defaultBreakdownDesigns = []string{
	string(mmu.DesignSplit),
	string(mmu.DesignSplitPWC),
	string(mmu.DesignMix),
	string(mmu.DesignVictima),
	string(mmu.DesignMixVictima),
}

// breakdownMemhogFrac matches the hierarchy study's fragmentation point:
// the mixed 2MB/4KB regime where every cost category is live at once.
const breakdownMemhogFrac = hierarchyMemhogFrac

// Breakdown is the attribution experiment: per (design, workload) it
// reports cycles/access next to the percentage of attributed cycles each
// ledger category received — a stacked cost table that says *where* a
// design's cycles go, not just how many. A final per-workload row runs
// MIX under the scale's chaos rates with the oracle attached, so the
// chaos-retry column shows the re-translation tax injected faults add.
// Every row is audited in-cell: the ledger must attribute exactly
// Stats.Cycles and agree with the walk/victim counters (runStream fails
// the cell otherwise), making this table a live proof of conservation,
// not just a report. One cell per workload.
func Breakdown(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Cycle breakdown: exact attribution of translation cycles by category (audited)",
		Columns: []string{"design", "workload", "cyc/acc", "l1%", "l2%", "deep%",
			"extra%", "victim%", "walk-full%", "walk-pwc%", "dirty%", "memo%", "retry%"},
	}
	designs := s.Designs
	if len(designs) == 0 {
		designs = defaultBreakdownDesigns
	}
	reg := s.registry()
	specs := make([]mmu.DesignSpec, len(designs))
	for i, d := range designs {
		spec, ok := reg.Lookup(d)
		if !ok {
			return nil, &mmu.UnknownDesignError{Name: d, Valid: reg.Names()}
		}
		specs[i] = spec
	}
	// The chaos row reuses MIX when the registry has it (custom -designs
	// lists still get their plain rows either way).
	chaosSpec, haveChaosRow := reg.Lookup(string(mmu.DesignMix))
	var cells []Cell
	for _, wl := range s.workloads() {
		wl := wl.Name
		cells = append(cells, Cell{
			Name: wl,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				spec, err := workload.ByName(wl)
				if err != nil {
					return nil, err
				}
				env, err := newNative(cs, osmm.THS, breakdownMemhogFrac, cs.Seed)
				if err != nil {
					return nil, err
				}
				var rows []Row
				for _, ds := range specs {
					row, err := breakdownRow(ctx, cs, env, spec, ds, ds.Name, nil, nil)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				if haveChaosRow && cs.Chaos != (chaos.Rates{}) {
					in := chaos.NewInjector(cs.Seed, cs.Chaos)
					or := chaos.NewOracle(env.as.PageTable())
					row, err := breakdownRow(ctx, cs, env, spec, chaosSpec,
						chaosSpec.Name+"+chaos", in, or)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "breakdown", t, cells)
	AppendRows(t, results)
	return t, err
}

// breakdownRow measures one design over the environment with a ledger
// attached and renders its attribution shares.
func breakdownRow(ctx context.Context, cs Scale, env *nativeEnv, spec workload.Spec,
	ds mmu.DesignSpec, label string, in *chaos.Injector, or *chaos.Oracle) (Row, error) {
	caches := cachesim.DefaultHierarchy()
	m, err := ds.Build(env.as.PageTable(), env.as.PageTable(), caches, env.as.HandleFault)
	if err != nil {
		return nil, err
	}
	if in != nil {
		m.InjectFaults(in)
	}
	if or != nil {
		m.AttachOracle(or)
	}
	if cs.Telemetry != nil {
		m.AttachTelemetry(cs.Telemetry.With("workload", spec.Name))
	}
	// Attach explicitly rather than via Scale.LedgerAudit: the breakdown
	// *is* the ledger readout, so attribution (and runStream's audit and
	// tail flush) runs regardless of the scale's observer knobs.
	led := ledger.New(cs.TailK)
	m.AttachLedger(led)
	stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
	st, err := runStream(ctx, cs, m, stream)
	if err != nil {
		return nil, fmt.Errorf("%s/%s (seed %d): %w", spec.Name, label, cs.Seed, err)
	}
	if cs.Telemetry != nil {
		m.FlushTelemetry()
		env.flushTelemetry()
	}
	sh := perfmodel.AttributionShares(led.Entries())
	return Row{label, spec.Name, st.CyclesPerAccess(),
		sh[ledger.L1Probe], sh[ledger.L2Probe], sh[ledger.DeepProbe],
		sh[ledger.ExtraProbe], sh[ledger.VictimProbe], sh[ledger.WalkFull],
		sh[ledger.WalkPWC], sh[ledger.DirtyAssist], sh[ledger.MemoReplay],
		sh[ledger.ChaosRetry]}, nil
}
