package experiments

import (
	"context"
	"strconv"
	"testing"
)

// q is the test scale.
func q() Scale { return QuickScale() }

func f(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	if len(All()) != 21 {
		t.Errorf("%d experiments registered", len(All()))
	}
	if _, err := ByName("fig14"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("hierarchy"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("xisa"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("chaos"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	for _, e := range All() {
		if e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure1(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(figure1Workloads)*len(figure1Policies) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	anyOverhead := false
	for _, row := range tbl.Rows {
		split, ideal := f(t, row[2]), f(t, row[3])
		if split < ideal {
			t.Errorf("%s/%s: split %%runtime %v < ideal %v", row[0], row[1], split, ideal)
		}
		if ideal != 0 {
			t.Errorf("ideal TLB shows %v%% translation time", ideal)
		}
		if split > 0.5 {
			anyOverhead = true
		}
	}
	if !anyOverhead {
		t.Error("no workload shows translation overhead on split TLBs")
	}
}

func TestFigure9Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure9(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Pristine memory: essentially all superpages. Severe fragmentation:
	// clearly fewer.
	for c := 1; c <= 3; c++ {
		first, last := f(t, tbl.Rows[0][c]), f(t, tbl.Rows[4][c])
		if first < 0.9 {
			t.Errorf("col %d: pristine superpage fraction %v", c, first)
		}
		if last > first {
			t.Errorf("col %d: fraction rose with fragmentation (%v -> %v)", c, first, last)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure10(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Low consolidation + no memhog (first row) beats heavy consolidation
	// + memhog (last row).
	first, last := f(t, tbl.Rows[0][2]), f(t, tbl.Rows[len(tbl.Rows)-1][2])
	if first < last {
		t.Errorf("superpage fraction: 1VM/0%%=%v < 8VM/40%%=%v", first, last)
	}
	if first < 0.8 {
		t.Errorf("unloaded VM superpage fraction = %v", first)
	}
}

func TestFigure11Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure11(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tbl.Rows {
		if c2 := f(t, row[2]); c2 < 1 {
			t.Errorf("2MB contiguity %v < 1 despite superpages", c2)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure12(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Per memhog level, the CDF is monotone and ends at 1.
	last := map[string]float64{}
	for _, row := range tbl.Rows {
		frac := f(t, row[2])
		if frac < last[row[0]] {
			t.Errorf("memhog %s: CDF decreases", row[0])
		}
		last[row[0]] = frac
	}
	for g, v := range last {
		if v < 0.999 {
			t.Errorf("memhog %s: CDF tops out at %v", g, v)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure13(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]float64{}
	seen := map[string]bool{}
	for _, row := range tbl.Rows {
		k := row[0] + "/" + row[1]
		frac := f(t, row[3])
		if frac < groups[k] {
			t.Errorf("%s: CDF not monotone", k)
		}
		groups[k] = frac
		seen[row[0]] = true
	}
	if !seen["virt-2vm"] || !seen["gpu"] {
		t.Errorf("missing systems: %v", seen)
	}
}
