package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"mixtlb/internal/telemetry"
)

// runCSVScaled runs one experiment at QuickScale after applying mutate,
// rendering its table like runExperimentCSV.
func runCSVScaled(t *testing.T, name string, mutate func(*Scale)) string {
	t.Helper()
	e, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s := QuickScale()
	s.Jobs = 2
	if mutate != nil {
		mutate(&s)
	}
	tbl, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return "# " + tbl.Title + "\n" + tbl.CSV()
}

// TestLedgerObserverTableInvariance is the end-to-end half of the
// observer contract: running experiments with the audit ledger and tail
// recorder armed must produce byte-identical tables to running without —
// while the audit itself (which fails cells on any conservation leak)
// passes over every design the experiments drive, victim levels
// included.
func TestLedgerObserverTableInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment comparison is not short")
	}
	for _, name := range []string{"hierarchy", "reach"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			off := runCSVScaled(t, name, nil)
			on := runCSVScaled(t, name, func(s *Scale) {
				s.LedgerAudit = true
				s.TailK = 8
			})
			if on != off {
				t.Errorf("ledger-on table differs from ledger-off:\n--- on ---\n%s\n--- off ---\n%s", on, off)
			}
		})
	}
}

// TestBreakdownSharesSumTo100 sanity-checks the stacked table: each
// row's share columns must sum to ~100% (they are percentages of the
// same attributed total, which the in-cell audit pins to Stats.Cycles).
func TestBreakdownSharesSumTo100(t *testing.T) {
	csv := runCSVScaled(t, "breakdown", func(s *Scale) {
		s.Workloads = []string{"gups"}
	})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 3 {
		t.Fatalf("breakdown produced no rows:\n%s", csv)
	}
	header := strings.Split(lines[1], ",")
	for _, ln := range lines[2:] {
		fields := strings.Split(ln, ",")
		var sum float64
		for i, h := range header {
			if strings.HasSuffix(h, "%") {
				sum += goldenFloatStr(t, fields[i])
			}
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("row %q shares sum to %.2f, want ~100", ln, sum)
		}
	}
}

func goldenFloatStr(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric share %q: %v", s, err)
	}
	return v
}

// TestTailEventsExported drives one experiment with telemetry and TailK
// armed and requires "tail" instant events in the tracer, carrying the
// narration args the /debug/tail endpoints render.
func TestTailEventsExported(t *testing.T) {
	e, err := ByName("hierarchy")
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(0)
	s := QuickScale()
	s.Workloads = []string{"gups"}
	s.Jobs = 1
	s.TailK = 4
	s.Telemetry = telemetry.NewCollector(telemetry.NewRegistry(), tracer)
	if _, err := e.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	recs := tracer.TailRecords()
	if len(recs) == 0 {
		t.Fatal("no tail events exported")
	}
	for _, r := range recs[:1] {
		for _, key := range []string{"design", "va", "size", "served", "trail", "rank"} {
			if _, ok := r.Args[key]; !ok {
				t.Errorf("tail record lacks %q: %+v", key, r)
			}
		}
		if r.Cycles == 0 {
			t.Errorf("tail record has zero cycles: %+v", r)
		}
	}
}
