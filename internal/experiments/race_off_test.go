//go:build !race

package experiments

// raceEnabled reports whether the test binary was built with -race.
// Normal builds run the full golden suite; race builds (where each
// simulation is roughly 10x slower) run a reduced subset.
const raceEnabled = false
