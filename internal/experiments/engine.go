package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mixtlb/internal/journal"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/telemetry"
)

// This file is the parallel experiment engine. Every experiment decomposes
// its design x workload x environment grid into independent Cells — one
// simulation each, the repo's analogue of the paper's per-workload Pin
// traces — and RunGrid executes them on a bounded worker pool. Three
// properties make the parallelism invisible in the results:
//
//   - Seed splitting: each cell simulates under the deterministic seed
//     simrand.SplitSeed(Scale.Seed, experiment, cellName), a pure function
//     of the cell's identity. No cell observes scheduling order.
//   - Canonical merge: each cell's rows land in the cell's declaration
//     slot; the final table is the in-order concatenation, so tables are
//     byte-identical at any -jobs count.
//   - Per-cell harness semantics: a panic inside one cell becomes a
//     *CellError carrying the cell name and derived seed (wrapping a
//     *PanicError with the stack), and the rows of every completed cell
//     are still published to Scale.Progress — RunSafe's partial-table
//     guarantee now holds at cell, not experiment, granularity.

// Row is one unformatted table row produced by a cell; values are
// formatted by stats.Table.AddRow during the canonical merge.
type Row []interface{}

// Cell is one independent unit of an experiment's grid: one design x
// workload x environment simulation. Run must build all of its own state
// (environments, MMUs, streams) from the Scale it receives — its Seed is
// the cell's split seed — and must not touch anything shared.
type Cell struct {
	// Name identifies the cell within its experiment ("native/2MB/mcf").
	// It is hashed into the cell's seed, so renaming a cell changes its
	// random sequence.
	Name string
	Run  func(ctx context.Context, s Scale) ([]Row, error)
}

// CellError reports a failure inside one grid cell, carrying the cell's
// identity and derived seed so the failure line names exactly what to
// re-run.
type CellError struct {
	Experiment string
	Cell       string
	Seed       uint64 // the cell's derived seed (SplitSeed of the base)
	Err        error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("experiment %q cell %q failed (cell seed %d; reproduce with -exp %s -cell %q): %v",
		e.Experiment, e.Cell, e.Seed, e.Experiment, e.Cell, e.Err)
}

// Unwrap exposes the cause (a *PanicError for recovered panics).
func (e *CellError) Unwrap() error { return e.Err }

// CellSeed derives a cell's seed from the experiment's base seed and the
// cell's identity.
func CellSeed(base uint64, experiment, cell string) uint64 {
	return simrand.SplitSeed(base, experiment, cell)
}

// ProgressEvent is one live engine progress update, emitted after each
// cell finishes. It carries wall-clock and scheduling detail (worker,
// ETA) and therefore never feeds the metrics registry — only the
// Scale.ProgressFn callback and the trace stream.
type ProgressEvent struct {
	Experiment string
	Cell       string
	Worker     int // pool worker that ran the cell
	Done       int // cells finished so far (including failed)
	Total      int // cells selected to run
	Failed     bool
	Elapsed    time.Duration
	// ETA extrapolates the remaining wall time from the mean cell time so
	// far; zero until the first cell completes.
	ETA time.Duration
}

// RunGrid executes an experiment's cells on a bounded worker pool and
// returns each cell's rows in canonical (declaration) order. The pool size
// is Scale.Jobs (0 = GOMAXPROCS); idle workers steal the next unclaimed
// cell from a shared counter. Scale.Cell filters the grid to matching
// cells (substring match) for single-cell reproduction. The first real
// cell failure cancels the remaining cells and is returned (smallest cell
// index wins, so the reported error does not depend on scheduling);
// completed cells keep publishing to Scale.Progress throughout.
func RunGrid(ctx context.Context, s Scale, experiment string, t *stats.Table, cells []Cell) ([][]Row, error) {
	// work holds the original indices of the cells to run. Results stay
	// aligned to the full declared grid even under -cell filtering, so
	// experiments that post-process by position (Figure 9's per-row
	// reassembly, Figure 15's sort groups) index correctly; filtered-out
	// cells simply leave nil slots.
	work := make([]int, 0, len(cells))
	if s.Cell != "" {
		names := make([]string, 0, len(cells))
		for i, c := range cells {
			names = append(names, c.Name)
			if strings.Contains(c.Name, s.Cell) {
				work = append(work, i)
			}
		}
		if len(work) == 0 {
			return nil, fmt.Errorf("experiments: no cell of %q matches %q (cells: %s)",
				experiment, s.Cell, strings.Join(names, ", "))
		}
	} else {
		for i := range cells {
			work = append(work, i)
		}
	}
	gridCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	gridStart := time.Now()
	var (
		mu         sync.Mutex
		results    = make([][]Row, len(cells))
		errs       = make([]error, len(cells))
		done       = make([]bool, len(cells))
		soft       = make([]bool, len(cells)) // exhausted retries under FailSoft
		completed  int   // cells finished (success or failure), for progress
		next       int64 = -1
		wg         sync.WaitGroup
		journalErr error // first checkpoint-append failure
	)

	// Replay: cells already checkpointed in the journal skip simulation
	// entirely; only the remainder is scheduled. Replayed rows land in
	// their canonical slots with their exact recorded values (and the
	// journal is fingerprint-pinned to this configuration), so the merged
	// table is byte-identical to an uninterrupted run. Each record's seed
	// must equal the seed this grid would derive — a renamed cell or
	// changed split function invalidates the record rather than replaying
	// rows that no longer correspond to the cell.
	replayed := 0
	if s.Journal != nil {
		remaining := work[:0]
		for _, i := range work {
			if rec, ok := s.Journal.Lookup(experiment, cells[i].Name); ok &&
				rec.Seed == CellSeed(s.Seed, experiment, cells[i].Name) {
				results[i] = rowsFromRecord(rec)
				done[i] = true
				replayed++
				continue
			}
			remaining = append(remaining, i)
		}
		work = remaining
		if replayed > 0 {
			snap := &stats.Table{Title: t.Title, Columns: t.Columns}
			for j := range results {
				if done[j] {
					for _, r := range results[j] {
						snap.AddRow(r...)
					}
				}
			}
			s.Progress.Publish(snap)
			if s.Telemetry != nil {
				s.Telemetry.With("exp", experiment).
					Counter("engine_journal_replayed_total").Add(uint64(replayed))
			}
		}
	}

	jobs := s.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(work) {
		jobs = len(work)
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			ran := 0 // cells this worker claimed (stealing visibility)
			for {
				wi := int(atomic.AddInt64(&next, 1))
				if wi >= len(work) {
					if s.Telemetry != nil && ran > 0 {
						s.Telemetry.WithTID(worker).Instant("engine", "worker_done", 0,
							"exp", experiment, "cells_run", strconv.Itoa(ran))
					}
					return
				}
				i := work[wi]
				if err := gridCtx.Err(); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					continue // drain remaining indices without running them
				}
				ran++
				c := cells[i]
				cs := s
				cs.Seed = CellSeed(s.Seed, experiment, c.Name)
				cs.Progress, cs.Bench = nil, nil
				cs.Jobs, cs.Cell = 1, ""
				cs.ProgressFn = nil
				cs.Journal, cs.Failures = nil, nil
				// Scope the cell's telemetry: metrics gain deterministic
				// exp/cell labels (so dumps merge identically at any -jobs
				// value); the trace tid records which worker ran it.
				cs.Telemetry = s.Telemetry.With("exp", experiment, "cell", c.Name).WithTID(worker)

				// Retry loop: each attempt runs under the watchdog deadline;
				// transient failures (anything not Permanent) are re-run up to
				// MaxRetries times after a seeded, capped exponential backoff.
				var (
					rows    []Row
					err     error
					attempt = 1
				)
				for {
					var span telemetry.Span
					if cs.Telemetry != nil {
						span = cs.Telemetry.Span("cell", experiment+"/"+c.Name)
					}
					start := time.Now()
					rows, err = runCellAttempt(gridCtx, experiment, c, cs)
					elapsed := time.Since(start)
					if cs.Telemetry != nil {
						outcome := "ok"
						if err != nil {
							outcome = "error"
						}
						span.End("outcome", outcome)
					}
					s.Bench.RecordCell(CellTime{
						Experiment: experiment, Cell: c.Name,
						Seed: cs.Seed, Seconds: elapsed.Seconds(),
					})
					if err != nil && s.Telemetry != nil {
						var stuck *StuckCellError
						if errors.As(err, &stuck) {
							s.Telemetry.With("exp", experiment).
								Counter("engine_watchdog_fires_total").Add(1)
						}
					}
					if err == nil || gridCtx.Err() != nil ||
						isPermanent(err) || attempt > s.MaxRetries {
						break
					}
					if s.Telemetry != nil {
						s.Telemetry.With("exp", experiment).
							Counter("engine_cell_retries_total").Add(1)
					}
					timer := time.NewTimer(RetryDelay(cs.Seed, attempt, s.RetryBackoff))
					select {
					case <-timer.C:
					case <-gridCtx.Done():
						timer.Stop()
					}
					if cerr := gridCtx.Err(); cerr != nil {
						err = cerr
						break
					}
					attempt++
				}

				// Fail-soft: an exhausted real cell failure (not cancellation
				// fallout) becomes a FailedCell record and a nil result slot —
				// exactly the shape -cell filtering leaves, which every
				// experiment's post-processing already tolerates.
				var failedSoft bool
				if err != nil && s.FailSoft {
					var ce *CellError
					if asCellError(err, &ce) {
						s.Failures.Record(FailedCell{
							Experiment: experiment, Cell: c.Name,
							Seed: cs.Seed, Attempts: attempt, Err: err,
						})
						failedSoft = true
					}
				}
				// Checkpoint before progress is reported: once ProgressFn has
				// seen the cell complete, a kill must find its record durable.
				if err == nil {
					if jerr := s.Journal.Append(journal.Record{
						Experiment: experiment, Cell: c.Name,
						Seed: cs.Seed, Rows: recordRows(rows),
					}); jerr != nil {
						mu.Lock()
						if journalErr == nil {
							journalErr = jerr
						}
						mu.Unlock()
						cancel() // checkpointing broke: stop making unrecorded progress
					}
				}
				mu.Lock()
				if failedSoft {
					soft[i] = true
					// results[i] and errs[i] stay nil: the grid continues.
				} else {
					results[i], errs[i] = rows, err
				}
				completed++
				if err != nil && !failedSoft {
					cancel() // fail fast at cell granularity
				} else if err == nil {
					done[i] = true
					// Publish the completed cells' rows in canonical order,
					// inside the lock so snapshots stay monotone.
					snap := &stats.Table{Title: t.Title, Columns: t.Columns}
					for j := range results {
						if done[j] {
							for _, r := range results[j] {
								snap.AddRow(r...)
							}
						}
					}
					s.Progress.Publish(snap)
				}
				if s.ProgressFn != nil {
					gridElapsed := time.Since(gridStart)
					var eta time.Duration
					if completed > 0 && completed < len(work) {
						eta = gridElapsed / time.Duration(completed) * time.Duration(len(work)-completed)
					}
					s.ProgressFn(ProgressEvent{
						Experiment: experiment, Cell: c.Name, Worker: worker,
						Done: completed, Total: len(work), Failed: err != nil,
						Elapsed: gridElapsed, ETA: eta,
					})
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if s.Telemetry != nil {
		ec := s.Telemetry.With("exp", experiment)
		ok, failed, softN := 0, 0, 0
		for _, i := range work {
			switch {
			case done[i]:
				ok++
			case soft[i]:
				softN++
			case errs[i] != nil:
				failed++
			}
		}
		ec.Counter("engine_cells_completed_total").Add(uint64(ok))
		if failed > 0 {
			ec.Counter("engine_cells_failed_total").Add(uint64(failed))
		}
		if softN > 0 {
			ec.Counter("engine_cells_failed_soft_total").Add(uint64(softN))
		}
	}

	// Prefer the lowest-indexed real failure over cancellation fallout from
	// cells the failure itself skipped; a checkpoint-append failure (which
	// itself cancels the grid) outranks that fallout too.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ce *CellError
		if asCellError(err, &ce) {
			return results, err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	if journalErr != nil {
		return results, fmt.Errorf("experiments: checkpoint journal: %w", journalErr)
	}
	if firstCancel != nil {
		return results, firstCancel
	}
	return results, nil
}

// runCellAttempt executes one attempt of a cell: fault injection first
// (Scale.CellFault), then the cell itself under the per-cell watchdog
// deadline when one is armed. A deadline expiry yields a *CellError
// wrapping *StuckCellError; if the cell ignores the cancellation, its
// goroutine is abandoned (it exits at its next stream checkpoint — the
// buffered channel lets it deliver into the void) so the worker can
// requeue the cell instead of hanging with it.
func runCellAttempt(ctx context.Context, experiment string, c Cell, cs Scale) ([]Row, error) {
	if cs.CellFault != nil {
		if ferr := cs.CellFault(experiment, c.Name); ferr != nil {
			return nil, &CellError{Experiment: experiment, Cell: c.Name, Seed: cs.Seed, Err: ferr}
		}
	}
	if cs.CellDeadline <= 0 {
		return runCell(ctx, experiment, c, cs)
	}
	actx, cancel := context.WithTimeout(ctx, cs.CellDeadline)
	defer cancel()
	type attemptResult struct {
		rows []Row
		err  error
	}
	ch := make(chan attemptResult, 1)
	go func() {
		rows, err := runCell(actx, experiment, c, cs)
		ch <- attemptResult{rows, err}
	}()
	stuck := func() error {
		return &CellError{Experiment: experiment, Cell: c.Name, Seed: cs.Seed,
			Err: &StuckCellError{Experiment: experiment, Cell: c.Name,
				Seed: cs.Seed, Deadline: cs.CellDeadline}}
	}
	select {
	case a := <-ch:
		if a.err != nil && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			// The watchdog fired and the cell exited on the cancellation:
			// report the watchdog's verdict, not the raw context error.
			return nil, stuck()
		}
		return a.rows, a.err
	case <-actx.Done():
		if ctx.Err() != nil {
			// Grid-level cancellation, not the watchdog: wait for the cell
			// to stop at its next checkpoint so shutdown stays leak-free.
			a := <-ch
			return a.rows, a.err
		}
		return nil, stuck()
	}
}

// asCellError reports whether err is a *CellError (avoiding an errors.As
// import cycle on the hot path is not a concern; this keeps the intent
// explicit).
func asCellError(err error, target **CellError) bool {
	for err != nil {
		if ce, ok := err.(*CellError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// runCell executes one cell with panic recovery, wrapping any failure in a
// *CellError that names the cell and its derived seed.
func runCell(ctx context.Context, experiment string, c Cell, cs Scale) (rows []Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{
				Experiment: experiment, Cell: c.Name, Seed: cs.Seed,
				Err: &PanicError{
					Experiment: experiment + "/" + c.Name, Seed: cs.Seed,
					Value: r, Stack: string(debug.Stack()),
				},
			}
		}
	}()
	rows, err = c.Run(ctx, cs)
	if err != nil {
		err = &CellError{Experiment: experiment, Cell: c.Name, Seed: cs.Seed, Err: err}
	}
	return rows, err
}

// AppendRows adds every cell's rows to t in canonical order.
func AppendRows(t *stats.Table, results [][]Row) {
	for _, rows := range results {
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
}

// Flatten concatenates per-cell rows in canonical order.
func Flatten(results [][]Row) []Row {
	var out []Row
	for _, rows := range results {
		out = append(out, rows...)
	}
	return out
}

// CellTime is one cell's wall-clock measurement.
type CellTime struct {
	Experiment string  `json:"experiment"`
	Cell       string  `json:"cell"`
	Seed       uint64  `json:"seed"`
	Seconds    float64 `json:"seconds"`
}

// ExperimentTime is one experiment's end-to-end wall clock.
type ExperimentTime struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	Cells      int     `json:"cells"`
	Err        string  `json:"error,omitempty"`
}

// BenchLog accumulates per-cell and per-experiment wall-clock timings;
// the CLI serializes it to BENCH_experiments.json so speedups across
// -jobs settings are measurable. All methods are nil-safe and safe for
// concurrent use.
type BenchLog struct {
	mu    sync.Mutex
	jobs  int
	cells []CellTime
	exps  []ExperimentTime
	tel   *TelemetrySummary
}

// TelemetrySummary is the one-line overhead record benchdiff prints: how
// many trace events the run produced and how many the bounded buffer had
// to drop.
type TelemetrySummary struct {
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`
}

// SetTelemetry attaches the run's event totals to the report.
func (b *BenchLog) SetTelemetry(ts TelemetrySummary) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tel = &ts
	b.mu.Unlock()
}

// NewBenchLog returns a log annotated with the worker-pool size in use.
func NewBenchLog(jobs int) *BenchLog {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &BenchLog{jobs: jobs}
}

// RecordCell appends one cell timing.
func (b *BenchLog) RecordCell(ct CellTime) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.cells = append(b.cells, ct)
	b.mu.Unlock()
}

// RecordExperiment appends one experiment-level timing, counting the cells
// recorded for it so far.
func (b *BenchLog) RecordExperiment(name string, seconds float64, err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, c := range b.cells {
		if c.Experiment == name {
			n++
		}
	}
	et := ExperimentTime{Experiment: name, Seconds: seconds, Cells: n}
	if err != nil {
		et.Err = err.Error()
	}
	b.exps = append(b.exps, et)
}

// benchReport is the serialized shape of BENCH_experiments.json.
type benchReport struct {
	Jobs             int               `json:"jobs"`
	GOMAXPROCS       int               `json:"gomaxprocs"`
	NumCPU           int               `json:"num_cpu"`
	TotalWallSeconds float64           `json:"total_wall_seconds"`
	Telemetry        *TelemetrySummary `json:"telemetry,omitempty"`
	Experiments      []ExperimentTime  `json:"experiments"`
	Cells            []CellTime        `json:"cells"`
}

// JSON renders the log. Cell order follows completion order (a timing
// artifact, deliberately not canonicalized — it shows the schedule).
func (b *BenchLog) JSON() ([]byte, error) {
	if b == nil {
		return []byte("{}"), nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var total float64
	for _, e := range b.exps {
		total += e.Seconds
	}
	rep := benchReport{
		Jobs:             b.jobs,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		TotalWallSeconds: total,
		Telemetry:        b.tel,
		Experiments:      b.exps,
		Cells:            b.cells,
	}
	return json.MarshalIndent(rep, "", "  ")
}
