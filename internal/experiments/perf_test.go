package experiments

import (
	"context"
	"testing"

	"mixtlb/internal/stats"
)

func avgCol(t *testing.T, tbl *stats.Table, filter func(row []string) bool, col int) float64 {
	t.Helper()
	var sum float64
	n := 0
	for _, row := range tbl.Rows {
		if filter == nil || filter(row) {
			sum += f(t, row[col])
			n++
		}
	}
	if n == 0 {
		t.Fatal("no matching rows")
	}
	return sum / float64(n)
}

func TestFigure14Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure14(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	systems := map[string]bool{}
	for _, row := range tbl.Rows {
		systems[row[0]] = true
	}
	for _, want := range []string{"native", "virtual", "gpu"} {
		if !systems[want] {
			t.Errorf("missing system %q", want)
		}
	}
	// The headline claim: MIX improves on split on average, and the
	// improvement is clearly positive for the superpage-heavy configs.
	if avg := avgCol(t, tbl, nil, 3); avg <= 0 {
		t.Errorf("average improvement = %v, want > 0", avg)
	}
	for _, cfg := range []string{"2MB", "1GB"} {
		avg := avgCol(t, tbl, func(row []string) bool { return row[1] == cfg }, 3)
		if avg <= 0 {
			t.Errorf("%s config: average improvement %v <= 0", cfg, avg)
		}
	}
}

func TestFigure15LeftShape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure15Left(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	// Rows per (system, memhog) group are ascending (the paper sorts
	// workloads by improvement).
	last := map[string]float64{}
	started := map[string]bool{}
	for _, row := range tbl.Rows {
		k := row[0] + "/" + row[1]
		v := f(t, row[3])
		if started[k] && v < last[k] {
			t.Errorf("group %s not ascending", k)
		}
		last[k], started[k] = v, true
	}
	if len(started) != 4 {
		t.Errorf("groups = %v", started)
	}
}

func TestFigure15RightShape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure15Right(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	splitAvg := avgCol(t, tbl, func(r []string) bool { return r[0] == "split" }, 2)
	mixAvg := avgCol(t, tbl, func(r []string) bool { return r[0] == "mix" }, 2)
	// MIX sits closer to ideal than split (Fig 15 right).
	if mixAvg > splitAvg {
		t.Errorf("overhead vs ideal: mix=%v split=%v, want mix <= split", mixAvg, splitAvg)
	}
}

func TestFigure16Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure16(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	designs := map[string]bool{}
	for _, row := range tbl.Rows {
		designs[row[0]] = true
	}
	for _, want := range []string{"skew+pred", "rehash+pred", "mix"} {
		if !designs[want] {
			t.Errorf("missing design %q in %v", want, designs)
		}
	}
	// The paper's Fig 16 claim: MIX sits in the top-right quadrant (both
	// improvements positive), while multi-indexing designs trade one axis
	// for the other (skew's predicted 2-way reads save energy but its
	// probe behaviour costs performance).
	mixPerf := avgCol(t, tbl, func(r []string) bool { return r[0] == "mix" }, 3)
	mixEnergy := avgCol(t, tbl, func(r []string) bool { return r[0] == "mix" }, 4)
	skewPerf := avgCol(t, tbl, func(r []string) bool { return r[0] == "skew+pred" }, 3)
	if mixPerf < 0 {
		t.Errorf("mix average perf improvement %v < 0", mixPerf)
	}
	if mixEnergy < 0 {
		t.Errorf("mix average energy savings %v < 0", mixEnergy)
	}
	if mixPerf < skewPerf {
		t.Errorf("mix perf %v below skew %v", mixPerf, skewPerf)
	}
}

func TestFigure17Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure17(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		total := f(t, row[6])
		sum := f(t, row[2]) + f(t, row[3]) + f(t, row[4]) + f(t, row[5])
		if diff := total - sum; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s/%s: breakdown does not sum to total (%v vs %v)", row[0], row[1], sum, total)
		}
		if row[0] == "split" && (total < 0.99 || total > 1.01) {
			t.Errorf("split not normalized to 1: %v", total)
		}
		// Fig 17: lookups+walks dominate; fills (mirroring) are minor.
		if fill := f(t, row[4]); row[0] == "mix" && fill > total/2 {
			t.Errorf("mix fill energy %v dominates total %v", fill, total)
		}
	}
}

func TestFigure18Shape(t *testing.T) {
	t.Parallel()
	tbl, err := Figure18(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		colt, coltpp, mix, mixcolt := f(t, row[2]), f(t, row[3]), f(t, row[4]), f(t, row[5])
		_ = coltpp
		// MIX+COLT is the best combination on average (Fig 18).
		if mixcolt < mix-1e-9 && mixcolt < colt {
			t.Errorf("%s/%s: mix+colt=%v below both mix=%v and colt=%v", row[0], row[1], mixcolt, mix, colt)
		}
	}
}

func TestAblationIndexBits(t *testing.T) {
	t.Parallel()
	tbl, err := AblationIndexBits(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	// Superpage indexing must raise misses substantially (the paper
	// reports 4-8x on average).
	var factors float64
	n := 0
	for _, row := range tbl.Rows {
		factors += f(t, row[3])
		n++
	}
	if avg := factors / float64(n); avg < 1.5 {
		t.Errorf("superpage-index miss inflation = %vx, want clearly > 1", avg)
	}
}

func TestScalingStudy(t *testing.T) {
	t.Parallel()
	tbl, err := ScalingStudy(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestDuplicateStudy(t *testing.T) {
	t.Parallel()
	tbl, err := DuplicateStudy(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	var blindDups float64
	for _, row := range tbl.Rows {
		if row[0] == "blind-mirrors" {
			blindDups += f(t, row[3])
		}
	}
	if blindDups == 0 {
		t.Error("blind mirroring produced no duplicates to eliminate")
	}
}

func TestCoalesceCapStudy(t *testing.T) {
	t.Parallel()
	tbl, err := CoalesceCapStudy(context.Background(), q(), []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	// K=1 (no coalescing, pure mirroring) must miss more than K=16.
	byK := map[string]float64{}
	n := map[string]int{}
	for _, row := range tbl.Rows {
		byK[row[1]] += f(t, row[2])
		n[row[1]]++
	}
	if byK["1"]/float64(n["1"]) < byK["16"]/float64(n["16"]) {
		t.Errorf("K=1 misses (%v) below K=16 (%v)", byK["1"], byK["16"])
	}
}

func TestEncodingStudy(t *testing.T) {
	t.Parallel()
	tbl, err := EncodingStudy(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tbl.Rows {
		vals[row[0]+"/"+row[1]] = f(t, row[2])
	}
	// Under popularity-ordered arrival the range encoding fragments:
	// bitmap must miss no more than range there.
	if vals["popularity/bitmap"] > vals["popularity/range"]+1e-9 {
		t.Errorf("bitmap %v vs range %v under popularity arrival", vals["popularity/bitmap"], vals["popularity/range"])
	}
}

func TestInvalidationStudy(t *testing.T) {
	t.Parallel()
	tbl, err := InvalidationStudy(context.Background(), q())
	if err != nil {
		t.Fatal(err)
	}
	walks := map[string]float64{}
	for _, row := range tbl.Rows {
		walks[row[0]] = f(t, row[1])
	}
	// Range entries drop whole bundles on invalidation, so their refill
	// traffic must be at least the bitmap design's.
	if walks["mix-range"] < walks["mix-bitmap"]-1e-9 {
		t.Errorf("range refill traffic %v below bitmap %v", walks["mix-range"], walks["mix-bitmap"])
	}
}
