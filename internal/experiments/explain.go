package experiments

import (
	"fmt"
	"io"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

// Explain replays a single translation under one design and narrates its
// cost, cycle by cycle, from the attribution ledger's charge trail. It
// rebuilds the breakdown experiment's environment (same fragmentation
// point, same seed), warms the hierarchy with the first selected
// workload's reference stream, then translates the requested address
// once and prints each charge in probe order with the per-level TLB it
// hit. The narration closes with a conservation line: the trail must sum
// exactly to the translation's simulated cycles.
//
// A va below the environment's mapping base is treated as an offset into
// the mapped footprint, so `vaddr=0x0` explains the footprint's first
// page without the caller knowing where the OS placed it.
func Explain(w io.Writer, s Scale, design string, va uint64) error {
	reg := s.registry()
	spec, ok := reg.Lookup(design)
	if !ok {
		return &mmu.UnknownDesignError{Name: design, Valid: reg.Names()}
	}
	wls := s.workloads()
	if len(wls) == 0 {
		return fmt.Errorf("explain: no workloads selected")
	}
	wl := wls[0]
	env, err := newNative(s, osmm.THS, breakdownMemhogFrac, s.Seed)
	if err != nil {
		return err
	}
	m, err := spec.Build(env.as.PageTable(), env.as.PageTable(),
		cachesim.DefaultHierarchy(), env.as.HandleFault)
	if err != nil {
		return err
	}
	led := ledger.New(0)
	m.AttachLedger(led)

	// Warm exactly as the experiments do, so the replayed translation
	// sees a realistically populated hierarchy, not cold structures.
	stream := wl.Build(env.base, env.fp, simrand.New(s.Seed))
	for i := uint64(0); i < s.WarmupRefs; i++ {
		r := stream.Next()
		m.Translate(tlb.Request{VA: r.VA, Write: r.Write, PC: r.PC})
	}

	target := addr.V(va)
	if va < uint64(env.base) {
		target = env.base + addr.V(va)
		fmt.Fprintf(w, "note: 0x%x is below the mapping base; explaining offset 0x%x into the footprint\n", va, va)
	}

	desc := env.as.PageTable().Descriptor()
	contig := "no hardware contiguity encoding"
	if desc.ContigPages > 1 {
		contig = fmt.Sprintf("%s encoding over %d-page blocks", desc.Contig, desc.ContigPages)
	}
	fmt.Fprintf(w, "design    %s\n", m.Name())
	fmt.Fprintf(w, "va        %v\n", target)
	fmt.Fprintf(w, "isa       %s: %d-level radix, %d-bit VAs, %s\n",
		desc.Name, desc.Depth(), desc.VABits, contig)
	fmt.Fprintf(w, "env       %s warmup over [%v, +%d MiB), memhog %.2f, seed %d\n",
		wl.Name, env.base, env.fp>>20, breakdownMemhogFrac, s.Seed)

	m.ResetStats()
	res := m.Translate(tlb.Request{VA: target})
	trail := led.Trail()
	tlbs := m.LevelTLBs()

	fmt.Fprintln(w, "charges:")
	var attributed uint64
	for i, st := range trail {
		attributed += st.Cycles
		where := ""
		if st.Level >= 0 && int(st.Level) < len(tlbs) {
			where = " in " + tlbs[st.Level].Name()
		}
		events := ""
		if st.Events > 1 {
			events = fmt.Sprintf(" over %d events", st.Events)
		}
		fmt.Fprintf(w, "  %2d. %-12s %6d cycles%s%s\n", i+1, st.Cat, st.Cycles, events, where)
	}
	if len(trail) == 0 {
		fmt.Fprintln(w, "  (none: the translation cost zero cycles)")
	}

	served := "page walk"
	for _, st := range trail {
		if st.Cat == ledger.WalkContig {
			served = fmt.Sprintf("page walk whose leaf carried the %s %s encoding (one PTE names a %d-page block)",
				desc.Name, desc.Contig, desc.ContigPages)
		}
	}
	switch {
	case res.Faulted:
		served = "fault (address not mapped; the handler refused)"
	case res.HitLevel >= 0:
		served = fmt.Sprintf("L%d hit", res.HitLevel+1)
		if int(res.HitLevel) < len(tlbs) {
			served += " in " + tlbs[res.HitLevel].Name()
		}
	}
	fmt.Fprintf(w, "result:   PA %v, %s page, served by %s, %d cycles\n",
		res.PA, res.Size, served, res.Cycles)
	if err := m.AuditLedger(); err != nil {
		return fmt.Errorf("explain: conservation audit failed: %w", err)
	}
	fmt.Fprintf(w, "audit:    %d/%d cycles attributed, books balance\n", attributed, res.Cycles)
	return nil
}
