package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/energy"
	"mixtlb/internal/gpu"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// designEnergyConfig maps a design to its energy-model description.
func designEnergyConfig(d mmu.Design) energy.Config {
	switch d {
	case mmu.DesignSkew:
		return energy.Config{L1Entries: 96, L2Entries: 384, Timestamps: true}
	case mmu.DesignMix, mmu.DesignMixColt:
		return energy.Config{L1Entries: 96, L2Entries: 512}
	case mmu.DesignRehash:
		return energy.Config{L1Entries: 96, L2Entries: 512}
	default: // split, colt variants
		return energy.Config{L1Entries: 100, L2Entries: 544}
	}
}

// figure16Designs are the multi-indexing competitors MIX is compared to.
var figure16Designs = []mmu.Design{mmu.DesignSkew, mmu.DesignRehash, mmu.DesignMix}

// Figure16 regenerates the performance-energy scatter (Fig 16): for each
// workload and multi-indexing design (skew-associative + predictor,
// hash-rehash + predictor) and for MIX, the % performance improvement and
// % address-translation energy saved, both relative to split TLBs. One
// cell per (system, workload); the split baseline and the three designs
// run inside the cell so every point shares one environment.
func Figure16(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 16: performance vs energy, relative to split",
		Columns: []string{"design", "system", "workload", "perf-improvement-%", "energy-savings-%"},
	}
	var cells []Cell
	for _, spec := range s.workloads() {
		wl := spec.Name
		cells = append(cells, Cell{
			Name: "native/" + wl,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				spec, err := workload.ByName(wl)
				if err != nil {
					return nil, err
				}
				model := energy.Default()
				env, err := newNative(cs, osmm.THS, 0.2, cs.Seed)
				if err != nil {
					return nil, err
				}
				type result struct {
					est perfmodel.Estimate
					e   float64
				}
				measure := func(d mmu.Design) (result, error) {
					st, est, caches, err := measureNative(ctx, cs, env, spec, d)
					if err != nil {
						return result{}, err
					}
					return result{est, model.TotalWithRuntime(st, caches, designEnergyConfig(d), est.TotalCycles)}, nil
				}
				base, err := measure(mmu.DesignSplit)
				if err != nil {
					return nil, err
				}
				var rows []Row
				for _, d := range figure16Designs {
					r, err := measure(d)
					if err != nil {
						return nil, err
					}
					rows = append(rows, Row{string(d), "native", wl,
						perfmodel.ImprovementPercent(base.est, r.est),
						energy.SavingsPercent(base.e, r.e)})
				}
				return rows, nil
			},
		})
	}
	// Virtualized points.
	for _, spec := range s.workloads() {
		wl := spec.Name
		cells = append(cells, Cell{
			Name: "virt/" + wl,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				spec, err := workload.ByName(wl)
				if err != nil {
					return nil, err
				}
				model := energy.Default()
				venv, err := newVirt(cs, 2, 0.2, cs.Seed)
				if err != nil {
					return nil, err
				}
				baseSt, baseEst, err := measureVirt(ctx, cs, venv, spec, mmu.DesignSplit)
				if err != nil {
					return nil, err
				}
				baseE := model.TotalWithRuntime(baseSt, nil, designEnergyConfig(mmu.DesignSplit), baseEst.TotalCycles)
				var rows []Row
				for _, d := range figure16Designs {
					st, est, err := measureVirt(ctx, cs, venv, spec, d)
					if err != nil {
						return nil, err
					}
					rows = append(rows, Row{string(d), "virtual", wl,
						perfmodel.ImprovementPercent(baseEst, est),
						energy.SavingsPercent(baseE, model.TotalWithRuntime(st, nil, designEnergyConfig(d), est.TotalCycles))})
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "fig16", t, cells)
	AppendRows(t, results)
	return t, err
}

// Figure17 regenerates the dynamic-energy breakdown (Fig 17): the share
// of address-translation dynamic energy spent on lookups, page-table
// walks, fills, and other operations, for GPU TLB designs, normalized to
// the split design's total. One cell per kernel — normalization needs the
// split total, so a kernel's four design runs stay together.
func Figure17(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 17: dynamic energy breakdown (GPU), normalized to split total",
		Columns: []string{"design", "kernel", "lookup", "walk", "fill", "other", "total"},
	}
	kernels := gpu.Kernels()
	if len(kernels) > 3 {
		kernels = kernels[:3]
	}
	var cells []Cell
	for _, k := range kernels {
		kn := k.Name
		cells = append(cells, Cell{
			Name: kn,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				k, err := gpu.KernelByName(kn)
				if err != nil {
					return nil, err
				}
				model := energy.Default()
				sub := cs
				sub.FootprintBytes = cs.FootprintBytes * 3 / 10
				env, err := newNative(sub, osmm.THS, 0.2, cs.Seed)
				if err != nil {
					return nil, err
				}
				run := func(d mmu.Design) (energy.Breakdown, error) {
					if err := ctx.Err(); err != nil {
						return energy.Breakdown{}, err
					}
					caches := cachesim.DefaultHierarchy()
					sys, err := gpu.New(gpu.Config{Cores: cs.GPUCores, Design: d}, env.as, caches)
					if err != nil {
						return energy.Breakdown{}, err
					}
					cores := cs.GPUCores
					kb := k.Build
					sys.AttachStreams(func(id int) workload.Stream {
						return kb(id, cores, env.base, env.fp, simrand.New(cs.Seed+uint64(id)))
					})
					if err := sys.Run(cs.WarmupRefs); err != nil {
						return energy.Breakdown{}, err
					}
					sys.ResetStats()
					if err := sys.Run(cs.MeasureRefs); err != nil {
						return energy.Breakdown{}, err
					}
					cfg := designEnergyConfig(d)
					cfg.L1Entries *= cs.GPUCores // per-core L1s all burn energy
					return model.Dynamic(sys.Stats(), caches, cfg), nil
				}
				baseB, err := run(mmu.DesignSplit)
				if err != nil {
					return nil, fmt.Errorf("fig17 %s split: %w", kn, err)
				}
				norm := baseB.Total()
				if norm == 0 {
					norm = 1
				}
				var rows []Row
				for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignRehash, mmu.DesignSkew, mmu.DesignMix} {
					b, err := run(d)
					if err != nil {
						return nil, fmt.Errorf("fig17 %s %s: %w", kn, d, err)
					}
					rows = append(rows, Row{string(d), kn, b.Lookup / norm, b.Walk / norm, b.Fill / norm, b.Other / norm, b.Total() / norm})
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "fig17", t, cells)
	AppendRows(t, results)
	return t, err
}

// figure18Designs are the coalescing variants compared against split.
var figure18Designs = []mmu.Design{mmu.DesignColt, mmu.DesignColtPP, mmu.DesignMix, mmu.DesignMixColt}

// Figure18 regenerates the COLT comparison (Fig 18): average improvement
// over split for COLT (coalescing 4KB pages only), COLT++ (all split
// components coalescing), MIX, and MIX+COLT, for native and virtualized
// systems under two fragmentation levels. Cells run per
// (system, memhog, workload), each returning the four designs'
// improvements; the cross-workload average is post-processing.
func Figure18(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 18: COLT variants and MIX vs split (average improvement %)",
		Columns: []string{"system", "memhog%", "colt", "colt++", "mix", "mix+colt"},
	}
	// groups collects the cell index range to average into one table row.
	type group struct {
		system     string
		hogPct     int
		start, end int
	}
	var (
		cells  []Cell
		groups []group
	)
	for _, hogPct := range []int{20, 60} {
		g := group{system: "native", hogPct: hogPct, start: len(cells)}
		for _, spec := range s.workloads() {
			hogPct, wl := hogPct, spec.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("native/hog%d/%s", hogPct, wl),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, float64(hogPct)/100, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig18 memhog=%d%%: %w", hogPct, err)
					}
					_, baseEst, _, err := measureNative(ctx, cs, env, spec, mmu.DesignSplit)
					if err != nil {
						return nil, err
					}
					row := Row{"native", hogPct}
					for _, d := range figure18Designs {
						_, est, _, err := measureNative(ctx, cs, env, spec, d)
						if err != nil {
							return nil, err
						}
						row = append(row, perfmodel.ImprovementPercent(baseEst, est))
					}
					return []Row{row}, nil
				},
			})
		}
		g.end = len(cells)
		groups = append(groups, g)
	}
	// Virtualized: one consolidation point.
	{
		g := group{system: "virtual-2vm", hogPct: 20, start: len(cells)}
		for _, spec := range s.workloads() {
			wl := spec.Name
			cells = append(cells, Cell{
				Name: "virt-2vm/" + wl,
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					venv, err := newVirt(cs, 2, 0.2, cs.Seed)
					if err != nil {
						return nil, err
					}
					_, baseEst, err := measureVirt(ctx, cs, venv, spec, mmu.DesignSplit)
					if err != nil {
						return nil, err
					}
					row := Row{"virtual-2vm", 20}
					for _, d := range figure18Designs {
						_, est, err := measureVirt(ctx, cs, venv, spec, d)
						if err != nil {
							return nil, err
						}
						row = append(row, perfmodel.ImprovementPercent(baseEst, est))
					}
					return []Row{row}, nil
				},
			})
		}
		g.end = len(cells)
		groups = append(groups, g)
	}
	results, err := RunGrid(ctx, s, "fig18", t, cells)
	if err != nil {
		return t, err
	}
	for _, g := range groups {
		avgs := make([]float64, len(figure18Designs))
		n := 0
		for _, cell := range results[g.start:g.end] {
			if cell == nil { // filtered out by -cell
				continue
			}
			for i := range figure18Designs {
				avgs[i] += cell[0][2+i].(float64)
			}
			n++
		}
		if n == 0 {
			continue
		}
		row := Row{g.system, g.hogPct}
		for _, a := range avgs {
			row = append(row, a/float64(n))
		}
		t.AddRow(row...)
	}
	return t, nil
}
