package experiments

import (
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/energy"
	"mixtlb/internal/gpu"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// designEnergyConfig maps a design to its energy-model description.
func designEnergyConfig(d mmu.Design) energy.Config {
	switch d {
	case mmu.DesignSkew:
		return energy.Config{L1Entries: 96, L2Entries: 384, Timestamps: true}
	case mmu.DesignMix, mmu.DesignMixColt:
		return energy.Config{L1Entries: 96, L2Entries: 512}
	case mmu.DesignRehash:
		return energy.Config{L1Entries: 96, L2Entries: 512}
	default: // split, colt variants
		return energy.Config{L1Entries: 100, L2Entries: 544}
	}
}

// Figure16 regenerates the performance-energy scatter (Fig 16): for each
// workload and multi-indexing design (skew-associative + predictor,
// hash-rehash + predictor) and for MIX, the % performance improvement and
// % address-translation energy saved, both relative to split TLBs.
func Figure16(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 16: performance vs energy, relative to split",
		Columns: []string{"design", "system", "workload", "perf-improvement-%", "energy-savings-%"},
	}
	model := energy.Default()
	env, err := newNative(s, osmm.THS, 0.2, s.Seed)
	if err != nil {
		return nil, err
	}
	type result struct {
		est perfmodel.Estimate
		e   float64
	}
	measure := func(spec workload.Spec, d mmu.Design) (result, error) {
		st, est, caches, err := measureNative(s, env, spec, d)
		if err != nil {
			return result{}, err
		}
		return result{est, model.TotalWithRuntime(st, caches, designEnergyConfig(d), est.TotalCycles)}, nil
	}
	for _, spec := range s.workloads() {
		base, err := measure(spec, mmu.DesignSplit)
		if err != nil {
			return nil, err
		}
		for _, d := range []mmu.Design{mmu.DesignSkew, mmu.DesignRehash, mmu.DesignMix} {
			r, err := measure(spec, d)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(d), "native", spec.Name,
				perfmodel.ImprovementPercent(base.est, r.est),
				energy.SavingsPercent(base.e, r.e))
		}
	}
	// Virtualized points.
	venv, err := newVirt(s, 2, 0.2, s.Seed)
	if err != nil {
		return nil, err
	}
	for _, spec := range s.workloads() {
		baseSt, baseEst, err := measureVirt(s, venv, spec, mmu.DesignSplit)
		if err != nil {
			return nil, err
		}
		baseE := model.TotalWithRuntime(baseSt, nil, designEnergyConfig(mmu.DesignSplit), baseEst.TotalCycles)
		for _, d := range []mmu.Design{mmu.DesignSkew, mmu.DesignRehash, mmu.DesignMix} {
			st, est, err := measureVirt(s, venv, spec, d)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(d), "virtual", spec.Name,
				perfmodel.ImprovementPercent(baseEst, est),
				energy.SavingsPercent(baseE, model.TotalWithRuntime(st, nil, designEnergyConfig(d), est.TotalCycles)))
		}
	}
	return t, nil
}

// Figure17 regenerates the dynamic-energy breakdown (Fig 17): the share
// of address-translation dynamic energy spent on lookups, page-table
// walks, fills, and other operations, for GPU TLB designs, normalized to
// the split design's total.
func Figure17(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 17: dynamic energy breakdown (GPU), normalized to split total",
		Columns: []string{"design", "kernel", "lookup", "walk", "fill", "other", "total"},
	}
	model := energy.Default()
	sub := s
	sub.FootprintBytes = s.FootprintBytes * 3 / 10
	env, err := newNative(sub, osmm.THS, 0.2, s.Seed)
	if err != nil {
		return nil, err
	}
	kernels := gpu.Kernels()
	if len(kernels) > 3 {
		kernels = kernels[:3]
	}
	for _, k := range kernels {
		run := func(d mmu.Design) (energy.Breakdown, error) {
			caches := cachesim.DefaultHierarchy()
			sys, err := gpu.New(gpu.Config{Cores: s.GPUCores, Design: d}, env.as, caches)
			if err != nil {
				return energy.Breakdown{}, err
			}
			cores := s.GPUCores
			kb := k.Build
			sys.AttachStreams(func(id int) workload.Stream {
				return kb(id, cores, env.base, env.fp, simrand.New(s.Seed+uint64(id)))
			})
			if err := sys.Run(s.WarmupRefs); err != nil {
				return energy.Breakdown{}, err
			}
			sys.ResetStats()
			cachesMeasured := cachesim.DefaultHierarchy()
			_ = cachesMeasured
			if err := sys.Run(s.MeasureRefs); err != nil {
				return energy.Breakdown{}, err
			}
			cfg := designEnergyConfig(d)
			cfg.L1Entries *= s.GPUCores // per-core L1s all burn energy
			return model.Dynamic(sys.Stats(), caches, cfg), nil
		}
		baseB, err := run(mmu.DesignSplit)
		if err != nil {
			return nil, fmt.Errorf("fig17 %s split: %w", k.Name, err)
		}
		norm := baseB.Total()
		if norm == 0 {
			norm = 1
		}
		for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignRehash, mmu.DesignSkew, mmu.DesignMix} {
			b, err := run(d)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s %s: %w", k.Name, d, err)
			}
			t.AddRow(string(d), k.Name, b.Lookup/norm, b.Walk/norm, b.Fill/norm, b.Other/norm, b.Total()/norm)
		}
	}
	return t, nil
}

// Figure18 regenerates the COLT comparison (Fig 18): average improvement
// over split for COLT (coalescing 4KB pages only), COLT++ (all split
// components coalescing), MIX, and MIX+COLT, for native and virtualized
// systems under two fragmentation levels.
func Figure18(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 18: COLT variants and MIX vs split (average improvement %)",
		Columns: []string{"system", "memhog%", "colt", "colt++", "mix", "mix+colt"},
	}
	designs := []mmu.Design{mmu.DesignColt, mmu.DesignColtPP, mmu.DesignMix, mmu.DesignMixColt}
	for _, hogPct := range []int{20, 60} {
		env, err := newNative(s, osmm.THS, float64(hogPct)/100, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig18 memhog=%d%%: %w", hogPct, err)
		}
		avgs := make([]float64, len(designs))
		n := 0
		for _, spec := range s.workloads() {
			_, baseEst, _, err := measureNative(s, env, spec, mmu.DesignSplit)
			if err != nil {
				return nil, err
			}
			for i, d := range designs {
				_, est, _, err := measureNative(s, env, spec, d)
				if err != nil {
					return nil, err
				}
				avgs[i] += perfmodel.ImprovementPercent(baseEst, est)
			}
			n++
		}
		row := []interface{}{"native", hogPct}
		for _, a := range avgs {
			row = append(row, a/float64(n))
		}
		t.AddRow(row...)
	}
	// Virtualized: one consolidation point.
	venv, err := newVirt(s, 2, 0.2, s.Seed)
	if err != nil {
		return nil, err
	}
	avgs := make([]float64, len(designs))
	n := 0
	for _, spec := range s.workloads() {
		_, baseEst, err := measureVirt(s, venv, spec, mmu.DesignSplit)
		if err != nil {
			return nil, err
		}
		for i, d := range designs {
			_, est, err := measureVirt(s, venv, spec, d)
			if err != nil {
				return nil, err
			}
			avgs[i] += perfmodel.ImprovementPercent(baseEst, est)
		}
		n++
	}
	row := []interface{}{"virtual-2vm", 20}
	for _, a := range avgs {
		row = append(row, a/float64(n))
	}
	t.AddRow(row...)
	return t, nil
}
