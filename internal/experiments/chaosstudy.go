package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/smp"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// ChaosStudy sweeps every TLB design under fault injection: TLB-entry
// bit flips (detectable and silent), PTE-fetch corruption, lost/delayed
// shootdown IPIs, and transient allocator OOM — all driven from one seed
// so any failure replays exactly. Each design runs a two-core system with
// Zipf traffic and munmap churn; the translation oracle cross-checks every
// result, so the headline column is "unrecovered": silent wrong
// translations that reached the workload. A healthy stack reports zero.
// Rates come from Scale.Chaos verbatim; all-zero rates run the same sweep
// fault-free, where every fault column must read zero. One cell per
// design; a cell's fault schedule derives from its split seed, so a
// failure line's -cell and base seed replay that design's faults exactly.
func ChaosStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Chaos: fault injection and recovery by design (seed %d)", s.Seed),
		Columns: []string{"design", "tlb-corrupt", "parity-detected", "silent",
			"pte-corrupt", "oracle-catches", "recovered", "unrecovered",
			"ipi-lost", "ipi-forced", "alloc-fails"},
	}
	const cores = 2
	var cells []Cell
	for _, d := range mmu.AllDesigns() {
		if d == mmu.DesignIdeal {
			continue // no TLB array to corrupt
		}
		d := d
		cells = append(cells, Cell{
			Name: string(d),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				rates := cs.Chaos
				env, err := newNative(cs, osmm.THS, 0.2, cs.Seed)
				if err != nil {
					return nil, err
				}
				in := chaos.NewInjector(cs.Seed, rates)
				or := chaos.NewOracle(env.as.PageTable())
				sys, err := smp.New(smp.Config{Cores: cores, Design: d}, env.as, cachesim.DefaultHierarchy())
				if err != nil {
					return nil, err
				}
				sys.SetChaos(in)
				for _, c := range sys.Cores() {
					c.InjectFaults(in)
					c.AttachOracle(or)
				}
				env.phys.SetFaultHook(in.FailAlloc)
				if cs.Telemetry != nil {
					sys.AttachTelemetry(cs.Telemetry)
					in.AttachTelemetry(cs.Telemetry)
				}
				streams := make([]workload.Stream, cores)
				for i := range streams {
					streams[i] = workload.NewZipf(env.base, env.fp, simrand.New(cs.Seed+uint64(i)), 0.9, 0.1, uint64(i))
				}
				if err := sys.Run(streams, cs.WarmupRefs); err != nil {
					return nil, fmt.Errorf("chaos %s warmup (seed %d): %w", d, cs.Seed, err)
				}
				sys.ResetStats()
				warm := in.Stats() // injector keeps running through warmup; report deltas
				rng := simrand.New(cs.Seed ^ 0xc4a05)
				chunk := cs.MeasureRefs / 10
				for round := 0; round < 10; round++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					if err := sys.Run(streams, chunk); err != nil {
						return nil, fmt.Errorf("chaos %s round %d (seed %d): %w", d, round, cs.Seed, err)
					}
					// Mapping churn: unmap a random 4MB region (shootdown storm
					// under IPI loss) and let demand faults remap it — under the
					// alloc-fail hook, sometimes splintered to 4KB pages.
					if env.fp > 8<<20 {
						off := addr.AlignedDown(rng.Uint64n(env.fp-(4<<20)), addr.Size2M)
						sys.Munmap(env.base+addr.V(off), 4<<20)
					}
				}
				env.phys.SetFaultHook(nil)
				if cs.Telemetry != nil {
					sys.FlushTelemetry()
					in.FlushTelemetry()
					env.flushTelemetry()
				}
				agg := sys.Aggregate()
				is := in.Stats()
				ss := sys.Stats()
				return []Row{{string(d), is.TLBCorruptions - warm.TLBCorruptions,
					agg.ECC.ParityDetected, agg.ECC.SilentCorruptions, agg.PTECorruptions,
					agg.OracleMismatches, agg.OracleRecoveries, agg.OracleUnrecovered,
					ss.IPIsLost, ss.ForcedDeliveries, is.AllocFailures - warm.AllocFailures}}, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "chaos", t, cells)
	AppendRows(t, results)
	return t, err
}
