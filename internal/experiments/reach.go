package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

// defaultReachDesigns pits the two ways of buying translation reach
// against each other on fragmented environments: MIX coalesces many
// small pages into each SRAM entry, while the Victima-style designs
// spill evicted entries into cache-resident victim bundles. The split
// baseline anchors both; victima-lite shows capacity sensitivity.
var defaultReachDesigns = []string{
	string(mmu.DesignSplit),
	string(mmu.DesignMix),
	string(mmu.DesignVictima),
	string(mmu.DesignVictimaLite),
	string(mmu.DesignMixVictima),
}

// reachMemhogFracs are the fragmentation points of the study. 0.55 is
// the mixed 2MB/4KB regime where coalescing still finds contiguity;
// 0.85 is the mostly-4KB regime where SRAM reach collapses and only
// sheer capacity (victim bundles) keeps walks off the critical path.
var reachMemhogFracs = []float64{0.55, 0.85}

// ReachStudy compares SRAM reach (coalescing, MIX) against spilled
// reach (cache-backed victim levels, after Victima) under memhog
// fragmentation. Per (design, workload, memhog) it reports per-level
// hit rates including deep (victim) hits, walk frequency, the reach
// actually resident at each depth when the stream ends, demotion
// traffic, and the average cost of a deep hit next to the average cost
// of the walk it replaced — the victim level only pays off while
// deep-cyc stays below walk-cyc. One cell per (workload, memhog) pair.
func ReachStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Reach study: coalesced SRAM reach (MIX) vs spilled cache reach (Victima)",
		Columns: []string{"design", "workload", "memhog", "l1-hit%", "l2-hit%",
			"deep-hit%", "walks-per-1k", "sram-reach-kb", "deep-reach-kb",
			"demote-per-1k", "deep-cyc", "walk-cyc", "cyc/acc"},
	}
	designs := s.Designs
	if len(designs) == 0 {
		designs = defaultReachDesigns
	}
	reg := s.registry()
	specs := make([]mmu.DesignSpec, len(designs))
	for i, d := range designs {
		spec, ok := reg.Lookup(d)
		if !ok {
			return nil, &mmu.UnknownDesignError{Name: d, Valid: reg.Names()}
		}
		specs[i] = spec
	}
	var cells []Cell
	for _, wl := range s.workloads() {
		for _, frac := range reachMemhogFracs {
			wl, frac := wl.Name, frac
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s/hog%02.0f", wl, 100*frac),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, frac, cs.Seed)
					if err != nil {
						return nil, err
					}
					var rows []Row
					for _, ds := range specs {
						caches := cachesim.DefaultHierarchy()
						m, err := ds.Build(env.as.PageTable(), env.as.PageTable(), caches, env.as.HandleFault)
						if err != nil {
							return nil, err
						}
						if cs.Telemetry != nil {
							m.AttachTelemetry(cs.Telemetry.With("workload", wl))
						}
						stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
						st, err := runStream(ctx, cs, m, stream)
						if err != nil {
							return nil, fmt.Errorf("%s/%s (seed %d): %w", wl, ds.Name, cs.Seed, err)
						}
						if cs.Telemetry != nil {
							m.FlushTelemetry()
							env.flushTelemetry()
						}
						sramKB, deepKB := reachSnapshot(m)
						acc := float64(st.Accesses)
						if acc == 0 {
							acc = 1
						}
						rows = append(rows, Row{ds.Name, wl, frac,
							100 * float64(st.L1Hits) / acc,
							100 * float64(st.L2Hits) / acc,
							100 * float64(st.DeepHits) / acc,
							1000 * float64(st.Walks) / acc,
							sramKB,
							deepKB,
							1000 * float64(st.Demotions) / acc,
							perfmodel.AvgVictimProbeCycles(st),
							perfmodel.AvgWalkCycles(st),
							st.CyclesPerAccess()})
					}
					return rows, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "reach", t, cells)
	AppendRows(t, results)
	return t, err
}

// reachSnapshot sums the end-of-stream resident reach (in KB) of the
// hierarchy's SRAM levels and of its cache-backed victim level, for
// levels that can report it. Levels are classified structurally: a
// level that absorbs demotions is the spilled one.
func reachSnapshot(m *mmu.MMU) (sramKB, deepKB float64) {
	for _, lv := range m.LevelTLBs() {
		rr, ok := lv.(tlb.ReachReporter)
		if !ok {
			continue
		}
		kb := float64(rr.ReachBytes()) / 1024
		if _, deep := lv.(tlb.Demoter); deep {
			deepKB += kb
		} else {
			sramKB += kb
		}
	}
	return sramKB, deepKB
}
