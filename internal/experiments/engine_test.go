package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
)

// syntheticGrid builds n cells that each emit one row derived purely from
// the cell's split seed — any scheduling dependence shows up as a diff.
func syntheticGrid(n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{
			Name: fmt.Sprintf("cell%02d", i),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				rng := simrand.New(cs.Seed)
				// Consume a few values so divergent sequences are obvious.
				v := rng.Uint64() ^ rng.Uint64()
				return []Row{{fmt.Sprintf("cell%02d", i), v, rng.Float64()}}, nil
			},
		}
	}
	return cells
}

func gridTable() *stats.Table {
	return &stats.Table{Title: "grid", Columns: []string{"cell", "value", "frac"}}
}

func runSynthetic(t *testing.T, jobs int) string {
	t.Helper()
	s := QuickScale()
	s.Jobs = jobs
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, syntheticGrid(12))
	if err != nil {
		t.Fatal(err)
	}
	AppendRows(tbl, results)
	return tbl.CSV()
}

func TestRunGridDeterministicAcrossJobs(t *testing.T) {
	t.Parallel()
	want := runSynthetic(t, 1)
	for _, jobs := range []int{2, 8, 32} {
		if got := runSynthetic(t, jobs); got != want {
			t.Errorf("-jobs %d table differs from -jobs 1:\n%s\nvs\n%s", jobs, got, want)
		}
	}
}

func TestRunGridCanonicalOrder(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 8
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, syntheticGrid(16))
	if err != nil {
		t.Fatal(err)
	}
	AppendRows(tbl, results)
	for i, row := range tbl.Rows {
		if want := fmt.Sprintf("cell%02d", i); row[0] != want {
			t.Fatalf("row %d = %s, want %s (canonical order broken)", i, row[0], want)
		}
	}
}

func TestCellSeedDerivation(t *testing.T) {
	t.Parallel()
	a := CellSeed(42, "fig14", "native/2MB/mcf")
	if a != CellSeed(42, "fig14", "native/2MB/mcf") {
		t.Error("CellSeed not a pure function")
	}
	if a == CellSeed(42, "fig14", "native/2MB/gups") {
		t.Error("different cells share a seed")
	}
	if a == CellSeed(42, "fig15l", "native/2MB/mcf") {
		t.Error("different experiments share a seed")
	}
	if a == CellSeed(43, "fig14", "native/2MB/mcf") {
		t.Error("base seed does not propagate")
	}
	// Label-boundary safety: concatenation-equal paths must not collide.
	if simrand.SplitSeed(1, "ab", "c") == simrand.SplitSeed(1, "a", "bc") {
		t.Error("label boundaries are not separated in the hash")
	}
}

func TestRunGridPanicBecomesCellError(t *testing.T) {
	t.Parallel()
	cells := syntheticGrid(4)
	cells[2].Run = func(ctx context.Context, cs Scale) ([]Row, error) {
		panic("cell exploded")
	}
	s := QuickScale()
	s.Jobs = 1
	pub := &TablePublisher{}
	s.Progress = pub
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, cells)

	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Cell != "cell02" || ce.Experiment != "synthetic" {
		t.Errorf("cell identity = %+v", ce)
	}
	if want := CellSeed(s.Seed, "synthetic", "cell02"); ce.Seed != want {
		t.Errorf("CellError seed = %d, want derived %d", ce.Seed, want)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause = %v, want wrapped *PanicError", ce.Err)
	}
	if pe.Stack == "" || pe.Value != "cell exploded" {
		t.Errorf("panic diagnostics = %+v", pe)
	}
	if !strings.Contains(ce.Error(), `-cell "cell02"`) {
		t.Errorf("error lacks reproduce hint: %v", ce)
	}
	// Cells before the failure completed and were published.
	if results[0] == nil || results[1] == nil {
		t.Error("completed cells lost on failure")
	}
	snap := pub.Snapshot()
	if snap == nil || len(snap.Rows) == 0 {
		t.Error("no partial progress published before the failure")
	}
}

func TestRunGridFailFastCancelsRemaining(t *testing.T) {
	t.Parallel()
	var ran int32
	cells := make([]Cell, 6)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Name: fmt.Sprintf("cell%02d", i),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				if i == 0 {
					return nil, errors.New("boom")
				}
				atomic.AddInt32(&ran, 1)
				return []Row{{i}}, nil
			},
		}
	}
	s := QuickScale()
	s.Jobs = 1 // serial: the index-0 failure must stop the rest
	_, err := RunGrid(context.Background(), s, "synthetic", gridTable(), cells)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Cell != "cell00" {
		t.Fatalf("err = %v, want CellError for cell00", err)
	}
	if n := atomic.LoadInt32(&ran); n != 0 {
		t.Errorf("%d cells ran after the serial failure", n)
	}
}

func TestRunGridReportsLowestIndexedFailure(t *testing.T) {
	t.Parallel()
	// Two failing cells: whichever schedule runs them, the error reported
	// must be the canonical (lowest-index) real failure.
	cells := syntheticGrid(8)
	fail := func(name string) func(context.Context, Scale) ([]Row, error) {
		return func(ctx context.Context, cs Scale) ([]Row, error) {
			return nil, fmt.Errorf("%s failed", name)
		}
	}
	cells[3].Run = fail("three")
	cells[6].Run = fail("six")
	s := QuickScale()
	s.Jobs = 4
	for trial := 0; trial < 10; trial++ {
		_, err := RunGrid(context.Background(), s, "synthetic", gridTable(), cells)
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *CellError", err)
		}
		if ce.Cell != "cell03" && ce.Cell != "cell06" {
			t.Fatalf("unexpected failing cell %q", ce.Cell)
		}
		// With jobs=4 both may fail before cancellation lands; the
		// selection rule prefers the lowest index among real errors.
		if ce.Cell == "cell06" {
			// acceptable only if cell03 was cancelled before running —
			// impossible at jobs=4 over 8 cells where 3 dispatches in the
			// first wave. Tolerate nothing.
			t.Fatalf("reported cell06, want canonical cell03")
		}
	}
}

func TestRunGridCellFilter(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 2
	s.Cell = "cell01"
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, syntheticGrid(6))
	if err != nil {
		t.Fatal(err)
	}
	// Results stay aligned to the declared grid: only the matching slot
	// is populated.
	for i, r := range results {
		if (i == 1) != (r != nil) {
			t.Errorf("slot %d populated=%v under filter", i, r != nil)
		}
	}
	// The filtered cell's seed must equal its unfiltered seed, so a
	// reproduction run replays the identical simulation.
	full := runSynthetic(t, 1)
	AppendRows(tbl, results)
	if !strings.Contains(full, tbl.CSV()[strings.Index(tbl.CSV(), "\n")+1:]) {
		t.Errorf("filtered cell row not byte-identical to its full-grid row:\n%s", tbl.CSV())
	}

	s.Cell = "nope"
	if _, err := RunGrid(context.Background(), s, "synthetic", gridTable(), syntheticGrid(3)); err == nil ||
		!strings.Contains(err.Error(), "cell00") {
		t.Errorf("no-match filter error should list cells, got: %v", err)
	}
}

func TestRunGridHonorsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var after int32
	cells := []Cell{
		{Name: "blocker", Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Name: "later", Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			atomic.AddInt32(&after, 1)
			return []Row{{1}}, nil
		}},
	}
	s := QuickScale()
	s.Jobs = 1
	done := make(chan error, 1)
	go func() {
		_, err := RunGrid(ctx, s, "synthetic", gridTable(), cells)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunGrid did not return after cancellation")
	}
	if atomic.LoadInt32(&after) != 0 {
		t.Error("a cell ran after cancellation")
	}
}

func TestBenchLogJSON(t *testing.T) {
	t.Parallel()
	b := NewBenchLog(4)
	b.RecordCell(CellTime{Experiment: "fig1", Cell: "mcf/THS", Seed: 7, Seconds: 0.25})
	b.RecordCell(CellTime{Experiment: "fig1", Cell: "gups/THS", Seed: 9, Seconds: 0.5})
	b.RecordExperiment("fig1", 0.6, nil)
	b.RecordExperiment("fig9", 1.5, errors.New("partial"))
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Jobs        int     `json:"jobs"`
		Total       float64 `json:"total_wall_seconds"`
		Experiments []struct {
			Experiment string  `json:"experiment"`
			Seconds    float64 `json:"seconds"`
			Cells      int     `json:"cells"`
			Err        string  `json:"error"`
		} `json:"experiments"`
		Cells []CellTime `json:"cells"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Jobs != 4 || len(rep.Cells) != 2 || len(rep.Experiments) != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Experiments[0].Cells != 2 {
		t.Errorf("fig1 cell count = %d, want 2", rep.Experiments[0].Cells)
	}
	if rep.Experiments[1].Err == "" {
		t.Error("experiment error not recorded")
	}
	if rep.Total < 2.0 || rep.Total > 2.2 {
		t.Errorf("total wall = %v", rep.Total)
	}

	// Nil-safety: a nil log absorbs records and renders empty JSON.
	var nilLog *BenchLog
	nilLog.RecordCell(CellTime{})
	nilLog.RecordExperiment("x", 1, nil)
	if data, err := nilLog.JSON(); err != nil || string(data) != "{}" {
		t.Errorf("nil log JSON = %s, %v", data, err)
	}
}

func TestRunGridRecordsBenchTimings(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 2
	s.Bench = NewBenchLog(2)
	if _, err := RunGrid(context.Background(), s, "synthetic", gridTable(), syntheticGrid(5)); err != nil {
		t.Fatal(err)
	}
	data, err := s.Bench.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Cells []CellTime `json:"cells"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 5 {
		t.Fatalf("recorded %d cell timings, want 5", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Experiment != "synthetic" || c.Seed == 0 {
			t.Errorf("cell timing = %+v", c)
		}
	}
}

// TestRunSafeCancelsOnTimeout verifies the ctx plumbing end to end: a
// timeout cancels the experiment's context so in-flight cells observe it.
func TestRunSafeCancelsOnTimeout(t *testing.T) {
	t.Parallel()
	sawCancel := make(chan struct{})
	e := Experiment{
		Name: "hang",
		Run: func(ctx context.Context, s Scale) (*stats.Table, error) {
			<-ctx.Done()
			close(sawCancel)
			return nil, ctx.Err()
		},
	}
	_, err := RunSafe(context.Background(), e, QuickScale(), 30*time.Millisecond)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("experiment never observed the timeout cancellation")
	}
}
