package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mixtlb/internal/journal"
	"mixtlb/internal/stats"
)

// countingGrid is syntheticGrid plus a per-cell invocation counter, so
// tests can assert exactly which cells were simulated vs. replayed or
// retried.
func countingGrid(n int, calls *sync.Map) []Cell {
	cells := syntheticGrid(n)
	for i := range cells {
		name, run := cells[i].Name, cells[i].Run
		cells[i].Run = func(ctx context.Context, cs Scale) ([]Row, error) {
			c, _ := calls.LoadOrStore(name, new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
			return run(ctx, cs)
		}
	}
	return cells
}

func gridCSV(t *testing.T, s Scale, cells []Cell) string {
	t.Helper()
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, cells)
	if err != nil {
		t.Fatal(err)
	}
	AppendRows(tbl, results)
	return tbl.CSV()
}

// TestResumeByteIdentical is the kill-mid-run test: run a grid that dies
// after ~half its cells checkpointed, then resume from the journal and
// require the final table to be byte-identical to an uninterrupted run —
// at -jobs 1 and -jobs 8 — with only the remainder actually simulated.
func TestResumeByteIdentical(t *testing.T) {
	t.Parallel()
	const n = 12
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs%d", jobs), func(t *testing.T) {
			t.Parallel()
			s := QuickScale()
			s.Jobs = jobs
			want := gridCSV(t, s, syntheticGrid(n))

			path := filepath.Join(t.TempDir(), "grid.journal")
			fp := s.Fingerprint()

			// First run: cancel the grid once half the cells have
			// checkpointed (the engine journals before reporting progress,
			// so every cell ProgressFn saw is durable — same ordering the
			// CLI's -kill-after-cells relies on).
			j1, err := journal.Create(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			var seen atomic.Int64
			s1 := s
			s1.Journal = j1
			s1.ProgressFn = func(ev ProgressEvent) {
				if seen.Add(1) == n/2 {
					cancel()
				}
			}
			_, err = RunGrid(ctx, s1, "synthetic", gridTable(), syntheticGrid(n))
			j1.Close()
			if err == nil {
				t.Fatal("interrupted run reported success")
			}
			if st := j1.Stats(); st.Appended < n/2 || st.Appended >= n {
				t.Fatalf("first run checkpointed %d cells, want partial progress", st.Appended)
			}

			// Resume: only the un-checkpointed cells may simulate.
			j2, err := journal.Open(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			checkpointed := j2.Stats().Replayed
			var calls sync.Map
			s2 := s
			s2.Journal = j2
			got := gridCSV(t, s2, countingGrid(n, &calls))
			if got != want {
				t.Errorf("resumed table differs from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
			ran := 0
			calls.Range(func(name, c interface{}) bool {
				ran++
				if _, ok := j2.Lookup("synthetic", name.(string)); ok &&
					c.(*atomic.Int64).Load() > 1 {
					t.Errorf("cell %s simulated despite checkpoint", name)
				}
				return true
			})
			if ran != n-checkpointed {
				t.Errorf("resume simulated %d cells, want %d (replayed %d)",
					ran, n-checkpointed, checkpointed)
			}

			// Third run: everything replays, nothing simulates.
			j3, err := journal.Open(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			var calls3 sync.Map
			s3 := s
			s3.Journal = j3
			if got := gridCSV(t, s3, countingGrid(n, &calls3)); got != want {
				t.Errorf("fully-replayed table differs:\n%s", got)
			}
			calls3.Range(func(name, _ interface{}) bool {
				t.Errorf("cell %v simulated on full replay", name)
				return true
			})
		})
	}
}

// TestJournalFingerprintGuardsReplay: a journal written under one
// configuration must not replay into another.
func TestJournalFingerprintGuardsReplay(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	path := filepath.Join(t.TempDir(), "grid.journal")
	j, err := journal.Create(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	s.Journal = j
	gridCSV(t, s, syntheticGrid(4))
	j.Close()

	other := s
	other.Seed++
	if other.Fingerprint() == s.Fingerprint() {
		t.Fatal("fingerprint ignores the seed")
	}
	if _, err := journal.Open(path, other.Fingerprint()); err == nil {
		t.Fatal("journal from a different configuration accepted")
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	const seed = 0xabcdef
	base := 100 * time.Millisecond
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := RetryDelay(seed, attempt, base)
		d2 := RetryDelay(seed, attempt, base)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		ceil := base << (attempt - 1)
		if ceil > maxRetryBackoff || ceil <= 0 {
			ceil = maxRetryBackoff
		}
		if d1 < ceil/2 || d1 >= ceil {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Errorf("attempt %d: backoff ceiling shrank", attempt)
		}
		prevCeil = ceil
	}
	if RetryDelay(seed, 1, base) == RetryDelay(seed+1, 1, base) {
		t.Error("different cells retry in lockstep")
	}
	if RetryDelay(seed, 30, base) > maxRetryBackoff {
		t.Error("backoff exceeded cap")
	}
}

// flakyCell fails with a transient error until `failures` attempts have
// happened, then succeeds.
func flakyCell(name string, failures int, attempts *atomic.Int64) Cell {
	return Cell{
		Name: name,
		Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			if attempts.Add(1) <= int64(failures) {
				return nil, fmt.Errorf("transient fault")
			}
			return []Row{{name, cs.Seed}}, nil
		},
	}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 2
	s.MaxRetries = 3
	s.RetryBackoff = time.Millisecond
	var a0, a1 atomic.Int64
	cells := []Cell{flakyCell("flaky0", 2, &a0), flakyCell("ok1", 0, &a1)}
	tbl := &stats.Table{Title: "grid", Columns: []string{"cell", "seed"}}
	results, err := RunGrid(context.Background(), s, "retry", tbl, cells)
	if err != nil {
		t.Fatalf("grid failed despite retry budget: %v", err)
	}
	if a0.Load() != 3 || a1.Load() != 1 {
		t.Errorf("attempts = %d, %d; want 3, 1", a0.Load(), a1.Load())
	}
	if results[0] == nil || results[1] == nil {
		t.Error("missing results after recovery")
	}
}

func TestRetryExhaustionFailsGrid(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 1
	s.MaxRetries = 2
	s.RetryBackoff = time.Millisecond
	var a atomic.Int64
	cells := []Cell{flakyCell("doomed", 99, &a)}
	_, err := RunGrid(context.Background(), s, "retry", gridTable(), cells)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if a.Load() != 3 { // 1 + MaxRetries
		t.Errorf("attempts = %d, want 3", a.Load())
	}
}

func TestPermanentErrorSkipsRetry(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 1
	s.MaxRetries = 5
	s.RetryBackoff = time.Millisecond
	var a atomic.Int64
	cells := []Cell{{
		Name: "invalid",
		Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			a.Add(1)
			return nil, Permanent(fmt.Errorf("bad configuration"))
		},
	}}
	_, err := RunGrid(context.Background(), s, "retry", gridTable(), cells)
	if err == nil {
		t.Fatal("permanent failure succeeded")
	}
	if a.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (permanent errors must not retry)", a.Load())
	}
}

func TestFailSoftRendersMarkers(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 4
	s.MaxRetries = 1
	s.RetryBackoff = time.Millisecond
	s.FailSoft = true
	s.Failures = &FailureLog{}
	s.CellFault = func(exp, cell string) error {
		if strings.Contains(cell, "cell03") || strings.Contains(cell, "cell07") {
			return fmt.Errorf("injected fault")
		}
		return nil
	}
	tbl := gridTable()
	results, err := RunGrid(context.Background(), s, "synthetic", tbl, syntheticGrid(10))
	if err != nil {
		t.Fatalf("fail-soft grid aborted: %v", err)
	}
	if results[3] != nil || results[7] != nil {
		t.Error("failed cells left non-nil result slots")
	}
	for i := range results {
		if i != 3 && i != 7 && results[i] == nil {
			t.Errorf("healthy cell %d missing its result", i)
		}
	}
	if got := s.Failures.Count(); got != 2 {
		t.Fatalf("failure log has %d cells, want 2", got)
	}
	fcs := s.Failures.ForExperiment("synthetic")
	if fcs[0].Cell != "cell03" || fcs[1].Cell != "cell07" {
		t.Errorf("failures not in canonical order: %v", fcs)
	}
	if fcs[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (1 + MaxRetries)", fcs[0].Attempts)
	}
	AppendRows(tbl, results)
	withFailureRows(tbl, s.Failures, "synthetic")
	csv := tbl.CSV()
	want := fmt.Sprintf("FAILED(cell=cell03 seed=%d attempts=2)",
		CellSeed(s.Seed, "synthetic", "cell03"))
	if !strings.Contains(csv, want) {
		t.Errorf("table missing marker %q:\n%s", want, csv)
	}
	if strings.Count(csv, "FAILED(") != 2 {
		t.Errorf("want exactly 2 FAILED markers:\n%s", csv)
	}
}

// TestWatchdogRequeuesStuckCell: a cell that ignores work on its first
// attempt beyond the deadline is canceled by the watchdog and succeeds on
// the requeue.
func TestWatchdogRequeuesStuckCell(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 1
	s.MaxRetries = 1
	s.RetryBackoff = time.Millisecond
	s.CellDeadline = 30 * time.Millisecond
	var attempts atomic.Int64
	cells := []Cell{{
		Name: "sleepy",
		Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			if attempts.Add(1) == 1 {
				<-ctx.Done() // cooperative stall: wakes when the watchdog fires
				return nil, ctx.Err()
			}
			return []Row{{"sleepy", cs.Seed}}, nil
		},
	}}
	results, err := RunGrid(context.Background(), s, "watchdog", gridTable(), cells)
	if err != nil {
		t.Fatalf("grid failed: %v", err)
	}
	if attempts.Load() != 2 || results[0] == nil {
		t.Errorf("attempts = %d, results[0] = %v; want a retried success", attempts.Load(), results[0])
	}
}

func TestWatchdogAbandonsUncooperativeCell(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 1
	s.MaxRetries = 0
	s.CellDeadline = 30 * time.Millisecond
	release := make(chan struct{})
	cells := []Cell{{
		Name: "hung",
		Run: func(ctx context.Context, cs Scale) ([]Row, error) {
			<-release // ignores ctx entirely
			return []Row{{"hung", cs.Seed}}, nil
		},
	}}
	start := time.Now()
	_, err := RunGrid(context.Background(), s, "watchdog", gridTable(), cells)
	elapsed := time.Since(start)
	close(release)
	var sce *StuckCellError
	if !errors.As(err, &sce) {
		t.Fatalf("err = %v, want *StuckCellError", err)
	}
	if sce.Cell != "hung" || sce.Deadline != s.CellDeadline {
		t.Errorf("stuck error = %+v", sce)
	}
	if elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to abandon the cell", elapsed)
	}
}

// TestFailSoftSkipsJournal: failed cells must not be checkpointed — a
// resume should re-attempt them.
func TestFailSoftSkipsJournal(t *testing.T) {
	t.Parallel()
	s := QuickScale()
	s.Jobs = 2
	s.FailSoft = true
	s.Failures = &FailureLog{}
	s.RetryBackoff = time.Millisecond
	path := filepath.Join(t.TempDir(), "grid.journal")
	j, err := journal.Create(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	s.Journal = j
	s.CellFault = func(exp, cell string) error {
		if cell == "cell01" {
			return fmt.Errorf("injected")
		}
		return nil
	}
	if _, err := RunGrid(context.Background(), s, "synthetic", gridTable(), syntheticGrid(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("synthetic", "cell01"); ok {
		t.Error("failed cell was checkpointed")
	}
	if j.Stats().Appended != 3 {
		t.Errorf("appended %d records, want 3", j.Stats().Appended)
	}
	j.Close()

	// Resume with the fault cleared: only cell01 runs, and the grid heals.
	j2, err := journal.Open(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := s
	s2.Journal = j2
	s2.CellFault = nil
	s2.Failures = &FailureLog{}
	var calls sync.Map
	results, err := RunGrid(context.Background(), s2, "synthetic", gridTable(), countingGrid(4, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if results[1] == nil {
		t.Error("healed cell still missing")
	}
	n := 0
	calls.Range(func(name, _ interface{}) bool {
		n++
		if name != "cell01" {
			t.Errorf("cell %v re-simulated despite checkpoint", name)
		}
		return true
	})
	if n != 1 || s2.Failures.Count() != 0 {
		t.Errorf("healed resume ran %d cells (failures %d), want 1 (0)", n, s2.Failures.Count())
	}
}
