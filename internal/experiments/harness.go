package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"mixtlb/internal/stats"
	"mixtlb/internal/telemetry"
)

// PanicError is a panic recovered from an experiment run, carrying the
// reproducing seed so the failure can be replayed deterministically.
type PanicError struct {
	Experiment string
	Seed       uint64
	Value      interface{}
	Stack      string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment %q panicked (reproduce with seed %d): %v",
		e.Experiment, e.Seed, e.Value)
}

// TimeoutError reports an experiment exceeding its wall-clock budget.
type TimeoutError struct {
	Experiment string
	Seed       uint64
	Timeout    time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("experiment %q exceeded %v (reproduce with seed %d)",
		e.Experiment, e.Timeout, e.Seed)
}

// TablePublisher collects partial results from a running experiment so the
// harness can report whatever completed when the run times out or dies.
// All methods are safe for concurrent use and safe on a nil receiver (an
// experiment run without a harness simply publishes into the void).
type TablePublisher struct {
	mu   sync.Mutex
	snap *stats.Table
}

// Publish stores a snapshot of the table's current rows.
func (p *TablePublisher) Publish(t *stats.Table) {
	if p == nil || t == nil {
		return
	}
	cp := &stats.Table{Title: t.Title, Columns: append([]string(nil), t.Columns...)}
	for _, row := range t.Rows {
		cp.Rows = append(cp.Rows, append([]string(nil), row...))
	}
	p.mu.Lock()
	p.snap = cp
	p.mu.Unlock()
}

// Snapshot returns the most recent published table, or nil.
func (p *TablePublisher) Snapshot() *stats.Table {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// RunSafe executes one experiment with panic recovery and a wall-clock
// timeout. Panics become *PanicError (with the seed and stack); a timeout
// returns *TimeoutError. In both failure cases the partial table — rows
// the experiment published before dying — is returned alongside the
// error, so a long sweep never loses completed work. A timeout of zero
// disables the deadline. On timeout or ctx cancellation the experiment's
// context is canceled, so its workers stop at their next stream
// checkpoint instead of simulating on into the void.
func RunSafe(ctx context.Context, e Experiment, s Scale, timeout time.Duration) (*stats.Table, error) {
	pub := &TablePublisher{}
	s.Progress = pub

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		tbl *stats.Table
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{err: &PanicError{
					Experiment: e.Name, Seed: s.Seed,
					Value: r, Stack: string(debug.Stack()),
				}}
			}
		}()
		var span telemetry.Span
		if s.Telemetry != nil {
			span = s.Telemetry.Span("experiment", e.Name)
		}
		tbl, err := e.Run(runCtx, s)
		if s.Telemetry != nil {
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			span.End("outcome", outcome)
		}
		done <- outcome{tbl: tbl, err: err}
	}()

	// drain cancels the run and waits (briefly) for the experiment
	// goroutine to unwind before RunSafe returns. The wait is what flushes
	// the partial run's observability: the engine's end-of-grid counters,
	// per-cell BenchLog timings, and journal appends for cells that beat
	// the deadline all happen on that goroutine's way out — returning
	// immediately used to drop them whenever a deadline fired mid-grid.
	drain := func() {
		cancel() // workers exit at their next checkpoint
		select {
		case <-done:
		case <-time.After(runSafeFlushGrace):
			// A cell is ignoring cancellation; give up on its events rather
			// than hanging the harness on a stuck simulation.
		}
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case out := <-done:
		if out.err != nil {
			return withFailureRows(pub.Snapshot(), s.Failures, e.Name), out.err
		}
		return withFailureRows(out.tbl, s.Failures, e.Name), nil
	case <-deadline:
		drain()
		return withFailureRows(pub.Snapshot(), s.Failures, e.Name),
			&TimeoutError{Experiment: e.Name, Seed: s.Seed, Timeout: timeout}
	case <-ctx.Done():
		drain()
		return withFailureRows(pub.Snapshot(), s.Failures, e.Name), ctx.Err()
	}
}

// runSafeFlushGrace bounds how long RunSafe waits after cancellation for
// the experiment goroutine to unwind and flush its telemetry/bench/journal
// state. A package variable so tests can shrink it.
var runSafeFlushGrace = 5 * time.Second
