package experiments

import (
	"context"
	"errors"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/virt"
)

// Figure9 regenerates the superpage-frequency characterization: the
// fraction of the memory footprint backed by superpages as memhog
// fragments an increasing share of physical memory, for native CPU
// (Spec/PARSEC-sized and big-memory-sized footprints) and GPU-sized
// footprints, all under THS (Sec 7.1, Fig 9). Cells run per
// (memhog, footprint class); each table row reassembles one memhog
// level's three classes.
func Figure9(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 9: fraction of footprint backed by superpages vs memhog",
		Columns: []string{"memhog%", "cpu-spec+parsec", "cpu-big-memory", "gpu"},
	}
	// The paper's footprints are scaled to the machine's memory (80GB on
	// 80GB, 24GB for GPU studies), so the demand pressure that produces
	// the three regimes comes from memory size, not the perf-run
	// footprint parameter.
	classes := []struct {
		name string
		fp   uint64
	}{
		{"cpu-spec", s.MemoryBytes / 2},
		{"cpu-bigmem", s.MemoryBytes},
		{"gpu", s.MemoryBytes * 3 / 10},
	}
	hogs := []int{0, 20, 40, 60, 80}
	var cells []Cell
	for _, hogPct := range hogs {
		for _, cl := range classes {
			hogPct, cl := hogPct, cl
			cells = append(cells, Cell{
				Name: fmt.Sprintf("hog%d/%s", hogPct, cl.name),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					sub := cs
					sub.FootprintBytes = cl.fp
					env, err := newNative(sub, osmm.THS, float64(hogPct)/100, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig9 memhog=%d%%: %w", hogPct, err)
					}
					rep := osmm.ScanContiguity(env.as.PageTable())
					// Partial-progress rows carry the cell identity; the final
					// assembly below reads the fraction back out of column 2.
					return []Row{{hogPct, cl.name, rep.SuperpageFraction()}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "fig9", t, cells)
	if err != nil {
		return t, err
	}
	for hi, hogPct := range hogs {
		row := Row{hogPct}
		complete := true
		for ci := range classes {
			cell := results[hi*len(classes)+ci]
			if cell == nil { // filtered out by -cell
				complete = false
				break
			}
			row = append(row, cell[0][2])
		}
		if complete {
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure10 regenerates the virtualized superpage-frequency study: the
// fraction of guest footprints backed by *effective* (guest and host
// agreeing) superpages under VM consolidation and in-VM memhog (Fig 10).
//
// Unlike the performance environments (newVirt, which sizes guests so
// simulations never exhaust the host), this characterization reproduces
// the paper's loaded-host setup: consolidated guests whose combined
// demand approaches host memory, with in-VM memhog under the same
// pressure model as the native runs — so splintering and guest fallbacks
// emerge at high consolidation x fragmentation.
func Figure10(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 10: effective superpage fraction vs VM consolidation x memhog",
		Columns: []string{"vms", "memhog%", "superpage-fraction"},
	}
	var cells []Cell
	for _, vms := range []int{1, 2, 4, 8} {
		for _, hogPct := range []int{0, 20, 40, 60} {
			vms, hogPct := vms, hogPct
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%dvm/hog%d", vms, hogPct),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					frac, err := figure10Point(cs, vms, float64(hogPct)/100)
					if err != nil {
						return nil, fmt.Errorf("fig10 vms=%d memhog=%d%%: %w", vms, hogPct, err)
					}
					return []Row{{vms, hogPct, frac}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "fig10", t, cells)
	AppendRows(t, results)
	return t, err
}

// figure10Point builds one consolidated-host configuration and returns
// the average effective superpage fraction across its VMs. As in the
// paper's setup (8 x 10GB guests on an 80GB host), the per-guest size is
// fixed at one eighth of host memory, so total demand scales with the VM
// count; the host proactively splinters backings under memory pressure
// (the page-sharing behaviour the paper cites); and in-VM memhog memory
// is host-backed, because the guest's hog really touches it.
func figure10Point(s Scale, vms int, hogFrac float64) (float64, error) {
	m := virt.NewMachine(s.MemoryBytes, simrand.New(s.Seed^0x77))
	m.SplinterThreshold = 0.25
	guestBytes := s.MemoryBytes / 8
	fp := guestBytes * 3 / 4
	var total float64
	for i := 0; i < vms; i++ {
		vm, err := m.AddVM(guestBytes, osmm.Config{Policy: osmm.THS}, simrand.New(s.Seed+uint64(i)))
		if err != nil {
			return 0, err
		}
		hog := vm.GuestHog()
		if hogFrac >= 0.5 { // in-VM load pollutes like native load does
			hog.UnmovableFrac = 0.25 + (hogFrac-0.4)*1.75
			if hog.UnmovableFrac > 0.95 {
				hog.UnmovableFrac = 0.95
			}
			hog.UnmovableScatterFrac = (hogFrac - 0.4) * 4
			if hog.UnmovableScatterFrac > 1 {
				hog.UnmovableScatterFrac = 1
			}
		}
		if hogFrac > 0 {
			hog.Run(hogFrac)
			// The guest's memhog touches its memory: the host must back it.
			hog.HeldFrames(func(f uint64) bool {
				return vm.EnsureBacked(addr.P(f<<addr.Shift4K)) == nil
			})
		}
		base, err := vm.GuestAS().Mmap(fp)
		if err != nil {
			return 0, err
		}
		// Guests take what fits: host exhaustion mid-populate is the
		// consolidation pressure this figure is about.
		if _, err := vm.Populate(base, fp); err != nil && !errors.Is(err, osmm.ErrOutOfMemory) {
			return 0, err
		}
		total += vm.EffectiveContiguity().SuperpageFraction()
	}
	return total / float64(vms), nil
}

// Figure11 regenerates the contiguity characterization: the paper's
// average-contiguity metric for 2MB pages (THS) and 1GB pages
// (libhugetlbfs pools) as memhog varies. Several instances stand in for
// the per-workload instances on the paper's x-axis (Fig 11); each
// (instance, memhog) pair is one cell, with its seed — and therefore its
// allocation pattern — derived from the cell identity.
func Figure11(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 11: average superpage contiguity vs memhog",
		Columns: []string{"instance", "memhog%", "avg-contig-2MB", "avg-contig-1GB"},
	}
	const instances = 4
	var cells []Cell
	for inst := 0; inst < instances; inst++ {
		for _, hogPct := range []int{20, 40, 60} {
			inst, hogPct := inst, hogPct
			cells = append(cells, Cell{
				Name: fmt.Sprintf("inst%d/hog%d", inst, hogPct),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					frac := float64(hogPct) / 100
					sub := cs
					sub.FootprintBytes = cs.MemoryBytes
					env2, err := newNative(sub, osmm.THS, frac, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig11 inst=%d: %w", inst, err)
					}
					c2 := osmm.ScanContiguity(env2.as.PageTable()).AverageContiguity(addr.Page2M)
					env1, err := newNative(sub, osmm.Hugetlbfs1G, frac, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig11 1GB inst=%d: %w", inst, err)
					}
					c1 := osmm.ScanContiguity(env1.as.PageTable()).AverageContiguity(addr.Page1G)
					return []Row{{inst, hogPct, c2, c1}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "fig11", t, cells)
	AppendRows(t, results)
	return t, err
}

// Figure12 regenerates the native-CPU contiguity CDFs: the fraction of
// 2MB translations residing in runs of length <= x, as memhog varies
// (Fig 12). One cell per memhog level; a cell emits its whole CDF.
func Figure12(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 12: 2MB contiguity CDF, native CPU",
		Columns: []string{"memhog%", "run-length", "cum-fraction"},
	}
	var cells []Cell
	for _, hogPct := range []int{20, 40, 60} {
		hogPct := hogPct
		cells = append(cells, Cell{
			Name: fmt.Sprintf("hog%d", hogPct),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				sub := cs
				sub.FootprintBytes = cs.MemoryBytes
				env, err := newNative(sub, osmm.THS, float64(hogPct)/100, cs.Seed)
				if err != nil {
					return nil, fmt.Errorf("fig12 memhog=%d%%: %w", hogPct, err)
				}
				rep := osmm.ScanContiguity(env.as.PageTable())
				var rows []Row
				for _, p := range rep.CDF(addr.Page2M) {
					rows = append(rows, Row{hogPct, p.Value, p.Frac})
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "fig12", t, cells)
	AppendRows(t, results)
	return t, err
}

// Figure13 regenerates the virtualized and GPU contiguity CDFs (Fig 13):
// effective-translation contiguity inside a consolidated VM, and native
// contiguity at GPU footprints. One cell per (system, memhog) curve.
func Figure13(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 13: 2MB contiguity CDF, virtualized CPU and GPU",
		Columns: []string{"system", "memhog%", "run-length", "cum-fraction"},
	}
	var cells []Cell
	for _, hogPct := range []int{20, 40} {
		hogPct := hogPct
		cells = append(cells, Cell{
			Name: fmt.Sprintf("virt-2vm/hog%d", hogPct),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				env, err := newVirt(cs, 2, float64(hogPct)/100, cs.Seed)
				if err != nil {
					return nil, fmt.Errorf("fig13 virt: %w", err)
				}
				rep := env.vms[0].EffectiveContiguity()
				var rows []Row
				for _, p := range rep.CDF(addr.Page2M) {
					rows = append(rows, Row{"virt-2vm", hogPct, p.Value, p.Frac})
				}
				return rows, nil
			},
		})
	}
	for _, hogPct := range []int{20, 40} {
		hogPct := hogPct
		cells = append(cells, Cell{
			Name: fmt.Sprintf("gpu/hog%d", hogPct),
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				sub := cs
				sub.FootprintBytes = cs.FootprintBytes * 3 / 10
				env, err := newNative(sub, osmm.THS, float64(hogPct)/100, cs.Seed)
				if err != nil {
					return nil, fmt.Errorf("fig13 gpu: %w", err)
				}
				rep := osmm.ScanContiguity(env.as.PageTable())
				var rows []Row
				for _, p := range rep.CDF(addr.Page2M) {
					rows = append(rows, Row{"gpu", hogPct, p.Value, p.Frac})
				}
				return rows, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "fig13", t, cells)
	AppendRows(t, results)
	return t, err
}
