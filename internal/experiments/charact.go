package experiments

import (
	"errors"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/virt"
)

// Figure9 regenerates the superpage-frequency characterization: the
// fraction of the memory footprint backed by superpages as memhog
// fragments an increasing share of physical memory, for native CPU
// (Spec/PARSEC-sized and big-memory-sized footprints) and GPU-sized
// footprints, all under THS (Sec 7.1, Fig 9).
func Figure9(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 9: fraction of footprint backed by superpages vs memhog",
		Columns: []string{"memhog%", "cpu-spec+parsec", "cpu-big-memory", "gpu"},
	}
	// The paper's footprints are scaled to the machine's memory (80GB on
	// 80GB, 24GB for GPU studies), so the demand pressure that produces
	// the three regimes comes from memory size, not the perf-run
	// footprint parameter.
	classes := []struct {
		name string
		fp   uint64
	}{
		{"cpu-spec", s.MemoryBytes / 2},
		{"cpu-bigmem", s.MemoryBytes},
		{"gpu", s.MemoryBytes * 3 / 10},
	}
	for _, hogPct := range []int{0, 20, 40, 60, 80} {
		row := []interface{}{hogPct}
		for i, cl := range classes {
			sub := s
			sub.FootprintBytes = cl.fp
			env, err := newNative(sub, osmm.THS, float64(hogPct)/100, s.Seed+uint64(i))
			if err != nil {
				return nil, fmt.Errorf("fig9 memhog=%d%%: %w", hogPct, err)
			}
			rep := osmm.ScanContiguity(env.as.PageTable())
			row = append(row, rep.SuperpageFraction())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10 regenerates the virtualized superpage-frequency study: the
// fraction of guest footprints backed by *effective* (guest and host
// agreeing) superpages under VM consolidation and in-VM memhog (Fig 10).
//
// Unlike the performance environments (newVirt, which sizes guests so
// simulations never exhaust the host), this characterization reproduces
// the paper's loaded-host setup: consolidated guests whose combined
// demand approaches host memory, with in-VM memhog under the same
// pressure model as the native runs — so splintering and guest fallbacks
// emerge at high consolidation x fragmentation.
func Figure10(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 10: effective superpage fraction vs VM consolidation x memhog",
		Columns: []string{"vms", "memhog%", "superpage-fraction"},
	}
	for _, vms := range []int{1, 2, 4, 8} {
		for _, hogPct := range []int{0, 20, 40, 60} {
			frac, err := figure10Point(s, vms, float64(hogPct)/100)
			if err != nil {
				return nil, fmt.Errorf("fig10 vms=%d memhog=%d%%: %w", vms, hogPct, err)
			}
			t.AddRow(vms, hogPct, frac)
		}
	}
	return t, nil
}

// figure10Point builds one consolidated-host configuration and returns
// the average effective superpage fraction across its VMs. As in the
// paper's setup (8 x 10GB guests on an 80GB host), the per-guest size is
// fixed at one eighth of host memory, so total demand scales with the VM
// count; the host proactively splinters backings under memory pressure
// (the page-sharing behaviour the paper cites); and in-VM memhog memory
// is host-backed, because the guest's hog really touches it.
func figure10Point(s Scale, vms int, hogFrac float64) (float64, error) {
	m := virt.NewMachine(s.MemoryBytes, simrand.New(s.Seed^0x77))
	m.SplinterThreshold = 0.25
	guestBytes := s.MemoryBytes / 8
	fp := guestBytes * 3 / 4
	var total float64
	for i := 0; i < vms; i++ {
		vm, err := m.AddVM(guestBytes, osmm.Config{Policy: osmm.THS}, simrand.New(s.Seed+uint64(i)))
		if err != nil {
			return 0, err
		}
		hog := vm.GuestHog()
		if hogFrac >= 0.5 { // in-VM load pollutes like native load does
			hog.UnmovableFrac = 0.25 + (hogFrac-0.4)*1.75
			if hog.UnmovableFrac > 0.95 {
				hog.UnmovableFrac = 0.95
			}
			hog.UnmovableScatterFrac = (hogFrac - 0.4) * 4
			if hog.UnmovableScatterFrac > 1 {
				hog.UnmovableScatterFrac = 1
			}
		}
		if hogFrac > 0 {
			hog.Run(hogFrac)
			// The guest's memhog touches its memory: the host must back it.
			hog.HeldFrames(func(f uint64) bool {
				return vm.EnsureBacked(addr.P(f<<addr.Shift4K)) == nil
			})
		}
		base, err := vm.GuestAS().Mmap(fp)
		if err != nil {
			return 0, err
		}
		// Guests take what fits: host exhaustion mid-populate is the
		// consolidation pressure this figure is about.
		if _, err := vm.Populate(base, fp); err != nil && !errors.Is(err, osmm.ErrOutOfMemory) {
			return 0, err
		}
		total += vm.EffectiveContiguity().SuperpageFraction()
	}
	return total / float64(vms), nil
}

// Figure11 regenerates the contiguity characterization: the paper's
// average-contiguity metric for 2MB pages (THS) and 1GB pages
// (libhugetlbfs pools) as memhog varies. Several seeds stand in for the
// per-workload instances on the paper's x-axis (Fig 11).
func Figure11(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 11: average superpage contiguity vs memhog",
		Columns: []string{"instance", "memhog%", "avg-contig-2MB", "avg-contig-1GB"},
	}
	const instances = 4
	for inst := 0; inst < instances; inst++ {
		for _, hogPct := range []int{20, 40, 60} {
			frac := float64(hogPct) / 100
			sub := s
			sub.FootprintBytes = s.MemoryBytes
			env2, err := newNative(sub, osmm.THS, frac, s.Seed+uint64(100*inst))
			if err != nil {
				return nil, fmt.Errorf("fig11 inst=%d: %w", inst, err)
			}
			c2 := osmm.ScanContiguity(env2.as.PageTable()).AverageContiguity(addr.Page2M)
			env1, err := newNative(sub, osmm.Hugetlbfs1G, frac, s.Seed+uint64(100*inst))
			if err != nil {
				return nil, fmt.Errorf("fig11 1GB inst=%d: %w", inst, err)
			}
			c1 := osmm.ScanContiguity(env1.as.PageTable()).AverageContiguity(addr.Page1G)
			t.AddRow(inst, hogPct, c2, c1)
		}
	}
	return t, nil
}

// Figure12 regenerates the native-CPU contiguity CDFs: the fraction of
// 2MB translations residing in runs of length <= x, as memhog varies
// (Fig 12).
func Figure12(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 12: 2MB contiguity CDF, native CPU",
		Columns: []string{"memhog%", "run-length", "cum-fraction"},
	}
	for _, hogPct := range []int{20, 40, 60} {
		sub := s
		sub.FootprintBytes = s.MemoryBytes
		env, err := newNative(sub, osmm.THS, float64(hogPct)/100, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig12 memhog=%d%%: %w", hogPct, err)
		}
		rep := osmm.ScanContiguity(env.as.PageTable())
		for _, p := range rep.CDF(addr.Page2M) {
			t.AddRow(hogPct, p.Value, p.Frac)
		}
	}
	return t, nil
}

// Figure13 regenerates the virtualized and GPU contiguity CDFs (Fig 13):
// effective-translation contiguity inside a consolidated VM, and native
// contiguity at GPU footprints.
func Figure13(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 13: 2MB contiguity CDF, virtualized CPU and GPU",
		Columns: []string{"system", "memhog%", "run-length", "cum-fraction"},
	}
	for _, hogPct := range []int{20, 40} {
		env, err := newVirt(s, 2, float64(hogPct)/100, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig13 virt: %w", err)
		}
		rep := env.vms[0].EffectiveContiguity()
		for _, p := range rep.CDF(addr.Page2M) {
			t.AddRow("virt-2vm", hogPct, p.Value, p.Frac)
		}
	}
	for _, hogPct := range []int{20, 40} {
		sub := s
		sub.FootprintBytes = s.FootprintBytes * 3 / 10
		env, err := newNative(sub, osmm.THS, float64(hogPct)/100, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig13 gpu: %w", err)
		}
		rep := osmm.ScanContiguity(env.as.PageTable())
		for _, p := range rep.CDF(addr.Page2M) {
			t.AddRow("gpu", hogPct, p.Value, p.Frac)
		}
	}
	return t, nil
}
