package experiments

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"mixtlb/internal/chaos"
	"mixtlb/internal/stats"
)

func chaosTestScale() Scale {
	s := QuickScale()
	s.MemoryBytes = 1 << 30
	s.FootprintBytes = 128 << 20
	s.WarmupRefs = 8_000
	s.MeasureRefs = 20_000
	return s
}

func TestRunSafeRecoversPanic(t *testing.T) {
	e := Experiment{
		Name: "boom",
		Run: func(ctx context.Context, s Scale) (*stats.Table, error) {
			tbl := &stats.Table{Title: "partial", Columns: []string{"a"}}
			tbl.AddRow("row1")
			s.Progress.Publish(tbl)
			panic("kaboom")
		},
	}
	s := chaosTestScale()
	s.Seed = 1234
	partial, err := RunSafe(context.Background(), e, s, time.Minute)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Seed != 1234 || pe.Experiment != "boom" {
		t.Errorf("panic diagnostics = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "seed 1234") {
		t.Errorf("error text lacks reproducing seed: %v", pe)
	}
	if pe.Stack == "" {
		t.Error("no stack captured")
	}
	if partial == nil || len(partial.Rows) != 1 {
		t.Errorf("partial results lost: %+v", partial)
	}
}

func TestRunSafeTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	e := Experiment{
		Name: "slow",
		Run: func(ctx context.Context, s Scale) (*stats.Table, error) {
			tbl := &stats.Table{Columns: []string{"a"}}
			tbl.AddRow("done-before-deadline")
			s.Progress.Publish(tbl)
			<-block
			return tbl, nil
		},
	}
	partial, err := RunSafe(context.Background(), e, chaosTestScale(), 50*time.Millisecond)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if partial == nil || len(partial.Rows) != 1 {
		t.Errorf("partial results lost on timeout: %+v", partial)
	}
}

func TestRunSafePassesThroughSuccess(t *testing.T) {
	e := Experiment{
		Name: "ok",
		Run: func(ctx context.Context, s Scale) (*stats.Table, error) {
			tbl := &stats.Table{Columns: []string{"a"}}
			tbl.AddRow("v")
			return tbl, nil
		},
	}
	tbl, err := RunSafe(context.Background(), e, chaosTestScale(), 0) // zero timeout = no deadline
	if err != nil || tbl == nil || len(tbl.Rows) != 1 {
		t.Fatalf("tbl=%+v err=%v", tbl, err)
	}
}

func TestTablePublisherNilSafe(t *testing.T) {
	var p *TablePublisher
	p.Publish(&stats.Table{})
	if p.Snapshot() != nil {
		t.Error("nil publisher returned a snapshot")
	}
}

// column returns the named column's value in a row, as an integer.
func column(t *testing.T, tbl *stats.Table, row []string, name string) uint64 {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == name {
			v, err := strconv.ParseUint(row[i], 10, 64)
			if err != nil {
				t.Fatalf("column %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("no column %s", name)
	return 0
}

// TestChaosStudyZeroRates is the fault-rate-zero acceptance check: the
// full sweep with an all-zero rate config must record zero injected
// faults, zero oracle catches, zero of everything.
func TestChaosStudyZeroRates(t *testing.T) {
	s := chaosTestScale()
	s.Chaos = chaos.Rates{}
	tbl, err := ChaosStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no designs swept")
	}
	for _, row := range tbl.Rows {
		for _, col := range []string{"tlb-corrupt", "parity-detected", "silent",
			"pte-corrupt", "oracle-catches", "unrecovered", "ipi-lost", "alloc-fails"} {
			if v := column(t, tbl, row, col); v != 0 {
				t.Errorf("%s: %s = %d at zero rates", row[0], col, v)
			}
		}
	}
}

// TestChaosStudyRecoversEverything runs the default aggressive rates: the
// stack must detect or recover every injected corruption — the
// unrecovered column is zero for every design while the fault columns
// prove injection actually happened.
func TestChaosStudyRecoversEverything(t *testing.T) {
	s := chaosTestScale()
	s.Chaos = chaos.DefaultRates()
	tbl, err := ChaosStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	var corruptions, catches, lost uint64
	for _, row := range tbl.Rows {
		if v := column(t, tbl, row, "unrecovered"); v != 0 {
			t.Errorf("%s: %d silent wrong translations reached the workload", row[0], v)
		}
		corruptions += column(t, tbl, row, "tlb-corrupt")
		catches += column(t, tbl, row, "oracle-catches")
		lost += column(t, tbl, row, "ipi-lost")
	}
	if corruptions == 0 {
		t.Error("no TLB corruptions injected at default rates")
	}
	if catches == 0 {
		t.Error("oracle never caught a silent corruption")
	}
	if lost == 0 {
		t.Error("no IPIs lost at default rates")
	}
}
