package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// ablationPattern builds one hot-region access pattern over a prepared
// environment; the patterns expose the superpage-index-bits pathology.
type ablationPattern struct {
	name  string
	build func(env *nativeEnv, seed uint64) workload.Stream
}

// ablationPatterns returns the Sec 3 ablation's access patterns. The
// pathology is about small pages with spatial locality: under superpage
// index bits, groups of 512 adjacent 4KB pages collide in one set.
// Dedicated hot-region patterns expose it directly — real programs'
// heaps behave like the mixed case.
func ablationPatterns() []ablationPattern {
	return []ablationPattern{
		{"hot-1MB-region", func(env *nativeEnv, seed uint64) workload.Stream {
			// Mostly uniform traffic over a 1MB hot region — 256 adjacent
			// 4KB pages that fit the small-page-indexed TLB comfortably
			// but collapse into a single set under superpage indexing —
			// plus a light streaming component providing the compulsory
			// misses real workloads always carry.
			rng := simrand.New(seed)
			return workload.MustMix(rng.Split(),
				workload.Weighted{Stream: workload.NewUniform(env.base, 1<<20, rng.Split(), 0.2, 11), Weight: 0.9},
				workload.Weighted{Stream: workload.NewSequential(env.base+addr.V(16<<20), env.fp-(16<<20), 4096, false, 19), Weight: 0.1},
			)
		}},
		{"hot+stream", func(env *nativeEnv, seed uint64) workload.Stream {
			rng := simrand.New(seed)
			return workload.MustMix(rng.Split(),
				workload.Weighted{Stream: workload.NewUniform(env.base, 1<<20, rng.Split(), 0.1, 12), Weight: 0.7},
				workload.Weighted{Stream: workload.NewSequential(env.base+addr.V(8<<20), env.fp-(8<<20), 4096, false, 13), Weight: 0.3},
			)
		}},
		{"two-hot-regions", func(env *nativeEnv, seed uint64) workload.Stream {
			rng := simrand.New(seed)
			return workload.MustMix(rng.Split(),
				workload.Weighted{Stream: workload.NewUniform(env.base, 512<<10, rng.Split(), 0.2, 14), Weight: 0.45},
				workload.Weighted{Stream: workload.NewUniform(env.base+addr.V(64<<20), 512<<10, rng.Split(), 0.2, 15), Weight: 0.45},
				workload.Weighted{Stream: workload.NewSequential(env.base+addr.V(128<<20), env.fp-(128<<20), 4096, false, 20), Weight: 0.1},
			)
		}},
	}
}

// AblationIndexBits regenerates the Sec 3 design argument: indexing the
// MIX TLB with superpage index bits (so superpages map uniquely and need
// no mirrors) makes spatially-adjacent small pages conflict, raising TLB
// misses by 4-8x on average compared to small-page index bits. One cell
// per access pattern.
func AblationIndexBits(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Sec 3 ablation: small-page vs superpage index bits (4KB pages)",
		Columns: []string{"pattern", "miss-ratio-smallidx", "miss-ratio-superidx", "factor"},
	}
	var cells []Cell
	for _, p := range ablationPatterns() {
		p := p
		cells = append(cells, Cell{
			Name: p.name,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				env, err := newNative(cs, osmm.BasePages, 0, cs.Seed)
				if err != nil {
					return nil, err
				}
				run := func(d mmu.Design) (float64, error) {
					m, _, err := env.buildMMU(d)
					if err != nil {
						return 0, err
					}
					st, err := runStream(ctx, cs, m, p.build(env, cs.Seed))
					if err != nil {
						return 0, err
					}
					return st.MissRatio(), nil
				}
				small, err := run(mmu.DesignMix)
				if err != nil {
					return nil, err
				}
				super, err := run(mmu.DesignMixSuperIndex)
				if err != nil {
					return nil, err
				}
				factor := 0.0
				if small > 0 {
					factor = super / small
				}
				return []Row{{p.name, small, super, factor}}, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "ablation-index", t, cells)
	AppendRows(t, results)
	return t, err
}

// ScalingStudy regenerates the Sec 7.2 scaling discussion: MIX TLBs with
// growing set counts (up to the hypothetical 512-set design) need more
// contiguity to offset mirrors; the paper reports 512-set TLBs stay
// within 13% of ideal. Reported per set count: overhead vs ideal.
// One cell per (workload, set count).
func ScalingStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Sec 7.2 scaling: L2 MIX set count vs overhead against ideal",
		Columns: []string{"workload", "l2-sets", "overhead-vs-ideal-%"},
	}
	var cells []Cell
	for _, spec := range s.workloads() {
		for _, sets := range []int{64, 128, 512} {
			wl, sets := spec.Name, sets
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s/%dsets", wl, sets),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, 0.2, cs.Seed)
					if err != nil {
						return nil, err
					}
					k := sets
					if k > 64 {
						k = 64 // bitmap cap; larger windows than 64 use ranges
					}
					l2cfg := core.Config{
						Name: fmt.Sprintf("mix-L2-%dsets", sets),
						Sets: sets, Ways: 8, Coalesce: k, Encoding: core.Bitmap,
					}
					caches := cachesim.DefaultHierarchy()
					m, err := mixMMU(l2cfg.Name, core.L1Config(), l2cfg, env, caches)
					if err != nil {
						return nil, err
					}
					stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
					st, err := runStream(ctx, cs, m, stream)
					if err != nil {
						return nil, err
					}
					est := perfmodel.Default(spec.BaseCPI, spec.RefsPerInstr).Runtime(st)
					return []Row{{wl, sets, est.OverheadVsIdealPercent()}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "scaling", t, cells)
	AppendRows(t, results)
	return t, err
}

// DuplicateStudy quantifies the Sec 4.3 duplicate dynamics under the
// paper's blind-mirroring policy versus the default write-time merge:
// duplicates created, duplicates lazily eliminated, and the resulting
// miss ratios, on a superpage-heavy run. One cell per (policy, workload).
func DuplicateStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Sec 4.3 duplicates: blind mirroring vs merge-on-fill",
		Columns: []string{"policy", "workload", "miss-ratio", "dups-eliminated", "mirror-writes"},
	}
	var cells []Cell
	for _, blind := range []bool{false, true} {
		label := "merge-on-fill"
		if blind {
			label = "blind-mirrors"
		}
		for _, spec := range s.workloads() {
			blind, label, wl := blind, label, spec.Name
			cells = append(cells, Cell{
				Name: label + "/" + wl,
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, 0, cs.Seed)
					if err != nil {
						return nil, err
					}
					l1cfg := core.L1Config()
					l1cfg.BlindMirrors = blind
					l2cfg := core.L2Config()
					l2cfg.BlindMirrors = blind
					l1, err := core.New(l1cfg)
					if err != nil {
						return nil, err
					}
					l2, err := core.New(l2cfg)
					if err != nil {
						return nil, err
					}
					caches := cachesim.DefaultHierarchy()
					m, err := mmu.New(mmu.Config{Name: label, Levels: mmu.L(l1, l2)},
						env.as.PageTable(), caches, env.as.HandleFault)
					if err != nil {
						return nil, err
					}
					stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
					st, err := runStream(ctx, cs, m, stream)
					if err != nil {
						return nil, err
					}
					dups := l1.Stats().DupsEliminated + l2.Stats().DupsEliminated
					mirrors := l1.Stats().MirrorWrites + l2.Stats().MirrorWrites
					return []Row{{label, wl, st.MissRatio(), dups, mirrors}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "duplicates", t, cells)
	AppendRows(t, results)
	return t, err
}

// CoalesceCapStudy sweeps the bundle capacity K on the L1 (DESIGN.md's
// BenchmarkCoalesceCap): K below the set count cannot offset mirroring;
// K at the set count achieves parity. One cell per (workload, K).
func CoalesceCapStudy(ctx context.Context, s Scale, caps []int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: L1 coalescing cap K vs miss ratio (THS superpages)",
		Columns: []string{"workload", "K", "miss-ratio"},
	}
	if len(caps) == 0 {
		caps = []int{1, 2, 4, 8, 16}
	}
	var cells []Cell
	for _, spec := range s.workloads() {
		for _, k := range caps {
			wl, k := spec.Name, k
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s/K%d", wl, k),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, 0, cs.Seed)
					if err != nil {
						return nil, err
					}
					cfg := core.L1Config()
					cfg.Name = fmt.Sprintf("mix-L1-K%d", k)
					cfg.Coalesce = k
					caches := cachesim.DefaultHierarchy()
					l1, err := core.New(cfg)
					if err != nil {
						return nil, err
					}
					m, err := mmu.New(mmu.Config{Name: cfg.Name, Levels: mmu.L(l1)},
						env.as.PageTable(), caches, env.as.HandleFault)
					if err != nil {
						return nil, err
					}
					stream := spec.Build(env.base, env.fp, simrand.New(cs.Seed))
					st, err := runStream(ctx, cs, m, stream)
					if err != nil {
						return nil, err
					}
					return []Row{{wl, k, st.MissRatio()}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "coalesce-cap", t, cells)
	AppendRows(t, results)
	return t, err
}

// EncodingStudy compares bitmap and range bundle encodings at the L2
// (DESIGN.md's BenchmarkBundleEncoding) under two miss-arrival orders:
// address-ordered (sequential scan) and popularity-ordered (Zipf), the
// regime where ranges fragment. One cell per (arrival, encoding).
func EncodingStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: L2 bundle encoding under ordered vs popularity miss arrival",
		Columns: []string{"arrival", "encoding", "miss-ratio"},
	}
	arrivals := []string{"sequential", "popularity"}
	configs := []core.Config{core.L2Config(), core.L2RangeConfig()}
	var cells []Cell
	for _, a := range arrivals {
		for _, l2cfg := range configs {
			a, l2cfg := a, l2cfg
			cells = append(cells, Cell{
				Name: a + "/" + l2cfg.Encoding.String(),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					env, err := newNative(cs, osmm.THS, 0, cs.Seed)
					if err != nil {
						return nil, err
					}
					var stream workload.Stream
					switch a {
					case "sequential":
						stream = workload.NewSequential(env.base, env.fp, 4096, false, 1)
					default:
						stream = workload.NewZipf(env.base, env.fp, simrand.New(cs.Seed), 0.99, 0, 2)
					}
					caches := cachesim.DefaultHierarchy()
					m, err := mixMMU(l2cfg.Name, core.L1Config(), l2cfg, env, caches)
					if err != nil {
						return nil, err
					}
					st, err := runStream(ctx, cs, m, stream)
					if err != nil {
						return nil, err
					}
					return []Row{{a, l2cfg.Encoding.String(), st.MissRatio()}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "encoding", t, cells)
	AppendRows(t, results)
	return t, err
}
