package experiments

import (
	"strings"
	"testing"
)

// TestExplainNarratesTranslation replays one translation on MIX and
// checks the narration carries the design, a charge trail, the serving
// structure, and a balanced audit line.
func TestExplainNarratesTranslation(t *testing.T) {
	s := QuickScale()
	s.Workloads = []string{"gups"}
	var b strings.Builder
	if err := Explain(&b, s, "mix", 0x0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"design", "charges:", "result:", "served by", "books balance"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "explaining offset") {
		t.Errorf("offset note missing for sub-base va:\n%s", out)
	}
}

// TestExplainDeterministic pins that two runs with identical inputs
// narrate identically — the replay derives only from (design, va, scale).
func TestExplainDeterministic(t *testing.T) {
	s := QuickScale()
	s.Workloads = []string{"mcf"}
	run := func() string {
		var b strings.Builder
		if err := Explain(&b, s, "split+pwc", 0x1000); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("explain is nondeterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestExplainNarratesISA checks the narration names the descriptor the
// environment runs on: the default header for x86-64, and the contiguity
// encoding (kind and block size) on a NAPOT descriptor.
func TestExplainNarratesISA(t *testing.T) {
	s := QuickScale()
	s.Workloads = []string{"gups"}
	var b strings.Builder
	if err := Explain(&b, s, "mix", 0x0); err != nil {
		t.Fatal(err)
	}
	if out := b.String(); !strings.Contains(out, "x86-64: 4-level radix, 48-bit VAs, no hardware contiguity encoding") {
		t.Errorf("default descriptor not narrated:\n%s", out)
	}

	s.ISA = "sv48-napot"
	b.Reset()
	if err := Explain(&b, s, "mix", 0x0); err != nil {
		t.Fatal(err)
	}
	if out := b.String(); !strings.Contains(out, "sv48-napot: 4-level radix, 48-bit VAs, napot encoding over 16-page blocks") {
		t.Errorf("NAPOT descriptor not narrated:\n%s", out)
	}
}

// TestExplainRejectsUnknownDesign pins the usage-error path.
func TestExplainRejectsUnknownDesign(t *testing.T) {
	var b strings.Builder
	if err := Explain(&b, QuickScale(), "no-such-design", 0); err == nil {
		t.Fatal("unknown design accepted")
	}
}
