package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden/*.csv from a -jobs=1 run instead of comparing")

// goldenExperiments lists the registry entries under golden regression.
// Race builds run the cheap subset; normal builds run everything.
func goldenExperiments(t *testing.T) []string {
	if !raceEnabled {
		var names []string
		for _, e := range All() {
			names = append(names, e.Name)
		}
		return names
	}
	if *updateGolden {
		t.Fatal("refusing to update goldens from a race build: run go test -update-golden without -race")
	}
	return []string{"fig9", "fig12", "fig13", "fig17", "invalidation", "chaos"}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".csv")
}

// runExperimentCSV runs one registry experiment at QuickScale with the
// given worker count and renders its table.
func runExperimentCSV(t *testing.T, name string, jobs int) string {
	t.Helper()
	e, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s := QuickScale()
	s.Jobs = jobs
	tbl, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return "# " + tbl.Title + "\n" + tbl.CSV()
}

// TestGoldenTables pins every experiment's QuickScale output. Goldens are
// recorded from a -jobs=1 run (go test -run TestGoldenTables
// -update-golden) and verified against a -jobs=8 run, so a match proves
// both that the numbers did not drift and that the worker count leaves
// the tables byte-identical.
func TestGoldenTables(t *testing.T) {
	for _, name := range goldenExperiments(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if *updateGolden {
				got := runExperimentCSV(t, name, 1)
				if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(name), []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("missing golden (regenerate with go test -run TestGoldenTables -update-golden): %v", err)
			}
			got := runExperimentCSV(t, name, 8)
			if got != string(want) {
				t.Errorf("-jobs=8 output differs from the -jobs=1 golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestJobsCountInvariance re-runs cheap experiments at several worker
// counts in one process and requires byte-identical tables — the direct
// form of the determinism guarantee, independent of checked-in files.
func TestJobsCountInvariance(t *testing.T) {
	names := []string{"fig12", "fig13", "invalidation", "hierarchy", "reach", "breakdown", "xisa"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := runExperimentCSV(t, name, 1)
			for _, jobs := range []int{3, 8} {
				if got := runExperimentCSV(t, name, jobs); got != want {
					t.Errorf("-jobs=%d differs from -jobs=1:\n%s\nvs\n%s", jobs, got, want)
				}
			}
		})
	}
}

// goldenTable parses a golden CSV into header and rows, skipping the
// title line. Qualitative tests read the checked-in goldens (verified
// live by TestGoldenTables) instead of re-running the experiments.
func goldenTable(t *testing.T, name string) (header []string, rows [][]string) {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Skipf("golden %s not present: %v", name, err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "# ") {
		t.Fatalf("malformed golden %s", name)
	}
	header = strings.Split(lines[1], ",")
	for _, ln := range lines[2:] {
		rows = append(rows, strings.Split(ln, ","))
	}
	return header, rows
}

func goldenFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("column %d = %q is not numeric: %v", col, row[col], err)
	}
	return v
}

func colIndex(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, header)
	return -1
}

// TestGoldenQualitativeClaims checks the paper's headline qualitative
// results hold in the pinned tables: MIX outperforms the split TLB, and
// coalescing recovers the capacity that mirroring alone loses.
func TestGoldenQualitativeClaims(t *testing.T) {
	if raceEnabled {
		t.Skip("qualitative goldens are checked in the non-race run")
	}
	t.Run("mix-beats-split", func(t *testing.T) {
		// Figure 14: MIX's cycle improvement over the split baseline,
		// per workload and system. It must be strongly positive on
		// average and never catastrophically negative.
		header, rows := goldenTable(t, "fig14")
		c := colIndex(t, header, "improvement-%")
		var sum float64
		for _, row := range rows {
			v := goldenFloat(t, row, c)
			sum += v
			if v < -5 {
				t.Errorf("%s/%s/%s: MIX loses %.2f%% to split", row[0], row[1], row[2], -v)
			}
		}
		if avg := sum / float64(len(rows)); avg <= 10 {
			t.Errorf("mean MIX improvement = %.2f%%, want > 10%%", avg)
		}
	})
	t.Run("coalescing-recovers-mirroring-loss", func(t *testing.T) {
		// Scaling study: growing the L2 from 64 to 512 sets multiplies
		// the mirror count 8x, but K-way coalescing must keep paying for
		// the copies — overhead vs the ideal TLB stays flat instead of
		// exploding with the set count (the Sec 3/4 capacity argument).
		header, rows := goldenTable(t, "scaling")
		oc := colIndex(t, header, "overhead-vs-ideal-%")
		sc := colIndex(t, header, "l2-sets")
		wc := colIndex(t, header, "workload")
		overhead := map[string]map[float64]float64{}
		for _, row := range rows {
			wl := row[wc]
			if overhead[wl] == nil {
				overhead[wl] = map[float64]float64{}
			}
			overhead[wl][goldenFloat(t, row, sc)] = goldenFloat(t, row, oc)
		}
		for wl, bySets := range overhead {
			at64, ok64 := bySets[64]
			at512, ok512 := bySets[512]
			if !ok64 || !ok512 {
				t.Fatalf("%s: missing 64/512-set rows (have %v)", wl, bySets)
			}
			if at512 > at64+5 {
				t.Errorf("%s: overhead grew from %.2f%% (64 sets) to %.2f%% (512 sets): mirroring loss is not being recovered",
					wl, at64, at512)
			}
		}
	})
}

// failNowIfMissing guards against silently-skipped qualitative checks in
// CI: the goldens the claims read must exist in non-race builds.
func TestGoldensPresent(t *testing.T) {
	if raceEnabled || *updateGolden {
		t.Skip()
	}
	for _, name := range []string{"fig14", "scaling"} {
		if _, err := os.Stat(goldenPath(name)); err != nil {
			t.Errorf("golden %s missing: %v", name, err)
		}
	}
}
