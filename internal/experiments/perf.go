package experiments

import (
	"fmt"
	"sort"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/gpu"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// figure1Workloads are the three applications of the paper's motivation
// figure.
var figure1Workloads = []string{"mcf", "graph500", "memcached"}

// figure1Policies are the fixed-page-size and mixed allocations compared.
var figure1Policies = []osmm.Policy{osmm.BasePages, osmm.Hugetlbfs2M, osmm.Hugetlbfs1G, osmm.THS}

// Figure1 regenerates the motivation figure: the percentage of runtime
// devoted to address translation on a commercial split-TLB hierarchy
// versus a hypothetical ideal TLB, across page-size policies (Fig 1).
func Figure1(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 1: % runtime in address translation, split vs ideal",
		Columns: []string{"workload", "policy", "split-%runtime", "ideal-%runtime"},
	}
	for _, name := range figure1Workloads {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, policy := range figure1Policies {
			env, err := newNative(s, policy, 0, s.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s/%v: %w", name, policy, err)
			}
			_, splitEst, _, err := measureNative(s, env, spec, mmu.DesignSplit)
			if err != nil {
				return nil, err
			}
			_, idealEst, _, err := measureNative(s, env, spec, mmu.DesignIdeal)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, policy.String(), splitEst.PctTranslation(), idealEst.PctTranslation())
		}
	}
	return t, nil
}

// gpuImprovement measures MIX's improvement over split for one kernel.
func gpuImprovement(s Scale, hogFrac float64, kernelName string) (float64, error) {
	env, err := newNative(s, osmm.THS, hogFrac, s.Seed)
	if err != nil {
		return 0, err
	}
	k, err := gpu.KernelByName(kernelName)
	if err != nil {
		return 0, err
	}
	run := func(d mmu.Design) (perfmodel.Estimate, error) {
		sys, err := gpu.New(gpu.Config{Cores: s.GPUCores, Design: d}, env.as, cachesim.DefaultHierarchy())
		if err != nil {
			return perfmodel.Estimate{}, err
		}
		cores := s.GPUCores
		sys.AttachStreams(func(id int) workload.Stream {
			return k.Build(id, cores, env.base, env.fp, simrand.New(s.Seed+uint64(id)))
		})
		if err := sys.Run(s.WarmupRefs); err != nil {
			return perfmodel.Estimate{}, err
		}
		sys.ResetStats()
		if err := sys.Run(s.MeasureRefs); err != nil {
			return perfmodel.Estimate{}, err
		}
		// GPU throughput parameters: abundant memory parallelism hides
		// some latency; a fixed parameterization suffices for relative
		// comparisons.
		return perfmodel.Default(1.0, 0.5).Runtime(sys.Stats()), nil
	}
	splitEst, err := run(mmu.DesignSplit)
	if err != nil {
		return 0, fmt.Errorf("gpu %s split: %w", kernelName, err)
	}
	mixEst, err := run(mmu.DesignMix)
	if err != nil {
		return 0, fmt.Errorf("gpu %s mix: %w", kernelName, err)
	}
	return perfmodel.ImprovementPercent(splitEst, mixEst), nil
}

// Figure14 regenerates the headline comparison: % performance improvement
// of area-equivalent MIX TLBs over Haswell-style split TLBs across native
// page-size policies, virtualized systems, and GPUs (Fig 14).
func Figure14(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 14: % performance improvement, MIX vs split",
		Columns: []string{"system", "config", "workload", "improvement-%"},
	}
	// Native configs.
	nativeConfigs := []struct {
		label  string
		policy osmm.Policy
	}{
		{"4KB", osmm.BasePages},
		{"2MB", osmm.Hugetlbfs2M},
		{"1GB", osmm.Hugetlbfs1G},
		{"THS", osmm.THS},
	}
	for _, cfg := range nativeConfigs {
		env, err := newNative(s, cfg.policy, 0, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s: %w", cfg.label, err)
		}
		for _, spec := range s.workloads() {
			_, splitEst, _, err := measureNative(s, env, spec, mmu.DesignSplit)
			if err != nil {
				return nil, err
			}
			_, mixEst, _, err := measureNative(s, env, spec, mmu.DesignMix)
			if err != nil {
				return nil, err
			}
			t.AddRow("native", cfg.label, spec.Name, perfmodel.ImprovementPercent(splitEst, mixEst))
		}
	}
	// Virtualized configs: 1 VM and a consolidated 4-VM host.
	for _, vms := range []int{1, 4} {
		env, err := newVirt(s, vms, 0.2, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig14 virt %dVM: %w", vms, err)
		}
		for _, spec := range s.workloads() {
			_, splitEst, err := measureVirt(s, env, spec, mmu.DesignSplit)
			if err != nil {
				return nil, err
			}
			_, mixEst, err := measureVirt(s, env, spec, mmu.DesignMix)
			if err != nil {
				return nil, err
			}
			t.AddRow("virtual", fmt.Sprintf("%dVM", vms), spec.Name,
				perfmodel.ImprovementPercent(splitEst, mixEst))
		}
	}
	// GPU kernels.
	for _, k := range gpu.Kernels() {
		imp, err := gpuImprovement(s, 0, k.Name)
		if err != nil {
			return nil, err
		}
		t.AddRow("gpu", "THS", k.Name, imp)
	}
	return t, nil
}

// Figure15Left regenerates the fragmentation sensitivity study: MIX's
// improvement over split as memhog fragments 20% and 80% of CPU memory
// (20% and 60% for GPUs), workloads sorted ascending as in the paper.
func Figure15Left(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 15 (left): MIX improvement vs split under fragmentation",
		Columns: []string{"system", "memhog%", "workload", "improvement-%"},
	}
	type entry struct {
		name string
		imp  float64
	}
	for _, hogPct := range []int{20, 80} {
		env, err := newNative(s, osmm.THS, float64(hogPct)/100, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig15l memhog=%d%%: %w", hogPct, err)
		}
		var rows []entry
		for _, spec := range s.workloads() {
			_, splitEst, _, err := measureNative(s, env, spec, mmu.DesignSplit)
			if err != nil {
				return nil, err
			}
			_, mixEst, _, err := measureNative(s, env, spec, mmu.DesignMix)
			if err != nil {
				return nil, err
			}
			rows = append(rows, entry{spec.Name, perfmodel.ImprovementPercent(splitEst, mixEst)})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].imp < rows[j].imp })
		for _, r := range rows {
			t.AddRow("cpu", hogPct, r.name, r.imp)
		}
	}
	for _, hogPct := range []int{20, 60} {
		var rows []entry
		for _, k := range gpu.Kernels() {
			imp, err := gpuImprovement(s, float64(hogPct)/100, k.Name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, entry{k.Name, imp})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].imp < rows[j].imp })
		for _, r := range rows {
			t.AddRow("gpu", hogPct, r.name, r.imp)
		}
	}
	return t, nil
}

// Figure15Right regenerates the ideal-TLB comparison: the runtime
// overhead each design pays relative to a TLB that never misses, for
// split and MIX, sorted ascending (the paper's curves; Fig 15 right).
func Figure15Right(s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 15 (right): % overhead vs ideal TLB",
		Columns: []string{"design", "workload", "overhead-%"},
	}
	env, err := newNative(s, osmm.THS, 0.2, s.Seed)
	if err != nil {
		return nil, err
	}
	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix} {
		type entry struct {
			name string
			ov   float64
		}
		var rows []entry
		for _, spec := range s.workloads() {
			_, est, _, err := measureNative(s, env, spec, d)
			if err != nil {
				return nil, err
			}
			rows = append(rows, entry{spec.Name, est.OverheadVsIdealPercent()})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].ov < rows[j].ov })
		for _, r := range rows {
			t.AddRow(string(d), r.name, r.ov)
		}
	}
	return t, nil
}
