package experiments

import (
	"context"
	"fmt"
	"sort"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/gpu"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/perfmodel"
	"mixtlb/internal/simrand"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// figure1Workloads are the three applications of the paper's motivation
// figure.
var figure1Workloads = []string{"mcf", "graph500", "memcached"}

// figure1Policies are the fixed-page-size and mixed allocations compared.
var figure1Policies = []osmm.Policy{osmm.BasePages, osmm.Hugetlbfs2M, osmm.Hugetlbfs1G, osmm.THS}

// Figure1 regenerates the motivation figure: the percentage of runtime
// devoted to address translation on a commercial split-TLB hierarchy
// versus a hypothetical ideal TLB, across page-size policies (Fig 1).
// One grid cell per workload x policy; the paired split/ideal runs stay
// inside one cell so both measure the same environment.
func Figure1(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 1: % runtime in address translation, split vs ideal",
		Columns: []string{"workload", "policy", "split-%runtime", "ideal-%runtime"},
	}
	var cells []Cell
	for _, name := range figure1Workloads {
		for _, policy := range figure1Policies {
			name, policy := name, policy
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s/%s", name, policy),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(name)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, policy, 0, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig1 %s/%v: %w", name, policy, err)
					}
					_, splitEst, _, err := measureNative(ctx, cs, env, spec, mmu.DesignSplit)
					if err != nil {
						return nil, err
					}
					_, idealEst, _, err := measureNative(ctx, cs, env, spec, mmu.DesignIdeal)
					if err != nil {
						return nil, err
					}
					return []Row{{name, policy.String(), splitEst.PctTranslation(), idealEst.PctTranslation()}}, nil
				},
			})
		}
	}
	results, err := RunGrid(ctx, s, "fig1", t, cells)
	AppendRows(t, results)
	return t, err
}

// gpuImprovement measures MIX's improvement over split for one kernel.
func gpuImprovement(ctx context.Context, s Scale, hogFrac float64, kernelName string) (float64, error) {
	env, err := newNative(s, osmm.THS, hogFrac, s.Seed)
	if err != nil {
		return 0, err
	}
	k, err := gpu.KernelByName(kernelName)
	if err != nil {
		return 0, err
	}
	run := func(d mmu.Design) (perfmodel.Estimate, error) {
		if err := ctx.Err(); err != nil {
			return perfmodel.Estimate{}, err
		}
		sys, err := gpu.New(gpu.Config{Cores: s.GPUCores, Design: d}, env.as, cachesim.DefaultHierarchy())
		if err != nil {
			return perfmodel.Estimate{}, err
		}
		cores := s.GPUCores
		sys.AttachStreams(func(id int) workload.Stream {
			return k.Build(id, cores, env.base, env.fp, simrand.New(s.Seed+uint64(id)))
		})
		if err := sys.Run(s.WarmupRefs); err != nil {
			return perfmodel.Estimate{}, err
		}
		sys.ResetStats()
		if err := sys.Run(s.MeasureRefs); err != nil {
			return perfmodel.Estimate{}, err
		}
		// GPU throughput parameters: abundant memory parallelism hides
		// some latency; a fixed parameterization suffices for relative
		// comparisons.
		return perfmodel.Default(1.0, 0.5).Runtime(sys.Stats()), nil
	}
	splitEst, err := run(mmu.DesignSplit)
	if err != nil {
		return 0, fmt.Errorf("gpu %s split: %w", kernelName, err)
	}
	mixEst, err := run(mmu.DesignMix)
	if err != nil {
		return 0, fmt.Errorf("gpu %s mix: %w", kernelName, err)
	}
	return perfmodel.ImprovementPercent(splitEst, mixEst), nil
}

// mixVsSplitNative measures MIX's improvement over split for one workload
// in a freshly built native environment — the body shared by the Figure 14
// and 15 cells.
func mixVsSplitNative(ctx context.Context, cs Scale, policy osmm.Policy, hogFrac float64, wl string) (float64, error) {
	spec, err := workload.ByName(wl)
	if err != nil {
		return 0, err
	}
	env, err := newNative(cs, policy, hogFrac, cs.Seed)
	if err != nil {
		return 0, err
	}
	_, splitEst, _, err := measureNative(ctx, cs, env, spec, mmu.DesignSplit)
	if err != nil {
		return 0, err
	}
	_, mixEst, _, err := measureNative(ctx, cs, env, spec, mmu.DesignMix)
	if err != nil {
		return 0, err
	}
	return perfmodel.ImprovementPercent(splitEst, mixEst), nil
}

// Figure14 regenerates the headline comparison: % performance improvement
// of area-equivalent MIX TLBs over Haswell-style split TLBs across native
// page-size policies, virtualized systems, and GPUs (Fig 14). One cell
// per (config, workload) pair and per GPU kernel.
func Figure14(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 14: % performance improvement, MIX vs split",
		Columns: []string{"system", "config", "workload", "improvement-%"},
	}
	nativeConfigs := []struct {
		label  string
		policy osmm.Policy
	}{
		{"4KB", osmm.BasePages},
		{"2MB", osmm.Hugetlbfs2M},
		{"1GB", osmm.Hugetlbfs1G},
		{"THS", osmm.THS},
	}
	var cells []Cell
	for _, cfg := range nativeConfigs {
		for _, spec := range s.workloads() {
			cfg, wl := cfg, spec.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("native/%s/%s", cfg.label, wl),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					imp, err := mixVsSplitNative(ctx, cs, cfg.policy, 0, wl)
					if err != nil {
						return nil, fmt.Errorf("fig14 %s: %w", cfg.label, err)
					}
					return []Row{{"native", cfg.label, wl, imp}}, nil
				},
			})
		}
	}
	// Virtualized configs: 1 VM and a consolidated 4-VM host.
	for _, vms := range []int{1, 4} {
		for _, spec := range s.workloads() {
			vms, wl := vms, spec.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("virt/%dVM/%s", vms, wl),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newVirt(cs, vms, 0.2, cs.Seed)
					if err != nil {
						return nil, fmt.Errorf("fig14 virt %dVM: %w", vms, err)
					}
					_, splitEst, err := measureVirt(ctx, cs, env, spec, mmu.DesignSplit)
					if err != nil {
						return nil, err
					}
					_, mixEst, err := measureVirt(ctx, cs, env, spec, mmu.DesignMix)
					if err != nil {
						return nil, err
					}
					return []Row{{"virtual", fmt.Sprintf("%dVM", vms), wl,
						perfmodel.ImprovementPercent(splitEst, mixEst)}}, nil
				},
			})
		}
	}
	// GPU kernels.
	for _, k := range gpu.Kernels() {
		kn := k.Name
		cells = append(cells, Cell{
			Name: "gpu/" + kn,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				imp, err := gpuImprovement(ctx, cs, 0, kn)
				if err != nil {
					return nil, err
				}
				return []Row{{"gpu", "THS", kn, imp}}, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "fig14", t, cells)
	AppendRows(t, results)
	return t, err
}

// sortRowsByImprovement orders rows ascending by the float in column c,
// tie-broken by the workload name so the order never depends on
// scheduling. Used for the paper's sorted Fig 15 curves.
func sortRowsByImprovement(rows []Row, c int, nameCol int) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i][c].(float64), rows[j][c].(float64)
		if a != b {
			return a < b
		}
		return fmt.Sprint(rows[i][nameCol]) < fmt.Sprint(rows[j][nameCol])
	})
}

// Figure15Left regenerates the fragmentation sensitivity study: MIX's
// improvement over split as memhog fragments 20% and 80% of CPU memory
// (20% and 60% for GPUs), workloads sorted ascending as in the paper.
// Cells run per (system, memhog, workload); the sort is post-processing
// over the completed grid, so partial-progress tables are unsorted but
// the final table is canonical.
func Figure15Left(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 15 (left): MIX improvement vs split under fragmentation",
		Columns: []string{"system", "memhog%", "workload", "improvement-%"},
	}
	// groups records [start, end) cell ranges that sort independently.
	type group struct{ start, end int }
	var (
		cells  []Cell
		groups []group
	)
	for _, hogPct := range []int{20, 80} {
		g := group{start: len(cells)}
		for _, spec := range s.workloads() {
			hogPct, wl := hogPct, spec.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("cpu/hog%d/%s", hogPct, wl),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					imp, err := mixVsSplitNative(ctx, cs, osmm.THS, float64(hogPct)/100, wl)
					if err != nil {
						return nil, fmt.Errorf("fig15l memhog=%d%%: %w", hogPct, err)
					}
					return []Row{{"cpu", hogPct, wl, imp}}, nil
				},
			})
		}
		g.end = len(cells)
		groups = append(groups, g)
	}
	for _, hogPct := range []int{20, 60} {
		g := group{start: len(cells)}
		for _, k := range gpu.Kernels() {
			hogPct, kn := hogPct, k.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("gpu/hog%d/%s", hogPct, kn),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					imp, err := gpuImprovement(ctx, cs, float64(hogPct)/100, kn)
					if err != nil {
						return nil, err
					}
					return []Row{{"gpu", hogPct, kn, imp}}, nil
				},
			})
		}
		g.end = len(cells)
		groups = append(groups, g)
	}
	results, err := RunGrid(ctx, s, "fig15l", t, cells)
	if err != nil {
		AppendRows(t, results)
		return t, err
	}
	for _, g := range groups {
		rows := Flatten(results[g.start:g.end])
		sortRowsByImprovement(rows, 3, 2)
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// Figure15Right regenerates the ideal-TLB comparison: the runtime
// overhead each design pays relative to a TLB that never misses, for
// split and MIX, sorted ascending (the paper's curves; Fig 15 right).
// One cell per (design, workload); sorting within each design group is
// post-processing.
func Figure15Right(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 15 (right): % overhead vs ideal TLB",
		Columns: []string{"design", "workload", "overhead-%"},
	}
	type group struct{ start, end int }
	var (
		cells  []Cell
		groups []group
	)
	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix} {
		g := group{start: len(cells)}
		for _, spec := range s.workloads() {
			d, wl := d, spec.Name
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s/%s", d, wl),
				Run: func(ctx context.Context, cs Scale) ([]Row, error) {
					spec, err := workload.ByName(wl)
					if err != nil {
						return nil, err
					}
					env, err := newNative(cs, osmm.THS, 0.2, cs.Seed)
					if err != nil {
						return nil, err
					}
					_, est, _, err := measureNative(ctx, cs, env, spec, d)
					if err != nil {
						return nil, err
					}
					return []Row{{string(d), wl, est.OverheadVsIdealPercent()}}, nil
				},
			})
		}
		g.end = len(cells)
		groups = append(groups, g)
	}
	results, err := RunGrid(ctx, s, "fig15r", t, cells)
	if err != nil {
		AppendRows(t, results)
		return t, err
	}
	for _, g := range groups {
		rows := Flatten(results[g.start:g.end])
		sortRowsByImprovement(rows, 2, 1)
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	return t, nil
}
