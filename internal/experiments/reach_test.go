package experiments

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mixtlb/internal/journal"
)

// reachCSV runs the reach experiment end to end and renders its table.
func reachCSV(t *testing.T, s Scale) string {
	t.Helper()
	tbl, err := ReachStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.CSV()
}

// TestReachResumeByteIdentical kills a journaled reach run after half
// its cells checkpointed and resumes it: the resumed table must be
// byte-identical to an uninterrupted run. Unlike the synthetic-grid
// resume test, this exercises crash/resume over real simulation cells —
// including the victim designs' demotion state, which must be rebuilt
// from scratch per cell rather than leak across the crash boundary.
func TestReachResumeByteIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("full reach runs are covered in the non-race build")
	}
	t.Parallel()
	s := QuickScale()
	s.Jobs = 2
	want := reachCSV(t, s)

	path := filepath.Join(t.TempDir(), "reach.journal")
	fp := s.Fingerprint()
	j1, err := journal.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	s1 := s
	s1.Journal = j1
	s1.ProgressFn = func(ev ProgressEvent) {
		if seen.Add(1) == 3 {
			cancel()
		}
	}
	if _, err := ReachStudy(ctx, s1); err == nil {
		t.Fatal("interrupted run reported success")
	}
	j1.Close()
	if st := j1.Stats(); st.Appended < 1 || st.Appended >= 6 {
		t.Fatalf("first run checkpointed %d of 6 cells, want partial progress", st.Appended)
	}

	j2, err := journal.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := s
	s2.Journal = j2
	if got := reachCSV(t, s2); got != want {
		t.Errorf("resumed reach table differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
