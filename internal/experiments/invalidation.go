package experiments

import (
	"context"
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/smp"
	"mixtlb/internal/stats"
	"mixtlb/internal/workload"
)

// InvalidationStudy quantifies the Sec 4.4 invalidation trade-off at
// system level: a multi-core machine runs superpage traffic while the OS
// periodically unmaps-and-remaps regions (TLB shootdowns to every core).
// Bitmap-encoded bundles lose only the invalidated member; range-encoded
// bundles drop the whole coalesced entry; split TLBs lose a single entry.
// Reported: walks per shootdown (post-invalidation refill traffic).
// One cell per design point.
//
// The design points resolve through the registry (split, mix, mix-range)
// instead of hand-built TLB pairs; the cell names predate the registry
// and are pinned — they seed each cell's random streams.
func InvalidationStudy(ctx context.Context, s Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Sec 4.4 invalidations: post-shootdown refill traffic by design",
		Columns: []string{"design", "walks-per-1k-refs", "shootdowns", "invalidations"},
	}
	points := []struct {
		name   string // pinned cell name (feeds the seed split)
		design string // registry design the cell builds
	}{
		{"split", string(mmu.DesignSplit)},
		{"mix-bitmap", string(mmu.DesignMix)},
		{"mix-range", string(mmu.DesignMixRange)},
	}
	const cores = 2
	reg := s.registry()
	var cells []Cell
	for _, p := range points {
		p := p
		spec, ok := reg.Lookup(p.design)
		if !ok {
			return nil, &mmu.UnknownDesignError{Name: p.design, Valid: reg.Names()}
		}
		cells = append(cells, Cell{
			Name: p.name,
			Run: func(ctx context.Context, cs Scale) ([]Row, error) {
				phys := physmem.NewBuddy(cs.MemoryBytes)
				as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS})
				if err != nil {
					return nil, err
				}
				fp := cs.FootprintBytes / 2
				base, err := as.Mmap(fp)
				if err != nil {
					return nil, err
				}
				if _, err := as.Populate(base, fp); err != nil {
					return nil, fmt.Errorf("invalidation study populate: %w", err)
				}
				sys, err := smp.NewFromSpec(cores, as, cachesim.DefaultHierarchy(), spec)
				if err != nil {
					return nil, err
				}
				if cs.Telemetry != nil {
					sys.AttachTelemetry(cs.Telemetry)
				}
				streams := make([]workload.Stream, cores)
				for i := range streams {
					streams[i] = workload.NewZipf(base, fp, simrand.New(cs.Seed+uint64(i)), 0.9, 0.1, uint64(p.name[0]))
				}
				if err := sys.Run(streams, cs.WarmupRefs); err != nil {
					return nil, err
				}
				sys.ResetStats()
				rng := simrand.New(cs.Seed ^ 0xdead)
				var total uint64
				chunk := cs.MeasureRefs / 10
				for round := 0; round < 10; round++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					if err := sys.Run(streams, chunk); err != nil {
						return nil, err
					}
					total += chunk
					// Unmap and immediately fault back a random 4MB region,
					// modeling mapping churn (e.g. an allocator's MADV_FREE).
					off := addr.AlignedDown(rng.Uint64n(fp-(4<<20)), addr.Size2M)
					sys.Munmap(base+addr.V(off), 4<<20)
				}
				if cs.Telemetry != nil {
					sys.FlushTelemetry()
				}
				agg := sys.Aggregate()
				return []Row{{p.name, 1000 * float64(agg.Walks) / float64(total),
					sys.Stats().Shootdowns, agg.Invalidations}}, nil
			},
		})
	}
	results, err := RunGrid(ctx, s, "invalidation", t, cells)
	AppendRows(t, results)
	return t, err
}
