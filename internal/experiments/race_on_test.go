//go:build race

package experiments

// raceEnabled reports whether the test binary was built with -race.
const raceEnabled = true
