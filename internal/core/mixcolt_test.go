package core

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/tlb"
)

// mixColtConfig is the Fig 18 "MIX+COLT" design: a MIX TLB that also
// coalesces up to 4 contiguous small pages.
func mixColtConfig() Config {
	cfg := L1Config()
	cfg.Name = "mix+colt-L1"
	cfg.SmallCoalesce = 4
	return cfg
}

func TestSmallCoalesceBundlesFourPages(t *testing.T) {
	m := mustNew(mixColtConfig())
	// Four contiguous, window-aligned 4KB pages in one walker line.
	line := []addr.V{}
	trs := make([]struct{}, 0)
	_ = line
	_ = trs
	l := []struct{ vpn, ppn uint64 }{{8, 100}, {9, 101}, {10, 102}, {11, 103}}
	walk := walkOf(
		tr(l[0].vpn, l[0].ppn, addr.Page4K),
		tr(l[1].vpn, l[1].ppn, addr.Page4K),
		tr(l[2].vpn, l[2].ppn, addr.Page4K),
		tr(l[3].vpn, l[3].ppn, addr.Page4K),
	)
	cost := m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	// The 16KB bundle spans 4 index granules: 4 mirror sets.
	if cost.SetsFilled != 4 {
		t.Errorf("4KB bundle filled %d sets, want 4", cost.SetsFilled)
	}
	for _, e := range l {
		r := look(m, addr.V(e.vpn<<12|0x9a))
		if !r.Hit {
			t.Fatalf("page %d missed", e.vpn)
		}
		if got := r.T.Translate(addr.V(e.vpn<<12 | 0x9a)); got != addr.P(e.ppn<<12|0x9a) {
			t.Errorf("page %d PA = %v", e.vpn, got)
		}
	}
	if m.Stats().MembersPerFill != 4 {
		t.Errorf("coalesced %d members", m.Stats().MembersPerFill)
	}
}

func TestSmallCoalesceAlignmentWindow(t *testing.T) {
	m := mustNew(mixColtConfig())
	// Pages 10,11,12,13: window boundary at 12 splits the run.
	walk := walkOf(
		tr(10, 100, addr.Page4K), tr(11, 101, addr.Page4K),
		tr(12, 102, addr.Page4K), tr(13, 103, addr.Page4K),
	)
	m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	if !look(m, addr.V(10)<<12).Hit || !look(m, addr.V(11)<<12).Hit {
		t.Error("same-window pages missing")
	}
	if look(m, addr.V(12)<<12).Hit {
		t.Error("page across the 4-page window boundary was coalesced")
	}
}

func TestSmallCoalesceRejectsDiscontiguousPhysical(t *testing.T) {
	m := mustNew(mixColtConfig())
	walk := walkOf(tr(8, 100, addr.Page4K), tr(9, 555, addr.Page4K))
	m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	if look(m, addr.V(9)<<12).Hit {
		t.Error("physically discontiguous 4KB page coalesced")
	}
}

func TestSmallCoalesceCoexistsWithSuperpages(t *testing.T) {
	m := mustNew(mixColtConfig())
	m.Fill(tlb.Request{VA: addr.V(2) << 21}, walkOf(tr(2, 7, addr.Page2M)))
	walk := walkOf(tr(0x40000, 9, addr.Page4K), tr(0x40001, 10, addr.Page4K))
	m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	if !look(m, addr.V(2)<<21|0x5000).Hit {
		t.Error("2MB bundle lost")
	}
	if !look(m, addr.V(0x40000)<<12).Hit || !look(m, addr.V(0x40001)<<12).Hit {
		t.Error("4KB bundle lost")
	}
}

func TestSmallCoalesceInvalidation(t *testing.T) {
	m := mustNew(mixColtConfig())
	walk := walkOf(tr(8, 100, addr.Page4K), tr(9, 101, addr.Page4K))
	m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	if n := m.Invalidate(addr.V(8)<<12, addr.Page4K); n == 0 {
		t.Fatal("nothing invalidated")
	}
	if look(m, addr.V(8)<<12).Hit {
		t.Error("invalidated page hits")
	}
	if !look(m, addr.V(9)<<12).Hit {
		t.Error("bitmap sibling lost")
	}
}

func TestSmallCoalesceDirtyPolicy(t *testing.T) {
	m := mustNew(mixColtConfig())
	walk := walkOf(tr(8, 100, addr.Page4K), tr(9, 101, addr.Page4K))
	m.Fill(tlb.Request{VA: walk.Translation.VA}, walk)
	if m.MarkDirty(addr.V(8) << 12) {
		t.Error("multi-member 4KB bundle accepted MarkDirty")
	}
	m2 := mustNew(mixColtConfig())
	m2.Fill(tlb.Request{VA: addr.V(8) << 12}, walkOf(tr(8, 100, addr.Page4K)))
	if !m2.MarkDirty(addr.V(8) << 12) {
		t.Error("singleton 4KB bundle refused MarkDirty")
	}
}
