package core

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// dtr builds a 2MB translation with a chosen dirty bit.
func dtr(vpn, ppn uint64, dirty bool) pagetable.Translation {
	t := tr(vpn, ppn, addr.Page2M)
	t.Dirty = dirty
	return t
}

func TestDirtyGroupsSeededAtFill(t *testing.T) {
	m := mustNew(L1Config()) // K=16: two groups of 8
	// Group 0 (slots 0-7) all dirty; group 1 (slots 8-15) has one clean.
	line := []pagetable.Translation{
		dtr(32, 100, true), dtr(33, 101, true), dtr(34, 102, true), dtr(35, 103, true),
		dtr(36, 104, true), dtr(37, 105, true), dtr(38, 106, true), dtr(39, 107, true),
	}
	m.Fill(tlb.Request{VA: line[0].VA}, walkOf(line...))
	line2 := []pagetable.Translation{
		dtr(40, 108, true), dtr(41, 109, false),
	}
	m.Fill(tlb.Request{VA: line2[0].VA}, walkOf(line2...))
	// Stores to group 0 members see dirty (no micro-op needed).
	if r := look(m, addr.V(35)<<21); !r.Dirty {
		t.Error("all-dirty group not exempt")
	}
	// Group 1 members see clean.
	if r := look(m, addr.V(40)<<21); r.Dirty {
		t.Error("mixed group reported dirty")
	}
}

func TestRefreshDirtySetsGroup(t *testing.T) {
	m := mustNew(L1Config())
	a, b := dtr(32, 100, false), dtr(33, 101, false)
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	if r := look(m, a.VA); r.Dirty {
		t.Fatal("clean bundle dirty")
	}
	// A store dirties a's PTE; the assist reads the line where b is still
	// clean: group must stay unexempt.
	a.Dirty = true
	if m.RefreshDirty(a.VA, []pagetable.Translation{a, b}) {
		t.Error("group refreshed with a clean member")
	}
	// After b's PTE is dirty too, the next assist flips the group.
	b.Dirty = true
	if !m.RefreshDirty(a.VA, []pagetable.Translation{a, b}) {
		t.Error("group not refreshed with all members dirty")
	}
	if r := look(m, a.VA); !r.Dirty {
		t.Error("member not dirty after group refresh")
	}
	if r := look(m, b.VA); !r.Dirty {
		t.Error("sibling not dirty after group refresh")
	}
}

func TestRefreshDirtyPlain4K(t *testing.T) {
	m := mustNew(L1Config())
	p := tr(0x77, 0x88, addr.Page4K)
	m.Fill(tlb.Request{VA: p.VA}, walkOf(p))
	if !m.RefreshDirty(p.VA, []pagetable.Translation{p}) {
		t.Error("4KB refresh failed")
	}
	if !look(m, p.VA).Dirty {
		t.Error("4KB entry not dirty")
	}
	// Absent VA: no refresh.
	if m.RefreshDirty(0xdead<<21, nil) {
		t.Error("refresh succeeded on absent entry")
	}
}

func TestNoDirtyGroupsAblation(t *testing.T) {
	cfg := L1Config()
	cfg.NoDirtyGroups = true
	m := mustNew(cfg)
	a, b := dtr(32, 100, true), dtr(33, 101, true)
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	// All-dirty fill still sets the whole-bundle bit (AND semantics).
	if r := look(m, a.VA); !r.Dirty {
		t.Error("all-dirty bundle not dirty under ablation")
	}
	// But a clean member forces the paper's forever-micro-op behaviour:
	// refresh can never exempt a multi-member bundle.
	c, d := dtr(40, 108, false), dtr(41, 109, false)
	m.Fill(tlb.Request{VA: c.VA}, walkOf(c, d))
	c.Dirty, d.Dirty = true, true
	if m.RefreshDirty(c.VA, []pagetable.Translation{c, d}) {
		t.Error("multi-member bundle exempted under NoDirtyGroups")
	}
}

func TestDirtyGroupsSurviveMergeConservatively(t *testing.T) {
	m := mustNew(L1Config())
	// Bundle with group 0 all-dirty.
	a, b := dtr(32, 100, true), dtr(33, 101, true)
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	if r := look(m, a.VA); !r.Dirty {
		t.Fatal("setup: group not dirty")
	}
	// A clean member in the same group merges in: the group's exemption
	// must be revoked (it is no longer all-dirty).
	c := dtr(34, 102, false)
	m.Fill(tlb.Request{VA: c.VA}, walkOf(c))
	if r := look(m, a.VA); r.Dirty {
		t.Error("group exemption survived merging a clean member")
	}
	// A clean member in the *other* group leaves group 0 exempt.
	m2 := mustNew(L1Config())
	m2.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	e := dtr(41, 109, false) // slot 9: group 1
	m2.Fill(tlb.Request{VA: e.VA}, walkOf(e))
	if r := look(m2, a.VA); !r.Dirty {
		t.Error("unrelated group's clean member revoked group 0")
	}
}

func TestMembersExpansion(t *testing.T) {
	m := mustNew(L1Config())
	line := []pagetable.Translation{
		tr(32, 100, addr.Page2M), tr(33, 101, addr.Page2M), tr(34, 102, addr.Page2M),
	}
	m.Fill(tlb.Request{VA: line[0].VA}, walkOf(line...))
	got := m.Members(line[1].VA + 0x1234)
	if len(got) != 3 {
		t.Fatalf("Members returned %d translations", len(got))
	}
	for i, tr := range got {
		if tr.VA != line[i].VA || tr.PA != line[i].PA {
			t.Errorf("member %d = %v", i, tr)
		}
	}
	if m.Members(0xdead0000000) != nil {
		t.Error("Members on a miss returned data")
	}
	// 4KB plain entry: singleton.
	p := tr(0x99, 0x11, addr.Page4K)
	m.Fill(tlb.Request{VA: p.VA}, walkOf(p))
	if got := m.Members(p.VA); len(got) != 1 || got[0].PA != p.PA {
		t.Errorf("4KB Members = %v", got)
	}
}

func TestPromoteCoalescesBundle(t *testing.T) {
	m := mustNew(L1Config())
	line := []pagetable.Translation{
		tr(32, 100, addr.Page2M), tr(33, 101, addr.Page2M),
		tr(34, 102, addr.Page2M), tr(35, 103, addr.Page2M),
	}
	// Promote fills only the probed set, with the whole bundle.
	cost := m.Promote(tlb.Request{VA: line[0].VA}, line[0], line)
	if cost.SetsFilled != 1 {
		t.Errorf("promotion filled %d sets", cost.SetsFilled)
	}
	// All members hit in the probed set's index positions...
	probedSet := int(uint64(line[0].VA)>>12) & 15
	for _, tr := range line {
		// ...i.e. a lookup whose index maps to the probed set.
		va := tr.VA + addr.V(probedSet<<12)
		if !look(m, va).Hit {
			t.Errorf("member %v missing from promoted bundle", tr.VA)
		}
	}
	// A region mapping to a different set misses (no mirroring on promote).
	other := line[0].VA + addr.V(((probedSet+1)&15)<<12)
	if look(m, other).Hit {
		t.Error("promotion mirrored beyond the probed set")
	}
	// Promote with empty line falls back to a singleton.
	m2 := mustNew(L1Config())
	if c := m2.Promote(tlb.Request{VA: line[0].VA}, line[0], nil); c.SetsFilled != 1 {
		t.Errorf("singleton promote cost: %+v", c)
	}
	// Invalid translation: no-op.
	if c := m2.Promote(tlb.Request{}, pagetable.Translation{}, nil); c != (tlb.Cost{}) {
		t.Errorf("invalid promote cost: %+v", c)
	}
	// 4KB promote fills one plain entry.
	p := tr(0x123, 0x456, addr.Page4K)
	if c := m2.Promote(tlb.Request{VA: p.VA}, p, nil); c.EntriesWritten != 1 {
		t.Errorf("4KB promote cost: %+v", c)
	}
	if !look(m2, p.VA).Hit {
		t.Error("4KB promote missed")
	}
}
