package core

import "mixtlb/internal/telemetry"

// mixTel holds the MIX TLB's pre-resolved telemetry handles (nil when
// disabled, the default).
type mixTel struct {
	col           *telemetry.Collector
	bundleMembers *telemetry.Histogram
}

// bundleMemberBounds buckets coalescing run lengths up to the range
// encoding's 256-member ceiling.
var bundleMemberBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// AttachTelemetry implements telemetry.Instrumentable. Metrics carry a
// tlb label so L1 and L2 MIX instances keep separate series.
func (m *MixTLB) AttachTelemetry(c *telemetry.Collector) {
	if c == nil {
		m.tel = nil
		return
	}
	tc := c.With("tlb", m.cfg.Name)
	m.tel = &mixTel{
		col:           tc,
		bundleMembers: tc.Histogram("tlb_coalesce_members", bundleMemberBounds),
	}
}

// FlushTelemetry exports the accumulated MIX counters into the registry;
// call once after measurement (the MMU forwards its own flush here).
func (m *MixTLB) FlushTelemetry() {
	if m.tel == nil {
		return
	}
	tc := m.tel.col
	s := m.stats
	tc.Counter("tlb_mirror_writes_total").Add(s.MirrorWrites)
	tc.Counter("tlb_coalesce_merges_total").Add(s.CoalesceMerges)
	tc.Counter("tlb_dups_eliminated_total").Add(s.DupsEliminated)
	tc.Counter("tlb_bundles_filled_total").Add(s.BundlesFilled)
	tc.Counter("tlb_small_fills_total").Add(s.SmallFills)
	tc.Counter("tlb_holes_represented_total").Add(s.HolesRepresent)
	tc.Counter("tlb_range_truncations_total").Add(s.RangeTruncation)
	tc.Counter("tlb_corruption_scrubs_total").Add(s.CorruptionScrubs)
}

// OccupancyBySet implements tlb.OccupancyReporter.
func (m *MixTLB) OccupancyBySet() []int {
	occ := make([]int, m.cfg.Sets)
	for si, set := range m.data {
		for i := range set {
			if set[i].valid {
				occ[si]++
			}
		}
	}
	return occ
}
