package core

import (
	"math/bits"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// Fill implements tlb.TLB. 4KB translations fill one set conventionally.
// Superpage translations are coalesced with their cache-line neighbours
// into a bundle, then mirrored into every set any member region can index
// (Sec 4.2's "fill as many sets as necessary" prefetch strategy). See
// fillBundle for the mirror-write policy (non-destructive by default;
// the paper's literal blind fill behind Config.BlindMirrors).
func (m *MixTLB) Fill(req tlb.Request, walk pagetable.WalkResult) tlb.Cost {
	if !walk.Found {
		return tlb.Cost{}
	}
	m.clock++
	tr := walk.Translation
	if tr.Size == addr.Page4K && m.cfg.SmallCoalesce == 0 {
		set := m.data[m.setIndex(req.VA)]
		v := m.victim(set)
		if set[v].valid && m.sink != nil {
			m.reportEviction(&set[v])
		}
		set[v] = entry{
			valid: true, size: addr.Page4K,
			vpn: tr.VA.VPN4K(), pa: tr.PA.PageBase(addr.Page4K),
			perm: tr.Perm, dirty: tr.Dirty, stamp: m.clock,
		}
		m.stats.SmallFills++
		return tlb.Cost{SetsFilled: 1, EntriesWritten: 1}
	}

	bundle := m.buildBundle(tr, walk.Line)
	if tr.Size == addr.Page4K {
		m.stats.SmallFills++
	}
	targets := m.mirrorTargets(req.VA, &bundle)
	cost := m.fillBundle(req.VA, bundle, targets)
	m.stats.BundlesFilled++
	m.stats.MembersPerFill += uint64(bundle.memberCount(m.cfg.Encoding))
	if m.tel != nil {
		m.tel.bundleMembers.Observe(uint64(bundle.memberCount(m.cfg.Encoding)))
	}
	return cost
}

// fillBundle writes the bundle into the target sets. The probed set fills
// normally (merge with a compatible copy, else LRU replacement). Mirror
// sets are prefetch targets: they merge into an existing copy or allocate
// an *invalid* way, but never evict a live entry — one miss must not
// destroy up to sets-1 resident translations (mirror churn would otherwise
// cap the whole TLB at `ways` distinct bundles under capacity pressure).
// Under the BlindMirrors ablation (the paper's literal Sec 4.2/4.3 fill),
// mirrors are written unconditionally with LRU victims.
func (m *MixTLB) fillBundle(probeVA addr.V, bundle entry, targets []int) tlb.Cost {
	probed := m.setIndex(probeVA)
	var cost tlb.Cost
	for _, si := range targets {
		set := m.data[si]
		if si == probed || !m.cfg.BlindMirrors {
			// Only the probed set's copy is recency-refreshed: a merge
			// into a mirror set is maintenance, not a use, and counting
			// it as one inverts LRU (persistently-missing bundles would
			// look hotter everywhere than resident bundles that hit).
			if m.mergeIntoExisting(set, &bundle, si == probed) {
				cost.SetsFilled++
				cost.EntriesWritten++
				m.stats.CoalesceMerges++
				continue
			}
		}
		v := m.victim(set)
		if si != probed && !m.cfg.BlindMirrors && set[v].valid {
			continue // no spare way: skip the prefetch, keep live entries
		}
		if set[v].valid && m.sink != nil {
			m.reportEviction(&set[v])
		}
		set[v] = bundle
		set[v].stamp = m.clock
		cost.SetsFilled++
		cost.EntriesWritten++
		if si != probed {
			m.stats.MirrorWrites++
		}
	}
	return cost
}

// Promote implements tlb.Promoter: an L1 refill served by an L2 hit fills
// only the probed set — no mirroring, since re-mirroring on every
// promotion would churn the other sets — but coalesces the L2 entry's
// member translations (line) so bundle reach survives the promotion path.
func (m *MixTLB) Promote(req tlb.Request, t pagetable.Translation, line []pagetable.Translation) tlb.Cost {
	if !t.Valid() {
		return tlb.Cost{}
	}
	m.clock++
	if t.Size == addr.Page4K && m.cfg.SmallCoalesce == 0 {
		set := m.data[m.setIndex(req.VA)]
		v := m.victim(set)
		if set[v].valid && m.sink != nil {
			m.reportEviction(&set[v])
		}
		set[v] = entry{
			valid: true, size: addr.Page4K,
			vpn: t.VA.VPN4K(), pa: t.PA.PageBase(addr.Page4K),
			perm: t.Perm, dirty: t.Dirty, stamp: m.clock,
		}
		return tlb.Cost{SetsFilled: 1, EntriesWritten: 1}
	}
	if len(line) == 0 {
		line = []pagetable.Translation{t}
	}
	bundle := m.buildBundle(t, line)
	m.targets = append(m.targets[:0], m.setIndex(req.VA))
	return m.fillBundle(req.VA, bundle, m.targets)
}

// Members implements tlb.BundleProvider: expand the entry covering va
// into its member translations, the payload an L1 promotion copies.
func (m *MixTLB) Members(va addr.V) []pagetable.Translation {
	set := m.data[m.setIndex(va)]
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		if e.k == 0 {
			if e.size == addr.Page4K && e.vpn == va.VPN4K() {
				out := append(m.members[:0], pagetable.Translation{
					VA: va.PageBase(addr.Page4K), PA: e.pa, Size: addr.Page4K,
					Perm: e.perm, Accessed: true, Dirty: e.dirty,
				})
				m.members = out[:0]
				return out
			}
			continue
		}
		slot, ok := m.slotOf(e, va)
		if !ok || !e.memberPresent(m.cfg.Encoding, slot) {
			continue
		}
		// Reuse the scratch slice: the promotion path consumes the members
		// before the next Lookup/Fill on this TLB.
		out := m.members[:0]
		for s := 0; s < int(e.k); s++ {
			if e.memberPresent(m.cfg.Encoding, s) {
				out = append(out, m.memberTranslation(e, s))
			}
		}
		m.members = out[:0]
		return out
	}
	return nil
}

// victim picks a replacement way: invalid first, else LRU.
func (m *MixTLB) victim(set []entry) int {
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].stamp < oldest {
			victim, oldest = i, set[i].stamp
		}
	}
	return victim
}

// mergeIntoExisting folds the new bundle into a compatible entry already
// present in the set, implementing the incremental extension of Sec 4.2:
// later misses on superpages adjacent to a cached bundle coalesce into it.
func (m *MixTLB) mergeIntoExisting(set []entry, b *entry, refreshStamp bool) bool {
	for i := range set {
		e := &set[i]
		if e.valid && e.size == b.size && e.k == b.k && e.window == b.window &&
			e.basePA == b.basePA && e.perm == b.perm && m.mergeMembers(e, b) {
			e.dirty = e.dirty && b.dirty
			if refreshStamp {
				e.stamp = m.clock
			}
			return true
		}
	}
	return false
}

// buildBundle assembles a bundle entry for tr by scanning the walked PTE
// cache line for coalescable neighbours: same page size and permissions,
// accessed bit set (x86 fill rule, Sec 4.4), and both virtually and
// physically contiguous with tr's implied window placement.
func (m *MixTLB) buildBundle(tr pagetable.Translation, line []pagetable.Translation) entry {
	size := tr.Size
	shift := size.Shift()
	svn := tr.VA.PageNum(size)
	k := uint64(m.coalesceLimit(size))

	var window uint64
	var slot int
	if m.cfg.NoAlignmentRestriction {
		// Anchor the window at the start of the maximal contiguous run
		// containing tr (bounded to K members), instead of an aligned
		// boundary.
		window, slot = m.runAnchor(tr, line, int(k))
	} else {
		window, slot = windowOf(svn, k)
	}
	var baseSVN uint64
	if m.cfg.NoAlignmentRestriction {
		baseSVN = window
	} else {
		baseSVN = window * k
	}
	basePA := tr.PA - addr.P(uint64(slot)<<shift)

	// Collect qualifying window slots. Candidates all come from one PTE
	// cache line, so they span at most 8 consecutive slots, but their
	// absolute positions range over the whole window (K can exceed 64
	// under the range encoding, hence no fixed-width mask).
	var present, dirtySlot [256]bool
	present[slot] = true
	dirtySlot[slot] = tr.Dirty
	count := 1
	dirtyAll := tr.Dirty
	for _, n := range line {
		if n.Size != size || n.VA == tr.VA || !n.Accessed || n.Perm != tr.Perm {
			continue
		}
		nsvn := n.VA.PageNum(size)
		if nsvn < baseSVN || nsvn >= baseSVN+k {
			continue
		}
		i := int(nsvn - baseSVN)
		if n.PA != basePA+addr.P(uint64(i)<<shift) {
			continue // not physically contiguous with the bundle base
		}
		if !present[i] {
			present[i] = true
			dirtySlot[i] = n.Dirty
			count++
			dirtyAll = dirtyAll && n.Dirty
		}
	}

	e := entry{
		valid: true, size: size, k: uint16(k), window: window, basePA: basePA,
		perm: tr.Perm, dirty: dirtyAll,
	}
	// Seed line-granular dirty knowledge: a slot group whose present
	// members are all dirty in the fetched line starts exempt from dirty
	// micro-ops. (Unaligned bundles skip this: their groups would not
	// correspond to PTE cache lines.)
	if !m.cfg.NoDirtyGroups && !m.cfg.NoAlignmentRestriction {
		for g := 0; g < groupCount(int(k)); g++ {
			any, all := false, true
			for s := 8 * g; s < 8*g+8 && s < int(k); s++ {
				if present[s] {
					any = true
					all = all && dirtySlot[s]
				}
			}
			if any && all {
				e.dgroups |= 1 << g
			}
		}
	}
	// The maximal contiguous run through the demanded slot.
	runStart, runEnd := slot, slot
	for runStart > 0 && present[runStart-1] {
		runStart--
	}
	for runEnd+1 < int(k) && present[runEnd+1] {
		runEnd++
	}
	switch m.cfg.Encoding {
	case Bitmap:
		for i := 0; i < int(k); i++ {
			if present[i] {
				e.bitmap |= 1 << i
			}
		}
		if count > runEnd-runStart+1 {
			m.stats.HolesRepresent++
		}
	case Range:
		// The range encoding cannot hold holes: keep only the run.
		e.start, e.length = uint16(runStart), uint16(runEnd-runStart+1)
		if count > runEnd-runStart+1 {
			m.stats.RangeTruncation++
		}
	}
	return e
}

// runAnchor finds the base superpage number and tr's slot for the
// unaligned-bundle ablation: extend downward and upward from tr through
// the line while VA and PA stay contiguous, capping the run at K.
func (m *MixTLB) runAnchor(tr pagetable.Translation, line []pagetable.Translation, k int) (uint64, int) {
	size := tr.Size
	shift := size.Shift()
	present := make(map[uint64]pagetable.Translation, len(line))
	for _, n := range line {
		if n.Size == size && n.Accessed && n.Perm == tr.Perm {
			present[n.VA.PageNum(size)] = n
		}
	}
	svn := tr.VA.PageNum(size)
	base := svn
	for base > 0 {
		prev, ok := present[base-1]
		if !ok || svn-base+1 >= uint64(k) {
			break
		}
		cur := present[base]
		if prev.PA+addr.P(uint64(1)<<shift) != cur.PA {
			break
		}
		base--
	}
	return base, int(svn - base)
}

// mirrorTargets lists the set indices the bundle must be written to: the
// sets indexed by the 4KB regions the bundle's present members span. For
// 2MB/1GB pages under small-page indexing that is every set (N >= M,
// Sec 3); the list degenerates under the superpage-index ablation or
// MirrorProbedSetOnly.
func (m *MixTLB) mirrorTargets(probeVA addr.V, b *entry) []int {
	if m.cfg.MirrorProbedSetOnly {
		return append(m.targets[:0], m.setIndex(probeVA))
	}
	shift := b.size.Shift()
	var baseSVN uint64
	if m.cfg.NoAlignmentRestriction {
		baseSVN = b.window
	} else {
		baseSVN = b.window * uint64(b.k)
	}
	lo, hi := memberBounds(b, m.cfg.Encoding)
	baseVA := (baseSVN + uint64(lo)) << shift
	spanBytes := uint64(hi-lo+1) << shift
	granules := spanBytes >> m.cfg.IndexShift
	if granules == 0 {
		granules = 1
	}
	if granules >= uint64(m.cfg.Sets) {
		return m.allSets
	}
	// granules < Sets, so the consecutive indices below are distinct
	// modulo Sets — no dedup needed.
	first := int((baseVA >> m.cfg.IndexShift) & m.setMask)
	out := m.targets[:0]
	for g := uint64(0); g < granules; g++ {
		out = append(out, (first+int(g))&int(m.setMask))
	}
	m.targets = out
	return out
}

// memberBounds returns the lowest and highest present slot of a bundle.
func memberBounds(e *entry, enc Encoding) (lo, hi int) {
	if enc == Bitmap {
		return bits.TrailingZeros64(e.bitmap), 63 - bits.LeadingZeros64(e.bitmap)
	}
	return int(e.start), int(e.start) + int(e.length) - 1
}

// RefreshDirty implements tlb.DirtyRefresher: the dirty micro-op's assist
// just wrote one member's PTE D bit and read the surrounding cache line,
// so the design can re-derive the dirty state of the member's whole slot
// group (exactly that line) for free. When every present member of the
// group is dirty, the group's bit is set and future stores to it skip the
// micro-op. Under NoDirtyGroups (the paper's literal single-bit policy),
// only singleton bundles can be marked, as in MarkDirty.
func (m *MixTLB) RefreshDirty(va addr.V, line []pagetable.Translation) bool {
	set := m.data[m.setIndex(va)]
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		if e.k == 0 { // plain 4KB entry
			if e.size == addr.Page4K && e.vpn == va.VPN4K() {
				e.dirty = true
				return true
			}
			continue
		}
		slot, ok := m.slotOf(e, va)
		if !ok || !e.memberPresent(m.cfg.Encoding, slot) {
			continue
		}
		if m.cfg.NoDirtyGroups || m.cfg.NoAlignmentRestriction {
			if e.memberCount(m.cfg.Encoding) == 1 {
				e.dirty = true
				return true
			}
			return false
		}
		base := m.baseSVN(e)
		g := slot / 8
		sizeShift := e.size.Shift()
		all := true
		for s := 8 * g; s < 8*g+8 && s < int(e.k); s++ {
			if !e.memberPresent(m.cfg.Encoding, s) {
				continue
			}
			// Scan the (≤8-entry) line for this member's PTE directly; a
			// per-call map would allocate on the store hot path.
			want := base + uint64(s)
			dirty, found := false, false
			for _, n := range line {
				if n.Size == e.size && uint64(n.VA)>>sizeShift == want {
					dirty, found = n.Dirty, true
					break
				}
			}
			if !found || !dirty {
				all = false
				break
			}
		}
		if all {
			e.dgroups |= 1 << g
		}
		return all
	}
	return false
}

// MarkDirty implements tlb.TLB with the conservative policy of Sec 4.4: a
// bundle's dirty bit may only be set when every member is known dirty,
// which the hardware can only be sure of for single-member bundles. Stores
// through multi-member bundles therefore always inject the PTE update
// micro-op.
func (m *MixTLB) MarkDirty(va addr.V) bool {
	set := m.data[m.setIndex(va)]
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		if e.k == 0 { // plain 4KB entry
			if e.vpn == va.VPN4K() {
				e.dirty = true
				return true
			}
			continue
		}
		slot, ok := m.slotOf(e, va)
		if !ok || !e.memberPresent(m.cfg.Encoding, slot) {
			continue
		}
		if e.memberCount(m.cfg.Encoding) == 1 {
			e.dirty = true
			return true
		}
		return false
	}
	return false
}

// Invalidate implements tlb.TLB. 4KB entries live in exactly one set and
// are dropped there. Superpage members may be mirrored anywhere, so every
// set is visited (invalidations are software-initiated and rare, Sec 4.4):
// bitmap bundles clear the member's bit, keeping neighbours cached; range
// bundles drop the whole coalesced entry — the paper's simple option.
func (m *MixTLB) Invalidate(va addr.V, size addr.PageSize) int {
	n := 0
	if size == addr.Page4K && m.cfg.SmallCoalesce == 0 {
		set := m.data[m.setIndex(va)]
		for i := range set {
			e := &set[i]
			if e.valid && e.size == addr.Page4K && e.vpn == va.VPN4K() {
				e.valid = false
				n++
			}
		}
		return n
	}
	for _, set := range m.data {
		for i := range set {
			e := &set[i]
			if !e.valid || e.size != size || e.k == 0 {
				continue
			}
			slot, ok := m.slotOf(e, va)
			if !ok || !e.memberPresent(m.cfg.Encoding, slot) {
				continue
			}
			n++
			if m.cfg.Encoding == Bitmap {
				e.bitmap &^= 1 << slot
				if e.bitmap == 0 {
					e.valid = false
				}
			} else {
				e.valid = false
			}
		}
	}
	return n
}

// ScrubCorrupt implements tlb.Scrubber: drop the entry (and any mirrors)
// covering va after a detected parity error. Unlike a software
// invalidation, a scrub cannot trust the corrupted entry's contents, so
// the full member bundle is discarded rather than a single member bit.
func (m *MixTLB) ScrubCorrupt(va addr.V, size addr.PageSize) int {
	n := 0
	for _, set := range m.data {
		for i := range set {
			e := &set[i]
			if !e.valid || e.size != size {
				continue
			}
			match := false
			if e.k == 0 {
				match = size == addr.Page4K && e.vpn == va.VPN4K()
			} else if slot, ok := m.slotOf(e, va); ok {
				match = e.memberPresent(m.cfg.Encoding, slot)
			}
			if match {
				e.valid = false
				n++
			}
		}
	}
	m.stats.CorruptionScrubs += uint64(n)
	return n
}

// Flush implements tlb.TLB.
func (m *MixTLB) Flush() {
	for _, set := range m.data {
		for i := range set {
			set[i].valid = false
		}
	}
}
