package core

import (
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

// tr builds a page-aligned translation with the accessed bit set.
func tr(vpn, ppn uint64, size addr.PageSize) pagetable.Translation {
	return pagetable.Translation{
		VA: addr.V(vpn << size.Shift()), PA: addr.P(ppn << size.Shift()),
		Size: size, Perm: addr.PermRW, Accessed: true,
	}
}

// walkOf fabricates a walk whose demanded translation is trs[0] and whose
// PTE cache line carries all of trs.
func walkOf(trs ...pagetable.Translation) pagetable.WalkResult {
	return pagetable.WalkResult{Found: true, Translation: trs[0], Line: trs}
}

// mustNew is the test-side constructor: every config in these tests is
// statically valid, so an error is a test bug.
func mustNew(cfg Config) *MixTLB {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func look(m *MixTLB, va addr.V) tlb.Result { return m.Lookup(tlb.Request{VA: va}) }

func fill(m *MixTLB, w pagetable.WalkResult) tlb.Cost {
	return m.Fill(tlb.Request{VA: w.Translation.VA}, w)
}

// cfg2set is the paper's running example: a 2-set MIX TLB coalescing up to
// 2 superpages (Figures 3, 4, 6, 8).
func cfg2set(ways int) Config {
	return Config{Name: "mix-2set", Sets: 2, Ways: ways, Coalesce: 2, Encoding: Bitmap, IndexShift: addr.Shift4K}
}

func TestSmallPageFillAndLookup(t *testing.T) {
	m := mustNew(L1Config())
	fill(m, walkOf(tr(0x1234, 0x777, addr.Page4K)))
	r := look(m, addr.V(0x1234<<12|0x42))
	if !r.Hit {
		t.Fatal("miss after 4KB fill")
	}
	if got := r.T.Translate(addr.V(0x1234<<12 | 0x42)); got != addr.P(0x777<<12|0x42) {
		t.Errorf("PA = %v", got)
	}
	if r.Cost.Probes != 1 || r.Cost.WaysRead != 6 {
		t.Errorf("cost = %+v", r.Cost)
	}
	if look(m, 0x9999000).Hit {
		t.Error("false hit")
	}
}

// TestPaperFigure34 walks the paper's running example: superpages B (VA
// 0x00400000) and C (0x00600000) are contiguous (PA 0x00000000 and
// 0x00200000). After B misses and fills, both B and C hit in *both* sets,
// through one coalesced mirrored entry per set; lookups probe only the set
// named by VA bit 12.
func TestPaperFigure34(t *testing.T) {
	m := mustNew(cfg2set(2))
	b := tr(2, 0, addr.Page2M) // B: VA 0x400000 -> PA 0x000000
	c := tr(3, 1, addr.Page2M) // C: VA 0x600000 -> PA 0x200000
	cost := fill(m, walkOf(b, c))
	if cost.SetsFilled != 2 {
		t.Errorf("fill touched %d sets, want 2 (mirrors)", cost.SetsFilled)
	}
	// Every 4KB region of both superpages must hit: B0, B1, B2... C511.
	for _, base := range []addr.V{b.VA, c.VA} {
		for i := 0; i < addr.FramesPer2M; i += 37 { // sample regions
			va := base + addr.V(i*addr.Size4K+0x123)
			r := look(m, va)
			if !r.Hit {
				t.Fatalf("region %v missed", va)
			}
			wantPA := addr.P(uint64(base)-0x400000) + addr.P(i*addr.Size4K+0x123)
			if got := r.T.Translate(va); got != wantPA {
				t.Fatalf("PA for %v = %v, want %v", va, got, wantPA)
			}
		}
	}
	// One coalesced fill created exactly one bundle (two mirror writes).
	st := m.Stats()
	if st.BundlesFilled != 1 || st.MembersPerFill != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MirrorWrites != 1 {
		t.Errorf("MirrorWrites = %d, want 1 (one non-probed set)", st.MirrorWrites)
	}
}

func TestMirroringCoversAllSets(t *testing.T) {
	m := mustNew(L1Config()) // 16 sets
	cost := fill(m, walkOf(tr(2, 7, addr.Page2M)))
	if cost.SetsFilled != 16 {
		t.Errorf("fill wrote %d sets, want 16", cost.SetsFilled)
	}
	// All 512 regions hit.
	for i := 0; i < addr.FramesPer2M; i++ {
		if !look(m, addr.V(2<<21+i*addr.Size4K)).Hit {
			t.Fatalf("region %d missed", i)
		}
	}
}

func TestCoalescingOffsetsMirroring(t *testing.T) {
	// 16 contiguous superpages in a 16-set TLB: after filling (8 per
	// line, extended by later misses), the whole 32MB should be TLB
	// resident alongside room for other entries.
	m := mustNew(L1Config())
	trs := make([]pagetable.Translation, 16)
	for i := range trs {
		trs[i] = tr(uint64(16+i), uint64(100+i), addr.Page2M)
	}
	// Two walker lines: superpage numbers 16-23 and 24-31.
	fill(m, walkOf(trs[:8]...))
	fill(m, pagetable.WalkResult{Found: true, Translation: trs[8], Line: trs[8:16]})
	for i := range trs {
		if !look(m, trs[i].VA).Hit {
			t.Fatalf("superpage %d missed", i)
		}
	}
	// The 16 superpages occupy 2 bundles x 16 mirrors = 32 of 96 entries;
	// 4KB fills must still find room (utilization for any distribution).
	for i := 0; i < 16; i++ {
		fill(m, walkOf(tr(uint64(0x70000+i), uint64(i), addr.Page4K)))
	}
	hits := 0
	for i := 0; i < 16; i++ {
		if look(m, addr.V((0x70000+i)<<12)).Hit {
			hits++
		}
	}
	if hits != 16 {
		t.Errorf("only %d/16 4KB entries resident next to coalesced superpages", hits)
	}
	for i := range trs {
		if !look(m, trs[i].VA+0x12345).Hit {
			t.Fatalf("superpage %d evicted by small fills", i)
		}
	}
}

func TestAlignmentRestriction(t *testing.T) {
	// K=2: only runs starting at even superpage numbers coalesce. Pages
	// 3 and 4 are contiguous but straddle the window boundary.
	m := mustNew(cfg2set(4))
	fill(m, walkOf(tr(3, 10, addr.Page2M), tr(4, 11, addr.Page2M)))
	st := m.Stats()
	if st.MembersPerFill != 1 {
		t.Errorf("coalesced %d members across an alignment boundary", st.MembersPerFill)
	}
	if !look(m, addr.V(3)<<21).Hit {
		t.Error("demanded page missing")
	}
	if look(m, addr.V(4)<<21).Hit {
		t.Error("page beyond the window boundary was cached by this fill")
	}
}

func TestNoAlignmentRestrictionAblation(t *testing.T) {
	cfg := cfg2set(4)
	cfg.NoAlignmentRestriction = true
	m := mustNew(cfg)
	fill(m, walkOf(tr(3, 10, addr.Page2M), tr(4, 11, addr.Page2M)))
	if m.Stats().MembersPerFill != 2 {
		t.Errorf("unaligned run not coalesced: members=%d", m.Stats().MembersPerFill)
	}
	if !look(m, addr.V(3)<<21).Hit || !look(m, addr.V(4)<<21).Hit {
		t.Error("members missing")
	}
	// PAs still correct.
	r := look(m, addr.V(4)<<21|0x999)
	if got := r.T.Translate(addr.V(4)<<21 | 0x999); got != addr.P(11<<21|0x999) {
		t.Errorf("PA = %v", got)
	}
}

func TestIncrementalExtension(t *testing.T) {
	// Sec 4.2: a bundle grows when later misses touch adjacent superpages
	// from other cache lines.
	m := mustNew(L1Config()) // K=16
	fill(m, walkOf(tr(32, 50, addr.Page2M)))
	// Adjacent superpage demanded later, alone in its (fabricated) line.
	fill(m, walkOf(tr(33, 51, addr.Page2M)))
	st := m.Stats()
	if st.CoalesceMerges == 0 {
		t.Error("adjacent superpage was not merged into the existing bundle")
	}
	if !look(m, addr.V(32)<<21).Hit || !look(m, addr.V(33)<<21).Hit {
		t.Error("bundle member missing after extension")
	}
}

// TestFigure8DuplicatesAndElimination reproduces Sec 4.3: evict one mirror
// copy, re-miss on the evicted set, and observe (a) a duplicate appears in
// the surviving set via blind mirroring, then (b) a probe of that set
// merges the duplicates.
func TestFigure8DuplicatesAndElimination(t *testing.T) {
	cfg := cfg2set(2)
	cfg.BlindMirrors = true // the paper's Figure 8 behaviour
	m := mustNew(cfg)
	b, c := tr(2, 0, addr.Page2M), tr(3, 1, addr.Page2M)
	fill(m, walkOf(b, c)) // B-C mirrored into both sets

	// Fill set 1 with two 4KB pages (D, E): VPNs with bit0=1 index set 1.
	d, e := tr(0x101, 0x11, addr.Page4K), tr(0x103, 0x13, addr.Page4K)
	m.Fill(tlb.Request{VA: d.VA}, walkOf(d))
	m.Fill(tlb.Request{VA: e.VA}, walkOf(e))
	// Set 1's B-C mirror is gone: B1 (region 1 of B) now misses.
	b1 := b.VA + addr.V(addr.Size4K)
	if look(m, b1).Hit {
		t.Fatal("set 1 copy unexpectedly survived")
	}
	// Refill after the walk: blind mirroring duplicates B-C in set 0.
	m.Fill(tlb.Request{VA: b1}, walkOf(b, c))
	// A probe of set 0 (any even region of B) detects and merges them.
	if !look(m, b.VA).Hit {
		t.Fatal("B0 missed")
	}
	if m.Stats().DupsEliminated == 0 {
		t.Error("duplicate copies were not eliminated on probe")
	}
	// Both regions hit afterwards.
	if !look(m, b1).Hit {
		t.Error("B1 missed after refill")
	}
}

func TestRangeEncodingPrefixRun(t *testing.T) {
	cfg := Config{Name: "mix-range", Sets: 4, Ways: 4, Coalesce: 8, Encoding: Range, IndexShift: addr.Shift4K}
	m := mustNew(cfg)
	// Members 8,9,10 contiguous; 12 present but after a hole at 11.
	m.Fill(tlb.Request{VA: tr(9, 109, addr.Page2M).VA}, walkOf(
		tr(9, 109, addr.Page2M), tr(8, 108, addr.Page2M),
		tr(10, 110, addr.Page2M), tr(12, 112, addr.Page2M),
	))
	for _, n := range []uint64{8, 9, 10} {
		if !look(m, addr.V(n)<<21).Hit {
			t.Errorf("member %d missing from range", n)
		}
	}
	if look(m, addr.V(12)<<21).Hit {
		t.Error("member beyond the hole included in range entry")
	}
	if look(m, addr.V(11)<<21).Hit {
		t.Error("absent member hits")
	}
	if m.Stats().RangeTruncation != 1 {
		t.Errorf("RangeTruncation = %d", m.Stats().RangeTruncation)
	}
}

func TestBitmapRepresentsHoles(t *testing.T) {
	m := mustNew(Config{Name: "m", Sets: 4, Ways: 4, Coalesce: 8, Encoding: Bitmap, IndexShift: addr.Shift4K})
	m.Fill(tlb.Request{VA: tr(9, 109, addr.Page2M).VA}, walkOf(
		tr(9, 109, addr.Page2M), tr(12, 112, addr.Page2M),
	))
	if !look(m, addr.V(9)<<21).Hit || !look(m, addr.V(12)<<21).Hit {
		t.Error("bitmap lost a member across a hole")
	}
	if look(m, addr.V(10)<<21).Hit || look(m, addr.V(11)<<21).Hit {
		t.Error("hole members hit")
	}
	if m.Stats().HolesRepresent != 1 {
		t.Errorf("HolesRepresent = %d", m.Stats().HolesRepresent)
	}
}

func TestInvalidationBitmapVsRange(t *testing.T) {
	// Bitmap (L1): invalidating one superpage keeps its neighbours.
	mb := mustNew(Config{Name: "m", Sets: 4, Ways: 4, Coalesce: 8, Encoding: Bitmap, IndexShift: addr.Shift4K})
	mb.Fill(tlb.Request{VA: tr(8, 108, addr.Page2M).VA},
		walkOf(tr(8, 108, addr.Page2M), tr(9, 109, addr.Page2M)))
	if n := mb.Invalidate(addr.V(8)<<21, addr.Page2M); n == 0 {
		t.Fatal("nothing invalidated")
	}
	if look(mb, addr.V(8)<<21).Hit {
		t.Error("invalidated member hits")
	}
	if !look(mb, addr.V(9)<<21).Hit {
		t.Error("bitmap neighbour lost on invalidation")
	}
	// Range (L2): the whole coalesced entry is dropped.
	mr := mustNew(Config{Name: "m", Sets: 4, Ways: 4, Coalesce: 8, Encoding: Range, IndexShift: addr.Shift4K})
	mr.Fill(tlb.Request{VA: tr(8, 108, addr.Page2M).VA},
		walkOf(tr(8, 108, addr.Page2M), tr(9, 109, addr.Page2M)))
	mr.Invalidate(addr.V(8)<<21, addr.Page2M)
	if look(mr, addr.V(8)<<21).Hit || look(mr, addr.V(9)<<21).Hit {
		t.Error("range entry survived invalidation")
	}
}

func TestInvalidate4K(t *testing.T) {
	m := mustNew(L1Config())
	fill(m, walkOf(tr(0x55, 0x66, addr.Page4K)))
	if n := m.Invalidate(addr.V(0x55)<<12, addr.Page4K); n != 1 {
		t.Errorf("Invalidate = %d", n)
	}
	if look(m, addr.V(0x55)<<12).Hit {
		t.Error("4KB entry survived invalidation")
	}
}

func TestDirtyPolicy(t *testing.T) {
	m := mustNew(L1Config())
	// Coalescing a dirty and a clean superpage: bundle dirty = AND = false.
	dirtyTr := tr(32, 1, addr.Page2M)
	dirtyTr.Dirty = true
	clean := tr(33, 2, addr.Page2M)
	m.Fill(tlb.Request{VA: dirtyTr.VA}, walkOf(dirtyTr, clean))
	if r := look(m, dirtyTr.VA); r.Dirty {
		t.Error("mixed bundle reported dirty")
	}
	// Multi-member bundles refuse MarkDirty: every store keeps paying the
	// micro-op (the paper's added cache traffic).
	if m.MarkDirty(dirtyTr.VA) {
		t.Error("multi-member bundle accepted MarkDirty")
	}
	// All-dirty bundles are born dirty.
	d2 := tr(40, 5, addr.Page2M)
	d2.Dirty = true
	d3 := tr(41, 6, addr.Page2M)
	d3.Dirty = true
	m.Fill(tlb.Request{VA: d2.VA}, walkOf(d2, d3))
	if r := look(m, d2.VA); !r.Dirty {
		t.Error("all-dirty bundle not dirty")
	}
	// Singleton bundles may set dirty on store.
	solo := tr(64, 9, addr.Page2M)
	m.Fill(tlb.Request{VA: solo.VA}, walkOf(solo))
	if !m.MarkDirty(solo.VA) {
		t.Error("singleton refused MarkDirty")
	}
	if r := look(m, solo.VA); !r.Dirty {
		t.Error("singleton not dirty after MarkDirty")
	}
	// 4KB entries behave conventionally.
	p := tr(0x99, 0x11, addr.Page4K)
	m.Fill(tlb.Request{VA: p.VA}, walkOf(p))
	if !m.MarkDirty(p.VA) || !look(m, p.VA).Dirty {
		t.Error("4KB MarkDirty failed")
	}
}

func TestPermissionGate(t *testing.T) {
	m := mustNew(L1Config())
	a := tr(32, 1, addr.Page2M)
	b := tr(33, 2, addr.Page2M)
	b.Perm = addr.PermRead // differs
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	if m.Stats().MembersPerFill != 1 {
		t.Error("coalesced across differing permissions")
	}
	if look(m, b.VA).Hit {
		t.Error("different-permission neighbour cached")
	}
}

func TestAccessedBitGate(t *testing.T) {
	m := mustNew(L1Config())
	a := tr(32, 1, addr.Page2M)
	b := tr(33, 2, addr.Page2M)
	b.Accessed = false
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	if look(m, b.VA).Hit {
		t.Error("coalesced a translation whose accessed bit is clear (x86 violation)")
	}
}

func TestPhysicalContiguityRequired(t *testing.T) {
	m := mustNew(L1Config())
	a := tr(32, 1, addr.Page2M)
	b := tr(33, 7, addr.Page2M) // virtually adjacent, physically not
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a, b))
	if look(m, b.VA).Hit {
		t.Error("coalesced physically discontiguous superpages")
	}
	// b later fills its own bundle; both coexist (same window, different
	// basePA — kept as separate entries, no false merging).
	m.Fill(tlb.Request{VA: b.VA}, walkOf(b))
	ra, rb := look(m, a.VA), look(m, b.VA)
	if !ra.Hit || !rb.Hit {
		t.Fatal("entries lost")
	}
	if ra.T.PA != a.PA || rb.T.PA != b.PA {
		t.Errorf("PAs wrong: %v %v", ra.T.PA, rb.T.PA)
	}
}

func TestSuperpageIndexAblation(t *testing.T) {
	// Sec 3: indexing by superpage bits makes spatially adjacent small
	// pages collide in one set.
	cfg := L1Config()
	cfg.IndexShift = addr.Shift2M
	m := mustNew(cfg)
	// 7 adjacent 4KB pages (all inside one 2MB region) in a 6-way TLB:
	// they all index the same set, so one must be evicted.
	for i := uint64(0); i < 7; i++ {
		fill(m, walkOf(tr(i, i+100, addr.Page4K)))
	}
	hits := 0
	for i := uint64(0); i < 7; i++ {
		if look(m, addr.V(i<<12)).Hit {
			hits++
		}
	}
	if hits != 6 {
		t.Errorf("%d/7 adjacent pages resident; want exactly ways=6 (set conflict)", hits)
	}
	// Under small-page indexing the same 7 pages coexist.
	m2 := mustNew(L1Config())
	for i := uint64(0); i < 7; i++ {
		fill(m2, walkOf(tr(i, i+100, addr.Page4K)))
	}
	for i := uint64(0); i < 7; i++ {
		if !look(m2, addr.V(i<<12)).Hit {
			t.Errorf("page %d missing under small-page indexing", i)
		}
	}
	// And a 2MB page maps to exactly one set: a single-set fill.
	if cost := fill(m, walkOf(tr(5, 50, addr.Page2M))); cost.SetsFilled != 1 {
		t.Errorf("superpage-indexed 2MB fill wrote %d sets", cost.SetsFilled)
	}
}

func TestMirrorProbedSetOnlyAblation(t *testing.T) {
	cfg := L1Config()
	cfg.MirrorProbedSetOnly = true
	m := mustNew(cfg)
	base := addr.V(2) << 21
	m.Fill(tlb.Request{VA: base}, walkOf(tr(2, 7, addr.Page2M)))
	if !look(m, base).Hit {
		t.Error("probed region missed")
	}
	// Region 1 indexes a different set: not filled, so it must miss.
	if look(m, base+addr.V(addr.Size4K)).Hit {
		t.Error("non-probed set held the entry despite MirrorProbedSetOnly")
	}
}

func Test1GBPages(t *testing.T) {
	m := mustNew(L1Config())
	g := tr(1, 3, addr.Page1G)
	g2 := tr(2, 4, addr.Page1G) // window [0,16): slots 1,2 — wait, slot 1 and 2
	fill(m, walkOf(g, g2))
	for _, base := range []addr.V{g.VA, g2.VA} {
		for off := uint64(0); off < addr.Size1G; off += addr.Size1G / 7 {
			if !look(m, base+addr.V(off)).Hit {
				t.Fatalf("1GB region at +%#x missed", off)
			}
		}
	}
	r := look(m, g2.VA+0xabcdef)
	if got := r.T.Translate(g2.VA + 0xabcdef); got != addr.P(4<<30+0xabcdef) {
		t.Errorf("1GB PA = %v", got)
	}
	if n := m.Invalidate(g.VA, addr.Page1G); n == 0 {
		t.Error("1GB invalidate found nothing")
	}
	if look(m, g.VA).Hit {
		t.Error("1GB page survived invalidation")
	}
	if !look(m, g2.VA).Hit {
		t.Error("1GB neighbour lost")
	}
}

func TestFlush(t *testing.T) {
	m := mustNew(L1Config())
	fill(m, walkOf(tr(2, 7, addr.Page2M)))
	fill(m, walkOf(tr(0x123, 0x456, addr.Page4K)))
	m.Flush()
	if look(m, addr.V(2)<<21).Hit || look(m, addr.V(0x123)<<12).Hit {
		t.Error("entries survived flush")
	}
}

func TestBadConfigErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 3, Ways: 4, Coalesce: 8},
		{Sets: 4, Ways: 0, Coalesce: 8},
		{Sets: 4, Ways: 4, Coalesce: 0},
		{Sets: 4, Ways: 4, Coalesce: 128},
		{Sets: 4, Ways: 4, Coalesce: 5},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) returned no error", cfg)
		}
	}
}

// TestTranslationCorrectnessProperty is the safety net: whatever mix of
// fills, lookups and invalidations happens, a MIX TLB hit must never
// return a wrong physical address. Wrong-PA bugs are the catastrophic
// failure mode for a TLB design; misses are merely slow.
func TestTranslationCorrectnessProperty(t *testing.T) {
	prop := func(seed uint64, useRange bool) bool {
		rng := simrand.New(seed)
		enc := Bitmap
		if useRange {
			enc = Range
		}
		m := mustNew(Config{Name: "m", Sets: 8, Ways: 4, Coalesce: 8, Encoding: enc, IndexShift: addr.Shift4K})
		// Ground truth: VPN -> PPN per size class, built so superpages
		// sometimes form contiguous runs.
		truth := map[addr.PageSize]map[uint64]uint64{
			addr.Page4K: {}, addr.Page2M: {}, addr.Page1G: {},
		}
		for step := 0; step < 400; step++ {
			size := addr.Sizes()[rng.Intn(3)]
			vpn := rng.Uint64n(256)
			switch rng.Intn(4) {
			case 0: // (re)map a possibly contiguous group
				base := vpn &^ 3
				ppnBase := rng.Uint64n(1 << 20)
				var line []pagetable.Translation
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					if _, mapped := truth[size][base+uint64(i)]; mapped {
						// Remapping requires a shootdown first, as on
						// real hardware.
						m.Invalidate(addr.V((base+uint64(i))<<size.Shift()), size)
					}
					truth[size][base+uint64(i)] = ppnBase + uint64(i)
					line = append(line, tr(base+uint64(i), ppnBase+uint64(i), size))
				}
				// Demanded translation first.
				line[0], line[rng.Intn(n)] = line[rng.Intn(n)], line[0]
				m.Fill(tlb.Request{VA: line[0].VA}, pagetable.WalkResult{
					Found: true, Translation: line[0], Line: line,
				})
			case 1: // lookup and verify
				va := addr.V(vpn<<size.Shift() | rng.Uint64n(size.Bytes()))
				r := look(m, va)
				if r.Hit {
					wantPPN, ok := truth[r.T.Size][va.PageNum(r.T.Size)]
					if !ok {
						t.Logf("hit on never-mapped %v (%v)", va, r.T)
						return false
					}
					if r.T.Translate(va) != addr.P(wantPPN<<r.T.Size.Shift()|va.Offset(r.T.Size)) {
						t.Logf("wrong PA for %v: got %v", va, r.T)
						return false
					}
				}
			case 2: // invalidate (and remap truth so stale hits are bugs)
				if _, ok := truth[size][vpn]; ok {
					m.Invalidate(addr.V(vpn<<size.Shift()), size)
					delete(truth[size], vpn)
				}
			case 3: // remap: invalidate then fill with a new PPN
				if _, ok := truth[size][vpn]; ok {
					m.Invalidate(addr.V(vpn<<size.Shift()), size)
					newPPN := rng.Uint64n(1 << 20)
					truth[size][vpn] = newPPN
					m.Fill(tlb.Request{VA: addr.V(vpn << size.Shift())},
						walkOf(tr(vpn, newPPN, size)))
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLookupIsSingleProbe(t *testing.T) {
	// The design's latency claim (Sec 4.2): lookups probe one set with
	// pure bit selects regardless of what page sizes are resident.
	m := mustNew(L1Config())
	fill(m, walkOf(tr(2, 7, addr.Page2M)))
	fill(m, walkOf(tr(0x123, 0x456, addr.Page4K)))
	fill(m, walkOf(tr(1, 3, addr.Page1G)))
	for _, va := range []addr.V{0x123 << 12, 2 << 21, 1 << 30, 0xdeadbeef000} {
		if r := look(m, va); r.Cost.Probes != 1 {
			t.Errorf("lookup of %v took %d probes", va, r.Cost.Probes)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	l1, l2 := L1Config(), L2Config()
	if l1.Sets*l1.Ways != 96 || l1.Encoding != Bitmap {
		t.Errorf("L1Config = %+v", l1)
	}
	if l2.Sets*l2.Ways != 512 || l2.Encoding != Bitmap || l2.Coalesce != l2.Ways*l2.Coalesce/8 {
		t.Errorf("L2Config = %+v", l2)
	}
	// The net reach identity: coalescing offsets mirroring when
	// ways x K equals the split L2's dedicated entry count.
	if l2.Ways*l2.Coalesce != 512 {
		t.Errorf("L2 net reach = %d entries, want 512", l2.Ways*l2.Coalesce)
	}
	lr := L2RangeConfig()
	if lr.Encoding != Range || lr.Coalesce != lr.Sets {
		t.Errorf("L2RangeConfig = %+v", lr)
	}
	if Bitmap.String() != "bitmap" || Range.String() != "range" {
		t.Error("encoding names")
	}
	// IndexShift defaults to small-page bits.
	m := mustNew(Config{Name: "d", Sets: 4, Ways: 2, Coalesce: 4})
	if m.Config().IndexShift != addr.Shift4K {
		t.Errorf("default IndexShift = %d", m.Config().IndexShift)
	}
}

func TestMirrorsAreNonDestructive(t *testing.T) {
	// Sec 4.2 refinement (DESIGN.md deviation 7): a mirror write must not
	// evict a live entry; only the probed set's fill replaces.
	m := mustNew(Config{Name: "m", Sets: 2, Ways: 1, Coalesce: 2, Encoding: Bitmap, IndexShift: addr.Shift4K})
	// Two disjoint-window superpage bundles: A (window 0) and B (window 2).
	a := tr(0, 10, addr.Page2M)
	b := tr(4, 20, addr.Page2M)
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a)) // occupies the single way of both sets
	// B's fill probes set 0 (VA bit 12 = 0): set 0's copy of A is
	// replaced (probed-set fill), but set 1's live copy of A survives the
	// mirror write.
	m.Fill(tlb.Request{VA: b.VA}, walkOf(b))
	if !look(m, b.VA).Hit {
		t.Fatal("B missing after fill")
	}
	// A's region 1 (set 1) still hits via the surviving mirror.
	if !look(m, a.VA+addr.V(addr.Size4K)).Hit {
		t.Error("mirror write destroyed a live entry in a non-probed set")
	}
	// Under the paper-literal ablation, the mirror write does evict.
	m2 := mustNew(Config{Name: "m", Sets: 2, Ways: 1, Coalesce: 2, Encoding: Bitmap, IndexShift: addr.Shift4K, BlindMirrors: true})
	m2.Fill(tlb.Request{VA: a.VA}, walkOf(a))
	m2.Fill(tlb.Request{VA: b.VA}, walkOf(b))
	if look(m2, a.VA+addr.V(addr.Size4K)).Hit {
		t.Error("BlindMirrors kept the evicted entry")
	}
}

func TestMirrorMergeDoesNotRefreshRecency(t *testing.T) {
	// LRU-inversion guard: merging a fill into a mirror set must not make
	// that copy look recently used.
	m := mustNew(Config{Name: "m", Sets: 2, Ways: 2, Coalesce: 2, Encoding: Bitmap, IndexShift: addr.Shift4K})
	a := tr(0, 10, addr.Page2M) // window 0
	b := tr(4, 20, addr.Page2M) // window 2
	c := tr(8, 30, addr.Page2M) // window 4
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a))
	m.Fill(tlb.Request{VA: b.VA}, walkOf(b))
	// Refill A probing set 0: merges everywhere; set 1's copy must keep
	// its old stamp, so C's fill (probing set 0, mirroring to set 1)
	// still finds A as set 1's LRU victim... but mirrors don't evict.
	// Instead verify via a probed-set eviction: touch B's set-1 region to
	// refresh B there, then fill C probing set 1: victim must be A.
	m.Fill(tlb.Request{VA: a.VA}, walkOf(a)) // merge; no recency refresh in set 1
	if !look(m, b.VA+addr.V(addr.Size4K)).Hit {
		t.Fatal("B set-1 probe missed")
	}
	m.Fill(tlb.Request{VA: c.VA + addr.V(addr.Size4K)}, walkOf(c)) // probed set = 1
	if look(m, a.VA+addr.V(addr.Size4K)).Hit {
		t.Error("A survived in set 1 despite being LRU (merge refreshed recency)")
	}
	if !look(m, b.VA+addr.V(addr.Size4K)).Hit {
		t.Error("recently probed B was evicted instead of stale A")
	}
}
