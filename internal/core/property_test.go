package core

import (
	"fmt"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/simrand"
)

// This file property-tests the MIX invariants that every other layer
// assumes, over randomized allocation patterns:
//
//   - Coverage exactness: a bundle never claims a superpage that was not
//     filled — lookups inside a bundle's window hit only on present
//     members, and a hit's physical address is always the member base
//     plus the 4KB-region offset.
//   - Mirroring: after a superpage fill into an empty TLB, every member
//     hits through every set (any 4KB region of the superpage can be the
//     probe index).
//   - Lossless decomposition: invalidating one member of a bitmap bundle
//     removes exactly that member; the survivors keep translating
//     exactly. Range bundles may drop whole entries (the encoding cannot
//     represent holes) but must never translate the invalidated page.

// propConfigs are the design points the properties must hold for.
func propConfigs() []Config {
	return []Config{L1Config(), L2Config(), L2RangeConfig()}
}

// propPPN maps a superpage number to its physical frame number, keeping
// VA-contiguous runs PA-contiguous (so they coalesce) while giving the
// two sizes disjoint frame spaces.
func propPPN(svn uint64, size addr.PageSize) uint64 {
	if size == addr.Page1G {
		return svn + (1 << 10)
	}
	return svn + (1 << 18)
}

// propRun is one contiguous, same-permission allocation: runLen
// superpages of one size starting at page number start.
type propRun struct {
	size   addr.PageSize
	start  uint64
	runLen int
	dix    int // index of the demanded member within the run
}

// randomRun draws a run of up to 8 superpages (one PTE cache line).
// 2MB runs live in the lower half of the VA space and 1GB runs in the
// upper half so the two sizes never alias.
func randomRun(rng *simrand.Source) propRun {
	size := addr.Page2M
	if rng.Bool(0.5) {
		size = addr.Page1G
	}
	half := uint64(1) << (addr.VABits - 1 - size.Shift())
	start := rng.Uint64n(half - 8)
	if size == addr.Page1G {
		start += half
	}
	runLen := 1 + int(rng.Uint64n(8))
	return propRun{size: size, start: start, runLen: runLen, dix: int(rng.Uint64n(uint64(runLen)))}
}

// walk builds the page-table walk for the run's demanded member, with the
// whole run on the PTE cache line.
func (r propRun) walk() pagetable.WalkResult {
	trs := make([]pagetable.Translation, 0, r.runLen)
	trs = append(trs, tr(r.start+uint64(r.dix), propPPN(r.start+uint64(r.dix), r.size), r.size))
	for i := 0; i < r.runLen; i++ {
		if i != r.dix {
			trs = append(trs, tr(r.start+uint64(i), propPPN(r.start+uint64(i), r.size), r.size))
		}
	}
	return walkOf(trs...)
}

// bundled returns the run's page numbers that share the demanded
// member's coalescing window — exactly the set Fill must make resident.
func (r propRun) bundled(cfg Config) []uint64 {
	k := uint64(cfg.Coalesce)
	dw := (r.start + uint64(r.dix)) / k
	var svns []uint64
	for i := 0; i < r.runLen; i++ {
		if svn := r.start + uint64(i); svn/k == dw {
			svns = append(svns, svn)
		}
	}
	return svns
}

// checkExact asserts that va hits and translates to the propPPN mapping.
func checkExact(t *testing.T, m *MixTLB, va addr.V, size addr.PageSize, what string) {
	t.Helper()
	r := look(m, va)
	if !r.Hit {
		t.Fatalf("%s: %v missed", what, va)
	}
	if r.T.Size != size {
		t.Fatalf("%s: %v hit with size %v, want %v", what, va, r.T.Size, size)
	}
	want := addr.P(propPPN(va.PageNum(size), size)<<size.Shift()) + addr.P(va.Offset(size))
	if got := r.T.Translate(va); got != want {
		t.Fatalf("%s: %v -> %v, want %v", what, va, got, want)
	}
}

// memberVA picks the g-th 4KB region of superpage svn, with a random
// sub-page offset.
func memberVA(svn uint64, size addr.PageSize, g uint64, rng *simrand.Source) addr.V {
	return addr.V(svn<<size.Shift() + g<<addr.Shift4K + rng.Uint64n(addr.Size4K))
}

func TestPropertyFillCoverageAndMirroring(t *testing.T) {
	for _, cfg := range propConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 150; trial++ {
				rng := simrand.New(uint64(trial)*2654435761 + 1)
				run := randomRun(rng)
				m := mustNew(cfg)
				fill(m, run.walk())
				svns := run.bundled(cfg)

				// Mirroring: the demanded member must hit no matter which
				// set its probe VA indexes — walk one 4KB granule per set.
				dsvn := run.start + uint64(run.dix)
				for si := 0; si < cfg.Sets && uint64(si) < run.size.Frames(); si++ {
					va := memberVA(dsvn, run.size, uint64(si), rng)
					checkExact(t, m, va, run.size, fmt.Sprintf("trial %d set %d", trial, si))
				}
				// Every bundled member translates exactly (sampled regions).
				for _, svn := range svns {
					for s := 0; s < 4; s++ {
						va := memberVA(svn, run.size, rng.Uint64n(run.size.Frames()), rng)
						checkExact(t, m, va, run.size, fmt.Sprintf("trial %d member %#x", trial, svn))
					}
				}
				// Coverage exactness: window slots outside the run, and the
				// superpages flanking the run, must miss — the empty TLB has
				// never seen them, so a hit means the bundle overclaims.
				k := uint64(cfg.Coalesce)
				wbase := dsvn / k * k
				for probe := 0; probe < 16; probe++ {
					svn := wbase + rng.Uint64n(k)
					if svn >= run.start && svn < run.start+uint64(run.runLen) {
						continue
					}
					va := memberVA(svn, run.size, rng.Uint64n(run.size.Frames()), rng)
					if r := look(m, va); r.Hit {
						t.Fatalf("trial %d: unfilled window slot %#x hit (%v)", trial, svn, va)
					}
				}
				for _, svn := range []uint64{run.start - 1, run.start + uint64(run.runLen)} {
					va := memberVA(svn, run.size, rng.Uint64n(run.size.Frames()), rng)
					if r := look(m, va); r.Hit {
						t.Fatalf("trial %d: flanking superpage %#x hit", trial, svn)
					}
				}
			}
		})
	}
}

func TestPropertyInvalidationDecomposesLosslessly(t *testing.T) {
	for _, cfg := range propConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 150; trial++ {
				rng := simrand.New(uint64(trial)*0x9e3779b9 + 7)
				run := randomRun(rng)
				m := mustNew(cfg)
				fill(m, run.walk())
				svns := run.bundled(cfg)
				victim := svns[rng.Uint64n(uint64(len(svns)))]

				m.Invalidate(addr.V(victim<<run.size.Shift()), run.size)

				// The invalidated member misses through every set: mirrors
				// must not retain it anywhere.
				for si := 0; si < cfg.Sets && uint64(si) < run.size.Frames(); si++ {
					va := memberVA(victim, run.size, uint64(si), rng)
					if r := look(m, va); r.Hit {
						t.Fatalf("trial %d: invalidated %#x still hits via set %d", trial, victim, si)
					}
				}
				for _, svn := range svns {
					if svn == victim {
						continue
					}
					for s := 0; s < 4; s++ {
						va := memberVA(svn, run.size, rng.Uint64n(run.size.Frames()), rng)
						if cfg.Encoding == Bitmap {
							// Lossless: the bitmap clears one presence bit and
							// every other member keeps translating exactly.
							checkExact(t, m, va, run.size,
								fmt.Sprintf("trial %d survivor %#x", trial, svn))
						} else if r := look(m, va); r.Hit {
							// Range bundles may legally drop survivors (the
							// encoding has no holes) but a hit must stay exact.
							checkExact(t, m, va, run.size,
								fmt.Sprintf("trial %d range survivor %#x", trial, svn))
						}
					}
				}
			}
		})
	}
}

// TestPropertyRandomWorkloadExactness drives each config through a long
// random mix of fills, invalidations, and lookups, checking that no hit —
// ever — returns a wrong translation, even as bundles merge, mirror,
// dedup, and evict each other.
func TestPropertyRandomWorkloadExactness(t *testing.T) {
	for _, cfg := range propConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			rng := simrand.New(0xfeed ^ uint64(cfg.Sets))
			m := mustNew(cfg)
			invalid := map[uint64]bool{} // size-tagged invalidated page numbers
			key := func(svn uint64, size addr.PageSize) uint64 { return svn<<2 | uint64(size) }
			var runs []propRun
			for op := 0; op < 2000; op++ {
				switch {
				case len(runs) == 0 || rng.Bool(0.3):
					run := randomRun(rng)
					fill(m, run.walk())
					runs = append(runs, run)
					for _, svn := range run.bundled(cfg) {
						delete(invalid, key(svn, run.size))
					}
					if len(runs) > 64 {
						runs = runs[1:]
					}
				case rng.Bool(0.15):
					run := runs[rng.Uint64n(uint64(len(runs)))]
					svn := run.start + rng.Uint64n(uint64(run.runLen))
					m.Invalidate(addr.V(svn<<run.size.Shift()), run.size)
					invalid[key(svn, run.size)] = true
				default:
					run := runs[rng.Uint64n(uint64(len(runs)))]
					svn := run.start + rng.Uint64n(uint64(run.runLen))
					va := memberVA(svn, run.size, rng.Uint64n(run.size.Frames()), rng)
					r := look(m, va)
					if !r.Hit {
						continue // misses are always legal
					}
					if invalid[key(svn, run.size)] {
						t.Fatalf("op %d: invalidated page %#x (%v) hit", op, svn, run.size)
					}
					if r.T.Size != run.size {
						t.Fatalf("op %d: %v hit with size %v, want %v", op, va, r.T.Size, run.size)
					}
					want := addr.P(propPPN(svn, run.size)<<run.size.Shift()) + addr.P(va.Offset(run.size))
					if got := r.T.Translate(va); got != want {
						t.Fatalf("op %d: %v -> %v, want %v", op, va, got, want)
					}
				}
			}
		})
	}
}
