package core

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

// TestDifferentialConformance replays one seeded reference stream, with
// randomly interleaved invalidations, through every TLB design in this
// package and internal/tlb, holding each to the page-table oracle: a hit
// must return exactly the ground-truth physical address and page size,
// and an invalidated page must never hit again before a refill. The
// designs differ wildly in hit ratio — that is their point — but never in
// correctness.
func TestDifferentialConformance(t *testing.T) {
	const seed = 0xd1ff
	buddy := physmem.NewBuddy(4 << 30)
	pt, err := pagetable.New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	// A 32MB region with a random mix of 2MB and 4KB mappings, plus one
	// 1GB page so every size class is exercised.
	base := addr.V(0x40000000)
	const regionBytes = 32 << 20
	maprng := simrand.New(seed)
	for off := uint64(0); off < regionBytes; off += addr.Size2M {
		va := base + addr.V(off)
		if maprng.Bool(0.5) {
			pa, ok := buddy.AllocPage(addr.Page2M)
			if !ok {
				t.Fatal("2MB alloc failed")
			}
			if err := pt.Map(va, pa, addr.Page2M, addr.PermRW); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for o := uint64(0); o < addr.Size2M; o += addr.Size4K {
			pa, ok := buddy.AllocPage(addr.Page4K)
			if !ok {
				t.Fatal("4KB alloc failed")
			}
			if err := pt.Map(va+addr.V(o), pa, addr.Page4K, addr.PermRW); err != nil {
				t.Fatal(err)
			}
		}
	}
	gigVA := addr.V(0x100000000)
	gigPA, ok := buddy.AllocPage(addr.Page1G)
	if !ok {
		t.Fatal("1GB alloc failed")
	}
	if err := pt.Map(gigVA, gigPA, addr.Page1G, addr.PermRW); err != nil {
		t.Fatal(err)
	}

	builders := map[string]func() tlb.TLB{
		"mix-l1":       func() tlb.TLB { return mustNew(L1Config()) },
		"mix-l2":       func() tlb.TLB { return mustNew(L2Config()) },
		"mix-l2-range": func() tlb.TLB { return mustNew(L2RangeConfig()) },
		"haswell-l1":   func() tlb.TLB { return tlb.Must(tlb.NewHaswellL1()) },
		"haswell-l2":   func() tlb.TLB { return tlb.Must(tlb.NewHaswellL2()) },
		"rehash": func() tlb.TLB {
			return tlb.Must(tlb.NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G))
		},
		"rehash+pred": func() tlb.TLB {
			return tlb.NewPredictedRehash(
				tlb.Must(tlb.NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G)),
				tlb.Must(tlb.NewSizePredictor(64)))
		},
		"skew": func() tlb.TLB { return tlb.Must(tlb.NewSkewAllSizes("t", 16, 2)) },
		"skew+pred": func() tlb.TLB {
			return tlb.NewPredictedSkew(tlb.Must(tlb.NewSkewAllSizes("t", 16, 2)),
				tlb.Must(tlb.NewSizePredictor(64)))
		},
		"colt-4k":      func() tlb.TLB { return tlb.Must(tlb.NewColt("t", addr.Page4K, 8, 4, 4)) },
		"colt-split":   func() tlb.TLB { return tlb.Must(tlb.NewColtSplitL1()) },
		"colt++-split": func() tlb.TLB { return tlb.Must(tlb.NewColtPlusPlusL1()) },
	}

	for name, build := range builders {
		tl := build()
		rng := simrand.New(seed) // identical stream for every design
		hits := 0
		for i := 0; i < 30_000; i++ {
			var va addr.V
			if rng.Bool(0.02) {
				va = gigVA + addr.V(rng.Uint64n(addr.Size1G))
			} else {
				va = base + addr.V(rng.Uint64n(regionBytes))
			}
			tr, mapped := pt.Lookup(va)
			if !mapped {
				t.Fatalf("%s: test bug — VA %v unmapped", name, va)
			}
			r := tl.Lookup(tlb.Request{VA: va, PC: uint64(i)})
			if r.Hit {
				hits++
				if got, want := r.T.Translate(va), tr.Translate(va); got != want {
					t.Fatalf("%s: ref %d VA %v: PA %v, oracle says %v", name, i, va, got, want)
				}
				if r.T.Size != tr.Size {
					t.Fatalf("%s: ref %d VA %v: size %v, oracle says %v", name, i, va, r.T.Size, tr.Size)
				}
			} else {
				walk := pt.Walk(va)
				if !walk.Found {
					t.Fatalf("%s: oracle walk failed for mapped VA %v", name, va)
				}
				tl.Fill(tlb.Request{VA: va, PC: uint64(i)}, walk)
			}
			// Random interleaved invalidation of some resident page: the
			// next lookup of that page must miss, not serve a stale entry.
			if rng.Bool(1.0 / 64) {
				ivVA := base + addr.V(rng.Uint64n(regionBytes))
				ivTr, _ := pt.Lookup(ivVA)
				tl.Invalidate(ivTr.VA, ivTr.Size)
				if tl.Lookup(tlb.Request{VA: ivVA}).Hit {
					t.Fatalf("%s: hit on %v right after invalidation", name, ivVA)
				}
			}
		}
		if hits == 0 {
			t.Errorf("%s: stream never hit — conformance untested", name)
		}
	}
}
