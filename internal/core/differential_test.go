package core_test

// An external test package: the conformance suite pulls its designs from
// the mmu registry, and mmu imports core, so the test must sit outside
// the core package to avoid the import cycle.

import (
	"fmt"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/mmu"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

const diffSeed = 0xd1ff

// diffEnv builds the shared oracle: a 32MB region with a random mix of
// 2MB and 4KB mappings, plus one 1GB page so every size class is
// exercised.
type diffEnv struct {
	pt    *pagetable.PageTable
	base  addr.V
	gigVA addr.V
}

const diffRegionBytes = 32 << 20

func newDiffEnv(t *testing.T) *diffEnv {
	t.Helper()
	buddy := physmem.NewBuddy(4 << 30)
	pt, err := pagetable.New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	base := addr.V(0x40000000)
	maprng := simrand.New(diffSeed)
	for off := uint64(0); off < diffRegionBytes; off += addr.Size2M {
		va := base + addr.V(off)
		if maprng.Bool(0.5) {
			pa, ok := buddy.AllocPage(addr.Page2M)
			if !ok {
				t.Fatal("2MB alloc failed")
			}
			if err := pt.Map(va, pa, addr.Page2M, addr.PermRW); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for o := uint64(0); o < addr.Size2M; o += addr.Size4K {
			pa, ok := buddy.AllocPage(addr.Page4K)
			if !ok {
				t.Fatal("4KB alloc failed")
			}
			if err := pt.Map(va+addr.V(o), pa, addr.Page4K, addr.PermRW); err != nil {
				t.Fatal(err)
			}
		}
	}
	gigVA := addr.V(0x100000000)
	gigPA, ok := buddy.AllocPage(addr.Page1G)
	if !ok {
		t.Fatal("1GB alloc failed")
	}
	if err := pt.Map(gigVA, gigPA, addr.Page1G, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	return &diffEnv{pt: pt, base: base, gigVA: gigVA}
}

// conform replays one seeded reference stream, with randomly interleaved
// invalidations, through the TLB, holding it to the page-table oracle: a
// hit must return exactly the ground-truth physical address and page
// size, and an invalidated page must never hit again before a refill.
func conform(t *testing.T, name string, tl tlb.TLB, e *diffEnv) {
	t.Helper()
	rng := simrand.New(diffSeed) // identical stream for every design
	hits := 0
	for i := 0; i < 30_000; i++ {
		var va addr.V
		if rng.Bool(0.02) {
			va = e.gigVA + addr.V(rng.Uint64n(addr.Size1G))
		} else {
			va = e.base + addr.V(rng.Uint64n(diffRegionBytes))
		}
		tr, mapped := e.pt.Lookup(va)
		if !mapped {
			t.Fatalf("%s: test bug — VA %v unmapped", name, va)
		}
		r := tl.Lookup(tlb.Request{VA: va, PC: uint64(i)})
		if r.Hit {
			hits++
			if got, want := r.T.Translate(va), tr.Translate(va); got != want {
				t.Fatalf("%s: ref %d VA %v: PA %v, oracle says %v", name, i, va, got, want)
			}
			if r.T.Size != tr.Size {
				t.Fatalf("%s: ref %d VA %v: size %v, oracle says %v", name, i, va, r.T.Size, tr.Size)
			}
		} else {
			walk := e.pt.Walk(va)
			if !walk.Found {
				t.Fatalf("%s: oracle walk failed for mapped VA %v", name, va)
			}
			// Victim levels fill only by eviction-driven demotion (their
			// Fill is a no-op); feed them the walk result the way the
			// hierarchy would. 1GB entries are refused by contract and
			// simply never hit.
			if dem, ok := tl.(tlb.Demoter); ok {
				dem.Demote(walk.Translation, false)
			} else {
				tl.Fill(tlb.Request{VA: va, PC: uint64(i)}, walk)
			}
		}
		// Random interleaved invalidation of some resident page: the
		// next lookup of that page must miss, not serve a stale entry.
		if rng.Bool(1.0 / 64) {
			ivVA := e.base + addr.V(rng.Uint64n(diffRegionBytes))
			ivTr, _ := e.pt.Lookup(ivVA)
			tl.Invalidate(ivTr.VA, ivTr.Size)
			if tl.Lookup(tlb.Request{VA: ivVA}).Hit {
				t.Fatalf("%s: hit on %v right after invalidation", name, ivVA)
			}
		}
	}
	if hits == 0 {
		t.Errorf("%s: stream never hit — conformance untested", name)
	}
}

// TestDifferentialConformance runs the conformance stream through every
// hierarchy level of every registry design — so a design added to the
// registry is held to the oracle automatically — plus a few raw
// organizations (predictor-less rehash and skew, standalone CoLT) that no
// registered design exposes directly. The designs differ wildly in hit
// ratio — that is their point — but never in correctness. Ideal designs
// are skipped: tlb.NewIdeal answers from the page table itself, so the
// stream would hold the oracle to the oracle.
func TestDifferentialConformance(t *testing.T) {
	e := newDiffEnv(t)
	tested := 0
	seen := map[mmu.LevelSpec]bool{} // identical specs build identical TLBs
	for _, spec := range mmu.DefaultRegistry().Specs() {
		if spec.FreeWalks {
			continue
		}
		tlbs, err := spec.BuildTLBs(e.pt)
		if err != nil {
			t.Fatalf("design %q failed to build: %v", spec.Name, err)
		}
		for i, tl := range tlbs {
			key := spec.Levels[i]
			key.Name = "" // geometry, not label, determines behavior
			key.HitLatency = 0
			if seen[key] {
				continue
			}
			seen[key] = true
			conform(t, fmt.Sprintf("%s/L%d", spec.Name, i+1), tl, e)
			tested++
		}
	}
	if tested < 10 {
		t.Errorf("only %d distinct registry levels conformance-tested", tested)
	}

	extras := map[string]tlb.TLB{
		"rehash":  tlb.Must(tlb.NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G)),
		"skew":    tlb.Must(tlb.NewSkewAllSizes("t", 16, 2)),
		"colt-4k": tlb.Must(tlb.NewColt("t", addr.Page4K, 8, 4, 4)),
	}
	for name, tl := range extras {
		conform(t, name, tl, e)
	}
}
