// Package core implements MIX TLBs, the contribution of Cox &
// Bhattacharjee (ASPLOS'17): a single set-associative TLB that caches all
// page sizes concurrently.
//
// The design, following Sections 3-4 of the paper:
//
//   - One indexing scheme for every page size: the small-page (4KB) index
//     bits. Superpage lookups therefore pick their index bits from within
//     the superpage's page offset, so a superpage maps to (up to) every
//     set. Fills replicate the superpage entry into those sets — mirrors.
//   - Mirroring alone would waste capacity, so the fill path coalesces:
//     the page-table walker reads PTEs in 64-byte cache lines (8 PTEs),
//     and contiguous, same-permission, accessed superpages in that line
//     merge into a single bundle entry. With as many coalesced superpages
//     as mirror copies, net capacity matches a dedicated superpage TLB.
//   - Bundles are encoded two ways: L1 entries carry a bitmap (simple,
//     supports holes); L2 entries carry a (start,length) range checked by
//     comparators (denser, no holes) — Sec 4.1.
//   - Coalescing is restricted to runs inside K-aligned windows of the
//     virtual superpage number space (the alignment restriction), which
//     turns membership checks into a tag compare plus bitmap/range index.
//   - Mirrored fills are blind: no cross-set duplicate scan. Duplicates
//     within a set are detected and merged on later probes (Sec 4.3).
//   - A bundle's dirty bit is the AND of its members' dirty bits; stores
//     through a not-all-dirty bundle always inject the PTE dirty-bit
//     micro-op (Sec 4.4's conservative policy).
//
// Lookup stays single-probe: only the set named by the request's index
// bits is read, and the physical address is rebuilt by concatenation
// (bitmap mode) or base-plus-offset (range mode).
package core

import (
	"fmt"
	"math/bits"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// Encoding selects how a bundle records its coalesced members (Sec 4.1).
type Encoding int

const (
	// Bitmap is the L1 encoding: one presence bit per window slot. It can
	// represent holes, and invalidation clears a single bit.
	Bitmap Encoding = iota
	// Range is the L2 encoding: a (start, length) run checked by
	// comparators. Denser for long runs; invalidation drops the entry.
	Range
)

func (e Encoding) String() string {
	if e == Bitmap {
		return "bitmap"
	}
	return "range"
}

// Config describes a MIX TLB instance, including the ablation knobs
// DESIGN.md calls out.
type Config struct {
	Name string
	Sets int
	Ways int
	// Coalesce is K, the maximum superpages per bundle (a power of two).
	// Fully offsetting mirrors needs K >= Sets. Bitmap entries carry one
	// presence bit per slot, capping K at 64; range entries only store
	// (start, length), allowing K up to 256 — which is why the paper's
	// L2 design switches to the length encoding (Sec 4.1).
	Coalesce int
	// Encoding selects bitmap (L1) or range (L2) bundles.
	Encoding Encoding
	// IndexShift is the VA bit where index extraction starts. The MIX
	// design point is 12 (small-page bits); 21 reproduces the Sec 3
	// ablation that indexes everything by superpage bits.
	IndexShift uint
	// MirrorProbedSetOnly disables the mirror-all-sets prefetch strategy
	// of Sec 4.2, filling only the set the missing request probed.
	MirrorProbedSetOnly bool
	// BlindMirrors makes mirror writes pick a victim without tag-matching
	// the destination set, exactly as the paper's Figure 8 describes —
	// duplicates then arise and are eliminated lazily on probes. The
	// default (false) tag-matches the set being written and merges into
	// an existing compatible bundle instead of inserting a duplicate.
	// This is a deliberate deviation: the paper rejects scanning *all*
	// sets for duplicates, but a within-set tag compare during the fill
	// write costs one set read and prevents fill-storms from evicting
	// live mirrors. BenchmarkDedupPolicy quantifies the difference.
	BlindMirrors bool
	// NoAlignmentRestriction lifts the K-aligned window restriction,
	// anchoring bundles at arbitrary run starts (ablation; costs wider
	// comparators in hardware).
	NoAlignmentRestriction bool
	// NoDirtyGroups disables line-granular dirty tracking, reverting to
	// the paper's literal policy: one dirty bit per bundle, set only when
	// every member is dirty, so stores through not-all-dirty bundles pay
	// the PTE-update micro-op on every store. The default tracks dirty
	// state per group of 8 members — exactly one PTE cache line, whose D
	// bits the micro-op's assist reads anyway — bounding the added
	// traffic (the ablation quantifies the difference).
	NoDirtyGroups bool
	// ContigPages, when nonzero, is the ISA's hardware contiguity block
	// size in base pages (SVNAPOT's 16-page granule, the ARM64
	// contiguous hint's 16-entry span). It is a validation constraint,
	// not a runtime knob: the walker already hands the fill logic every
	// member of an encoded block through walk.Line, so the only
	// requirement is that a bundle can hold one whole block — New
	// rejects Coalesce below it. Zero (the x86-64 default) imposes
	// nothing.
	ContigPages int
	// SmallCoalesce, when nonzero, additionally coalesces runs of
	// contiguous 4KB pages into bundles of up to this many members — the
	// MIX+COLT combination of Sec 7.2 (the paper, like COLT, uses 4). A
	// 4KB bundle spans several index granules and is mirrored into that
	// many sets, reusing the superpage machinery. Zero disables it.
	SmallCoalesce int
}

// L1Config is the paper-equivalent L1 MIX TLB: area-equivalent to the
// split L1's 100 entries (16 sets x 6 ways = 96 entries, the headroom
// paying for coalescing logic), bitmap encoding, K equal to the set count
// so coalescing can fully offset mirroring.
func L1Config() Config {
	return Config{Name: "mix-L1", Sets: 16, Ways: 6, Coalesce: 16, Encoding: Bitmap, IndexShift: addr.Shift4K}
}

// L2Config is the default L2 MIX TLB: 512 entries (the split L2's shared
// array; the separate 1GB TLB's 32 entries are the claimed area saving),
// organized as 64 sets x 8 ways with K = 64 so that coalescing exactly
// offsets mirroring (ways x K = 512 superpages of net reach, matching the
// split L2's dedicated capacity, but usable by any page-size mix).
//
// Deviation from the paper: Sec 4.1 gives the L2 a (start,length) range
// encoding. Ranges only merge with adjacent fragments, so under
// popularity-ordered miss streams (hot pages touched in popularity, not
// address, order) window bundles fragment into runs that evict each other
// — an instability this reproduction surfaced. The default therefore uses
// the bitmap encoding (64 extra bits per entry); L2RangeConfig preserves
// the paper's encoding and BenchmarkBundleEncoding quantifies the gap.
func L2Config() Config {
	return Config{Name: "mix-L2", Sets: 64, Ways: 8, Coalesce: 64, Encoding: Bitmap, IndexShift: addr.Shift4K}
}

// L2RangeConfig is the paper's literal L2 design point: range-encoded
// bundles with K equal to the set count.
func L2RangeConfig() Config {
	return Config{Name: "mix-L2-range", Sets: 128, Ways: 4, Coalesce: 128, Encoding: Range, IndexShift: addr.Shift4K}
}

// Stats exposes MIX-specific event counters for experiments and tests.
type Stats struct {
	MirrorWrites     uint64 // entry writes beyond the first set on a fill
	CoalesceMerges   uint64 // fills absorbed into an existing bundle
	DupsEliminated   uint64 // duplicate copies merged away during probes
	BundlesFilled    uint64 // new bundle entries created
	SmallFills       uint64 // 4KB fills
	MembersPerFill   uint64 // total members across bundle fills (avg = /BundlesFilled)
	HolesRepresent   uint64 // bitmap fills whose member set had holes
	RangeTruncation  uint64 // range fills that dropped non-prefix members
	CorruptionScrubs uint64 // entries dropped by ScrubCorrupt (ECC scrubbing)
}

// MixTLB implements tlb.TLB.
type MixTLB struct {
	cfg     Config
	setMask uint64 // Sets-1
	data    [][]entry
	clock   uint64
	stats   Stats

	allSets []int                   // 0..Sets-1, the full-mirror target list
	targets []int                   // scratch reused by mirrorTargets
	members []pagetable.Translation // scratch reused by Members

	// sink receives translations displaced by capacity replacement (the
	// victim-level demotion feed), nil unless attached. Mirrored bundles
	// mean an evicted copy's members may still be resident in other sets;
	// the sink sees them anyway — demotion must be conservative, and the
	// probe order (SRAM levels first) keeps such duplicates harmless.
	sink tlb.EvictionSink

	// tel is the telemetry hook block, nil unless AttachTelemetry enabled
	// it; every use is a single nil-check branch.
	tel *mixTel
}

// entry is one MIX TLB way. A 2-bit size field distinguishes 4KB entries
// from superpage bundles (Fig 5/6); the simulator keeps the fields
// unpacked.
type entry struct {
	valid bool
	size  addr.PageSize

	// 4KB entries.
	vpn uint64
	pa  addr.P

	// Bundles (superpages always; 4KB pages when SmallCoalesce is on).
	// window identifies the k-aligned group of page numbers (or, without
	// the alignment restriction, the explicit base page number). basePA
	// is the physical address corresponding to window slot 0, so member
	// i's PA is basePA + i<<sizeShift. k is the entry's window capacity;
	// k == 0 marks a plain (non-bundle) 4KB entry.
	k      uint16
	window uint64
	basePA addr.P
	bitmap uint64 // Bitmap encoding
	start  uint16 // Range encoding: first present slot
	length uint16 // Range encoding: run length (0 = unused)

	perm  addr.Perm
	dirty bool
	// dgroups has bit g set when every present member in slot group
	// [8g, 8g+8) is known dirty; a set bit exempts stores to that group
	// from the PTE-update micro-op. Groups are exactly PTE cache lines.
	dgroups uint32
	stamp   uint64
}

var _ tlb.TLB = (*MixTLB)(nil)

// New builds a MIX TLB from cfg.
func New(cfg Config) (*MixTLB, error) {
	if cfg.Sets <= 0 || !addr.IsPow2(uint64(cfg.Sets)) || cfg.Ways <= 0 {
		return nil, fmt.Errorf("core: invalid %s config: bad geometry %dx%d", cfg.Name, cfg.Sets, cfg.Ways)
	}
	maxK := 64
	if cfg.Encoding == Range {
		maxK = 256
	}
	if cfg.Coalesce <= 0 || cfg.Coalesce > maxK || !addr.IsPow2(uint64(cfg.Coalesce)) {
		return nil, fmt.Errorf("core: invalid %s config: bad coalesce limit %d for %v encoding", cfg.Name, cfg.Coalesce, cfg.Encoding)
	}
	if cfg.SmallCoalesce != 0 && (cfg.SmallCoalesce < 0 || cfg.SmallCoalesce > maxK || !addr.IsPow2(uint64(cfg.SmallCoalesce))) {
		return nil, fmt.Errorf("core: invalid %s config: bad small-page coalesce limit %d", cfg.Name, cfg.SmallCoalesce)
	}
	if cfg.ContigPages > 0 && cfg.Coalesce < cfg.ContigPages {
		return nil, fmt.Errorf("core: invalid %s config: coalesce limit %d cannot cover the ISA's %d-page contiguity blocks", cfg.Name, cfg.Coalesce, cfg.ContigPages)
	}
	if cfg.IndexShift == 0 {
		cfg.IndexShift = addr.Shift4K
	}
	m := &MixTLB{cfg: cfg, setMask: uint64(cfg.Sets - 1)}
	m.data = make([][]entry, cfg.Sets)
	for i := range m.data {
		m.data[i] = make([]entry, cfg.Ways)
	}
	m.allSets = make([]int, cfg.Sets)
	for i := range m.allSets {
		m.allSets[i] = i
	}
	m.targets = make([]int, 0, cfg.Sets)
	maxMembers := cfg.Coalesce
	if cfg.SmallCoalesce > maxMembers {
		maxMembers = cfg.SmallCoalesce
	}
	m.members = make([]pagetable.Translation, 0, maxMembers)
	return m, nil
}

// Name implements tlb.TLB.
func (m *MixTLB) Name() string { return m.cfg.Name }

// Entries implements tlb.TLB.
func (m *MixTLB) Entries() int { return m.cfg.Sets * m.cfg.Ways }

// Config returns the configuration (ablation reporting).
func (m *MixTLB) Config() Config { return m.cfg }

// Stats returns a snapshot of MIX-specific counters.
func (m *MixTLB) Stats() Stats { return m.stats }

// SetEvictionSink implements tlb.EvictionNotifier.
func (m *MixTLB) SetEvictionSink(sink tlb.EvictionSink) { m.sink = sink }

// reportEviction feeds every member of a displaced entry to the sink.
// Call sites guarantee e.valid and m.sink != nil.
func (m *MixTLB) reportEviction(e *entry) {
	if e.k == 0 {
		m.sink(pagetable.Translation{
			VA: addr.V(e.vpn << addr.Shift4K), PA: e.pa, Size: addr.Page4K,
			Perm: e.perm, Accessed: true, Dirty: e.dirty,
		}, e.dirty)
		return
	}
	for s := 0; s < int(e.k); s++ {
		if e.memberPresent(m.cfg.Encoding, s) {
			m.sink(m.memberTranslation(e, s), e.memberDirty(m.cfg.Encoding, s))
		}
	}
}

// ReachBytes implements tlb.ReachReporter: bytes of virtual address
// space the resident entries translate, counting each distinct member
// page once no matter how many sets mirror it. Snapshot-only (allocates).
func (m *MixTLB) ReachBytes() uint64 {
	type pageKey struct {
		size addr.PageSize
		svn  uint64
	}
	seen := make(map[pageKey]struct{})
	for _, set := range m.data {
		for i := range set {
			e := &set[i]
			if !e.valid {
				continue
			}
			if e.k == 0 {
				seen[pageKey{addr.Page4K, e.vpn}] = struct{}{}
				continue
			}
			base := m.baseSVN(e)
			for s := 0; s < int(e.k); s++ {
				if e.memberPresent(m.cfg.Encoding, s) {
					seen[pageKey{e.size, base + uint64(s)}] = struct{}{}
				}
			}
		}
	}
	var b uint64
	for k := range seen {
		b += k.size.Bytes()
	}
	return b
}

// setIndex computes the single set a request probes: VA bits
// [IndexShift, IndexShift+log2(Sets)).
func (m *MixTLB) setIndex(va addr.V) int {
	return int((uint64(va) >> m.cfg.IndexShift) & m.setMask)
}

// windowOf returns the bundle tag and member slot for a page number in a
// window of capacity k. k is always a power of two (enforced by New), so
// the divide/modulo reduce to shift/mask on this hot path.
func windowOf(svn, k uint64) (window uint64, slot int) {
	shift := uint(bits.TrailingZeros64(k))
	return svn >> shift, int(svn & (k - 1))
}

// coalesceLimit returns the bundle capacity for a page size.
func (m *MixTLB) coalesceLimit(s addr.PageSize) int {
	if s == addr.Page4K {
		return m.cfg.SmallCoalesce
	}
	return m.cfg.Coalesce
}

// slotOf locates va's member slot within bundle e, returning ok=false when
// va is outside the bundle's window.
func (m *MixTLB) slotOf(e *entry, va addr.V) (int, bool) {
	svn := va.PageNum(e.size)
	if m.cfg.NoAlignmentRestriction {
		if svn < e.window || svn >= e.window+uint64(e.k) {
			return 0, false
		}
		return int(svn - e.window), true
	}
	w, slot := windowOf(svn, uint64(e.k))
	if w != e.window {
		return 0, false
	}
	return slot, true
}

// memberPresent checks the encoding for slot presence.
func (e *entry) memberPresent(enc Encoding, slot int) bool {
	if enc == Bitmap {
		return e.bitmap&(1<<slot) != 0
	}
	return e.length > 0 && slot >= int(e.start) && slot < int(e.start)+int(e.length)
}

// memberTranslation reconstructs the member page's translation: physical
// addresses come from concatenation/addition against the bundle base
// (Fig 7 step 5).
func (m *MixTLB) memberTranslation(e *entry, slot int) pagetable.Translation {
	svn := m.baseSVN(e) + uint64(slot)
	return pagetable.Translation{
		VA:       addr.V(svn << e.size.Shift()),
		PA:       e.basePA + addr.P(uint64(slot)<<e.size.Shift()),
		Size:     e.size,
		Perm:     e.perm,
		Accessed: true,
		Dirty:    e.memberDirty(m.cfg.Encoding, slot),
	}
}

// memberCount returns how many superpages the bundle holds.
func (e *entry) memberCount(enc Encoding) int {
	if enc == Bitmap {
		return bits.OnesCount64(e.bitmap)
	}
	return int(e.length)
}

// groupHasMembers reports whether slot group g holds any present member.
func (e *entry) groupHasMembers(enc Encoding, g int) bool {
	if enc == Bitmap {
		return e.bitmap&(uint64(0xff)<<(8*g)) != 0
	}
	lo, hi := int(e.start), int(e.start)+int(e.length)
	return e.length > 0 && lo < 8*g+8 && hi > 8*g
}

// memberDirty reports the effective dirty state seen by a store to slot:
// the whole-bundle bit or the slot's group bit.
func (e *entry) memberDirty(enc Encoding, slot int) bool {
	return e.dirty || e.dgroups&(1<<(slot/8)) != 0
}

// groupCount returns the number of slot groups in a bundle of capacity k.
func groupCount(k int) int { return (k + 7) / 8 }

// baseSVN returns the page number of the bundle's slot 0.
func (m *MixTLB) baseSVN(e *entry) uint64 {
	if m.cfg.NoAlignmentRestriction {
		return e.window
	}
	return e.window * uint64(e.k)
}

// Lookup implements tlb.TLB: probe exactly one set; all ways are read in
// parallel; entries of every size are match candidates (the size field
// steers the tag compare, Fig 7). Duplicate bundle copies discovered in
// the probed set are merged opportunistically (Sec 4.3, Fig 8 step 5).
func (m *MixTLB) Lookup(req tlb.Request) tlb.Result {
	m.clock++
	res := tlb.Result{Cost: tlb.Cost{Probes: 1, WaysRead: m.cfg.Ways}}
	set := m.data[m.setIndex(req.VA)]
	m.dedupSet(set)
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		if e.k == 0 { // plain 4KB entry
			if e.vpn == req.VA.VPN4K() {
				e.stamp = m.clock
				res.Hit = true
				res.T = pagetable.Translation{
					VA: req.VA.PageBase(addr.Page4K), PA: e.pa, Size: addr.Page4K,
					Perm: e.perm, Accessed: true, Dirty: e.dirty,
				}
				res.Dirty = e.dirty
				return res
			}
			continue
		}
		slot, ok := m.slotOf(e, req.VA)
		if !ok || !e.memberPresent(m.cfg.Encoding, slot) {
			continue
		}
		e.stamp = m.clock
		res.Hit = true
		res.T = m.memberTranslation(e, slot)
		res.Dirty = e.memberDirty(m.cfg.Encoding, slot)
		return res
	}
	return res
}

// LookupReplayConsistent implements tlb.ReplayConsistent: re-probing the
// same VA with no intervening fill only re-stamps the entry it already
// stamped, and dedupSet is idempotent once a set's duplicates are merged.
func (m *MixTLB) LookupReplayConsistent() bool { return true }

// dedupSet merges duplicate bundle copies within one set. Compatible
// duplicates (same size/window/base/permissions) union their members; an
// incompatible duplicate (stale mapping) loses to the newer copy.
func (m *MixTLB) dedupSet(set []entry) {
	// Duplicates need at least two valid bundles; the common probe (sets
	// full of 4KB entries, or a single mirrored bundle) skips the O(ways²)
	// pair scan entirely.
	bundles := 0
	for i := range set {
		if set[i].valid && set[i].k != 0 {
			bundles++
		}
	}
	if bundles < 2 {
		return
	}
	for i := range set {
		if !set[i].valid || set[i].k == 0 {
			continue
		}
		for j := i + 1; j < len(set); j++ {
			a, b := &set[i], &set[j]
			if !b.valid || b.size != a.size || b.k != a.k || b.window != a.window {
				continue
			}
			// Same window with a different physical base or permissions
			// is a distinct translation (e.g. two non-contiguous
			// superpages sharing a window), not a duplicate: keep both.
			if a.basePA != b.basePA || a.perm != b.perm {
				continue
			}
			// Disjoint range fragments of one window cannot be unioned
			// by the (start,length) encoding; they also coexist until a
			// bridging fragment arrives.
			if !m.mergeMembers(a, b) {
				continue
			}
			a.dirty = a.dirty && b.dirty
			if b.stamp > a.stamp {
				a.stamp = b.stamp
			}
			b.valid = false
			m.stats.DupsEliminated++
		}
	}
}

// mergeMembers folds b's members into a (same window/base/perm assumed),
// reporting whether the union was representable. Bitmaps always union;
// ranges union only when overlapping or adjacent. Dirty-group knowledge
// survives a merge only where both sources agree (a group stays marked
// all-dirty only if each contributor either marked it or had no members
// there).
func (m *MixTLB) mergeMembers(a, b *entry) bool {
	before := *a
	if m.cfg.Encoding == Bitmap {
		a.bitmap |= b.bitmap
		a.dgroups = mergedDirtyGroups(m.cfg.Encoding, &before, b, a)
		return true
	}
	aStart, aEnd := int(a.start), int(a.start)+int(a.length)
	bStart, bEnd := int(b.start), int(b.start)+int(b.length)
	if b.length == 0 {
		return true
	}
	if a.length == 0 {
		a.start, a.length = b.start, b.length
		return true
	}
	if bStart <= aEnd && aStart <= bEnd {
		if bStart < aStart {
			aStart = bStart
		}
		if bEnd > aEnd {
			aEnd = bEnd
		}
		a.start, a.length = uint16(aStart), uint16(aEnd-aStart)
		a.dgroups = mergedDirtyGroups(m.cfg.Encoding, &before, b, a)
		return true
	}
	return false
}

// mergedDirtyGroups computes the post-merge dirty-group bitmap: a group
// remains known-all-dirty only when every contributor with members there
// had it marked, and the merged entry actually has members there.
func mergedDirtyGroups(enc Encoding, a, b, merged *entry) uint32 {
	var out uint32
	for g := 0; g < groupCount(int(merged.k)); g++ {
		okA := a.dgroups&(1<<g) != 0 || !a.groupHasMembers(enc, g) || a.dirty
		okB := b.dgroups&(1<<g) != 0 || !b.groupHasMembers(enc, g) || b.dirty
		if okA && okB && merged.groupHasMembers(enc, g) {
			out |= 1 << g
		}
	}
	return out
}
