package tlb

import (
	"errors"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

func TestColtMembers(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRW, true),
		mk2M(6, 102, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	got := c.Members(line[1].VA)
	if len(got) != 3 {
		t.Fatalf("Members = %d entries", len(got))
	}
	for i, m := range got {
		if m.VA != line[i].VA || m.PA != line[i].PA {
			t.Errorf("member %d = %v", i, m)
		}
	}
	if c.Members(addr.V(99)<<21) != nil {
		t.Error("Members on a miss returned data")
	}
}

func TestColtRefreshDirty(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	a := mk2M(4, 100, addr.PermRW, true)
	b := mk2M(5, 101, addr.PermRW, true)
	c.Fill(Request{VA: a.VA}, walkLine(a, b))
	if lookup(c, a.VA).Dirty {
		t.Fatal("fresh bundle dirty")
	}
	// One member dirty: refresh refuses.
	a.Dirty = true
	if c.RefreshDirty(a.VA, []pagetable.Translation{a, b}) {
		t.Error("refresh with a clean member succeeded")
	}
	// All members dirty: entry becomes exempt.
	b.Dirty = true
	if !c.RefreshDirty(a.VA, []pagetable.Translation{a, b}) {
		t.Error("refresh with all dirty failed")
	}
	if !lookup(c, a.VA).Dirty || !lookup(c, b.VA).Dirty {
		t.Error("bundle not dirty after refresh")
	}
	// Miss: refresh is a no-op.
	if c.RefreshDirty(addr.V(99)<<21, nil) {
		t.Error("refresh on absent entry succeeded")
	}
}

func TestSplitMembersDelegation(t *testing.T) {
	s := Must(NewSplit("s",
		Must(NewColt("L1-2M-colt", addr.Page2M, 8, 2, 4)),
		Must(NewSetAssoc("L1-4K", addr.Page4K, 4, 2)),
	))
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRW, true),
	}
	s.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if got := s.Members(line[0].VA); len(got) != 2 {
		t.Errorf("Split.Members = %d entries", len(got))
	}
	// Components without BundleProvider contribute nothing.
	s.Fill(Request{VA: 0x1000}, walkFor(0x1000, 0x2000, addr.Page4K))
	if got := s.Members(0x1000); got != nil {
		t.Errorf("Members over a plain component = %v", got)
	}
	if s.String() == "" {
		t.Error("Split.String empty")
	}
	if len(s.Components()) != 2 {
		t.Error("Components wrong")
	}
}

func TestHashRehashSizes(t *testing.T) {
	h := Must(NewHashRehash("h", 8, 2, addr.Page4K, addr.Page2M))
	sizes := h.Sizes()
	if len(sizes) != 2 || sizes[0] != addr.Page4K || sizes[1] != addr.Page2M {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestPredictorAccuracyEmpty(t *testing.T) {
	p := Must(NewSizePredictor(16))
	if p.Accuracy() != 0 {
		t.Error("accuracy of untouched predictor")
	}
}

func TestBadConfigsReturnErrors(t *testing.T) {
	cases := map[string]func() error{
		"predictor-size": func() error { _, err := NewSizePredictor(5); return err },
		"colt-window":    func() error { _, err := NewColt("bad", addr.Page4K, 4, 2, 3); return err },
		"skew-sets":      func() error { _, err := NewSkew("bad", 3, map[addr.PageSize]int{addr.Page4K: 1}); return err },
		"skew-zero-ways": func() error { _, err := NewSkew("bad", 4, nil); return err },
		"rehash-sizes":   func() error { _, err := NewHashRehash("bad", 4, 2); return err },
	}
	for name, f := range cases {
		err := f()
		if err == nil {
			t.Errorf("%s: no error", name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", name, err)
		}
	}
}

func TestMustPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must did not panic on error")
		}
	}()
	Must(NewSizePredictor(0))
}
