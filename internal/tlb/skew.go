package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Skew is the skew-associative baseline (Seznec, Sec 5.1): every way has
// its own hash function, each page size is cacheable in a configurable
// number of ways, and a lookup reads *all* ways in parallel — the design's
// energy problem, since the read count is the sum of associativities
// across page sizes. Replacement needs global timestamps (another cost the
// paper charges it with); this model keeps a per-entry stamp.
type Skew struct {
	name       string
	sets       int
	waySize    []addr.PageSize // page size cached by each way
	data       [][]entrySlot   // [way][set]
	clock      uint64
	hashMixers []uint64
	// Way lists are fixed at construction; precomputing them keeps the
	// per-lookup probe loops allocation-free.
	all        []int                    // every way, ascending
	waysBySize [addr.NumPageSizes][]int // ways caching each size, ascending
	restBySize [addr.NumPageSizes][]int // ways NOT caching each size, ascending
}

// NewSkew builds a skew TLB with `sets` entries per way. waysPerSize maps
// each supported page size to its number of ways; the paper's 3-size
// example with 2 ways each yields a 6-way structure.
func NewSkew(name string, sets int, waysPerSize map[addr.PageSize]int) (*Skew, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) {
		return nil, cfgErr(name, "bad skew set count %d", sets)
	}
	t := &Skew{name: name, sets: sets}
	for _, s := range addr.Sizes() {
		for i := 0; i < waysPerSize[s]; i++ {
			t.waySize = append(t.waySize, s)
		}
	}
	if len(t.waySize) == 0 {
		return nil, cfgErr(name, "skew TLB with zero ways")
	}
	t.data = make([][]entrySlot, len(t.waySize))
	t.hashMixers = make([]uint64, len(t.waySize))
	for w := range t.data {
		t.data[w] = make([]entrySlot, sets)
		// Distinct odd multipliers give each way an independent
		// multiplicative hash — the skewing property that moves conflict
		// groups apart across ways.
		t.hashMixers[w] = 0x9e3779b97f4a7c15*uint64(w+1) | 1
	}
	for w := range t.waySize {
		t.all = append(t.all, w)
	}
	for _, s := range addr.Sizes() {
		for w, ws := range t.waySize {
			if ws == s {
				t.waysBySize[s] = append(t.waysBySize[s], w)
			} else {
				t.restBySize[s] = append(t.restBySize[s], w)
			}
		}
	}
	return t, nil
}

// NewSkewAllSizes builds the paper's configuration: all three page sizes,
// waysEach ways per size.
func NewSkewAllSizes(name string, sets, waysEach int) (*Skew, error) {
	return NewSkew(name, sets, map[addr.PageSize]int{
		addr.Page4K: waysEach, addr.Page2M: waysEach, addr.Page1G: waysEach,
	})
}

// Name implements TLB.
func (t *Skew) Name() string { return t.name }

// Entries implements TLB.
func (t *Skew) Entries() int { return len(t.waySize) * t.sets }

// Ways returns the total way count (lookup energy is proportional to it).
func (t *Skew) Ways() int { return len(t.waySize) }

// index computes way w's skewed index for va.
func (t *Skew) index(va addr.V, w int) int {
	vpn := va.PageNum(t.waySize[w])
	h := vpn * t.hashMixers[w]
	h ^= h >> 29
	return int(h & uint64(t.sets-1))
}

// lookupWays probes the given ways, leaving cost accounting to callers.
func (t *Skew) lookupWays(req Request, ways []int) (Result, bool) {
	for _, w := range ways {
		s := t.waySize[w]
		e := &t.data[w][t.index(req.VA, w)]
		if e.valid && e.t.Size == s && e.t.VA.PageNum(s) == req.VA.PageNum(s) {
			e.stamp = t.clock
			return Result{Hit: true, T: e.t, Dirty: e.dirty}, true
		}
	}
	return Result{}, false
}

// waysForSize lists the way indices that cache size s.
func (t *Skew) waysForSize(s addr.PageSize) []int { return t.waysBySize[s] }

// LookupReplayConsistent implements ReplayConsistent.
func (t *Skew) LookupReplayConsistent() bool { return true }

// Lookup implements TLB: one probe round reading every way.
func (t *Skew) Lookup(req Request) Result {
	t.clock++
	res, _ := t.lookupWays(req, t.all)
	res.Cost = Cost{Probes: 1, WaysRead: len(t.waySize)}
	return res
}

// LookupPredicted probes the ways of the predicted size first (the energy
// optimization of prediction-based schemes), reading the remaining ways
// only on a first-round miss.
func (t *Skew) LookupPredicted(req Request, predicted addr.PageSize) Result {
	t.clock++
	first := t.waysForSize(predicted)
	res, hit := t.lookupWays(req, first)
	res.Cost = Cost{Probes: 1, WaysRead: len(first)}
	if hit {
		return res
	}
	rest := t.restBySize[predicted]
	res2, _ := t.lookupWays(req, rest)
	res2.Cost = res.Cost
	res2.Cost.Probes++
	res2.Cost.WaysRead += len(rest)
	return res2
}

// Fill implements TLB: the victim is the oldest entry among the indexed
// slots of the ways assigned to the translation's size.
func (t *Skew) Fill(req Request, walk pagetable.WalkResult) Cost {
	if !walk.Found {
		return Cost{}
	}
	ways := t.waysForSize(walk.Translation.Size)
	if len(ways) == 0 {
		return Cost{}
	}
	t.clock++
	victimWay, oldest := -1, ^uint64(0)
	for _, w := range ways {
		e := &t.data[w][t.index(req.VA, w)]
		if !e.valid {
			victimWay, oldest = w, 0
			break
		}
		if e.stamp < oldest {
			victimWay, oldest = w, e.stamp
		}
	}
	e := &t.data[victimWay][t.index(req.VA, victimWay)]
	*e = entrySlot{valid: true, t: walk.Translation, dirty: walk.Translation.Dirty, stamp: t.clock}
	return Cost{SetsFilled: 1, EntriesWritten: 1}
}

// MarkDirty implements TLB.
func (t *Skew) MarkDirty(va addr.V) bool {
	for w := range t.waySize {
		s := t.waySize[w]
		e := &t.data[w][t.index(va, w)]
		if e.valid && e.t.Size == s && e.t.VA.PageNum(s) == va.PageNum(s) {
			e.dirty = true
			return true
		}
	}
	return false
}

// Invalidate implements TLB.
func (t *Skew) Invalidate(va addr.V, size addr.PageSize) int {
	n := 0
	for _, w := range t.waysForSize(size) {
		e := &t.data[w][t.index(va, w)]
		if e.valid && e.t.VA.PageNum(size) == va.PageNum(size) {
			e.valid = false
			n++
		}
	}
	return n
}

// Flush implements TLB.
func (t *Skew) Flush() {
	for w := range t.data {
		for i := range t.data[w] {
			t.data[w][i].valid = false
		}
	}
}
