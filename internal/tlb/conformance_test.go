package tlb

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// TestInterfaceConformance drives every baseline design through the whole
// TLB interface with all three page sizes: fill → hit with correct PA →
// MarkDirty visibility → Invalidate → miss → Flush. Designs may skip
// sizes they cannot cache (the caches() contract), but must never return
// a wrong translation.
func TestInterfaceConformance(t *testing.T) {
	builders := map[string]func() TLB{
		"setassoc-4k": func() TLB { return Must(NewSetAssoc("t", addr.Page4K, 8, 4)) },
		"setassoc-2m": func() TLB { return Must(NewSetAssoc("t", addr.Page2M, 8, 4)) },
		"fullyassoc":  func() TLB { return Must(NewSetAssoc("t", addr.Page1G, 1, 8)) },
		"split":       func() TLB { return Must(NewHaswellL1()) },
		"haswell-l2":  func() TLB { return Must(NewHaswellL2()) },
		"rehash":      func() TLB { return Must(NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G)) },
		"rehash+pred": func() TLB {
			return NewPredictedRehash(Must(NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G)), Must(NewSizePredictor(64)))
		},
		"skew":         func() TLB { return Must(NewSkewAllSizes("t", 16, 2)) },
		"skew+pred":    func() TLB { return NewPredictedSkew(Must(NewSkewAllSizes("t", 16, 2)), Must(NewSizePredictor(64))) },
		"colt-4k":      func() TLB { return Must(NewColt("t", addr.Page4K, 8, 4, 4)) },
		"colt-2m":      func() TLB { return Must(NewColt("t", addr.Page2M, 8, 4, 4)) },
		"colt-split":   func() TLB { return Must(NewColtSplitL1()) },
		"colt++-split": func() TLB { return Must(NewColtPlusPlusL1()) },
	}
	cases := []struct {
		va   addr.V
		pa   addr.P
		size addr.PageSize
	}{
		{0x7f0000042000, 0x1234000, addr.Page4K},
		{0x7f0000400000, 0x5600000, addr.Page2M},
		{0x7f0040000000, 0x80000000, addr.Page1G},
	}
	for name, build := range builders {
		tl := build()
		if tl.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
		for _, c := range cases {
			req := Request{VA: c.va + 0x123, PC: 99}
			walk := walkFor(c.va, c.pa, c.size)
			cost := tl.Fill(req, walk)
			accepted := cost.EntriesWritten > 0
			r := tl.Lookup(req)
			if !accepted {
				if r.Hit {
					t.Errorf("%s/%v: hit without accepted fill", name, c.size)
				}
				continue
			}
			if !r.Hit {
				t.Errorf("%s/%v: miss after fill", name, c.size)
				continue
			}
			want := c.pa + 0x123
			if got := r.T.Translate(req.VA); got != want {
				t.Errorf("%s/%v: PA = %v, want %v", name, c.size, got, want)
			}
			if r.Cost.Probes < 1 || r.Cost.WaysRead < 1 {
				t.Errorf("%s/%v: implausible lookup cost %+v", name, c.size, r.Cost)
			}
			// Dirty flow: fresh entries are clean; single-translation
			// MarkDirty may or may not be precise (coalesced designs),
			// but a reported true must be visible on the next lookup.
			if r.Dirty {
				t.Errorf("%s/%v: fresh entry dirty", name, c.size)
			}
			if tl.MarkDirty(req.VA) {
				if r2 := tl.Lookup(req); !r2.Dirty {
					t.Errorf("%s/%v: MarkDirty=true not visible", name, c.size)
				}
			}
			// Invalidation removes the translation.
			if n := tl.Invalidate(c.va, c.size); n == 0 {
				t.Errorf("%s/%v: Invalidate found nothing", name, c.size)
			}
			if tl.Lookup(req).Hit {
				t.Errorf("%s/%v: hit after invalidate", name, c.size)
			}
			// Refill and flush.
			tl.Fill(req, walk)
			tl.Flush()
			if tl.Lookup(req).Hit {
				t.Errorf("%s/%v: hit after flush", name, c.size)
			}
		}
		if tl.Entries() < 0 {
			t.Errorf("%s: negative capacity", name)
		}
	}
}

// TestNoCrossSizeAliasing fills each size at deliberately aliasing VAs
// and checks no design confuses them.
func TestNoCrossSizeAliasing(t *testing.T) {
	builders := []func() TLB{
		func() TLB { return Must(NewHaswellL1()) },
		func() TLB { return Must(NewHashRehash("t", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G)) },
		func() TLB { return Must(NewSkewAllSizes("t", 16, 2)) },
	}
	for _, build := range builders {
		tl := build()
		// A 4KB page inside the VA range a 2MB page would cover if the
		// sizes were confused.
		small := pagetable.Translation{VA: 0x200000, PA: 0x111000, Size: addr.Page4K, Perm: addr.PermRW, Accessed: true}
		tl.Fill(Request{VA: small.VA}, pagetable.WalkResult{Found: true, Translation: small, Line: []pagetable.Translation{small}})
		// Lookup of the NEXT 4KB page (same 2MB region) must miss.
		if tl.Lookup(Request{VA: 0x201000}).Hit {
			t.Errorf("%s: 4KB entry served a different page in its 2MB region", tl.Name())
		}
		// Lookup of the exact page still hits with a 4KB-sized result.
		r := tl.Lookup(Request{VA: 0x200fff})
		if !r.Hit || r.T.Size != addr.Page4K {
			t.Errorf("%s: exact page lookup = %+v", tl.Name(), r)
		}
	}
}
