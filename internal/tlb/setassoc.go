package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// SetAssoc is a conventional set-associative TLB for exactly one page
// size — the building block of commercial split designs. With Sets == 1
// it degenerates to a fully-associative TLB (used for 1GB entries on real
// parts, Sec 6.1).
type SetAssoc struct {
	name string
	size addr.PageSize
	sets int
	ways int
	// shift and mask precompute the page-number extraction and set
	// masking so the probe loop does no per-call size dispatch.
	shift uint
	mask  uint64
	data  []entrySlot // sets*ways, flattened row-major by set
	clock uint64
	sink  EvictionSink // capacity-eviction feed (nil = detached)
}

// NewSetAssoc builds a TLB with the given geometry caching only pages of
// size s. sets must be a power of two.
func NewSetAssoc(name string, s addr.PageSize, sets, ways int) (*SetAssoc, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) || ways <= 0 {
		return nil, cfgErr(name, "bad geometry %dx%d", sets, ways)
	}
	t := &SetAssoc{
		name:  name,
		size:  s,
		sets:  sets,
		ways:  ways,
		shift: s.Shift(),
		mask:  uint64(sets - 1),
	}
	t.data = make([]entrySlot, sets*ways)
	return t, nil
}

// Name implements TLB.
func (t *SetAssoc) Name() string { return t.name }

// Entries implements TLB.
func (t *SetAssoc) Entries() int { return t.sets * t.ways }

// PageSize returns the single page size this TLB caches.
func (t *SetAssoc) PageSize() addr.PageSize { return t.size }

// LookupReplayConsistent implements ReplayConsistent.
func (t *SetAssoc) LookupReplayConsistent() bool { return true }

// SetEvictionSink implements EvictionNotifier.
func (t *SetAssoc) SetEvictionSink(sink EvictionSink) { t.sink = sink }

// ReachBytes implements ReachReporter.
func (t *SetAssoc) ReachBytes() uint64 {
	n := uint64(0)
	for i := range t.data {
		if t.data[i].valid {
			n++
		}
	}
	return n * t.size.Bytes()
}

// OccupancyBySet implements OccupancyReporter.
func (t *SetAssoc) OccupancyBySet() []int {
	occ := make([]int, t.sets)
	for si := 0; si < t.sets; si++ {
		set := t.data[si*t.ways : (si+1)*t.ways]
		for i := range set {
			if set[i].valid {
				occ[si]++
			}
		}
	}
	return occ
}

func (t *SetAssoc) set(va addr.V) []entrySlot {
	si := int((uint64(va) >> t.shift) & t.mask)
	return t.data[si*t.ways : (si+1)*t.ways : (si+1)*t.ways]
}

// Lookup implements TLB.
func (t *SetAssoc) Lookup(req Request) Result {
	t.clock++
	res := Result{Cost: Cost{Probes: 1, WaysRead: t.ways}}
	set := t.set(req.VA)
	vpn := uint64(req.VA) >> t.shift
	for i := range set {
		if set[i].valid && uint64(set[i].t.VA)>>t.shift == vpn {
			set[i].stamp = t.clock
			res.Hit = true
			res.T = set[i].t
			res.Dirty = set[i].dirty
			return res
		}
	}
	return res
}

// Fill implements TLB. Translations of other page sizes are ignored (the
// split wrapper routes fills to the right component).
func (t *SetAssoc) Fill(req Request, walk pagetable.WalkResult) Cost {
	if !walk.Found || walk.Translation.Size != t.size {
		return Cost{}
	}
	t.clock++
	set := t.set(req.VA)
	v := victimIndex(set)
	if set[v].valid && t.sink != nil {
		t.sink(set[v].t, set[v].dirty)
	}
	set[v] = entrySlot{valid: true, t: walk.Translation, dirty: walk.Translation.Dirty, stamp: t.clock}
	return Cost{SetsFilled: 1, EntriesWritten: 1}
}

// MarkDirty implements TLB.
func (t *SetAssoc) MarkDirty(va addr.V) bool {
	set := t.set(va)
	vpn := uint64(va) >> t.shift
	for i := range set {
		if set[i].valid && uint64(set[i].t.VA)>>t.shift == vpn {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Invalidate implements TLB.
func (t *SetAssoc) Invalidate(va addr.V, size addr.PageSize) int {
	if size != t.size {
		return 0
	}
	set := t.set(va)
	vpn := uint64(va) >> t.shift
	n := 0
	for i := range set {
		if set[i].valid && uint64(set[i].t.VA)>>t.shift == vpn {
			set[i].valid = false
			n++
		}
	}
	return n
}

// Flush implements TLB.
func (t *SetAssoc) Flush() {
	for i := range t.data {
		t.data[i].valid = false
	}
}
