package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Victim is a software-managed victim translation level resident in the
// data-cache hierarchy, after Victima (PAPERS.md): instead of dedicated
// SRAM, its storage is ordinary cache lines, each holding one VBundle of
// packed PTEs. That buys enormous reach (thousands of bundles fit in an
// L2/LLC slice) at the price of cache-access latency per probe — the MMU
// charges each probe as a data-cache access to the storage lines this
// level reports via ProbedLines, not as a fixed SRAM latency.
//
// The level is fed exclusively by eviction-driven demotion from the SRAM
// level above it (Demote); Fill on a page walk is a no-op, so the victim
// holds only translations that earned residency once and were pushed
// out. A deep hit promotes the translation back up and removes it here
// (move semantics). 4KB and 2MB pages are supported; 1GB demotions are
// refused (a 4-entry SRAM array already covers more 1GB reach than any
// bundle scheme) and surface in the MMU's demotion-drop counter.
type Victim struct {
	name string
	sets int
	ways int
	mask uint64
	data []vslot // sets*ways, flattened row-major by set
	// lineBase is the physical address of way 0 of set 0's storage line;
	// slot (si, wi) lives at lineBase + (si*ways+wi)*CacheLineSize.
	lineBase addr.P
	clock    uint64

	probed  []addr.P                // storage lines touched by the last Lookup
	scratch []pagetable.Translation // reused by Members
}

// vslot is one victim way: a bundle of packed PTEs tagged by page size
// and bundle number.
type vslot struct {
	valid bool
	size  addr.PageSize
	bvpn  uint64
	b     VBundle
	stamp uint64
}

// victimSizes is the probe order: 4KB bundles first (the common case on
// fragmented memory), then 2MB.
var victimSizes = [...]addr.PageSize{addr.Page4K, addr.Page2M}

// VictimLineBase is where the victim level's storage lines live in the
// simulated physical address space: above any modeled DRAM (experiments
// allocate at most a few GB) but within the implemented PABits, so the
// cache hierarchy treats the lines like any other memory.
const VictimLineBase addr.P = 1 << 40

// NewVictim builds a victim level with sets x ways bundles (each bundle
// holds BundlePTEs PTEs). sets must be a power of two.
func NewVictim(name string, sets, ways int) (*Victim, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) || ways <= 0 {
		return nil, cfgErr(name, "bad geometry %dx%d", sets, ways)
	}
	t := &Victim{
		name:     name,
		sets:     sets,
		ways:     ways,
		mask:     uint64(sets - 1),
		lineBase: VictimLineBase,
	}
	t.data = make([]vslot, sets*ways)
	t.probed = make([]addr.P, 0, len(victimSizes))
	t.scratch = make([]pagetable.Translation, 0, BundlePTEs)
	return t, nil
}

// Name implements TLB.
func (t *Victim) Name() string { return t.name }

// Entries implements TLB: total PTE capacity, for area comparisons.
func (t *Victim) Entries() int { return t.sets * t.ways * BundlePTEs }

// set returns the ways of the set indexed by bvpn.
func (t *Victim) set(bvpn uint64) []vslot {
	si := int(bvpn & t.mask)
	return t.data[si*t.ways : (si+1)*t.ways : (si+1)*t.ways]
}

// lineOf returns the storage line of way wi of set si.
func (t *Victim) lineOf(si, wi int) addr.P {
	return t.lineBase + addr.P((si*t.ways+wi)*addr.CacheLineSize)
}

// Lookup implements TLB: one probe round per page size, each reading one
// candidate storage line (the matching way's line on a hit; the set's
// first way on a miss — the tag read that concludes "not here").
func (t *Victim) Lookup(req Request) Result {
	t.clock++
	t.probed = t.probed[:0]
	var res Result
	for _, size := range victimSizes {
		bvpn := BundleVPN(req.VA, size)
		si := int(bvpn & t.mask)
		set := t.set(bvpn)
		res.Cost.Probes++
		res.Cost.WaysRead += t.ways
		hit := false
		for i := range set {
			if set[i].valid && set[i].size == size && set[i].bvpn == bvpn {
				t.probed = append(t.probed, t.lineOf(si, i))
				hit = true
				if tr, ok := set[i].b.Get(BundleSlot(req.VA, size), bvpn, size); ok {
					set[i].stamp = t.clock
					res.Hit = true
					res.T = tr
					res.Dirty = tr.Dirty
					return res
				}
				break
			}
		}
		if !hit {
			t.probed = append(t.probed, t.lineOf(si, 0))
		}
	}
	return res
}

// ProbedLines implements CacheResident: the storage lines the last
// Lookup read, valid until the next Lookup.
func (t *Victim) ProbedLines() []addr.P { return t.probed }

// Fill implements TLB as a no-op: the victim level is fed only by
// demotion. Refilling walk results here would duplicate what the SRAM
// levels just cached and burn cache bandwidth on lines about to be
// demoted into anyway.
func (t *Victim) Fill(req Request, walk pagetable.WalkResult) Cost { return Cost{} }

// Demote implements Demoter: absorb a translation evicted from the SRAM
// level above. absorbed is false when the victim refuses the page
// (invalid or 1GB); evicted counts PTEs displaced when absorbing forced
// out a resident bundle.
func (t *Victim) Demote(tr pagetable.Translation, dirty bool) (absorbed bool, evicted int) {
	if !tr.Valid() || (tr.Size != addr.Page4K && tr.Size != addr.Page2M) {
		return false, 0
	}
	t.clock++
	// A demoted entry was resident and used; its bundle slot carries the
	// accessed bit and the sharpest dirty knowledge the SRAM level had.
	tr.Accessed = true
	tr.Dirty = tr.Dirty || dirty
	bvpn := BundleVPN(tr.VA, tr.Size)
	slot := BundleSlot(tr.VA, tr.Size)
	set := t.set(bvpn)
	// Merge into the resident bundle if one exists.
	for i := range set {
		if set[i].valid && set[i].size == tr.Size && set[i].bvpn == bvpn {
			set[i].b.Set(slot, tr)
			set[i].stamp = t.clock
			return true, 0
		}
	}
	// Allocate: invalid way first, else LRU.
	v, oldest := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			v, oldest = i, 0
			break
		}
		if set[i].stamp < oldest {
			v, oldest = i, set[i].stamp
		}
	}
	if set[v].valid {
		evicted = set[v].b.Count()
	}
	set[v] = vslot{valid: true, size: tr.Size, bvpn: bvpn, stamp: t.clock}
	set[v].b.Set(slot, tr)
	return true, evicted
}

// Members implements BundleProvider: the present members of the bundle
// covering va, the payload a deep-hit promotion copies upward. The slice
// is scratch, reused by the next call.
func (t *Victim) Members(va addr.V) []pagetable.Translation {
	for _, size := range victimSizes {
		bvpn := BundleVPN(va, size)
		set := t.set(bvpn)
		for i := range set {
			if set[i].valid && set[i].size == size && set[i].bvpn == bvpn {
				if !set[i].b.Present(BundleSlot(va, size)) {
					break
				}
				out := set[i].b.AppendMembers(t.scratch[:0], bvpn, size)
				t.scratch = out[:0]
				return out
			}
		}
	}
	return nil
}

// MarkDirty implements TLB: set the member PTE's D bit. Precise, so
// future stores may skip the update micro-op.
func (t *Victim) MarkDirty(va addr.V) bool {
	for _, size := range victimSizes {
		bvpn := BundleVPN(va, size)
		set := t.set(bvpn)
		for i := range set {
			if set[i].valid && set[i].size == size && set[i].bvpn == bvpn {
				slot := BundleSlot(va, size)
				if tr, ok := set[i].b.Get(slot, bvpn, size); ok {
					tr.Dirty = true
					set[i].b.Set(slot, tr)
					return true
				}
			}
		}
	}
	return false
}

// Invalidate implements TLB: clear the member's slot; an emptied bundle
// frees its way.
func (t *Victim) Invalidate(va addr.V, size addr.PageSize) int {
	if size != addr.Page4K && size != addr.Page2M {
		return 0
	}
	bvpn := BundleVPN(va, size)
	set := t.set(bvpn)
	for i := range set {
		if set[i].valid && set[i].size == size && set[i].bvpn == bvpn {
			slot := BundleSlot(va, size)
			if !set[i].b.Present(slot) {
				return 0
			}
			set[i].b.Clear(slot)
			if set[i].b.Empty() {
				set[i].valid = false
			}
			return 1
		}
	}
	return 0
}

// Flush implements TLB.
func (t *Victim) Flush() {
	for i := range t.data {
		t.data[i] = vslot{}
	}
}

// ReachBytes implements ReachReporter: bytes of virtual address space
// the resident members translate.
func (t *Victim) ReachBytes() uint64 {
	var b uint64
	for i := range t.data {
		if t.data[i].valid {
			b += uint64(t.data[i].b.Count()) * t.data[i].size.Bytes()
		}
	}
	return b
}

// OccupancyBySet implements OccupancyReporter: valid bundles per set.
func (t *Victim) OccupancyBySet() []int {
	occ := make([]int, t.sets)
	for si := 0; si < t.sets; si++ {
		for wi := 0; wi < t.ways; wi++ {
			if t.data[si*t.ways+wi].valid {
				occ[si]++
			}
		}
	}
	return occ
}

// Dump returns a fresh slice of every resident member translation
// (diagnostics and tests; the simulation never calls it).
func (t *Victim) Dump() []pagetable.Translation {
	var out []pagetable.Translation
	for i := range t.data {
		s := &t.data[i]
		if s.valid {
			out = s.b.AppendMembers(out, s.bvpn, s.size)
		}
	}
	return out
}
