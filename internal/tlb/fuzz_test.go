package tlb

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// FuzzVictimBundle exercises the victim level's cache-line bundle codec
// with arbitrary inputs: a canonicalized translation must round-trip
// through Set/Get exactly, arbitrary raw bundle words must never panic
// the unpacking paths, and no decoded member may alias another slot's
// VPN — the property that keeps one bundle from ever serving a
// translation for a page it does not cover.
func FuzzVictimBundle(f *testing.F) {
	f.Add(uint64(0), byte(0), byte(0), uint64(0), byte(0), uint64(0), uint64(0))
	f.Add(uint64(0x7f00000000), byte(0), byte(7), uint64(0x40000000), byte(3), uint64(1), uint64(1<<63))
	f.Add(uint64(1)<<35, byte(1), byte(3), uint64(1)<<46, byte(7), ^uint64(0), uint64(0xa5a5a5a5a5a5a5a5))
	f.Add(^uint64(0), byte(1), byte(255), ^uint64(0), byte(255), uint64(0x123456789abcdef0), uint64(0x81))
	f.Fuzz(func(t *testing.T, bvpnRaw uint64, sizeSel, slotRaw byte, paRaw uint64, flags byte, raw1, raw2 uint64) {
		s := addr.Page4K
		if sizeSel&1 == 1 {
			s = addr.Page2M
		}
		bvpn := WrapBundleVPN(bvpnRaw, s)
		slot := int(slotRaw) % BundlePTEs

		// Slot addressing is lossless: the VA computed for (bvpn, slot)
		// decomposes back to exactly that bundle and slot.
		va := SlotVA(bvpn, slot, s)
		if got := BundleVPN(va, s); got != bvpn {
			t.Fatalf("BundleVPN(SlotVA(%#x,%d,%v)) = %#x", bvpn, slot, s, got)
		}
		if got := BundleSlot(va, s); got != slot {
			t.Fatalf("BundleSlot(SlotVA(%#x,%d,%v)) = %d", bvpn, slot, s, got)
		}

		// Round-trip: a canonical translation (page-aligned PA within the
		// physical address space, read permission implied) survives the
		// packed 8-byte encoding bit for bit.
		perm := addr.PermRead
		if flags&1 != 0 {
			perm |= addr.PermWrite
		}
		if flags&2 != 0 {
			perm |= addr.PermUser
		}
		if flags&4 != 0 {
			perm |= addr.PermExec
		}
		want := pagetable.Translation{
			VA:       va,
			PA:       addr.P(paRaw & (uint64(1)<<addr.PABits - 1)).PageBase(s),
			Size:     s,
			Perm:     perm,
			Accessed: flags&8 != 0,
			Dirty:    flags&16 != 0,
		}
		var b VBundle
		b.Set(slot, want)
		if !b.Present(slot) {
			t.Fatalf("slot %d absent after Set", slot)
		}
		got, ok := b.Get(slot, bvpn, s)
		if !ok || got != want {
			t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, want)
		}
		if b.Count() != 1 || b.Empty() {
			t.Fatalf("Count=%d Empty=%v after one Set", b.Count(), b.Empty())
		}
		b.Clear(slot)
		if b.Present(slot) || !b.Empty() {
			t.Fatalf("slot %d survives Clear", slot)
		}

		// Arbitrary raw words: unpacking must not panic, absent slots
		// must stay invisible, and every decoded member must map to its
		// own slot's VA — never another's (no cross-VPN aliasing).
		var rb VBundle
		for i := range rb {
			rb[i] = raw1*uint64(i+1) ^ raw2>>(uint64(i)%17) ^ bvpnRaw<<(uint64(i)%7)
		}
		count := rb.Count()
		present := 0
		for i := 0; i < BundlePTEs; i++ {
			m, ok := rb.Get(i, bvpn, s)
			if !ok {
				continue
			}
			present++
			if wantVA := SlotVA(bvpn, i, s); m.VA != wantVA {
				t.Fatalf("slot %d decoded VA %v, want %v", i, m.VA, wantVA)
			}
			if m.Size != s {
				t.Fatalf("slot %d decoded size %v under %v bundle", i, m.Size, s)
			}
		}
		members := rb.AppendMembers(nil, bvpn, s)
		if len(members) != present {
			t.Fatalf("AppendMembers found %d, slot scan found %d", len(members), present)
		}
		if count < present {
			t.Fatalf("Count=%d below decodable members %d", count, present)
		}
		seen := map[addr.V]bool{}
		for _, m := range members {
			if seen[m.VA] {
				t.Fatalf("two members share VA %v", m.VA)
			}
			seen[m.VA] = true
			if BundleVPN(m.VA, s) != bvpn {
				t.Fatalf("member %v escapes bundle %#x", m.VA, bvpn)
			}
		}
	})
}
