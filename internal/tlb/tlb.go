// Package tlb defines the translation-lookaside-buffer abstraction shared
// by every design in this repository and implements the baselines the
// paper compares MIX TLBs against (Sec 5): conventional single-size
// set-associative TLBs, commercial-style split TLBs, hash-rehash TLBs,
// skew-associative TLBs, page-size predictors, COLT coalescing TLBs, and
// an unrealizable ideal TLB.
//
// The paper's own design, the MIX TLB, lives in internal/core and
// implements the same interface.
package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Request is one translation request presented to a TLB.
type Request struct {
	VA    addr.V
	Write bool
	// PC identifies the requesting instruction; page-size predictors
	// (Sec 5.1) index on it.
	PC uint64
}

// Cost tallies the micro-architectural events of a lookup or fill. The
// energy model prices these; the latency model uses Probes.
type Cost struct {
	// Probes counts sequential probe rounds. A conventional lookup is 1;
	// hash-rehash lookups take one round per page size tried.
	Probes int
	// WaysRead counts tag+data entry reads (energy).
	WaysRead int
	// SetsFilled counts sets written during fill; MIX mirroring writes
	// many (Sec 4.5).
	SetsFilled int
	// EntriesWritten counts entry writes during fill.
	EntriesWritten int
	// PredictorReads and PredictorWrites count page-size predictor
	// accesses.
	PredictorReads  int
	PredictorWrites int
}

// Add accumulates d into c.
func (c *Cost) Add(d Cost) {
	c.Probes += d.Probes
	c.WaysRead += d.WaysRead
	c.SetsFilled += d.SetsFilled
	c.EntriesWritten += d.EntriesWritten
	c.PredictorReads += d.PredictorReads
	c.PredictorWrites += d.PredictorWrites
}

// Result is the outcome of a lookup.
type Result struct {
	Hit bool
	// T is the matching translation (page-aligned), valid when Hit. For
	// coalesced entries it describes the specific member page covering
	// the request.
	T pagetable.Translation
	// Dirty is the TLB entry's dirty bit. When false, a store through
	// this translation must inject a PTE dirty-bit update micro-op
	// (Sec 4.4).
	Dirty bool
	Cost  Cost
}

// TLB is the interface every design implements.
type TLB interface {
	// Name identifies the design for reports.
	Name() string
	// Lookup probes for req.VA.
	Lookup(req Request) Result
	// Fill inserts the walk's translation after a miss. Implementations
	// that coalesce may consume walk.Line, the PTE cache line fetched by
	// the walker. Translations whose accessed bit is unset must not be
	// coalesced opportunistically (x86 rule, Sec 4.4) — the walker sets
	// the bit on the demanded translation itself.
	Fill(req Request, walk pagetable.WalkResult) Cost
	// MarkDirty records that a store succeeded through va's entry, where
	// the design can do so precisely. It reports whether future stores
	// to va may skip the PTE update micro-op.
	MarkDirty(va addr.V) bool
	// Invalidate removes (or trims, for coalesced designs) entries
	// translating va at the given page size, returning how many entries
	// were touched.
	Invalidate(va addr.V, size addr.PageSize) int
	// Flush empties the TLB (context switch without PCIDs).
	Flush()
	// Entries reports total entry capacity, used for area-equivalent
	// comparisons.
	Entries() int
}

// DirtyRefresher is implemented by coalescing TLBs that can refresh an
// entry's dirty state from the PTE cache line the dirty-bit micro-op just
// accessed: the assist that writes one member's D bit reads the whole
// 64-byte line, so the D bits of up to 8 neighbouring members come for
// free. TLBs without the method get MarkDirty instead.
type DirtyRefresher interface {
	RefreshDirty(va addr.V, line []pagetable.Translation) bool
}

// BundleProvider is implemented by coalescing TLBs that can expand the
// entry covering va into its member translations — the information an L1
// refill copies out of a hit L2 entry. Returns nil when va misses.
type BundleProvider interface {
	Members(va addr.V) []pagetable.Translation
}

// Promoter is implemented by TLBs that distinguish a hierarchy promotion
// (an L1 refill served by an L2 hit) from a page-walk fill. A promotion
// fills only the set the missing request probed — designs that mirror on
// walk fills (MIX) must not re-mirror on every promotion — but may
// coalesce from line, the member translations the L2 entry vouches for.
// TLBs without the method get a plain Fill.
type Promoter interface {
	Promote(req Request, t pagetable.Translation, line []pagetable.Translation) Cost
}

// ReplayConsistent is implemented by TLBs whose Lookup is idempotent for
// an immediately-repeated request: probing the same VA again with no
// intervening fill, invalidation, or dirty transition returns the same
// Result at the same Cost and perturbs no state that other operations
// observe (re-stamping the globally-youngest LRU entry is allowed — it
// preserves relative stamp order). The MMU's last-VPN memo only engages
// when the L1 reports true here; page-size predictors must not implement
// it (their confidence counters advance on every lookup).
type ReplayConsistent interface {
	LookupReplayConsistent() bool
}

// EvictionSink receives a translation displaced from a TLB by a capacity
// replacement (never by Invalidate or Flush — those are removals the
// software asked for, not pressure). dirty is the evicted entry's TLB
// dirty bit, which can be sharper than the translation's own Dirty flag.
type EvictionSink func(t pagetable.Translation, dirty bool)

// EvictionNotifier is implemented by TLBs that can report capacity
// evictions to a sink — the feed of an eviction-driven victim level. The
// sink is called synchronously from Fill/Promote, before the replacement
// lands; passing nil detaches it.
type EvictionNotifier interface {
	SetEvictionSink(EvictionSink)
}

// Demoter is implemented by victim levels fed by demotion rather than
// walk fills. absorbed is false when the level refuses the translation
// (the MMU's demotion-drop counter); evicted counts resident entries the
// absorption displaced in turn.
type Demoter interface {
	Demote(t pagetable.Translation, dirty bool) (absorbed bool, evicted int)
}

// CacheResident marks a level whose storage lives in the data-cache
// hierarchy (Victima-style). The MMU charges its probes as cache
// accesses to the storage lines the last Lookup reports here, instead of
// a fixed SRAM hit latency. The slice is scratch, valid until the next
// Lookup.
type CacheResident interface {
	ProbedLines() []addr.P
}

// ReachReporter is implemented by TLBs that can report how many bytes of
// virtual address space their resident entries translate — the "reach"
// the paper's Fig 1 argument is about. Snapshot-only: experiments read
// it after a run; the simulation itself never does.
type ReachReporter interface {
	ReachBytes() uint64
}

// OccupancyReporter is implemented by TLBs that can report how many valid
// entries each set currently holds — the balance lens telemetry uses to
// see whether mirrored superpage fills crowd out 4KB entries (Sec 4.5).
// The slice is a fresh snapshot; callers may retain it. Telemetry-only:
// simulation statistics never read it.
type OccupancyReporter interface {
	OccupancyBySet() []int
}

// entrySlot is the bookkeeping shared by the simple designs: one valid
// translation plus an LRU stamp.
type entrySlot struct {
	valid bool
	t     pagetable.Translation
	dirty bool
	stamp uint64
}

// victimIndex picks the way to replace in a set: an invalid way if any,
// else the least-recently-used.
func victimIndex(set []entrySlot) int {
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].stamp < oldest {
			victim, oldest = i, set[i].stamp
		}
	}
	return victim
}
