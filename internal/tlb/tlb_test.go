package tlb

import (
	"errors"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// walkFor fabricates a walker result for a single translation with the
// accessed bit set (as the real walker guarantees on fill, Sec 4.4).
func walkFor(va addr.V, pa addr.P, size addr.PageSize) pagetable.WalkResult {
	tr := pagetable.Translation{
		VA: va.PageBase(size), PA: pa.PageBase(size), Size: size,
		Perm: addr.PermRW, Accessed: true,
	}
	return pagetable.WalkResult{Found: true, Translation: tr, Line: []pagetable.Translation{tr}}
}

// walkLine fabricates a walk whose PTE cache line carries several
// translations; the first is the demanded one.
func walkLine(trs ...pagetable.Translation) pagetable.WalkResult {
	return pagetable.WalkResult{Found: true, Translation: trs[0], Line: trs}
}

func lookup(t TLB, va addr.V) Result { return t.Lookup(Request{VA: va}) }

func fillAndCheck(t *testing.T, tl TLB, va addr.V, pa addr.P, size addr.PageSize) {
	t.Helper()
	tl.Fill(Request{VA: va}, walkFor(va, pa, size))
	r := lookup(tl, va)
	if !r.Hit {
		t.Fatalf("%s: no hit after fill of %v", tl.Name(), va)
	}
	want := pa.PageBase(size) + addr.P(va.Offset(size))
	if got := r.T.Translate(va); got != want {
		t.Fatalf("%s: Translate(%v) = %v, want %v", tl.Name(), va, got, want)
	}
}

func TestSetAssocBasic(t *testing.T) {
	tl := Must(NewSetAssoc("t", addr.Page4K, 4, 2))
	if tl.Entries() != 8 {
		t.Errorf("Entries = %d", tl.Entries())
	}
	fillAndCheck(t, tl, 0x1234, 0x5000, addr.Page4K)
	// Miss on a different page.
	if lookup(tl, 0x9999000).Hit {
		t.Error("hit on never-filled page")
	}
	// Offsets within the page hit.
	if !lookup(tl, 0x1fff).Hit {
		t.Error("miss within filled page")
	}
	// Lookup cost: one probe, reads all ways.
	r := lookup(tl, 0x1000)
	if r.Cost.Probes != 1 || r.Cost.WaysRead != 2 {
		t.Errorf("cost = %+v", r.Cost)
	}
}

func TestSetAssocIgnoresOtherSizes(t *testing.T) {
	tl := Must(NewSetAssoc("t", addr.Page4K, 4, 2))
	c := tl.Fill(Request{VA: 0x200000}, walkFor(0x200000, 0x400000, addr.Page2M))
	if c.EntriesWritten != 0 {
		t.Error("4KB TLB accepted a 2MB fill")
	}
	if lookup(tl, 0x200000).Hit {
		t.Error("hit after rejected fill")
	}
}

func TestSetAssocLRUWithinSet(t *testing.T) {
	tl := Must(NewSetAssoc("t", addr.Page4K, 1, 2)) // fully associative, 2 entries
	fillAndCheck(t, tl, 0x1000, 0x1000, addr.Page4K)
	fillAndCheck(t, tl, 0x2000, 0x2000, addr.Page4K)
	lookup(tl, 0x1000) // refresh 0x1000; 0x2000 is now LRU
	tl.Fill(Request{VA: 0x3000}, walkFor(0x3000, 0x3000, addr.Page4K))
	if !lookup(tl, 0x1000).Hit {
		t.Error("MRU entry evicted")
	}
	if lookup(tl, 0x2000).Hit {
		t.Error("LRU entry survived")
	}
}

func TestSetAssocConflictMisses(t *testing.T) {
	// Pages 4 sets apart collide; with 2 ways, the third conflicting fill
	// evicts the first.
	tl := Must(NewSetAssoc("t", addr.Page4K, 4, 2))
	for i := 0; i < 3; i++ {
		va := addr.V(i * 4 * addr.Size4K)
		tl.Fill(Request{VA: va}, walkFor(va, addr.P(va), addr.Page4K))
	}
	if lookup(tl, 0).Hit {
		t.Error("conflict victim survived")
	}
	if !lookup(tl, 4*addr.Size4K).Hit || !lookup(tl, 8*addr.Size4K).Hit {
		t.Error("later conflicting entries missing")
	}
}

func TestSetAssocInvalidateAndFlush(t *testing.T) {
	tl := Must(NewSetAssoc("t", addr.Page2M, 2, 2))
	fillAndCheck(t, tl, 0x200000, 0xa00000, addr.Page2M)
	if n := tl.Invalidate(0x200000, addr.Page4K); n != 0 {
		t.Error("invalidate with wrong size removed entries")
	}
	if n := tl.Invalidate(0x3fffff, addr.Page2M); n != 1 {
		t.Errorf("Invalidate = %d", n)
	}
	if lookup(tl, 0x200000).Hit {
		t.Error("hit after invalidate")
	}
	fillAndCheck(t, tl, 0x200000, 0xa00000, addr.Page2M)
	tl.Flush()
	if lookup(tl, 0x200000).Hit {
		t.Error("hit after flush")
	}
}

func TestSetAssocDirty(t *testing.T) {
	tl := Must(NewSetAssoc("t", addr.Page4K, 2, 2))
	tl.Fill(Request{VA: 0x1000}, walkFor(0x1000, 0x1000, addr.Page4K))
	if r := lookup(tl, 0x1000); r.Dirty {
		t.Error("fresh entry dirty")
	}
	if !tl.MarkDirty(0x1000) {
		t.Error("MarkDirty failed")
	}
	if r := lookup(tl, 0x1000); !r.Dirty {
		t.Error("entry not dirty after MarkDirty")
	}
	if tl.MarkDirty(0x999000) {
		t.Error("MarkDirty on absent entry succeeded")
	}
}

func TestSetAssocBadGeometry(t *testing.T) {
	if _, err := NewSetAssoc("bad", addr.Page4K, 3, 4); err == nil {
		t.Fatal("no error for non-power-of-two set count")
	} else if ce := (*ConfigError)(nil); !errors.As(err, &ce) || ce.TLB != "bad" {
		t.Fatalf("error %v is not a ConfigError for %q", err, "bad")
	}
}

func TestSplitRoutesBySize(t *testing.T) {
	s := Must(NewHaswellL1())
	if s.Entries() != 64+32+4 {
		t.Errorf("Entries = %d", s.Entries())
	}
	fillAndCheck(t, s, 0x1000, 0x7000, addr.Page4K)
	fillAndCheck(t, s, 0x200000, 0x800000, addr.Page2M)
	fillAndCheck(t, s, 0x40000000, 0x80000000, addr.Page1G)
	// Parallel probe: 1 round, ways summed.
	r := lookup(s, 0x1000)
	if r.Cost.Probes != 1 {
		t.Errorf("probes = %d", r.Cost.Probes)
	}
	if r.Cost.WaysRead != 4+4+4 {
		t.Errorf("ways read = %d", r.Cost.WaysRead)
	}
}

// TestSplitUnderutilization demonstrates the paper's Figure 1 pathology at
// unit scale: with only 4KB pages, the 2MB/1GB components are dead weight;
// an all-4KB working set larger than the 64-entry 4KB component thrashes
// even though 36 superpage entries sit idle.
func TestSplitUnderutilization(t *testing.T) {
	s := Must(NewHaswellL1())
	const pages = 80 // > 64-entry 4KB component
	for round := 0; round < 2; round++ {
		for i := 0; i < pages; i++ {
			va := addr.V(i * addr.Size4K)
			if !lookup(s, va).Hit {
				s.Fill(Request{VA: va}, walkFor(va, addr.P(va), addr.Page4K))
			}
		}
	}
	// Third pass: misses persist despite total capacity (100) exceeding
	// the working set, because only the 64-entry component participates.
	misses := 0
	for i := 0; i < pages; i++ {
		if !lookup(s, addr.V(i*addr.Size4K)).Hit {
			misses++
		}
	}
	if misses == 0 {
		t.Error("split TLB absorbed a working set larger than its 4KB component")
	}
}

func TestSplitEmptyErrors(t *testing.T) {
	if _, err := NewSplit("bad"); err == nil {
		t.Fatal("no error for a split TLB with no components")
	}
	if _, err := NewSplit("bad", nil); err == nil {
		t.Fatal("no error for a nil component")
	}
}

func TestHashRehashAllSizes(t *testing.T) {
	h := Must(NewHashRehash("h", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G))
	fillAndCheck(t, h, 0x1000, 0x2000, addr.Page4K)
	fillAndCheck(t, h, 0x200000, 0x400000, addr.Page2M)
	fillAndCheck(t, h, 0x40000000, 0xc0000000, addr.Page1G)
	// 4KB hits in the first probe round.
	if r := lookup(h, 0x1000); r.Cost.Probes != 1 {
		t.Errorf("4KB probes = %d", r.Cost.Probes)
	}
	// 1GB pages need all three rounds.
	if r := lookup(h, 0x40000000); r.Cost.Probes != 3 || !r.Hit {
		t.Errorf("1GB lookup: hit=%v probes=%d", r.Hit, r.Cost.Probes)
	}
	// A complete miss pays every round.
	if r := lookup(h, 0x7f0000000000); r.Hit || r.Cost.Probes != 3 {
		t.Errorf("miss: hit=%v probes=%d", r.Hit, r.Cost.Probes)
	}
}

func TestHashRehashSizeSubset(t *testing.T) {
	// Haswell-style: 4KB+2MB only; 1GB fills are refused.
	h := Must(NewHashRehash("h", 16, 4, addr.Page4K, addr.Page2M))
	if c := h.Fill(Request{VA: 0x40000000}, walkFor(0x40000000, 0, addr.Page1G)); c.EntriesWritten != 0 {
		t.Error("accepted 1GB fill")
	}
	if n := h.Invalidate(0x40000000, addr.Page1G); n != 0 {
		t.Error("invalidated unsupported size")
	}
}

func TestHashRehashNoFalseHits(t *testing.T) {
	// A 4KB entry must not satisfy a lookup that would alias at 2MB
	// indexing (size is part of the match).
	h := Must(NewHashRehash("h", 2, 4, addr.Page4K, addr.Page2M))
	h.Fill(Request{VA: 0x200000}, walkFor(0x200000, 0x1000000, addr.Page4K))
	r := lookup(h, 0x201000) // different 4KB page, same 2MB page
	if r.Hit {
		t.Error("false hit across sizes")
	}
}

func TestPredictedRehashLearns(t *testing.T) {
	inner := Must(NewHashRehash("h", 16, 4, addr.Page4K, addr.Page2M, addr.Page1G))
	pred := Must(NewSizePredictor(256))
	p := NewPredictedRehash(inner, pred)
	const pc = 0xdeadbeef
	va := addr.V(0x40000000)
	p.Fill(Request{VA: va, PC: pc}, walkFor(va, 0x80000000, addr.Page1G))
	// First lookup after training probes 1GB first: single round.
	r := p.Lookup(Request{VA: va, PC: pc})
	if !r.Hit || r.Cost.Probes != 1 {
		t.Errorf("trained lookup: hit=%v probes=%d", r.Hit, r.Cost.Probes)
	}
	if r.Cost.PredictorReads != 1 {
		t.Errorf("predictor reads = %d", r.Cost.PredictorReads)
	}
	// A different PC with no history mispredicts (defaults to 4KB) and
	// pays extra rounds.
	r = p.Lookup(Request{VA: va, PC: 0x1111})
	if !r.Hit || r.Cost.Probes != 3 {
		t.Errorf("untrained lookup: hit=%v probes=%d", r.Hit, r.Cost.Probes)
	}
	if pred.Accuracy() <= 0 {
		t.Error("accuracy not tracked")
	}
}

func TestPredictorHysteresis(t *testing.T) {
	p := Must(NewSizePredictor(16))
	const pc = 42
	for i := 0; i < 4; i++ {
		p.Update(pc, addr.Page2M)
	}
	// One contrary sample must not flip a saturated entry.
	p.Update(pc, addr.Page4K)
	if got := p.Predict(pc); got != addr.Page2M {
		t.Errorf("prediction flipped to %v after one contrary sample", got)
	}
	// Sustained contrary samples eventually retrain.
	for i := 0; i < 8; i++ {
		p.Update(pc, addr.Page4K)
	}
	if got := p.Predict(pc); got != addr.Page4K {
		t.Errorf("prediction stuck at %v", got)
	}
}

func TestSkewBasic(t *testing.T) {
	s := Must(NewSkewAllSizes("skew", 16, 2))
	if s.Ways() != 6 || s.Entries() != 96 {
		t.Errorf("ways=%d entries=%d", s.Ways(), s.Entries())
	}
	fillAndCheck(t, s, 0x1000, 0x2000, addr.Page4K)
	fillAndCheck(t, s, 0x200000, 0x400000, addr.Page2M)
	fillAndCheck(t, s, 0x40000000, 0xc0000000, addr.Page1G)
	// Lookup reads every way in one round.
	r := lookup(s, 0x1000)
	if r.Cost.Probes != 1 || r.Cost.WaysRead != 6 {
		t.Errorf("cost = %+v", r.Cost)
	}
}

func TestSkewPredictedLookupEnergy(t *testing.T) {
	s := Must(NewSkewAllSizes("skew", 16, 2))
	fillAndCheck(t, s, 0x200000, 0x400000, addr.Page2M)
	// Correct prediction reads only that size's 2 ways.
	r := s.LookupPredicted(Request{VA: 0x200000}, addr.Page2M)
	if !r.Hit || r.Cost.WaysRead != 2 || r.Cost.Probes != 1 {
		t.Errorf("correct prediction: %+v", r.Cost)
	}
	// Wrong prediction pays a second round over the remaining 4 ways.
	r = s.LookupPredicted(Request{VA: 0x200000}, addr.Page4K)
	if !r.Hit || r.Cost.WaysRead != 6 || r.Cost.Probes != 2 {
		t.Errorf("misprediction: %+v", r.Cost)
	}
}

func TestSkewReplacementRespectsSizePartition(t *testing.T) {
	// Fill many 4KB pages: they must never evict superpage entries (ways
	// are partitioned by size).
	s := Must(NewSkewAllSizes("skew", 4, 1))
	fillAndCheck(t, s, 0x200000, 0x600000, addr.Page2M)
	for i := 0; i < 64; i++ {
		va := addr.V(i * addr.Size4K)
		s.Fill(Request{VA: va}, walkFor(va, addr.P(va), addr.Page4K))
	}
	if !lookup(s, 0x200000).Hit {
		t.Error("2MB entry evicted by 4KB fills")
	}
}

func TestSkewInvalidate(t *testing.T) {
	s := Must(NewSkewAllSizes("skew", 8, 2))
	fillAndCheck(t, s, 0x200000, 0x600000, addr.Page2M)
	if n := s.Invalidate(0x2fffff, addr.Page2M); n != 1 {
		t.Errorf("Invalidate = %d", n)
	}
	if lookup(s, 0x200000).Hit {
		t.Error("hit after invalidate")
	}
}

func TestPredictedSkewEndToEnd(t *testing.T) {
	s := NewPredictedSkew(Must(NewSkewAllSizes("skew", 16, 2)), Must(NewSizePredictor(64)))
	const pc = 7
	va := addr.V(0x200000)
	s.Fill(Request{VA: va, PC: pc}, walkFor(va, 0x800000, addr.Page2M))
	r := s.Lookup(Request{VA: va, PC: pc})
	if !r.Hit || r.Cost.WaysRead != 2 {
		t.Errorf("trained predicted-skew lookup: hit=%v ways=%d", r.Hit, r.Cost.WaysRead)
	}
}

func mk2M(pageNum, physPage uint64, perm addr.Perm, acc bool) pagetable.Translation {
	return pagetable.Translation{
		VA: addr.V(pageNum << addr.Shift2M), PA: addr.P(physPage << addr.Shift2M),
		Size: addr.Page2M, Perm: perm, Accessed: acc,
	}
}

func TestColtCoalescesContiguousRun(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	// Pages 4,5,6,7 VA-contiguous and PA-contiguous: window-aligned run.
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRW, true),
		mk2M(6, 102, addr.PermRW, true),
		mk2M(7, 103, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	for i, tr := range line {
		r := lookup(c, tr.VA+0x1234)
		if !r.Hit {
			t.Fatalf("member %d missed", i)
		}
		if got := r.T.Translate(tr.VA + 0x1234); got != tr.PA+0x1234 {
			t.Errorf("member %d PA = %v, want %v", i, got, tr.PA+0x1234)
		}
	}
}

func TestColtRejectsNonContiguousPhysical(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 200, addr.PermRW, true), // physically discontiguous
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if !lookup(c, line[0].VA).Hit {
		t.Error("demanded translation missing")
	}
	if lookup(c, line[1].VA).Hit {
		t.Error("discontiguous neighbour was coalesced")
	}
}

func TestColtRespectsWindowAlignment(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	// Pages 6,7,8,9 are contiguous but straddle the window boundary at 8.
	line := []pagetable.Translation{
		mk2M(6, 100, addr.PermRW, true),
		mk2M(7, 101, addr.PermRW, true),
		mk2M(8, 102, addr.PermRW, true),
		mk2M(9, 103, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if !lookup(c, line[0].VA).Hit || !lookup(c, line[1].VA).Hit {
		t.Error("same-window members missing")
	}
	if lookup(c, line[2].VA).Hit {
		t.Error("member beyond window boundary was coalesced into this entry")
	}
}

func TestColtPermissionGate(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRead, true), // different permissions
		mk2M(6, 102, addr.PermRW, false),  // accessed bit clear
		mk2M(7, 103, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if lookup(c, line[1].VA).Hit {
		t.Error("coalesced across differing permissions")
	}
	if lookup(c, line[2].VA).Hit {
		t.Error("coalesced a translation with accessed=0")
	}
	if !lookup(c, line[3].VA).Hit {
		t.Error("valid same-perm member not coalesced")
	}
}

func TestColtMergeOnRefill(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	c.Fill(Request{VA: mk2M(4, 100, addr.PermRW, true).VA},
		walkLine(mk2M(4, 100, addr.PermRW, true)))
	// Later the adjacent page is demanded: merged into the same entry.
	c.Fill(Request{VA: mk2M(5, 101, addr.PermRW, true).VA},
		walkLine(mk2M(5, 101, addr.PermRW, true)))
	if !lookup(c, mk2M(4, 0, 0, false).VA).Hit || !lookup(c, mk2M(5, 0, 0, false).VA).Hit {
		t.Error("merge lost a member")
	}
}

func TestColtInvalidateMember(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if n := c.Invalidate(line[0].VA, addr.Page2M); n != 1 {
		t.Errorf("Invalidate = %d", n)
	}
	if lookup(c, line[0].VA).Hit {
		t.Error("invalidated member still hits")
	}
	if !lookup(c, line[1].VA).Hit {
		t.Error("sibling lost on member invalidate")
	}
	// Emptying the entry invalidates it fully.
	c.Invalidate(line[1].VA, addr.Page2M)
	if lookup(c, line[1].VA).Hit {
		t.Error("empty entry still hits")
	}
}

func TestColtDirtyPolicy(t *testing.T) {
	c := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	// Multi-member bundle: MarkDirty must refuse (conservative policy).
	line := []pagetable.Translation{
		mk2M(4, 100, addr.PermRW, true),
		mk2M(5, 101, addr.PermRW, true),
	}
	c.Fill(Request{VA: line[0].VA}, walkLine(line...))
	if c.MarkDirty(line[0].VA) {
		t.Error("multi-member bundle accepted MarkDirty")
	}
	// Singleton bundle: allowed.
	c2 := Must(NewColt("colt", addr.Page2M, 8, 2, 4))
	c2.Fill(Request{VA: line[0].VA}, walkLine(line[0]))
	if !c2.MarkDirty(line[0].VA) {
		t.Error("singleton bundle refused MarkDirty")
	}
	if !lookup(c2, line[0].VA).Dirty {
		t.Error("dirty bit not visible")
	}
}

func TestIdealTLB(t *testing.T) {
	buddy := newTestAllocator()
	pt, err := pagetable.New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x200000, 0xa00000, addr.Page2M, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	ideal := NewIdeal(pt)
	r := lookup(ideal, 0x234567)
	if !r.Hit || r.T.Translate(0x234567) != 0xa34567 {
		t.Errorf("ideal lookup: %+v", r)
	}
	if lookup(ideal, 0x40000000).Hit {
		t.Error("ideal hit on unmapped VA")
	}
	if !r.Dirty {
		t.Error("ideal must never inject dirty micro-ops")
	}
	if ideal.Entries() != 0 {
		t.Error("ideal reports finite capacity")
	}
}

// newTestAllocator is a minimal bump allocator so tlb tests don't depend
// on physmem internals.
type bumpAlloc struct{ next addr.P }

func newTestAllocator() *bumpAlloc { return &bumpAlloc{next: 0x100000} }

func (b *bumpAlloc) AllocPage(s addr.PageSize) (addr.P, bool) {
	base := addr.P(addr.AlignedUp(uint64(b.next), s.Bytes()))
	b.next = base + addr.P(s.Bytes())
	return base, true
}
func (b *bumpAlloc) FreePage(addr.P, addr.PageSize) {}

func TestAreaEquivalenceOfBaselines(t *testing.T) {
	// The comparisons in Sec 7.2 are area-equivalent; the stock configs
	// should be within one another's ballpark (exactly 100 L1 entries for
	// split; skew/rehash L1 stand-ins match in the mmu configs).
	if got := Must(NewHaswellL1()).Entries(); got != 100 {
		t.Errorf("Haswell L1 entries = %d", got)
	}
	if got := Must(NewHaswellL2()).Entries(); got != 544 {
		t.Errorf("Haswell L2 entries = %d", got)
	}
	if got := Must(NewColtSplitL1()).Entries(); got != 100 {
		t.Errorf("COLT L1 entries = %d", got)
	}
	if got := Must(NewColtPlusPlusL1()).Entries(); got != 100 {
		t.Errorf("COLT++ L1 entries = %d", got)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Probes: 1, WaysRead: 2, SetsFilled: 3, EntriesWritten: 4, PredictorReads: 5, PredictorWrites: 6}
	b := a
	a.Add(b)
	want := Cost{Probes: 2, WaysRead: 4, SetsFilled: 6, EntriesWritten: 8, PredictorReads: 10, PredictorWrites: 12}
	if a != want {
		t.Errorf("Add = %+v", a)
	}
}
