package tlb

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/simrand"
)

func tr4k(i uint64) pagetable.Translation {
	return pagetable.Translation{
		VA: addr.V(0x7f0000000000 + i<<12), PA: addr.P(0x40000000 + i<<12),
		Size: addr.Page4K, Perm: addr.PermRW, Accessed: true,
	}
}

func tr2m(i uint64) pagetable.Translation {
	return pagetable.Translation{
		VA: addr.V(0x500000000000 + i<<21), PA: addr.P(0x100000000 + i<<21),
		Size: addr.Page2M, Perm: addr.PermRW, Accessed: true,
	}
}

// TestVictimBasicFlow covers the victim's TLB-shaped surface: demote →
// hit with correct member PA → MarkDirty visibility → Invalidate → miss
// → Flush.
func TestVictimBasicFlow(t *testing.T) {
	v := Must(NewVictim("v", 8, 2))
	for _, tr := range []pagetable.Translation{tr4k(1), tr4k(2), tr2m(3)} {
		if ok, _ := v.Demote(tr, false); !ok {
			t.Fatalf("Demote(%v) refused", tr)
		}
		r := v.Lookup(Request{VA: tr.VA + 0x123})
		if !r.Hit || r.T.Size != tr.Size {
			t.Fatalf("lookup after demote: %+v", r)
		}
		if got, want := r.T.Translate(tr.VA+0x123), tr.PA+0x123; got != want {
			t.Fatalf("PA = %v, want %v", got, want)
		}
		if r.Dirty {
			t.Fatalf("fresh demotion dirty")
		}
		if !v.MarkDirty(tr.VA) {
			t.Fatalf("MarkDirty refused")
		}
		if r := v.Lookup(Request{VA: tr.VA}); !r.Dirty {
			t.Fatalf("MarkDirty not visible")
		}
		if n := v.Invalidate(tr.VA, tr.Size); n != 1 {
			t.Fatalf("Invalidate = %d", n)
		}
		if r := v.Lookup(Request{VA: tr.VA}); r.Hit {
			t.Fatalf("hit after Invalidate")
		}
	}
	if ok, _ := v.Demote(tr4k(9), true); !ok {
		t.Fatal("dirty demote refused")
	}
	if r := v.Lookup(Request{VA: tr4k(9).VA}); !r.Hit || !r.Dirty {
		t.Fatalf("dirty bit lost across demotion: %+v", r)
	}
	v.Flush()
	if got := v.Dump(); len(got) != 0 {
		t.Fatalf("%d entries after Flush", len(got))
	}
}

// TestVictimDemotionConservation is the conservation law of demotion:
// over any sequence of demotions of distinct pages, every accepted entry
// is either still resident or was displaced (and counted); every refused
// entry was refused for cause (1GB or invalid). Nothing vanishes
// silently.
func TestVictimDemotionConservation(t *testing.T) {
	rng := simrand.New(0xbadc0de)
	v := Must(NewVictim("v", 8, 2)) // 128 PTEs: small enough to churn
	var absorbed, displaced, drops int
	for i := uint64(0); i < 2000; i++ {
		var tr pagetable.Translation
		switch rng.Uint64n(20) {
		case 0: // 1GB: must be refused
			tr = pagetable.Translation{VA: addr.V(i << 30), PA: addr.P(i << 30),
				Size: addr.Page1G, Perm: addr.PermRW, Accessed: true}
		case 1: // invalid: must be refused
			tr = pagetable.Translation{}
		case 2, 3, 4:
			tr = tr2m(i)
		default:
			tr = tr4k(i)
		}
		ok, ev := v.Demote(tr, rng.Bool(0.3))
		if tr.Size == addr.Page1G || !tr.Valid() {
			if ok || ev != 0 {
				t.Fatalf("demotion of %v accepted (ok=%v ev=%d)", tr, ok, ev)
			}
			drops++
			continue
		}
		if !ok {
			t.Fatalf("valid %v demotion refused", tr.Size)
		}
		absorbed++
		displaced += ev
	}
	resident := len(v.Dump())
	if absorbed != resident+displaced {
		t.Fatalf("conservation violated: %d absorbed != %d resident + %d displaced",
			absorbed, resident, displaced)
	}
	if drops == 0 || displaced == 0 {
		t.Fatalf("degenerate stream: drops=%d displaced=%d", drops, displaced)
	}
	// ReachBytes agrees with the member dump.
	var want uint64
	for _, tr := range v.Dump() {
		want += tr.Size.Bytes()
	}
	if got := v.ReachBytes(); got != want {
		t.Fatalf("ReachBytes = %d, dump says %d", got, want)
	}
}

// TestEvictionSinkConservation checks the feeder side of demotion: with
// an eviction sink attached, every Fill of a distinct page either stays
// resident or is reported to the sink exactly once — SRAM levels cannot
// drop entries silently. Invalidate and Flush must NOT report (they are
// coherence actions, not capacity evictions).
func TestEvictionSinkConservation(t *testing.T) {
	builders := map[string]func() TLB{
		"setassoc": func() TLB { return Must(NewSetAssoc("t", addr.Page4K, 4, 2)) },
		"rehash":   func() TLB { return Must(NewHashRehash("t", 4, 2, addr.Page4K, addr.Page2M)) },
		"split":    func() TLB { return Must(NewHaswellL1()) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			tl := build()
			en, ok := tl.(EvictionNotifier)
			if !ok {
				t.Fatalf("%T does not notify evictions", tl)
			}
			evicted := 0
			en.SetEvictionSink(func(tr pagetable.Translation, dirty bool) {
				if !tr.Valid() {
					t.Fatalf("sink got invalid translation %+v", tr)
				}
				evicted++
			})
			filled := 0
			for i := uint64(0); i < 500; i++ {
				tr := tr4k(i)
				if c := tl.Fill(Request{VA: tr.VA}, pagetable.WalkResult{Found: true, Translation: tr,
					Line: []pagetable.Translation{tr}}); c.EntriesWritten > 0 {
					filled++
				}
			}
			resident := 0
			for i := uint64(0); i < 500; i++ {
				if r := tl.Lookup(Request{VA: tr4k(i).VA}); r.Hit {
					resident++
				}
			}
			if filled != resident+evicted {
				t.Fatalf("conservation violated: %d filled != %d resident + %d evicted",
					filled, resident, evicted)
			}
			if evicted == 0 {
				t.Fatal("stream never overflowed the TLB; property unexercised")
			}
			// Coherence actions must not masquerade as capacity evictions.
			before := evicted
			tl.Invalidate(tr4k(499).VA, addr.Page4K)
			tl.Flush()
			if evicted != before {
				t.Fatalf("Invalidate/Flush reported %d spurious evictions", evicted-before)
			}
		})
	}
}
