package tlb

import (
	"fmt"

	"mixtlb/internal/addr"
)

// ConfigError is the typed error every TLB constructor returns for invalid
// geometry or policy parameters, replacing the former construction-time
// panics so experiment builders can surface a bad sweep point instead of
// crashing the harness.
type ConfigError struct {
	// TLB names the design being constructed.
	TLB string
	// Detail describes the invalid parameter.
	Detail string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("tlb: invalid %s config: %s", e.TLB, e.Detail)
}

// cfgErr builds a ConfigError with a formatted detail.
func cfgErr(name, format string, args ...interface{}) error {
	return &ConfigError{TLB: name, Detail: fmt.Sprintf(format, args...)}
}

// Must unwraps a constructor result, panicking on error. It is the bridge
// for call sites whose configurations are compile-time constants (tests,
// examples, hardcoded composites) where an error truly is a programming
// bug.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// ECCStats counts TLB-entry corruption events and the
// detect-invalidate-rewalk responses, maintained by the MMU when a chaos
// injector is attached.
type ECCStats struct {
	// ParityDetected counts corrupted entry reads caught by parity/ECC
	// before use.
	ParityDetected uint64
	// SilentCorruptions counts injected corruptions that escaped parity
	// (caught only by the translation oracle, if attached).
	SilentCorruptions uint64
	// Rewalks counts page walks forced by detected corruption (the entry
	// was invalidated and the translation re-fetched).
	Rewalks uint64
	// Scrubbed counts entries (including mirror copies) invalidated while
	// scrubbing corrupt state.
	Scrubbed uint64
}

// Add accumulates d into s.
func (s *ECCStats) Add(d ECCStats) {
	s.ParityDetected += d.ParityDetected
	s.SilentCorruptions += d.SilentCorruptions
	s.Rewalks += d.Rewalks
	s.Scrubbed += d.Scrubbed
}

// Scrubber is implemented by TLBs that distinguish a corruption scrub from
// a normal invalidation — designs with mirrored or coalesced state that
// want to count (and clear) every copy of a corrupt entry. TLBs without
// the method get a plain Invalidate.
type Scrubber interface {
	// ScrubCorrupt removes every cached copy of the entry translating va
	// at the given page size, returning how many entries were touched.
	ScrubCorrupt(va addr.V, size addr.PageSize) int
}
