package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Victim-level bundle format (after Victima, PAPERS.md): the victim
// translation level stores PTEs at cache-block granularity, one 64-byte
// line per bundle. A bundle covers BundlePTEs consecutive same-size pages;
// slot i holds the packed 8-byte PTE (pagetable.EncodePTE format) of page
// number bvpn*BundlePTEs+i, or zero when the slot is empty. Presence is
// the PTE's own P bit, so an all-zero line is an empty bundle — exactly
// the invariant a cache-resident structure needs, since a zero-filled
// line and an absent line must mean the same thing.
const (
	// BundlePTEs is the number of packed PTEs per victim bundle: one
	// cache line of 8-byte entries.
	BundlePTEs = addr.CacheLineSize / 8

	// bundleShift is log2(BundlePTEs): the page-number bits consumed by
	// the in-bundle slot.
	bundleShift = 3
)

// VBundle is the cache-line image of one victim bundle.
type VBundle [BundlePTEs]uint64

// pteLevel maps a page size onto the radix leaf level its PTE encoding
// uses (1 = 4KB, 2 = 2MB, 3 = 1GB).
func pteLevel(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return 1
	case addr.Page2M:
		return 2
	default:
		return 3
	}
}

// BundleVPN returns the number of the bundle covering va at size s.
func BundleVPN(va addr.V, s addr.PageSize) uint64 {
	return va.PageNum(s) >> bundleShift
}

// BundleSlot returns va's slot within its bundle at size s.
func BundleSlot(va addr.V, s addr.PageSize) int {
	return int(va.PageNum(s) & (BundlePTEs - 1))
}

// WrapBundleVPN reduces an arbitrary 64-bit value to a canonical bundle
// number at size s: one whose member pages all fit in the implemented
// virtual address width. SlotVA truncates to that width, so two bundle
// numbers equal modulo the wrap alias to the same pages.
func WrapBundleVPN(bvpn uint64, s addr.PageSize) uint64 {
	return bvpn & (1<<(addr.VABits-s.Shift()-bundleShift) - 1)
}

// SlotVA returns the virtual base address of the given slot of bundle
// bvpn at size s, truncated to the implemented VA width.
func SlotVA(bvpn uint64, slot int, s addr.PageSize) addr.V {
	pn := bvpn<<bundleShift | uint64(slot&(BundlePTEs-1))
	return addr.V(pn<<s.Shift()) & (1<<addr.VABits - 1)
}

// Set packs t into the slot, overwriting any previous occupant. The
// caller is responsible for slot/bvpn consistency with t.VA; Get derives
// the VA back from (bvpn, slot), never from the packed bits.
func (b *VBundle) Set(slot int, t pagetable.Translation) {
	b[slot&(BundlePTEs-1)] = pagetable.EncodePTE(t, pteLevel(t.Size))
}

// Clear empties the slot.
func (b *VBundle) Clear(slot int) { b[slot&(BundlePTEs-1)] = 0 }

// Get decodes the slot of bundle bvpn at size s. ok is false for empty or
// malformed slots (e.g. a PS bit inconsistent with s).
func (b *VBundle) Get(slot int, bvpn uint64, s addr.PageSize) (pagetable.Translation, bool) {
	slot &= BundlePTEs - 1
	return pagetable.DecodePTE(b[slot], SlotVA(bvpn, slot, s), pteLevel(s))
}

// Present reports whether the slot holds a present PTE (P bit set).
func (b *VBundle) Present(slot int) bool {
	return b[slot&(BundlePTEs-1)]&1 != 0
}

// Empty reports whether no slot holds a present PTE.
func (b *VBundle) Empty() bool {
	for _, raw := range b {
		if raw&1 != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of present slots.
func (b *VBundle) Count() int {
	n := 0
	for _, raw := range b {
		if raw&1 != 0 {
			n++
		}
	}
	return n
}

// AppendMembers appends every decodable member of bundle bvpn at size s
// to dst and returns it.
func (b *VBundle) AppendMembers(dst []pagetable.Translation, bvpn uint64, s addr.PageSize) []pagetable.Translation {
	for i := 0; i < BundlePTEs; i++ {
		if t, ok := b.Get(i, bvpn, s); ok {
			dst = append(dst, t)
		}
	}
	return dst
}
