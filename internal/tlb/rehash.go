package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// HashRehash is the multi-indexing baseline of Sec 5.1: a single
// set-associative array holding multiple page sizes, probed once per page
// size until a hit ("hash" with the first size, "rehash" with the next,
// ...). Hits therefore have variable latency and misses pay for every
// round — the drawbacks the paper charges this design with. Intel's
// Haswell/Skylake L2 TLBs use this scheme for 4KB+2MB only.
type HashRehash struct {
	name   string
	sizes  []addr.PageSize // probe order (may be reordered per lookup by a predictor)
	sets   int
	ways   int
	mask   uint64                   // sets-1
	shifts [addr.NumPageSizes]uint  // page-number shift per size
	cached [addr.NumPageSizes]bool  // size supported?
	data   [][]entrySlot
	clock  uint64
	sink   EvictionSink // capacity-eviction feed (nil = detached)
}

// NewHashRehash builds a hash-rehash TLB probing the given sizes in order.
func NewHashRehash(name string, sets, ways int, sizes ...addr.PageSize) (*HashRehash, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) || ways <= 0 {
		return nil, cfgErr(name, "bad geometry %dx%d", sets, ways)
	}
	if len(sizes) == 0 {
		return nil, cfgErr(name, "hash-rehash needs at least one page size")
	}
	for _, s := range sizes {
		if !s.Valid() {
			return nil, cfgErr(name, "invalid page size %d", s)
		}
	}
	t := &HashRehash{name: name, sizes: sizes, sets: sets, ways: ways, mask: uint64(sets - 1)}
	for _, s := range addr.Sizes() {
		t.shifts[s] = s.Shift()
	}
	for _, s := range sizes {
		t.cached[s] = true
	}
	t.data = make([][]entrySlot, sets)
	for i := range t.data {
		t.data[i] = make([]entrySlot, ways)
	}
	return t, nil
}

// Name implements TLB.
func (t *HashRehash) Name() string { return t.name }

// Entries implements TLB.
func (t *HashRehash) Entries() int { return t.sets * t.ways }

// Sizes returns the page sizes this TLB caches, in default probe order.
func (t *HashRehash) Sizes() []addr.PageSize { return t.sizes }

// caches reports whether s is one of the supported sizes.
func (t *HashRehash) caches(s addr.PageSize) bool {
	return s.Valid() && t.cached[s]
}

// LookupReplayConsistent implements ReplayConsistent.
func (t *HashRehash) LookupReplayConsistent() bool { return true }

// SetEvictionSink implements EvictionNotifier.
func (t *HashRehash) SetEvictionSink(sink EvictionSink) { t.sink = sink }

// ReachBytes implements ReachReporter.
func (t *HashRehash) ReachBytes() uint64 {
	var b uint64
	for _, set := range t.data {
		for i := range set {
			if set[i].valid {
				b += set[i].t.Size.Bytes()
			}
		}
	}
	return b
}

// probe checks one set for a translation of one specific size.
func (t *HashRehash) probe(va addr.V, s addr.PageSize) (*entrySlot, bool) {
	shift := t.shifts[s]
	vpn := uint64(va) >> shift
	set := t.data[vpn&t.mask]
	for i := range set {
		if set[i].valid && set[i].t.Size == s && uint64(set[i].t.VA)>>shift == vpn {
			return &set[i], true
		}
	}
	return nil, false
}

// Lookup implements TLB using the default probe order.
func (t *HashRehash) Lookup(req Request) Result {
	return t.LookupOrdered(req, t.sizes)
}

// LookupOrdered probes page sizes in the given order; a predictor
// front-end passes its guess first. Every round costs a probe and a full
// set read.
func (t *HashRehash) LookupOrdered(req Request, order []addr.PageSize) Result {
	t.clock++
	var res Result
	for _, s := range order {
		if !t.caches(s) {
			continue
		}
		res.Cost.Probes++
		res.Cost.WaysRead += t.ways
		if e, ok := t.probe(req.VA, s); ok {
			e.stamp = t.clock
			res.Hit = true
			res.T = e.t
			res.Dirty = e.dirty
			return res
		}
	}
	return res
}

// Fill implements TLB.
func (t *HashRehash) Fill(req Request, walk pagetable.WalkResult) Cost {
	if !walk.Found || !t.caches(walk.Translation.Size) {
		return Cost{}
	}
	t.clock++
	set := t.data[(uint64(req.VA)>>t.shifts[walk.Translation.Size])&t.mask]
	v := victimIndex(set)
	if set[v].valid && t.sink != nil {
		t.sink(set[v].t, set[v].dirty)
	}
	set[v] = entrySlot{valid: true, t: walk.Translation, dirty: walk.Translation.Dirty, stamp: t.clock}
	return Cost{SetsFilled: 1, EntriesWritten: 1}
}

// MarkDirty implements TLB.
func (t *HashRehash) MarkDirty(va addr.V) bool {
	for _, s := range t.sizes {
		if e, ok := t.probe(va, s); ok {
			e.dirty = true
			return true
		}
	}
	return false
}

// Invalidate implements TLB.
func (t *HashRehash) Invalidate(va addr.V, size addr.PageSize) int {
	if !t.caches(size) {
		return 0
	}
	if e, ok := t.probe(va, size); ok {
		e.valid = false
		return 1
	}
	return 0
}

// Flush implements TLB.
func (t *HashRehash) Flush() {
	for _, set := range t.data {
		for i := range set {
			set[i].valid = false
		}
	}
}
