package tlb

import (
	"strings"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Split is the commercial baseline (Sec 1): independent TLBs per page
// size, all probed in parallel on lookup. A hit in one component
// implicitly reveals the page size; a fill is routed by the walked
// translation's size. The well-known pathology is mutual underutilization:
// when the OS allocates only small pages the superpage components idle,
// and vice versa (Fig 1).
//
// Components need not be single-size: Haswell's L2 combines 4KB and 2MB in
// one hash-rehash structure next to a separate 1GB TLB (Sec 7.2), which is
// expressed here as Split{HashRehash(4K,2M), SetAssoc(1G)}.
type Split struct {
	name  string
	parts []TLB
}

// NewSplit combines the given component TLBs. Every page size must be
// served by at least one component for fills to land somewhere.
func NewSplit(name string, parts ...TLB) (*Split, error) {
	if len(parts) == 0 {
		return nil, cfgErr(name, "split with no components")
	}
	for i, p := range parts {
		if p == nil {
			return nil, cfgErr(name, "nil component at index %d", i)
		}
	}
	return &Split{name: name, parts: parts}, nil
}

// newSplitParts propagates the first component constructor error, keeping
// the hardcoded composite builders flat.
func newSplitParts(name string, parts []TLB, errs ...error) (*Split, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return NewSplit(name, parts...)
}

// NewHaswellL1 builds the paper's L1 baseline (Sec 6.1): 4-way 64-entry
// 4KB, 4-way 32-entry 2MB, and 4-entry fully-associative 1GB TLBs.
func NewHaswellL1() (*Split, error) {
	small, e1 := NewSetAssoc("L1-4K", addr.Page4K, 16, 4)
	mid, e2 := NewSetAssoc("L1-2M", addr.Page2M, 8, 4)
	big, e3 := NewSetAssoc("L1-1G", addr.Page1G, 1, 4)
	return newSplitParts("split-L1", []TLB{small, mid, big}, e1, e2, e3)
}

// NewHaswellL2 builds the paper's L2 baseline (Sec 6.1, 7.2): a 512-entry
// hash-rehash TLB for 4KB+2MB pages and a separate 32-entry 1GB TLB.
func NewHaswellL2() (*Split, error) {
	hr, e1 := NewHashRehash("L2-4K2M", 128, 4, addr.Page4K, addr.Page2M)
	big, e2 := NewSetAssoc("L2-1G", addr.Page1G, 8, 4)
	return newSplitParts("split-L2", []TLB{hr, big}, e1, e2)
}

// Name implements TLB.
func (s *Split) Name() string { return s.name }

// Entries implements TLB.
func (s *Split) Entries() int {
	n := 0
	for _, p := range s.parts {
		n += p.Entries()
	}
	return n
}

// Components returns the component TLBs (diagnostics, utilization studies).
func (s *Split) Components() []TLB { return s.parts }

// LookupReplayConsistent implements ReplayConsistent: a split lookup is
// replay-consistent iff every component's is.
func (s *Split) LookupReplayConsistent() bool {
	for _, p := range s.parts {
		rc, ok := p.(ReplayConsistent)
		if !ok || !rc.LookupReplayConsistent() {
			return false
		}
	}
	return true
}

// SetEvictionSink implements EvictionNotifier, attaching the sink to
// every component that can report evictions.
func (s *Split) SetEvictionSink(sink EvictionSink) {
	for _, p := range s.parts {
		if en, ok := p.(EvictionNotifier); ok {
			en.SetEvictionSink(sink)
		}
	}
}

// ReachBytes implements ReachReporter, summing the components that can
// report (others count as zero).
func (s *Split) ReachBytes() uint64 {
	var b uint64
	for _, p := range s.parts {
		if rr, ok := p.(ReachReporter); ok {
			b += rr.ReachBytes()
		}
	}
	return b
}

// Lookup implements TLB: all components probe in parallel, so the latency
// is the slowest component's probe count while energy sums every
// component's reads.
func (s *Split) Lookup(req Request) Result {
	var out Result
	for _, p := range s.parts {
		r := p.Lookup(req)
		out.Cost.WaysRead += r.Cost.WaysRead
		out.Cost.PredictorReads += r.Cost.PredictorReads
		if r.Cost.Probes > out.Cost.Probes {
			out.Cost.Probes = r.Cost.Probes
		}
		if r.Hit && !out.Hit {
			out.Hit = true
			out.T = r.T
			out.Dirty = r.Dirty
		}
	}
	return out
}

// Fill implements TLB, routing by the walked translation's page size.
// Components ignore sizes they do not cache, so offering the fill to each
// until one accepts models the hardware mux exactly.
func (s *Split) Fill(req Request, walk pagetable.WalkResult) Cost {
	for _, p := range s.parts {
		if c := p.Fill(req, walk); c.EntriesWritten > 0 || c.SetsFilled > 0 {
			return c
		}
	}
	return Cost{}
}

// Members implements BundleProvider by delegating to the first component
// holding a coalesced entry for va.
func (s *Split) Members(va addr.V) []pagetable.Translation {
	for _, p := range s.parts {
		if bp, ok := p.(BundleProvider); ok {
			if m := bp.Members(va); len(m) > 0 {
				return m
			}
		}
	}
	return nil
}

// MarkDirty implements TLB.
func (s *Split) MarkDirty(va addr.V) bool {
	for _, p := range s.parts {
		if p.MarkDirty(va) {
			return true
		}
	}
	return false
}

// Invalidate implements TLB.
func (s *Split) Invalidate(va addr.V, size addr.PageSize) int {
	n := 0
	for _, p := range s.parts {
		n += p.Invalidate(va, size)
	}
	return n
}

// Flush implements TLB.
func (s *Split) Flush() {
	for _, p := range s.parts {
		p.Flush()
	}
}

// String summarizes the composition.
func (s *Split) String() string {
	names := make([]string, len(s.parts))
	for i, p := range s.parts {
		names[i] = p.Name()
	}
	return s.name + "{" + strings.Join(names, "+") + "}"
}
