package tlb

import (
	"math/bits"

	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Colt is a coalesced TLB in the style of CoLT (Pham et al., MICRO'12,
// Sec 5.2): a set-associative TLB for a single page size whose entries can
// each hold a run of up to `window` pages that are contiguous in both
// virtual and physical address space and aligned to the window. Coalescing
// candidates come from the PTE cache line the walker fetched, exactly as
// in MIX TLBs.
//
// The paper's COLT comparison coalesces up to 4 contiguous small pages
// (Sec 7.2); COLT++ applies the same machinery to each component of a
// split TLB, including the superpage components.
type Colt struct {
	name   string
	size   addr.PageSize
	sets   int
	ways   int
	window int
	// Precomputed masks and shifts keep the probe loop free of per-call
	// size dispatch and integer division.
	shift      uint   // size.Shift()
	groupShift uint   // shift + log2(window)
	winMask    uint64 // window-1
	setsMask   uint64 // sets-1
	data       [][]coltEntry
	clock      uint64
	members    []pagetable.Translation // scratch reused by Members
}

type coltEntry struct {
	valid  bool
	group  uint64 // pageNum / window
	bitmap uint32 // members present; bit i = page group*window + i
	basePA addr.P // PA of the window's first page position
	perm   addr.Perm
	dirty  bool
	stamp  uint64
}

// NewColt builds a coalescing TLB for pages of size s. window is the
// maximum pages per entry (a power of two, at most 32, and at most the
// walker's 8-PTE line for single-fill coalescing to be exercised fully).
func NewColt(name string, s addr.PageSize, sets, ways, window int) (*Colt, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) || ways <= 0 {
		return nil, cfgErr(name, "bad geometry %dx%d", sets, ways)
	}
	if window <= 0 || window > 32 || !addr.IsPow2(uint64(window)) {
		return nil, cfgErr(name, "bad coalescing window %d", window)
	}
	t := &Colt{
		name: name, size: s, sets: sets, ways: ways, window: window,
		shift:      s.Shift(),
		groupShift: s.Shift() + addr.Log2(uint64(window)),
		winMask:    uint64(window - 1),
		setsMask:   uint64(sets - 1),
		members:    make([]pagetable.Translation, 0, window),
	}
	t.data = make([][]coltEntry, sets)
	for i := range t.data {
		t.data[i] = make([]coltEntry, ways)
	}
	return t, nil
}

// Name implements TLB.
func (t *Colt) Name() string { return t.name }

// Entries implements TLB.
func (t *Colt) Entries() int { return t.sets * t.ways }

// PageSize returns the page size this TLB caches.
func (t *Colt) PageSize() addr.PageSize { return t.size }

// group maps a VA to its coalescing-window number; the set index uses the
// group so every member of a window lands in (and hits in) one set.
func (t *Colt) group(va addr.V) uint64 { return uint64(va) >> t.groupShift }

// slot maps a VA to its member position within its window.
func (t *Colt) slot(va addr.V) int { return int((uint64(va) >> t.shift) & t.winMask) }

func (t *Colt) set(va addr.V) []coltEntry {
	return t.data[t.group(va)&t.setsMask]
}

// LookupReplayConsistent implements ReplayConsistent.
func (t *Colt) LookupReplayConsistent() bool { return true }

// member translation for slot i of entry e.
func (t *Colt) member(e *coltEntry, i int) pagetable.Translation {
	vpn := e.group*uint64(t.window) + uint64(i)
	return pagetable.Translation{
		VA:       addr.V(vpn << t.shift),
		PA:       e.basePA + addr.P(uint64(i)<<t.shift),
		Size:     t.size,
		Perm:     e.perm,
		Accessed: true,
		Dirty:    e.dirty,
	}
}

// Lookup implements TLB.
func (t *Colt) Lookup(req Request) Result {
	t.clock++
	res := Result{Cost: Cost{Probes: 1, WaysRead: t.ways}}
	set := t.set(req.VA)
	g := t.group(req.VA)
	slot := t.slot(req.VA)
	for i := range set {
		e := &set[i]
		if e.valid && e.group == g && e.bitmap&(1<<slot) != 0 {
			e.stamp = t.clock
			res.Hit = true
			res.T = t.member(e, slot)
			res.Dirty = e.dirty
			return res
		}
	}
	return res
}

// Fill implements TLB: scan the walked PTE line for window members that
// are virtually and physically contiguous with the demanded translation,
// share its permissions, and have their accessed bit set; coalesce them
// into one entry, merging with an existing entry for the window if
// compatible.
func (t *Colt) Fill(req Request, walk pagetable.WalkResult) Cost {
	if !walk.Found || walk.Translation.Size != t.size {
		return Cost{}
	}
	t.clock++
	tr := walk.Translation
	g := t.group(tr.VA)
	slot := t.slot(tr.VA)
	// The window base PA implied by the demanded translation.
	basePA := tr.PA - addr.P(uint64(slot)<<t.shift)
	bitmap := uint32(1) << slot
	dirtyAll := tr.Dirty
	for _, n := range walk.Line {
		if n.Size != t.size || n.VA == tr.VA || !n.Accessed || n.Perm != tr.Perm {
			continue
		}
		if t.group(n.VA) != g {
			continue // outside the aligned window
		}
		i := t.slot(n.VA)
		if n.PA != basePA+addr.P(uint64(i)<<t.shift) {
			continue // not physically contiguous with the run
		}
		bitmap |= 1 << i
		dirtyAll = dirtyAll && n.Dirty
	}
	set := t.set(tr.VA)
	// Merge with an existing compatible entry for the same window.
	for i := range set {
		e := &set[i]
		if e.valid && e.group == g && e.basePA == basePA && e.perm == tr.Perm {
			e.bitmap |= bitmap
			e.dirty = e.dirty && dirtyAll
			e.stamp = t.clock
			return Cost{SetsFilled: 1, EntriesWritten: 1}
		}
	}
	v := victimIndex2(set)
	set[v] = coltEntry{
		valid: true, group: g, bitmap: bitmap, basePA: basePA,
		perm: tr.Perm, dirty: dirtyAll, stamp: t.clock,
	}
	return Cost{SetsFilled: 1, EntriesWritten: 1}
}

func victimIndex2(set []coltEntry) int {
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].stamp < oldest {
			victim, oldest = i, set[i].stamp
		}
	}
	return victim
}

// MarkDirty implements TLB: the entry-level dirty bit may only be set when
// the bundle has a single member (the conservative policy of Sec 4.4 —
// multi-member bundles keep dirty=false so every member's first store
// reaches the page table).
func (t *Colt) MarkDirty(va addr.V) bool {
	set := t.set(va)
	g := t.group(va)
	slot := t.slot(va)
	for i := range set {
		e := &set[i]
		if e.valid && e.group == g && e.bitmap&(1<<slot) != 0 {
			if bits.OnesCount32(e.bitmap) == 1 {
				e.dirty = true
				return true
			}
			return false
		}
	}
	return false
}

// Members implements BundleProvider: expand the entry covering va into
// its member translations.
func (t *Colt) Members(va addr.V) []pagetable.Translation {
	set := t.set(va)
	g := t.group(va)
	slot := t.slot(va)
	for i := range set {
		e := &set[i]
		if !e.valid || e.group != g || e.bitmap&(1<<slot) == 0 {
			continue
		}
		// Reuse the scratch slice: callers consume the members before the
		// next Lookup/Fill on this TLB, so one buffer suffices.
		out := t.members[:0]
		for s := 0; s < t.window; s++ {
			if e.bitmap&(1<<s) != 0 {
				out = append(out, t.member(e, s))
			}
		}
		t.members = out[:0]
		return out
	}
	return nil
}

// RefreshDirty implements DirtyRefresher: COLT windows fit inside one PTE
// cache line, so the dirty micro-op's assist sees every member's D bit;
// when all present members are dirty the entry's bit is set and further
// stores skip the micro-op.
func (t *Colt) RefreshDirty(va addr.V, line []pagetable.Translation) bool {
	set := t.set(va)
	g := t.group(va)
	slot := t.slot(va)
	for i := range set {
		e := &set[i]
		if !e.valid || e.group != g || e.bitmap&(1<<slot) == 0 {
			continue
		}
		base := g * uint64(t.window)
		for s := 0; s < t.window; s++ {
			if e.bitmap&(1<<s) == 0 {
				continue
			}
			// Scan the line for this member's PTE directly (the line is at
			// most 8 entries; no map needed on this hot path).
			want := base + uint64(s)
			dirty, found := false, false
			for _, n := range line {
				if n.Size == t.size && uint64(n.VA)>>t.shift == want {
					dirty, found = n.Dirty, true
					break
				}
			}
			if !found || !dirty {
				return false
			}
		}
		e.dirty = true
		return true
	}
	return false
}

// Invalidate implements TLB: clear the member's bit, dropping the entry
// when it empties — neighbouring members stay cached.
func (t *Colt) Invalidate(va addr.V, size addr.PageSize) int {
	if size != t.size {
		return 0
	}
	set := t.set(va)
	g := t.group(va)
	slot := t.slot(va)
	n := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.group == g && e.bitmap&(1<<slot) != 0 {
			e.bitmap &^= 1 << slot
			if e.bitmap == 0 {
				e.valid = false
			}
			n++
		}
	}
	return n
}

// Flush implements TLB.
func (t *Colt) Flush() {
	for _, set := range t.data {
		for i := range set {
			set[i].valid = false
		}
	}
}

// NewColtSplitL1 builds the COLT baseline of Fig 18: the Haswell L1
// geometry with the 4KB component coalescing up to 4 small pages.
func NewColtSplitL1() (*Split, error) {
	small, e1 := NewColt("L1-4K-colt", addr.Page4K, 16, 4, 4)
	mid, e2 := NewSetAssoc("L1-2M", addr.Page2M, 8, 4)
	big, e3 := NewSetAssoc("L1-1G", addr.Page1G, 1, 4)
	return newSplitParts("colt-L1", []TLB{small, mid, big}, e1, e2, e3)
}

// NewColtPlusPlusL1 builds COLT++ (Fig 18): every split component
// coalesces runs of its own page size.
func NewColtPlusPlusL1() (*Split, error) {
	small, e1 := NewColt("L1-4K-colt", addr.Page4K, 16, 4, 4)
	mid, e2 := NewColt("L1-2M-colt", addr.Page2M, 8, 4, 4)
	big, e3 := NewColt("L1-1G-colt", addr.Page1G, 1, 4, 4)
	return newSplitParts("colt++-L1", []TLB{small, mid, big}, e1, e2, e3)
}
