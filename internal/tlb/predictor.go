package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// SizePredictor guesses a translation's page size before lookup, the
// enhancement of Papadopoulou et al. (HPCA'14) the paper evaluates as the
// best multi-indexing variant (Sec 5.1). It is a PC-indexed table of
// (size, 2-bit confidence) pairs: superpage usage correlates strongly with
// the instruction touching the data structure.
type SizePredictor struct {
	size []addr.PageSize
	conf []uint8
	mask uint64

	lookups uint64
	correct uint64
}

// NewSizePredictor builds a predictor with the given number of entries
// (power of two).
func NewSizePredictor(entries int) (*SizePredictor, error) {
	if entries <= 0 || !addr.IsPow2(uint64(entries)) {
		return nil, cfgErr("size-predictor", "entries must be a positive power of two, got %d", entries)
	}
	return &SizePredictor{
		size: make([]addr.PageSize, entries),
		conf: make([]uint8, entries),
		mask: uint64(entries - 1),
	}, nil
}

func (p *SizePredictor) idx(pc uint64) uint64 {
	h := pc * 0x9e3779b97f4a7c15
	return (h >> 32) & p.mask
}

// Predict returns the guessed page size for the instruction at pc.
func (p *SizePredictor) Predict(pc uint64) addr.PageSize {
	p.lookups++
	return p.size[p.idx(pc)]
}

// Update trains the predictor with the actual size after the translation
// resolves, using 2-bit hysteresis.
func (p *SizePredictor) Update(pc uint64, actual addr.PageSize) {
	i := p.idx(pc)
	if p.size[i] == actual {
		p.correct++
		if p.conf[i] < 3 {
			p.conf[i]++
		}
		return
	}
	if p.conf[i] > 0 {
		p.conf[i]--
		return
	}
	p.size[i] = actual
}

// Accuracy returns the fraction of predictions later confirmed correct.
func (p *SizePredictor) Accuracy() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.lookups)
}

// PredictedRehash is a hash-rehash TLB fronted by a size predictor: the
// predicted size is probed first, cutting the expected probe count when
// prediction is accurate but adding predictor energy to every lookup and
// extra rounds on mispredictions.
type PredictedRehash struct {
	inner *HashRehash
	pred  *SizePredictor
	// orders[g] is the probe order with guess g first, precomputed so
	// every lookup reuses it instead of rebuilding a slice.
	orders [addr.NumPageSizes][]addr.PageSize
}

// NewPredictedRehash wraps inner with predictor pred.
func NewPredictedRehash(inner *HashRehash, pred *SizePredictor) *PredictedRehash {
	t := &PredictedRehash{inner: inner, pred: pred}
	for _, g := range addr.Sizes() {
		order := make([]addr.PageSize, 0, len(inner.sizes)+1)
		order = append(order, g)
		for _, s := range inner.sizes {
			if s != g {
				order = append(order, s)
			}
		}
		t.orders[g] = order
	}
	return t
}

// Name implements TLB.
func (t *PredictedRehash) Name() string { return t.inner.Name() + "+pred" }

// Entries implements TLB.
func (t *PredictedRehash) Entries() int { return t.inner.Entries() }

// Lookup implements TLB: probe the predicted size first, then the rest.
func (t *PredictedRehash) Lookup(req Request) Result {
	guess := t.pred.Predict(req.PC)
	res := t.inner.LookupOrdered(req, t.orders[guess])
	res.Cost.PredictorReads = 1
	if res.Hit {
		t.pred.Update(req.PC, res.T.Size)
		res.Cost.PredictorWrites = 1
	}
	return res
}

// Fill implements TLB and trains the predictor with the walked size.
func (t *PredictedRehash) Fill(req Request, walk pagetable.WalkResult) Cost {
	c := t.inner.Fill(req, walk)
	if walk.Found {
		t.pred.Update(req.PC, walk.Translation.Size)
		c.PredictorWrites++
	}
	return c
}

// MarkDirty implements TLB.
func (t *PredictedRehash) MarkDirty(va addr.V) bool { return t.inner.MarkDirty(va) }

// Invalidate implements TLB.
func (t *PredictedRehash) Invalidate(va addr.V, size addr.PageSize) int {
	return t.inner.Invalidate(va, size)
}

// Flush implements TLB.
func (t *PredictedRehash) Flush() { t.inner.Flush() }

// PredictedSkew is a skew TLB fronted by a size predictor: only the
// predicted size's ways are read in the first round, saving the lookup
// energy that plagues plain skew designs, at the cost of a second round
// (reading the remaining ways) on mispredictions.
type PredictedSkew struct {
	inner *Skew
	pred  *SizePredictor
}

// NewPredictedSkew wraps inner with predictor pred.
func NewPredictedSkew(inner *Skew, pred *SizePredictor) *PredictedSkew {
	return &PredictedSkew{inner: inner, pred: pred}
}

// Name implements TLB.
func (t *PredictedSkew) Name() string { return t.inner.Name() + "+pred" }

// Entries implements TLB.
func (t *PredictedSkew) Entries() int { return t.inner.Entries() }

// Lookup implements TLB.
func (t *PredictedSkew) Lookup(req Request) Result {
	guess := t.pred.Predict(req.PC)
	res := t.inner.LookupPredicted(req, guess)
	res.Cost.PredictorReads = 1
	if res.Hit {
		t.pred.Update(req.PC, res.T.Size)
		res.Cost.PredictorWrites = 1
	}
	return res
}

// Fill implements TLB.
func (t *PredictedSkew) Fill(req Request, walk pagetable.WalkResult) Cost {
	c := t.inner.Fill(req, walk)
	if walk.Found {
		t.pred.Update(req.PC, walk.Translation.Size)
		c.PredictorWrites++
	}
	return c
}

// MarkDirty implements TLB.
func (t *PredictedSkew) MarkDirty(va addr.V) bool { return t.inner.MarkDirty(va) }

// Invalidate implements TLB.
func (t *PredictedSkew) Invalidate(va addr.V, size addr.PageSize) int {
	return t.inner.Invalidate(va, size)
}

// Flush implements TLB.
func (t *PredictedSkew) Flush() { t.inner.Flush() }
