package tlb

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// Ideal is the unrealizable yardstick of Figures 1 and 15: a TLB that
// never misses on any mapped translation, regardless of page size or
// distribution. It answers straight from the page table with unit lookup
// cost and no fill, walk, or mirroring overheads.
type Ideal struct {
	pt *pagetable.PageTable
}

// NewIdeal builds an ideal TLB backed by the given page table.
func NewIdeal(pt *pagetable.PageTable) *Ideal { return &Ideal{pt: pt} }

// Name implements TLB.
func (t *Ideal) Name() string { return "ideal" }

// Entries implements TLB. An ideal TLB has unbounded capacity; it reports
// 0 to opt out of area comparisons.
func (t *Ideal) Entries() int { return 0 }

// LookupReplayConsistent implements ReplayConsistent: a lookup is a pure
// page-table read, and mapped leaves only change through MMU-visible
// operations (walks, invalidations) between accesses.
func (t *Ideal) LookupReplayConsistent() bool { return true }

// Lookup implements TLB: every mapped VA hits. Unmapped VAs still miss so
// demand paging proceeds normally.
func (t *Ideal) Lookup(req Request) Result {
	res := Result{Cost: Cost{Probes: 1, WaysRead: 1}}
	tr, ok := t.pt.Lookup(req.VA)
	if !ok {
		return res
	}
	res.Hit = true
	res.T = tr
	res.Dirty = true // never inject dirty micro-ops: zero overhead by construction
	return res
}

// Fill implements TLB (no-op: the next lookup hits by construction).
func (t *Ideal) Fill(Request, pagetable.WalkResult) Cost { return Cost{} }

// MarkDirty implements TLB.
func (t *Ideal) MarkDirty(addr.V) bool { return true }

// Invalidate implements TLB (the backing page table is authoritative).
func (t *Ideal) Invalidate(addr.V, addr.PageSize) int { return 0 }

// Flush implements TLB (no state).
func (t *Ideal) Flush() {}
