package telemetry

// Collector scopes a Registry and a Tracer with a fixed label set (e.g.
// exp="fig12", cell="mix/4way") and a trace thread id. Simulation layers
// take a *Collector at attach time, resolve their metric handles once,
// and then touch only those handles on the hot path. A nil *Collector is
// the disabled state: every method no-ops and every handle it returns is
// nil (which also no-ops), so instrumentation needs no enablement flag
// beyond the attach call itself.
type Collector struct {
	reg    *Registry
	tracer *Tracer
	labels []string
	tid    int
}

// NewCollector roots a collector on a registry and tracer (either may be
// nil to disable that half).
func NewCollector(reg *Registry, tracer *Tracer) *Collector {
	if reg == nil && tracer == nil {
		return nil
	}
	return &Collector{reg: reg, tracer: tracer}
}

// With returns a child collector whose metrics carry the additional label
// pairs. The parent is unchanged.
func (c *Collector) With(labels ...string) *Collector {
	if c == nil {
		return nil
	}
	child := *c
	child.labels = append(append([]string(nil), c.labels...), labels...)
	return &child
}

// WithTID returns a child collector whose trace events carry tid (worker
// identity in the timeline view; never used in metrics).
func (c *Collector) WithTID(tid int) *Collector {
	if c == nil {
		return nil
	}
	child := *c
	child.tid = tid
	return &child
}

// Registry exposes the underlying registry (nil when disabled); exporters
// use it, instrumentation should not.
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Tracer exposes the underlying tracer (nil when disabled).
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Counter resolves the counter series for family under this collector's
// labels plus any extra pairs.
func (c *Collector) Counter(family string, extra ...string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.Counter(family, c.join(extra)...)
}

// Gauge resolves the gauge series for family.
func (c *Collector) Gauge(family string, extra ...string) *Gauge {
	if c == nil {
		return nil
	}
	return c.reg.Gauge(family, c.join(extra)...)
}

// Histogram resolves the histogram series for family with the given
// bucket bounds.
func (c *Collector) Histogram(family string, bounds []uint64, extra ...string) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.Histogram(family, bounds, c.join(extra)...)
}

// join concatenates scope labels with call-site extras.
func (c *Collector) join(extra []string) []string {
	if len(extra) == 0 {
		return c.labels
	}
	return append(append([]string(nil), c.labels...), extra...)
}

// Span opens a trace span under this collector's thread id.
func (c *Collector) Span(cat, name string) Span {
	if c == nil {
		return Span{}
	}
	return c.tracer.Span(cat, name, c.tid)
}

// Instant records a point-in-time trace event.
func (c *Collector) Instant(cat, name string, simTime uint64, args ...string) {
	if c == nil {
		return
	}
	c.tracer.Instant(cat, name, c.tid, simTime, args...)
}

// Instrumentable is implemented by simulation components that accept a
// telemetry collector. Attaching nil detaches (restores the zero-cost
// disabled path).
type Instrumentable interface {
	AttachTelemetry(*Collector)
}
