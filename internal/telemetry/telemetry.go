// Package telemetry is the simulator's observability layer: a
// hierarchical, deterministic metrics registry (counters, gauges,
// fixed-bucket histograms keyed by stable names and label sets) plus a
// low-overhead event tracer (spans and instant events carrying wall-time
// and simulated-time stamps). Exporters render the registry as a
// Prometheus text dump and the tracer as a Chrome trace_event JSON
// timeline or a JSONL event stream; Serve exposes live pprof/expvar/
// metrics snapshots over HTTP during long runs.
//
// Two contracts shape the whole package:
//
//   - Nil-sink fast path. Every handle type (*Counter, *Gauge,
//     *Histogram, *Collector, Tracer-backed Span) is safe on a nil
//     receiver, so an instrumentation site compiles to a single
//     predictable nil-check branch when telemetry is disabled — the
//     default. Hot paths resolve their metric handles once at attach
//     time; the steady-state simulation loop allocates nothing whether
//     telemetry is on or off.
//
//   - Determinism. Registry contents derive only from simulation events
//     and stable names: counter/histogram updates are commutative integer
//     adds and the exporter emits families and series in sorted order, so
//     the same seeds produce byte-identical metric dumps at any worker
//     count. Wall-clock time never enters the registry — it lives only in
//     trace events, which are explicitly a wall-time artifact of one run.
//
// Simulation statistics (the tables experiments print) must never read
// telemetry state; the registry is a one-way sink.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// safe on a nil receiver and for concurrent use.
type Counter struct {
	v uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.v, d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.v, 1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.v)
}

// Gauge is a settable signed metric (an instantaneous level: bytes
// mapped, free blocks of an order). Safe on a nil receiver and for
// concurrent use.
type Gauge struct {
	v int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, d)
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Histogram counts observations into fixed buckets chosen at creation:
// bucket i counts observations <= bounds[i]; one extra bucket catches the
// overflow. Fixed bounds keep Observe allocation-free and the exported
// shape stable across runs. Safe on a nil receiver and for concurrent use.
type Histogram struct {
	bounds []uint64 // ascending upper bounds
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    uint64
	count  uint64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v.
func (h *Histogram) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddUint64(&h.counts[i], n)
	atomic.AddUint64(&h.count, n)
	atomic.AddUint64(&h.sum, v*n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.sum)
}

// Registry holds every metric of one run, keyed by family name plus a
// label set. Metric handles are created on first reference and live for
// the registry's lifetime, so instrumentation resolves them once and the
// hot path never touches the registry map. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string // family -> "counter"|"gauge"|"histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]string),
	}
}

// seriesKey renders the canonical "family{k="v",...}" identity of one
// series. Label order is preserved as given: call sites build labels along
// deterministic code paths, so identical runs produce identical keys.
func seriesKey(family string, labels []string) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeName(labels[i]))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sanitizeName maps an arbitrary string onto the Prometheus metric/label
// name alphabet [a-zA-Z0-9_:].
func sanitizeName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)) {
			ok = false
			break
		}
	}
	if ok && s != "" {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0) {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter returns (creating if needed) the counter series for family and
// label pairs. Nil registries return nil handles, which no-op.
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	family = sanitizeName(family)
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.kinds[family] = "counter"
	}
	return c
}

// Gauge returns (creating if needed) the gauge series for family and
// label pairs.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	family = sanitizeName(family)
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.kinds[family] = "gauge"
	}
	return g
}

// Histogram returns (creating if needed) the histogram series for family
// and label pairs. bounds are ascending upper bucket bounds; they are
// fixed by the first creation of the series and shared by later lookups.
func (r *Registry) Histogram(family string, bounds []uint64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	family = sanitizeName(family)
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.hists[key] = h
		r.kinds[family] = "histogram"
	}
	return h
}

// familyOf strips the label set off a series key.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelsOf returns the "{...}" suffix of a series key ("" when unlabeled).
func labelsOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Series are emitted in sorted order with one # TYPE line per
// family, so identical registries render byte-identically regardless of
// the schedule that populated them.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		keys = append(keys, k)
	}
	for k := range r.gauges {
		keys = append(keys, k)
	}
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, key := range keys {
		family := familyOf(key)
		if family != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", family, r.kinds[family])
			lastFamily = family
		}
		switch {
		case r.counters[key] != nil:
			fmt.Fprintf(bw, "%s %d\n", key, r.counters[key].Value())
		case r.gauges[key] != nil:
			fmt.Fprintf(bw, "%s %d\n", key, r.gauges[key].Value())
		default:
			writeHistogram(bw, family, labelsOf(key), r.hists[key])
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeHistogram emits one histogram series as cumulative _bucket lines
// plus _sum and _count, per the Prometheus convention.
func writeHistogram(w io.Writer, family, labels string, h *Histogram) {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, family, le)
		}
		return fmt.Sprintf(`%s_bucket%s,le="%s"}`, family, labels[:len(labels)-1], le)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += atomic.LoadUint64(&h.counts[i])
		fmt.Fprintf(w, "%s %d\n", withLE(strconv.FormatUint(b, 10)), cum)
	}
	cum += atomic.LoadUint64(&h.counts[len(h.bounds)])
	fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count())
}

// PrometheusString renders the registry to a string (tests and the HTTP
// /metrics endpoint).
func (r *Registry) PrometheusString() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// ParsePrometheus validates a Prometheus text dump: every sample line must
// be syntactically well-formed with a parseable value, and every sample's
// family must be declared by a preceding # TYPE line. It returns the
// number of sample lines, so callers can assert non-emptiness.
func ParsePrometheus(rd io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typed[fields[2]] = true
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, value, perr := splitSample(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		if _, ferr := strconv.ParseFloat(value, 64); ferr != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		family := familyOf(name)
		base := family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(family, suf) {
				base = strings.TrimSuffix(family, suf)
				break
			}
		}
		if !typed[family] && !typed[base] {
			return samples, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, family)
		}
		samples++
	}
	if serr := sc.Err(); serr != nil {
		return samples, serr
	}
	return samples, nil
}

// splitSample splits "name{labels} value" (or "name value") into the
// series identity and the value text, validating basic label syntax.
func splitSample(line string) (name, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		name = line[:j+1]
		if !validMetricName(line[:i]) {
			return "", "", fmt.Errorf("bad metric name in %q", line)
		}
		value = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", fmt.Errorf("expected 'name value' in %q", line)
		}
		if !validMetricName(fields[0]) {
			return "", "", fmt.Errorf("bad metric name %q", fields[0])
		}
		name, value = fields[0], fields[1]
	}
	if value == "" {
		return "", "", fmt.Errorf("missing value in %q", line)
	}
	return name, value, nil
}

// validMetricName checks the Prometheus metric-name alphabet.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// quantileFromBuckets estimates a quantile from cumulative bucket counts
// (used by the /metrics summary endpoint; the registry itself only stores
// the exact bucket counts).
func quantileFromBuckets(bounds []uint64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= need {
			if i < len(bounds) {
				return float64(bounds[i])
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
