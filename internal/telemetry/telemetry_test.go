package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety drives every handle through a nil receiver: the disabled
// path must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var c *Collector
	c.Counter("x").Inc()
	c.Counter("x").Add(3)
	c.Gauge("g").Set(7)
	c.Gauge("g").Add(-2)
	c.Histogram("h", []uint64{1, 2}).Observe(5)
	c.Span("cat", "name").End("k", "v")
	c.Instant("cat", "name", 42)
	if c.With("a", "b") != nil || c.WithTID(3) != nil {
		t.Fatal("scoping a nil collector must stay nil")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry export: %v", err)
	}
	var tr *Tracer
	tr.Instant("c", "n", 0, 0)
	tr.Span("c", "n", 0).End()
	if total, dropped := tr.Counts(); total != 0 || dropped != 0 {
		t.Fatal("nil tracer counts must be zero")
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer chrome export: %v", err)
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil tracer jsonl export: %v", err)
	}
	if NewCollector(nil, nil) != nil {
		t.Fatal("NewCollector(nil, nil) must be nil (fully disabled)")
	}
}

// TestRegistryExportDeterminism fills two registries along different
// schedules and asserts byte-identical Prometheus dumps.
func TestRegistryExportDeterminism(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			r.Counter("walks_total", "exp", fmt.Sprintf("e%d", i)).Add(uint64(i) * 10)
			r.Gauge("free_frames", "exp", fmt.Sprintf("e%d", i)).Set(int64(100 - i))
			h := r.Histogram("walk_depth", []uint64{1, 2, 4}, "exp", fmt.Sprintf("e%d", i))
			h.Observe(uint64(i))
			h.ObserveN(3, 2)
		}
		return r.PrometheusString()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if a != b {
		t.Fatalf("export depends on fill order:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if n, err := ParsePrometheus(strings.NewReader(a)); err != nil || n == 0 {
		t.Fatalf("self-parse: n=%d err=%v", n, err)
	}
}

// TestHistogramBuckets verifies bucket assignment and the cumulative
// Prometheus rendering.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", []uint64{1, 4, 16})
	h.Observe(0)  // le=1
	h.Observe(1)  // le=1
	h.Observe(2)  // le=4
	h.Observe(16) // le=16
	h.Observe(99) // +Inf
	if h.Count() != 5 || h.Sum() != 118 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	out := r.PrometheusString()
	for _, want := range []string{
		`depth_bucket{le="1"} 2`,
		`depth_bucket{le="4"} 3`,
		`depth_bucket{le="16"} 4`,
		`depth_bucket{le="+Inf"} 5`,
		`depth_sum 118`,
		`depth_count 5`,
		"# TYPE depth histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestLabeledHistogramRendering checks le composes with existing labels.
func TestLabeledHistogramRendering(t *testing.T) {
	r := NewRegistry()
	r.Histogram("occ", []uint64{2}, "level", "L1").Observe(1)
	out := r.PrometheusString()
	if !strings.Contains(out, `occ_bucket{level="L1",le="2"} 1`) {
		t.Fatalf("labeled bucket rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, `occ_count{level="L1"} 1`) {
		t.Fatalf("labeled count rendering wrong:\n%s", out)
	}
}

// TestParsePrometheusRejects exercises the validator's error paths.
func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no type", "foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad name", "# TYPE foo counter\n1foo 2\n"},
		{"bad type", "# TYPE foo widget\nfoo 1\n"},
		{"unbalanced", "# TYPE foo counter\nfoo}bad{ 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	good := "# TYPE foo counter\nfoo 1\nfoo{a=\"b\"} 2\n\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 3\nh_count 1\n"
	if n, err := ParsePrometheus(strings.NewReader(good)); err != nil || n != 5 {
		t.Fatalf("good dump: n=%d err=%v", n, err)
	}
}

// TestTracerRoundTrip records spans/instants and validates both export
// formats.
func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Span("cell", "fig12/mix", 2)
	sp.SimTime = 12345
	tr.Instant("engine", "steal", 1, 0, "from", "0")
	sp.End("refs", "1000")

	total, dropped := tr.Counts()
	if total != 2 || dropped != 0 {
		t.Fatalf("counts: total=%d dropped=%d", total, dropped)
	}

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(chrome.Bytes())
	if err != nil || n != 2 {
		t.Fatalf("chrome validate: n=%d err=%v\n%s", n, err, chrome.String())
	}
	if !strings.Contains(chrome.String(), `"sim_cycles":12345`) {
		t.Fatalf("span sim time missing:\n%s", chrome.String())
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines, err := ValidateJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil || lines != 3 { // meta + 2 events
		t.Fatalf("jsonl validate: lines=%d err=%v\n%s", lines, err, jsonl.String())
	}
}

// TestTracerDropsAtLimit fills past the buffer bound and checks the
// overflow is counted, not stored.
func TestTracerDropsAtLimit(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", 0, 0)
	}
	total, dropped := tr.Counts()
	if total != 4 || dropped != 6 {
		t.Fatalf("total=%d dropped=%d, want 4/6", total, dropped)
	}
}

// TestCollectorScoping checks label inheritance and tid propagation.
func TestCollectorScoping(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(0)
	root := NewCollector(r, tr)
	cell := root.With("exp", "fig12", "cell", "mix").WithTID(3)
	cell.Counter("hits_total", "level", "L1").Add(5)
	out := r.PrometheusString()
	if !strings.Contains(out, `hits_total{exp="fig12",cell="mix",level="L1"} 5`) {
		t.Fatalf("scoped counter key wrong:\n%s", out)
	}
	cell.Span("cell", "run").End()
	evs := tr.snapshot()
	if len(evs) != 1 || evs[0].TID != 3 {
		t.Fatalf("span tid not propagated: %+v", evs)
	}
	// Parent scope must be unaffected by child labels.
	root.Counter("hits_total", "level", "L1").Add(1)
	if !strings.Contains(r.PrometheusString(), `hits_total{level="L1"} 1`) {
		t.Fatal("parent collector gained child labels")
	}
}

// TestConcurrentFills hammers one registry from many goroutines; totals
// must be exact (atomic adds) under -race.
func TestConcurrentFills(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total")
			h := r.Histogram("v", []uint64{10})
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(uint64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total").Value(); got != workers*per {
		t.Fatalf("counter=%d want %d", got, workers*per)
	}
	if got := r.Histogram("v", []uint64{10}).Count(); got != workers*per {
		t.Fatalf("histogram count=%d want %d", got, workers*per)
	}
}

// TestServe boots the HTTP listener on an ephemeral port and fetches
// /metrics and /trace.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	tr := NewTracer(0)
	tr.Instant("c", "boot", 0, 0)
	addr, shutdown, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "up_total 1") {
		t.Fatal("/metrics missing counter")
	}
	if n, err := ValidateChromeTrace([]byte(get("/trace"))); err != nil || n != 1 {
		t.Fatalf("/trace: n=%d err=%v", n, err)
	}
	if !strings.Contains(get("/debug/vars"), "telemetry_events_total") {
		t.Fatal("/debug/vars missing event totals")
	}
}

// TestSanitizeName pins the name-mangling rules.
func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"good_name":  "good_name",
		"bad-name":   "bad_name",
		"4KB":        "_KB",
		"":           "_",
		"a.b/c":      "a_b_c",
		"colons:ok":  "colons:ok",
		"digits99ok": "digits99ok",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q)=%q want %q", in, got, want)
		}
	}
}
