package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func seedTailTracer() *Tracer {
	tr := NewTracer(0)
	tr.Instant(TailCategory, "slow_translation", 1, 40, "design", "split", "va", "0x1000")
	tr.Instant("engine", "cell_done", 1, 0)
	tr.Instant(TailCategory, "slow_translation", 2, 90, "design", "mix", "va", "0x2000")
	tr.Instant(TailCategory, "slow_translation", 1, 40, "design", "split", "va", "0x3000")
	return tr
}

func TestTailRecordsFilterAndOrder(t *testing.T) {
	recs := seedTailTracer().TailRecords()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (non-tail events must be filtered)", len(recs))
	}
	if recs[0].Cycles != 90 || recs[0].Args["design"] != "mix" {
		t.Fatalf("slowest-first violated: %+v", recs[0])
	}
	// Equal-cycle records keep recording order.
	if recs[1].Args["va"] != "0x1000" || recs[2].Args["va"] != "0x3000" {
		t.Fatalf("tie order violated: %+v", recs[1:])
	}
}

func TestWriteTailJSON(t *testing.T) {
	var b strings.Builder
	if err := seedTailTracer().WriteTailJSON(&b, 2); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count int          `json:"count"`
		Tail  []TailRecord `json:"tail"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON %q: %v", b.String(), err)
	}
	if doc.Count != 3 || len(doc.Tail) != 2 {
		t.Fatalf("count=%d len=%d, want 3 and 2", doc.Count, len(doc.Tail))
	}
}

func TestWriteTailJSONNilAndEmpty(t *testing.T) {
	var nilTracer *Tracer
	var b strings.Builder
	if err := nilTracer.WriteTailJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != `{"count":0,"tail":[]}` {
		t.Fatalf("nil tracer rendered %q", got)
	}
}

func TestServeDebugTail(t *testing.T) {
	tr := seedTailTracer()
	addr, shutdown, err := Serve("127.0.0.1:0", NewRegistry(), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/tail?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Count int          `json:"count"`
		Tail  []TailRecord `json:"tail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 3 || len(doc.Tail) != 1 || doc.Tail[0].Cycles != 90 {
		t.Fatalf("endpoint returned %+v", doc)
	}
}
