package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Serve starts an HTTP listener on addr exposing live observability for a
// long run:
//
//	/metrics        current registry as Prometheus text
//	/trace          current event buffer as Chrome trace_event JSON
//	/debug/tail     slowest recorded translations, slowest-first JSON
//	/debug/vars     expvar (Go runtime memstats + event totals)
//	/debug/pprof/*  live CPU/heap/goroutine profiles
//
// It returns the bound address (useful with ":0") and a shutdown func.
// The server lives on its own mux, so it never disturbs http.DefaultServeMux.
func Serve(addr string, reg *Registry, tracer *Tracer) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/tail", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tracer.WriteTailJSON(w, tailLimit(r))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	publishEventVars(tracer)

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// tailLimit parses /debug/tail's optional ?n= cap (default 100, 0 = all).
func tailLimit(r *http.Request) int {
	const def = 100
	v := r.URL.Query().Get("n")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}

// eventVarsPublished guards the process-global expvar names, which panic
// on re-publication.
var eventVarsPublished = false

// publishEventVars exposes live event totals under expvar.
func publishEventVars(tracer *Tracer) {
	if eventVarsPublished {
		return
	}
	eventVarsPublished = true
	expvar.Publish("telemetry_events_total", expvar.Func(func() any {
		total, _ := tracer.Counts()
		return total
	}))
	expvar.Publish("telemetry_events_dropped", expvar.Func(func() any {
		_, dropped := tracer.Counts()
		return dropped
	}))
}
