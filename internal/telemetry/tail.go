package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// TailCategory is the trace category the experiments layer uses for tail
// flight-recorder events; the /debug/tail endpoints filter on it.
const TailCategory = "tail"

// TailRecord is one slow-translation event in endpoint form: the
// simulated cycle cost plus the emitting site's key/value narration
// (design, va, size, served, trail, ...).
type TailRecord struct {
	Cycles uint64            `json:"cycles"`
	TID    int               `json:"tid"`
	Args   map[string]string `json:"args"`
}

// TailRecords extracts every tail-category event from the trace buffer,
// sorted slowest-first (ties broken by recording order, which is
// deterministic per cell). Nil-safe.
func (t *Tracer) TailRecords() []TailRecord {
	if t == nil {
		return nil
	}
	events := t.snapshot()
	var out []TailRecord
	order := make([]int, 0, len(events))
	for i, e := range events {
		if e.Cat != TailCategory {
			continue
		}
		args := make(map[string]string, len(e.Args)/2)
		for j := 0; j+1 < len(e.Args); j += 2 {
			args[e.Args[j]] = e.Args[j+1]
		}
		out = append(out, TailRecord{Cycles: e.SimTime, TID: e.TID, Args: args})
		order = append(order, i)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Cycles != out[b].Cycles {
			return out[a].Cycles > out[b].Cycles
		}
		return order[a] < order[b]
	})
	return out
}

// WriteTailJSON renders the tail records as a JSON document:
// {"count":N,"tail":[...]} sorted slowest-first. The limit caps the
// rendered list (0 = everything); count always reports the full total.
func (t *Tracer) WriteTailJSON(w io.Writer, limit int) error {
	recs := t.TailRecords()
	total := len(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	if recs == nil {
		recs = []TailRecord{}
	}
	body, err := json.Marshal(recs)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"count":` + strconv.Itoa(total) + `,"tail":`); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
