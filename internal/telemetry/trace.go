package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one trace record: a completed span (Ph 'X') or an instant
// marker (Ph 'i'). Wall-time fields (TS, Dur) are nanoseconds relative to
// the tracer's start so a run renders as a timeline; SimTime carries the
// simulated-cycle stamp when the emitting site has one. Args are
// alternating key/value pairs.
type Event struct {
	Name    string
	Cat     string
	Ph      byte
	TID     int
	TS      int64 // wall ns since tracer start
	Dur     int64 // wall ns (spans only)
	SimTime uint64
	Args    []string
}

// Tracer collects events into a bounded in-memory buffer. When the buffer
// is full new events are counted as dropped rather than grown — tracing
// must never turn a long run into an OOM. All methods are safe on a nil
// receiver and for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	limit   int
	dropped uint64
}

// DefaultTraceLimit bounds the tracer's event buffer. Cell spans and
// instant events are coarse (per cell, not per reference), so even the
// full experiment suite stays far below this.
const DefaultTraceLimit = 1 << 20

// NewTracer returns a tracer that keeps at most limit events
// (DefaultTraceLimit if limit <= 0).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{start: time.Now(), limit: limit}
}

// now returns nanoseconds since the tracer started.
func (t *Tracer) now() int64 { return int64(time.Since(t.start)) }

// add appends one event, counting it as dropped if the buffer is full.
func (t *Tracer) add(e Event) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Instant records a point-in-time event.
func (t *Tracer) Instant(cat, name string, tid int, simTime uint64, args ...string) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: 'i', TID: tid, TS: t.now(), SimTime: simTime, Args: args})
}

// Span is an open interval started by Tracer.Span and closed by End. The
// zero Span (from a nil tracer) is inert. SimTime may be set before End
// to stamp the span with simulated cycles.
type Span struct {
	t       *Tracer
	name    string
	cat     string
	tid     int
	ts      int64
	SimTime uint64
}

// Span opens a duration event; call End on the returned span to record it.
func (t *Tracer) Span(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, ts: t.now()}
}

// End closes the span and records it with optional key/value args.
func (s Span) End(args ...string) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	s.t.add(Event{Name: s.name, Cat: s.cat, Ph: 'X', TID: s.tid, TS: s.ts, Dur: now - s.ts, SimTime: s.SimTime, Args: args})
}

// Counts returns (recorded, dropped) event totals.
func (t *Tracer) Counts() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return uint64(len(t.events)), t.dropped
}

// snapshot copies the current event list.
func (t *Tracer) snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// chromeEvent is the trace_event wire form: timestamps in microseconds,
// one process, thread = worker id.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// argsMap converts alternating key/value pairs to a JSON object, adding
// the simulated-time stamp when present.
func argsMap(e Event) map[string]any {
	if len(e.Args) == 0 && e.SimTime == 0 {
		return nil
	}
	m := make(map[string]any, len(e.Args)/2+1)
	for i := 0; i+1 < len(e.Args); i += 2 {
		m[e.Args[i]] = e.Args[i+1]
	}
	if e.SimTime != 0 {
		m["sim_cycles"] = e.SimTime
	}
	return m
}

// WriteChromeTrace renders all recorded events as a Chrome trace_event
// JSON object ({"traceEvents":[...]}) loadable in chrome://tracing or
// Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	events := t.snapshot()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(e.Ph),
			PID:  1,
			TID:  e.TID,
			TS:   float64(e.TS) / 1e3,
			Args: argsMap(e),
		}
		if e.Ph == 'X' {
			ce.Dur = float64(e.Dur) / 1e3
		}
		if e.Ph == 'i' {
			ce.S = "t"
		}
		out = append(out, ce)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	// Encode wrote a trailing newline after the array; close the object.
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlEvent is the JSONL stream form of one event.
type jsonlEvent struct {
	Name    string         `json:"name"`
	Cat     string         `json:"cat"`
	Ph      string         `json:"ph"`
	TID     int            `json:"tid"`
	WallNS  int64          `json:"wall_ns"`
	DurNS   int64          `json:"dur_ns,omitempty"`
	SimTime uint64         `json:"sim_cycles,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
}

// WriteJSONL renders the event stream as JSON Lines: a meta record first
// (event totals), then one event per line in recorded order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	total, dropped := t.Counts()
	meta := map[string]any{"meta": true, "events_total": total, "events_dropped": dropped}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	if t != nil {
		for _, e := range t.snapshot() {
			je := jsonlEvent{
				Name:    e.Name,
				Cat:     e.Cat,
				Ph:      string(e.Ph),
				TID:     e.TID,
				WallNS:  e.TS,
				SimTime: e.SimTime,
			}
			if e.Ph == 'X' {
				je.DurNS = e.Dur
			}
			if m := argsMap(e); m != nil {
				delete(m, "sim_cycles")
				if len(m) > 0 {
					je.Args = m
				}
			}
			if err := enc.Encode(je); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ValidateChromeTrace checks that data is a well-formed trace_event
// document: a JSON object whose traceEvents member is an array of events
// each carrying a name and a known phase. Returns the event count.
func ValidateChromeTrace(data []byte) (events int, err error) {
	var doc struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   string  `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace JSON: missing traceEvents array")
	}
	for i, e := range doc.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return 0, fmt.Errorf("trace JSON: event %d has no name", i)
		}
		switch e.Ph {
		case "X", "i", "B", "E", "M", "C":
		default:
			return 0, fmt.Errorf("trace JSON: event %d has unknown phase %q", i, e.Ph)
		}
	}
	return len(doc.TraceEvents), nil
}

// ValidateJSONL checks that every line of data is a standalone JSON
// object, returning the line count.
func ValidateJSONL(r io.Reader) (lines int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return lines, fmt.Errorf("jsonl line %d: %w", lines+1, err)
		}
		lines++
	}
	if serr := sc.Err(); serr != nil {
		return lines, serr
	}
	return lines, nil
}
