package energy

import (
	"testing"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/tlb"
)

func statsWith(l1Ways, l2Ways, fills, walks, micro uint64) mmu.Stats {
	var st mmu.Stats
	st.L1Lookup = tlb.Cost{WaysRead: int(l1Ways)}
	st.L2Lookup = tlb.Cost{WaysRead: int(l2Ways)}
	st.L1Fill = tlb.Cost{EntriesWritten: int(fills)}
	st.WalkRefs = walks
	st.DirtyMicroOps = micro
	st.Cycles = 1000
	return st
}

func TestBreakdownCategories(t *testing.T) {
	m := Default()
	st := statsWith(100, 50, 10, 0, 5)
	b := m.Dynamic(st, nil, Config{L1Entries: 64, L2Entries: 512})
	if b.Lookup <= 0 || b.Fill <= 0 || b.Other <= 0 {
		t.Errorf("breakdown has empty categories: %+v", b)
	}
	if b.Walk != 0 {
		t.Errorf("walk energy with nil hierarchy = %v", b.Walk)
	}
	if b.Total() != b.Lookup+b.Walk+b.Fill+b.Other {
		t.Error("Total mismatch")
	}
}

func TestWalkEnergyFromHierarchy(t *testing.T) {
	m := Default()
	h := cachesim.DefaultHierarchy()
	h.Access(0x1000) // one L1D+L2+LLC+DRAM reference
	b := m.Dynamic(mmu.Stats{}, h, Config{})
	want := m.CacheRead[0] + m.CacheRead[1] + m.CacheRead[2] + m.DRAMAccess
	if b.Walk != want {
		t.Errorf("walk energy = %v, want %v", b.Walk, want)
	}
}

func TestSizeScaling(t *testing.T) {
	m := Default()
	small := m.Dynamic(statsWith(100, 0, 0, 0, 0), nil, Config{L1Entries: 64})
	big := m.Dynamic(statsWith(100, 0, 0, 0, 0), nil, Config{L1Entries: 1024})
	if big.Lookup <= small.Lookup {
		t.Errorf("larger structure not pricier: %v vs %v", big.Lookup, small.Lookup)
	}
	// sqrt scaling: 16x entries -> 4x energy.
	if ratio := big.Lookup / small.Lookup; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("scaling ratio = %v, want ~4", ratio)
	}
}

func TestTimestampOverhead(t *testing.T) {
	m := Default()
	plain := m.Dynamic(statsWith(100, 100, 0, 0, 0), nil, Config{L1Entries: 64, L2Entries: 64})
	stamped := m.Dynamic(statsWith(100, 100, 0, 0, 0), nil, Config{L1Entries: 64, L2Entries: 64, Timestamps: true})
	if stamped.Lookup <= plain.Lookup {
		t.Error("timestamp overhead not applied")
	}
}

func TestLeakageTracksCycles(t *testing.T) {
	m := Default()
	short := m.Leakage(mmu.Stats{Cycles: 100})
	long := m.Leakage(mmu.Stats{Cycles: 1000})
	if long <= short {
		t.Error("leakage does not track runtime")
	}
	if m.Total(mmu.Stats{Cycles: 100}, nil, Config{}) != short {
		t.Error("Total without events != leakage")
	}
}

func TestSavingsPercent(t *testing.T) {
	if got := SavingsPercent(200, 100); got != 50 {
		t.Errorf("SavingsPercent = %v", got)
	}
	if got := SavingsPercent(100, 150); got != -50 {
		t.Errorf("negative savings = %v", got)
	}
	if SavingsPercent(0, 10) != 0 {
		t.Error("zero base not handled")
	}
}

func TestMirroringCostVisibleInFill(t *testing.T) {
	// MIX mirroring writes many entries per fill: fill energy must grow
	// linearly with entries written — the Fig 17 "fills are cheap
	// relative to lookups+walks" argument depends on this accounting.
	m := Default()
	one := m.Dynamic(statsWith(0, 0, 1, 0, 0), nil, Config{})
	sixteen := m.Dynamic(statsWith(0, 0, 16, 0, 0), nil, Config{})
	if sixteen.Fill != 16*one.Fill {
		t.Errorf("fill scaling: %v vs %v", sixteen.Fill, one.Fill)
	}
}
