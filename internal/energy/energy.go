// Package energy prices the micro-architectural events the functional
// simulator counts, standing in for the paper's CACTI/RTL models
// (Sec 4.5, 6.2). Absolute joules are not the target — Figures 16-17 are
// *relative* comparisons, and relative ordering comes from event counts —
// so the constants below are CACTI-flavoured magnitudes (pJ) with the
// right ratios: SRAM reads scale with structure size, predictor tables are
// small, cache accesses dwarf TLB reads, and DRAM dwarfs everything.
package energy

import (
	"math"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
)

// Model holds per-event energies in picojoules.
type Model struct {
	// WayRead64 is the cost of reading one TLB entry (tag+data) in a
	// 64-entry structure; larger structures scale by sqrt(capacity).
	WayRead64 float64
	// EntryWrite is the cost of writing one TLB entry (fills, mirrors).
	EntryWrite float64
	// PredictorRead and PredictorWrite price page-size predictor access.
	PredictorRead  float64
	PredictorWrite float64
	// CacheRead prices one lookup per cache level, outermost last.
	CacheRead []float64
	// DRAMAccess prices one memory access.
	DRAMAccess float64
	// TimestampOverhead multiplies lookup energy for designs carrying
	// replacement timestamps (skew-associative, Sec 7.2).
	TimestampOverhead float64
	// LeakagePJPerCycle is whole-MMU leakage per cycle; shorter runtime
	// directly saves leakage (Sec 7.2's "energy efficiency from shorter
	// runtime").
	LeakagePJPerCycle float64
}

// Default returns the reference model.
func Default() Model {
	return Model{
		WayRead64:         0.6,
		EntryWrite:        0.8,
		PredictorRead:     0.3,
		PredictorWrite:    0.3,
		CacheRead:         []float64{8, 20, 80}, // L1D, L2, LLC
		DRAMAccess:        2000,
		TimestampOverhead: 1.15,
		LeakagePJPerCycle: 0.05,
	}
}

// wayRead scales the 64-entry read energy to a structure of n entries.
func (m Model) wayRead(n int) float64 {
	if n <= 0 {
		n = 64
	}
	return m.WayRead64 * math.Sqrt(float64(n)/64)
}

// Breakdown is translation energy by activity, the Fig 17 categories.
type Breakdown struct {
	Lookup float64 // TLB probes (and predictors)
	Walk   float64 // page-table-walk cache/DRAM references
	Fill   float64 // TLB entry writes, including mirrors
	Other  float64 // dirty micro-ops, invalidations
}

// Total sums the categories.
func (b Breakdown) Total() float64 { return b.Lookup + b.Walk + b.Fill + b.Other }

// Config describes the design being priced.
type Config struct {
	L1Entries, L2Entries int
	// Timestamps marks skew-style designs that pay the replacement
	// timestamp overhead on every lookup.
	Timestamps bool
}

// Dynamic prices the dynamic energy of the events in st. Walk references
// are attributed per cache level using the hierarchy's counters, which see
// only walker traffic in this simulator.
func (m Model) Dynamic(st mmu.Stats, h *cachesim.Hierarchy, cfg Config) Breakdown {
	var b Breakdown
	l1Read := m.wayRead(cfg.L1Entries)
	l2Read := m.wayRead(cfg.L2Entries)
	if cfg.Timestamps {
		l1Read *= m.TimestampOverhead
		l2Read *= m.TimestampOverhead
	}
	b.Lookup += float64(st.L1Lookup.WaysRead) * l1Read
	b.Lookup += float64(st.L2Lookup.WaysRead) * l2Read
	b.Lookup += float64(st.L1Lookup.PredictorReads+st.L2Lookup.PredictorReads) * m.PredictorRead
	b.Lookup += float64(st.L1Lookup.PredictorWrites+st.L2Lookup.PredictorWrites) * m.PredictorWrite

	b.Fill += float64(st.L1Fill.EntriesWritten+st.L2Fill.EntriesWritten) * m.EntryWrite
	b.Fill += float64(st.L1Fill.PredictorWrites+st.L2Fill.PredictorWrites) * m.PredictorWrite

	if h != nil {
		for i := 0; i < h.Levels() && i < len(m.CacheRead); i++ {
			_, accesses, _ := h.LevelStats(i)
			b.Walk += float64(accesses) * m.CacheRead[i]
		}
		b.Walk += float64(h.MemAccesses()) * m.DRAMAccess
	}

	// A dirty micro-op is a store to the PTE's cache line; invalidations
	// are CAM-ish sweeps priced as one set read per entry touched.
	microOp := m.CacheRead[0]
	if len(m.CacheRead) > 1 {
		microOp = m.CacheRead[1]
	}
	b.Other += float64(st.DirtyMicroOps) * microOp
	b.Other += float64(st.Invalidations) * (l1Read + l2Read)
	return b
}

// Leakage prices static energy over the run's translation-visible cycles.
func (m Model) Leakage(st mmu.Stats) float64 {
	return float64(st.Cycles) * m.LeakagePJPerCycle
}

// Total returns dynamic + leakage energy, with leakage over the
// translation cycles the MMU observed.
func (m Model) Total(st mmu.Stats, h *cachesim.Hierarchy, cfg Config) float64 {
	return m.Dynamic(st, h, cfg).Total() + m.Leakage(st)
}

// TotalWithRuntime prices dynamic energy plus leakage over an externally
// estimated total runtime (in cycles) — slower designs leak longer, the
// Sec 7.2 effect ("energy efficiency from shorter runtime").
func (m Model) TotalWithRuntime(st mmu.Stats, h *cachesim.Hierarchy, cfg Config, runtimeCycles float64) float64 {
	return m.Dynamic(st, h, cfg).Total() + runtimeCycles*m.LeakagePJPerCycle
}

// SavingsPercent returns how much energy design `test` saves relative to
// `base` (positive = test is better), the Fig 16 y-axis.
func SavingsPercent(base, test float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - test) / base
}
