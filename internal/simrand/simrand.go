// Package simrand supplies the deterministic random-number machinery used
// throughout the simulator: a splitmix64-seeded xoshiro256** generator and
// a Zipf sampler for skewed workload distributions.
//
// Experiments must be bit-for-bit reproducible across runs and platforms,
// so all stochastic components take an explicit *simrand.Source rather than
// sharing global state.
package simrand

import (
	"math"
	"sync"
)

// Source is a deterministic pseudo-random source (xoshiro256**).
// The zero value is not valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via splitmix64, which
// guarantees a well-mixed nonzero state for any seed, including 0.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source as if created by New(seed).
func (s *Source) Reseed(seed uint64) {
	x := seed
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n is zero.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n(0)")
	}
	// Lemire's nearly-divisionless method would be overkill; a simple
	// rejection loop keeps the distribution exactly uniform.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the elements of a slice in place via the swap callback.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Split derives an independent child source, so concurrent components can
// consume randomness without perturbing each other's sequences.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// SplitSeed derives an independent child seed from a base seed and a path
// of labels: FNV-1a over the labels (with a separator between them, so
// ("ab","c") and ("a","bc") differ), pushed through the splitmix64
// finalizer for avalanche, then XORed into the base. The derivation is a
// pure function of its inputs, which is what lets the parallel experiment
// engine hand every grid cell its own seed and still produce bit-identical
// results at any worker count or execution order.
func SplitSeed(seed uint64, labels ...string) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= prime64
		}
		h ^= 0x1f // out-of-band label separator
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return seed ^ h
}

// Zipf samples from a Zipf distribution over [0, n) with exponent theta,
// using the rejection-inversion method of Gries et al. as popularized by
// the YCSB generator. Skewed key popularity is the defining property of
// key-value and graph workloads (memcached, graph500).
type Zipf struct {
	src              *Source
	n                uint64
	theta            float64
	alpha, zetan     float64
	eta, zeta2thetas float64
}

// zipfKey identifies one set of precomputed Zipf constants. The constants
// are a pure function of (n, theta) — no randomness — so sharing them
// across samplers cannot perturb any sequence.
type zipfKey struct {
	n     uint64
	theta float64
}

type zipfConsts struct {
	alpha, zetan, eta, zeta2thetas float64
}

// zipfCache memoizes the O(n) zeta summation per (n, theta). Workloads
// rebuild identical samplers for every grid cell, and at the exactLimit cap
// each construction costs about a million math.Pow calls.
var zipfCache sync.Map // zipfKey -> zipfConsts

// NewZipf returns a Zipf sampler over [0, n). theta must be in (0, 1);
// typical workload skew uses 0.99.
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("simrand: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("simrand: NewZipf theta must be in (0,1)")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	key := zipfKey{n: n, theta: theta}
	if c, ok := zipfCache.Load(key); ok {
		k := c.(zipfConsts)
		z.alpha, z.zetan, z.eta, z.zeta2thetas = k.alpha, k.zetan, k.eta, k.zeta2thetas
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2thetas = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2thetas/z.zetan)
	zipfCache.Store(key, zipfConsts{alpha: z.alpha, zetan: z.zetan, eta: z.eta, zeta2thetas: z.zeta2thetas})
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Direct summation is exact but O(n); cap the exact part and use the
	// Euler-Maclaurin tail approximation for very large n so constructing
	// samplers over multi-billion-element spaces stays cheap.
	const exactLimit = 1 << 20
	sum := 0.0
	limit := n
	if limit > exactLimit {
		limit = exactLimit
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > limit {
		// Integral tail: ∫ x^-theta dx from limit to n.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(limit), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next returns the next sample in [0, n), with 0 the most popular rank.
func (z *Zipf) Next() uint64 {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
