package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a degenerate all-zero stream")
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(9)
	b := New(9)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed did not reproduce New's sequence")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := s.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(0).Uint64n(0)
}

func TestIntnNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(0).Intn(-1)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(17)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit fraction %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("Shuffle changed multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// The child should not replay the parent's stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("child echoed parent on %d/64 draws", same)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(37), 1000, 0.99)
	for i := 0; i < 100000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(41), 10000, 0.99)
	const draws = 200000
	top := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 100 {
			top++
		}
	}
	// With theta=0.99 the top 1% of ranks should absorb well over a third
	// of the draws; uniform would give 1%.
	if frac := float64(top) / draws; frac < 0.35 {
		t.Errorf("top-1%% mass = %v, want skewed (>0.35)", frac)
	}
}

func TestZipfMostPopularIsRankZero(t *testing.T) {
	z := NewZipf(New(43), 1000, 0.9)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	best, bestCount := uint64(0), -1
	for v, c := range counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	if best != 0 {
		t.Errorf("most popular rank = %d, want 0", best)
	}
}

func TestZipfInvalidArgsPanic(t *testing.T) {
	for _, tc := range []struct {
		n     uint64
		theta float64
	}{{0, 0.9}, {10, 0}, {10, 1}, {10, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(New(0), tc.n, tc.theta)
		}()
	}
}

func TestZipfLargeN(t *testing.T) {
	// Exercises the Euler-Maclaurin tail in zeta().
	z := NewZipf(New(47), 1<<33, 0.99)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v >= 1<<33 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}
