// Package gpu models CPU-GPU shared virtual memory address translation
// (Sec 2, 6.3): a GPU of many shader cores, each with private L1 TLBs,
// sharing an L2 TLB, a hardware page-table walker, and the process page
// table with the CPU ("a pointer is a pointer everywhere"). GPU TLBs
// service hundreds of concurrent threads, so per-core reference streams
// are interleaved round-robin, producing the heavy, low-locality TLB
// traffic that makes GPUs so sensitive to TLB design.
package gpu

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

// Config sizes the GPU.
type Config struct {
	// Cores is the number of shader cores (each gets private L1 TLBs).
	Cores int
	// Design selects the TLB organization per core + shared L2.
	Design mmu.Design
}

// DefaultCores matches the scale of the gem5-gpu studies the paper cites.
const DefaultCores = 16

// System is a GPU attached to a process address space.
type System struct {
	cfg     Config
	cores   []*mmu.MMU
	streams []workload.Stream
	as      *osmm.AddressSpace
}

// perCoreL1 builds the paper's GPU L1 TLBs (Sec 6.3): per shader core, a
// 128-entry 4-way set-associative 4KB TLB next to split superpage TLBs
// (32-entry 4-way 2MB, 4-entry fully-associative 1GB).
func perCoreL1(design mmu.Design, coreID int) (tlb.TLB, error) {
	switch design {
	case mmu.DesignSplit:
		small, e1 := tlb.NewSetAssoc("gpu-4K", addr.Page4K, 32, 4)
		mid, e2 := tlb.NewSetAssoc("gpu-2M", addr.Page2M, 8, 4)
		big, e3 := tlb.NewSetAssoc("gpu-1G", addr.Page1G, 1, 4)
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		return tlb.NewSplit(fmt.Sprintf("gpu-split-L1.%d", coreID), small, mid, big)
	case mmu.DesignMix:
		// Area-equivalent: 128+32+4 = 164 entries -> 32 sets x 5 ways.
		return core.New(core.Config{
			Name: fmt.Sprintf("gpu-mix-L1.%d", coreID),
			Sets: 32, Ways: 5, Coalesce: 32, Encoding: core.Bitmap,
		})
	case mmu.DesignRehash:
		inner, e1 := tlb.NewHashRehash(fmt.Sprintf("gpu-rehash-L1.%d", coreID), 32, 5,
			addr.Page4K, addr.Page2M, addr.Page1G)
		pred, e2 := tlb.NewSizePredictor(256)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return tlb.NewPredictedRehash(inner, pred), nil
	case mmu.DesignSkew:
		inner, e1 := tlb.NewSkewAllSizes(fmt.Sprintf("gpu-skew-L1.%d", coreID), 16, 2)
		pred, e2 := tlb.NewSizePredictor(256)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return tlb.NewPredictedSkew(inner, pred), nil
	default:
		return nil, fmt.Errorf("gpu: unsupported design %q", design)
	}
}

// sharedL2 builds the GPU-wide L2 TLB for a design.
func sharedL2(design mmu.Design) (tlb.TLB, error) {
	switch design {
	case mmu.DesignSplit:
		hr, e1 := tlb.NewHashRehash("gpu-L2-4K2M", 128, 4, addr.Page4K, addr.Page2M)
		big, e2 := tlb.NewSetAssoc("gpu-L2-1G", addr.Page1G, 8, 4)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return tlb.NewSplit("gpu-split-L2", hr, big)
	case mmu.DesignMix:
		return core.New(core.Config{
			Name: "gpu-mix-L2", Sets: 64, Ways: 8, Coalesce: 64, Encoding: core.Bitmap,
		})
	case mmu.DesignRehash:
		inner, e1 := tlb.NewHashRehash("gpu-rehash-L2", 128, 4, addr.Page4K, addr.Page2M, addr.Page1G)
		pred, e2 := tlb.NewSizePredictor(256)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return tlb.NewPredictedRehash(inner, pred), nil
	case mmu.DesignSkew:
		inner, e1 := tlb.NewSkewAllSizes("gpu-skew-L2", 64, 2)
		pred, e2 := tlb.NewSizePredictor(256)
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		return tlb.NewPredictedSkew(inner, pred), nil
	default:
		return nil, fmt.Errorf("gpu: unsupported design %q", design)
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// New builds a GPU over the process address space; every core shares the
// L2 TLB, cache hierarchy, and page table, as in gem5-gpu models.
func New(cfg Config, as *osmm.AddressSpace, caches *cachesim.Hierarchy) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = DefaultCores
	}
	s := &System{cfg: cfg, as: as}
	l2, err := sharedL2(cfg.Design)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := perCoreL1(cfg.Design, i)
		if err != nil {
			return nil, err
		}
		m, err := mmu.New(mmu.Config{
			Name:   fmt.Sprintf("%s.core%d", cfg.Design, i),
			Levels: mmu.L(l1, l2),
		}, as.PageTable(), caches, as.HandleFault)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, m)
	}
	return s, nil
}

// AttachStreams gives each core its reference stream. The builder
// receives the core index so workloads can tile their data.
func (s *System) AttachStreams(build func(coreID int) workload.Stream) {
	s.streams = s.streams[:0]
	for i := range s.cores {
		s.streams = append(s.streams, build(i))
	}
}

// Run interleaves n references round-robin across the cores, the
// many-threads-in-flight pattern of a GPU. Faults abort with an error.
func (s *System) Run(n uint64) error {
	if len(s.streams) != len(s.cores) {
		return fmt.Errorf("gpu: %d streams for %d cores", len(s.streams), len(s.cores))
	}
	for i := uint64(0); i < n; i++ {
		c := int(i) % len(s.cores)
		ref := s.streams[c].Next()
		res := s.cores[c].Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC})
		if res.Faulted {
			return fmt.Errorf("gpu: core %d faulted at %v", c, ref.VA)
		}
	}
	return nil
}

// ResetStats zeroes all core counters (for warm-up separation).
func (s *System) ResetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
}

// Stats sums all cores' counters.
func (s *System) Stats() mmu.Stats {
	var total mmu.Stats
	for _, c := range s.cores {
		st := c.Stats()
		total.Accesses += st.Accesses
		total.L1Hits += st.L1Hits
		total.L2Hits += st.L2Hits
		total.Walks += st.Walks
		total.Faults += st.Faults
		total.Cycles += st.Cycles
		total.WalkCycles += st.WalkCycles
		total.WalkRefs += st.WalkRefs
		total.DirtyMicroOps += st.DirtyMicroOps
		total.Invalidations += st.Invalidations
		total.ECC.Add(st.ECC)
		total.PTECorruptions += st.PTECorruptions
		total.OracleMismatches += st.OracleMismatches
		total.OracleRecoveries += st.OracleRecoveries
		total.OracleUnrecovered += st.OracleUnrecovered
		total.L1Lookup.Add(st.L1Lookup)
		total.L2Lookup.Add(st.L2Lookup)
		total.L1Fill.Add(st.L1Fill)
		total.L2Fill.Add(st.L2Fill)
	}
	return total
}

// Cores exposes the per-core MMUs (diagnostics).
func (s *System) Cores() []*mmu.MMU { return s.cores }

// KernelSpec is a Rodinia-style GPU workload: a per-core stream builder
// over a shared data region.
type KernelSpec struct {
	Name string
	// Build returns core coreID's stream over [base, base+footprint).
	Build func(coreID, cores int, base addr.V, footprint uint64, rng *simrand.Source) workload.Stream
}

// Kernels returns the GPU workload suite, mirroring the locality classes
// of the Rodinia applications the paper uses (Sec 6.4).
func Kernels() []KernelSpec {
	tile := func(coreID, cores int, base addr.V, fp uint64) (addr.V, uint64) {
		sz := fp / uint64(cores)
		return base + addr.V(uint64(coreID)*sz), sz
	}
	return []KernelSpec{
		{
			// hotspot: per-tile 2D stencil.
			Name: "hotspot",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				return workload.NewStencil(b, sz, 1<<20, kpc("hotspot", id))
			},
		},
		{
			// bfs: irregular power-law neighbour reads over the whole
			// graph; cores share the structure.
			Name: "bfs",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewZipf(base, fp/2, rng.Split(), 0.99, 0.05, kpc("bfs", id)), Weight: 0.6},
					workload.Weighted{Stream: workload.NewSequential(base+addr.V(fp/2), fp/2, 64, false, kpc("bfs-edges", id)), Weight: 0.4},
				)
			},
		},
		{
			// backprop: layered sweeps per tile, reading weights and
			// writing deltas in roughly equal measure.
			Name: "backprop",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewSequential(b, sz/2, 32, false, kpc("backprop-r", id)), Weight: 0.55},
					workload.Weighted{Stream: workload.NewSequential(b+addr.V(sz/2), sz/2, 32, true, kpc("backprop-w", id)), Weight: 0.45},
				)
			},
		},
		{
			// kmeans: streaming points against hot shared centroids.
			Name: "kmeans",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp-fp/16)
				centroids := base + addr.V(fp-fp/16)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewSequential(b, sz, 64, false, kpc("kmeans", id)), Weight: 0.7},
					workload.Weighted{Stream: workload.NewUniform(centroids, fp/16, rng.Split(), 0.3, kpc("kmeans-c", id)), Weight: 0.3},
				)
			},
		},
		{
			// gaussian: row elimination — long strided sweeps, mostly
			// reads of the pivot row with writes to the reduced rows.
			Name: "gaussian",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewSequential(b, sz, 4096, false, kpc("gaussian-r", id)), Weight: 0.7},
					workload.Weighted{Stream: workload.NewSequential(b, sz, 8192, true, kpc("gaussian-w", id)), Weight: 0.3},
				)
			},
		},
		{
			// pathfinder: wavefront rows with neighbour reads.
			Name: "pathfinder",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				return workload.NewStencil(b, sz, 256<<10, kpc("pathfinder", id))
			},
		},
		{
			// srad: image-diffusion stencil with coefficient reads from a
			// shared plane.
			Name: "srad",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp-fp/8)
				coeff := base + addr.V(fp-fp/8)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewStencil(b, sz, 512<<10, kpc("srad", id)), Weight: 0.8},
					workload.Weighted{Stream: workload.NewSequential(coeff, fp/8, 64, false, kpc("srad-c", id)), Weight: 0.2},
				)
			},
		},
		{
			// lud: blocked matrix decomposition — dense block sweeps with
			// strided pivot-row reads.
			Name: "lud",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewSequential(b, sz, 16, true, kpc("lud-blk", id)), Weight: 0.6},
					workload.Weighted{Stream: workload.NewSequential(b, sz, 16<<10, false, kpc("lud-piv", id)), Weight: 0.4},
				)
			},
		},
		{
			// nw (Needleman-Wunsch): anti-diagonal wavefront — two strided
			// streams offset by one row.
			Name: "nw",
			Build: func(id, n int, base addr.V, fp uint64, rng *simrand.Source) workload.Stream {
				b, sz := tile(id, n, base, fp)
				row := uint64(64 << 10)
				return workload.MustMix(rng.Split(),
					workload.Weighted{Stream: workload.NewSequential(b, sz, row+8, true, kpc("nw-d", id)), Weight: 0.5},
					workload.Weighted{Stream: workload.NewSequential(b+addr.V(row), sz-row, row+8, false, kpc("nw-u", id)), Weight: 0.5},
				)
			},
		},
	}
}

// KernelByName finds a kernel spec.
func KernelByName(name string) (KernelSpec, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return KernelSpec{}, fmt.Errorf("gpu: unknown kernel %q", name)
}

// kpc derives a stable synthetic PC for a kernel site on a core.
func kpc(name string, coreID int) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h ^ uint64(coreID)<<8
}
