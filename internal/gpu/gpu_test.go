package gpu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/workload"
)

func newGPUEnv(t *testing.T, policy osmm.Policy, design mmu.Design, cores int) (*System, addr.V, uint64) {
	t.Helper()
	phys := physmem.NewBuddy(4 << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	const fp = 2 << 30
	base, err := as.Mmap(fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Populate(base, fp); err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Cores: cores, Design: design}, as, cachesim.DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	return sys, base, fp
}

func TestRunAllKernelsBothDesigns(t *testing.T) {
	for _, design := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix} {
		for _, k := range Kernels() {
			sys, base, fp := newGPUEnv(t, osmm.THS, design, 4)
			kernel := k
			sys.AttachStreams(func(id int) workload.Stream {
				return kernel.Build(id, 4, base, fp, simrand.New(uint64(id)))
			})
			if err := sys.Run(20000); err != nil {
				t.Fatalf("%s/%s: %v", design, k.Name, err)
			}
			st := sys.Stats()
			if st.Accesses != 20000 {
				t.Errorf("%s/%s accesses = %d", design, k.Name, st.Accesses)
			}
			if st.L1Hits == 0 {
				t.Errorf("%s/%s: no L1 hits", design, k.Name)
			}
		}
	}
}

func TestMixBeatsSplitOnSuperpageGPU(t *testing.T) {
	// The Fig 14 GPU claim at unit scale: with THS superpages and
	// low-locality traffic, a split design funnels all 2MB translations
	// through its small dedicated 2MB L1 (64MB of reach) while MIX uses
	// its whole L1 for coalesced superpage bundles (hundreds of MB), so
	// MIX spends fewer cycles per translation.
	run := func(design mmu.Design) float64 {
		sys, base, fp := newGPUEnv(t, osmm.THS, design, 4)
		sys.AttachStreams(func(id int) workload.Stream {
			return workload.NewZipf(base, fp/2, simrand.New(uint64(100+id)), 0.99, 0.05, 42)
		})
		if err := sys.Run(30000); err != nil {
			t.Fatal(err)
		}
		sys.ResetStats()
		if err := sys.Run(30000); err != nil {
			t.Fatal(err)
		}
		return sys.Stats().CyclesPerAccess()
	}
	split := run(mmu.DesignSplit)
	mix := run(mmu.DesignMix)
	if mix >= split {
		t.Errorf("cycles/access: mix=%v split=%v (want mix < split)", mix, split)
	}
}

func TestCoresShareL2(t *testing.T) {
	sys, base, fp := newGPUEnv(t, osmm.BasePages, mmu.DesignSplit, 2)
	// Core 0 and core 1 run the same stream: core 1's L1 misses should
	// hit in the shared L2 warmed by core 0's walks.
	sameStream := func(id int) workload.Stream {
		return workload.NewSequential(base, fp/64, 4096, false, 1)
	}
	sys.AttachStreams(sameStream)
	if err := sys.Run(4000); err != nil {
		t.Fatal(err)
	}
	var l2hits uint64
	for _, c := range sys.Cores() {
		l2hits += c.Stats().L2Hits
	}
	if l2hits == 0 {
		t.Error("no cross-core L2 TLB sharing observed")
	}
}

func TestStatsAggregation(t *testing.T) {
	sys, base, fp := newGPUEnv(t, osmm.BasePages, mmu.DesignMix, 3)
	sys.AttachStreams(func(id int) workload.Stream {
		return workload.NewUniform(base, fp, simrand.New(uint64(id)), 0.5, 7)
	})
	if err := sys.Run(9999); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Accesses != 9999 {
		t.Errorf("aggregated accesses = %d", st.Accesses)
	}
	var sum uint64
	for _, c := range sys.Cores() {
		sum += c.Stats().Accesses
	}
	if sum != st.Accesses {
		t.Errorf("per-core sum %d != aggregate %d", sum, st.Accesses)
	}
	if st.DirtyMicroOps == 0 {
		t.Error("no dirty micro-ops despite 50% writes")
	}
}

func TestRunWithoutStreamsFails(t *testing.T) {
	sys, _, _ := newGPUEnv(t, osmm.BasePages, mmu.DesignSplit, 2)
	if err := sys.Run(10); err == nil {
		t.Error("Run without streams succeeded")
	}
}

func TestKernelByName(t *testing.T) {
	if _, err := KernelByName("hotspot"); err != nil {
		t.Error(err)
	}
	if _, err := KernelByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if len(Kernels()) < 9 {
		t.Errorf("only %d kernels", len(Kernels()))
	}
}

func TestAllDesignsSupported(t *testing.T) {
	for _, d := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix, mmu.DesignRehash, mmu.DesignSkew} {
		sys, base, fp := newGPUEnv(t, osmm.THS, d, 2)
		sys.AttachStreams(func(id int) workload.Stream {
			return workload.NewSequential(base, fp, 64, false, 3)
		})
		if err := sys.Run(1000); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestUnsupportedDesignErrors(t *testing.T) {
	if _, err := perCoreL1(mmu.DesignIdeal, 0); err == nil {
		t.Fatal("no error for unsupported design")
	}
}
