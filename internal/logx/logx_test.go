package logx

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTextFormatOmitsTimestamps(t *testing.T) {
	var b strings.Builder
	lg, err := New(&b, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("cell done", "experiment", "fig14", "done", 3)
	got := b.String()
	if strings.Contains(got, "time=") {
		t.Errorf("text log carries a timestamp: %q", got)
	}
	for _, want := range []string{"cell done", "experiment=fig14", "done=3"} {
		if !strings.Contains(got, want) {
			t.Errorf("text log lacks %q: %q", want, got)
		}
	}
}

func TestJSONFormatIsParseable(t *testing.T) {
	var b strings.Builder
	lg, err := New(&b, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	lg.Warn("cell failed", "cell", "gups/mix")
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not JSON: %q (%v)", b.String(), err)
	}
	if rec["msg"] != "cell failed" || rec["cell"] != "gups/mix" || rec["level"] != "WARN" {
		t.Errorf("unexpected record: %v", rec)
	}
	if _, ok := rec["time"]; ok {
		t.Errorf("JSON log carries a timestamp: %v", rec)
	}
}

func TestEmptyFormatDefaultsToText(t *testing.T) {
	if _, err := New(&strings.Builder{}, ""); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if _, err := New(&strings.Builder{}, "yaml"); err == nil {
		t.Fatal("yaml accepted")
	}
}
