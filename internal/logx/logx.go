// Package logx builds the structured loggers the CLIs share. Both
// mixtlb and mixtlbd emit their operational chatter (run lifecycle,
// journal events, telemetry endpoints) through log/slog so the stream is
// grep-able as text or machine-readable as JSON, selected by one flag.
package logx

import (
	"fmt"
	"io"
	"log/slog"
)

// Formats accepted by New, in the order -log-format documents them.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// New returns a logger writing to w in the requested format. Timestamps
// are stripped: the simulator is deterministic and its logs diff-able,
// and wall-clock times would make otherwise identical runs diverge.
func New(w io.Writer, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}
	switch format {
	case FormatText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
	}
}
