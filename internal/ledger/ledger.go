// Package ledger attributes every simulated translation cycle to exactly
// one cost category, turning the MMU's aggregate cycle counter into an
// explainable breakdown: probe cycles per hierarchy level, victim-level
// cache probes, walk cycles (split by whether paging-structure caches
// shortened the walk), dirty-bit assists, memo replays, chaos-retry
// re-translations, and shootdown events.
//
// The ledger is a passive observer with an exactness contract: Audit
// fails unless the per-category cycle sums equal the MMU's total cycle
// count, so any charging site added without attribution — or attributed
// twice — is a test failure, not silent drift. It is schedule-
// deterministic (state is per-MMU, mutated only on that MMU's own
// translation path) and allocation-free on the hot path: all per-access
// state lives in fixed arrays sized at construction.
package ledger

import (
	"fmt"
	"strings"

	"mixtlb/internal/addr"
)

// Category is one destination for attributed cycles. Every cycle the MMU
// charges lands in exactly one category.
type Category uint8

const (
	// L1Probe is the first hierarchy level's probe latency, charged on
	// every non-memoized access.
	L1Probe Category = iota
	// L2Probe is the second level's probe latency.
	L2Probe
	// DeepProbe folds probe latency of SRAM levels beyond the second.
	DeepProbe
	// ExtraProbe is the added cost of probe rounds beyond the first
	// within one level (hash-rehash re-probes, predictor second rounds).
	ExtraProbe
	// VictimProbe is data-cache access time spent probing a
	// cache-resident victim level (Victima-style designs).
	VictimProbe
	// WalkFull is page-table-walk PTE reference time on walks the
	// paging-structure caches did not shorten (or designs without PWC).
	WalkFull
	// WalkPWC is walk PTE reference time on walks a PWC prefix hit
	// shortened — only the issued (unskipped) references cost cycles.
	WalkPWC
	// WalkContig is walk PTE reference time on walks whose leaf carried
	// the ISA's hardware contiguity encoding (an SVNAPOT range or an
	// ARM64 contiguous-hint block). The encoding changes what the fill
	// learns, not how many PTEs the walk reads, so these cycles are
	// walk cost like WalkFull/WalkPWC — attributed separately so
	// breakdowns on non-x86 descriptors show how much walk time the
	// architectural contiguity covers. Never charged on descriptors
	// without an encoding, including the default x86-64.
	WalkContig
	// DirtyAssist is the exposed latency of injected PTE dirty-bit
	// micro-ops (zero cycles under the default latency model, but the
	// events are still counted).
	DirtyAssist
	// MemoReplay is the replayed charge of consecutive same-page hits
	// served from the MMU's first-level memo without re-probing.
	MemoReplay
	// ChaosRetry absorbs every cycle of oracle-triggered re-translations:
	// when fault injection corrupts a result and the oracle rejects it,
	// the retry's probe and walk cycles are the cost of the fault, not of
	// the design's steady state.
	ChaosRetry
	// Shootdown counts TLB invalidations and flushes (zero exposed
	// cycles in the model; the refill cost they induce lands in the
	// probe/walk categories of later accesses).
	Shootdown

	// NumCategories sizes per-category arrays.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"l1-probe", "l2-probe", "deep-probe", "extra-probe", "victim-probe",
	"walk-full", "walk-pwc", "walk-contig", "dirty-assist", "memo-replay",
	"chaos-retry", "shootdown",
}

// String names the category as used in tables and narrations.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Categories lists every category in declaration order.
func Categories() [NumCategories]Category {
	var out [NumCategories]Category
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Entry is one category's accumulated books.
type Entry struct {
	Cycles uint64 // attributed cycles
	Events uint64 // charge sites hit (walks, probes, shootdowns, ...)
}

// MaxTrail bounds the per-translation step trail. A worst-case access is
// maxOracleRetries+1 rounds through a deep hierarchy (probe per level,
// extra probes, a victim probe, a walk, a dirty assist); 40 covers that
// with slack, and overflow merges into the last step rather than growing.
const MaxTrail = 40

// Step is one merged charge along a single translation's trail: which
// category, at which hierarchy level (-1 when not a probe), how many
// cycles, over how many charge events.
type Step struct {
	Cat    Category
	Level  int8
	Cycles uint64
	Events uint32
}

// Ledger attributes one MMU's cycles. Not safe for concurrent use — like
// the MMU it observes, it belongs to a single simulation goroutine.
type Ledger struct {
	entries [NumCategories]Entry

	// retry redirects charges to ChaosRetry while an oracle-triggered
	// re-translation is in flight.
	retry bool

	// Per-access scratch, reset by Begin and harvested by End.
	inAccess bool
	seq      uint64 // completed accesses (deterministic tie-break id)
	cycles   uint64 // cycles charged to the in-flight access
	walkRefs uint16 // PTE references the in-flight access issued
	retries  uint8  // oracle retries of the in-flight access
	trail    [MaxTrail]Step
	trailLen int

	tail *Tail // optional top-K slowest-translation recorder
}

// New returns a ledger; tailK > 0 additionally arms a top-K tail flight
// recorder (clamped to MaxTailK).
func New(tailK int) *Ledger {
	l := &Ledger{}
	if tailK > 0 {
		l.tail = newTail(tailK)
	}
	return l
}

// Reset zeroes the books (and the tail recorder), separating warm-up
// from measurement exactly as MMU.ResetStats does.
func (l *Ledger) Reset() {
	tail := l.tail
	*l = Ledger{tail: tail}
	if tail != nil {
		tail.reset()
	}
}

// SetRetry marks (or unmarks) an oracle-triggered re-translation: while
// set, every charge is redirected to ChaosRetry.
func (l *Ledger) SetRetry(on bool) {
	if on && l.inAccess {
		l.retries++
	}
	l.retry = on
}

// Begin opens one translation's books. The MMU calls it once per access
// (memoized replays included) before any charge.
func (l *Ledger) Begin() {
	l.inAccess = true
	l.cycles = 0
	l.walkRefs = 0
	l.retries = 0
	l.trailLen = 0
}

// End closes the in-flight translation, feeding the tail recorder when
// one is armed. hitLevel mirrors mmu.Result.HitLevel (-1 = walked or
// faulted); faulted marks accesses the fault handler refused.
func (l *Ledger) End(va uint64, size addr.PageSize, hitLevel int8, faulted bool) {
	if !l.inAccess {
		return
	}
	l.inAccess = false
	seq := l.seq
	l.seq++
	if l.tail != nil {
		l.tail.offer(l, va, size, hitLevel, faulted, seq)
	}
}

// charge is the single attribution point: category redirect, books,
// per-access scratch, trail.
func (l *Ledger) charge(c Category, level int8, cycles uint64) {
	if l.retry {
		c = ChaosRetry
		level = -1
	}
	l.entries[c].Cycles += cycles
	l.entries[c].Events++
	if !l.inAccess {
		return
	}
	l.cycles += cycles
	// Merge consecutive same-category steps (per-PTE walk charges, probe
	// rounds) so trails stay short and bounded.
	if n := l.trailLen; n > 0 && l.trail[n-1].Cat == c && l.trail[n-1].Level == level {
		l.trail[n-1].Cycles += cycles
		l.trail[n-1].Events++
		return
	}
	if l.trailLen == MaxTrail {
		l.trail[MaxTrail-1].Cycles += cycles
		l.trail[MaxTrail-1].Events++
		return
	}
	l.trail[l.trailLen] = Step{Cat: c, Level: level, Cycles: cycles, Events: 1}
	l.trailLen++
}

// Charge attributes cycles to a category (non-probe sites).
func (l *Ledger) Charge(c Category, cycles uint64) { l.charge(c, -1, cycles) }

// ChargeProbe attributes one SRAM probe at hierarchy level li
// (0-indexed) to the level's probe category.
func (l *Ledger) ChargeProbe(li int, cycles uint64) {
	c := DeepProbe
	switch li {
	case 0:
		c = L1Probe
	case 1:
		c = L2Probe
	}
	l.charge(c, int8(li), cycles)
}

// ChargeWalk attributes one page-table walk's issued PTE reference time:
// cat is WalkFull or WalkPWC, refs the references actually charged.
func (l *Ledger) ChargeWalk(cat Category, cycles uint64, refs int) {
	l.charge(cat, -1, cycles)
	if l.inAccess && refs > 0 {
		r := l.walkRefs + uint16(refs)
		if r < l.walkRefs { // saturate rather than wrap
			r = ^uint16(0)
		}
		l.walkRefs = r
	}
}

// Event counts a zero-cycle occurrence (shootdowns).
func (l *Ledger) Event(c Category) { l.charge(c, -1, 0) }

// Entries returns a snapshot of the per-category books.
func (l *Ledger) Entries() [NumCategories]Entry { return l.entries }

// Total sums attributed cycles across all categories.
func (l *Ledger) Total() uint64 {
	var t uint64
	for i := range l.entries {
		t += l.entries[i].Cycles
	}
	return t
}

// Accesses returns how many translations have closed their books.
func (l *Ledger) Accesses() uint64 { return l.seq }

// Trail returns the last completed translation's step trail. The slice
// aliases the ledger's scratch and is valid until the next translation.
func (l *Ledger) Trail() []Step { return l.trail[:l.trailLen] }

// ConservationError reports attributed cycles diverging from the MMU's
// total — a charging site missing attribution (leak > 0 means the MMU
// charged cycles the ledger never saw) or double-attributed (leak < 0).
type ConservationError struct {
	Attributed uint64
	Total      uint64
	Entries    [NumCategories]Entry
}

func (e *ConservationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ledger: attributed %d cycles but the MMU charged %d (leak %d):",
		e.Attributed, e.Total, int64(e.Total)-int64(e.Attributed))
	for c, en := range e.Entries {
		if en.Cycles != 0 || en.Events != 0 {
			fmt.Fprintf(&b, " %s=%d/%dev", Category(c), en.Cycles, en.Events)
		}
	}
	return b.String()
}

// Audit asserts exact conservation: the per-category sums equal total
// (the MMU's Stats.Cycles over the same interval). Nil-safe: an absent
// ledger audits clean.
func (l *Ledger) Audit(total uint64) error {
	if l == nil {
		return nil
	}
	if att := l.Total(); att != total {
		return &ConservationError{Attributed: att, Total: total, Entries: l.entries}
	}
	return nil
}

// TrailString renders a step trail compactly: "L1:1 L2:7 walk-full:40x4"
// (cycles, and xN when a step merged N charges).
func TrailString(steps []Step) string {
	var b strings.Builder
	for i, s := range steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Level >= 0 {
			fmt.Fprintf(&b, "L%d:%d", s.Level+1, s.Cycles)
		} else {
			fmt.Fprintf(&b, "%s:%d", s.Cat, s.Cycles)
		}
		if s.Events > 1 {
			fmt.Fprintf(&b, "x%d", s.Events)
		}
	}
	return b.String()
}
