package ledger

import (
	"errors"
	"strings"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

func TestCategoryNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Categories() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "category(") {
			t.Fatalf("category %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate category name %q", name)
		}
		seen[name] = true
	}
	if got := Category(200).String(); got != "category(200)" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestAuditConservation(t *testing.T) {
	l := New(0)
	l.Begin()
	l.ChargeProbe(0, 1)
	l.ChargeProbe(1, 7)
	l.ChargeWalk(WalkFull, 40, 4)
	l.End(0x1000, addr.Page4K, -1, false)

	if err := l.Audit(48); err != nil {
		t.Fatalf("balanced audit failed: %v", err)
	}
	err := l.Audit(50)
	if err == nil {
		t.Fatal("audit accepted a 2-cycle leak")
	}
	var ce *ConservationError
	if !errors.As(err, &ce) {
		t.Fatalf("audit error type = %T", err)
	}
	if ce.Attributed != 48 || ce.Total != 50 {
		t.Fatalf("ConservationError = %+v", ce)
	}
	if msg := err.Error(); !strings.Contains(msg, "leak 2") || !strings.Contains(msg, "walk-full=40") {
		t.Fatalf("error message lacks leak/category detail: %s", msg)
	}
}

func TestNilLedgerAuditsClean(t *testing.T) {
	var l *Ledger
	if err := l.Audit(123); err != nil {
		t.Fatalf("nil ledger audit: %v", err)
	}
	if l.Top() != nil {
		t.Fatal("nil ledger returned tail records")
	}
}

func TestRetryRedirect(t *testing.T) {
	l := New(0)
	l.Begin()
	l.ChargeProbe(0, 1)
	l.SetRetry(true)
	l.ChargeProbe(0, 1)
	l.ChargeWalk(WalkPWC, 30, 2)
	l.SetRetry(false)
	l.End(0, addr.Page4K, 0, false)

	e := l.Entries()
	if e[L1Probe].Cycles != 1 || e[ChaosRetry].Cycles != 31 {
		t.Fatalf("redirect books: l1=%+v retry=%+v", e[L1Probe], e[ChaosRetry])
	}
	if e[WalkPWC].Cycles != 0 {
		t.Fatalf("retry walk leaked into walk-pwc: %+v", e[WalkPWC])
	}
	if err := l.Audit(32); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestResetClearsBooksAndTail(t *testing.T) {
	l := New(4)
	l.Begin()
	l.Charge(MemoReplay, 5)
	l.End(0x42, addr.Page2M, 0, false)
	l.Reset()
	if l.Total() != 0 || l.Accesses() != 0 {
		t.Fatalf("reset left books: total=%d acc=%d", l.Total(), l.Accesses())
	}
	if got := l.Top(); got != nil {
		t.Fatalf("reset left %d tail records", len(got))
	}
}

func TestTrailMergesConsecutiveCharges(t *testing.T) {
	l := New(0)
	l.Begin()
	l.ChargeProbe(0, 1)
	l.Charge(VictimProbe, 10)
	l.Charge(VictimProbe, 12)
	l.ChargeWalk(WalkFull, 40, 4)
	l.End(0, addr.Page4K, -1, false)

	steps := l.Trail()
	if len(steps) != 3 {
		t.Fatalf("trail = %v, want 3 merged steps", steps)
	}
	if steps[1].Cat != VictimProbe || steps[1].Cycles != 22 || steps[1].Events != 2 {
		t.Fatalf("victim step not merged: %+v", steps[1])
	}
	s := TrailString(steps)
	if !strings.Contains(s, "L1:1") || !strings.Contains(s, "victim-probe:22x2") || !strings.Contains(s, "walk-full:40") {
		t.Fatalf("TrailString = %q", s)
	}
}

func TestTrailOverflowStaysBounded(t *testing.T) {
	l := New(0)
	l.Begin()
	for i := 0; i < 3*MaxTrail; i++ {
		// Alternate categories so no merge hides the overflow.
		if i%2 == 0 {
			l.Charge(WalkFull, 1)
		} else {
			l.Charge(DirtyAssist, 1)
		}
	}
	l.End(0, addr.Page4K, -1, false)
	if len(l.Trail()) != MaxTrail {
		t.Fatalf("trail length = %d, want %d", len(l.Trail()), MaxTrail)
	}
	if err := l.Audit(3 * MaxTrail); err != nil {
		t.Fatalf("overflowed trail broke conservation: %v", err)
	}
}

func TestTailKeepsKSlowest(t *testing.T) {
	const k = 4
	l := New(k)
	cycles := []uint64{5, 90, 10, 70, 70, 3, 100, 10}
	for i, c := range cycles {
		l.Begin()
		l.Charge(WalkFull, c)
		l.End(uint64(i)<<addr.Shift4K, addr.Page4K, -1, false)
	}
	top := l.Top()
	if len(top) != k {
		t.Fatalf("len(top) = %d, want %d", len(top), k)
	}
	gotCycles := []uint64{top[0].Cycles, top[1].Cycles, top[2].Cycles, top[3].Cycles}
	want := []uint64{100, 90, 70, 70}
	for i := range want {
		if gotCycles[i] != want[i] {
			t.Fatalf("top cycles = %v, want %v", gotCycles, want)
		}
	}
	// The two 70s tie: earliest access first.
	if top[2].Seq != 3 || top[3].Seq != 4 {
		t.Fatalf("tie order: seq %d then %d, want 3 then 4", top[2].Seq, top[3].Seq)
	}
}

func TestTailTiesKeepEarliest(t *testing.T) {
	l := New(2)
	for i := 0; i < 10; i++ {
		l.Begin()
		l.Charge(WalkFull, 50) // all equal: later accesses must not displace
		l.End(uint64(i), addr.Page4K, -1, false)
	}
	top := l.Top()
	if len(top) != 2 || top[0].Seq != 0 || top[1].Seq != 1 {
		t.Fatalf("equal-cycle stream kept %v, want seqs 0,1", top)
	}
}

func TestTailKClamped(t *testing.T) {
	l := New(10 * MaxTailK)
	if l.tail.K() != MaxTailK {
		t.Fatalf("K = %d, want clamp to %d", l.tail.K(), MaxTailK)
	}
}

// TestTailDeterministic replays one random charge stream twice and
// requires identical recorder contents — the property that makes tail
// exports jobs-invariant (per-cell state, deterministic insertion).
func TestTailDeterministic(t *testing.T) {
	run := func() []TailRecord {
		l := New(8)
		rng := simrand.New(7)
		for i := 0; i < 5000; i++ {
			l.Begin()
			l.ChargeProbe(0, 1)
			if rng.Uint64n(4) == 0 {
				l.ChargeWalk(WalkFull, rng.Uint64n(200), 4)
			}
			l.End(rng.Uint64(), addr.Page4K, -1, false)
		}
		return l.Top()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestHotPathAllocs(t *testing.T) {
	l := New(MaxTailK)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		l.Begin()
		l.ChargeProbe(0, 1)
		l.ChargeProbe(1, 7)
		l.Charge(VictimProbe, 20)
		l.ChargeWalk(WalkPWC, uint64(i%97), 2)
		l.Charge(DirtyAssist, 0)
		l.End(uint64(i), addr.Page2M, -1, false)
		l.Event(Shootdown)
		i++
	})
	if avg != 0 {
		t.Fatalf("hot path allocates %.1f/op, want 0", avg)
	}
}
