package ledger

import "mixtlb/internal/addr"

// MaxTailK bounds the tail flight recorder: the records live in one
// fixed allocation made at construction, never grown, so a runaway K
// cannot turn the recorder into a memory sink.
const MaxTailK = 64

// TailRecord is one of the K slowest translations a cell observed: where
// the request landed, how deep the walk went, how many oracle retries it
// ate, its total cycles, and the merged per-level charge trail.
type TailRecord struct {
	VA       uint64
	Size     addr.PageSize
	HitLevel int8 // -1 = walked or faulted
	Faulted  bool
	WalkRefs uint16
	Retries  uint8
	Cycles   uint64
	Seq      uint64 // access index within the measurement interval
	trail    [MaxTrail]Step
	trailLen int
}

// Trail returns the record's charge trail.
func (r *TailRecord) Trail() []Step { return r.trail[:r.trailLen] }

// Tail is a bounded top-K recorder of the slowest translations. Insertion
// is deterministic: a new access displaces the current minimum only when
// strictly slower, so ties keep the earliest access, independent of K's
// relation to the stream length.
type Tail struct {
	k       int
	n       int
	minIdx  int
	records [MaxTailK]TailRecord
}

func newTail(k int) *Tail {
	if k > MaxTailK {
		k = MaxTailK
	}
	return &Tail{k: k}
}

// K returns the recorder's capacity.
func (t *Tail) K() int { return t.k }

func (t *Tail) reset() {
	t.n = 0
	t.minIdx = 0
}

// refreshMin rescans for the slot holding the smallest cycle count,
// preferring the earliest sequence number on ties so displacement order
// is a pure function of the access stream.
func (t *Tail) refreshMin() {
	m := 0
	for i := 1; i < t.n; i++ {
		if t.records[i].Cycles < t.records[m].Cycles ||
			(t.records[i].Cycles == t.records[m].Cycles && t.records[i].Seq > t.records[m].Seq) {
			m = i
		}
	}
	t.minIdx = m
}

// offer records the just-ended access if it ranks among the K slowest.
func (t *Tail) offer(l *Ledger, va uint64, size addr.PageSize, hitLevel int8, faulted bool, seq uint64) {
	var slot int
	switch {
	case t.n < t.k:
		slot = t.n
		t.n++
	case l.cycles > t.records[t.minIdx].Cycles:
		slot = t.minIdx
	default:
		return
	}
	r := &t.records[slot]
	r.VA = va
	r.Size = size
	r.HitLevel = hitLevel
	r.Faulted = faulted
	r.WalkRefs = l.walkRefs
	r.Retries = l.retries
	r.Cycles = l.cycles
	r.Seq = seq
	r.trail = l.trail
	r.trailLen = l.trailLen
	t.refreshMin()
}

// Top returns the recorded tail sorted slowest-first (ties by earliest
// access), as a fresh slice safe to retain. Nil-safe on an unarmed
// ledger.
func (l *Ledger) Top() []TailRecord {
	if l == nil || l.tail == nil || l.tail.n == 0 {
		return nil
	}
	t := l.tail
	out := make([]TailRecord, t.n)
	copy(out, t.records[:t.n])
	// Insertion sort: n <= MaxTailK and the data is nearly unordered
	// anyway; no need for sort.Slice's closure allocation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if a.Cycles > b.Cycles || (a.Cycles == b.Cycles && a.Seq < b.Seq) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
