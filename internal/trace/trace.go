// Package trace records and replays memory-reference traces, the
// methodology backbone of the paper's CPU studies (Sec 6.2): the authors
// collect Pin traces of native executions and feed them to the functional
// simulator. Here, traces are captured from the synthetic workload
// streams (or any Stream) into a compact binary format, and replayed as
// streams — so experiments can run from frozen trace files, be shared,
// and be re-run bit-identically without regenerating the workload.
//
// Format (little-endian, after an 8-byte magic/version header):
//
//	each record is one reference, delta-encoded against the previous:
//	  flags byte: bit0 = write, bit1 = PC changed, bit2 = VA delta sign
//	  uvarint     |VA delta| in bytes
//	  uvarint     new PC (only when bit1 set)
//
// Delta encoding exploits the spatial locality of real reference streams;
// sequential workloads compress to ~2 bytes per reference.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mixtlb/internal/addr"
	"mixtlb/internal/workload"
)

// magic identifies trace files; the low byte is the format version.
const magic uint64 = 0x4d49585442435201 // "MIXTBCR" + version 1

const (
	flagWrite     = 1 << 0
	flagPCChanged = 1 << 1
	flagNegDelta  = 1 << 2
)

// ErrBadMagic indicates the reader's input is not a trace file (or is a
// different version).
var ErrBadMagic = errors.New("trace: bad magic or unsupported version")

// DecodeError reports a malformed or truncated record, carrying the index
// of the record that failed to decode (records before it are valid).
// It wraps the underlying cause: io.ErrUnexpectedEOF for truncation, or
// the reader's I/O error.
type DecodeError struct {
	Record uint64 // zero-based index of the failed record
	Err    error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: decoding record %d: %v", e.Record, e.Err)
}

// Unwrap exposes the cause so errors.Is(err, io.ErrUnexpectedEOF) works.
func (e *DecodeError) Unwrap() error { return e.Err }

// Writer encodes references to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	prevVA addr.V
	prevPC uint64
	n      uint64
	buf    [2 * binary.MaxVarintLen64]byte
	opened bool
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append encodes one reference.
func (t *Writer) Append(ref workload.Ref) error {
	if !t.opened {
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], magic)
		if _, err := t.w.Write(hdr[:]); err != nil {
			return err
		}
		t.opened = true
	}
	var flags byte
	if ref.Write {
		flags |= flagWrite
	}
	if ref.PC != t.prevPC {
		flags |= flagPCChanged
	}
	// Compute |delta| in uint64 space so deltas of 2^63 and above (e.g. a
	// kernel-half address after a user-half one) are handled explicitly
	// rather than through signed-overflow wraparound.
	var delta uint64
	if ref.VA >= t.prevVA {
		delta = uint64(ref.VA - t.prevVA)
	} else {
		flags |= flagNegDelta
		delta = uint64(t.prevVA - ref.VA)
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	n := binary.PutUvarint(t.buf[:], delta)
	if flags&flagPCChanged != 0 {
		n += binary.PutUvarint(t.buf[n:], ref.PC)
	}
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	t.prevVA, t.prevPC = ref.VA, ref.PC
	t.n++
	return nil
}

// Count returns the number of references appended so far.
func (t *Writer) Count() uint64 { return t.n }

// Flush writes buffered data through to the underlying writer.
func (t *Writer) Flush() error {
	if !t.opened { // an empty trace still carries the header
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], magic)
		if _, err := t.w.Write(hdr[:]); err != nil {
			return err
		}
		t.opened = true
	}
	return t.w.Flush()
}

// Record captures n references from a stream.
func Record(w io.Writer, s workload.Stream, n uint64) error {
	tw := NewWriter(w)
	for i := uint64(0); i < n; i++ {
		if err := tw.Append(s.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r      *bufio.Reader
	prevVA addr.V
	prevPC uint64
	n      uint64 // records decoded so far
}

// NewReader validates the header and returns a decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[:]) != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next decodes one reference. A clean end of trace returns io.EOF
// unwrapped; every other failure — truncation mid-record, I/O errors —
// returns a *DecodeError carrying the index of the record that failed.
func (t *Reader) Next() (workload.Ref, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return workload.Ref{}, io.EOF // clean end of trace
		}
		return workload.Ref{}, &DecodeError{Record: t.n, Err: err}
	}
	delta, err := binary.ReadUvarint(t.r)
	if err != nil {
		return workload.Ref{}, &DecodeError{Record: t.n, Err: unexpectedEOF(err)}
	}
	if flags&flagNegDelta != 0 {
		t.prevVA -= addr.V(delta)
	} else {
		t.prevVA += addr.V(delta)
	}
	if flags&flagPCChanged != 0 {
		pc, err := binary.ReadUvarint(t.r)
		if err != nil {
			return workload.Ref{}, &DecodeError{Record: t.n, Err: unexpectedEOF(err)}
		}
		t.prevPC = pc
	}
	t.n++
	return workload.Ref{VA: t.prevVA, Write: flags&flagWrite != 0, PC: t.prevPC}, nil
}

// Count returns the number of records decoded so far.
func (t *Reader) Count() uint64 { return t.n }

// ReadAll decodes the remaining records, failing on a malformed or
// truncated trace (the partial slice is still returned alongside the
// *DecodeError, which names the failed record).
func ReadAll(r *Reader) ([]workload.Ref, error) {
	var refs []workload.Ref
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			return refs, nil
		}
		if err != nil {
			return refs, err
		}
		refs = append(refs, ref)
	}
}

// unexpectedEOF maps a mid-record EOF to ErrUnexpectedEOF so truncated
// traces are distinguishable from complete ones.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Replay adapts a Reader to workload.Stream, looping back to the start of
// the decoded records when the trace ends (simulations often need more
// references than the trace holds). It buffers the decoded records in
// memory on the first pass.
type Replay struct {
	refs []workload.Ref
	r    *Reader
	pos  int
	err  error
}

// NewReplay wraps a validated Reader.
func NewReplay(r *Reader) *Replay { return &Replay{r: r} }

// Err reports the *DecodeError encountered during streaming, if any.
// workload.Stream has no error channel, so a decode failure mid-run cannot
// stop the simulation — Next falls back to recycling the records decoded
// before the failure — but the error is never swallowed: every harness
// that replays a trace must check Err after the run and treat a non-nil
// result as a failed experiment, not a short trace.
func (p *Replay) Err() error { return p.err }

// Len returns the number of records decoded so far.
func (p *Replay) Len() int { return len(p.refs) }

// Drained reports whether the underlying trace has been fully decoded
// (subsequent Next calls recycle the buffered records).
func (p *Replay) Drained() bool { return p.r == nil }

// Next implements workload.Stream.
func (p *Replay) Next() workload.Ref {
	if p.r != nil {
		ref, err := p.r.Next()
		switch {
		case err == nil:
			p.refs = append(p.refs, ref)
			return ref
		case errors.Is(err, io.EOF):
			p.r = nil // wrap around to the buffered records
		default:
			p.err = err
			p.r = nil
		}
	}
	if len(p.refs) == 0 {
		return workload.Ref{}
	}
	ref := p.refs[p.pos]
	p.pos = (p.pos + 1) % len(p.refs)
	return ref
}
