package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/workload"
)

// refsFromBytes interprets fuzz input as a reference sequence: 17-byte
// groups of (VA, PC, flags). This drives the encoder with adversarial
// deltas — including the 2^63-and-above magnitudes the unsigned delta
// computation exists for — rather than adversarial bytes.
func refsFromBytes(data []byte) []workload.Ref {
	const rec = 17
	refs := make([]workload.Ref, 0, len(data)/rec)
	for i := 0; i+rec <= len(data) && len(refs) < 4096; i += rec {
		refs = append(refs, workload.Ref{
			VA:    addr.V(binary.LittleEndian.Uint64(data[i:])),
			PC:    binary.LittleEndian.Uint64(data[i+8:]),
			Write: data[i+16]&1 != 0,
		})
	}
	return refs
}

// FuzzRoundTrip checks that any reference sequence survives
// encode-decode exactly, and that re-encoding the decoded sequence is
// byte-identical (the format is canonical).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 3*17)
	binary.LittleEndian.PutUint64(seed[0:], 0x1000)
	binary.LittleEndian.PutUint64(seed[8:], 7)
	binary.LittleEndian.PutUint64(seed[17:], 1<<63) // huge delta from 0x1000
	binary.LittleEndian.PutUint64(seed[25:], 7)
	binary.LittleEndian.PutUint64(seed[34:], ^uint64(0))
	binary.LittleEndian.PutUint64(seed[42:], 9)
	seed[16], seed[33], seed[50] = 0, 1, 1
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		refs := refsFromBytes(data)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if err := w.Append(r); err != nil {
				t.Fatalf("Append(%+v): %v", r, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		encoded := append([]byte(nil), buf.Bytes()...)

		r, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("NewReader on own output: %v", err)
		}
		got, err := ReadAll(r)
		if err != nil {
			t.Fatalf("ReadAll on own output: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("decoded %d refs, wrote %d", len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
			}
		}

		var buf2 bytes.Buffer
		w2 := NewWriter(&buf2)
		for _, r := range got {
			if err := w2.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encoded, buf2.Bytes()) {
			t.Fatalf("re-encoding decoded refs is not byte-identical:\n%x\nvs\n%x", encoded, buf2.Bytes())
		}
	})
}

// FuzzReader feeds arbitrary bytes to the decoder: it must never panic,
// and every failure must be a typed error — ErrBadMagic from NewReader,
// or io.EOF / *DecodeError from Next.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	w.Append(workload.Ref{VA: 0x1000, PC: 7})
	w.Append(workload.Ref{VA: 0x1040, Write: true, PC: 7})
	w.Append(workload.Ref{VA: 0xfff, PC: 9})
	w.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-1]) // truncated mid-record
	f.Add([]byte("notatracefile!!!"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("NewReader: untyped error %v", err)
			}
			return
		}
		var n uint64
		for i := 0; i < 1<<16; i++ {
			_, err := r.Next()
			if err == nil {
				n++
				continue
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return // clean end of trace
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Next: untyped error %v", err)
			}
			if de.Record != n {
				t.Fatalf("DecodeError.Record = %d, decoded %d records", de.Record, n)
			}
			return
		}
	})
}
