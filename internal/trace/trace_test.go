package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
	"mixtlb/internal/workload"
)

func roundTrip(t *testing.T, refs []workload.Ref) []workload.Ref {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []workload.Ref
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ref)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	refs := []workload.Ref{
		{VA: 0x1000, Write: false, PC: 7},
		{VA: 0x1040, Write: true, PC: 7},
		{VA: 0x0fff, Write: false, PC: 9}, // negative delta + PC change
		{VA: 0x7fffffff000, Write: true, PC: 9},
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := simrand.New(seed)
		refs := make([]workload.Ref, int(n%512)+1)
		for i := range refs {
			refs[i] = workload.Ref{
				VA:    addr.V(rng.Uint64n(1 << addr.VABits)),
				Write: rng.Bool(0.3),
				PC:    rng.Uint64n(1 << 40),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if w.Append(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range refs {
			got, err := r.Next()
			if err != nil || got != refs[i] {
				return false
			}
		}
		_, err = r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Errorf("decoded %d refs from empty trace", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatracefile!!!"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(workload.Ref{VA: 0x123456789, PC: 42})
	w.Flush()
	full := buf.Bytes()
	// Cut mid-record (keep header + flags byte only).
	r, err := NewReader(bytes.NewReader(full[:9]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated record err = %v", err)
	}
}

func TestCompressionOnSequentialStream(t *testing.T) {
	s := workload.NewSequential(0x10000000000, 1<<30, 64, false, 7)
	var buf bytes.Buffer
	const n = 10000
	if err := Record(&buf, s, n); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()-8) / n
	if perRef > 3 {
		t.Errorf("sequential trace costs %.1f bytes/ref, want <= 3", perRef)
	}
}

func TestRecordAndReplayDrivesSimulator(t *testing.T) {
	// The methodology round trip: capture a workload stream to a trace,
	// replay it, and confirm the replayed stream matches the original
	// reference-for-reference.
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	const fp = 64 << 20
	orig := spec.Build(0x10000000000, fp, simrand.New(5))
	var buf bytes.Buffer
	const n = 20000
	if err := Record(&buf, orig, n); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewReplay(r)
	fresh := spec.Build(0x10000000000, fp, simrand.New(5))
	for i := 0; i < n; i++ {
		if got, want := replay.Next(), fresh.Next(); got != want {
			t.Fatalf("ref %d: %+v != %+v", i, got, want)
		}
	}
	if replay.Err() != nil {
		t.Fatal(replay.Err())
	}
	if replay.Len() != n {
		t.Errorf("Len = %d", replay.Len())
	}
	// Wrap-around: the next n refs repeat the trace.
	first := replay.Next()
	fresh2 := spec.Build(0x10000000000, fp, simrand.New(5))
	if want := fresh2.Next(); first != want {
		t.Errorf("wrap-around ref = %+v, want %+v", first, want)
	}
}

func TestReplayEmpty(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := NewReplay(r)
	if ref := p.Next(); ref != (workload.Ref{}) {
		t.Errorf("empty replay returned %+v", ref)
	}
}
