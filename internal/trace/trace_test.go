package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
	"mixtlb/internal/workload"
)

func roundTrip(t *testing.T, refs []workload.Ref) []workload.Ref {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []workload.Ref
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ref)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	refs := []workload.Ref{
		{VA: 0x1000, Write: false, PC: 7},
		{VA: 0x1040, Write: true, PC: 7},
		{VA: 0x0fff, Write: false, PC: 9}, // negative delta + PC change
		{VA: 0x7fffffff000, Write: true, PC: 9},
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := simrand.New(seed)
		refs := make([]workload.Ref, int(n%512)+1)
		for i := range refs {
			refs[i] = workload.Ref{
				VA:    addr.V(rng.Uint64n(1 << addr.VABits)),
				Write: rng.Bool(0.3),
				PC:    rng.Uint64n(1 << 40),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if w.Append(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range refs {
			got, err := r.Next()
			if err != nil || got != refs[i] {
				return false
			}
		}
		_, err = r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Errorf("decoded %d refs from empty trace", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatracefile!!!"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(workload.Ref{VA: 0x123456789, PC: 42})
	w.Flush()
	full := buf.Bytes()
	// Cut mid-record (keep header + flags byte only).
	r, err := NewReader(bytes.NewReader(full[:9]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated record err = %v", err)
	}
}

func TestCompressionOnSequentialStream(t *testing.T) {
	s := workload.NewSequential(0x10000000000, 1<<30, 64, false, 7)
	var buf bytes.Buffer
	const n = 10000
	if err := Record(&buf, s, n); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()-8) / n
	if perRef > 3 {
		t.Errorf("sequential trace costs %.1f bytes/ref, want <= 3", perRef)
	}
}

func TestRecordAndReplayDrivesSimulator(t *testing.T) {
	// The methodology round trip: capture a workload stream to a trace,
	// replay it, and confirm the replayed stream matches the original
	// reference-for-reference.
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	const fp = 64 << 20
	orig := spec.Build(0x10000000000, fp, simrand.New(5))
	var buf bytes.Buffer
	const n = 20000
	if err := Record(&buf, orig, n); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewReplay(r)
	fresh := spec.Build(0x10000000000, fp, simrand.New(5))
	for i := 0; i < n; i++ {
		if got, want := replay.Next(), fresh.Next(); got != want {
			t.Fatalf("ref %d: %+v != %+v", i, got, want)
		}
	}
	if replay.Err() != nil {
		t.Fatal(replay.Err())
	}
	if replay.Len() != n {
		t.Errorf("Len = %d", replay.Len())
	}
	// Wrap-around: the next n refs repeat the trace.
	first := replay.Next()
	fresh2 := spec.Build(0x10000000000, fp, simrand.New(5))
	if want := fresh2.Next(); first != want {
		t.Errorf("wrap-around ref = %+v, want %+v", first, want)
	}
}

func TestReplayEmpty(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := NewReplay(r)
	if ref := p.Next(); ref != (workload.Ref{}) {
		t.Errorf("empty replay returned %+v", ref)
	}
}

func TestRoundTripHugeDelta(t *testing.T) {
	// Boundary coverage: VA deltas of 2^63 and above exercise the unsigned
	// magnitude computation in Append (the old signed form relied on
	// overflow wraparound here).
	refs := []workload.Ref{
		{VA: 0, PC: 1},
		{VA: 1 << 63, PC: 1},            // +2^63 exactly
		{VA: 0xffffffffffffffff, PC: 1}, // near the top
		{VA: 1, PC: 1},                  // -(2^64 - 2)
		{VA: 0x8000000000000001, PC: 1}, // +2^63 again
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestDecodeErrorNamesRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(workload.Ref{VA: 0x1000, PC: 1})
	w.Append(workload.Ref{VA: 0x2000, PC: 2})
	w.Append(workload.Ref{VA: 0x123456789abc, PC: 3})
	w.Flush()
	full := buf.Bytes()
	// Cut inside the third record: drop the last byte of the stream.
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	_, err = r.Next()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DecodeError", err)
	}
	if de.Record != 2 {
		t.Errorf("DecodeError.Record = %d, want 2", de.Record)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("cause = %v, want io.ErrUnexpectedEOF", de.Err)
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d, want 2", r.Count())
	}
}

func TestReadAllTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		w.Append(workload.Ref{VA: addr.V(0x1000 * (i + 1)), PC: uint64(i)})
	}
	w.Flush()
	full := buf.Bytes()

	r, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	refs, err := ReadAll(r)
	if err != nil || len(refs) != 5 {
		t.Fatalf("ReadAll full = %d refs, %v", len(refs), err)
	}

	r, err = NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	refs, err = ReadAll(r)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("ReadAll truncated err = %v, want *DecodeError", err)
	}
	if len(refs) != 4 {
		t.Errorf("ReadAll kept %d valid records before the failure, want 4", len(refs))
	}
}

func TestReplaySurfacesTruncation(t *testing.T) {
	// A truncated trace must not masquerade as a short-but-clean one: the
	// replay keeps streaming the valid prefix (Stream has no error
	// channel), but Err reports the typed decode failure.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 4; i++ {
		w.Append(workload.Ref{VA: addr.V(0x1000 * (i + 1)), PC: 7})
	}
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	p := NewReplay(r)
	for i := 0; i < 8; i++ { // stream past the failure point, with wrap
		p.Next()
	}
	var de *DecodeError
	if !errors.As(p.Err(), &de) {
		t.Fatalf("Replay.Err = %v, want *DecodeError", p.Err())
	}
	if de.Record != 3 {
		t.Errorf("failed record = %d, want 3", de.Record)
	}
	if p.Len() != 3 {
		t.Errorf("buffered %d valid records, want 3", p.Len())
	}
	if !p.Drained() {
		t.Error("Drained should report true after the reader is abandoned")
	}
	// A clean trace reports no error after wrap-around.
	r2, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewReplay(r2)
	for i := 0; i < 10; i++ {
		p2.Next()
	}
	if p2.Err() != nil {
		t.Errorf("clean trace Err = %v", p2.Err())
	}
}
