// Package mmu composes a two-level TLB hierarchy, a hardware page-table
// walker, and the cache hierarchy into a memory-management unit with full
// latency and event accounting — the functional simulator of Sec 6.2.
//
// Every translation request flows L1 TLB → L2 TLB → page-table walk, with
// walker PTE reads going through the cache hierarchy (so walk cost depends
// on page-table locality, as on real hardware). Misses on unmapped
// addresses invoke a demand-paging callback (the OS layer) and re-walk.
package mmu

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// TranslationSource abstracts the page-table walker: the native
// pagetable.PageTable, or a nested (2D) walker for virtualized systems.
type TranslationSource interface {
	// Walk performs a hardware walk for va.
	Walk(va addr.V) pagetable.WalkResult
	// SetDirty sets the dirty bit of the leaf covering va (the micro-op
	// injected on a store through a non-dirty TLB entry).
	SetDirty(va addr.V) bool
}

// FaultHandler demand-maps va on a page fault, returning false if the
// address is invalid (a true segfault).
type FaultHandler func(va addr.V, write bool) bool

// Latencies configures the cycle model.
type Latencies struct {
	// L1Hit is charged for every request (the L1 TLB probe overlaps the
	// L1 cache access on real parts; this is its exposed cost).
	L1Hit uint64
	// L2Hit is the added cost of an L2 TLB probe round.
	L2Hit uint64
	// ExtraProbe is the added cost of each probe round beyond the first
	// (hash-rehash re-probes, predictor second rounds).
	ExtraProbe uint64
	// DirtyMicroOp is the cost of the injected PTE dirty-bit store.
	DirtyMicroOp uint64
}

// DefaultLatencies mirrors commercial parts (Sec 4: L2 TLBs take 5-7
// cycles). The dirty micro-op has no default exposed latency: it is a
// store to an (almost always L1D-resident) PTE line that retires off the
// original store's critical path. The paper accounts for it the same way
// — as added cache traffic, not runtime (Sec 4.4) — and the simulator
// still counts every micro-op for the energy model. Set DirtyMicroOp to
// model in-order or assist-based implementations that expose it.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 1, L2Hit: 7, ExtraProbe: 2, DirtyMicroOp: 0}
}

// Config assembles an MMU.
type Config struct {
	Name string
	L1   tlb.TLB
	L2   tlb.TLB // optional
	Lat  Latencies
	// FreeWalks makes misses cost nothing — used by the ideal-TLB
	// yardstick so its only cost is the L1 hit cycle.
	FreeWalks bool
}

// Stats aggregates the MMU's event counters.
type Stats struct {
	Accesses uint64
	L1Hits   uint64
	L2Hits   uint64
	Walks    uint64
	Faults   uint64

	Cycles     uint64 // total translation cycles
	WalkCycles uint64 // subset spent in page-table walks

	L1Lookup tlb.Cost // accumulated lookup costs
	L2Lookup tlb.Cost
	L1Fill   tlb.Cost // accumulated fill costs
	L2Fill   tlb.Cost

	WalkRefs      uint64 // PTE memory references issued by the walker
	DirtyMicroOps uint64
	Invalidations uint64
	Flushes       uint64

	// Fault-injection accounting (zero unless chaos/oracle attached).
	ECC              tlb.ECCStats
	PTECorruptions   uint64 // walker results corrupted in flight
	OracleMismatches uint64 // translations the oracle rejected
	OracleRecoveries uint64 // rejected translations later corrected
	// OracleUnrecovered counts accesses that stayed wrong after every
	// retry and the ground-truth fallback (only possible when the oracle's
	// own page table has no mapping — i.e. never, in a healthy run).
	OracleUnrecovered uint64
}

// maxOracleRetries bounds the scrub-and-retranslate loop when the oracle
// rejects a result; after that the oracle's ground truth is substituted so
// no wrong translation ever reaches the workload.
const maxOracleRetries = 3

// MMU is a simulated memory-management unit.
type MMU struct {
	cfg    Config
	src    TranslationSource
	caches *cachesim.Hierarchy
	fault  FaultHandler
	chaos  *chaos.Injector
	oracle *chaos.Oracle
	stats  Stats

	// pt is src when it is the native page table; it enables the fused
	// walk paths (WalkInto buffer reuse, single-traversal SetDirtyLine).
	pt *pagetable.PageTable
	// walkBuf is the reusable walk result for native sources, keeping
	// steady-state misses allocation-free. Nothing retains a walk past the
	// Translate call that produced it, so one buffer per MMU suffices.
	walkBuf pagetable.WalkResult
	// promoLine is the single-translation line used when an L2 hit without
	// bundle members promotes into the L1.
	promoLine [1]pagetable.Translation
	// lineBuf is the reusable PTE cache line for fused dirty-bit assists.
	lineBuf []pagetable.Translation

	// replayOK records whether the L1 design's lookups are
	// replay-consistent (tlb.ReplayConsistent); memoOK additionally
	// requires no chaos injector or oracle. memo caches the last pure L1
	// hit so consecutive accesses to the same 4KB page replay its exact
	// Result and Cost without re-probing.
	replayOK bool
	memoOK   bool
	memo     memoEntry

	// tel is the telemetry hook block, nil unless AttachTelemetry enabled
	// it; every use is a single nil-check branch.
	tel *mmuTel
}

// memoEntry captures one pure L1 hit (no fault, no dirty-bit transition)
// for replay on consecutive same-page accesses.
type memoEntry struct {
	valid  bool
	vpn4k  uint64 // 4KB virtual page number of the hit
	dirty  bool   // entry dirty bit (write replays require it set)
	size   addr.PageSize
	paBase addr.P // PA of the serving 4KB frame
	cycles uint64
	cost   tlb.Cost
}

// New builds an MMU. caches may be shared with other MMUs (e.g. GPU
// shader cores sharing an LLC); fault may be nil if every access is
// pre-mapped.
func New(cfg Config, src TranslationSource, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	if cfg.L1 == nil {
		return nil, fmt.Errorf("mmu %q: config needs an L1 TLB", cfg.Name)
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	m := &MMU{cfg: cfg, src: src, caches: caches, fault: fault}
	m.pt, _ = src.(*pagetable.PageTable)
	if rc, ok := cfg.L1.(tlb.ReplayConsistent); ok && rc.LookupReplayConsistent() {
		m.replayOK = true
	}
	m.memoOK = m.replayOK
	return m, nil
}

// refreshMemoOK recomputes the memo gate after chaos/oracle attachment:
// injected corruption and oracle retries make replayed results unsafe.
func (m *MMU) refreshMemoOK() {
	m.memo = memoEntry{}
	m.memoOK = m.replayOK && m.chaos == nil && m.oracle == nil
}

// DisableMemo turns the same-page replay memo off permanently (used by
// differential tests that compare memoized against memo-free runs).
func (m *MMU) DisableMemo() {
	m.replayOK = false
	m.refreshMemoOK()
}

// InjectFaults attaches a fault injector: TLB hits and walker results pass
// through it and may come back corrupted (detectably or silently).
func (m *MMU) InjectFaults(in *chaos.Injector) {
	m.chaos = in
	m.refreshMemoOK()
}

// AttachOracle attaches a translation oracle that cross-checks every
// non-faulting result against page-table ground truth.
func (m *MMU) AttachOracle(o *chaos.Oracle) {
	m.oracle = o
	m.refreshMemoOK()
}

// Name returns the MMU's configuration name.
func (m *MMU) Name() string { return m.cfg.Name }

// Stats returns a snapshot of the counters.
func (m *MMU) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (TLB and cache contents are retained),
// separating warm-up from measurement.
func (m *MMU) ResetStats() { m.stats = Stats{} }

// Result reports one translated access.
type Result struct {
	PA      addr.P
	Size    addr.PageSize // page size of the serving translation
	Cycles  uint64
	L1Hit   bool
	L2Hit   bool
	Walked  bool
	Faulted bool // unmapped and the fault handler refused
}

// provenance names the structure that served the result, for oracle
// diagnostics.
func (r Result) provenance() string {
	switch {
	case r.L1Hit:
		return "L1"
	case r.L2Hit:
		return "L2"
	case r.Walked:
		return "walk"
	default:
		return "fault"
	}
}

// Translate services one memory access. With an oracle attached, the
// result is cross-checked against page-table ground truth: a mismatch
// scrubs the offending entries from both TLB levels and re-translates,
// and after maxOracleRetries the oracle's own translation is substituted,
// so a workload never consumes a wrong physical address.
func (m *MMU) Translate(req tlb.Request) Result {
	if res, ok := m.replayMemo(req); ok {
		return res
	}
	m.stats.Accesses++
	res := m.translateOnce(req)
	if m.oracle == nil || res.Faulted {
		return res
	}
	mismatched := false
	for try := 0; try <= maxOracleRetries; try++ {
		mm := m.oracle.Check(m.cfg.Name, res.provenance(), req.VA, res.Size, res.PA)
		if mm == nil {
			if mismatched {
				m.stats.OracleRecoveries++
			}
			return res
		}
		mismatched = true
		m.stats.OracleMismatches++
		m.scrubCorrupt(req.VA, res.Size)
		if try < maxOracleRetries {
			res = m.translateOnce(req)
			if res.Faulted {
				return res
			}
		}
	}
	// Retries exhausted (persistent injection): serve the oracle's ground
	// truth rather than a corrupted translation.
	if tr, ok := m.oracle.GroundTruth(req.VA); ok {
		res.PA = tr.Translate(req.VA)
		res.Size = tr.Size
		m.stats.OracleRecoveries++
	} else {
		m.stats.OracleUnrecovered++
	}
	return res
}

// replayMemo serves a consecutive access to the last memoized 4KB page
// without re-probing the L1, replaying the exact Result, Cost, and cycle
// charge of the pure L1 hit that set the memo. Any non-matching access
// clears the memo: it only ever covers an unbroken same-page run, during
// which no TLB or page-table state changes (the L1 is replay-consistent
// by the memoOK gate, and writes replay only through already-dirty
// entries, so no dirty transition is skipped).
func (m *MMU) replayMemo(req tlb.Request) (Result, bool) {
	if !m.memo.valid {
		return Result{}, false
	}
	if uint64(req.VA)>>addr.Shift4K != m.memo.vpn4k || (req.Write && !m.memo.dirty) {
		m.memo.valid = false
		return Result{}, false
	}
	m.stats.Accesses++
	m.stats.L1Hits++
	m.stats.L1Lookup.Add(m.memo.cost)
	m.stats.Cycles += m.memo.cycles
	if m.tel != nil {
		m.tel.memoHits.Inc()
	}
	return Result{
		PA:     m.memo.paBase + addr.P(uint64(req.VA)&((1<<addr.Shift4K)-1)),
		Size:   m.memo.size,
		Cycles: m.memo.cycles,
		L1Hit:  true,
	}, true
}

// TranslateBatch translates reqs[i] into out[i], amortizing per-call
// overhead across the batch. It stops after writing the first faulted
// result and returns the number of results produced (len(reqs) when none
// faulted). out must be at least as long as reqs.
func (m *MMU) TranslateBatch(reqs []tlb.Request, out []Result) int {
	out = out[:len(reqs)]
	for i := range reqs {
		r, ok := m.replayMemo(reqs[i])
		if !ok {
			r = m.Translate(reqs[i])
		}
		out[i] = r
		if r.Faulted {
			return i + 1
		}
	}
	return len(reqs)
}

// translateOnce runs one full L1 → L2 → walk translation attempt,
// including fault injection at each layer.
func (m *MMU) translateOnce(req tlb.Request) Result {
	var res Result
	res.Cycles = m.cfg.Lat.L1Hit

	r1 := m.cfg.L1.Lookup(req)
	m.stats.L1Lookup.Add(r1.Cost)
	if r1.Cost.Probes > 1 {
		res.Cycles += uint64(r1.Cost.Probes-1) * m.cfg.Lat.ExtraProbe
	}
	if r1.Hit {
		switch m.chaos.CorruptTLBHit(&r1.T) {
		case chaos.FaultDetected:
			// Parity caught the flipped bit: scrub and fall through to
			// the L2/walk path as if the entry had never been there.
			m.stats.ECC.ParityDetected++
			m.stats.ECC.Rewalks++
			m.scrubCorrupt(req.VA, r1.T.Size)
			r1.Hit = false
		case chaos.FaultSilent:
			m.stats.ECC.SilentCorruptions++
		}
	}
	if r1.Hit {
		m.stats.L1Hits++
		res.L1Hit = true
		res.PA = r1.T.Translate(req.VA)
		res.Size = r1.T.Size
		m.handleDirty(req, r1.Dirty, &res, nil)
		m.stats.Cycles += res.Cycles
		if m.memoOK && (!req.Write || r1.Dirty) {
			// A pure hit (no dirty transition): memoize it so consecutive
			// same-page accesses replay without re-probing.
			m.memo = memoEntry{
				valid:  true,
				vpn4k:  uint64(req.VA) >> addr.Shift4K,
				dirty:  r1.Dirty,
				size:   res.Size,
				paBase: res.PA &^ ((1 << addr.Shift4K) - 1),
				cycles: res.Cycles,
				cost:   r1.Cost,
			}
		}
		return res
	}

	if m.cfg.L2 != nil {
		r2 := m.cfg.L2.Lookup(req)
		m.stats.L2Lookup.Add(r2.Cost)
		res.Cycles += m.cfg.Lat.L2Hit
		if r2.Cost.Probes > 1 {
			res.Cycles += uint64(r2.Cost.Probes-1) * m.cfg.Lat.ExtraProbe
		}
		if r2.Hit {
			switch m.chaos.CorruptTLBHit(&r2.T) {
			case chaos.FaultDetected:
				m.stats.ECC.ParityDetected++
				m.stats.ECC.Rewalks++
				m.scrubCorrupt(req.VA, r2.T.Size)
				r2.Hit = false
			case chaos.FaultSilent:
				m.stats.ECC.SilentCorruptions++
			}
		}
		if r2.Hit {
			m.stats.L2Hits++
			res.L2Hit = true
			res.PA = r2.T.Translate(req.VA)
			res.Size = r2.T.Size
			// Promote into L1: hardware refills the L1 from the L2
			// entry, carrying the entry's whole coalesced membership.
			// Mirroring designs fill only the probed set here.
			m.promoLine[0] = r2.T
			line := m.promoLine[:]
			if bp, ok := m.cfg.L2.(tlb.BundleProvider); ok {
				if members := bp.Members(req.VA); len(members) > 0 {
					line = members
				}
			}
			if p, ok := m.cfg.L1.(tlb.Promoter); ok {
				m.stats.L1Fill.Add(p.Promote(req, r2.T, line))
			} else {
				m.stats.L1Fill.Add(m.cfg.L1.Fill(req, pagetable.WalkResult{
					Found: true, Translation: r2.T, Line: line,
				}))
			}
			m.handleDirty(req, r2.Dirty, &res, nil)
			m.stats.Cycles += res.Cycles
			return res
		}
	}

	walk := m.walk(req, &res)
	if !walk.Found {
		res.Faulted = true
		m.stats.Faults++
		m.stats.Cycles += res.Cycles
		return res
	}
	if m.chaos.CorruptWalk(walk) {
		m.stats.PTECorruptions++
	}
	res.Walked = true
	res.PA = walk.Translation.Translate(req.VA)
	res.Size = walk.Translation.Size
	if m.cfg.L2 != nil {
		m.stats.L2Fill.Add(m.cfg.L2.Fill(req, *walk))
	}
	m.stats.L1Fill.Add(m.cfg.L1.Fill(req, *walk))
	m.handleDirty(req, walk.Translation.Dirty, &res, walk)
	m.stats.Cycles += res.Cycles
	return res
}

// scrubCorrupt evicts the (presumed corrupted) entries covering va from
// both levels. TLBs exposing tlb.Scrubber drop the whole bundle; others
// fall back to an ordinary invalidation.
func (m *MMU) scrubCorrupt(va addr.V, size addr.PageSize) {
	scrub := func(t tlb.TLB) {
		if t == nil {
			return
		}
		if s, ok := t.(tlb.Scrubber); ok {
			m.stats.ECC.Scrubbed += uint64(s.ScrubCorrupt(va, size))
			return
		}
		m.stats.ECC.Scrubbed += uint64(t.Invalidate(va, size))
	}
	scrub(m.cfg.L1)
	scrub(m.cfg.L2)
}

// walk runs the hardware walker (and demand paging on a fault), charging
// each PTE reference through the cache hierarchy. The returned result
// points at the MMU's reusable buffer for native sources; it is consumed
// within the enclosing Translate call and never retained.
func (m *MMU) walk(req tlb.Request, res *Result) *pagetable.WalkResult {
	m.stats.Walks++
	walk := &m.walkBuf
	if m.pt != nil {
		m.pt.WalkInto(req.VA, walk)
		if m.tel != nil {
			m.tel.walkFused.Inc()
		}
	} else {
		*walk = m.src.Walk(req.VA)
		if m.tel != nil {
			m.tel.walkScalar.Inc()
		}
	}
	if !walk.Found && m.fault != nil && m.fault(req.VA, req.Write) {
		// Demand paging succeeded; the re-walk models the hardware retry
		// after the OS returns. (OS fault-handling time itself is not
		// part of the address-translation cost the paper measures.)
		if m.pt != nil {
			m.pt.WalkInto(req.VA, walk)
		} else {
			*walk = m.src.Walk(req.VA)
		}
	}
	if !m.cfg.FreeWalks {
		start := res.Cycles
		for _, pa := range walk.Accesses {
			m.stats.WalkRefs++
			c := m.caches.Access(pa)
			res.Cycles += c.Cycles
			m.stats.WalkCycles += c.Cycles
		}
		if m.tel != nil {
			m.tel.walkDepth.Observe(uint64(len(walk.Accesses)))
			m.tel.walkCycles.Observe(res.Cycles - start)
		}
	}
	return walk
}

// handleDirty implements the store path of Sec 4.4: a store through an
// entry whose dirty bit is clear injects a micro-op that updates the PTE's
// dirty bit, then lets the TLBs set their entry bits where their policy
// permits (always for 4KB entries; only singleton bundles for MIX/COLT).
//
// walk, when non-nil, is the just-completed miss walk for req.VA: its leaf
// handle lets the assist set the D bit without re-traversing, and its Line
// already holds the PTE cache line (only the demanded entry's Dirty bit
// needs patching). Chaos injection can corrupt walk results, so fusion is
// bypassed whenever an injector is attached.
func (m *MMU) handleDirty(req tlb.Request, entryDirty bool, res *Result, walk *pagetable.WalkResult) {
	if !req.Write || entryDirty {
		return
	}
	m.stats.DirtyMicroOps++
	res.Cycles += m.cfg.Lat.DirtyMicroOp
	// The assist read the PTE's cache line to write the D bit; coalescing
	// TLBs use the neighbouring D bits to refresh bundle dirty state
	// (free: the access already happened and is priced above).
	var line []pagetable.Translation
	switch {
	case walk != nil && walk.Leaf.Valid() && m.pt != nil && m.chaos == nil:
		// Fused: the miss walk already located the leaf entry.
		walk.Leaf.SetDirty()
		for i := range walk.Line {
			if walk.Line[i].VA == walk.Translation.VA {
				walk.Line[i].Dirty = true
			}
		}
		line = walk.Line
		if m.tel != nil {
			m.tel.dirtyFused.Inc()
		}
	case m.pt != nil:
		m.lineBuf = m.pt.SetDirtyLine(req.VA, m.lineBuf)
		line = m.lineBuf
		if m.tel != nil {
			m.tel.dirtyScalar.Inc()
		}
	default:
		m.src.SetDirty(req.VA)
		line = m.src.Walk(req.VA).Line
		if m.tel != nil {
			m.tel.dirtyGeneric.Inc()
		}
	}
	refresh := func(t tlb.TLB) {
		if r, ok := t.(tlb.DirtyRefresher); ok {
			r.RefreshDirty(req.VA, line)
		} else {
			t.MarkDirty(req.VA)
		}
	}
	refresh(m.cfg.L1)
	if m.cfg.L2 != nil {
		refresh(m.cfg.L2)
	}
}

// Invalidate performs a TLB shootdown for one page in both levels.
func (m *MMU) Invalidate(va addr.V, size addr.PageSize) {
	m.stats.Invalidations++
	m.memo = memoEntry{}
	m.cfg.L1.Invalidate(va, size)
	if m.cfg.L2 != nil {
		m.cfg.L2.Invalidate(va, size)
	}
}

// Flush empties both TLB levels.
func (m *MMU) Flush() {
	m.stats.Flushes++
	m.memo = memoEntry{}
	m.cfg.L1.Flush()
	if m.cfg.L2 != nil {
		m.cfg.L2.Flush()
	}
}

// MissRatio returns overall TLB miss ratio (walks / accesses).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Walks) / float64(s.Accesses)
}

// CyclesPerAccess returns average translation cycles per access.
func (s Stats) CyclesPerAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Accesses)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("acc=%d l1=%.2f%% l2=%.2f%% walks=%d cyc/acc=%.2f",
		s.Accesses,
		100*float64(s.L1Hits)/max1(s.Accesses),
		100*float64(s.L2Hits)/max1(s.Accesses),
		s.Walks, s.CyclesPerAccess())
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
