// Package mmu composes an N-level TLB hierarchy, a hardware page-table
// walker (optionally fronted by paging-structure caches), and the cache
// hierarchy into a memory-management unit with full latency and event
// accounting — the functional simulator of Sec 6.2.
//
// Every translation request flows through the ordered hierarchy levels
// (the paper's fixed L1 TLB → L2 TLB pipeline is the two-level instance),
// then to the page-table walk, with walker PTE reads going through the
// cache hierarchy (so walk cost depends on page-table locality, as on
// real hardware). Misses on unmapped addresses invoke a demand-paging
// callback (the OS layer) and re-walk.
//
// Designs are data: a DesignSpec names the level stack, its geometry, and
// whether the walker carries paging-structure caches, and the Registry
// turns validated specs into MMUs. The hand-written constructors this
// package used to carry are now registry entries.
package mmu

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/ledger"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/pwc"
	"mixtlb/internal/tlb"
)

// TranslationSource abstracts the page-table walker: the native
// pagetable.PageTable, or a nested (2D) walker for virtualized systems.
type TranslationSource interface {
	// Walk performs a hardware walk for va.
	Walk(va addr.V) pagetable.WalkResult
	// SetDirty sets the dirty bit of the leaf covering va (the micro-op
	// injected on a store through a non-dirty TLB entry).
	SetDirty(va addr.V) bool
}

// FaultHandler demand-maps va on a page fault, returning false if the
// address is invalid (a true segfault).
type FaultHandler func(va addr.V, write bool) bool

// Latencies configures the cycle model.
type Latencies struct {
	// L1Hit is charged for every request (the first level's probe overlaps
	// the L1 cache access on real parts; this is its exposed cost).
	L1Hit uint64
	// L2Hit is the added cost of each probe round beyond the first level
	// (any deeper level without its own HitLatency override).
	L2Hit uint64
	// ExtraProbe is the added cost of each probe round beyond the first
	// (hash-rehash re-probes, predictor second rounds).
	ExtraProbe uint64
	// DirtyMicroOp is the cost of the injected PTE dirty-bit store.
	DirtyMicroOp uint64
}

// DefaultLatencies mirrors commercial parts (Sec 4: L2 TLBs take 5-7
// cycles). The dirty micro-op has no default exposed latency: it is a
// store to an (almost always L1D-resident) PTE line that retires off the
// original store's critical path. The paper accounts for it the same way
// — as added cache traffic, not runtime (Sec 4.4) — and the simulator
// still counts every micro-op for the energy model. Set DirtyMicroOp to
// model in-order or assist-based implementations that expose it.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 1, L2Hit: 7, ExtraProbe: 2, DirtyMicroOp: 0}
}

// Level is one hierarchy level of a Config: a TLB plus its probe cost.
type Level struct {
	TLB tlb.TLB
	// HitLatency is the added cost of probing this level. Zero selects
	// the default: Lat.L1Hit for the first level (charged on every
	// request), Lat.L2Hit for every deeper level.
	HitLatency uint64
}

// L wraps TLBs into a Level slice with default latencies, skipping nils —
// the compact spelling callers use for ad-hoc hierarchies: L(l1, l2).
func L(tlbs ...tlb.TLB) []Level {
	levels := make([]Level, 0, len(tlbs))
	for _, t := range tlbs {
		if t != nil {
			levels = append(levels, Level{TLB: t})
		}
	}
	return levels
}

// Config assembles an MMU.
type Config struct {
	Name string
	// Levels is the ordered translation hierarchy, probed first to last.
	// At least one level is required.
	Levels []Level
	Lat    Latencies
	// PWC, when non-nil, attaches paging-structure caches to the walker:
	// walks skip the upper-level PTE references a cached prefix supplies.
	// Never share one cache across address spaces.
	PWC *pwc.Cache
	// FreeWalks makes misses cost nothing — used by the ideal-TLB
	// yardstick so its only cost is the first-level hit cycle.
	FreeWalks bool
}

// Stats aggregates the MMU's event counters. The L1/L2 fields describe
// the first two hierarchy levels (every design in the paper has at most
// two); DeepHits folds any third-or-deeper level in, and per-level detail
// for arbitrary hierarchies comes from MMU.LevelStats.
type Stats struct {
	Accesses uint64
	L1Hits   uint64
	L2Hits   uint64
	DeepHits uint64 // hits at hierarchy levels beyond the second
	Walks    uint64
	Faults   uint64

	// ContigWalks counts walks whose leaf carried the ISA's hardware
	// contiguity encoding (SVNAPOT range / ARM64 contiguous-hint block).
	// Always zero on descriptors without one, including default x86-64.
	ContigWalks uint64

	Cycles     uint64 // total translation cycles
	WalkCycles uint64 // subset spent in page-table walks

	L1Lookup tlb.Cost // accumulated lookup costs
	L2Lookup tlb.Cost
	L1Fill   tlb.Cost // accumulated fill costs
	L2Fill   tlb.Cost

	WalkRefs      uint64 // PTE memory references issued by the walker
	DirtyMicroOps uint64
	Invalidations uint64
	Flushes       uint64

	// Paging-structure-cache accounting (zero unless the design has one).
	PWCHits        uint64 // walks that short-circuited upper levels
	PWCMisses      uint64 // walks the caches could not shorten
	PWCSkippedRefs uint64 // upper-level PTE references never issued

	// Victim-level accounting (zero unless the hierarchy ends in a
	// cache-resident victim level; see tlb.Victim).
	Demotions         uint64 // evicted feeder entries the victim level absorbed
	DemotionDrops     uint64 // evicted entries the victim level refused (e.g. 1GB)
	VictimEvictions   uint64 // victim-level PTEs displaced by absorbing demotions
	VictimProbes      uint64 // victim-level probes issued (hits and misses)
	VictimProbeCycles uint64 // cycles those probes spent in the data caches

	// Fault-injection accounting (zero unless chaos/oracle attached).
	ECC              tlb.ECCStats
	PTECorruptions   uint64 // walker results corrupted in flight
	OracleMismatches uint64 // translations the oracle rejected
	OracleRecoveries uint64 // rejected translations later corrected
	// OracleUnrecovered counts accesses that stayed wrong after every
	// retry and the ground-truth fallback (only possible when the oracle's
	// own page table has no mapping — i.e. never, in a healthy run).
	OracleUnrecovered uint64
}

// LevelStat is one hierarchy level's share of the counters, for reports
// that want per-level detail at any depth.
type LevelStat struct {
	Name   string // the level's TLB name
	Hits   uint64
	Lookup tlb.Cost
	Fill   tlb.Cost
}

// maxOracleRetries bounds the scrub-and-retranslate loop when the oracle
// rejects a result; after that the oracle's ground truth is substituted so
// no wrong translation ever reaches the workload.
const maxOracleRetries = 3

// hierLevel is one level's runtime state: its TLB, probe cost, counters,
// and the optional interfaces pre-asserted once at construction so the
// hot path never repeats a type switch.
type hierLevel struct {
	tlb tlb.TLB
	lat uint64 // cycles charged when this level is probed

	hits   uint64
	lookup tlb.Cost
	fill   tlb.Cost

	promoter  tlb.Promoter
	bundler   tlb.BundleProvider
	refresher tlb.DirtyRefresher
	scrubber  tlb.Scrubber
	demoter   tlb.Demoter
	cacheRes  tlb.CacheResident
}

// MMU is a simulated memory-management unit.
type MMU struct {
	cfg    Config
	levels []hierLevel
	src    TranslationSource
	caches *cachesim.Hierarchy
	fault  FaultHandler
	chaos  *chaos.Injector
	oracle *chaos.Oracle
	pwc    *pwc.Cache
	stats  Stats

	// pt is src when it is the native page table; it enables the fused
	// walk paths (WalkInto buffer reuse, single-traversal SetDirtyLine).
	pt *pagetable.PageTable
	// walkBuf is the reusable walk result for native sources, keeping
	// steady-state misses allocation-free. Nothing retains a walk past the
	// Translate call that produced it, so one buffer per MMU suffices.
	walkBuf pagetable.WalkResult
	// promoLine is the single-translation line used when a deeper-level
	// hit without bundle members promotes into the levels above it.
	promoLine [1]pagetable.Translation
	// lineBuf is the reusable PTE cache line for fused dirty-bit assists.
	lineBuf []pagetable.Translation

	// replayOK records whether the first level's lookups are
	// replay-consistent (tlb.ReplayConsistent); memoOK additionally
	// requires no chaos injector or oracle. memo caches the last pure
	// first-level hit so consecutive accesses to the same 4KB page replay
	// its exact Result and Cost without re-probing.
	replayOK bool
	memoOK   bool
	memo     memoEntry

	// tel is the telemetry hook block, nil unless AttachTelemetry enabled
	// it; every use is a single nil-check branch.
	tel *mmuTel
	// led is the cycle-attribution ledger, nil unless AttachLedger
	// enabled it; like tel, every use is a single nil-check branch and
	// it observes charges without ever influencing them.
	led *ledger.Ledger
}

// memoEntry captures one pure first-level hit (no fault, no dirty-bit
// transition) for replay on consecutive same-page accesses.
type memoEntry struct {
	valid  bool
	vpn4k  uint64 // 4KB virtual page number of the hit
	dirty  bool   // entry dirty bit (write replays require it set)
	size   addr.PageSize
	paBase addr.P // PA of the serving 4KB frame
	cycles uint64
	cost   tlb.Cost
}

// New builds an MMU. caches may be shared with other MMUs (e.g. GPU
// shader cores sharing an LLC); fault may be nil if every access is
// pre-mapped.
func New(cfg Config, src TranslationSource, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("mmu %q: config needs at least one hierarchy level", cfg.Name)
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	m := &MMU{cfg: cfg, src: src, caches: caches, fault: fault, pwc: cfg.PWC}
	m.levels = make([]hierLevel, len(cfg.Levels))
	for i, l := range cfg.Levels {
		if l.TLB == nil {
			return nil, fmt.Errorf("mmu %q: hierarchy level %d has no TLB", cfg.Name, i)
		}
		lat := l.HitLatency
		if lat == 0 {
			if i == 0 {
				lat = cfg.Lat.L1Hit
			} else {
				lat = cfg.Lat.L2Hit
			}
		}
		lv := &m.levels[i]
		lv.tlb = l.TLB
		lv.lat = lat
		lv.promoter, _ = l.TLB.(tlb.Promoter)
		lv.bundler, _ = l.TLB.(tlb.BundleProvider)
		lv.refresher, _ = l.TLB.(tlb.DirtyRefresher)
		lv.scrubber, _ = l.TLB.(tlb.Scrubber)
		lv.demoter, _ = l.TLB.(tlb.Demoter)
		lv.cacheRes, _ = l.TLB.(tlb.CacheResident)
	}
	if last := len(m.levels) - 1; m.levels[last].demoter != nil {
		// A demotion-fed victim level is filled only by capacity evictions
		// from the level directly above it; wire that feed now so the hot
		// path never checks for it.
		if last == 0 {
			return nil, fmt.Errorf("mmu %q: a demotion-fed victim level cannot be the only hierarchy level", cfg.Name)
		}
		en, ok := m.levels[last-1].tlb.(tlb.EvictionNotifier)
		if !ok {
			return nil, fmt.Errorf("mmu %q: level %d (%s) feeds the victim level by demotion but cannot report evictions",
				cfg.Name, last-1, m.levels[last-1].tlb.Name())
		}
		en.SetEvictionSink(m.demote)
	}
	m.pt, _ = src.(*pagetable.PageTable)
	if rc, ok := m.levels[0].tlb.(tlb.ReplayConsistent); ok && rc.LookupReplayConsistent() {
		m.replayOK = true
	}
	m.memoOK = m.replayOK
	return m, nil
}

// refreshMemoOK recomputes the memo gate after chaos/oracle attachment:
// injected corruption and oracle retries make replayed results unsafe.
func (m *MMU) refreshMemoOK() {
	m.memo = memoEntry{}
	m.memoOK = m.replayOK && m.chaos == nil && m.oracle == nil
}

// DisableMemo turns the same-page replay memo off permanently (used by
// differential tests that compare memoized against memo-free runs).
func (m *MMU) DisableMemo() {
	m.replayOK = false
	m.refreshMemoOK()
}

// InjectFaults attaches a fault injector: TLB hits and walker results pass
// through it and may come back corrupted (detectably or silently).
func (m *MMU) InjectFaults(in *chaos.Injector) {
	m.chaos = in
	m.refreshMemoOK()
}

// AttachOracle attaches a translation oracle that cross-checks every
// non-faulting result against page-table ground truth.
func (m *MMU) AttachOracle(o *chaos.Oracle) {
	m.oracle = o
	m.refreshMemoOK()
}

// Name returns the MMU's configuration name.
func (m *MMU) Name() string { return m.cfg.Name }

// Depth returns the number of hierarchy levels.
func (m *MMU) Depth() int { return len(m.levels) }

// LevelTLBs returns the hierarchy's TLBs in probe order — a fresh slice,
// for introspection (reach snapshots, invariant checks); the simulation
// itself never calls it.
func (m *MMU) LevelTLBs() []tlb.TLB {
	out := make([]tlb.TLB, len(m.levels))
	for i := range m.levels {
		out[i] = m.levels[i].tlb
	}
	return out
}

// PWC exposes the attached paging-structure cache, nil when the design
// has none.
func (m *MMU) PWC() *pwc.Cache { return m.pwc }

// Stats returns a snapshot of the counters, folding the per-level
// counters into the legacy two-level fields.
func (m *MMU) Stats() Stats {
	s := m.stats
	s.L1Hits = m.levels[0].hits
	s.L1Lookup = m.levels[0].lookup
	s.L1Fill = m.levels[0].fill
	if len(m.levels) > 1 {
		s.L2Hits = m.levels[1].hits
		s.L2Lookup = m.levels[1].lookup
		s.L2Fill = m.levels[1].fill
	}
	for i := 2; i < len(m.levels); i++ {
		s.DeepHits += m.levels[i].hits
	}
	return s
}

// LevelStats returns each hierarchy level's counters in probe order. The
// slice is a fresh snapshot; callers may retain it.
func (m *MMU) LevelStats() []LevelStat {
	out := make([]LevelStat, len(m.levels))
	for i := range m.levels {
		lv := &m.levels[i]
		out[i] = LevelStat{Name: lv.tlb.Name(), Hits: lv.hits, Lookup: lv.lookup, Fill: lv.fill}
	}
	return out
}

// ResetStats zeroes the counters (TLB and cache contents are retained),
// separating warm-up from measurement.
func (m *MMU) ResetStats() {
	m.stats = Stats{}
	for i := range m.levels {
		lv := &m.levels[i]
		lv.hits, lv.lookup, lv.fill = 0, tlb.Cost{}, tlb.Cost{}
	}
	if m.pwc != nil {
		m.pwc.ResetStats()
	}
	if m.led != nil {
		m.led.Reset()
	}
}

// Result reports one translated access.
type Result struct {
	PA   addr.P
	Size addr.PageSize // page size of the serving translation
	// HitLevel is the hierarchy level that served the hit (0 = first
	// level), or -1 when the access walked or faulted.
	HitLevel int8
	Cycles   uint64
	L1Hit    bool // HitLevel == 0
	L2Hit    bool // HitLevel == 1
	Walked   bool
	Faulted  bool // unmapped and the fault handler refused
}

// provenance names the structure that served the result, for oracle
// diagnostics.
func (r Result) provenance() string {
	switch {
	case r.HitLevel == 0:
		return "L1"
	case r.HitLevel == 1:
		return "L2"
	case r.HitLevel > 1:
		return fmt.Sprintf("L%d", r.HitLevel+1)
	case r.Walked:
		return "walk"
	default:
		return "fault"
	}
}

// Translate services one memory access. With an oracle attached, the
// result is cross-checked against page-table ground truth: a mismatch
// scrubs the offending entries from every hierarchy level and
// re-translates, and after maxOracleRetries the oracle's own translation
// is substituted, so a workload never consumes a wrong physical address.
func (m *MMU) Translate(req tlb.Request) Result {
	if res, ok := m.replayMemo(req); ok {
		return res
	}
	m.stats.Accesses++
	if m.led == nil {
		return m.translateChecked(req)
	}
	m.led.Begin()
	res := m.translateChecked(req)
	m.led.End(uint64(req.VA), res.Size, res.HitLevel, res.Faulted)
	return res
}

// translateChecked is Translate's body after the memo and ledger
// bookkeeping: one hierarchy pass plus the oracle's scrub-and-retry loop.
// Retry passes run with the ledger's charges redirected to its
// chaos-retry category — their cycles are the cost of the injected
// fault, not of the design.
func (m *MMU) translateChecked(req tlb.Request) Result {
	res := m.translateOnce(req)
	if m.oracle == nil || res.Faulted {
		return res
	}
	mismatched := false
	for try := 0; try <= maxOracleRetries; try++ {
		mm := m.oracle.Check(m.cfg.Name, res.provenance(), req.VA, res.Size, res.PA)
		if mm == nil {
			if mismatched {
				m.stats.OracleRecoveries++
			}
			return res
		}
		mismatched = true
		m.stats.OracleMismatches++
		m.scrubCorrupt(req.VA, res.Size)
		if try < maxOracleRetries {
			if m.led != nil {
				m.led.SetRetry(true)
			}
			res = m.translateOnce(req)
			if m.led != nil {
				m.led.SetRetry(false)
			}
			if res.Faulted {
				return res
			}
		}
	}
	// Retries exhausted (persistent injection): serve the oracle's ground
	// truth rather than a corrupted translation.
	if tr, ok := m.oracle.GroundTruth(req.VA); ok {
		res.PA = tr.Translate(req.VA)
		res.Size = tr.Size
		m.stats.OracleRecoveries++
	} else {
		m.stats.OracleUnrecovered++
	}
	return res
}

// replayMemo serves a consecutive access to the last memoized 4KB page
// without re-probing the first level, replaying the exact Result, Cost,
// and cycle charge of the pure hit that set the memo. Any non-matching
// access clears the memo: it only ever covers an unbroken same-page run,
// during which no TLB or page-table state changes (the first level is
// replay-consistent by the memoOK gate, and writes replay only through
// already-dirty entries, so no dirty transition is skipped).
func (m *MMU) replayMemo(req tlb.Request) (Result, bool) {
	if !m.memo.valid {
		return Result{}, false
	}
	if uint64(req.VA)>>addr.Shift4K != m.memo.vpn4k || (req.Write && !m.memo.dirty) {
		m.memo.valid = false
		return Result{}, false
	}
	m.stats.Accesses++
	m.levels[0].hits++
	m.levels[0].lookup.Add(m.memo.cost)
	m.stats.Cycles += m.memo.cycles
	if m.tel != nil {
		m.tel.memoHits.Inc()
	}
	if m.led != nil {
		m.led.Begin()
		m.led.Charge(ledger.MemoReplay, m.memo.cycles)
		m.led.End(uint64(req.VA), m.memo.size, 0, false)
	}
	return Result{
		PA:     m.memo.paBase + addr.P(uint64(req.VA)&((1<<addr.Shift4K)-1)),
		Size:   m.memo.size,
		Cycles: m.memo.cycles,
		L1Hit:  true,
	}, true
}

// TranslateBatch translates reqs[i] into out[i], amortizing per-call
// overhead across the batch. It stops after writing the first faulted
// result and returns the number of results produced (len(reqs) when none
// faulted). out must be at least as long as reqs.
func (m *MMU) TranslateBatch(reqs []tlb.Request, out []Result) int {
	out = out[:len(reqs)]
	for i := range reqs {
		r, ok := m.replayMemo(reqs[i])
		if !ok {
			r = m.Translate(reqs[i])
		}
		out[i] = r
		if r.Faulted {
			return i + 1
		}
	}
	return len(reqs)
}

// translateOnce runs one full probe of the hierarchy — first level to
// last, then the page-table walk — including fault injection at each
// layer.
func (m *MMU) translateOnce(req tlb.Request) Result {
	var res Result
	res.HitLevel = -1
	for li := range m.levels {
		lv := &m.levels[li]
		if lv.cacheRes == nil {
			res.Cycles += lv.lat
			if m.led != nil {
				m.led.ChargeProbe(li, lv.lat)
			}
		}
		r := lv.tlb.Lookup(req)
		if lv.cacheRes != nil {
			// A cache-resident victim level has no SRAM latency of its
			// own: each probe is a data-cache access to the storage lines
			// it read (which also fills them — the cache pollution Victima
			// pays is modeled, not abstracted away).
			m.chargeCacheProbes(lv, &res)
		}
		lv.lookup.Add(r.Cost)
		if r.Cost.Probes > 1 && lv.cacheRes == nil {
			extra := uint64(r.Cost.Probes-1) * m.cfg.Lat.ExtraProbe
			res.Cycles += extra
			if m.led != nil {
				m.led.Charge(ledger.ExtraProbe, extra)
			}
		}
		if r.Hit {
			switch m.chaos.CorruptTLBHit(&r.T) {
			case chaos.FaultDetected:
				// Parity caught the flipped bit: scrub and fall through
				// to the deeper levels as if the entry had never been
				// there.
				m.stats.ECC.ParityDetected++
				m.stats.ECC.Rewalks++
				m.scrubCorrupt(req.VA, r.T.Size)
				r.Hit = false
			case chaos.FaultSilent:
				m.stats.ECC.SilentCorruptions++
			}
		}
		if !r.Hit {
			continue
		}
		lv.hits++
		res.HitLevel = int8(li)
		res.L1Hit = li == 0
		res.L2Hit = li == 1
		res.PA = r.T.Translate(req.VA)
		res.Size = r.T.Size
		if li > 0 {
			// Promote into every level above the hit: hardware refills
			// the upper levels from the hit entry, carrying the entry's
			// whole coalesced membership. Mirroring designs fill only the
			// probed set here.
			m.promoLine[0] = r.T
			line := m.promoLine[:]
			if lv.bundler != nil {
				if members := lv.bundler.Members(req.VA); len(members) > 0 {
					line = members
				}
			}
			for j := li - 1; j >= 0; j-- {
				up := &m.levels[j]
				if up.promoter != nil {
					up.fill.Add(up.promoter.Promote(req, r.T, line))
				} else {
					up.fill.Add(up.tlb.Fill(req, pagetable.WalkResult{
						Found: true, Translation: r.T, Line: line,
					}))
				}
			}
			if lv.demoter != nil {
				// Move semantics for the victim level: the served page is
				// now resident above, so drop it here — a future eviction
				// will demote it back. (Promotions above may themselves
				// have demoted a displaced feeder entry into this level;
				// that happens before this invalidate and never concerns
				// the served page, which the feeder exclusively lacked.)
				lv.tlb.Invalidate(req.VA, r.T.Size)
			}
		}
		m.handleDirty(req, r.Dirty, &res, nil)
		m.stats.Cycles += res.Cycles
		if li == 0 && m.memoOK && (!req.Write || r.Dirty) {
			// A pure first-level hit (no dirty transition): memoize it so
			// consecutive same-page accesses replay without re-probing.
			m.memo = memoEntry{
				valid:  true,
				vpn4k:  uint64(req.VA) >> addr.Shift4K,
				dirty:  r.Dirty,
				size:   res.Size,
				paBase: res.PA &^ ((1 << addr.Shift4K) - 1),
				cycles: res.Cycles,
				cost:   r.Cost,
			}
		}
		return res
	}

	walk := m.walk(req, &res)
	if !walk.Found {
		res.Faulted = true
		m.stats.Faults++
		m.stats.Cycles += res.Cycles
		return res
	}
	if m.chaos.CorruptWalk(walk) {
		m.stats.PTECorruptions++
	}
	res.Walked = true
	res.PA = walk.Translation.Translate(req.VA)
	res.Size = walk.Translation.Size
	// Fill deepest level first, mirroring the hardware refill order (the
	// walk response installs in the last level, then propagates up).
	for li := len(m.levels) - 1; li >= 0; li-- {
		m.levels[li].fill.Add(m.levels[li].tlb.Fill(req, *walk))
	}
	m.handleDirty(req, walk.Translation.Dirty, &res, walk)
	m.stats.Cycles += res.Cycles
	return res
}

// chargeCacheProbes prices a cache-resident level's probe: one data-cache
// access per storage line the lookup read. Without a cache hierarchy the
// level's configured latency stands in.
func (m *MMU) chargeCacheProbes(lv *hierLevel, res *Result) {
	m.stats.VictimProbes++
	start := res.Cycles
	if m.caches == nil {
		res.Cycles += lv.lat
		m.stats.VictimProbeCycles += lv.lat
	} else {
		for _, pa := range lv.cacheRes.ProbedLines() {
			c := m.caches.Access(pa)
			res.Cycles += c.Cycles
			m.stats.VictimProbeCycles += c.Cycles
		}
	}
	if m.led != nil {
		m.led.Charge(ledger.VictimProbe, res.Cycles-start)
	}
}

// demote is the eviction sink wired from the victim level's feeder: a
// capacity-displaced feeder entry either lands in the victim level or is
// accounted as a drop, and any victim-level entries displaced in turn are
// counted — together the books the demotion-conservation property audits.
func (m *MMU) demote(t pagetable.Translation, dirty bool) {
	absorbed, evicted := m.levels[len(m.levels)-1].demoter.Demote(t, dirty)
	if absorbed {
		m.stats.Demotions++
	} else {
		m.stats.DemotionDrops++
	}
	m.stats.VictimEvictions += uint64(evicted)
}

// scrubCorrupt evicts the (presumed corrupted) entries covering va from
// every hierarchy level. TLBs exposing tlb.Scrubber drop the whole
// bundle; others fall back to an ordinary invalidation.
func (m *MMU) scrubCorrupt(va addr.V, size addr.PageSize) {
	for li := range m.levels {
		lv := &m.levels[li]
		if lv.scrubber != nil {
			m.stats.ECC.Scrubbed += uint64(lv.scrubber.ScrubCorrupt(va, size))
		} else {
			m.stats.ECC.Scrubbed += uint64(lv.tlb.Invalidate(va, size))
		}
	}
}

// walk runs the hardware walker (and demand paging on a fault), charging
// each PTE reference through the cache hierarchy. When the design carries
// paging-structure caches, a cached prefix short-circuits the walk's
// upper-level references on the fused WalkInto path: the traversal stays
// functional (the simulator still resolves the leaf), but the skipped
// PTE reads are never charged — exactly the architectural effect.
// The returned result points at the MMU's reusable buffer for native
// sources; it is consumed within the enclosing Translate call and never
// retained.
func (m *MMU) walk(req tlb.Request, res *Result) *pagetable.WalkResult {
	m.stats.Walks++
	walk := &m.walkBuf
	if m.pt != nil {
		m.pt.WalkInto(req.VA, walk)
		if m.tel != nil {
			m.tel.walkFused.Inc()
		}
	} else {
		*walk = m.src.Walk(req.VA)
		if m.tel != nil {
			m.tel.walkScalar.Inc()
		}
	}
	if !walk.Found && m.fault != nil && m.fault(req.VA, req.Write) {
		// Demand paging succeeded; the re-walk models the hardware retry
		// after the OS returns. (OS fault-handling time itself is not
		// part of the address-translation cost the paper measures.)
		if m.pt != nil {
			m.pt.WalkInto(req.VA, walk)
		} else {
			*walk = m.src.Walk(req.VA)
		}
	}
	if walk.ContigPages > 0 {
		m.stats.ContigWalks++
	}
	skip := 0
	if m.pwc != nil {
		// Probe before fill so a walk never short-circuits on the entries
		// it is itself about to cache.
		if n := len(walk.Accesses); n > 1 {
			skip = m.pwc.Skip(req.VA, n-1)
			if skip > 0 {
				m.stats.PWCHits++
				m.stats.PWCSkippedRefs += uint64(skip)
			} else {
				m.stats.PWCMisses++
			}
		}
		if walk.Found {
			m.pwc.Fill(req.VA, len(walk.Accesses))
		}
	}
	if !m.cfg.FreeWalks {
		start := res.Cycles
		for _, pa := range walk.Accesses[skip:] {
			m.stats.WalkRefs++
			c := m.caches.Access(pa)
			res.Cycles += c.Cycles
			m.stats.WalkCycles += c.Cycles
		}
		if m.tel != nil {
			m.tel.walkDepth.Observe(uint64(len(walk.Accesses) - skip))
			m.tel.walkCycles.Observe(res.Cycles - start)
		}
		if m.led != nil {
			// Contig outcome takes precedence: on NAPOT/contig-hint
			// descriptors the breakdown's question is how much walk time
			// the architectural encoding covers, and a PWC-shortened
			// contig walk still learned the block from its leaf.
			cat := ledger.WalkFull
			if skip > 0 {
				cat = ledger.WalkPWC
			}
			if walk.ContigPages > 0 {
				cat = ledger.WalkContig
			}
			m.led.ChargeWalk(cat, res.Cycles-start, len(walk.Accesses)-skip)
		}
	}
	return walk
}

// handleDirty implements the store path of Sec 4.4: a store through an
// entry whose dirty bit is clear injects a micro-op that updates the PTE's
// dirty bit, then lets the TLBs set their entry bits where their policy
// permits (always for 4KB entries; only singleton bundles for MIX/COLT).
//
// walk, when non-nil, is the just-completed miss walk for req.VA: its leaf
// handle lets the assist set the D bit without re-traversing, and its Line
// already holds the PTE cache line (only the demanded entry's Dirty bit
// needs patching). Chaos injection can corrupt walk results, so fusion is
// bypassed whenever an injector is attached.
func (m *MMU) handleDirty(req tlb.Request, entryDirty bool, res *Result, walk *pagetable.WalkResult) {
	if !req.Write || entryDirty {
		return
	}
	m.stats.DirtyMicroOps++
	res.Cycles += m.cfg.Lat.DirtyMicroOp
	if m.led != nil {
		m.led.Charge(ledger.DirtyAssist, m.cfg.Lat.DirtyMicroOp)
	}
	// The assist read the PTE's cache line to write the D bit; coalescing
	// TLBs use the neighbouring D bits to refresh bundle dirty state
	// (free: the access already happened and is priced above).
	var line []pagetable.Translation
	switch {
	case walk != nil && walk.Leaf.Valid() && m.pt != nil && m.chaos == nil:
		// Fused: the miss walk already located the leaf entry.
		walk.Leaf.SetDirty()
		for i := range walk.Line {
			if walk.Line[i].VA == walk.Translation.VA {
				walk.Line[i].Dirty = true
			}
		}
		line = walk.Line
		if m.tel != nil {
			m.tel.dirtyFused.Inc()
		}
	case m.pt != nil:
		m.lineBuf = m.pt.SetDirtyLine(req.VA, m.lineBuf)
		line = m.lineBuf
		if m.tel != nil {
			m.tel.dirtyScalar.Inc()
		}
	default:
		m.src.SetDirty(req.VA)
		line = m.src.Walk(req.VA).Line
		if m.tel != nil {
			m.tel.dirtyGeneric.Inc()
		}
	}
	for li := range m.levels {
		lv := &m.levels[li]
		if lv.refresher != nil {
			lv.refresher.RefreshDirty(req.VA, line)
		} else {
			lv.tlb.MarkDirty(req.VA)
		}
	}
}

// Invalidate performs a TLB shootdown for one page in every hierarchy
// level (and the paging-structure caches, whose entries the page-table
// update also stales).
func (m *MMU) Invalidate(va addr.V, size addr.PageSize) {
	m.stats.Invalidations++
	m.memo = memoEntry{}
	if m.led != nil {
		m.led.Event(ledger.Shootdown)
	}
	for li := range m.levels {
		m.levels[li].tlb.Invalidate(va, size)
	}
	if m.pwc != nil {
		m.pwc.Invalidate(va)
	}
}

// Flush empties every hierarchy level and the paging-structure caches.
func (m *MMU) Flush() {
	m.stats.Flushes++
	m.memo = memoEntry{}
	if m.led != nil {
		m.led.Event(ledger.Shootdown)
	}
	for li := range m.levels {
		m.levels[li].tlb.Flush()
	}
	if m.pwc != nil {
		m.pwc.Flush()
	}
}

// MissRatio returns overall TLB miss ratio (walks / accesses).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Walks) / float64(s.Accesses)
}

// CyclesPerAccess returns average translation cycles per access.
func (s Stats) CyclesPerAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Accesses)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("acc=%d l1=%.2f%% l2=%.2f%% walks=%d cyc/acc=%.2f",
		s.Accesses,
		100*float64(s.L1Hits)/max1(s.Accesses),
		100*float64(s.L2Hits)/max1(s.Accesses),
		s.Walks, s.CyclesPerAccess())
}

func max1(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
