package mmu

import (
	"strings"
	"testing"

	"mixtlb/internal/telemetry"
)

// TestTranslateZeroAllocTelemetryDisabled pins the disabled-telemetry
// translate loop at zero allocations: the nil-sink fast path must cost one
// predictable branch per site and nothing else. check.sh runs this test by
// name as the observability regression guard.
func TestTranslateZeroAllocTelemetryDisabled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0x7e1+uint64(len(d)), mapped, 4096)
			m := buildDesign(t, d, pages4k)
			// Attach then detach: the detached state must be as cheap as
			// never having attached.
			m.AttachTelemetry(telemetry.NewCollector(telemetry.NewRegistry(), nil))
			m.AttachTelemetry(nil)
			for _, r := range reqs {
				m.Translate(r)
			}
			i := 0
			avg := testing.AllocsPerRun(20, func() {
				for j := 0; j < 256; j++ {
					m.Translate(reqs[i%len(reqs)])
					i++
				}
			})
			if avg != 0 {
				t.Errorf("detached Translate allocates %.2f times per 256 accesses", avg)
			}
		})
	}
}

// TestTranslateZeroAllocTelemetryEnabled pins the enabled path too: the
// in-line instrumentation is atomic counters and fixed-bucket histograms,
// so attaching a collector must not add a single steady-state allocation.
func TestTranslateZeroAllocTelemetryEnabled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0x7e2+uint64(len(d)), mapped, 4096)
			m := buildDesign(t, d, pages4k)
			m.AttachTelemetry(telemetry.NewCollector(telemetry.NewRegistry(), nil))
			for _, r := range reqs {
				m.Translate(r)
			}
			i := 0
			avg := testing.AllocsPerRun(20, func() {
				for j := 0; j < 256; j++ {
					m.Translate(reqs[i%len(reqs)])
					i++
				}
			})
			if avg != 0 {
				t.Errorf("instrumented Translate allocates %.2f times per 256 accesses", avg)
			}
		})
	}
}

// TestTelemetryCountersAccumulate checks that an instrumented MMU records
// walk-path counters in line and exports its Stats-derived families at
// FlushTelemetry.
func TestTelemetryCountersAccumulate(t *testing.T) {
	const pages4k = 512
	_, mapped := buildRefEnv(t, pages4k)
	reqs := randomRequests(0xacc, mapped, 2048)
	m := buildDesign(t, DesignMix, pages4k)
	reg := telemetry.NewRegistry()
	m.AttachTelemetry(telemetry.NewCollector(reg, nil))
	for _, r := range reqs {
		m.Translate(r)
	}
	m.FlushTelemetry()
	dump := reg.PrometheusString()
	for _, want := range []string{"mmu_walks_total", "mmu_walk_depth", "mmu_accesses_total", "tlb_set_occupancy"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing family %q", want)
		}
	}
	if strings.Contains(dump, `mmu_accesses_total{mmu="`) {
		// Collector had no exp/cell scope here; just sanity-check the
		// label set the MMU adds for itself.
		if !strings.Contains(dump, `mmu="`+m.cfg.Name+`"`) {
			t.Errorf("dump missing mmu name label:\n%s", dump)
		}
	}
}

// TestTelemetryDetachStopsRecording checks AttachTelemetry(nil) really
// detaches: no counter moves afterward.
func TestTelemetryDetachStopsRecording(t *testing.T) {
	const pages4k = 512
	_, mapped := buildRefEnv(t, pages4k)
	reqs := randomRequests(0xde7ac, mapped, 1024)
	m := buildDesign(t, DesignSplit, pages4k)
	reg := telemetry.NewRegistry()
	m.AttachTelemetry(telemetry.NewCollector(reg, nil))
	m.AttachTelemetry(nil)
	for _, r := range reqs {
		m.Translate(r)
	}
	// Attaching pre-creates series at zero; detaching must keep every one
	// of them at zero no matter how much the MMU translates afterward.
	for _, line := range strings.Split(reg.PrometheusString(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 0") {
			t.Errorf("detached MMU still recorded: %s", line)
		}
	}
}
