package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
)

// Differential ISA conformance (the descriptor refactor's core promise):
// two descriptors that agree on the page-size ladder must produce
// identical translations and identical MMU statistics for any VA both
// can express. Deeper radixes only add upper walk levels, and upper
// levels carry no translation information — so with walk memory costs
// neutralized (FreeWalks, as the ideal yardstick already does), an
// x86-64 4-level MMU and an LA57 5-level MMU are indistinguishable below
// 2^48, and Sv39 and Sv48 below 2^39.

// confEnv builds a page table implementing the named descriptor and
// identity-maps a deterministic spread of 1GB, 2MB, and 4KB pages (plus
// enough 4KB pages to overflow both TLB levels). Data-page frames are
// explicit — PA == VA — so the mapped translations are bit-identical
// across descriptors even though deeper radixes allocate more interior
// table pages.
func confEnv(t *testing.T, isaName string, vaBits uint) (*pagetable.PageTable, []mappedPage) {
	t.Helper()
	d, err := isa.Lookup(isaName)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pagetable.NewISA(physmem.NewBuddy(1<<30), d)
	if err != nil {
		t.Fatal(err)
	}
	var mapped []mappedPage
	mapOne := func(va addr.V, size addr.PageSize) {
		if uint64(va)+size.Bytes() > 1<<vaBits {
			t.Fatalf("test VA %v exceeds the %d-bit conformance window", va, vaBits)
		}
		if err := pt.Map(va, addr.P(va), size, addr.PermRW); err != nil {
			t.Fatal(err)
		}
		mapped = append(mapped, mappedPage{va, size})
	}
	mapOne(addr.V(1)<<30, addr.Page1G)
	for i := 0; i < 6; i++ {
		mapOne(addr.V(1<<33)+addr.V(i)<<21, addr.Page2M)
	}
	for i := 0; i < 1024; i++ {
		mapOne(addr.V(1<<34)+addr.V(i)<<12, addr.Page4K)
	}
	return pt, mapped
}

// confSpecs are the designs the conformance pairs are driven through: a
// MIX hierarchy (coalescing exercises walk.Line neighbor harvesting) and
// a split Haswell-style hierarchy. FreeWalks neutralizes walk memory
// cost, which legitimately differs with radix depth; everything else —
// hits, fills, coalescing, faults, replay memo — must match exactly.
func confSpecs(isaName string) []DesignSpec {
	return []DesignSpec{
		{
			Name: "conf-mix",
			Levels: []LevelSpec{
				{Kind: KindMix, Sets: 16, Ways: 6, Coalesce: 16},
				{Kind: KindHaswellL2},
			},
			FreeWalks: true,
			ISA:       isaName,
		},
		{
			Name: "conf-split",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindHaswellL2},
			},
			FreeWalks: true,
			ISA:       isaName,
		},
	}
}

func TestISAConformance(t *testing.T) {
	pairs := []struct {
		name   string
		a, b   string
		vaBits uint
	}{
		// LA57 adds a fifth radix level above the canonical 48-bit space.
		{"x86-64-vs-la57", "x86-64", "x86-64-la57", 48},
		// Sv48 adds a fourth level above Sv39's 39-bit space.
		{"sv39-vs-sv48", "sv39", "sv48", 39},
	}
	for _, pc := range pairs {
		t.Run(pc.name, func(t *testing.T) {
			for si := range confSpecs("") {
				specA, specB := confSpecs(pc.a)[si], confSpecs(pc.b)[si]
				t.Run(specA.Name, func(t *testing.T) {
					ptA, mapped := confEnv(t, pc.a, pc.vaBits)
					ptB, _ := confEnv(t, pc.b, pc.vaBits)
					ma, err := specA.Build(ptA, ptA, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					mb, err := specB.Build(ptB, ptB, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					reqs := randomRequests(0xc04f+uint64(pc.vaBits), mapped, 20000)
					// A sprinkle of unmapped VAs keeps the fault path in
					// the comparison (nil fault handler: both must fault).
					for i := 500; i < len(reqs); i += 1000 {
						reqs[i].VA = addr.V(1<<36) + addr.V(i)<<12
					}
					for i, r := range reqs {
						ra, rb := ma.Translate(r), mb.Translate(r)
						if ra != rb {
							t.Fatalf("req %d (%+v): %s %+v, %s %+v",
								i, r, pc.a, ra, pc.b, rb)
						}
					}
					sa, sb := ma.Stats(), mb.Stats()
					if sa != sb {
						t.Errorf("stats diverge:\n%s: %+v\n%s: %+v", pc.a, sa, pc.b, sb)
					}
					if sa.Walks == 0 || sa.L1Hits == 0 || sa.Faults == 0 {
						t.Errorf("degenerate stream: %+v", sa)
					}
				})
			}
		})
	}
}

// TestTranslateZeroAllocISA pins the descriptor-parameterized hot path —
// deep-radix walks, NAPOT block detection, and the 16-entry extended
// walk line feeding the coalescer — at zero heap allocations per access
// in steady state, matching the default-descriptor guarantee of
// TestTranslateZeroAlloc.
func TestTranslateZeroAllocISA(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, isaName := range []string{"x86-64-la57", "sv48-napot", "arm64-contig"} {
		t.Run(isaName, func(t *testing.T) {
			d, err := isa.Lookup(isaName)
			if err != nil {
				t.Fatal(err)
			}
			buddy := physmem.NewBuddy(1 << 30)
			pt, err := pagetable.NewISA(buddy, d)
			if err != nil {
				t.Fatal(err)
			}
			// Back 4KB mappings with a 2MB physical block so every
			// aligned 16-page group is PA-contiguous: on NAPOT/contig
			// descriptors each walk takes the block-detection path and
			// extends the line to 16 entries.
			pa, ok := buddy.AllocPage(addr.Page2M)
			if !ok {
				t.Fatal("allocation failed")
			}
			var mapped []mappedPage
			for i := 0; i < 512; i++ {
				va := addr.V(1<<34) + addr.V(i)<<12
				if err := pt.Map(va, pa+addr.P(i)<<12, addr.Page4K, addr.PermRW); err != nil {
					t.Fatal(err)
				}
				mapped = append(mapped, mappedPage{va, addr.Page4K})
			}
			spec := confSpecs(isaName)[0]
			m, err := spec.Build(pt, pt, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			reqs := randomRequests(0x15a+uint64(len(isaName)), mapped, 4096)
			for _, r := range reqs {
				m.Translate(r)
			}
			i := 0
			avg := testing.AllocsPerRun(20, func() {
				for j := 0; j < 256; j++ {
					m.Translate(reqs[i%len(reqs)])
					i++
				}
			})
			if avg != 0 {
				t.Errorf("Translate allocates %.2f times per 256 accesses in steady state", avg)
			}
			if d.ContigPages > 1 && m.Stats().ContigWalks == 0 {
				t.Errorf("%s stream never took the contiguity-encoded walk path", isaName)
			}
		})
	}
}
