package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/chaos"
	"mixtlb/internal/ledger"
	"mixtlb/internal/tlb"
)

// TestLedgerConservationAllDesigns is the core invariant of the
// attribution layer: for every registered design (split, MIX, rehash,
// skew, COLT, ideal, PWC, victim-level variants, ...), a mixed
// read/write stream with interleaved shootdowns attributes every single
// cycle — the per-category sums equal Stats.Cycles exactly.
func TestLedgerConservationAllDesigns(t *testing.T) {
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0x1ed6e4+uint64(len(d)), mapped, 6000)
			m := buildDesign(t, d, pages4k)
			led := ledger.New(8)
			m.AttachLedger(led)
			for i, r := range reqs {
				m.Translate(r)
				switch i % 997 {
				case 250:
					m.Invalidate(r.VA, addr.Page4K)
				case 500:
					m.Flush()
				}
			}
			if err := m.AuditLedger(); err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			e := led.Entries()
			// The ledger's walk books must agree with the aggregate
			// counters perfmodel consumes: retry-free runs attribute walk
			// cycles and victim-probe cycles to their own categories,
			// nothing else.
			if got := e[ledger.WalkFull].Cycles + e[ledger.WalkPWC].Cycles; got != st.WalkCycles {
				t.Errorf("walk attribution %d != Stats.WalkCycles %d", got, st.WalkCycles)
			}
			if got := e[ledger.VictimProbe].Cycles; got != st.VictimProbeCycles {
				t.Errorf("victim attribution %d != Stats.VictimProbeCycles %d", got, st.VictimProbeCycles)
			}
			if e[ledger.ChaosRetry] != (ledger.Entry{}) {
				t.Errorf("chaos-retry books nonzero without an oracle: %+v", e[ledger.ChaosRetry])
			}
			if e[ledger.Shootdown].Events != st.Invalidations+st.Flushes {
				t.Errorf("shootdown events %d != invalidations+flushes %d",
					e[ledger.Shootdown].Events, st.Invalidations+st.Flushes)
			}
			if led.Accesses() != st.Accesses {
				t.Errorf("ledger closed %d accesses, Stats saw %d", led.Accesses(), st.Accesses)
			}
			// ResetStats must re-open clean books mid-run, exactly like
			// the warmup/measure boundary.
			m.ResetStats()
			for _, r := range reqs[:1500] {
				m.Translate(r)
			}
			if err := m.AuditLedger(); err != nil {
				t.Fatalf("post-reset: %v", err)
			}
			if m.Stats().Cycles == 0 {
				t.Fatal("post-reset interval charged no cycles")
			}
		})
	}
}

// TestLedgerConservationUnderChaos audits the retry-redirect path: with
// an injector corrupting hits and walks and the oracle scrubbing and
// re-translating, conservation still holds exactly and the retries'
// cycles land in the chaos-retry category instead of polluting the
// steady-state ones.
func TestLedgerConservationUnderChaos(t *testing.T) {
	for _, d := range []Design{DesignSplit, DesignMix, DesignVictima, DesignSplitPWC} {
		t.Run(string(d), func(t *testing.T) {
			e, m, want := chaosEnv(t, d)
			m.InjectFaults(chaos.NewInjector(11, chaos.Rates{
				TLBCorrupt: 0.05, SilentFrac: 0.6, PTECorrupt: 0.05,
			}))
			m.AttachOracle(chaos.NewOracle(e.pt))
			led := ledger.New(0)
			m.AttachLedger(led)
			for round := 0; round < 40; round++ {
				for va := range want {
					m.Translate(tlb.Request{VA: va + 0x40, Write: round%3 == 0})
				}
			}
			if err := m.AuditLedger(); err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			if st.OracleMismatches == 0 {
				t.Fatal("chaos rates never tripped the oracle; test exercises nothing")
			}
			if led.Entries()[ledger.ChaosRetry].Cycles == 0 {
				t.Error("oracle retries charged no cycles to chaos-retry")
			}
		})
	}
}

// TestLedgerObserverOnly pins the "passive observer" contract: two MMUs
// of the same design fed the same stream — one with a ledger and tail
// recorder attached, one bare — must produce identical results and
// identical Stats. This is the per-MMU form of the golden-table
// invariance the experiments layer asserts end to end.
func TestLedgerObserverOnly(t *testing.T) {
	const pages4k = 512
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			reqs := randomRequests(0x0b5e4e4+uint64(len(d)), nil2mapped(t, pages4k), 4000)
			bare := buildDesign(t, d, pages4k)
			wired := buildDesign(t, d, pages4k)
			wired.AttachLedger(ledger.New(16))
			for i, r := range reqs {
				a := bare.Translate(r)
				b := wired.Translate(r)
				if a != b {
					t.Fatalf("access %d: bare %+v != instrumented %+v", i, a, b)
				}
			}
			if sa, sb := bare.Stats(), wired.Stats(); sa != sb {
				t.Fatalf("stats diverged:\nbare  %+v\nwired %+v", sa, sb)
			}
		})
	}
}

// nil2mapped rebuilds the reference environment's mapped-page list
// without retaining the env (each buildDesign call makes its own, with
// identical deterministic layout).
func nil2mapped(t *testing.T, pages4k int) []mappedPage {
	t.Helper()
	_, mapped := buildRefEnv(t, pages4k)
	return mapped
}

// TestLedgerTailRecordsSlowest checks the flight recorder end to end on
// a real MMU: records exist, are sorted slowest-first, never exceed K,
// and the slowest record's cycles match a walk-bearing access (the tail
// of any TLB'd design is its walks).
func TestLedgerTailRecordsSlowest(t *testing.T) {
	const pages4k = 1024
	_, mapped := buildRefEnv(t, pages4k)
	reqs := randomRequests(0x7a11, mapped, 8000)
	m := buildDesign(t, DesignSplit, pages4k)
	led := ledger.New(8)
	m.AttachLedger(led)
	var maxCycles uint64
	for _, r := range reqs {
		if res := m.Translate(r); res.Cycles > maxCycles {
			maxCycles = res.Cycles
		}
	}
	top := led.Top()
	if len(top) != 8 {
		t.Fatalf("recorded %d tail records, want 8", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cycles > top[i-1].Cycles {
			t.Fatalf("tail not sorted: %d then %d", top[i-1].Cycles, top[i].Cycles)
		}
	}
	if top[0].Cycles != maxCycles {
		t.Errorf("slowest record %d cycles, observed max %d", top[0].Cycles, maxCycles)
	}
	if top[0].WalkRefs == 0 || top[0].HitLevel != -1 {
		t.Errorf("slowest access should be a walk: %+v", top[0])
	}
	if len(top[0].Trail()) == 0 {
		t.Error("slowest record carries no trail")
	}
}

// TestTranslateZeroAllocLedgerEnabled extends the telemetry pin to the
// attribution layer: a ledger with a full-size tail recorder attached
// must not add a single steady-state allocation, and neither may the
// disabled state (re-pinned here so the nil-check path stays honest even
// if the telemetry tests move).
func TestTranslateZeroAllocLedgerEnabled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0xa110c+uint64(len(d)), mapped, 4096)
			for _, attach := range []bool{false, true} {
				m := buildDesign(t, d, pages4k)
				if attach {
					m.AttachLedger(ledger.New(ledger.MaxTailK))
				}
				for _, r := range reqs {
					m.Translate(r)
				}
				i := 0
				avg := testing.AllocsPerRun(20, func() {
					for j := 0; j < 256; j++ {
						m.Translate(reqs[i%len(reqs)])
						i++
					}
				})
				if avg != 0 {
					t.Errorf("attached=%v: Translate allocates %.2f times per 256 accesses", attach, avg)
				}
			}
		})
	}
}
