//go:build !race

package mmu

// raceEnabled reports whether the test binary was built with -race.
// Allocation-count guards are skipped under -race: the detector's
// instrumentation allocates on paths that are allocation-free in normal
// builds.
const raceEnabled = false
