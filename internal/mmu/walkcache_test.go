package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/tlb"
)

func TestWalkCacheSkipsUpperLevels(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	e.mapPage(t, 0x2000, addr.Page4K) // same PT, same upper levels
	src := NewCachedSource(e.pt, NewWalkCache(16))

	// First walk: cold cache, full 4 accesses.
	res := src.Walk(0x1000)
	if len(res.Accesses) != 4 {
		t.Fatalf("cold walk made %d accesses", len(res.Accesses))
	}
	// Second walk to a sibling page: PDE cached, only the PTE is read.
	res = src.Walk(0x2000)
	if len(res.Accesses) != 1 {
		t.Errorf("PDE-cached walk made %d accesses, want 1", len(res.Accesses))
	}
	hits, misses := src.Cache().Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats: hits=%d misses=%d", hits, misses)
	}
}

func TestWalkCachePartialHit(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	// A page in a different PD but same PDPT: PDPTE hit skips 2 levels.
	e.mapPage(t, addr.V(1)<<30|0x1000, addr.Page4K) // different PDPT entry? 1GB apart: same PML4, different PDPTE
	src := NewCachedSource(e.pt, NewWalkCache(16))
	src.Walk(0x1000)
	res := src.Walk(addr.V(1)<<30 | 0x1000)
	// Same PML4 entry cached (skip 1): 3 accesses remain.
	if len(res.Accesses) != 3 {
		t.Errorf("PML4E-cached walk made %d accesses, want 3", len(res.Accesses))
	}
}

func TestWalkCacheOnSuperpageWalks(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x40000000, addr.Page2M)
	e.mapPage(t, 0x40200000, addr.Page2M)
	src := NewCachedSource(e.pt, NewWalkCache(16))
	if res := src.Walk(0x40000000); len(res.Accesses) != 3 {
		t.Fatalf("cold 2MB walk: %d accesses", len(res.Accesses))
	}
	// Sibling 2MB page: PDPTE cached → only the PDE access remains. The
	// PDE *cache* must not over-skip a walk whose leaf is the PDE itself.
	if res := src.Walk(0x40200000); len(res.Accesses) != 1 {
		t.Errorf("cached 2MB walk: %d accesses, want 1", len(res.Accesses))
	}
}

func TestWalkCacheInvalidateAndFlush(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	src := NewCachedSource(e.pt, NewWalkCache(16))
	src.Walk(0x1000)
	src.Cache().Invalidate(0x1000)
	if res := src.Walk(0x1000); len(res.Accesses) != 4 {
		t.Errorf("post-invalidate walk: %d accesses", len(res.Accesses))
	}
	src.Cache().Flush()
	if res := src.Walk(0x1000); len(res.Accesses) != 4 {
		t.Errorf("post-flush walk: %d accesses", len(res.Accesses))
	}
}

func TestWalkCacheReducesMMUMissCost(t *testing.T) {
	// End-to-end: a split MMU over a cached source pays fewer walk cycles
	// for the same miss count.
	run := func(cached bool) (uint64, uint64) {
		e := newEnv(t)
		for i := 0; i < 256; i++ {
			e.mapPage(t, addr.V(i)<<12, addr.Page4K)
		}
		var src TranslationSource = e.pt
		if cached {
			src = NewCachedSource(e.pt, NewWalkCache(16))
		}
		m := mustBuild(New(Config{Name: "t", L1: tlb.Must(tlb.NewSetAssoc("l1", addr.Page4K, 2, 2))}, src, e.caches, nil))
		for round := 0; round < 3; round++ {
			for i := 0; i < 256; i++ { // thrashes the 4-entry TLB: all walks
				m.Translate(tlb.Request{VA: addr.V(i) << 12})
			}
		}
		return m.Stats().Walks, m.Stats().WalkRefs
	}
	walksPlain, refsPlain := run(false)
	walksCached, refsCached := run(true)
	if walksPlain != walksCached {
		t.Errorf("walk counts differ: %d vs %d", walksPlain, walksCached)
	}
	if refsCached >= refsPlain/2 {
		t.Errorf("walk refs: cached=%d plain=%d, want large reduction", refsCached, refsPlain)
	}
}

func TestWalkCacheLRU(t *testing.T) {
	// 2-entry PDE cache: three distinct PDs evict round-robin.
	e := newEnv(t)
	for i := 0; i < 3; i++ {
		e.mapPage(t, addr.V(i)<<21|0x1000, addr.Page4K)
	}
	src := NewCachedSource(e.pt, NewWalkCache(2))
	src.Walk(0x1000)
	src.Walk(addr.V(1)<<21 | 0x1000)
	src.Walk(addr.V(2)<<21 | 0x1000) // evicts PD 0's entry
	if res := src.Walk(0x1000); len(res.Accesses) == 1 {
		t.Error("evicted PDE still hit")
	}
	// PD 2 is MRU: still cached.
	if res := src.Walk(addr.V(2)<<21 | 0x1000); len(res.Accesses) != 1 {
		t.Errorf("MRU PDE missed: %d accesses", len(res.Accesses))
	}
}
