package mmu

// MMU-integrated paging-structure-cache tests: the cache model itself
// lives in internal/pwc (with its own unit tests); these cover the MMU's
// walker integration — skipped reference charging, stats, and the
// invalidate/flush forwarding.

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/pwc"
	"mixtlb/internal/tlb"
)

// tinyMMU builds a single-level MMU with a 4-entry TLB (so misses are
// easy to force) and an optional paging-structure cache.
func tinyMMU(t *testing.T, e *env, cache *pwc.Cache) *MMU {
	t.Helper()
	return mustBuild(New(Config{
		Name:   "t",
		Levels: L(tlb.Must(tlb.NewSetAssoc("l1", addr.Page4K, 2, 2))),
		PWC:    cache,
	}, e.pt, e.caches, nil))
}

func TestPWCSkipsUpperWalkLevels(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	e.mapPage(t, 0x2000, addr.Page4K) // same PT, same upper levels
	m := tinyMMU(t, e, pwc.New(16))

	// First walk: cold cache, full 4 PTE references charged.
	m.Translate(tlb.Request{VA: 0x1000})
	if refs := m.Stats().WalkRefs; refs != 4 {
		t.Fatalf("cold walk charged %d refs, want 4", refs)
	}
	// Sibling page under the same PD: PDE cached, only the PTE is read.
	m.Translate(tlb.Request{VA: 0x2000})
	st := m.Stats()
	if st.WalkRefs != 5 {
		t.Errorf("PDE-cached walk charged %d total refs, want 5", st.WalkRefs)
	}
	if st.PWCHits != 1 || st.PWCMisses != 1 || st.PWCSkippedRefs != 3 {
		t.Errorf("PWC stats: hits=%d misses=%d skipped=%d, want 1/1/3",
			st.PWCHits, st.PWCMisses, st.PWCSkippedRefs)
	}
}

func TestPWCPartialHit(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	// 1GB apart: same PML4 entry, different PDPT entry → skip 1.
	e.mapPage(t, addr.V(1)<<30|0x1000, addr.Page4K)
	m := tinyMMU(t, e, pwc.New(16))
	m.Translate(tlb.Request{VA: 0x1000})
	m.Translate(tlb.Request{VA: addr.V(1)<<30 | 0x1000})
	if refs := m.Stats().WalkRefs; refs != 4+3 {
		t.Errorf("PML4E-cached walk: %d total refs, want 7", refs)
	}
}

func TestPWCOnSuperpageWalks(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x40000000, addr.Page2M)
	e.mapPage(t, 0x40200000, addr.Page2M)
	m := mustBuild(New(Config{
		Name:   "t2m",
		Levels: L(tlb.Must(tlb.NewSetAssoc("l1", addr.Page2M, 1, 1))),
		PWC:    pwc.New(16),
	}, e.pt, e.caches, nil))
	m.Translate(tlb.Request{VA: 0x40000000})
	if refs := m.Stats().WalkRefs; refs != 3 {
		t.Fatalf("cold 2MB walk: %d refs", refs)
	}
	// Sibling 2MB page: PDPTE cached → only the PDE access remains. The
	// PDE *cache* must not over-skip a walk whose leaf is the PDE itself.
	m.Translate(tlb.Request{VA: 0x40200000})
	if refs := m.Stats().WalkRefs; refs != 3+1 {
		t.Errorf("cached 2MB walk: %d total refs, want 4", refs)
	}
}

func TestPWCInvalidateAndFlushForwarding(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	m := tinyMMU(t, e, pwc.New(16))
	m.Translate(tlb.Request{VA: 0x1000})
	// Invalidate goes through the MMU: both the TLB entry and the cached
	// walk prefixes must drop, so the next walk is full-cost again.
	m.Invalidate(0x1000, addr.Page4K)
	m.ResetStats()
	m.Translate(tlb.Request{VA: 0x1000})
	if refs := m.Stats().WalkRefs; refs != 4 {
		t.Errorf("post-invalidate walk charged %d refs, want 4", refs)
	}
	m.Flush()
	m.ResetStats()
	m.Translate(tlb.Request{VA: 0x1000})
	if refs := m.Stats().WalkRefs; refs != 4 {
		t.Errorf("post-flush walk charged %d refs, want 4", refs)
	}
}

func TestPWCReducesMissCostNotMissCount(t *testing.T) {
	// End-to-end: an MMU with paging-structure caches pays fewer walk refs
	// for the same miss count.
	run := func(cache *pwc.Cache) (uint64, uint64) {
		e := newEnv(t)
		for i := 0; i < 256; i++ {
			e.mapPage(t, addr.V(i)<<12, addr.Page4K)
		}
		m := tinyMMU(t, e, cache)
		for round := 0; round < 3; round++ {
			for i := 0; i < 256; i++ { // thrashes the 4-entry TLB: all walks
				m.Translate(tlb.Request{VA: addr.V(i) << 12})
			}
		}
		return m.Stats().Walks, m.Stats().WalkRefs
	}
	walksPlain, refsPlain := run(nil)
	walksCached, refsCached := run(pwc.New(16))
	if walksPlain != walksCached {
		t.Errorf("walk counts differ: %d vs %d", walksPlain, walksCached)
	}
	if refsCached >= refsPlain/2 {
		t.Errorf("walk refs: cached=%d plain=%d, want large reduction", refsCached, refsPlain)
	}
}

func TestPWCStatsResetWithMMU(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	e.mapPage(t, 0x2000, addr.Page4K)
	e.mapPage(t, 0x3000, addr.Page4K)
	cache := pwc.New(16)
	m := tinyMMU(t, e, cache)
	m.Translate(tlb.Request{VA: 0x1000})
	m.Translate(tlb.Request{VA: 0x2000})
	m.ResetStats()
	if st := m.Stats(); st.PWCHits != 0 || st.PWCMisses != 0 || st.PWCSkippedRefs != 0 {
		t.Errorf("MMU PWC stats survived reset: %+v", st)
	}
	if st := cache.Stats(); st != (pwc.Stats{}) {
		t.Errorf("cache stats survived reset: %+v", st)
	}
	// Contents survive the reset: a not-yet-cached sibling page misses the
	// TLB but its walk still skips through the retained PDE entry.
	m.Translate(tlb.Request{VA: 0x3000})
	if st := m.Stats(); st.PWCHits != 1 || st.PWCSkippedRefs != 3 {
		t.Errorf("post-reset walk did not hit the retained cache: %+v", st)
	}
}
