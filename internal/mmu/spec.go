package mmu

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/isa"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/pwc"
	"mixtlb/internal/tlb"
)

// Level kinds a LevelSpec may name. Fixed kinds carry their geometry
// (the paper's area-equivalent design points); parameterized kinds take
// Sets/Ways and friends from the spec.
const (
	// KindHaswellL1 is the commercial split L1: per-size components with
	// Haswell's geometry. Fixed.
	KindHaswellL1 = "haswell-l1"
	// KindHaswellL2 is the commercial L2: shared hash-rehash array plus a
	// dedicated 1GB component. Fixed.
	KindHaswellL2 = "haswell-l2"
	// KindColtSplitL1 is the split L1 with a coalescing 4KB component
	// (CoLT). Fixed.
	KindColtSplitL1 = "colt-split-l1"
	// KindColtPPSplitL1 is the split L1 with every component coalescing
	// (COLT++). Fixed.
	KindColtPPSplitL1 = "colt++-split-l1"
	// KindMix is a MIX TLB (the paper's contribution). Parameterized:
	// Sets, Ways required; Coalesce defaults to Sets; Encoding selects
	// bitmap (default) or range bundles; SmallCoalesce adds 4KB
	// coalescing; SuperpageIndex reproduces the Sec 3 ablation.
	KindMix = "mix"
	// KindRehashPred is hash-rehash over all page sizes behind a size
	// predictor. Parameterized: Sets, Ways required; PredictorEntries
	// defaults to 512.
	KindRehashPred = "rehash+pred"
	// KindSkewPred is a skew-associative all-sizes TLB behind a size
	// predictor. Parameterized: Sets and Ways (ways per page size)
	// required; PredictorEntries defaults to 512.
	KindSkewPred = "skew+pred"
	// KindIdeal never misses on mapped pages; it must be a design's only
	// level and requires the native page table at build time.
	KindIdeal = "ideal"
	// KindVictim is a software-managed victim level resident in the data
	// caches (Victima-style): sets x ways cache-line bundles of packed
	// PTEs (tlb.BundlePTEs each), fed only by eviction-driven demotion
	// from the level above and charged data-cache accesses instead of an
	// SRAM probe latency. Parameterized: Sets, Ways required; it must be
	// the design's deepest level and cannot be the first.
	KindVictim = "victim"
)

// levelKinds lists every valid LevelSpec kind, for error messages.
var levelKinds = []string{
	KindHaswellL1, KindHaswellL2, KindColtSplitL1, KindColtPPSplitL1,
	KindMix, KindRehashPred, KindSkewPred, KindIdeal, KindVictim,
}

// LevelSpec describes one level of a design's translation hierarchy.
type LevelSpec struct {
	// Kind selects the TLB organization (one of the Kind* constants).
	Kind string `json:"kind"`
	// Name labels the level's TLB in telemetry; empty derives
	// "<design>-L<n>". Fixed kinds carry their own names.
	Name string `json:"name,omitempty"`
	// Sets and Ways give the geometry of parameterized kinds. Sets must
	// be a power of two. For skew+pred, Ways is the way count per page
	// size.
	Sets int `json:"sets,omitempty"`
	Ways int `json:"ways,omitempty"`
	// Coalesce is the MIX bundle capacity K (power of two); zero defaults
	// to Sets.
	Coalesce int `json:"coalesce,omitempty"`
	// Encoding selects MIX bundle encoding: "bitmap" (default) or
	// "range".
	Encoding string `json:"encoding,omitempty"`
	// SmallCoalesce enables MIX+COLT 4KB coalescing with bundles of this
	// many pages.
	SmallCoalesce int `json:"small_coalesce,omitempty"`
	// SuperpageIndex indexes a MIX level by superpage bits (the Sec 3
	// ablation) instead of the 4KB index bits.
	SuperpageIndex bool `json:"superpage_index,omitempty"`
	// PredictorEntries sizes the size predictor of rehash+pred and
	// skew+pred levels; zero defaults to 512.
	PredictorEntries int `json:"predictor_entries,omitempty"`
	// HitLatency overrides the cycles charged when this level is probed;
	// zero selects the MMU default (Lat.L1Hit for the first level,
	// Lat.L2Hit deeper).
	HitLatency uint64 `json:"hit_latency,omitempty"`
}

// DesignSpec declares a complete MMU design: the ordered hierarchy, the
// walker's paging-structure caches, and cost-model overrides. Specs are
// data — they validate up front and build through the Registry.
type DesignSpec struct {
	Name string `json:"name"`
	// Desc is a one-line description for listings.
	Desc string `json:"desc,omitempty"`
	// Levels is the hierarchy, probed first to last.
	Levels []LevelSpec `json:"levels"`
	// PWC attaches paging-structure caches to the walker with
	// pwc.DefaultEntries per level; PWCEntries overrides the capacity
	// (and implies PWC).
	PWC        bool `json:"pwc,omitempty"`
	PWCEntries int  `json:"pwc_entries,omitempty"`
	// FreeWalks makes misses cost nothing (the ideal yardstick).
	FreeWalks bool `json:"free_walks,omitempty"`
	// Latencies overrides the cycle model; nil uses DefaultLatencies.
	Latencies *Latencies `json:"latencies,omitempty"`
	// ISA names the translation architecture the design targets (an
	// isa.Lookup name). Empty means the design is ISA-agnostic and runs
	// on whatever descriptor the page table implements — the default
	// x86-64 when nothing selects otherwise. A non-empty ISA pins the
	// design: validation checks encoding-aware coalescing caps against
	// that descriptor, and building against a page table of a different
	// ISA is an error.
	ISA string `json:"isa,omitempty"`
}

// DesignSpecError reports an invalid DesignSpec: an unknown level kind,
// bad geometry, a duplicate design name, and so on. Level is the
// offending level index, or -1 for design-level problems.
type DesignSpecError struct {
	Design string
	Level  int
	Field  string
	Reason string
}

func (e *DesignSpecError) Error() string {
	if e.Level >= 0 {
		return fmt.Sprintf("design %q: level %d: %s: %s", e.Design, e.Level, e.Field, e.Reason)
	}
	return fmt.Sprintf("design %q: %s: %s", e.Design, e.Field, e.Reason)
}

// UnknownDesignError reports a requested design missing from the
// registry, carrying the valid names so callers (the CLI) can print them
// instead of silently running nothing.
type UnknownDesignError struct {
	Name  string
	Valid []string
}

func (e *UnknownDesignError) Error() string {
	return fmt.Sprintf("mmu: unknown design %q (valid: %s)",
		e.Name, strings.Join(e.Valid, ", "))
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// mixMaxCoalesce is the bundle-capacity ceiling core.New enforces: bitmap
// bundles carry a presence bit per slot and cap at 64; range bundles
// store two bounds and stretch to 256.
func mixMaxCoalesce(l LevelSpec) int {
	if l.Encoding == "range" {
		return 256
	}
	return 64
}

// Validate checks the spec's shape, returning a *DesignSpecError for the
// first problem. Geometry that only the TLB constructors can judge (way
// counts vs window sizes, predictor sizing) is re-checked at build time.
func (s DesignSpec) Validate() error {
	derr := func(field, reason string) error {
		return &DesignSpecError{Design: s.Name, Level: -1, Field: field, Reason: reason}
	}
	if s.Name == "" {
		return derr("name", "empty design name")
	}
	if strings.ContainsAny(s.Name, ", \t\n") {
		return derr("name", "design names may not contain commas or whitespace")
	}
	if len(s.Levels) == 0 {
		return derr("levels", "a design needs at least one hierarchy level")
	}
	if s.PWCEntries < 0 {
		return derr("pwc_entries", "negative capacity")
	}
	// Resolve the declared ISA up front; the typed *isa.UnknownISAError
	// carries the valid names for CLI/daemon reporting.
	desc, err := isa.Lookup(s.ISA)
	if err != nil {
		return err
	}
	for i, l := range s.Levels {
		lerr := func(field, reason string) error {
			return &DesignSpecError{Design: s.Name, Level: i, Field: field, Reason: reason}
		}
		geom := func() error { // common checks for parameterized kinds
			if !powerOfTwo(l.Sets) {
				return lerr("sets", fmt.Sprintf("must be a power of two, got %d", l.Sets))
			}
			if l.Ways <= 0 {
				return lerr("ways", fmt.Sprintf("must be positive, got %d", l.Ways))
			}
			return nil
		}
		fixed := func() error { // fixed kinds take no geometry knobs
			if l.Sets != 0 || l.Ways != 0 || l.Coalesce != 0 || l.SmallCoalesce != 0 ||
				l.PredictorEntries != 0 || l.Encoding != "" || l.SuperpageIndex {
				return lerr("kind", fmt.Sprintf("%s has fixed geometry; remove sets/ways/coalesce/encoding knobs", l.Kind))
			}
			return nil
		}
		switch l.Kind {
		case KindHaswellL1, KindHaswellL2, KindColtSplitL1, KindColtPPSplitL1:
			if err := fixed(); err != nil {
				return err
			}
		case KindMix:
			if err := geom(); err != nil {
				return err
			}
			switch l.Encoding {
			case "", "bitmap", "range":
			default:
				return lerr("encoding", fmt.Sprintf("must be \"bitmap\" or \"range\", got %q", l.Encoding))
			}
			maxK := mixMaxCoalesce(l)
			if l.Coalesce != 0 && (!powerOfTwo(l.Coalesce) || l.Coalesce > maxK) {
				return lerr("coalesce", fmt.Sprintf("must be a power of two at most %d for this encoding, got %d", maxK, l.Coalesce))
			}
			if l.SmallCoalesce < 0 || l.SmallCoalesce > maxK {
				return lerr("small_coalesce", fmt.Sprintf("must be non-negative and at most %d, got %d", maxK, l.SmallCoalesce))
			}
			// Encoding-aware cap: on an ISA with hardware contiguity
			// blocks, a bundle must be able to cover one whole block —
			// otherwise the design throws away ranges the architecture
			// hands it pre-coalesced.
			if desc.ContigPages > 0 {
				k := l.Coalesce
				if k == 0 {
					if k = l.Sets; k > maxK {
						k = maxK
					}
				}
				if k < desc.ContigPages {
					return lerr("coalesce", fmt.Sprintf("bundle capacity %d cannot cover the %s ISA's %d-page contiguity blocks", k, desc.Name, desc.ContigPages))
				}
			}
			if l.PredictorEntries != 0 {
				return lerr("predictor_entries", "only rehash+pred and skew+pred levels take a predictor")
			}
		case KindRehashPred, KindSkewPred:
			if err := geom(); err != nil {
				return err
			}
			if l.PredictorEntries < 0 {
				return lerr("predictor_entries", fmt.Sprintf("must be non-negative, got %d", l.PredictorEntries))
			}
			if l.Coalesce != 0 || l.SmallCoalesce != 0 || l.Encoding != "" || l.SuperpageIndex {
				return lerr("kind", fmt.Sprintf("%s takes no coalescing or indexing knobs", l.Kind))
			}
		case KindIdeal:
			if len(s.Levels) != 1 {
				return lerr("kind", "an ideal level must be the design's only level")
			}
			if err := fixed(); err != nil {
				return err
			}
		case KindVictim:
			if i != len(s.Levels)-1 {
				return lerr("kind", "a victim level must be the design's deepest level")
			}
			if i == 0 {
				return lerr("kind", "a victim level needs at least one SRAM level above it to demote from")
			}
			if err := geom(); err != nil {
				return err
			}
			if l.Coalesce != 0 || l.SmallCoalesce != 0 || l.Encoding != "" ||
				l.SuperpageIndex || l.PredictorEntries != 0 {
				return lerr("kind", "victim levels take only sets/ways")
			}
			if l.HitLatency != 0 {
				return lerr("hit_latency", "victim probes are charged data-cache accesses, not a fixed latency")
			}
		case "":
			return lerr("kind", "missing level kind")
		default:
			return lerr("kind", fmt.Sprintf("unknown level kind %q (valid: %s)",
				l.Kind, strings.Join(levelKinds, ", ")))
		}
	}
	return nil
}

// levelName derives the telemetry name of level i.
func (s DesignSpec) levelName(i int) string {
	if s.Levels[i].Name != "" {
		return s.Levels[i].Name
	}
	return fmt.Sprintf("%s-L%d", s.Name, i+1)
}

// descriptor resolves the translation architecture a build targets: the
// page table's when one is present (the hardware the design actually runs
// on), else the spec's declared ISA, else the default x86-64. A design
// pinned to an ISA refuses to build on a page table of a different one.
func (s DesignSpec) descriptor(pt *pagetable.PageTable) (*isa.Descriptor, error) {
	if pt != nil {
		d := pt.Descriptor()
		if s.ISA != "" && d.Name != s.ISA {
			return nil, &DesignSpecError{Design: s.Name, Level: -1, Field: "isa",
				Reason: fmt.Sprintf("design targets ISA %q but the page table implements %q", s.ISA, d.Name)}
		}
		return d, nil
	}
	return isa.Lookup(s.ISA)
}

// buildLevel constructs level i's TLB for the given descriptor.
func (s DesignSpec) buildLevel(i int, pt *pagetable.PageTable, desc *isa.Descriptor) (tlb.TLB, error) {
	l := s.Levels[i]
	switch l.Kind {
	case KindHaswellL1:
		return tlb.NewHaswellL1()
	case KindHaswellL2:
		return tlb.NewHaswellL2()
	case KindColtSplitL1:
		return tlb.NewColtSplitL1()
	case KindColtPPSplitL1:
		return tlb.NewColtPlusPlusL1()
	case KindMix:
		cfg := core.Config{
			Name:          s.levelName(i),
			Sets:          l.Sets,
			Ways:          l.Ways,
			Coalesce:      l.Coalesce,
			SmallCoalesce: l.SmallCoalesce,
			IndexShift:    addr.Shift4K,
			ContigPages:   desc.ContigPages,
		}
		if cfg.Coalesce == 0 {
			// Default K to the set count (the paper's geometry), clamped to
			// what the encoding can hold for large arrays.
			cfg.Coalesce = l.Sets
			if max := mixMaxCoalesce(l); cfg.Coalesce > max {
				cfg.Coalesce = max
			}
		}
		if l.Encoding == "range" {
			cfg.Encoding = core.Range
		}
		if l.SuperpageIndex {
			cfg.IndexShift = addr.Shift2M
		}
		return core.New(cfg)
	case KindRehashPred:
		inner, err := tlb.NewHashRehash(s.levelName(i), l.Sets, l.Ways,
			addr.Page4K, addr.Page2M, addr.Page1G)
		if err != nil {
			return nil, err
		}
		pred, err := tlb.NewSizePredictor(predictorEntries(l))
		if err != nil {
			return nil, err
		}
		return tlb.NewPredictedRehash(inner, pred), nil
	case KindSkewPred:
		inner, err := tlb.NewSkewAllSizes(s.levelName(i), l.Sets, l.Ways)
		if err != nil {
			return nil, err
		}
		pred, err := tlb.NewSizePredictor(predictorEntries(l))
		if err != nil {
			return nil, err
		}
		return tlb.NewPredictedSkew(inner, pred), nil
	case KindIdeal:
		if pt == nil {
			return nil, fmt.Errorf("design %q: ideal level requires the native page table", s.Name)
		}
		return tlb.NewIdeal(pt), nil
	case KindVictim:
		return tlb.NewVictim(s.levelName(i), l.Sets, l.Ways)
	default:
		return nil, &DesignSpecError{Design: s.Name, Level: i, Field: "kind",
			Reason: fmt.Sprintf("unknown level kind %q", l.Kind)}
	}
}

func predictorEntries(l LevelSpec) int {
	if l.PredictorEntries > 0 {
		return l.PredictorEntries
	}
	return 512
}

// BuildTLBs validates the spec and constructs its hierarchy TLBs in probe
// order, without assembling an MMU — conformance tests exercise the raw
// levels this way.
func (s DesignSpec) BuildTLBs(pt *pagetable.PageTable) ([]tlb.TLB, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	desc, err := s.descriptor(pt)
	if err != nil {
		return nil, err
	}
	out := make([]tlb.TLB, len(s.Levels))
	for i := range s.Levels {
		t, err := s.buildLevel(i, pt, desc)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// BuildConfig validates the spec and assembles the mmu.Config it
// describes, constructing fresh TLB and paging-structure-cache instances.
func (s DesignSpec) BuildConfig(pt *pagetable.PageTable) (Config, error) {
	tlbs, err := s.BuildTLBs(pt)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Name: s.Name, FreeWalks: s.FreeWalks}
	if s.Latencies != nil {
		cfg.Lat = *s.Latencies
	}
	cfg.Levels = make([]Level, len(tlbs))
	for i, t := range tlbs {
		cfg.Levels[i] = Level{TLB: t, HitLatency: s.Levels[i].HitLatency}
	}
	if s.PWC || s.PWCEntries > 0 {
		// Size the walker's prefix caches from the radix the walks will
		// actually traverse (one level per non-leaf radix level).
		desc, err := s.descriptor(pt)
		if err != nil {
			return Config{}, err
		}
		cfg.PWC = pwc.NewISA(s.PWCEntries, desc)
	}
	return cfg, nil
}

// Build validates the spec and constructs a ready MMU over the given
// translation source and cache hierarchy.
func (s DesignSpec) Build(src TranslationSource, pt *pagetable.PageTable, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	cfg, err := s.BuildConfig(pt)
	if err != nil {
		return nil, err
	}
	return New(cfg, src, caches, fault)
}

// ParseSpecs decodes a design file: a JSON array of DesignSpec objects.
// Unknown fields are rejected (a typo'd knob must not silently become a
// default), and every spec is validated before any is returned.
func ParseSpecs(r io.Reader) ([]DesignSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var specs []DesignSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("design file: %w", err)
	}
	// Trailing content (a second document, stray text) is also a mistake.
	if dec.More() {
		return nil, fmt.Errorf("design file: trailing data after the design array")
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// ParseSpecBytes is ParseSpecs over an in-memory document.
func ParseSpecBytes(data []byte) ([]DesignSpec, error) {
	return ParseSpecs(bytes.NewReader(data))
}
