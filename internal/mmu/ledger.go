package mmu

import "mixtlb/internal/ledger"

// AttachLedger enables (or, with nil, disables) cycle attribution for
// this MMU. The ledger observes every cycle-charging site on the
// translation path — probes per level, extra probe rounds, victim-level
// cache probes, walks (full and PWC-shortened), dirty-bit assists, memo
// replays, oracle-retry re-translations — plus shootdown events, and
// never influences simulation results: tables are byte-identical with a
// ledger attached or not. Like telemetry, the disabled state costs a
// single nil-check branch per site.
//
// The ledger belongs to this MMU's simulation goroutine; never share one
// ledger across MMUs (per-category sums would interleave and Audit
// against any single MMU's Stats would fail).
func (m *MMU) AttachLedger(l *ledger.Ledger) {
	m.led = l
}

// Ledger returns the attached ledger, nil when attribution is disabled.
func (m *MMU) Ledger() *ledger.Ledger { return m.led }

// AuditLedger checks the conservation invariant — attributed cycles sum
// exactly to Stats.Cycles — returning a *ledger.ConservationError on any
// leak. With no ledger attached it reports clean.
func (m *MMU) AuditLedger() error {
	return m.led.Audit(m.stats.Cycles)
}
