package mmu

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/pagetable"
)

// WalkCache models the paging-structure caches (Intel PSCs / AMD page walk
// caches) that real walkers use to skip upper page-table levels: small
// per-level caches of PML4E/PDPTE/PDE entries keyed by the virtual-address
// prefix. A PDE hit lets a 4KB walk read only the final PTE (1 memory
// reference instead of 4). The paper's baseline walkers are uncached; this
// decorator exists to study how much of the TLB-design gap walk caches
// close (they shrink the *cost* of misses, not their number), following
// the MMU-cache literature the paper cites.
type WalkCache struct {
	// levels[0] caches PML4 entries (skip 1), levels[1] PDPT entries
	// (skip 2), levels[2] PD entries (skip 3).
	levels [3]*prefixCache

	hits   uint64
	misses uint64
}

// prefixShift gives the VA shift keying each cached level.
var prefixShift = [3]uint{39, 30, 21}

// NewWalkCache builds a walk cache with the given entries per level
// (fully associative, LRU; real PSCs have 2-32 entries per level).
func NewWalkCache(entriesPerLevel int) *WalkCache {
	if entriesPerLevel <= 0 {
		entriesPerLevel = 16
	}
	w := &WalkCache{}
	for i := range w.levels {
		w.levels[i] = newPrefixCache(entriesPerLevel)
	}
	return w
}

// Stats reports hit/miss counts of the deepest-level probe.
func (w *WalkCache) Stats() (hits, misses uint64) { return w.hits, w.misses }

// skip returns how many leading walk accesses a lookup for va can skip:
// the deepest cached level wins. maxSkip caps it (a 2MB walk has only 3
// accesses, so a PDE hit cannot skip more than 2).
func (w *WalkCache) skip(va addr.V, maxSkip int) int {
	for lvl := 2; lvl >= 0; lvl-- {
		if lvl+1 > maxSkip {
			continue
		}
		if w.levels[lvl].lookup(uint64(va) >> prefixShift[lvl]) {
			w.hits++
			return lvl + 1
		}
	}
	w.misses++
	return 0
}

// fill records the traversed non-leaf levels of a completed walk.
// walkLen is the access count (4 for a 4KB walk, 3 for 2MB, 2 for 1GB):
// a walk of length L traversed levels PML4..(PML4+L-2) as pointers.
func (w *WalkCache) fill(va addr.V, walkLen int) {
	for lvl := 0; lvl < walkLen-1 && lvl < 3; lvl++ {
		w.levels[lvl].insert(uint64(va) >> prefixShift[lvl])
	}
}

// Invalidate drops every cached entry covering va (page-table updates
// must invalidate paging-structure caches too).
func (w *WalkCache) Invalidate(va addr.V) {
	for lvl := range w.levels {
		w.levels[lvl].invalidate(uint64(va) >> prefixShift[lvl])
	}
}

// Flush empties the cache.
func (w *WalkCache) Flush() {
	for _, c := range w.levels {
		c.flush()
	}
}

// prefixCache is a tiny fully-associative LRU cache of VA prefixes.
type prefixCache struct {
	keys  []uint64
	valid []bool
	stamp []uint64
	clock uint64
}

func newPrefixCache(entries int) *prefixCache {
	return &prefixCache{
		keys:  make([]uint64, entries),
		valid: make([]bool, entries),
		stamp: make([]uint64, entries),
	}
}

func (c *prefixCache) lookup(key uint64) bool {
	c.clock++
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.stamp[i] = c.clock
			return true
		}
	}
	return false
}

func (c *prefixCache) insert(key uint64) {
	c.clock++
	victim, oldest := 0, ^uint64(0)
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.stamp[i] = c.clock
			return
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.keys[victim], c.valid[victim], c.stamp[victim] = key, true, c.clock
}

func (c *prefixCache) invalidate(key uint64) {
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.valid[i] = false
		}
	}
}

func (c *prefixCache) flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// CachedSource decorates a TranslationSource with a WalkCache: walks skip
// the upper-level memory references the cache can supply.
type CachedSource struct {
	src TranslationSource
	pwc *WalkCache
}

// NewCachedSource wraps src. The same WalkCache may not be shared across
// address spaces (prefixes would alias).
func NewCachedSource(src TranslationSource, pwc *WalkCache) *CachedSource {
	if pwc == nil {
		pwc = NewWalkCache(16)
	}
	return &CachedSource{src: src, pwc: pwc}
}

// Cache exposes the underlying walk cache (stats, invalidation).
func (c *CachedSource) Cache() *WalkCache { return c.pwc }

// Walk implements TranslationSource: perform the full architectural walk,
// then drop the leading accesses a paging-structure-cache hit skips.
func (c *CachedSource) Walk(va addr.V) pagetable.WalkResult {
	res := c.src.Walk(va)
	origLen := len(res.Accesses)
	if origLen > 1 {
		if skip := c.pwc.skip(va, origLen-1); skip > 0 {
			res.Accesses = res.Accesses[skip:]
		}
	}
	if res.Found {
		c.pwc.fill(va, origLen)
	}
	return res
}

// SetDirty implements TranslationSource.
func (c *CachedSource) SetDirty(va addr.V) bool { return c.src.SetDirty(va) }
