package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/physmem"
	"mixtlb/internal/tlb"
)

type env struct {
	buddy  *physmem.Buddy
	pt     *pagetable.PageTable
	caches *cachesim.Hierarchy
}

func newEnv(t *testing.T) *env {
	t.Helper()
	buddy := physmem.NewBuddy(4 << 30)
	pt, err := pagetable.New(buddy)
	if err != nil {
		t.Fatal(err)
	}
	return &env{buddy: buddy, pt: pt, caches: cachesim.DefaultHierarchy()}
}

func (e *env) mapPage(t *testing.T, va addr.V, size addr.PageSize) addr.P {
	t.Helper()
	pa, ok := e.buddy.AllocPage(size)
	if !ok {
		t.Fatal("allocation failed")
	}
	if err := e.pt.Map(va, pa, size, addr.PermRW); err != nil {
		t.Fatal(err)
	}
	return pa
}

func splitMMU(e *env, fault FaultHandler) *MMU {
	return mustBuild(Build(DesignSplit, e.pt, e.pt, e.caches, fault))
}

// mustBuild unwraps constructor errors in tests, where configs are static.
func mustBuild(m *MMU, err error) *MMU {
	if err != nil {
		panic(err)
	}
	return m
}

func TestTranslateHitMissWalk(t *testing.T) {
	e := newEnv(t)
	pa := e.mapPage(t, 0x200000, addr.Page2M)
	m := splitMMU(e, nil)

	// First access: L1 and L2 miss, walk.
	r := m.Translate(tlb.Request{VA: 0x200000 + 0x123})
	if !r.Walked || r.L1Hit || r.L2Hit {
		t.Fatalf("first access: %+v", r)
	}
	if r.PA != pa+0x123 {
		t.Errorf("PA = %v, want %v", r.PA, pa+0x123)
	}
	if r.Cycles <= DefaultLatencies().L1Hit {
		t.Error("walk cost not charged")
	}

	// Second access: L1 hit, cheap.
	r = m.Translate(tlb.Request{VA: 0x200000 + 0x5000})
	if !r.L1Hit {
		t.Fatalf("second access: %+v", r)
	}
	if r.Cycles != DefaultLatencies().L1Hit {
		t.Errorf("L1 hit cost %d cycles", r.Cycles)
	}

	st := m.Stats()
	if st.Accesses != 2 || st.L1Hits != 1 || st.Walks != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.WalkRefs != 3 {
		t.Errorf("2MB walk made %d PTE refs, want 3", st.WalkRefs)
	}
}

func TestL2HitPromotesToL1(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	m := splitMMU(e, nil)
	m.Translate(tlb.Request{VA: 0x1000}) // walk, fills L1+L2
	// Evict the L1 entry by filling conflicting pages: the Haswell L1 4KB
	// component has 16 sets and 4 ways, so five pages 16 VPNs apart (set
	// 1, not set 0 where 0x1000 lives... use same set: stride 16 pages).
	for i := 1; i <= 5; i++ {
		va := addr.V(0x1000 + i*16*addr.Size4K)
		e.mapPage(t, va, addr.Page4K)
		m.Translate(tlb.Request{VA: va})
	}
	m.ResetStats()
	r := m.Translate(tlb.Request{VA: 0x1000})
	if !r.L2Hit || r.L1Hit {
		t.Fatalf("expected L2 hit: %+v", r)
	}
	// Promotion: next access hits L1.
	r = m.Translate(tlb.Request{VA: 0x1000})
	if !r.L1Hit {
		t.Fatalf("no promotion to L1: %+v", r)
	}
}

func TestDemandPagingFaultHandler(t *testing.T) {
	e := newEnv(t)
	faults := 0
	handler := func(va addr.V, write bool) bool {
		faults++
		pa, ok := e.buddy.AllocPage(addr.Page4K)
		if !ok {
			return false
		}
		return e.pt.Map(va.PageBase(addr.Page4K), pa, addr.Page4K, addr.PermRW) == nil
	}
	m := splitMMU(e, handler)
	r := m.Translate(tlb.Request{VA: 0x7f00_0000_1234})
	if r.Faulted || !r.Walked {
		t.Fatalf("demand-paged access failed: %+v", r)
	}
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
	// Now mapped: no more faults.
	m.Translate(tlb.Request{VA: 0x7f00_0000_1234})
	if faults != 1 {
		t.Errorf("faults after re-access = %d", faults)
	}
}

func TestTrueFault(t *testing.T) {
	e := newEnv(t)
	m := splitMMU(e, func(addr.V, bool) bool { return false })
	r := m.Translate(tlb.Request{VA: 0xdead000})
	if !r.Faulted {
		t.Fatal("expected fault")
	}
	if m.Stats().Faults != 1 {
		t.Error("fault not counted")
	}
}

func TestDirtyMicroOpOnce(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	m := splitMMU(e, nil)
	m.Translate(tlb.Request{VA: 0x1000}) // read: clean fill
	m.Translate(tlb.Request{VA: 0x1000, Write: true})
	if m.Stats().DirtyMicroOps != 1 {
		t.Fatalf("micro-ops = %d, want 1", m.Stats().DirtyMicroOps)
	}
	// The entry is now dirty: further stores are free.
	m.Translate(tlb.Request{VA: 0x1000, Write: true})
	m.Translate(tlb.Request{VA: 0x1000, Write: true})
	if m.Stats().DirtyMicroOps != 1 {
		t.Errorf("micro-ops = %d after repeat stores", m.Stats().DirtyMicroOps)
	}
	// The page table saw the dirty bit.
	tr, _ := e.pt.Lookup(0x1000)
	if !tr.Dirty {
		t.Error("PTE dirty bit not set")
	}
}

func TestInvalidateShootdown(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x200000, addr.Page2M)
	m := splitMMU(e, nil)
	m.Translate(tlb.Request{VA: 0x200000})
	m.Invalidate(0x200000, addr.Page2M)
	m.ResetStats()
	r := m.Translate(tlb.Request{VA: 0x200000})
	if !r.Walked {
		t.Error("entry survived shootdown")
	}
	// Cross-check Flush too.
	m.Flush()
	m.ResetStats()
	if r := m.Translate(tlb.Request{VA: 0x200000}); !r.Walked {
		t.Error("entry survived flush")
	}
}

func TestIdealDesignNeverWalksTwice(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x200000, addr.Page2M)
	m := mustBuild(Build(DesignIdeal, e.pt, e.pt, e.caches, nil))
	r := m.Translate(tlb.Request{VA: 0x234567})
	if !r.L1Hit || r.Cycles != DefaultLatencies().L1Hit {
		t.Fatalf("ideal access: %+v", r)
	}
	if m.Stats().WalkRefs != 0 {
		t.Error("ideal charged walk refs")
	}
}

func TestIdealDemandPagingIsFree(t *testing.T) {
	e := newEnv(t)
	handler := func(va addr.V, write bool) bool {
		pa, ok := e.buddy.AllocPage(addr.Page4K)
		if !ok {
			return false
		}
		return e.pt.Map(va.PageBase(addr.Page4K), pa, addr.Page4K, addr.PermRW) == nil
	}
	m := mustBuild(Build(DesignIdeal, e.pt, e.pt, e.caches, handler))
	r := m.Translate(tlb.Request{VA: 0x5000})
	if r.Faulted || r.PA == 0 {
		t.Fatalf("ideal demand paging: %+v", r)
	}
	if m.Stats().WalkCycles != 0 {
		t.Error("ideal paid walk cycles")
	}
}

func TestAllDesignsTranslateCorrectly(t *testing.T) {
	// Every design must return the same physical addresses; they differ
	// only in cost. This is the cross-design equivalence check.
	vas := []addr.V{0x1000, 0x200000, 0x40000000, 0x200000 + 0x7ffff, 0x1000 + 0xfff}
	for _, d := range append(AllDesigns(), DesignMixSuperIndex) {
		e := newEnv(t)
		want := map[addr.V]addr.P{}
		pa4 := e.mapPage(t, 0x1000, addr.Page4K)
		pa2 := e.mapPage(t, 0x200000, addr.Page2M)
		pa1 := e.mapPage(t, 0x40000000, addr.Page1G)
		want[0x1000] = pa4
		want[0x200000] = pa2
		want[0x40000000] = pa1
		want[0x200000+0x7ffff] = pa2 + 0x7ffff
		want[0x1000+0xfff] = pa4 + 0xfff
		m := mustBuild(Build(d, e.pt, e.pt, e.caches, nil))
		for round := 0; round < 3; round++ { // cold, warm, warm
			for _, va := range vas {
				r := m.Translate(tlb.Request{VA: va, Write: round == 2})
				if r.Faulted || r.PA != want[va] {
					t.Errorf("%s round %d: Translate(%v) = %v, want %v",
						d, round, va, r.PA, want[va])
				}
			}
		}
		st := m.Stats()
		if d != DesignIdeal && st.Walks == 0 {
			t.Errorf("%s never walked", d)
		}
	}
}

func TestUnknownDesignErrors(t *testing.T) {
	e := newEnv(t)
	if _, err := Build(Design("bogus"), e.pt, e.pt, e.caches, nil); err == nil {
		t.Fatal("no error for unknown design")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 || s.CyclesPerAccess() != 0 {
		t.Error("zero stats not safe")
	}
	s.Accesses, s.Walks, s.Cycles = 10, 2, 50
	if s.MissRatio() != 0.2 {
		t.Errorf("MissRatio = %v", s.MissRatio())
	}
	if s.CyclesPerAccess() != 5 {
		t.Errorf("CyclesPerAccess = %v", s.CyclesPerAccess())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestMissingL1Errors(t *testing.T) {
	e := newEnv(t)
	if _, err := New(Config{Name: "bad"}, e.pt, e.caches, nil); err == nil {
		t.Fatal("no error for missing L1")
	}
}

func TestHashRehashProbeLatency(t *testing.T) {
	// The latency-variability drawback of multi-indexing (Sec 5.1): a
	// 1GB-page hit through rehash costs more cycles than a 4KB hit.
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	e.mapPage(t, 0x40000000, addr.Page1G)
	m := mustBuild(Build(DesignRehash, e.pt, e.pt, e.caches, nil))
	m.Translate(tlb.Request{VA: 0x1000, PC: 1})
	m.Translate(tlb.Request{VA: 0x40000000, PC: 2})
	// Warm hits; PC 2 is now trained to predict 1GB, so use a fresh PC to
	// expose the variable latency.
	small := m.Translate(tlb.Request{VA: 0x1000, PC: 1})
	large := m.Translate(tlb.Request{VA: 0x40000000, PC: 99})
	if small.Cycles >= large.Cycles {
		t.Errorf("rehash hit latencies: 4KB=%d, mispredicted 1GB=%d", small.Cycles, large.Cycles)
	}
}

func TestDirtyGroupRefreshThroughMMU(t *testing.T) {
	// Store path over a coalesced MIX bundle: the first stores pay the
	// PTE-update micro-op; once every member of the touched line group is
	// dirty, the assist's line refresh exempts the group and further
	// stores are free.
	e := newEnv(t)
	// Map 8 contiguous 2MB pages (one full line group).
	basePA, ok := e.buddy.AllocPage(addr.Page1G) // carve a contiguous GB
	if !ok {
		t.Fatal("alloc failed")
	}
	baseVA := addr.V(32) << 21 // window-aligned for K=16
	for i := 0; i < 8; i++ {
		va := baseVA + addr.V(i)<<21
		pa := basePA + addr.P(i)<<21
		if err := e.pt.Map(va, pa, addr.Page2M, addr.PermRW); err != nil {
			t.Fatal(err)
		}
		e.pt.SetAccessed(va)
	}
	m := mustBuild(Build(DesignMix, e.pt, e.pt, e.caches, nil))
	// Write every member once: 8 micro-ops (one per member's first store).
	for i := 0; i < 8; i++ {
		m.Translate(tlb.Request{VA: baseVA + addr.V(i)<<21, Write: true})
	}
	ops := m.Stats().DirtyMicroOps
	if ops != 8 {
		t.Fatalf("first-store micro-ops = %d, want 8", ops)
	}
	// The last store's assist saw the whole line dirty: the group is now
	// exempt and further stores add no micro-ops.
	for i := 0; i < 8; i++ {
		m.Translate(tlb.Request{VA: baseVA + addr.V(i)<<21 + 0x123, Write: true})
	}
	if got := m.Stats().DirtyMicroOps; got != ops {
		t.Errorf("micro-ops grew from %d to %d after group refresh", ops, got)
	}
}

func TestLatencyOverride(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	m := mustBuild(New(Config{
		Name:   "slow",
		Levels: L(tlb.Must(tlb.NewSetAssoc("l1", addr.Page4K, 4, 2))),
		Lat:    Latencies{L1Hit: 3, L2Hit: 0, ExtraProbe: 0, DirtyMicroOp: 50},
	}, e.pt, e.caches, nil))
	m.Translate(tlb.Request{VA: 0x1000})
	r := m.Translate(tlb.Request{VA: 0x1000, Write: true})
	if r.Cycles != 3+50 {
		t.Errorf("cycles = %d, want 53 (L1Hit + DirtyMicroOp)", r.Cycles)
	}
}
