package mmu

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
	"mixtlb/internal/tlb"
)

// validSpec returns a minimal valid spec for mutation in error tests.
func validSpec() DesignSpec {
	return DesignSpec{
		Name: "test-design",
		Levels: []LevelSpec{
			{Kind: KindMix, Sets: 16, Ways: 4},
		},
	}
}

func TestDesignSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*DesignSpec)
		level   int    // expected DesignSpecError.Level
		field   string // expected DesignSpecError.Field
		inError string // substring expected in the message
	}{
		{"empty-name", func(s *DesignSpec) { s.Name = "" }, -1, "name", "empty"},
		{"comma-name", func(s *DesignSpec) { s.Name = "a,b" }, -1, "name", "commas"},
		{"space-name", func(s *DesignSpec) { s.Name = "a b" }, -1, "name", "whitespace"},
		{"no-levels", func(s *DesignSpec) { s.Levels = nil }, -1, "levels", "at least one"},
		{"negative-pwc", func(s *DesignSpec) { s.PWCEntries = -1 }, -1, "pwc_entries", "negative"},
		{"unknown-kind", func(s *DesignSpec) { s.Levels[0].Kind = "quantum" }, 0, "kind", "unknown level kind"},
		{"missing-kind", func(s *DesignSpec) { s.Levels[0].Kind = "" }, 0, "kind", "missing"},
		{"zero-sets", func(s *DesignSpec) { s.Levels[0].Sets = 0 }, 0, "sets", "power of two"},
		{"non-pow2-sets", func(s *DesignSpec) { s.Levels[0].Sets = 12 }, 0, "sets", "power of two"},
		{"zero-ways", func(s *DesignSpec) { s.Levels[0].Ways = 0 }, 0, "ways", "positive"},
		{"non-pow2-coalesce", func(s *DesignSpec) { s.Levels[0].Coalesce = 3 }, 0, "coalesce", "power of two"},
		{"oversized-bitmap-coalesce", func(s *DesignSpec) { s.Levels[0].Coalesce = 128 }, 0, "coalesce", "at most 64"},
		{"negative-small-coalesce", func(s *DesignSpec) { s.Levels[0].SmallCoalesce = -2 }, 0, "small_coalesce", "non-negative"},
		{"bad-encoding", func(s *DesignSpec) { s.Levels[0].Encoding = "huffman" }, 0, "encoding", "bitmap"},
		{"predictor-on-mix", func(s *DesignSpec) { s.Levels[0].PredictorEntries = 64 }, 0, "predictor_entries", "rehash"},
		{"geometry-on-fixed-kind", func(s *DesignSpec) {
			s.Levels[0] = LevelSpec{Kind: KindHaswellL1, Sets: 8, Ways: 2}
		}, 0, "kind", "fixed geometry"},
		{"knobs-on-predicted-kind", func(s *DesignSpec) {
			s.Levels[0] = LevelSpec{Kind: KindRehashPred, Sets: 16, Ways: 4, SmallCoalesce: 4}
		}, 0, "kind", "no coalescing"},
		{"ideal-with-sibling-levels", func(s *DesignSpec) {
			s.Levels = []LevelSpec{{Kind: KindIdeal}, {Kind: KindHaswellL2}}
		}, 0, "kind", "only level"},
		{"victim-not-deepest", func(s *DesignSpec) {
			s.Levels = []LevelSpec{{Kind: KindHaswellL1},
				{Kind: KindVictim, Sets: 8, Ways: 2}, {Kind: KindHaswellL2}}
		}, 1, "kind", "deepest"},
		{"victim-as-only-level", func(s *DesignSpec) {
			s.Levels = []LevelSpec{{Kind: KindVictim, Sets: 8, Ways: 2}}
		}, 0, "kind", "demote from"},
		{"victim-non-pow2-sets", func(s *DesignSpec) {
			s.Levels = append(s.Levels, LevelSpec{Kind: KindVictim, Sets: 12, Ways: 2})
		}, 1, "sets", "power of two"},
		{"victim-zero-ways", func(s *DesignSpec) {
			s.Levels = append(s.Levels, LevelSpec{Kind: KindVictim, Sets: 8})
		}, 1, "ways", "positive"},
		{"victim-with-coalescing", func(s *DesignSpec) {
			s.Levels = append(s.Levels, LevelSpec{Kind: KindVictim, Sets: 8, Ways: 2, Coalesce: 4})
		}, 1, "kind", "only sets/ways"},
		{"victim-with-hit-latency", func(s *DesignSpec) {
			s.Levels = append(s.Levels, LevelSpec{Kind: KindVictim, Sets: 8, Ways: 2, HitLatency: 9})
		}, 1, "hit_latency", "data-cache accesses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate() accepted %+v", s)
			}
			var se *DesignSpecError
			if !errors.As(err, &se) {
				t.Fatalf("error type %T, want *DesignSpecError", err)
			}
			if se.Level != tc.level || se.Field != tc.field {
				t.Errorf("error at level=%d field=%q, want level=%d field=%q (%v)",
					se.Level, se.Field, tc.level, tc.field, se)
			}
			if !strings.Contains(err.Error(), tc.inError) {
				t.Errorf("error %q does not mention %q", err, tc.inError)
			}
		})
	}
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRegistryBuiltinsConstruct(t *testing.T) {
	e := newEnv(t)
	reg := DefaultRegistry()
	names := reg.Names()
	if len(names) != 15 {
		t.Errorf("%d builtin designs registered, want 15: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate design name %q", n)
		}
		seen[n] = true
		m, err := reg.Build(n, e.pt, e.pt, e.caches, nil)
		if err != nil {
			t.Errorf("design %q failed to build: %v", n, err)
			continue
		}
		if m.Name() != n {
			t.Errorf("design %q built MMU named %q", n, m.Name())
		}
		if m.Depth() < 1 {
			t.Errorf("design %q has no hierarchy levels", n)
		}
	}
	// Every legacy Design constant must resolve.
	for _, d := range append(AllDesigns(), DesignMixSuperIndex, DesignMixRange,
		DesignMixAsL2, DesignSplitPWC, DesignVictima, DesignMixVictima, DesignVictimaLite) {
		if _, ok := reg.Lookup(string(d)); !ok {
			t.Errorf("design constant %q missing from registry", d)
		}
	}
}

func TestRegistryDuplicateAndUnknown(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(validSpec()); err != nil {
		t.Fatal(err)
	}
	err := reg.Register(validSpec())
	var se *DesignSpecError
	if !errors.As(err, &se) || se.Field != "name" || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate registration: got %v, want *DesignSpecError on name", err)
	}
	e := newEnv(t)
	_, err = reg.Build("nope", e.pt, e.pt, e.caches, nil)
	var ue *UnknownDesignError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown build: got %T (%v), want *UnknownDesignError", err, err)
	}
	if ue.Name != "nope" || len(ue.Valid) != 1 || ue.Valid[0] != "test-design" {
		t.Errorf("UnknownDesignError = %+v", ue)
	}
}

func TestRegistrySpecsSortedAndDescribed(t *testing.T) {
	reg := DefaultRegistry()
	specs := reg.Specs()
	for i, s := range specs {
		if i > 0 && specs[i-1].Name >= s.Name {
			t.Errorf("Specs() out of order at %d: %q >= %q", i, specs[i-1].Name, s.Name)
		}
		if s.Desc == "" {
			t.Errorf("builtin design %q has no description", s.Name)
		}
	}
}

func TestIdealSpecRequiresPageTable(t *testing.T) {
	reg := DefaultRegistry()
	spec, ok := reg.Lookup(string(DesignIdeal))
	if !ok {
		t.Fatal("ideal not registered")
	}
	if _, err := spec.BuildTLBs(nil); err == nil {
		t.Error("ideal built without a page table")
	}
}

func TestParseSpecs(t *testing.T) {
	good := `[
	  {"name": "custom", "levels": [
	    {"kind": "mix", "sets": 32, "ways": 4, "encoding": "range"},
	    {"kind": "haswell-l2"}
	  ], "pwc": true}
	]`
	specs, err := ParseSpecBytes([]byte(good))
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if len(specs) != 1 || specs[0].Name != "custom" || !specs[0].PWC {
		t.Errorf("parsed %+v", specs)
	}
	e := newEnv(t)
	m, err := specs[0].Build(e.pt, e.pt, e.caches, nil)
	if err != nil {
		t.Fatalf("parsed spec failed to build: %v", err)
	}
	if m.Depth() != 2 || m.PWC() == nil {
		t.Errorf("built MMU depth=%d pwc=%v", m.Depth(), m.PWC())
	}

	for name, bad := range map[string]string{
		"unknown-field": `[{"name": "x", "levles": []}]`,
		"bad-kind":      `[{"name": "x", "levels": [{"kind": "nope"}]}]`,
		"not-an-array":  `{"name": "x"}`,
		"trailing-data": `[] []`,
		"bad-geometry":  `[{"name": "x", "levels": [{"kind": "mix", "sets": 3, "ways": 1}]}]`,
	} {
		if _, err := ParseSpecBytes([]byte(bad)); err == nil {
			t.Errorf("%s accepted: %s", name, bad)
		}
	}
}

func TestSpecISAValidation(t *testing.T) {
	// An unknown ISA name fails up front with the typed error listing
	// every valid descriptor, not a generic build failure.
	s := validSpec()
	s.ISA = "vax"
	err := s.Validate()
	var ie *isa.UnknownISAError
	if !errors.As(err, &ie) {
		t.Fatalf("unknown ISA: got %T (%v), want *isa.UnknownISAError", err, err)
	}
	if ie.Name != "vax" || len(ie.Valid) != len(isa.Names()) {
		t.Errorf("UnknownISAError = %+v", ie)
	}

	// On a contiguity-encoding descriptor, a MIX level whose superpage
	// bundle capacity cannot cover one hardware block is rejected.
	s = validSpec()
	s.ISA = "sv48-napot"
	s.Levels[0].Coalesce = 8
	err = s.Validate()
	var se *DesignSpecError
	if !errors.As(err, &se) || se.Field != "coalesce" {
		t.Fatalf("undersized coalesce: got %v, want *DesignSpecError on coalesce", err)
	}
	if !strings.Contains(err.Error(), "contiguity blocks") {
		t.Errorf("error %q does not mention contiguity blocks", err)
	}
	s.Levels[0].Coalesce = 16
	if err := s.Validate(); err != nil {
		t.Errorf("block-covering coalesce rejected: %v", err)
	}

	// A design pinned to one ISA refuses to build against a page table
	// implementing another.
	e := newEnv(t) // default x86-64 page table
	s = validSpec()
	s.ISA = "sv39"
	if _, err := s.Build(e.pt, e.pt, e.caches, nil); err == nil ||
		!strings.Contains(err.Error(), `implements "x86-64"`) {
		t.Errorf("ISA-pinned build on mismatched page table: got %v", err)
	}
	s.ISA = "x86-64"
	if _, err := s.Build(e.pt, e.pt, e.caches, nil); err != nil {
		t.Errorf("matching ISA pin rejected: %v", err)
	}
}

func TestSpecHitLatencyOverride(t *testing.T) {
	e := newEnv(t)
	e.mapPage(t, 0x1000, addr.Page4K)
	spec := DesignSpec{
		Name: "slow-l1",
		Levels: []LevelSpec{
			{Kind: KindMix, Sets: 16, Ways: 4, HitLatency: 9},
		},
	}
	m, err := spec.Build(e.pt, e.pt, e.caches, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Translate(tlb.Request{VA: 0x1000})
	r := m.Translate(tlb.Request{VA: 0x1000})
	if !r.L1Hit || r.Cycles != 9 {
		t.Errorf("overridden L1 hit: %+v, want 9 cycles", r)
	}
}
