package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/tlb"
)

// TestDeeperHierarchyPreservesTranslation is the metamorphic core of the
// hierarchy contract: TLB levels are pure caches of the page table, so
// adding levels to a design — an L2, a PWC, a cache-backed victim level —
// may change timing but never the translation function. Every multi-level
// registry design is truncated to its first level (the oracle) and both
// MMUs replay the same randomized stream; PA, page size, and fault
// outcome must match access for access, and both must match page-table
// ground truth.
func TestDeeperHierarchyPreservesTranslation(t *testing.T) {
	const pages4k = 1024
	for _, spec := range DefaultRegistry().Specs() {
		if len(spec.Levels) < 2 {
			continue // already its own oracle
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			e, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0x0eac1e+uint64(len(spec.Name)), mapped, 20000)

			full, err := spec.Build(e.pt, e.pt, e.caches, nil)
			if err != nil {
				t.Fatal(err)
			}
			oracleSpec := spec
			oracleSpec.Name = spec.Name + "-oracle"
			oracleSpec.Levels = spec.Levels[:1]
			oracle, err := oracleSpec.Build(e.pt, e.pt, e.caches, nil)
			if err != nil {
				t.Fatal(err)
			}

			for i, r := range reqs {
				fr, or := full.Translate(r), oracle.Translate(r)
				if fr.PA != or.PA || fr.Size != or.Size || fr.Faulted != or.Faulted {
					t.Fatalf("req %d (%+v): full {PA:%#x Size:%v Faulted:%v}, oracle {PA:%#x Size:%v Faulted:%v}",
						i, r, fr.PA, fr.Size, fr.Faulted, or.PA, or.Size, or.Faulted)
				}
				gt, ok := e.pt.Lookup(r.VA)
				if !ok {
					t.Fatalf("req %d: VA %#x not in page table", i, r.VA)
				}
				if want := gt.PA + addr.P(r.VA-gt.VA); fr.PA != want || fr.Size != gt.Size {
					t.Fatalf("req %d (VA %#x): got {PA:%#x Size:%v}, page table says {PA:%#x Size:%v}",
						i, r.VA, fr.PA, fr.Size, want, gt.Size)
				}
			}
		})
	}
}

// victimOf returns the hierarchy's cache-backed victim level and its
// index, or nil when the design has none.
func victimOf(m *MMU) (*tlb.Victim, int) {
	lvs := m.LevelTLBs()
	for i, lv := range lvs {
		if v, ok := lv.(*tlb.Victim); ok {
			return v, i
		}
	}
	return nil, -1
}

// TestVictimInvariants drives the victim designs through a randomized
// stream and checks the structural invariants of demotion:
//
//  1. the victim never holds two entries translating the same page at
//     the same size;
//  2. every victim entry agrees with page-table ground truth (demotion
//     moves translations, it never invents or corrupts them);
//  3. for split-feeder designs, the immediate feeder level and the
//     victim are exclusive — a demoted entry left the feeder, and a
//     promoted entry left the victim. Shallower levels than the feeder
//     may keep benign copies (they have no demotion sink), and MIX
//     feeders are exempt entirely: coalescing and mirror copies make
//     duplicates by design, which probe order keeps harmless;
//  4. promote-on-deep-hit removes the served page from the victim.
func TestVictimInvariants(t *testing.T) {
	const pages4k = 2048
	for _, d := range []Design{DesignVictima, DesignVictimaLite, DesignMixVictima} {
		d := d
		t.Run(string(d), func(t *testing.T) {
			e, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0x71c71c+uint64(len(d)), mapped, 30000)
			m, err := Build(d, e.pt, e.pt, e.caches, nil)
			if err != nil {
				t.Fatal(err)
			}
			vic, vi := victimOf(m)
			if vic == nil {
				t.Fatalf("design %s has no victim level", d)
			}

			deepChecked := 0
			for i, r := range reqs {
				res := m.Translate(r)
				if res.Faulted {
					t.Fatalf("req %d faulted: %+v", i, r)
				}
				// Invariant 4, on the first few deep hits: the served
				// page must have been promoted out of the victim.
				if int(res.HitLevel) == vi && deepChecked < 32 {
					deepChecked++
					base := r.VA & ^addr.V(res.Size.Bytes()-1)
					for _, tr := range vic.Dump() {
						if tr.Size == res.Size && tr.VA == base {
							t.Fatalf("req %d: VA %#x still in victim after deep hit promoted it", i, r.VA)
						}
					}
				}
			}
			if m.Stats().Demotions == 0 {
				t.Fatalf("stream produced no demotions; invariants unexercised")
			}

			members := vic.Dump()
			if len(members) == 0 {
				t.Fatalf("victim empty after %d accesses", len(reqs))
			}
			type pageKey struct {
				size addr.PageSize
				va   addr.V
			}
			seen := make(map[pageKey]bool, len(members))
			for _, tr := range members {
				k := pageKey{tr.Size, tr.VA}
				if seen[k] {
					t.Errorf("duplicate victim entry for %v page %#x", tr.Size, tr.VA)
				}
				seen[k] = true
				gt, ok := e.pt.Lookup(tr.VA)
				if !ok {
					t.Errorf("victim holds unmapped VA %#x", tr.VA)
					continue
				}
				if gt.Size != tr.Size || gt.PA != tr.PA {
					t.Errorf("victim entry %#x {PA:%#x Size:%v} disagrees with page table {PA:%#x Size:%v}",
						tr.VA, tr.PA, tr.Size, gt.PA, gt.Size)
				}
			}

			if d == DesignMixVictima {
				return // MIX feeders keep benign duplicates; exclusivity does not apply
			}
			// Invariant 3: no victim member is still resident in the
			// feeder level whose evictions fill the victim. Post-stream
			// lookups may disturb LRU stamps, which is fine — the
			// stream is over.
			feeder := m.LevelTLBs()[vi-1]
			for _, tr := range members {
				if lr := feeder.Lookup(tlb.Request{VA: tr.VA}); lr.Hit && lr.T.Size == tr.Size {
					t.Fatalf("%v page %v resident in both the feeder level and the victim", tr.Size, tr.VA)
				}
			}
		})
	}
}

// TestVictimShootdownConsistency checks that unmap-style invalidation
// reaches the victim level: after Invalidate(va) no victim entry for va
// survives, and after Flush the victim is empty.
func TestVictimShootdownConsistency(t *testing.T) {
	const pages4k = 2048
	e, mapped := buildRefEnv(t, pages4k)
	reqs := randomRequests(0x5078d0, mapped, 30000)
	m, err := Build(DesignVictima, e.pt, e.pt, e.caches, nil)
	if err != nil {
		t.Fatal(err)
	}
	vic, _ := victimOf(m)
	for _, r := range reqs {
		m.Translate(r)
	}
	if len(vic.Dump()) == 0 {
		t.Fatal("victim empty; shootdown unexercised")
	}
	// Invalidate every tenth mapped page at its own size.
	for i := 0; i < len(mapped); i += 10 {
		m.Invalidate(mapped[i].va, mapped[i].size)
		for _, tr := range vic.Dump() {
			if tr.VA == mapped[i].va && tr.Size == mapped[i].size {
				t.Fatalf("victim entry for %#x survived Invalidate", mapped[i].va)
			}
		}
	}
	m.Flush()
	if got := vic.Dump(); len(got) != 0 {
		t.Fatalf("victim holds %d entries after Flush", len(got))
	}
}
