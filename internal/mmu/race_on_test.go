//go:build race

package mmu

// raceEnabled reports whether the test binary was built with -race.
const raceEnabled = true
